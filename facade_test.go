package torusnet

import (
	"math"
	"testing"
)

// The facade tests double as end-to-end integration tests over the public
// API: topology → placement → routing → load → bounds → verdicts.

func TestFacadeEndToEnd(t *testing.T) {
	tor := NewTorus(6, 2)
	if err := CheckTorus(6, 2); err != nil {
		t.Fatal(err)
	}
	p, err := (Linear{C: 0}).Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 6 {
		t.Fatalf("|P| = %d, want 6", p.Size())
	}
	res := ComputeLoad(p, ODR{}, LoadOptions{})
	if res.Max < BlaumBound(p.Size(), 2) {
		t.Errorf("E_max %v below Blaum bound", res.Max)
	}
	rep := Analyze(p, UDR{}, 0)
	if rep.OptimalityRatio < 1 {
		t.Errorf("optimality ratio %v < 1", rep.OptimalityRatio)
	}
}

func TestFacadeBisection(t *testing.T) {
	tor := NewTorus(6, 2)
	p, err := (MultipleLinear{T: 2}).Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	dim := DimensionCut(p, 0)
	if dim.Width() != 24 { // 4·k^{d−1} = 4·6
		t.Errorf("dimension cut width %d, want 24", dim.Width())
	}
	sweepCut := SweepBisect(p)
	if !sweepCut.Balanced() {
		t.Error("sweep cut unbalanced")
	}
	if got := BisectionBound(p.Size(), dim.Width()); got <= 0 {
		t.Errorf("Eq. 8 bound %v", got)
	}
}

func TestFacadeExactAndMonteCarlo(t *testing.T) {
	tor := NewTorus(4, 2)
	p, err := (Linear{C: 0}).Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ComputeLoadExact(p, UDR{})
	if err != nil {
		t.Fatal(err)
	}
	float := ComputeLoad(p, UDR{}, LoadOptions{})
	if math.Abs(exact.MaxFloat()-float.Max) > 1e-9 {
		t.Errorf("exact %v vs float %v", exact.MaxFloat(), float.Max)
	}
	mc := MonteCarloLoad(p, UDR{}, 200, 3, LoadOptions{})
	if math.Abs(mc.MaxMean-float.Max) > 1.0 {
		t.Errorf("Monte-Carlo max %v far from exact %v", mc.MaxMean, float.Max)
	}
}

func TestFacadeSimulationAndFaults(t *testing.T) {
	tor := NewTorus(4, 2)
	p, err := (Linear{C: 0}).Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	st := Simulate(SimConfig{Placement: p, Algorithm: ODR{}, Seed: 1})
	if st.Packets != p.Pairs() || st.Aborted {
		t.Errorf("simulation: %+v", st)
	}
	fr := AnalyzeFaults(p, UDR{}, 0)
	if fr.Pairs != p.Pairs() {
		t.Errorf("fault pairs %d, want %d", fr.Pairs, p.Pairs())
	}
	if broken := RandomFailureBrokenPairs(p, UDR{}, 1, 1); broken < 0 {
		t.Errorf("broken pairs %d", broken)
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 33 {
		t.Fatalf("got %d experiments, want 33", len(exps))
	}
	e, ok := ExperimentByID("E10")
	if !ok {
		t.Fatal("E10 missing")
	}
	tb := e.Run(QuickScale)
	if len(tb.Rows) == 0 {
		t.Error("E10 produced no rows")
	}
}

func TestFacadeConstantsAndHelpers(t *testing.T) {
	if Plus.Opposite() != Minus {
		t.Error("direction constants broken")
	}
	if CyclicDistance(1, 6, 8) != 3 {
		t.Error("CyclicDistance broken")
	}
	if MaxPlacementSize(0.5, 4, 3) != 12*3*0.5*16 {
		t.Error("MaxPlacementSize broken")
	}
	if ImprovedBound(2, 4, 3) != 4.0*16/8 {
		t.Error("ImprovedBound broken")
	}
	if SeparatorBound(1, 9, 8) != 2.0 {
		t.Error("SeparatorBound broken")
	}
	tor := NewTorus(3, 2)
	p := NewPlacement(tor, []Node{0, 4, 8}, "diag")
	if p.Size() != 3 {
		t.Error("NewPlacement broken")
	}
}

func TestFacadeBestSweep(t *testing.T) {
	tor := NewTorus(5, 2)
	p, err := (Linear{C: 0}).Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	best := BestSweepBisect(p)
	plain := SweepBisect(p)
	if best.Width() > plain.Width() || !best.Balanced() {
		t.Errorf("best sweep width %d vs plain %d", best.Width(), plain.Width())
	}
	routes := EdgeDisjointRoutes(UDR{}, tor, p.Nodes()[0], p.Nodes()[1], 0)
	if len(routes) < 1 {
		t.Error("no routes")
	}
}

func TestFacadeFullSurfaceTour(t *testing.T) {
	tor := NewTorus(4, 2)
	p, err := (LayerCluster{Dim: 0}).Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	lin, err := (Linear{C: 0}).Build(tor)
	if err != nil {
		t.Fatal(err)
	}

	// Routing aliases all satisfy the interface and produce valid loads.
	for _, alg := range []RoutingAlgorithm{ODR{}, ODRMulti{}, UDR{}, UDRMulti{}, FAR{},
		ODROrder{Order: []int{1, 0}}, MeshODR{}} {
		res := ComputeLoad(lin, alg, LoadOptions{})
		if res.Max <= 0 {
			t.Errorf("%s: zero load", alg.Name())
		}
	}

	// Pattern engine.
	for _, pat := range []TrafficPattern{
		PatternCompleteExchange{}, PatternTranspose{}, PatternHotSpot{},
		PatternShift{Offset: []int{1, 3}}, PatternRandomPairs{Count: 5, Seed: 1},
	} {
		res := ComputePatternLoad(lin, pat, UDR{}, LoadOptions{})
		if res.Total < 0 {
			t.Errorf("%s: negative total", pat.Name())
		}
	}
	if v := ComputeValiantLoad(lin, PatternTranspose{}, ODR{}, LoadOptions{}); v.Max < 0 {
		t.Error("valiant negative")
	}

	// Analysis pipelines.
	if rep := AnalyzeFull(lin, UDR{}, 0); rep.Coverage.CoveringRadius != 2 {
		t.Errorf("full report coverage %d", rep.Coverage.CoveringRadius)
	}
	if cov := AnalyzeCoverage(p); cov.PackingDistance < 1 {
		t.Errorf("coverage report: %+v", cov)
	}

	// Failures.
	failed := RandomFailures(tor, 3, 1)
	if len(failed) != 3 {
		t.Errorf("failures %d", len(failed))
	}
	if deg := LoadWithFailures(lin, UDR{}, failed); deg.Load.Max < 0 {
		t.Error("degraded load negative")
	}

	// Simulators.
	if st := SimulateWormhole(WormholeConfig{Placement: lin, Algorithm: ODR{}, Seed: 1,
		MaxCycles: 100000}); st.Deadlocked {
		t.Error("wormhole deadlock on linear placement")
	}
	if st := Simulate(SimConfig{Placement: lin, Algorithm: ODR{}, Seed: 1, Adaptive: true}); st.Cycles <= 0 {
		t.Error("adaptive simulation failed")
	}

	// Scheduling and BSP.
	sch := ScheduleExchange(lin, ODR{}, 1, ScheduleLongestFirst)
	if sch.Length < sch.LowerBound() {
		t.Error("schedule below floor")
	}
	if sch2 := ScheduleExchange(lin, ODR{}, 1, ScheduleByIndex); sch2.Length <= 0 {
		t.Error("by-index schedule empty")
	}
	params, samples := EstimateBSP(lin, UDR{}, 3, 1)
	if len(samples) != 3 || params.G == 0 && params.L == 0 {
		t.Errorf("BSP estimate: %v %v", params, samples)
	}

	// Annealing.
	ann := AnnealPlacement(tor, ODR{}, AnnealConfig{Size: 4, Steps: 30, Seed: 1})
	if ann.Best.Size() != 4 {
		t.Errorf("anneal size %d", ann.Best.Size())
	}

	// Routes and lee analytics.
	if routes := EdgeDisjointRoutes(UDR{}, tor, lin.Nodes()[0], lin.Nodes()[1], 0); len(routes) < 1 {
		t.Error("no disjoint routes")
	}
	if TorusMeanDistance(4, 2) != 2 {
		t.Error("mean distance")
	}
	if TorusDiameter(4, 2) != 4 {
		t.Error("diameter")
	}
	if LeeSphereSize(4, 2, 1) != 4 {
		t.Error("sphere size")
	}
	if LinearExchangeTotal(4, 2) <= 0 {
		t.Error("linear exchange total")
	}
	if mc := MonteCarloLoad(lin, ODR{}, 3, 1, LoadOptions{}); mc.MaxMean <= 0 {
		t.Error("monte carlo")
	}
	if ex, err := ComputeLoadExact(lin, ODR{}); err != nil || !ex.AllIntegral() {
		t.Error("exact load")
	}
	if BlaumBound(9, 2) != 2 {
		t.Error("blaum")
	}
	// Explicit, Random, Full, MultipleLinear, ShiftedDiagonal aliases.
	for _, spec := range []PlacementSpec{
		Explicit{Label: "x", Coords: [][]int{{0, 0}, {1, 1}}},
		Random{Count: 3, Seed: 1}, Full{}, MultipleLinear{T: 2}, ShiftedDiagonal{Shift: 1},
	} {
		if q, err := spec.Build(tor); err != nil || q.Size() == 0 {
			t.Errorf("spec %s failed: %v", spec.Name(), err)
		}
	}
}

// TestFacadeResilienceAndFailpoints tours the chaos surface: failpoint
// arming through the facade, the resilient client construction, and the
// degraded-response marker on the wire type.
func TestFacadeResilienceAndFailpoints(t *testing.T) {
	sites := FailpointSites()
	if len(sites) == 0 {
		t.Fatal("no failpoint sites registered")
	}
	site := sites[0]
	if err := FailpointEnable(site, "2*error"); err != nil {
		t.Fatalf("FailpointEnable: %v", err)
	}
	if err := FailpointDisable(site); err != nil {
		t.Fatalf("FailpointDisable: %v", err)
	}
	if err := FailpointEnable(site, "not a spec"); err == nil {
		t.Error("FailpointEnable accepted a malformed spec")
	}
	//lint:ignore failpointsite deliberately unknown site: this test asserts rejection
	if err := FailpointEnable("no.such.site", "error"); err == nil {
		t.Error("FailpointEnable accepted an unknown site")
	}
	FailpointDisableAll()

	c := NewResilientServiceClient("http://127.0.0.1:0", ClientResilienceConfig{MaxAttempts: 2})
	if c == nil {
		t.Fatal("NewResilientServiceClient returned nil")
	}
	if ErrServiceCircuitOpen == nil {
		t.Fatal("ErrServiceCircuitOpen is nil")
	}
	var resp AnalyzeResponse
	resp.Degraded = true
	resp.ErrorBound = 0.5
	if !resp.Degraded || resp.ErrorBound != 0.5 {
		t.Error("degraded response fields not exposed on the facade type")
	}
	if EngineMonteCarlo == EngineGeneric || EngineMonteCarlo == EngineSymmetry {
		t.Error("EngineMonteCarlo must be a distinct engine label")
	}
}
