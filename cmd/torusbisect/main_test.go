package main

import "testing"

func TestRunErrors(t *testing.T) {
	if run(1, 2, "linear", false) == nil {
		t.Error("bad torus accepted")
	}
	if run(4, 2, "nope", false) == nil {
		t.Error("bad placement accepted")
	}
	if run(5, 2, "linear", true) == nil {
		t.Error("brute force on 25 nodes should fail")
	}
}

func TestRunSucceeds(t *testing.T) {
	if err := run(4, 2, "linear", true); err != nil {
		t.Fatal(err)
	}
	if err := run(6, 2, "random:10", false); err != nil {
		t.Fatal(err)
	}
}
