// Command torusbisect constructs bisections of T^d_k with respect to a
// placement: the Theorem 1 dimension cut, the appendix hyperplane sweep,
// and (for tiny tori) the exhaustive optimum, reporting widths against the
// paper's 4k^{d−1} and 6dk^{d−1} figures and the resulting Eq. 8 load
// bound.
//
// Usage:
//
//	torusbisect -k 8 -d 3 -placement linear
//	torusbisect -k 4 -d 2 -placement random:8 -brute
package main

import (
	"flag"
	"fmt"
	"os"

	"torusnet/internal/bisect"
	"torusnet/internal/bounds"
	"torusnet/internal/cliutil"
	"torusnet/internal/torus"
)

func main() {
	var (
		k         = flag.Int("k", 8, "torus radix")
		d         = flag.Int("d", 2, "torus dimensions")
		placeSpec = flag.String("placement", "linear", "placement spec (see torusload)")
		brute     = flag.Bool("brute", false, "also run the exhaustive optimum (tiny tori only)")
	)
	flag.Parse()

	if err := run(*k, *d, *placeSpec, *brute); err != nil {
		fmt.Fprintln(os.Stderr, "torusbisect:", err)
		os.Exit(1)
	}
}

func run(k, d int, placeSpec string, brute bool) error {
	if err := torus.Check(k, d); err != nil {
		return err
	}
	spec, err := cliutil.ParsePlacement(placeSpec)
	if err != nil {
		return err
	}
	t := torus.New(k, d)
	p, err := spec.Build(t)
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", p)
	fmt.Printf("uniform: %v\n\n", p.IsUniform())

	for dim := 0; dim < d; dim++ {
		cut := bisect.DimensionCut(p, dim)
		fmt.Printf("%-16s width=%4d (Theorem 1: %d)  split=%d|%d balanced=%v  Eq.8 bound=%.3f\n",
			cut.Method, cut.Width(), int(bounds.Theorem1Width(k, d)),
			cut.ProcsA, cut.ProcsB, cut.Balanced(), bounds.Bisection(p.Size(), cut.Width()))
	}

	sweepCut := bisect.Sweep(p)
	fmt.Printf("%-16s width=%4d (Corollary 1 ceiling: %d)  split=%d|%d balanced=%v  Eq.8 bound=%.3f\n",
		sweepCut.Method, sweepCut.Width(), bisect.SweepCeiling(t),
		sweepCut.ProcsA, sweepCut.ProcsB, sweepCut.Balanced(), bounds.Bisection(p.Size(), sweepCut.Width()))
	arrayE, wrapE := bisect.ArraySlabCrossings(t, sweepCut)
	fmt.Printf("  sweep decomposition: %d array-edge + %d wrap-edge crossings\n", arrayE, wrapE)

	if brute {
		cut, err := bisect.BruteForce(p)
		if err != nil {
			return err
		}
		fmt.Printf("%-16s width=%4d (true optimum)  split=%d|%d  Eq.8 bound=%.3f\n",
			cut.Method, cut.Width(), cut.ProcsA, cut.ProcsB, bounds.Bisection(p.Size(), cut.Width()))
	}
	return nil
}
