// Command experiments regenerates the paper's tables and figure (the
// E1–E14 registry of DESIGN.md). Without flags it runs everything at full
// scale and prints plain-text tables; -out writes Markdown and CSV files
// per experiment into a directory.
//
// Usage:
//
//	experiments                      # all experiments, full scale, stdout
//	experiments -run E6,E8           # a subset
//	experiments -scale quick         # CI-sized parameter ranges
//	experiments -out results/        # write results/E6.md, results/E6.csv, ...
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"torusnet/internal/sweep"
)

func main() {
	var (
		runIDs  = flag.String("run", "all", "comma-separated experiment ids, or 'all'")
		scale   = flag.String("scale", "full", "parameter scale: quick|full")
		outDir  = flag.String("out", "", "directory for Markdown/CSV/JSON output (optional)")
		docPath = flag.String("doc", "", "write all selected tables as one Markdown document")
		listing = flag.Bool("list", false, "list registered experiments and exit")
	)
	flag.Parse()

	if err := run(*runIDs, *scale, *outDir, *docPath, *listing); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(runIDs, scaleName, outDir, docPath string, listing bool) error {
	if listing {
		for _, e := range sweep.All() {
			fmt.Printf("%-4s %-60s [%s]\n", e.ID, e.Title, e.PaperRef)
		}
		return nil
	}

	var scale sweep.Scale
	switch scaleName {
	case "quick":
		scale = sweep.Quick
	case "full":
		scale = sweep.Full
	default:
		return fmt.Errorf("unknown scale %q (want quick|full)", scaleName)
	}

	var selected []sweep.Experiment
	if runIDs == "all" {
		selected = sweep.All()
	} else {
		for _, id := range strings.Split(runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := sweep.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			selected = append(selected, e)
		}
	}

	if outDir != "" {
		if err := os.MkdirAll(outDir, 0o755); err != nil {
			return err
		}
	}

	var tables []*sweep.Table
	for _, e := range selected {
		start := time.Now()
		tb := e.Run(scale)
		elapsed := time.Since(start)
		tables = append(tables, tb)
		if outDir == "" {
			if docPath == "" {
				fmt.Println(tb.Text())
				fmt.Printf("(%s in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
			}
			continue
		}
		if err := os.WriteFile(filepath.Join(outDir, e.ID+".md"), []byte(tb.Markdown()), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, e.ID+".csv"), []byte(tb.CSV()), 0o644); err != nil {
			return err
		}
		js, err := tb.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(outDir, e.ID+".json"), js, 0o644); err != nil {
			return err
		}
		fmt.Printf("%s: %d rows in %v -> %s/%s.{md,csv,json}\n", e.ID, len(tb.Rows), elapsed.Round(time.Millisecond), outDir, e.ID)
	}
	if docPath != "" {
		if err := os.WriteFile(docPath, []byte(sweep.Document(tables)), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %d tables to %s\n", len(tables), docPath)
	}
	return nil
}
