package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunErrors(t *testing.T) {
	if run("all", "bogus", "", "", false) == nil {
		t.Error("bad scale accepted")
	}
	if run("E99", "quick", "", "", false) == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunListAndSubset(t *testing.T) {
	if err := run("", "quick", "", "", true); err != nil {
		t.Fatal(err)
	}
	if err := run("E5", "quick", "", "", false); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesFiles(t *testing.T) {
	dir := t.TempDir()
	if err := run("E5,E10", "quick", dir, "", false); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"E5.md", "E5.csv", "E5.json", "E10.md", "E10.csv", "E10.json"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("missing %s: %v", want, err)
		}
	}
}

func TestRunWritesDocument(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "tables.md")
	if err := run("E5,E10", "quick", "", doc, false); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Experiment tables", "### E5", "### E10"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("document missing %q", want)
		}
	}
}
