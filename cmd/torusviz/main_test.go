package main

import "testing"

func TestRunErrors(t *testing.T) {
	if run(1, "linear", "odr", 4) == nil {
		t.Error("bad torus accepted")
	}
	if run(4, "bogus", "odr", 4) == nil {
		t.Error("bad placement accepted")
	}
	if run(4, "linear", "bogus", 4) == nil {
		t.Error("bad routing accepted")
	}
}

func TestRunSucceeds(t *testing.T) {
	if err := run(6, "linear", "odr", 4); err != nil {
		t.Fatal(err)
	}
	if err := run(4, "full", "udr", 2); err != nil {
		t.Fatal(err)
	}
}
