// Command torusviz renders the load distribution of a 2-dimensional torus
// placement as an ASCII heatmap: one cell per node showing the maximum load
// over its incident links (darker glyph = hotter), with processors marked,
// plus the top-loaded links and the per-dimension profile. It makes the E6
// funneling finding visible at a glance: under ODR the hot cells line up
// with the last correction dimension.
//
// Usage:
//
//	torusviz -k 8 -placement linear -routing odr
//	torusviz -k 10 -placement full -routing udr -top 12
package main

import (
	"flag"
	"fmt"
	"os"

	"torusnet/internal/cliutil"
	"torusnet/internal/load"
	"torusnet/internal/torus"
)

var shades = []byte(" .:-=+*#%@")

func main() {
	var (
		k         = flag.Int("k", 8, "torus radix (d is fixed to 2 for rendering)")
		placeSpec = flag.String("placement", "linear", "placement spec (see torusload)")
		routeSpec = flag.String("routing", "odr", "routing: odr|odr-multi|udr|udr-multi|far")
		top       = flag.Int("top", 8, "how many top-loaded links to list")
	)
	flag.Parse()

	if err := run(*k, *placeSpec, *routeSpec, *top); err != nil {
		fmt.Fprintln(os.Stderr, "torusviz:", err)
		os.Exit(1)
	}
}

func run(k int, placeSpec, routeSpec string, top int) error {
	if err := torus.Check(k, 2); err != nil {
		return err
	}
	spec, err := cliutil.ParsePlacement(placeSpec)
	if err != nil {
		return err
	}
	alg, err := cliutil.ParseRouting(routeSpec)
	if err != nil {
		return err
	}
	t := torus.New(k, 2)
	p, err := spec.Build(t)
	if err != nil {
		return err
	}
	res := load.Compute(p, alg, load.Options{})

	// Node heat: max load over the node's incident (outgoing) links.
	heat := make([]float64, t.Nodes())
	t.ForEachEdge(func(e torus.Edge) {
		src := t.EdgeSource(e)
		if res.Loads[e] > heat[src] {
			heat[src] = res.Loads[e]
		}
	})

	fmt.Printf("%s under %s: E_max = %.3f\n", p, alg.Name(), res.Max)
	fmt.Printf("node heat = max load over outgoing links; '#'-framed cells carry processors\n\n")
	for y := k - 1; y >= 0; y-- {
		for x := 0; x < k; x++ {
			u := t.NodeAt([]int{x, y})
			idx := 0
			if res.Max > 0 {
				idx = int(heat[u] / res.Max * float64(len(shades)-1))
			}
			glyph := shades[idx]
			if p.Contains(u) {
				fmt.Printf("[%c]", glyph)
			} else {
				fmt.Printf(" %c ", glyph)
			}
		}
		fmt.Println()
	}

	fmt.Printf("\nper-dimension max:")
	for j, v := range res.PerDimensionMax() {
		fmt.Printf("  dim%d = %.3f", j, v)
	}
	fmt.Println()

	fmt.Printf("\ntop %d links:\n", top)
	for _, el := range res.TopEdges(top) {
		fmt.Printf("  %8.3f  %s (dim %d%s)\n", el.Load, t.EdgeString(el.Edge),
			t.EdgeDim(el.Edge), t.EdgeDir(el.Edge))
	}
	return nil
}
