// Command toruslint runs the repository's static-analysis suite (package
// internal/lintcheck) over the module and exits nonzero on findings.
//
//	go run ./cmd/toruslint ./...                  # whole module, all analyzers
//	go run ./cmd/toruslint -format=json ./...     # machine-readable output
//	go run ./cmd/toruslint -format=github ./...   # CI workflow annotations
//	go run ./cmd/toruslint -fix ./...             # apply mechanical fixes
//	go run ./cmd/toruslint -list                  # describe the analyzer suite
//	go run ./cmd/toruslint -disable=facade-complete ./internal/torus
//
// -fix applies every finding's attached mechanical edit, then reloads and
// re-runs the suite; the exit code reflects what remains unfixed. -json is
// kept as an alias for -format=json.
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"torusnet/internal/lintcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("toruslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array (alias for -format=json)")
	format := fs.String("format", "", "output format: text (default), json, or github (workflow annotations)")
	fix := fs.Bool("fix", false, "apply each finding's mechanical fix, then re-run and report what remains")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	root := fs.String("root", ".", "module root to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	switch *format {
	case "":
		if *jsonOut {
			*format = "json"
		} else {
			*format = "text"
		}
	case "text", "json", "github":
	default:
		emit(stderr, "toruslint: unknown -format %q (want text, json, or github)\n", *format)
		return 2
	}

	if *list {
		for _, a := range lintcheck.All() {
			emit(stdout, "%-20s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lintcheck.Select(*enable, *disable)
	if err != nil {
		emit(stderr, "toruslint: %v\n", err)
		return 2
	}

	unit, findings, code := analyze(*root, analyzers, fs.Args(), stderr)
	if code != 0 {
		return code
	}

	if *fix {
		res, err := lintcheck.ApplyFixes(findings)
		if err != nil {
			emit(stderr, "toruslint: applying fixes: %v\n", err)
			return 2
		}
		emit(stderr, "toruslint: applied %d fix(es) in %d file(s), %d finding(s) skipped (no or conflicting fix)\n",
			res.Applied, len(res.FilesChanged), res.Skipped)
		// Re-run from scratch: the fixed tree is the only ground truth, and
		// idempotent fixes must not re-appear.
		unit, findings, code = analyze(*root, analyzers, fs.Args(), stderr)
		if code != 0 {
			return code
		}
	}

	switch *format {
	case "json":
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lintcheck.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			emit(stderr, "toruslint: %v\n", err)
			return 2
		}
	case "github":
		for _, f := range findings {
			emit(stdout, "%s\n", githubAnnotation(unit.Root, f))
		}
	default:
		for _, f := range findings {
			emit(stdout, "%s\n", f)
		}
		emit(stdout, "toruslint: %d finding(s) across %d package(s)\n", len(findings), len(unit.Pkgs))
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// analyze loads the module root and runs the selected analyzers once.
func analyze(root string, analyzers []*lintcheck.Analyzer, patterns []string, stderr io.Writer) (*lintcheck.Unit, []lintcheck.Finding, int) {
	unit, err := lintcheck.Load(root)
	if err != nil {
		emit(stderr, "toruslint: %v\n", err)
		return nil, nil, 2
	}
	for _, p := range unit.Pkgs {
		for _, terr := range p.TypeErrors {
			emit(stderr, "toruslint: %s: type error: %v\n", p.Path, terr)
		}
	}
	findings := lintcheck.Run(unit, analyzers, packageMatcher(unit, patterns))
	return unit, findings, 0
}

// githubAnnotation renders one finding as a GitHub Actions workflow command,
// so CI runs surface findings inline on the PR diff. Paths are root-relative
// (the runner's working directory is the checkout root).
func githubAnnotation(root string, f lintcheck.Finding) string {
	file := f.File
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	msg := f.Message
	if f.Suggestion != "" {
		msg += ": " + f.Suggestion
	}
	return fmt.Sprintf("::error file=%s,line=%d,col=%d,title=toruslint/%s::%s",
		file, f.Line, f.Col, ghEscape(f.Analyzer), ghEscape(msg))
}

// ghEscape applies the workflow-command data escaping rules.
func ghEscape(s string) string {
	s = strings.ReplaceAll(s, "%", "%25")
	s = strings.ReplaceAll(s, "\r", "%0D")
	s = strings.ReplaceAll(s, "\n", "%0A")
	return s
}

// packageMatcher turns CLI patterns into a package filter. "./..." (or no
// pattern) selects everything; other patterns select packages whose import
// path or root-relative directory matches, with a trailing /... selecting
// the whole subtree.
func packageMatcher(u *lintcheck.Unit, patterns []string) func(*lintcheck.Package) bool {
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/...")
		if pat == "" || pat == "." || pat == "..." {
			return nil // matches everything
		}
		if !strings.HasPrefix(pat, u.ModulePath) {
			pat = u.ModulePath + "/" + pat
		}
		prefixes = append(prefixes, pat)
	}
	if len(prefixes) == 0 {
		return nil
	}
	return func(p *lintcheck.Package) bool {
		for _, pre := range prefixes {
			if p.Path == pre || strings.HasPrefix(p.Path, pre+"/") {
				return true
			}
		}
		return false
	}
}

// emit writes best-effort CLI output; a broken stdout pipe is not a lint
// failure.
func emit(w io.Writer, format string, args ...any) {
	//lint:ignore errcheck-lite best-effort CLI output
	_, _ = fmt.Fprintf(w, format, args...)
}
