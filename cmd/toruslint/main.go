// Command toruslint runs the repository's static-analysis suite (package
// internal/lintcheck) over the module and exits nonzero on findings.
//
//	go run ./cmd/toruslint ./...          # whole module, all analyzers
//	go run ./cmd/toruslint -json ./...    # machine-readable output
//	go run ./cmd/toruslint -list          # describe the analyzer suite
//	go run ./cmd/toruslint -disable=facade-complete ./internal/torus
//
// Exit codes: 0 clean, 1 findings reported, 2 usage or load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"torusnet/internal/lintcheck"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("toruslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	enable := fs.String("enable", "", "comma-separated analyzers to run (default: all)")
	disable := fs.String("disable", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	root := fs.String("root", ".", "module root to analyze")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		for _, a := range lintcheck.All() {
			emit(stdout, "%-16s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers, err := lintcheck.Select(*enable, *disable)
	if err != nil {
		emit(stderr, "toruslint: %v\n", err)
		return 2
	}

	unit, err := lintcheck.Load(*root)
	if err != nil {
		emit(stderr, "toruslint: %v\n", err)
		return 2
	}
	for _, p := range unit.Pkgs {
		for _, terr := range p.TypeErrors {
			emit(stderr, "toruslint: %s: type error: %v\n", p.Path, terr)
		}
	}

	match := packageMatcher(unit, fs.Args())
	findings := lintcheck.Run(unit, analyzers, match)

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lintcheck.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			emit(stderr, "toruslint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			emit(stdout, "%s\n", f)
		}
		emit(stdout, "toruslint: %d finding(s) across %d package(s)\n", len(findings), len(unit.Pkgs))
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// packageMatcher turns CLI patterns into a package filter. "./..." (or no
// pattern) selects everything; other patterns select packages whose import
// path or root-relative directory matches, with a trailing /... selecting
// the whole subtree.
func packageMatcher(u *lintcheck.Unit, patterns []string) func(*lintcheck.Package) bool {
	var prefixes []string
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/...")
		if pat == "" || pat == "." || pat == "..." {
			return nil // matches everything
		}
		if !strings.HasPrefix(pat, u.ModulePath) {
			pat = u.ModulePath + "/" + pat
		}
		prefixes = append(prefixes, pat)
	}
	if len(prefixes) == 0 {
		return nil
	}
	return func(p *lintcheck.Package) bool {
		for _, pre := range prefixes {
			if p.Path == pre || strings.HasPrefix(p.Path, pre+"/") {
				return true
			}
		}
		return false
	}
}

// emit writes best-effort CLI output; a broken stdout pipe is not a lint
// failure.
func emit(w io.Writer, format string, args ...any) {
	//lint:ignore errcheck-lite best-effort CLI output
	_, _ = fmt.Fprintf(w, format, args...)
}
