package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(tree string) string {
	return filepath.Join("..", "..", "internal", "lintcheck", "testdata", "src", tree)
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"modmath", "overflowvol", "errcheck-lite", "syncmisuse", "facade-complete"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestFindingsExitNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixture("modmath"), "-enable", "modmath"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run on seeded-bad fixture = %d, want 1; stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "[modmath]") {
		t.Errorf("output missing modmath findings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s) across") {
		t.Errorf("output missing summary line:\n%s", out.String())
	}
}

func TestDisableSilencesAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixture("modmath"), "-disable", "modmath"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run with sole offending analyzer disabled = %d, want 0\nstdout %q stderr %q",
			code, out.String(), errb.String())
	}
}

func TestJSONOutputOnCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixture("facade-good"), "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run on clean fixture = %d, stderr %q", code, errb.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean fixture produced %d findings: %s", len(findings), out.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-enable", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("run(-enable=nope) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %q", errb.String())
	}
}

func TestPackagePatternRestricts(t *testing.T) {
	var out, errb bytes.Buffer
	// The modmath tree has findings only under bad/; restricting the run to
	// good/ must come back clean.
	code := run([]string{"-root", fixture("modmath"), "-enable", "modmath", "good"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run restricted to good/ = %d, want 0\nstdout %q", code, out.String())
	}
	code = run([]string{"-root", fixture("modmath"), "-enable", "modmath", "bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run restricted to bad/ = %d, want 1", code)
	}
}

func TestGithubFormat(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixture("modmath"), "-enable", "modmath", "-format", "github"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run -format=github on seeded-bad fixture = %d, want 1; stderr %q", code, errb.String())
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if !strings.HasPrefix(line, "::error file=bad/bad.go,line=") {
			t.Errorf("annotation line has wrong shape: %q", line)
		}
		if !strings.Contains(line, "title=toruslint/modmath::") {
			t.Errorf("annotation line missing analyzer title: %q", line)
		}
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-format", "xml"}, &out, &errb); code != 2 {
		t.Fatalf("run(-format=xml) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown -format") {
		t.Errorf("stderr missing diagnostic: %q", errb.String())
	}
}

// writeTree materializes a map of relative path -> contents under a temp dir.
func writeTree(t *testing.T, files map[string]string) string {
	t.Helper()
	root := t.TempDir()
	for rel, contents := range files {
		path := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(contents), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return root
}

const fixableCtxflow = `// Package demo drops an in-scope context with a mechanical fix available.
package demo

import "context"

// Work does work without a context.
func Work(n int) int { return n + 1 }

// WorkCtx is the context-threading variant of Work.
func WorkCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n + 1
}

// Run drops the context.
func Run(ctx context.Context, n int) int {
	return Work(n)
}
`

const fixableSpanend = `// Package span leaks a span with a mechanical defer fix available.
package span

import "context"

// Span is a minimal span; End is nil-safe.
type Span struct{ ended bool }

// End closes the span.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.ended = true
}

// Start opens a span.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	_ = name
	return ctx, &Span{}
}

// Leaky forgets to end its span on the error path.
func Leaky(ctx context.Context, fail bool) error {
	ctx, sp := Start(ctx, "span.leaky")
	_ = ctx
	if fail {
		return context.Canceled
	}
	sp.End()
	return nil
}
`

// TestFixAppliesAndConverges pins the -fix contract: applying fixes removes
// the findings, the re-run inside the same invocation reports the tree
// clean, and a second -fix run is a no-op (idempotence).
func TestFixAppliesAndConverges(t *testing.T) {
	root := writeTree(t, map[string]string{
		"demo/demo.go": fixableCtxflow,
		"span/span.go": fixableSpanend,
	})
	args := []string{"-root", root, "-enable", "ctxflow,spanend", "-fix"}

	var out, errb bytes.Buffer
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("first -fix run = %d, want 0 (all findings fixable)\nstdout %q\nstderr %q",
			code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "applied 2 fix(es)") {
		t.Errorf("fix summary missing: %q", errb.String())
	}
	fixed, err := os.ReadFile(filepath.Join(root, "demo", "demo.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fixed), "return WorkCtx(ctx, n)") {
		t.Errorf("ctxflow fix not applied:\n%s", fixed)
	}
	spanFixed, err := os.ReadFile(filepath.Join(root, "span", "span.go"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(spanFixed), "defer sp.End()") {
		t.Errorf("spanend fix not applied:\n%s", spanFixed)
	}

	out.Reset()
	errb.Reset()
	if code := run(args, &out, &errb); code != 0 {
		t.Fatalf("second -fix run = %d, want 0\nstdout %q\nstderr %q", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "applied 0 fix(es)") {
		t.Errorf("second run should apply nothing: %q", errb.String())
	}
}
