package main

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"strings"
	"testing"
)

func fixture(tree string) string {
	return filepath.Join("..", "..", "internal", "lintcheck", "testdata", "src", tree)
}

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr %q", code, errb.String())
	}
	for _, name := range []string{"modmath", "overflowvol", "errcheck-lite", "syncmisuse", "facade-complete"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestFindingsExitNonzero(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixture("modmath"), "-enable", "modmath"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run on seeded-bad fixture = %d, want 1; stderr %q", code, errb.String())
	}
	if !strings.Contains(out.String(), "[modmath]") {
		t.Errorf("output missing modmath findings:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "finding(s) across") {
		t.Errorf("output missing summary line:\n%s", out.String())
	}
}

func TestDisableSilencesAnalyzer(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixture("modmath"), "-disable", "modmath"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run with sole offending analyzer disabled = %d, want 0\nstdout %q stderr %q",
			code, out.String(), errb.String())
	}
}

func TestJSONOutputOnCleanTree(t *testing.T) {
	var out, errb bytes.Buffer
	code := run([]string{"-root", fixture("facade-good"), "-json"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run on clean fixture = %d, stderr %q", code, errb.String())
	}
	var findings []map[string]any
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("-json output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 0 {
		t.Errorf("clean fixture produced %d findings: %s", len(findings), out.String())
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-enable", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("run(-enable=nope) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing diagnostic: %q", errb.String())
	}
}

func TestPackagePatternRestricts(t *testing.T) {
	var out, errb bytes.Buffer
	// The modmath tree has findings only under bad/; restricting the run to
	// good/ must come back clean.
	code := run([]string{"-root", fixture("modmath"), "-enable", "modmath", "good"}, &out, &errb)
	if code != 0 {
		t.Fatalf("run restricted to good/ = %d, want 0\nstdout %q", code, out.String())
	}
	code = run([]string{"-root", fixture("modmath"), "-enable", "modmath", "bad"}, &out, &errb)
	if code != 1 {
		t.Fatalf("run restricted to bad/ = %d, want 1", code)
	}
}
