// Command torusd serves the torusnet analyses over HTTP: exact E_max loads
// (POST /v1/analyze), the paper's lower bounds (POST /v1/bounds), bisection
// constructions (POST /v1/bisect), async placement searches
// (POST /v1/optimize → 202 + job id, polled at GET /v1/jobs/{id}, cancelled
// with DELETE /v1/jobs/{id}), and the E1–E33 experiment registry
// (GET /v1/experiments, POST /v1/experiments/{id}), plus /healthz, expvar
// metrics at /debug/vars, and Prometheus text metrics at /metrics.
// Identical requests are cached (LRU + TTL) and concurrent identical
// requests are coalesced into one computation. Searches run on their own
// goroutines outside the request pool, bounded by -max-jobs (429 past it),
// deadlined by -job-timeout, with finished records pollable for -job-ttl;
// see OPTIMIZE.md for the operator guide.
//
// Every request carries a W3C traceparent ID (incoming honored, otherwise
// minted) that is echoed on the response and in access logs; per-request
// span trees are buffered in a ring readable as JSON at /debug/traces on
// the debug sidecar. See OBSERVABILITY.md for the full operator guide.
//
// Usage:
//
//	torusd -addr :8080
//	torusd -addr 127.0.0.1:8080 -workers 8 -queue 32 -cache 1024 -ttl 10m
//	torusd -addr :8080 -debug-addr 127.0.0.1:6060   # pprof + failpoints + /debug/traces sidecar
//	torusd -addr :8080 -no-fastpath                 # force the generic load engine
//	torusd -addr :8080 -no-analytic                 # disable the closed-form fast lane
//	torusd -addr :8080 -slow-threshold 250ms        # warn-log slow requests
//	torusd -selfbench results/BENCH_service.json    # micro-benchmark, then exit
//	torusd -failpoints 'service.cache.get=error'    # boot with chaos faults armed
//	torusd -cluster -self http://10.0.0.1:8080 \
//	       -peers http://10.0.0.1:8080,http://10.0.0.2:8080,http://10.0.0.3:8080
//	torusd -cluster -self http://10.0.0.1:8080 -peers-file /etc/torusd/peers \
//	       -replication 2                          # SIGHUP re-reads the peers file
//
// Cluster mode shards canonical cache keys across the -peers membership on
// a consistent-hash ring: a local cache miss for a key homed on another
// peer is fetched from that peer (falling back to local compute if it
// cannot answer), so the cluster computes each answer once globally. Each
// key has -replication owners (default 2): the primary's exact answers are
// write-through-replicated to the backups, so a shard death loses no cached
// work — fills fail over along the owner list. Membership is dynamic:
// POST /debug/cluster/membership ({"join": url} / {"leave": url} /
// {"peers": [...]}) on the debug sidecar swaps the ring at a new epoch, and
// with -peers-file a SIGHUP re-reads the file and applies it the same way.
// /readyz reports readiness (ring joined) plus the current epoch; /healthz
// stays pure liveness. The debug sidecar gains /debug/cluster (ring status,
// and ?key=... for a key's replicated owner list).
//
// Under sustained pool pressure (past -degrade-at utilization) /v1/analyze
// answers with a Monte Carlo estimate tagged "degraded": true instead of
// queueing; a watchdog replaces pool workers wedged past -wedge-timeout.
// Fault-injection sites (see internal/failpoint) are armed via the
// -failpoints flag, the TORUSNET_FAILPOINTS environment variable, or at
// runtime through /debug/failpoints on the debug sidecar — never on the
// public API address.
//
// Shutdown is graceful: SIGINT/SIGTERM stop intake and drain in-flight
// analyses before the process exits.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"torusnet/internal/cluster"
	"torusnet/internal/failpoint"
	"torusnet/internal/obs"
	"torusnet/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", 0, "analysis pool goroutines (0 = GOMAXPROCS)")
		queue       = flag.Int("queue", 0, "pending-request queue depth (0 = 2×workers)")
		analysisW   = flag.Int("analysis-workers", 0, "load-engine workers per analysis (0 = 1)")
		cacheSize   = flag.Int("cache", 0, "result cache capacity in entries (0 = 512)")
		cacheTTL    = flag.Duration("ttl", 0, "result cache TTL (0 = 10m, negative = no expiry)")
		timeout     = flag.Duration("timeout", 0, "per-request compute deadline (0 = 60s)")
		maxNodes    = flag.Int("max-nodes", 0, "k^d ceiling per request (0 = 4096)")
		maxJobs     = flag.Int("max-jobs", 0, "concurrent async search jobs; submissions past it answer 429 (0 = 4)")
		jobTTL      = flag.Duration("job-ttl", 0, "how long finished job records stay pollable (0 = 15m, negative = forever)")
		jobTimeout  = flag.Duration("job-timeout", 0, "per-job search deadline (0 = 5m)")
		noFastPath  = flag.Bool("no-fastpath", false, "disable the translation-symmetry load fast path (generic engine only)")
		noAnalytic  = flag.Bool("no-analytic", false, "disable the closed-form analytic fast lane for /v1/analyze")
		debugAddr   = flag.String("debug-addr", "", "serve net/http/pprof and /debug/failpoints on this separate address (empty = disabled)")
		selfbench   = flag.String("selfbench", "", "run the cached-vs-uncached micro-benchmark, write JSON to this file, and exit")
		selfbenchN  = flag.Int("selfbench-n", 200, "requests per selfbench series")
		degradeAt   = flag.Float64("degrade-at", 0, "pool-utilization watermark past which /v1/analyze answers degraded Monte Carlo estimates (0 = 0.9, negative = never)")
		degradedN   = flag.Int("degraded-rounds", 0, "Monte Carlo rounds behind degraded answers (0 = 16)")
		wedge       = flag.Duration("wedge-timeout", 0, "watchdog deadline before a wedged pool worker is replaced (0 = 2×timeout, negative = no watchdog)")
		failpoints  = flag.String("failpoints", "", "semicolon-separated site=spec failpoints to arm at boot (see /debug/failpoints for sites)")
		traceBuf    = flag.Int("trace-buf", 0, "finished request traces retained for /debug/traces (0 = 256, negative = tracing off)")
		slowThresh  = flag.Duration("slow-threshold", 0, "warn-log requests slower than this (0 = disabled)")
		clusterOn   = flag.Bool("cluster", false, "enable sharded cluster mode (requires -self and -peers)")
		selfURL     = flag.String("self", "", "this node's advertised base URL in cluster mode (e.g. http://10.0.0.1:8080)")
		peersList   = flag.String("peers", "", "comma-separated base URLs of the full cluster membership (self included)")
		peersFile   = flag.String("peers-file", "", "file holding the cluster membership (one URL per line, # comments); SIGHUP re-reads and applies it")
		replicas    = flag.Int("ring-replicas", 0, "virtual nodes per peer on the consistent-hash ring (0 = 64)")
		replication = flag.Int("replication", 0, "owners per key; exact results are write-through-replicated to the backups (0 = 2)")
	)
	flag.Parse()

	// Gated counters (e.g. the routing-kernel pair counters) record only in
	// serving processes; tests and benchmarks keep the gate off.
	obs.SetCountersEnabled(true)
	var tracer *obs.Tracer
	if *traceBuf >= 0 {
		tracer = obs.NewTracer(*traceBuf)
	}

	cfg := service.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		AnalysisWorkers:  *analysisW,
		CacheSize:        *cacheSize,
		CacheTTL:         *cacheTTL,
		RequestTimeout:   *timeout,
		MaxNodes:         *maxNodes,
		MaxJobs:          *maxJobs,
		JobTTL:           *jobTTL,
		JobTimeout:       *jobTimeout,
		DisableFastPath:  *noFastPath,
		EnableAnalytic:   !*noAnalytic,
		DegradeWatermark: *degradeAt,
		DegradedRounds:   *degradedN,
		WedgeTimeout:     *wedge,
		AccessLog:        os.Stderr,
		Tracer:           tracer,
		SlowThreshold:    *slowThresh,
	}
	if *clusterOn {
		cl, err := buildCluster(*selfURL, *peersList, *peersFile, *replicas, *replication)
		if err != nil {
			fmt.Fprintln(os.Stderr, "torusd:", err)
			os.Exit(1)
		}
		cfg.Cluster = cl
		if *peersFile != "" {
			watchPeersFile(cl, *peersFile)
		}
	}

	// Arm chaos faults before serving: env first, then the flag (the flag
	// wins on conflicting sites).
	if n, err := failpoint.EnableFromEnv(); err != nil {
		fmt.Fprintln(os.Stderr, "torusd:", err)
		os.Exit(1)
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "torusd: %d failpoint(s) armed from %s\n", n, failpoint.EnvVar)
	}
	if n, err := failpoint.EnableAll(*failpoints); err != nil {
		fmt.Fprintln(os.Stderr, "torusd:", err)
		os.Exit(1)
	} else if n > 0 {
		fmt.Fprintf(os.Stderr, "torusd: %d failpoint(s) armed from -failpoints\n", n)
	}

	var err error
	if *selfbench != "" {
		err = runSelfBench(cfg, *selfbench, *selfbenchN)
	} else {
		err = run(cfg, *addr, *debugAddr)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "torusd:", err)
		os.Exit(1)
	}
}

// buildCluster assembles this node's shard-ring view from the
// -self/-peers (or -peers-file) flags. Each remote peer gets its own
// resilient fill client (per-peer breaker state); the fill policy retries
// once with short backoff and no hedging, because every fill failure has a
// cheap local fallback — computing the answer ourselves.
func buildCluster(self, peers, peersFile string, replicas, replication int) (*cluster.Cluster, error) {
	if self == "" || (peers == "" && peersFile == "") {
		return nil, errors.New("-cluster requires -self and -peers or -peers-file")
	}
	if peers != "" && peersFile != "" {
		return nil, errors.New("-peers and -peers-file are mutually exclusive")
	}
	var members []string
	if peersFile != "" {
		var err error
		if members, err = readPeersFile(peersFile); err != nil {
			return nil, err
		}
	} else {
		members = parsePeers(peers)
	}
	rcfg := service.ResilienceConfig{
		MaxAttempts: 2,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
	}
	return cluster.New(cluster.Config{
		Self:        strings.TrimRight(self, "/"),
		Peers:       members,
		Replicas:    replicas,
		Replication: replication,
		Dial: func(u string) cluster.PeerTransport {
			return service.NewPeerFillClient(u, rcfg)
		},
	})
}

// parsePeers splits a comma- or newline-separated membership list,
// dropping blanks and #-comment lines.
func parsePeers(s string) []string {
	var members []string
	for _, p := range strings.FieldsFunc(s, func(r rune) bool { return r == ',' || r == '\n' || r == '\r' }) {
		p = strings.TrimSpace(p)
		if p == "" || strings.HasPrefix(p, "#") {
			continue
		}
		members = append(members, strings.TrimRight(p, "/"))
	}
	return members
}

// readPeersFile loads the membership from a peers file: one URL per line
// (commas also accepted), blank lines and #-comments ignored.
func readPeersFile(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("peers file: %w", err)
	}
	members := parsePeers(string(data))
	if len(members) == 0 {
		return nil, fmt.Errorf("peers file %s: no peer URLs", path)
	}
	return members, nil
}

// watchPeersFile re-reads the peers file on every SIGHUP and applies it
// through the membership controller — the operator's config-reload path
// for rolling membership changes without restarts.
func watchPeersFile(cl *cluster.Cluster, path string) {
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			members, err := readPeersFile(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "torusd: SIGHUP reload:", err)
				continue
			}
			epoch, err := cl.Membership().Set(members)
			if err != nil {
				fmt.Fprintln(os.Stderr, "torusd: SIGHUP membership:", err)
				continue
			}
			fmt.Fprintf(os.Stderr, "torusd: membership reloaded from %s: %d peer(s), epoch %d\n", path, len(members), epoch)
		}
	}()
}

// run serves until SIGINT/SIGTERM, then drains gracefully. When debugAddr
// is non-empty a second listener serves net/http/pprof on its own mux, so
// profiling endpoints never leak onto the public API address.
func run(cfg service.Config, addr, debugAddr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := service.New(cfg)
	expvar.Publish("torusd", srv.ExpvarMap())
	fmt.Fprintf(os.Stderr, "torusd: listening on %s\n", ln.Addr())

	var debugSrv *http.Server
	if debugAddr != "" {
		dln, err := net.Listen("tcp", debugAddr)
		if err != nil {
			if cerr := ln.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "torusd: closing api listener:", cerr)
			}
			return fmt.Errorf("debug listener: %w", err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		fph := failpoint.Handler("/debug/failpoints")
		mux.Handle("/debug/failpoints", fph)
		mux.Handle("/debug/failpoints/", fph)
		if cfg.Tracer != nil {
			mux.Handle("/debug/traces", cfg.Tracer.Handler())
		}
		if cfg.Cluster != nil {
			mux.Handle("/debug/cluster", cfg.Cluster.Handler())
			mux.Handle("/debug/cluster/membership", cfg.Cluster.MembershipHandler())
		}
		debugSrv = &http.Server{Handler: mux}
		fmt.Fprintf(os.Stderr, "torusd: pprof + failpoints + traces on %s\n", dln.Addr())
		go func() {
			if err := debugSrv.Serve(dln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "torusd: pprof server:", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "torusd: draining")

	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if debugSrv != nil {
		if err := debugSrv.Shutdown(shutCtx); err != nil {
			fmt.Fprintln(os.Stderr, "torusd: pprof shutdown:", err)
		}
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "torusd: stopped")
	return nil
}
