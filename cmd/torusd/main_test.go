package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"torusnet/internal/service"
)

// TestRunSelfBench drives the selfbench harness end to end with a tiny
// request count and checks the emitted BENCH_service.json is well formed.
func TestRunSelfBench(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	if err := runSelfBench(service.Config{Workers: 2}, out, 3); err != nil {
		t.Fatalf("runSelfBench: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Benchmark == "" || rep.Torus != "T^2_8" {
		t.Errorf("unexpected header: benchmark=%q torus=%q", rep.Benchmark, rep.Torus)
	}
	for name, s := range map[string]benchSeries{"uncached": rep.Uncached, "cached": rep.Cached} {
		if s.Requests != 3 {
			t.Errorf("%s: requests = %d, want 3", name, s.Requests)
		}
		if s.RequestsPerS <= 0 || s.P50MS <= 0 || s.P99MS <= 0 || s.MeanMS <= 0 {
			t.Errorf("%s: non-positive stats: %+v", name, s)
		}
		if s.P99MS < s.P50MS {
			t.Errorf("%s: p99 %.3fms < p50 %.3fms", name, s.P99MS, s.P50MS)
		}
	}
	if rep.Uncached.CacheHitShare != 0 {
		t.Errorf("uncached series reported cache hits: %+v", rep.Uncached)
	}
	if rep.Cached.CacheHitShare != 1 {
		t.Errorf("cached series hit share = %v, want 1 (primed)", rep.Cached.CacheHitShare)
	}
	if rep.Analytic != nil {
		t.Errorf("analytic series reported with the lane disabled: %+v", rep.Analytic)
	}
}

// TestRunSelfBenchAnalytic checks the lane-enabled config (the torusd
// default) still primes the cached series to a 100% hit share and adds
// the analytic series, which never touches the cache.
func TestRunSelfBenchAnalytic(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_service.json")
	if err := runSelfBench(service.Config{Workers: 2, EnableAnalytic: true}, out, 3); err != nil {
		t.Fatalf("runSelfBench: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, data)
	}
	if rep.Cached.CacheHitShare != 1 {
		t.Errorf("cached series hit share = %v, want 1 (lane must not intercept it)", rep.Cached.CacheHitShare)
	}
	if rep.Analytic == nil {
		t.Fatal("analytic series missing with the lane enabled")
	}
	if rep.Analytic.Requests != 3 || rep.Analytic.CacheHitShare != 0 {
		t.Errorf("analytic series: %+v, want 3 uncached-lane requests", rep.Analytic)
	}
}

// TestRunSelfBenchBadPath checks write failures surface as errors.
func TestRunSelfBenchBadPath(t *testing.T) {
	out := filepath.Join(t.TempDir(), "no-such-dir", "bench.json")
	if err := runSelfBench(service.Config{Workers: 1}, out, 1); err == nil {
		t.Fatal("expected an error writing to a missing directory")
	}
}

func TestPercentile(t *testing.T) {
	sorted := make([]time.Duration, 10)
	for i := range sorted {
		sorted[i] = time.Duration(i + 1)
	}
	cases := []struct {
		p    int
		want time.Duration
	}{{50, 5}, {99, 10}, {1, 1}, {100, 10}}
	for _, c := range cases {
		if got := percentile(sorted, c.p); got != c.want {
			t.Errorf("percentile(p=%d) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %d, want 0", got)
	}
}
