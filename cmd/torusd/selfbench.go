package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sort"
	"time"

	"torusnet/internal/service"
)

// benchSeries is one measured request series of the selfbench harness.
type benchSeries struct {
	Requests      int     `json:"requests"`
	RequestsPerS  float64 `json:"requests_per_s"`
	P50MS         float64 `json:"p50_ms"`
	P99MS         float64 `json:"p99_ms"`
	MeanMS        float64 `json:"mean_ms"`
	CacheHitShare float64 `json:"cache_hit_share"`
}

// benchReport is the BENCH_service.json schema: the serving-layer
// micro-benchmark for /v1/analyze on T²₈ — cached vs uncached compute
// answers, plus the closed-form analytic lane when it is enabled.
type benchReport struct {
	Benchmark string      `json:"benchmark"`
	Torus     string      `json:"torus"`
	Placement string      `json:"placement"`
	Routing   string      `json:"routing"`
	Uncached  benchSeries `json:"uncached"`
	Cached    benchSeries `json:"cached"`
	// Analytic measures linear:0 answered by the closed-form lane; nil
	// when the server config leaves the lane disabled. Analytic answers
	// never touch the result cache, so its hit share is always 0.
	Analytic *benchSeries `json:"analytic,omitempty"`
}

// runSelfBench boots an in-process torusd on an ephemeral port, drives one
// uncached and one cached /v1/analyze series against it over real HTTP,
// and writes the latency/throughput report to outPath.
func runSelfBench(cfg service.Config, outPath string, n int) error {
	if n <= 0 {
		n = 1
	}
	cfg.AccessLog = nil // keep the benchmark loop free of log I/O
	if cfg.CacheSize < 2*n {
		cfg.CacheSize = 2 * n // the uncached series must not evict itself into re-misses
	}
	srv := service.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	defer func() {
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if serr := srv.Shutdown(shutCtx); serr != nil {
			fmt.Fprintln(os.Stderr, "torusd: selfbench shutdown:", serr)
		}
		<-errCh // Serve has returned; the listener is closed
	}()

	client := service.NewClient("http://" + ln.Addr().String())
	ctx := context.Background()

	// Uncached: every request is a distinct key (random placements with
	// distinct seeds on T²₈), so each one runs the full analysis.
	uncached, err := measure(ctx, client, n, func(i int) service.AnalyzeRequest {
		return service.AnalyzeRequest{
			K: 8, D: 2,
			Placement: fmt.Sprintf("random:8:%d", i+1),
			Routing:   "odr",
		}
	})
	if err != nil {
		return err
	}

	// Cached: one fixed request repeated; after the priming miss every
	// request is a cache hit. The placement is a random one (seed 0,
	// disjoint from the uncached seeds) rather than linear:0 so the
	// series still exercises the cache when the analytic lane is on —
	// the lane would otherwise intercept a linear placement before the
	// cache lookup.
	fixed := service.AnalyzeRequest{K: 8, D: 2, Placement: "random:8:0", Routing: "odr"}
	if _, err := client.Analyze(ctx, fixed); err != nil {
		return err
	}
	cached, err := measure(ctx, client, n, func(int) service.AnalyzeRequest { return fixed })
	if err != nil {
		return err
	}

	report := benchReport{
		Benchmark: "torusd /v1/analyze",
		Torus:     "T^2_8",
		Placement: "random:8:0 (cached) / random:8:<seed> (uncached)",
		Routing:   "odr",
		Uncached:  uncached,
		Cached:    cached,
	}

	// Analytic: the closed-form lane answers linear:0 without touching
	// the pool or the cache; measured only when the lane is enabled.
	if cfg.EnableAnalytic {
		linear := service.AnalyzeRequest{K: 8, D: 2, Placement: "linear:0", Routing: "odr"}
		analytic, err := measure(ctx, client, n, func(int) service.AnalyzeRequest { return linear })
		if err != nil {
			return err
		}
		report.Analytic = &analytic
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "torusd: selfbench wrote %s (uncached %.0f req/s p99 %.2fms, cached %.0f req/s p99 %.2fms)\n",
		outPath, report.Uncached.RequestsPerS, report.Uncached.P99MS,
		report.Cached.RequestsPerS, report.Cached.P99MS)
	if report.Analytic != nil {
		fmt.Fprintf(os.Stderr, "torusd: selfbench analytic lane %.0f req/s p99 %.2fms\n",
			report.Analytic.RequestsPerS, report.Analytic.P99MS)
	}
	return nil
}

// measure issues n sequential requests and summarizes their latencies.
func measure(ctx context.Context, client *service.Client, n int, req func(i int) service.AnalyzeRequest) (benchSeries, error) {
	durs := make([]time.Duration, 0, n)
	hits := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		t0 := time.Now()
		resp, err := client.Analyze(ctx, req(i))
		if err != nil {
			return benchSeries{}, err
		}
		durs = append(durs, time.Since(t0))
		if resp.Cached {
			hits++
		}
	}
	total := time.Since(start)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var sum time.Duration
	for _, d := range durs {
		sum += d
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return benchSeries{
		Requests:      n,
		RequestsPerS:  float64(n) / total.Seconds(),
		P50MS:         ms(percentile(durs, 50)),
		P99MS:         ms(percentile(durs, 99)),
		MeanMS:        ms(sum / time.Duration(n)),
		CacheHitShare: float64(hits) / float64(n),
	}, nil
}

// percentile returns the p-th percentile of sorted durations
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (p*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return sorted[idx-1]
}
