// Command torusplace certifies a placement family optimal (or not) in the
// paper's sense: it sweeps the radix k for a fixed dimension d, measures
// E_max under the chosen routing algorithm, fits the growth exponent of
// E_max against k, and compares it with the placement-size exponent — a
// placement is optimal when both grow like k^{d−1} and the ratio
// E_max / (§4 lower bound) stays bounded.
//
// With -serve it instead boots the same HTTP service torusd exposes —
// /v1/analyze, /v1/optimize, /v1/jobs and friends — so a placement search
// can be driven from the certifier binary alone (handy on hosts where only
// torusplace is installed). The sweep flags are ignored in serve mode.
//
// Usage:
//
//	torusplace -d 3 -placement linear -routing udr -kmin 4 -kmax 10
//	torusplace -d 2 -placement full -routing odr -kmin 4 -kmax 12
//	torusplace -serve :8080 -workers 4
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"torusnet/internal/bounds"
	"torusnet/internal/cliutil"
	"torusnet/internal/load"
	"torusnet/internal/service"
	"torusnet/internal/stats"
	"torusnet/internal/torus"
)

func main() {
	var (
		d         = flag.Int("d", 2, "torus dimensions")
		kmin      = flag.Int("kmin", 4, "smallest radix")
		kmax      = flag.Int("kmax", 10, "largest radix")
		kstep     = flag.Int("kstep", 2, "radix step")
		placeSpec = flag.String("placement", "linear", "placement spec (see torusload)")
		routeSpec = flag.String("routing", "odr", "routing: odr|odr-multi|udr|udr-multi|far")
		workers   = flag.Int("workers", 0, "load-engine workers")
		serveAddr = flag.String("serve", "", "serve the torusd HTTP API on this address instead of sweeping (empty = sweep mode)")
	)
	flag.Parse()

	var err error
	if *serveAddr != "" {
		err = serve(*serveAddr, *workers)
	} else {
		err = run(*d, *kmin, *kmax, *kstep, *placeSpec, *routeSpec, *workers)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "torusplace:", err)
		os.Exit(1)
	}
}

// serve boots the shared HTTP service — same handlers, cache, job manager,
// and metrics as torusd, minus torusd's cluster/debug/selfbench trimmings —
// and drains gracefully on SIGINT/SIGTERM.
func serve(addr string, workers int) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := service.New(service.Config{AnalysisWorkers: workers, AccessLog: os.Stderr})
	fmt.Fprintf(os.Stderr, "torusplace: serving torusd API on %s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintln(os.Stderr, "torusplace: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		return err
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	fmt.Fprintln(os.Stderr, "torusplace: stopped")
	return nil
}

func run(d, kmin, kmax, kstep int, placeSpec, routeSpec string, workers int) error {
	if kstep < 1 {
		return fmt.Errorf("kstep must be positive")
	}
	if kmin < 2 || kmax < kmin {
		return fmt.Errorf("need 2 <= kmin <= kmax")
	}
	spec, err := cliutil.ParsePlacement(placeSpec)
	if err != nil {
		return err
	}
	alg, err := cliutil.ParseRouting(routeSpec)
	if err != nil {
		return err
	}

	fmt.Printf("placement family %q, routing %s, d=%d\n\n", spec.Name(), alg.Name(), d)
	fmt.Printf("%6s %8s %12s %14s %16s %12s\n", "k", "|P|", "E_max", "E_max/|P|", "§4 bound c²k^{d-1}/8", "ratio")

	var ks, sizes, loads, ratios []float64
	for k := kmin; k <= kmax; k += kstep {
		if err := torus.Check(k, d); err != nil {
			return err
		}
		t := torus.New(k, d)
		p, err := spec.Build(t)
		if err != nil {
			return err
		}
		res := load.Compute(p, alg, load.Options{Workers: workers})
		kd1 := 1.0
		for i := 0; i < d-1; i++ {
			kd1 *= float64(k)
		}
		c := float64(p.Size()) / kd1
		lb := bounds.Improved(c, k, d)
		ratio := res.Max / lb
		fmt.Printf("%6d %8d %12.2f %14.4f %16.2f %12.3f\n",
			k, p.Size(), res.Max, res.Max/float64(p.Size()), lb, ratio)
		ks = append(ks, float64(k))
		sizes = append(sizes, float64(p.Size()))
		loads = append(loads, res.Max)
		ratios = append(ratios, ratio)
	}

	loadExp := stats.GrowthExponent(ks, loads)
	sizeExp := stats.GrowthExponent(ks, sizes)
	fmt.Printf("\nfitted exponents: |P| ~ k^%.2f, E_max ~ k^%.2f (optimal placement: both = d−1 = %d)\n",
		sizeExp, loadExp, d-1)
	rs := stats.Summarize(ratios)
	fmt.Printf("E_max over the §4 bound: min %.3f, mean %.3f, max %.3f\n", rs.Min, rs.Mean, rs.Max)

	switch {
	case loadExp > float64(d-1)+0.5:
		fmt.Println("\nverdict: NOT optimal — the maximum load grows superlinearly in the placement size's natural scale.")
	case rs.Max > 16:
		fmt.Println("\nverdict: load is k^{d-1}-scaled but far from the §4 bound; constants are poor.")
	default:
		fmt.Println("\nverdict: optimal in the paper's sense — E_max = Θ(k^{d-1}) with a bounded constant over the §4 lower bound.")
	}
	return nil
}
