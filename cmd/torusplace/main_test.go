package main

import "testing"

func TestRunErrors(t *testing.T) {
	if run(2, 4, 8, 0, "linear", "odr", 0) == nil {
		t.Error("zero step accepted")
	}
	if run(2, 8, 4, 2, "linear", "odr", 0) == nil {
		t.Error("kmax < kmin accepted")
	}
	if run(2, 4, 6, 2, "bogus", "odr", 0) == nil {
		t.Error("bad placement accepted")
	}
	if run(2, 4, 6, 2, "linear", "bogus", 0) == nil {
		t.Error("bad routing accepted")
	}
}

func TestRunSucceeds(t *testing.T) {
	if err := run(2, 4, 8, 2, "linear", "udr", 1); err != nil {
		t.Fatal(err)
	}
	if err := run(2, 4, 8, 2, "full", "odr", 1); err != nil {
		t.Fatal(err)
	}
}
