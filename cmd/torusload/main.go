// Command torusload computes the exact communication load of a placement
// and routing algorithm on T^d_k under one complete exchange, together with
// every lower bound of the paper and the resulting optimality verdict.
//
// Usage:
//
//	torusload -k 8 -d 3 -placement linear -routing odr
//	torusload -k 6 -d 2 -placement multi:2 -routing udr -dist
//	torusload -k 4 -d 3 -placement full -routing odr -mc 100
package main

import (
	"flag"
	"fmt"
	"os"

	"torusnet/internal/cliutil"
	"torusnet/internal/core"
	"torusnet/internal/load"
	"torusnet/internal/stats"
	"torusnet/internal/torus"
)

func main() {
	var (
		k         = flag.Int("k", 8, "torus radix (nodes per dimension)")
		d         = flag.Int("d", 2, "torus dimensions")
		placeSpec = flag.String("placement", "linear", "placement: linear[:C]|multi:T[:S]|diagonal[:S]|full|random:N[:SEED]")
		routeSpec = flag.String("routing", "odr", "routing: odr|odr-multi|udr|far")
		workers   = flag.Int("workers", 0, "load-engine workers (0 = GOMAXPROCS)")
		dist      = flag.Bool("dist", false, "print the load distribution histogram")
		mcRounds  = flag.Int("mc", 0, "also run a Monte-Carlo estimate with this many rounds")
		seed      = flag.Int64("seed", 1, "Monte-Carlo seed")
		full      = flag.Bool("full", false, "run the full pipeline: faults, coverage, scheduling")
	)
	flag.Parse()

	if err := run(*k, *d, *placeSpec, *routeSpec, *workers, *dist, *mcRounds, *seed, *full); err != nil {
		fmt.Fprintln(os.Stderr, "torusload:", err)
		os.Exit(1)
	}
}

func run(k, d int, placeSpec, routeSpec string, workers int, dist bool, mcRounds int, seed int64, full bool) error {
	if err := torus.Check(k, d); err != nil {
		return err
	}
	spec, err := cliutil.ParsePlacement(placeSpec)
	if err != nil {
		return err
	}
	alg, err := cliutil.ParseRouting(routeSpec)
	if err != nil {
		return err
	}
	t := torus.New(k, d)
	p, err := spec.Build(t)
	if err != nil {
		return err
	}

	if full {
		rep := core.AnalyzeFull(p, alg, workers)
		fmt.Print(rep)
		return nil
	}
	rep := core.Analyze(p, alg, workers)
	fmt.Print(rep)

	if dist {
		h := stats.NewHistogram(rep.Load.Loads, 12)
		fmt.Println("\nload distribution over directed edges:")
		fmt.Print(h.Render(48))
		fmt.Printf("nonzero edges: %d of %d, mean load %.4f (nonzero mean %.4f)\n",
			rep.Load.NonzeroEdges(), t.Edges(), rep.Load.Mean(), rep.Load.MeanNonzero())
		fmt.Printf("per-dimension max:")
		for j, v := range rep.Load.PerDimensionMax() {
			fmt.Printf(" dim%d=%.4f", j, v)
		}
		fmt.Println()
	}

	if mcRounds > 0 {
		mc := load.MonteCarlo(p, alg, mcRounds, seed, load.Options{Workers: workers})
		fmt.Printf("\nMonte-Carlo over %d exchanges: max mean load %.4f (exact %.4f), max single-round peak %.0f\n",
			mcRounds, mc.MaxMean, rep.Load.Max, mc.MaxPeak)
	}
	return nil
}
