package main

import "testing"

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  func() error
	}{
		{"bad torus", func() error { return run(1, 2, "linear", "odr", 0, false, 0, 1, false) }},
		{"bad placement", func() error { return run(4, 2, "nope", "odr", 0, false, 0, 1, false) }},
		{"bad routing", func() error { return run(4, 2, "linear", "nope", 0, false, 0, 1, false) }},
		{"unbuildable placement", func() error { return run(4, 2, "random:999", "odr", 0, false, 0, 1, false) }},
	}
	for _, c := range cases {
		if c.err() == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRunSucceeds(t *testing.T) {
	if err := run(4, 2, "linear", "udr", 1, true, 5, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(4, 2, "multi:2", "odr", 1, false, 0, 1, true); err != nil {
		t.Fatal(err)
	}
}
