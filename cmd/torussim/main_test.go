package main

import "testing"

func TestRunErrors(t *testing.T) {
	if run(1, 2, "linear", "odr", 1, 0, 0, false, 0, 0, false) == nil {
		t.Error("bad torus accepted")
	}
	if run(4, 2, "bogus", "odr", 1, 0, 0, false, 0, 0, false) == nil {
		t.Error("bad placement accepted")
	}
	if run(4, 2, "linear", "bogus", 1, 0, 0, false, 0, 0, false) == nil {
		t.Error("bad routing accepted")
	}
	if runWormhole(1, 2, "linear", "odr", 1, 0, 4, 2, 2) == nil {
		t.Error("bad torus accepted by wormhole")
	}
}

func TestRunSucceeds(t *testing.T) {
	if err := run(4, 2, "linear", "udr", 1, 1, 1000, true, 4, 1, false); err != nil {
		t.Fatal(err)
	}
	if err := run(6, 2, "full", "odr", 1, 1, 100000, false, 0, 0, true); err != nil {
		t.Fatal(err)
	}
	if err := runWormhole(4, 2, "linear", "odr", 1, 100000, 2, 2, 2); err != nil {
		t.Fatal(err)
	}
}
