// Command torussim runs a cycle-accurate store-and-forward simulation of a
// complete exchange on a partially populated torus and reports completion
// time, peak link traffic, queueing, and latency.
//
// Usage:
//
//	torussim -k 8 -d 2 -placement linear -routing udr
//	torussim -k 6 -d 2 -placement full -routing odr -maxcycles 100000
package main

import (
	"flag"
	"fmt"
	"os"

	"torusnet/internal/cliutil"
	"torusnet/internal/load"
	"torusnet/internal/simnet"
	"torusnet/internal/torus"
	"torusnet/internal/wormhole"
)

func main() {
	var (
		k         = flag.Int("k", 8, "torus radix")
		d         = flag.Int("d", 2, "torus dimensions")
		placeSpec = flag.String("placement", "linear", "placement spec (see torusload)")
		routeSpec = flag.String("routing", "odr", "routing: odr|odr-multi|udr|far")
		seed      = flag.Int64("seed", 1, "path-sampling seed")
		workers   = flag.Int("workers", 0, "simulation workers (0 = GOMAXPROCS)")
		maxCycles = flag.Int("maxcycles", 0, "abort after this many cycles (0 = unlimited)")
		compare   = flag.Bool("compare", false, "also report the exact expected E_max for context")
		switching = flag.String("switching", "store", "switching: store (packet store-and-forward) | wormhole (flit-level)")
		flits     = flag.Int("flits", 4, "wormhole: flits per packet")
		vcs       = flag.Int("vcs", 2, "wormhole: virtual channels per link (1 can deadlock)")
		bufDepth  = flag.Int("bufdepth", 2, "wormhole: flit buffer depth per VC")
		queueCap  = flag.Int("queuecap", 0, "store: bounded link queues (0 = unbounded)")
		inject    = flag.Int("inject", 0, "store: cycles between a source's injections")
		adaptive  = flag.Bool("adaptive", false, "store: congestion-aware minimal routing (ignores -routing)")
	)
	flag.Parse()

	if *switching == "wormhole" {
		if err := runWormhole(*k, *d, *placeSpec, *routeSpec, *seed, *maxCycles, *flits, *vcs, *bufDepth); err != nil {
			fmt.Fprintln(os.Stderr, "torussim:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*k, *d, *placeSpec, *routeSpec, *seed, *workers, *maxCycles, *compare, *queueCap, *inject, *adaptive); err != nil {
		fmt.Fprintln(os.Stderr, "torussim:", err)
		os.Exit(1)
	}
}

func runWormhole(k, d int, placeSpec, routeSpec string, seed int64, maxCycles, flits, vcs, bufDepth int) error {
	if err := torus.Check(k, d); err != nil {
		return err
	}
	spec, err := cliutil.ParsePlacement(placeSpec)
	if err != nil {
		return err
	}
	alg, err := cliutil.ParseRouting(routeSpec)
	if err != nil {
		return err
	}
	t := torus.New(k, d)
	p, err := spec.Build(t)
	if err != nil {
		return err
	}
	st := wormhole.Run(wormhole.Config{
		Placement: p, Algorithm: alg, Seed: seed, MaxCycles: maxCycles,
		FlitsPerPacket: flits, VirtualChannels: vcs, BufferDepth: bufDepth,
	})
	fmt.Printf("%s, routing %s, wormhole F=%d V=%d B=%d\n", p, alg.Name(), flits, vcs, bufDepth)
	fmt.Println(st)
	if st.Deadlocked {
		fmt.Println("deadlock: cyclic buffer wait (try -vcs 2 with dimension-ordered routing)")
	}
	return nil
}

func run(k, d int, placeSpec, routeSpec string, seed int64, workers, maxCycles int, compare bool, queueCap, inject int, adaptive bool) error {
	if err := torus.Check(k, d); err != nil {
		return err
	}
	spec, err := cliutil.ParsePlacement(placeSpec)
	if err != nil {
		return err
	}
	alg, err := cliutil.ParseRouting(routeSpec)
	if err != nil {
		return err
	}
	t := torus.New(k, d)
	p, err := spec.Build(t)
	if err != nil {
		return err
	}

	st := simnet.Run(simnet.Config{
		Placement: p, Algorithm: alg, Seed: seed, Workers: workers, MaxCycles: maxCycles,
		QueueCapacity: queueCap, InjectInterval: inject, Adaptive: adaptive,
	})
	fmt.Printf("%s, routing %s\n", p, alg.Name())
	fmt.Printf("packets:          %d\n", st.Packets)
	fmt.Printf("cycles:           %d%s\n", st.Cycles, aborted(st))
	fmt.Printf("max link traffic: %d\n", st.MaxLinkTraffic)
	fmt.Printf("max queue length: %d\n", st.MaxQueueLen)
	fmt.Printf("total hops:       %d\n", st.TotalHops)
	fmt.Printf("latency mean/max: %.1f / %d cycles\n", st.MeanLatency, st.MaxLatency)
	fmt.Printf("throughput:       %.3f packets/cycle\n", st.Throughput())
	fmt.Printf("cycles per processor: %.3f\n", float64(st.Cycles)/float64(p.Size()))

	if compare {
		res := load.Compute(p, alg, load.Options{Workers: workers})
		fmt.Printf("\nexact expected E_max: %.4f (simulated peak traffic %d)\n", res.Max, st.MaxLinkTraffic)
	}
	return nil
}

func aborted(st *simnet.Stats) string {
	if st.Aborted {
		return " (ABORTED at maxcycles)"
	}
	return ""
}
