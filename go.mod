module torusnet

go 1.22
