// Bisection machinery end-to-end: the Theorem 1 dimension cut, the
// appendix hyperplane sweep (plus the min-width refinement), and — on a
// torus small enough — the exhaustive optimum, all feeding the Eq. 8 lower
// bound on the maximum load.
package main

import (
	"fmt"

	"torusnet"
)

func main() {
	t := torusnet.NewTorus(4, 2)
	placements := []torusnet.PlacementSpec{
		torusnet.Linear{C: 0},
		torusnet.MultipleLinear{T: 2},
		torusnet.Random{Count: 8, Seed: 7},
	}

	for _, spec := range placements {
		p, err := spec.Build(t)
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== %s (uniform: %v) ===\n", p, p.IsUniform())

		dim := torusnet.DimensionCut(p, 0)
		sweep := torusnet.SweepBisect(p)
		best := torusnet.BestSweepBisect(p)
		fmt.Printf("  %-22s width %3d, split %d|%d\n", "Theorem 1 cut (dim 0):", dim.Width(), dim.ProcsA, dim.ProcsB)
		fmt.Printf("  %-22s width %3d, split %d|%d\n", "appendix sweep:", sweep.Width(), sweep.ProcsA, sweep.ProcsB)
		fmt.Printf("  %-22s width %3d, split %d|%d\n", "min-width sweep:", best.Width(), best.ProcsA, best.ProcsB)

		// Each balanced cut yields an Eq. 8 lower bound on E_max; measure
		// the actual E_max under UDR for comparison.
		res := torusnet.ComputeLoad(p, torusnet.UDR{}, torusnet.LoadOptions{})
		bound := torusnet.BisectionBound(p.Size(), best.Width())
		fmt.Printf("  Eq.8 bound via best cut: E_max >= %.3f; measured UDR E_max = %.3f\n\n",
			bound, res.Max)
	}

	fmt.Println("Theorem 1's cut is exactly 4·k^{d-1} directed links and is balanced")
	fmt.Println("whenever the placement is uniform along the cut dimension; the sweep")
	fmt.Println("balances any placement at the cost of a wider (but still O(k^{d-1})) cut.")
}
