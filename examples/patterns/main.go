// Traffic patterns beyond complete exchange: the applications the paper's
// introduction motivates (matrix transposition, neighbor exchanges,
// table-lookup-style irregular traffic) run through the same exact load
// engine. The example also shows a structural fact: linear placements are
// closed under transpose and zero-sum shifts, because both preserve the
// residue Σp_i that defines the placement.
package main

import (
	"fmt"

	"torusnet"
)

func main() {
	const k = 8
	t := torusnet.NewTorus(k, 2)
	p, err := (torusnet.Linear{C: 0}).Build(t)
	if err != nil {
		panic(err)
	}
	fmt.Println("placement:", p)

	patterns := []torusnet.TrafficPattern{
		torusnet.PatternCompleteExchange{},
		torusnet.PatternTranspose{},
		torusnet.PatternShift{Offset: []int{1, k - 1}}, // Σ offset ≡ 0: stays inside
		torusnet.PatternHotSpot{HotIndex: 0},
		torusnet.PatternRandomPairs{Count: 20, Seed: 5},
	}

	fmt.Printf("\n%-20s %9s %9s %12s\n", "pattern", "demands", "E_max", "E_max/|P|")
	for _, pat := range patterns {
		res := torusnet.ComputePatternLoad(p, pat, torusnet.UDR{}, torusnet.LoadOptions{})
		fmt.Printf("%-20s %9d %9.3f %12.4f\n",
			pat.Name(), len(pat.Demands(p)), res.Max, res.Max/float64(p.Size()))
	}

	fmt.Println(`
complete exchange is the heavyweight; transpose and shift are permutations
(every processor sends one message) and load the network at a small constant;
the hot-spot pattern recreates the (|P|-1)/2d funnel floor no routing can
beat. Because coordinate reversal and zero-sum shifts preserve the residue
sum, the linear placement is closed under both - the motivating applications
never need a router-only node to hold data.`)

	// The BSP view: fit cycles(h) = g·h + L on the cycle simulator.
	fmt.Println("BSP superstep cost on the same placement (UDR):")
	fmt.Printf("%6s %10s\n", "h", "cycles")
	params, samples := torusnet.EstimateBSP(p, torusnet.UDR{}, 5, 1)
	for _, s := range samples {
		fmt.Printf("%6d %10d\n", s.H, s.Cycles)
	}
	fmt.Printf("fitted: %s — the gap g is the placement's cycles-per-message price.\n", params)
}
