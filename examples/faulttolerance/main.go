// Fault tolerance (§7): compare ODR's single route per pair with UDR's s!
// routes. The example measures critical links, the expected blast radius of
// one random link failure, and pair survivability as failures accumulate,
// and anchors the route counts against the 2d edge-disjointness ceiling
// from max-flow.
package main

import (
	"fmt"

	"torusnet"
)

func main() {
	const k, d = 5, 3
	t := torusnet.NewTorus(k, d)
	p, err := (torusnet.Linear{C: 0}).Build(t)
	if err != nil {
		panic(err)
	}
	fmt.Println(p)

	fmt.Println("\nroute multiplicity and critical links:")
	for _, alg := range []torusnet.RoutingAlgorithm{torusnet.ODR{}, torusnet.UDR{}} {
		rep := torusnet.AnalyzeFaults(p, alg, 0)
		fmt.Printf("  %-4s routes min/mean/max = %.0f/%.2f/%.0f, vulnerable pairs %d/%d, "+
			"E[broken pairs | 1 link failure] = %.3f\n",
			rep.Algorithm, rep.MinRoutes, rep.MeanRoutes, rep.MaxRoutes,
			rep.PairsWithCritical, rep.Pairs, rep.ExpectedBrokenPairs)
	}

	// Progressive random link failures: how many ordered pairs go dark?
	fmt.Println("\nbroken ordered pairs after f random link failures (seed-averaged over 5 trials):")
	fmt.Printf("  %6s %10s %10s\n", "f", "ODR", "UDR")
	for _, f := range []int{1, 2, 4, 8, 16} {
		var odrSum, udrSum int
		const trials = 5
		for seed := int64(0); seed < trials; seed++ {
			odrSum += torusnet.RandomFailureBrokenPairs(p, torusnet.ODR{}, f, seed)
			udrSum += torusnet.RandomFailureBrokenPairs(p, torusnet.UDR{}, f, seed)
		}
		fmt.Printf("  %6d %10.1f %10.1f\n", f, float64(odrSum)/trials, float64(udrSum)/trials)
	}

	fmt.Println("\nUDR never does worse: every ODR path is also a UDR path, and most")
	fmt.Println("pairs have s! > 1 alternatives. The ceiling on edge-disjoint routes is")
	fmt.Printf("the torus edge connectivity 2d = %d between any two nodes.\n", 2*d)
}
