// Placement design: how many processors can a torus host before the load
// stops being linear? The example sweeps multiple linear placements of size
// t·k^{d-1} for growing t, watches E_max/|P| (the linearity constant c1),
// and compares against the Eq. 9 ceiling |P| ≤ 12·d·c1·k^{d-1} and against
// unstructured random placements of the same size.
package main

import (
	"fmt"

	"torusnet"
)

func main() {
	const k, d = 8, 2
	t := torusnet.NewTorus(k, d)
	fmt.Println("torus:", t)
	fmt.Println("\nmultiple linear placements of size t·k^{d-1} under ODR:")
	fmt.Printf("%4s %6s %10s %12s %14s %16s\n", "t", "|P|", "E_max", "E_max/|P|", "Eq.9 ceiling", "sweep bisection")

	for _, tt := range []int{1, 2, 3, 4, 6, 8} {
		p, err := (torusnet.MultipleLinear{T: tt}).Build(t)
		if err != nil {
			panic(err)
		}
		res := torusnet.ComputeLoad(p, torusnet.ODR{}, torusnet.LoadOptions{})
		c1 := res.Max / float64(p.Size())
		ceiling := torusnet.MaxPlacementSize(c1, k, d)
		cut := torusnet.SweepBisect(p)
		fmt.Printf("%4d %6d %10.1f %12.3f %14.0f %16d\n",
			tt, p.Size(), res.Max, c1, ceiling, cut.Width())
	}

	fmt.Println("\nE_max/|P| grows with t (≈ t/2): the per-processor load constant is")
	fmt.Println("the price of density. t = k is the fully populated torus, where the")
	fmt.Println("constant becomes Θ(k) and linearity in |P| is lost.")

	fmt.Println("\nstructured vs random placements of identical size (UDR):")
	fmt.Printf("%10s %6s %10s %12s %10s\n", "placement", "|P|", "E_max", "E_max/|P|", "uniform")
	size := k // k^{d-1} for d=2
	lin, err := (torusnet.Linear{C: 0}).Build(t)
	if err != nil {
		panic(err)
	}
	linRes := torusnet.ComputeLoad(lin, torusnet.UDR{}, torusnet.LoadOptions{})
	fmt.Printf("%10s %6d %10.2f %12.3f %10v\n", "linear", lin.Size(), linRes.Max,
		linRes.Max/float64(lin.Size()), lin.IsUniform())
	for seed := int64(1); seed <= 3; seed++ {
		rnd, err := (torusnet.Random{Count: size, Seed: seed}).Build(t)
		if err != nil {
			panic(err)
		}
		res := torusnet.ComputeLoad(rnd, torusnet.UDR{}, torusnet.LoadOptions{})
		fmt.Printf("%10s %6d %10.2f %12.3f %10v\n",
			fmt.Sprintf("random#%d", seed), rnd.Size(), res.Max,
			res.Max/float64(rnd.Size()), rnd.IsUniform())
	}
	fmt.Println("\nrandom placements of the same size usually carry a higher maximum load:")
	fmt.Println("clustered processors overload nearby links, which is exactly what the")
	fmt.Println("uniformity premise of Theorem 1 and the linear construction rule out.")
}
