// Wormhole switching on partially populated tori: the flit-level regime of
// the complete-exchange literature the paper builds on. The example shows
// the three classical phenomena the simulator reproduces — single-VC
// deadlock on wrap rings, dateline rescue with two VCs, and adaptive-order
// (UDR) deadlock even with datelines — and that the sparse linear placement
// sails through every configuration.
package main

import (
	"fmt"

	"torusnet"
)

func main() {
	const k = 6
	t := torusnet.NewTorus(k, 2)
	lin, err := (torusnet.Linear{C: 0}).Build(t)
	if err != nil {
		panic(err)
	}
	full, err := (torusnet.Full{}).Build(t)
	if err != nil {
		panic(err)
	}

	fmt.Println("wormhole complete exchange on", t, "(F=4 flits, B=2 buffers/VC)")
	fmt.Printf("%10s %8s %5s %10s %18s %10s\n", "placement", "routing", "VCs", "cycles", "delivered", "outcome")

	type cfg struct {
		name string
		p    *torusnet.Placement
		alg  torusnet.RoutingAlgorithm
		vcs  int
	}
	for _, c := range []cfg{
		{"linear", lin, torusnet.ODR{}, 1},
		{"linear", lin, torusnet.ODR{}, 2},
		{"full", full, torusnet.ODR{}, 1},
		{"full", full, torusnet.ODR{}, 2},
		{"full", full, torusnet.UDR{}, 2},
	} {
		st := torusnet.SimulateWormhole(torusnet.WormholeConfig{
			Placement: c.p, Algorithm: c.alg, Seed: 1,
			VirtualChannels: c.vcs, MaxCycles: 2_000_000,
		})
		outcome := "completed"
		if st.Deadlocked {
			outcome = "DEADLOCK"
		}
		fmt.Printf("%10s %8s %5d %10d %11d/%-6d %10s\n",
			c.name, c.alg.Name(), c.vcs, st.Cycles, st.DeliveredFlits, st.Flits, outcome)
	}

	fmt.Println(`
reading the table:
 - full torus, 1 VC: cyclic buffer wait around the wrap rings -> deadlock.
 - full torus, 2 VCs + dateline: dimension-ordered worms complete.
 - full torus, UDR: per-packet dimension orders defeat the dateline
   argument (this is why adaptive wormhole routing needs escape channels).
 - the linear placement never deadlocks here: 1/k of the nodes inject, so
   buffer pressure stays far from the cyclic-wait threshold.`)
}
