// Quickstart: place k^{d-1} processors on a d-dimensional k-torus with the
// paper's linear placement, route a complete exchange with ODR and UDR, and
// check the measured maximum load against every lower bound.
package main

import (
	"fmt"

	"torusnet"
)

func main() {
	const k, d = 8, 3

	// T^3_8: 512 nodes, 3072 directed links.
	t := torusnet.NewTorus(k, d)
	fmt.Println("torus:", t)

	// The linear placement p1 + p2 + p3 ≡ 0 (mod 8): 64 processors, one
	// per residue class — uniform in every dimension.
	p, err := (torusnet.Linear{C: 0}).Build(t)
	if err != nil {
		panic(err)
	}
	fmt.Println("placement:", p)
	fmt.Println("uniform:", p.IsUniform())

	for _, alg := range []torusnet.RoutingAlgorithm{torusnet.ODR{}, torusnet.UDR{}} {
		rep := torusnet.Analyze(p, alg, 0)
		fmt.Printf("\n--- %s ---\n", alg.Name())
		fmt.Print(rep)
	}

	// The same exchange, executed packet-by-packet on the cycle simulator.
	st := torusnet.Simulate(torusnet.SimConfig{Placement: p, Algorithm: torusnet.UDR{}, Seed: 1})
	fmt.Printf("\nsimulated complete exchange (UDR): %s\n", st)
	fmt.Printf("cycles per processor: %.2f\n", float64(st.Cycles)/float64(p.Size()))
}
