// Complete exchange at cycle level: the §1 motivation, executed. Sweeps k
// on a 2-dimensional torus and simulates one complete exchange on (a) the
// fully populated torus and (b) the linear placement, under ODR and UDR.
// The fully populated torus's completion time per injecting processor
// degrades superlinearly; the linear placement's stays flat.
package main

import (
	"fmt"

	"torusnet"
)

func main() {
	fmt.Println("store-and-forward complete exchange, d = 2")
	fmt.Printf("%6s %10s %8s %8s %10s %14s %12s\n",
		"k", "placement", "routing", "|P|", "cycles", "maxLinkTraffic", "cycles/|P|")

	for _, k := range []int{4, 6, 8, 10, 12} {
		t := torusnet.NewTorus(k, 2)

		full, err := (torusnet.Full{}).Build(t)
		if err != nil {
			panic(err)
		}
		lin, err := (torusnet.Linear{C: 0}).Build(t)
		if err != nil {
			panic(err)
		}

		type runCfg struct {
			name string
			p    *torusnet.Placement
			alg  torusnet.RoutingAlgorithm
		}
		for _, cfg := range []runCfg{
			{"full", full, torusnet.ODR{}},
			{"linear", lin, torusnet.ODR{}},
			{"linear", lin, torusnet.UDR{}},
		} {
			st := torusnet.Simulate(torusnet.SimConfig{Placement: cfg.p, Algorithm: cfg.alg, Seed: 7})
			fmt.Printf("%6d %10s %8s %8d %10d %14d %12.2f\n",
				k, cfg.name, cfg.alg.Name(), cfg.p.Size(), st.Cycles,
				st.MaxLinkTraffic, float64(st.Cycles)/float64(cfg.p.Size()))
		}
	}

	fmt.Println("\nthe full torus column 'cycles/|P|' grows with k (superlinear load,")
	fmt.Println("E_max > k^{d+1}/8) while the linear placement's stays bounded — the")
	fmt.Println("scaling argument that motivates partially populated tori.")
}
