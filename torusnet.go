package torusnet

import (
	"context"

	"torusnet/internal/bisect"
	"torusnet/internal/bounds"
	"torusnet/internal/bsp"
	"torusnet/internal/cluster"
	"torusnet/internal/core"
	"torusnet/internal/cover"
	"torusnet/internal/failpoint"
	"torusnet/internal/faults"
	"torusnet/internal/lee"
	"torusnet/internal/load"
	"torusnet/internal/obs"
	"torusnet/internal/optimize"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/schedule"
	"torusnet/internal/service"
	"torusnet/internal/simnet"
	"torusnet/internal/sweep"
	"torusnet/internal/torus"
	"torusnet/internal/wormhole"
)

// Topology types.
type (
	// Torus is the d-dimensional k-torus T^d_k (Definition 1).
	Torus = torus.Torus
	// Node indexes a torus vertex.
	Node = torus.Node
	// Edge indexes a directed torus link.
	Edge = torus.Edge
	// Direction is a travel direction (+/−) along a dimension.
	Direction = torus.Direction
	// Subtorus identifies a principal subtorus.
	Subtorus = torus.Subtorus
)

// Direction constants.
const (
	Plus  = torus.Plus
	Minus = torus.Minus
)

// NewTorus constructs T^d_k. It panics for invalid parameters; use
// CheckTorus to validate first.
func NewTorus(k, d int) *Torus { return torus.New(k, d) }

// CheckTorus validates torus parameters without constructing.
func CheckTorus(k, d int) error { return torus.Check(k, d) }

// CyclicDistance is the Definition 6 distance between residues mod k.
func CyclicDistance(i, j, k int) int { return torus.CyclicDistance(i, j, k) }

// MaxNodes bounds the node count of any torus this package will build.
const MaxNodes = torus.MaxNodes

// Mod returns a normalized to [0, k): the canonical residue helper for
// torus coordinates, correct for negative a (unlike Go's % operator).
func Mod(a, k int) int { return torus.Mod(a, k) }

// Volume returns k^d, refusing values beyond MaxNodes instead of silently
// overflowing int.
func Volume(k, d int) (int, error) { return torus.Volume(k, d) }

// Placement types and specs.
type (
	// Placement is a set of processor nodes on one torus (Definition 2).
	Placement = placement.Placement
	// PlacementSpec generates P_{d,k} for any torus.
	PlacementSpec = placement.Spec
	// Linear is the Definition 10 linear placement Σ c_i·p_i ≡ C (mod k).
	Linear = placement.Linear
	// MultipleLinear is the union of t consecutive linear placements (§5).
	MultipleLinear = placement.MultipleLinear
	// ShiftedDiagonal is Blaum et al.'s d=3 placement, a linear special case.
	ShiftedDiagonal = placement.ShiftedDiagonal
	// Full populates every node (the classical torus).
	Full = placement.Full
	// Random places processors uniformly at random.
	Random = placement.Random
	// Explicit wraps a fixed coordinate list.
	Explicit = placement.Explicit
	// LayerCluster is uniform along exactly one dimension (Theorem 1's
	// weakest premise), clustered in the others.
	LayerCluster = placement.LayerCluster
)

// NewPlacement builds a placement from explicit nodes.
func NewPlacement(t *Torus, nodes []Node, name string) *Placement {
	return placement.New(t, nodes, name)
}

// Routing algorithms.
type (
	// RoutingAlgorithm specifies shortest-path sets C^A_{p→q} (Definition 3).
	RoutingAlgorithm = routing.Algorithm
	// Path is one shortest path.
	Path = routing.Path
	// ODR is restricted Ordered Dimensional Routing (§6).
	ODR = routing.ODR
	// ODRMulti is ODR with both directions allowed on ties.
	ODRMulti = routing.ODRMulti
	// UDR is Unordered Dimensional Routing (§7).
	UDR = routing.UDR
	// UDRMulti is UDR with both directions allowed on ties.
	UDRMulti = routing.UDRMulti
	// FAR is fully adaptive minimal routing over all shortest paths.
	FAR = routing.FAR
	// ODROrder is ODR with a caller-chosen dimension correction order.
	ODROrder = routing.ODROrder
	// MeshODR routes on the embedded array A^d_k, never using wrap links.
	MeshODR = routing.MeshODR
)

// Load computation.
type (
	// LoadResult holds per-edge expected loads and E_max (Definitions 4/5).
	LoadResult = load.Result
	// LoadOptions configures the engine (worker count, fast-path mode,
	// cross-checking).
	LoadOptions = load.Options
	// FastPathMode selects how the translation-symmetry fast path
	// dispatches (LoadOptions.FastPath).
	FastPathMode = load.FastPathMode
	// AnalyticMode selects how the closed-form analytic tier dispatches
	// (LoadOptions.Analytic).
	AnalyticMode = load.AnalyticMode
	// AnalyticEval is one closed-form Theorem 2–5 answer: the E_max value
	// (or upper bound), exactness, and the theorem it comes from.
	AnalyticEval = load.AnalyticEval
	// LinearClass is the recognizer's classification of a placement
	// against the paper's linear families (Placement.LinearClass).
	LinearClass = placement.LinearClass
	// ExactLoadResult holds loads as exact rationals.
	ExactLoadResult = load.ExactResult
	// MonteCarloResult holds empirical load estimates.
	MonteCarloResult = load.MonteCarloResult
)

// Fast-path dispatch modes and the engine labels LoadResult.Engine reports.
const (
	// FastPathAuto uses the symmetry engine whenever the placement has a
	// non-trivial translation stabilizer and the algorithm is
	// translation-equivariant (the default).
	FastPathAuto = load.FastPathAuto
	// FastPathOff always runs the generic pair loop.
	FastPathOff = load.FastPathOff
	// FastPathForce runs the symmetry engine whenever it is sound, even
	// for a trivial stabilizer.
	FastPathForce = load.FastPathForce

	// AnalyticOff never answers from the closed forms (the default: the
	// analytic tier is opt-in because its results carry no per-edge loads).
	AnalyticOff = load.AnalyticOff
	// AnalyticAuto answers from Theorem 2 on its equality cells only.
	AnalyticAuto = load.AnalyticAuto
	// AnalyticForce additionally serves the Theorem 3–5 upper bounds,
	// with LoadResult.Exact == false.
	AnalyticForce = load.AnalyticForce

	// EngineGeneric marks results from the O(|P|²) pair loop.
	EngineGeneric = load.EngineGeneric
	// EngineSymmetry marks results from the translation fast path.
	EngineSymmetry = load.EngineSymmetry
	// EngineMonteCarlo marks empirical estimates (degraded torusd answers).
	EngineMonteCarlo = load.EngineMonteCarlo
	// EngineAnalytic marks closed-form Theorem 2–5 answers (no load vector).
	EngineAnalytic = load.EngineAnalytic
)

// MaxEngineDivergence reports the largest absolute per-edge difference
// between two load results, for cross-checking engines against each other.
func MaxEngineDivergence(a, b *LoadResult) float64 {
	return load.MaxEngineDivergence(a, b)
}

// AnalyticEMax maps a recognized placement shape (t consecutive residue
// classes on T^d_k) and a routing algorithm name to the paper's Theorem 2–5
// closed forms; exactOnly restricts the map to the equality cells. The
// second return is false when no theorem applies.
func AnalyticEMax(k, d, t int, algName string, exactOnly bool) (AnalyticEval, bool) {
	return load.AnalyticEMax(k, d, t, algName, exactOnly)
}

// IsTranslationEquivariant reports whether a routing algorithm declares
// that its paths depend only on coordinate deltas, the soundness premise
// of the symmetry fast path.
func IsTranslationEquivariant(a RoutingAlgorithm) bool {
	return routing.IsTranslationEquivariant(a)
}

// ComputeLoad evaluates the exact expected load of every directed edge
// under one complete exchange.
func ComputeLoad(p *Placement, a RoutingAlgorithm, opts LoadOptions) *LoadResult {
	return load.Compute(p, a, opts)
}

// ComputeLoadCtx is ComputeLoad with observability threaded through ctx:
// when the context carries an active trace (see StartSpan), the engine
// dispatch, per-engine stages, and merge record spans and the worker
// goroutines carry pprof labels. With no active trace it is
// allocation-identical to ComputeLoad.
func ComputeLoadCtx(ctx context.Context, p *Placement, a RoutingAlgorithm, opts LoadOptions) *LoadResult {
	return load.ComputeCtx(ctx, p, a, opts)
}

// ComputeLoadExact evaluates loads with big.Rat arithmetic (small tori).
func ComputeLoadExact(p *Placement, a RoutingAlgorithm) (*ExactLoadResult, error) {
	return load.ComputeExact(p, a)
}

// MonteCarloLoad estimates loads empirically over repeated exchanges.
func MonteCarloLoad(p *Placement, a RoutingAlgorithm, rounds int, seed int64, opts LoadOptions) *MonteCarloResult {
	return load.MonteCarlo(p, a, rounds, seed, opts)
}

// Traffic patterns beyond complete exchange.
type (
	// TrafficPattern generates a traffic matrix over a placement.
	TrafficPattern = load.Pattern
	// PatternCompleteExchange is all-to-all personalized communication.
	PatternCompleteExchange = load.CompleteExchange
	// PatternTranspose is coordinate-reversal (matrix transposition, d=2).
	PatternTranspose = load.Transpose
	// PatternShift is a fixed-offset cyclic shift.
	PatternShift = load.Shift
	// PatternHotSpot funnels every processor into one destination.
	PatternHotSpot = load.HotSpot
	// PatternRandomPairs samples an irregular traffic matrix.
	PatternRandomPairs = load.RandomPairs
)

// ComputePatternLoad evaluates a traffic pattern's exact expected loads.
func ComputePatternLoad(p *Placement, pat TrafficPattern, a RoutingAlgorithm, opts LoadOptions) *LoadResult {
	return load.ComputePattern(p, pat, a, opts)
}

// Resource-placement metrics (covering/packing).
type (
	// CoverReport holds covering radius, packing distance, mean distance.
	CoverReport = cover.Report
)

// AnalyzeCoverage computes resource-placement metrics.
func AnalyzeCoverage(p *Placement) CoverReport { return cover.Analyze(p) }

// Degraded-network load.
type (
	// DegradedLoad is the post-failure load picture.
	DegradedLoad = faults.DegradedResult
)

// LoadWithFailures recomputes the exchange load on a mutilated torus:
// traffic redistributes over surviving routes, falling back to BFS detours.
func LoadWithFailures(p *Placement, a RoutingAlgorithm, failed map[Edge]bool) *DegradedLoad {
	return faults.LoadWithFailures(p, a, failed)
}

// RandomFailures draws n distinct failed links deterministically.
func RandomFailures(t *Torus, n int, seed int64) map[Edge]bool {
	return faults.RandomFailures(t, n, seed)
}

// Lower bounds (package bounds).
var (
	// BlaumBound is Eq. 1: (|P|−1)/2d.
	BlaumBound = bounds.Blaum
	// SeparatorBound is Lemma 1: 2|S|(|P|−|S|)/|∂S|.
	SeparatorBound = bounds.Separator
	// BisectionBound is Eq. 8.
	BisectionBound = bounds.Bisection
	// ImprovedBound is the §4 bound c²k^{d−1}/8.
	ImprovedBound = bounds.Improved
	// MaxPlacementSize is the Eq. 9 ceiling 12·d·c1·k^{d−1}.
	MaxPlacementSize = bounds.MaxPlacementSize
)

// Bisection.
type (
	// Cut is a partition of the torus with respect to a placement.
	Cut = bisect.Cut
)

// DimensionCut is the Theorem 1 construction (width 4k^{d−1}).
func DimensionCut(p *Placement, dim int) *Cut { return bisect.DimensionCut(p, dim) }

// SweepBisect is the appendix hyperplane-sweep construction (balanced for
// any placement, width ≤ 6dk^{d−1}).
func SweepBisect(p *Placement) *Cut { return bisect.Sweep(p) }

// BestSweepBisect scans every balanced hyperplane position and returns the
// minimum-width sweep cut.
func BestSweepBisect(p *Placement) *Cut { return bisect.BestSweep(p) }

// Analysis.
type (
	// Report is the full optimality analysis of a placement + algorithm.
	Report = core.Report
	// FaultReport aggregates §7 fault-tolerance metrics.
	FaultReport = faults.Report
)

// Analyze runs loads, bounds, bisections, and optimality ratios in one call.
func Analyze(p *Placement, a RoutingAlgorithm, workers int) *Report {
	return core.Analyze(p, a, workers)
}

// FullReport bundles load/bounds with faults, coverage, and scheduling.
type FullReport = core.FullReport

// AnalyzeFull runs every analysis pipeline on one placement.
func AnalyzeFull(p *Placement, a RoutingAlgorithm, workers int) *FullReport {
	return core.AnalyzeFull(p, a, workers)
}

// ComputeValiantLoad evaluates Valiant two-phase randomized routing.
func ComputeValiantLoad(p *Placement, pat TrafficPattern, a RoutingAlgorithm, opts LoadOptions) *LoadResult {
	return load.ComputeValiant(p, pat, a, opts)
}

// AnalyzeFaults computes route multiplicity and critical-link statistics.
func AnalyzeFaults(p *Placement, a RoutingAlgorithm, workers int) *FaultReport {
	return faults.Analyze(p, a, workers)
}

// EdgeDisjointRoutes greedily selects pairwise edge-disjoint paths from
// C^A_{p→q}; with r routes the pair tolerates any r−1 link failures.
func EdgeDisjointRoutes(a RoutingAlgorithm, t *Torus, p, q Node, maxPaths int) []Path {
	return routing.EdgeDisjointRoutes(a, t, p, q, maxPaths)
}

// RandomFailureBrokenPairs fails `failures` random links and counts the
// ordered processor pairs left without any route under the algorithm.
func RandomFailureBrokenPairs(p *Placement, a RoutingAlgorithm, failures int, seed int64) int {
	return faults.RandomFailureTrial(p, a, failures, seed)
}

// Simulation.
type (
	// SimConfig parameterizes a cycle-accurate simulation run.
	SimConfig = simnet.Config
	// SimStats reports a completed complete exchange.
	SimStats = simnet.Stats
)

// Simulate runs one complete exchange on the store-and-forward simulator.
func Simulate(cfg SimConfig) *SimStats { return simnet.Run(cfg) }

// Open-loop (rate-driven) simulation.
type (
	// OpenLoopConfig parameterizes a rate-driven traffic run.
	OpenLoopConfig = simnet.OpenLoopConfig
	// OpenLoopStats is the steady-state measurement.
	OpenLoopStats = simnet.OpenLoopStats
)

// SimulateOpenLoop measures throughput and latency under Bernoulli
// injection at a fixed per-processor rate (the load-latency curve).
func SimulateOpenLoop(cfg OpenLoopConfig) *OpenLoopStats { return simnet.RunOpenLoop(cfg) }

// Wormhole switching (flit-level, virtual channels, dateline scheme).
type (
	// WormholeConfig parameterizes a flit-level simulation run.
	WormholeConfig = wormhole.Config
	// WormholeStats reports a wormhole complete exchange.
	WormholeStats = wormhole.Stats
)

// SimulateWormhole runs one complete exchange under wormhole switching.
func SimulateWormhole(cfg WormholeConfig) *WormholeStats { return wormhole.Run(cfg) }

// Offline conflict-free scheduling.
type (
	// Schedule is a conflict-free time assignment for routed messages.
	Schedule = schedule.Result
	// ScheduleOrder selects the greedy insertion order.
	ScheduleOrder = schedule.Order
)

// Schedule insertion orders.
const (
	ScheduleByIndex      = schedule.ByIndex
	ScheduleLongestFirst = schedule.LongestFirst
)

// ScheduleExchange builds and greedily schedules one complete exchange.
func ScheduleExchange(p *Placement, a RoutingAlgorithm, seed int64, order ScheduleOrder) *Schedule {
	return schedule.CompleteExchange(p, a, seed, order)
}

// BSP cost model.
type (
	// BSPParams are the fitted gap/latency of a placement.
	BSPParams = bsp.Params
	// BSPSample is one measured superstep.
	BSPSample = bsp.Sample
)

// EstimateBSP fits cycles(h) = g·h + L over simulated h-relations.
func EstimateBSP(p *Placement, a RoutingAlgorithm, hmax int, seed int64) (BSPParams, []BSPSample) {
	return bsp.Estimate(p, a, hmax, seed)
}

// Placement search: three strategies behind one Result shape — simulated
// annealing (any torus), exhaustive branch-and-bound (small tori, proves
// optimality), and constructive Lee-sphere seeding. Every result is stamped
// with the best §4 lower bound and its gap to it; see OPTIMIZE.md.
type (
	// AnnealConfig parameterizes the placement searches (size, budget, seed).
	AnnealConfig = optimize.Config
	// AnnealResult reports a search outcome with lower-bound provenance.
	AnnealResult = optimize.Result
	// SearchProgress is the periodic callback payload of a running search.
	SearchProgress = optimize.Progress
)

// Search strategy names, as carried in AnnealResult.Strategy and accepted
// by the /v1/optimize job API.
const (
	StrategyAnneal      = optimize.StrategyAnneal
	StrategyBranchBound = optimize.StrategyBranchBound
	StrategyLeeSphere   = optimize.StrategyLeeSphere
)

// Branch-and-bound guardrails: the node-count ceiling for exhaustive
// search, and the default visited-placements budget.
const (
	BranchBoundNodeLimit  = optimize.BranchBoundNodeLimit
	BranchBoundMaxVisited = optimize.DefaultMaxVisited
)

// AnnealPlacement searches for a low-E_max placement of fixed size.
func AnnealPlacement(t *Torus, a RoutingAlgorithm, cfg AnnealConfig) *AnnealResult {
	return optimize.Anneal(t, a, cfg)
}

// AnnealPlacementCtx is AnnealPlacement with cancellation: on ctx
// cancellation it returns the best placement found so far alongside the
// context error.
func AnnealPlacementCtx(ctx context.Context, t *Torus, a RoutingAlgorithm, cfg AnnealConfig) (*AnnealResult, error) {
	return optimize.AnnealCtx(ctx, t, a, cfg)
}

// BranchBoundPlacement exhaustively searches all size-|P| placements on a
// small torus (≤ BranchBoundNodeLimit nodes), pruning by monotone partial
// loads; Result.Proven reports whether the optimum is certified.
func BranchBoundPlacement(ctx context.Context, t *Torus, a RoutingAlgorithm, cfg AnnealConfig) (*AnnealResult, error) {
	return optimize.BranchAndBound(ctx, t, a, cfg)
}

// LeeSeedPlacement builds a constructive Lee-sphere-tiling placement by
// greedy farthest-point sampling — a deterministic seed for the other
// strategies, and a decent placement on its own.
func LeeSeedPlacement(t *Torus, size int, a RoutingAlgorithm, workers int) (*AnnealResult, error) {
	return optimize.LeeSeed(t, size, a, workers)
}

// LeeTilingRadius is the largest radius r such that size disjoint Lee
// balls of radius r fit in the torus — the spacing target LeeSeedPlacement
// aims for.
func LeeTilingRadius(t *Torus, size int) int { return optimize.TilingRadius(t, size) }

// Lee-distance analytics (closed forms used as analytic anchors).
var (
	// TorusMeanDistance is the mean Lee distance of T^d_k.
	TorusMeanDistance = lee.TorusMeanDistance
	// TorusDiameter is d·⌊k/2⌋.
	TorusDiameter = lee.Diameter
	// LeeSphereSize is the surface size of a Lee sphere.
	LeeSphereSize = lee.SphereSize
	// LinearExchangeTotal is Σ Lee(p,q) over a linear placement's pairs.
	LinearExchangeTotal = lee.LinearExchangeTotal
)

// Experiments.
type (
	// Experiment is one registered reproduction experiment (E1–E19).
	Experiment = sweep.Experiment
	// ExperimentTable is an experiment's rendered output.
	ExperimentTable = sweep.Table
	// ExperimentScale selects quick or full parameter ranges.
	ExperimentScale = sweep.Scale
)

// Experiment scales.
const (
	QuickScale = sweep.Quick
	FullScale  = sweep.Full
)

// Experiments returns the registered E1–E19 experiments in order.
func Experiments() []Experiment { return sweep.All() }

// ExperimentByID finds one experiment by its "E<n>" id.
func ExperimentByID(id string) (Experiment, bool) { return sweep.ByID(id) }

// Analysis service (torusd): a concurrent HTTP JSON front end over Analyze,
// the bounds/bisect packages, and the experiment registry, with result
// caching, request coalescing, and expvar metrics.
type (
	// Service is the torusd HTTP server (cache + coalescing + worker pool).
	Service = service.Server
	// ServiceConfig sizes the service (workers, queue, cache, deadlines).
	ServiceConfig = service.Config
	// ServiceClient is the typed HTTP client for a running torusd.
	ServiceClient = service.Client
	// ServiceAPIError is a non-2xx torusd reply surfaced by ServiceClient.
	ServiceAPIError = service.APIError
	// AnalyzeRequest is the POST /v1/analyze body.
	AnalyzeRequest = service.AnalyzeRequest
	// BoundsRequest is the POST /v1/bounds body.
	BoundsRequest = service.BoundsRequest
	// BisectRequest is the POST /v1/bisect body.
	BisectRequest = service.BisectRequest
	// ExperimentRequest is the POST /v1/experiments/{id} body.
	ExperimentRequest = service.ExperimentRequest
	// AnalyzeResponse is the /v1/analyze reply (Report over the wire).
	AnalyzeResponse = service.AnalyzeResponse
	// BoundsResponse is the /v1/bounds reply.
	BoundsResponse = service.BoundsResponse
	// BisectResponse is the /v1/bisect reply.
	BisectResponse = service.BisectResponse
	// CutSummary is the wire form of a bisection cut.
	CutSummary = service.CutSummary
	// ExperimentInfo is one GET /v1/experiments entry.
	ExperimentInfo = service.ExperimentInfo
	// ExperimentRunResponse is the /v1/experiments/{id} reply.
	ExperimentRunResponse = service.ExperimentRunResponse
	// HealthResponse is the GET /healthz reply.
	HealthResponse = service.HealthResponse
	// ReadyResponse is the GET /readyz reply (readiness, distinct from
	// /healthz liveness; in cluster mode it reports ring join state).
	ReadyResponse = service.ReadyResponse
	// ErrorResponse is the error envelope every non-2xx reply uses.
	ErrorResponse = service.ErrorResponse
	// OptimizeRequest is the POST /v1/optimize body (async search submit).
	OptimizeRequest = service.OptimizeRequest
	// OptimizeResponse is a finished search's result payload.
	OptimizeResponse = service.OptimizeResponse
	// JobAccepted is the 202 body of POST /v1/optimize (job id + poll URL).
	JobAccepted = service.JobAccepted
	// JobSnapshot is the GET /v1/jobs/{id} reply: state, progress, and —
	// once terminal — the result or error.
	JobSnapshot = service.JobSnapshot
)

// Async search job states, as reported in JobSnapshot.State.
const (
	JobStateRunning   = service.JobStateRunning
	JobStateDone      = service.JobStateDone
	JobStateFailed    = service.JobStateFailed
	JobStateCancelled = service.JobStateCancelled
)

// ServiceMaxNodes is the default per-request torus size ceiling of torusd.
const ServiceMaxNodes = service.DefaultMaxNodes

// NewService constructs a torusd server; serve it with Service.Serve or
// mount Service.Handler on an existing mux.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// NewServiceClient returns a typed client for a torusd base URL. It is
// single-attempt: every transport or HTTP error surfaces immediately. Use
// NewResilientServiceClient for retries, hedging, and a circuit breaker.
func NewServiceClient(baseURL string) *ServiceClient { return service.NewClient(baseURL) }

// ClientResilienceConfig tunes the resilient client's retry policy:
// attempt cap, jittered exponential backoff, retry budget, request
// hedging, and the per-endpoint circuit breaker. The zero value selects
// the documented defaults.
type ClientResilienceConfig = service.ResilienceConfig

// ErrServiceCircuitOpen is returned (wrapped) by a resilient client when
// an endpoint's circuit breaker is open and the call was not attempted.
var ErrServiceCircuitOpen = service.ErrCircuitOpen

// NewResilientServiceClient returns a torusd client that retries transient
// failures with capped jittered backoff (honoring Retry-After), hedges
// slow requests, and trips a per-endpoint circuit breaker. Degraded
// server answers are marked by AnalyzeResponse.Degraded with a Monte
// Carlo ErrorBound.
func NewResilientServiceClient(baseURL string, cfg ClientResilienceConfig) *ServiceClient {
	return service.NewResilientClient(baseURL, cfg)
}

// Sharded cluster (package cluster): consistent-hash routing of canonical
// cache keys across a static torusd membership with groupcache-style peer
// fill — on a local miss for a key homed elsewhere, the answer is fetched
// from the home peer (one hop at most, guarded by PeerHopHeader) before
// falling back to local compute, so a cluster computes each answer once
// globally. See DESIGN.md §12 and "Running a cluster" in README.md.
type (
	// Cluster is one node's view of the shard ring plus per-peer health.
	Cluster = cluster.Cluster
	// ClusterConfig parameterizes a Cluster (self URL, membership, ring
	// replicas, per-peer transport dialer, health thresholds).
	ClusterConfig = cluster.Config
	// ClusterPeerTransport is the wire surface the cluster needs to one
	// peer; NewPeerFillServiceClient returns an implementation.
	ClusterPeerTransport = cluster.PeerTransport
	// ClusterStatus is a point-in-time ring/health snapshot.
	ClusterStatus = cluster.Status
	// ClusterPeerStatus is one member's row in a ClusterStatus.
	ClusterPeerStatus = cluster.PeerStatus
	// HashRing is the deterministic consistent-hash ring under a Cluster.
	HashRing = cluster.Ring
	// ClusterMembership is a Cluster's runtime membership controller:
	// Join/Leave/Set swap the ring at a new epoch without a restart.
	ClusterMembership = cluster.Membership
	// ClusterReplicaPut is the wire body of a write-through replica put
	// (canonical request plus the exact result bytes to store).
	ClusterReplicaPut = cluster.ReplicaPut
)

// DefaultRingReplicas is the virtual-node count per peer used when a ring
// is built with replicas <= 0.
const DefaultRingReplicas = cluster.DefaultReplicas

// DefaultClusterReplication is the owners-per-key factor used when a
// cluster is built with Replication <= 0: each key has a primary plus one
// backup that receives write-through replicas of exact results.
const DefaultClusterReplication = cluster.DefaultReplication

// ClusterReplicaPath is the peer-to-peer endpoint replica puts are POSTed
// to; torusd mounts it only in cluster mode.
const ClusterReplicaPath = cluster.ReplicaPath

// PeerHopHeader marks a request as a peer fill hop; a torusd serving a
// request that carries it never fills onward (the cluster loop guard).
const PeerHopHeader = service.PeerHopHeader

// ReplicaHeader marks a POST to ClusterReplicaPath as a peer's
// write-through replica put; the receiver stores the result under the
// server-derived key without re-filling.
const ReplicaHeader = service.ReplicaHeader

// NewCluster builds one node's cluster view; pass it to
// ServiceConfig.Cluster to enable sharded peer fill on that server.
func NewCluster(cfg ClusterConfig) (*Cluster, error) { return cluster.New(cfg) }

// NewHashRing builds a deterministic consistent-hash ring over peer base
// URLs with the given virtual-node count per peer (<= 0 selects
// DefaultRingReplicas).
func NewHashRing(peers []string, replicas int) *HashRing { return cluster.NewRing(peers, replicas) }

// NewPeerFillServiceClient returns the resilient client a cluster node
// uses to fetch answers from a key's home peer: every request carries the
// PeerHopHeader loop guard, and each peer gets its own breaker state. It
// satisfies ClusterPeerTransport.
func NewPeerFillServiceClient(baseURL string, cfg ClientResilienceConfig) *ServiceClient {
	return service.NewPeerFillClient(baseURL, cfg)
}

// Observability (package obs): zero-dependency context-propagated span
// tracing, fixed-bucket histograms, and W3C traceparent plumbing. torusd
// wires these in by default (/metrics, /debug/traces); library callers can
// trace their own pipelines by installing a Tracer and passing its root
// context into ComputeLoadCtx. See OBSERVABILITY.md.
type (
	// Tracer buffers finished request traces in a bounded ring.
	Tracer = obs.Tracer
	// TracerStats are a Tracer's lifetime counters.
	TracerStats = obs.TracerStats
	// Trace is one exported span tree.
	Trace = obs.Trace
	// Span is one live timed stage; the nil *Span is a no-op.
	Span = obs.Span
	// SpanData is the exported (finished) form of a span.
	SpanData = obs.SpanData
	// SpanAttr is one key/value annotation on a span.
	SpanAttr = obs.Attr
	// Histogram is a fixed-bucket, lock-free observation histogram.
	Histogram = obs.Histogram
	// HistogramSnapshot is a Histogram's consistent point-in-time state.
	HistogramSnapshot = obs.HistSnapshot
)

// TraceparentHeader is the W3C trace-context header torusd reads and echoes.
const TraceparentHeader = obs.TraceparentHeader

// NewTracer builds a tracer retaining the last n finished traces (n <= 0
// selects the default ring size).
func NewTracer(n int) *Tracer { return obs.NewTracer(n) }

// NewHistogram builds a histogram with the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram { return obs.NewHistogram(bounds...) }

// StartSpan opens a child span on the trace carried by ctx and returns the
// derived context. Without an active trace it returns ctx and a nil span,
// costing no allocations.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	return obs.Start(ctx, name)
}

// SpanFromContext returns the active span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span { return obs.FromContext(ctx) }

// TraceIDFromContext returns the 32-hex trace ID carried by ctx, or "".
func TraceIDFromContext(ctx context.Context) string { return obs.TraceIDFromContext(ctx) }

// NewTraceID mints a random W3C trace ID (32 hex digits).
func NewTraceID() string { return obs.NewTraceID() }

// NewSpanID mints a random non-zero span ID.
func NewSpanID() uint64 { return obs.NewSpanID() }

// FormatTraceparent renders a traceparent header value from a trace ID and
// a parent span ID.
func FormatTraceparent(traceID string, spanID uint64) string {
	return obs.FormatTraceparent(traceID, spanID)
}

// ParseTraceparent extracts the trace ID from a traceparent header value.
func ParseTraceparent(h string) (traceID string, ok bool) { return obs.ParseTraceparent(h) }

// Fault injection (package failpoint): named chaos sites threaded through
// the service, load, and sweep layers for robustness testing. Sites are
// armed with a spec string — "error", "panic", "sleep(100ms)", "partial",
// optionally counted like "3*error" — and cost one atomic load when
// disarmed. torusd also exposes them on its debug sidecar at
// /debug/failpoints and arms them from the TORUSNET_FAILPOINTS
// environment variable or the -failpoints flag at boot.

// FailpointEnable arms the named site with a spec ("off" disarms).
func FailpointEnable(site, spec string) error { return failpoint.Enable(site, spec) }

// FailpointDisable disarms the named site.
func FailpointDisable(site string) error { return failpoint.Disable(site) }

// FailpointDisableAll disarms every registered site.
func FailpointDisableAll() { failpoint.DisableAll() }

// FailpointSites lists every registered site name, sorted.
func FailpointSites() []string { return failpoint.Sites() }
