// Package torusnet reproduces "Lower Bounds on Communication Loads and
// Optimal Placements in Torus Networks" (Azizoglu & Egecioglu, IPPS 1998 /
// IEEE TC 2000) as an executable library.
//
// A d-dimensional k-torus is partially populated with processors according
// to a placement; a routing algorithm specifies shortest paths between
// every processor pair; and the load of a link is the expected number of
// messages crossing it during a complete exchange. The library provides:
//
//   - the torus topology, placements (linear, multiple linear, shifted
//     diagonal, full, random, explicit), and routing algorithms (restricted
//     and multi-path ODR, UDR, fully adaptive minimal routing);
//   - an exact expected-load engine (parallel float64, exact big.Rat, and
//     Monte-Carlo variants) implementing Definition 4;
//   - every lower bound in the paper (Eq. 1, Lemma 1, Eq. 8, Eq. 9, the §4
//     improved bound) and the bisection constructions behind them
//     (Theorem 1 dimension cuts and the appendix hyperplane sweep);
//   - fault-tolerance analysis (§7) anchored by a max-flow substrate;
//   - a cycle-accurate store-and-forward simulator that executes complete
//     exchanges on partially populated tori;
//   - a multi-strategy placement searcher (simulated annealing, exhaustive
//     branch-and-bound that proves optima on small tori, Lee-sphere tiling
//     seeds), each result stamped with its gap to the §4 lower bound;
//   - the E1–E33 experiment registry: E1–E14 regenerate every claim of the
//     paper as a measured-vs-predicted table, E15–E33 are extension
//     ablations (routing matrix, wormhole switching, scheduling, BSP,
//     Valiant randomization, coverage, placement search, and the load
//     engine's translation-symmetry fast path).
//
// The root package is a facade over the internal packages; see the
// examples/ directory for end-to-end usage and EXPERIMENTS.md for the
// paper-vs-measured record.
package torusnet
