package torusnet

import (
	"testing"

	"torusnet/internal/sweep"
)

// benchExperiment runs one registered experiment per iteration at Quick
// scale; `go test -bench=E<k>` regenerates experiment E<k>'s rows (the
// full-scale tables live in results/ via cmd/experiments).
func benchExperiment(b *testing.B, id string) {
	e, ok := sweep.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tb := e.Run(sweep.Quick)
		if len(tb.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkE1BlaumBound(b *testing.B)      { benchExperiment(b, "E1") }
func BenchmarkE2FullTorus(b *testing.B)       { benchExperiment(b, "E2") }
func BenchmarkE3SweepSeparator(b *testing.B)  { benchExperiment(b, "E3") }
func BenchmarkE4DimCut(b *testing.B)          { benchExperiment(b, "E4") }
func BenchmarkE5ImprovedBound(b *testing.B)   { benchExperiment(b, "E5") }
func BenchmarkE6ODRExact(b *testing.B)        { benchExperiment(b, "E6") }
func BenchmarkE7MultiODR(b *testing.B)        { benchExperiment(b, "E7") }
func BenchmarkE8UDR(b *testing.B)             { benchExperiment(b, "E8") }
func BenchmarkE9MultiUDR(b *testing.B)        { benchExperiment(b, "E9") }
func BenchmarkE10Figure1(b *testing.B)        { benchExperiment(b, "E10") }
func BenchmarkE11Faults(b *testing.B)         { benchExperiment(b, "E11") }
func BenchmarkE12SimNet(b *testing.B)         { benchExperiment(b, "E12") }
func BenchmarkE13Optimality(b *testing.B)     { benchExperiment(b, "E13") }
func BenchmarkE14SlabCount(b *testing.B)      { benchExperiment(b, "E14") }
func BenchmarkE15RoutingMatrix(b *testing.B)  { benchExperiment(b, "E15") }
func BenchmarkE16TieBreaking(b *testing.B)    { benchExperiment(b, "E16") }
func BenchmarkE17Uniformity(b *testing.B)     { benchExperiment(b, "E17") }
func BenchmarkE18Coefficients(b *testing.B)   { benchExperiment(b, "E18") }
func BenchmarkE19FlowControl(b *testing.B)    { benchExperiment(b, "E19") }

// Micro-benchmarks of the hot engines, for performance tracking.

func BenchmarkLoadComputeODR(b *testing.B) {
	t := NewTorus(16, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ComputeLoad(p, ODR{}, LoadOptions{})
		if res.Max <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkLoadComputeODRSerial(b *testing.B) {
	t := NewTorus(8, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLoad(p, ODR{}, LoadOptions{Workers: 1})
	}
}

// BenchmarkLoadComputeODRGeneric pins the generic O(|P|²) pair loop on the
// same workload as BenchmarkLoadComputeODR; the ratio of the two is the
// machine-independent speedup that scripts/ci_bench_smoke.sh gates on.
func BenchmarkLoadComputeODRGeneric(b *testing.B) {
	t := NewTorus(16, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ComputeLoad(p, ODR{}, LoadOptions{FastPath: FastPathOff})
		if res.Max <= 0 {
			b.Fatal("bad result")
		}
	}
}

func BenchmarkLoadComputeODRMulti(b *testing.B) {
	t := NewTorus(16, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLoad(p, ODRMulti{}, LoadOptions{})
	}
}

func BenchmarkLoadComputeODRMultiGeneric(b *testing.B) {
	t := NewTorus(16, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLoad(p, ODRMulti{}, LoadOptions{FastPath: FastPathOff})
	}
}

func BenchmarkLoadComputeUDR(b *testing.B) {
	t := NewTorus(6, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLoad(p, UDR{}, LoadOptions{})
	}
}

func BenchmarkLoadComputeUDRGeneric(b *testing.B) {
	t := NewTorus(6, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLoad(p, UDR{}, LoadOptions{FastPath: FastPathOff})
	}
}

func BenchmarkLoadComputeFAR(b *testing.B) {
	t := NewTorus(6, 2)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeLoad(p, FAR{}, LoadOptions{})
	}
}

// BenchmarkAnalyzeAnalytic pins the analytic tier end to end on the same
// workload as BenchmarkLoadComputeODR/Generic: dispatch recognizes the
// linear placement and answers from the Theorem 2 closed form, so the
// ratio against those two is the closed-form speedup.
func BenchmarkAnalyzeAnalytic(b *testing.B) {
	t := NewTorus(16, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ComputeLoad(p, ODR{}, LoadOptions{Analytic: AnalyticAuto})
		if res.Engine != EngineAnalytic || res.Max <= 0 {
			b.Fatalf("engine %q max %g", res.Engine, res.Max)
		}
	}
}

// benchAnalyticK drives the recognize+evaluate core (cached classification
// plus the theorem map) at one torus size. Zero allocations per op, and
// latency must stay flat in k — the whole point of the closed forms.
func benchAnalyticK(b *testing.B, k int) {
	t := NewTorus(k, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	if cls := p.LinearClass(); !cls.Recognized {
		b.Fatal("linear placement not recognized")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cls := p.LinearClass()
		ev, ok := AnalyticEMax(k, 3, cls.T, "ODR", true)
		if !ok || ev.EMax <= 0 {
			b.Fatalf("no analytic answer for k=%d", k)
		}
	}
}

func BenchmarkAnalyzeAnalyticK16(b *testing.B)  { benchAnalyticK(b, 16) }
func BenchmarkAnalyzeAnalyticK64(b *testing.B)  { benchAnalyticK(b, 64) }
func BenchmarkAnalyzeAnalyticK256(b *testing.B) { benchAnalyticK(b, 256) }

func BenchmarkSweepBisection(b *testing.B) {
	t := NewTorus(8, 3)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cut := SweepBisect(p)
		if !cut.Balanced() {
			b.Fatal("unbalanced")
		}
	}
}

func BenchmarkSimulateExchange(b *testing.B) {
	t := NewTorus(8, 2)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := Simulate(SimConfig{Placement: p, Algorithm: UDR{}, Seed: int64(i)})
		if st.Aborted {
			b.Fatal("aborted")
		}
	}
}

func BenchmarkMonteCarloLoad(b *testing.B) {
	t := NewTorus(6, 2)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MonteCarloLoad(p, UDR{}, 10, int64(i), LoadOptions{})
	}
}

func BenchmarkE20Wormhole(b *testing.B)  { benchExperiment(b, "E20") }
func BenchmarkE21Schedule(b *testing.B)  { benchExperiment(b, "E21") }

func BenchmarkWormholeExchange(b *testing.B) {
	t := NewTorus(6, 2)
	p, err := (Linear{C: 0}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := SimulateWormhole(WormholeConfig{Placement: p, Algorithm: ODR{}, Seed: 1, MaxCycles: 100000})
		if st.Deadlocked {
			b.Fatal("deadlock")
		}
	}
}

func BenchmarkScheduleExchange(b *testing.B) {
	t := NewTorus(8, 2)
	p, err := (Full{}).Build(t)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := ScheduleExchange(p, ODR{}, 1, ScheduleLongestFirst)
		if res.Length < res.LowerBound() {
			b.Fatal("impossible schedule")
		}
	}
}

func BenchmarkE22Patterns(b *testing.B) { benchExperiment(b, "E22") }
func BenchmarkE23Coverage(b *testing.B) { benchExperiment(b, "E23") }
func BenchmarkE24Degraded(b *testing.B) { benchExperiment(b, "E24") }
func BenchmarkE25BSPGap(b *testing.B)   { benchExperiment(b, "E25") }
func BenchmarkE26Valiant(b *testing.B)  { benchExperiment(b, "E26") }
func BenchmarkE27MeshVsTorus(b *testing.B) { benchExperiment(b, "E27") }
func BenchmarkE28Annealing(b *testing.B)   { benchExperiment(b, "E28") }
func BenchmarkE29Adaptive(b *testing.B)    { benchExperiment(b, "E29") }
func BenchmarkE30OpenLoop(b *testing.B)    { benchExperiment(b, "E30") }
func BenchmarkE31FastPath(b *testing.B)    { benchExperiment(b, "E31") }
func BenchmarkE32Analytic(b *testing.B)    { benchExperiment(b, "E32") }
