package lee

import (
	"math"
	"testing"
	"testing/quick"

	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

func TestRingDistanceSum(t *testing.T) {
	cases := map[int]int{2: 1, 3: 2, 4: 4, 5: 6, 6: 9, 7: 12, 8: 16}
	for k, want := range cases {
		if got := RingDistanceSum(k); got != want {
			t.Errorf("RingDistanceSum(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestRingDistanceSumAgainstEnumeration(t *testing.T) {
	fn := func(kRaw uint8) bool {
		k := int(kRaw%30) + 2
		sum := 0
		for j := 0; j < k; j++ {
			sum += torus.CyclicDistance(0, j, k)
		}
		return sum == RingDistanceSum(k)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestTorusMeanDistanceAgainstBFS(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}} {
		tr := torus.New(c.k, c.d)
		sum := 0
		tr.ForEachNode(func(v torus.Node) {
			sum += tr.LeeDistance(0, v)
		})
		got := TorusMeanDistance(c.k, c.d)
		want := float64(sum) / float64(tr.Nodes())
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("T^%d_%d: mean distance %v, enumeration %v", c.d, c.k, got, want)
		}
	}
}

func TestDiameter(t *testing.T) {
	for _, c := range []struct{ k, d, want int }{{4, 2, 4}, {5, 2, 4}, {8, 3, 12}, {3, 4, 4}} {
		if got := Diameter(c.k, c.d); got != c.want {
			t.Errorf("Diameter(%d,%d) = %d, want %d", c.k, c.d, got, c.want)
		}
		// Cross-check with the true eccentricity.
		tr := torus.New(c.k, c.d)
		maxDist := 0
		tr.ForEachNode(func(v torus.Node) {
			if d := tr.LeeDistance(0, v); d > maxDist {
				maxDist = d
			}
		})
		if maxDist != c.want {
			t.Errorf("T^%d_%d eccentricity %d, formula %d", c.d, c.k, maxDist, c.want)
		}
	}
}

func TestSphereSizesSumToNodeCount(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 3}, {4, 4}, {7, 2}} {
		total := 0
		for r := 0; r <= Diameter(c.k, c.d); r++ {
			total += SphereSize(c.k, c.d, r)
		}
		want := 1
		for i := 0; i < c.d; i++ {
			want *= c.k
		}
		if total != want {
			t.Errorf("T^%d_%d: sphere sizes sum to %d, want %d", c.d, c.k, total, want)
		}
	}
}

func TestSphereSizeAgainstEnumeration(t *testing.T) {
	for _, c := range []struct{ k, d int }{{4, 2}, {5, 2}, {4, 3}, {5, 3}} {
		tr := torus.New(c.k, c.d)
		counts := make(map[int]int)
		tr.ForEachNode(func(v torus.Node) {
			counts[tr.LeeDistance(0, v)]++
		})
		for r, want := range counts {
			if got := SphereSize(c.k, c.d, r); got != want {
				t.Errorf("T^%d_%d: sphere r=%d size %d, enumeration %d", c.d, c.k, r, got, want)
			}
		}
	}
}

func TestSphereSizeOutOfRange(t *testing.T) {
	if SphereSize(4, 2, -1) != 0 || SphereSize(4, 2, 100) != 0 {
		t.Error("out-of-range radii should have empty spheres")
	}
}

func TestBallSize(t *testing.T) {
	// A radius-diameter ball covers the torus.
	if got := BallSize(5, 2, Diameter(5, 2)); got != 25 {
		t.Errorf("full ball = %d, want 25", got)
	}
	// Radius 1 ball is the node plus its 2d neighbors.
	if got := BallSize(5, 3, 1); got != 7 {
		t.Errorf("unit ball = %d, want 7", got)
	}
}

func TestFullExchangeTotalMatchesLoadEngine(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 2}, {3, 3}, {4, 3}} {
		tr := torus.New(c.k, c.d)
		p, err := placement.Full{}.Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		got := FullExchangeTotal(c.k, c.d)
		want := load.ExpectedTotal(p)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("T^%d_%d: closed form %v, enumeration %v", c.d, c.k, got, want)
		}
	}
}

func TestLinearExchangeTotalMatchesLoadEngine(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}, {5, 3}, {6, 3}, {3, 4}} {
		tr := torus.New(c.k, c.d)
		p, err := placement.Linear{C: 0}.Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		got := LinearExchangeTotal(c.k, c.d)
		want := load.ExpectedTotal(p)
		if math.Abs(got-want) > 1e-6 {
			t.Errorf("T^%d_%d: closed form %v, enumeration %v", c.d, c.k, got, want)
		}
	}
}

func TestLinearExchangeResidueInvariance(t *testing.T) {
	// The total is the same for every residue class c (translation symmetry).
	tr := torus.New(5, 3)
	var first float64
	for c := 0; c < 5; c++ {
		p, err := placement.Linear{C: c}.Build(tr)
		if err != nil {
			t.Fatal(err)
		}
		tot := load.ExpectedTotal(p)
		if c == 0 {
			first = tot
			continue
		}
		if tot != first {
			t.Errorf("residue %d total %v differs from residue 0 total %v", c, tot, first)
		}
	}
}
