// Package lee provides closed-form Lee-distance analytics on Z_k^d (Bose et
// al., "Lee Distance and Topological Properties of k-ary n-cubes", the
// paper's reference [6]): ring and torus distance distributions, mean
// distances, diameter, and Lee-sphere sizes. The closed forms predict the
// aggregate quantities the load engine measures (e.g. Σ_pairs Lee(p,q) for
// full and linear placements), giving the test suite analytic anchors that
// do not depend on any routing code.
package lee

// RingDistanceSum returns Σ_{j∈Z_k} cyclicDistance(0, j): the total Lee
// distance from a fixed residue to all residues of Z_k. It equals k²/4 for
// even k and (k²−1)/4 for odd k.
func RingDistanceSum(k int) int {
	if k%2 == 0 {
		return k * k / 4
	}
	return (k*k - 1) / 4
}

// RingMeanDistance is RingDistanceSum / k.
func RingMeanDistance(k int) float64 {
	return float64(RingDistanceSum(k)) / float64(k)
}

// TorusMeanDistance returns the mean Lee distance between two independent
// uniform nodes of T^d_k: d · RingMeanDistance(k) (coordinates are
// independent).
func TorusMeanDistance(k, d int) float64 {
	return float64(d) * RingMeanDistance(k)
}

// Diameter returns the Lee diameter of T^d_k: d·⌊k/2⌋.
func Diameter(k, d int) int {
	return d * (k / 2)
}

// FullExchangeTotal returns Σ_{p≠q} Lee(p,q) over all ordered node pairs of
// the fully populated torus: n·(n−1)·mean adjusted — computed exactly as
// n² · d · ringSum/k − 0 (self pairs contribute zero distance, so they can
// be included for free): k^d · k^{d−1} · d · RingDistanceSum(k) / ... more
// directly: for each ordered pair, each coordinate contributes
// independently, so the total is d · k^{2(d−1)} · k · RingDistanceSum(k).
func FullExchangeTotal(k, d int) float64 {
	// Per coordinate: Σ_{a,b ∈ Z_k} dist(a,b) = k · RingDistanceSum(k).
	// The other d−1 coordinates of both endpoints are free: k^{2(d−1)}.
	perCoord := float64(k) * float64(RingDistanceSum(k))
	free := 1.0
	for i := 0; i < 2*(d-1); i++ {
		free *= float64(k)
	}
	return float64(d) * perCoord * free
}

// SphereSize returns |{x ∈ Z_k^d : Lee(0, x) = r}| — the surface of the Lee
// sphere of radius r — computed by dynamic programming over dimensions.
// SphereSize(k, d, 0) = 1 and Σ_r SphereSize = k^d.
func SphereSize(k, d, r int) int {
	// ways[s] = number of residues at cyclic distance s from 0 in Z_k.
	half := k / 2
	ways := make([]int, half+1)
	ways[0] = 1
	for s := 1; s <= half; s++ {
		if k%2 == 0 && s == half {
			ways[s] = 1
		} else {
			ways[s] = 2
		}
	}
	// DP over dimensions.
	cur := make([]int, Diameter(k, d)+1)
	cur[0] = 1
	for dim := 0; dim < d; dim++ {
		next := make([]int, len(cur))
		for have, cnt := range cur {
			if cnt == 0 {
				continue
			}
			for s := 0; s <= half; s++ {
				if have+s < len(next) {
					next[have+s] += cnt * ways[s]
				}
			}
		}
		cur = next
	}
	if r < 0 || r >= len(cur) {
		return 0
	}
	return cur[r]
}

// BallSize returns |{x : Lee(0, x) ≤ r}|.
func BallSize(k, d, r int) int {
	total := 0
	for s := 0; s <= r; s++ {
		total += SphereSize(k, d, s)
	}
	return total
}

// LinearExchangeTotal returns Σ_{p≠q∈P} Lee(p,q) for the linear placement
// P = {p : Σp_i ≡ c (mod k)} on T^d_k, computed exactly by convolving the
// joint distribution of (Lee distance, residue difference) across
// dimensions. It anchors load.ExpectedTotal for linear placements without
// enumerating pairs.
func LinearExchangeTotal(k, d int) float64 {
	// For one coordinate, count pairs (a, b) ∈ Z_k² by (distance, b−a mod k).
	// Then convolve d times tracking (total distance, total residue diff),
	// and keep pairs with total residue diff ≡ 0. Each solution set of the
	// linear constraint appears k times over (p anchored anywhere), handled
	// by dividing at the end: pairs of P correspond to difference vectors
	// with Σδ ≡ 0, each realized |P| = k^{d−1} times.
	// dist[s][δ]: number of δ ∈ Z_k with cyclicDistance(0, δ) = s is implied;
	// we only need, per dimension, the pair (distance contributed, δ).
	type cell struct{ count float64 }
	// table[t][δ] after processing some dimensions: number of difference
	// vectors with total distance t and residue sum δ.
	maxT := Diameter(k, d)
	table := make([][]cell, maxT+1)
	for i := range table {
		table[i] = make([]cell, k)
	}
	table[0][0].count = 1
	for dim := 0; dim < d; dim++ {
		next := make([][]cell, maxT+1)
		for i := range next {
			next[i] = make([]cell, k)
		}
		for t := 0; t <= maxT; t++ {
			for delta := 0; delta < k; delta++ {
				c := table[t][delta].count
				if c == 0 {
					continue
				}
				for step := 0; step < k; step++ {
					s := cyclicDistance(step, k)
					if t+s > maxT {
						continue
					}
					next[t+s][(delta+step)%k].count += c
				}
			}
		}
		table = next
	}
	// Difference vectors with Σδ ≡ 0: each occurs for k^{d−1} anchor points p.
	total := 0.0
	for t := 0; t <= maxT; t++ {
		total += float64(t) * table[t][0].count
	}
	anchors := 1.0
	for i := 0; i < d-1; i++ {
		anchors *= float64(k)
	}
	return total * anchors
}

func cyclicDistance(delta, k int) int {
	if other := k - delta; other < delta {
		return other
	}
	return delta
}
