package load

import (
	"runtime"
	"sync"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// ComputeValiant evaluates the expected loads of Valiant's two-phase
// randomized routing: every message from p to q first travels to a uniform
// random intermediate node r (phase 1: p→r under the base algorithm), then
// on to its destination (phase 2: r→q). Valiant's scheme trades a factor
// ≤ 2 in total traffic for worst-case load balance on adversarial
// permutations — the classical fix for dimension-ordered routing's bad
// inputs, and the natural comparator suggested by the paper's BSP framing
// (Valiant [15]).
//
// The result is the exact expectation over both the random intermediate
// and the base algorithm's path choice. Note the intermediate may be any
// torus node (router-only nodes forward fine), and paths are no longer
// minimal end-to-end, so Result.Total ≈ 2·n·meanLee rather than the Lee
// sum — conservation becomes Σ_l E(l) = Σ_{p≠q} E_r[Lee(p,r) + Lee(r,q)].
func ComputeValiant(p *placement.Placement, pat Pattern, alg routing.Algorithm, opts Options) *Result {
	t := p.Torus()
	demands := pat.Demands(p)
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(demands) {
		workers = maxInt(1, len(demands))
	}
	invN := 1.0 / float64(t.Nodes())

	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, t.Edges())
			for i := w; i < len(demands); i += workers {
				dm := demands[i]
				weight := dm.Weight * invN
				add := func(e torus.Edge, x float64) { local[e] += x * weight }
				for r := 0; r < t.Nodes(); r++ {
					mid := torus.Node(r)
					if mid != dm.Src {
						alg.AccumulatePair(t, dm.Src, mid, add)
					}
					if mid != dm.Dst {
						alg.AccumulatePair(t, mid, dm.Dst, add)
					}
				}
			}
			partials[w] = local
		}(w)
	}
	wg.Wait()

	loads := make([]float64, t.Edges())
	for _, local := range partials {
		for e, v := range local {
			loads[e] += v
		}
	}
	return newResult(t, p, alg.Name()+"+valiant/"+pat.Name(), loads)
}

// ValiantExpectedTotal returns the conserved total for Valiant routing:
// Σ demands weight · E_r[Lee(src,r) + Lee(r,dst)].
func ValiantExpectedTotal(p *placement.Placement, pat Pattern) float64 {
	t := p.Torus()
	// E_r[Lee(x, r)] is the same for every x by vertex transitivity:
	// meanLee = Σ_v Lee(0, v) / n.
	sum := 0
	t.ForEachNode(func(v torus.Node) { sum += t.LeeDistance(0, v) })
	meanLee := float64(sum) / float64(t.Nodes())
	total := 0.0
	for _, dm := range pat.Demands(p) {
		total += dm.Weight * 2 * meanLee
	}
	return total
}
