package load

import (
	"fmt"
	"math/rand"
	"sync"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// Demand is one traffic requirement: Weight messages from Src to Dst per
// round. Complete exchange is the all-pairs unit-weight special case; the
// paper's introduction motivates placements with matrix transposition,
// FFT-style exchanges, and distributed table lookup, all of which are
// Patterns here.
type Demand struct {
	Src, Dst torus.Node
	Weight   float64
}

// Pattern generates a traffic matrix over a placement's processors.
type Pattern interface {
	Name() string
	// Demands lists the traffic pairs; implementations must only use
	// processors of the placement as endpoints and must omit self-pairs.
	Demands(p *placement.Placement) []Demand
}

// CompleteExchange is all-to-all personalized communication (§2.1): every
// ordered processor pair exchanges one message.
type CompleteExchange struct{}

// Name implements Pattern.
func (CompleteExchange) Name() string { return "complete-exchange" }

// Demands implements Pattern.
func (CompleteExchange) Demands(p *placement.Placement) []Demand {
	out := make([]Demand, 0, p.Pairs())
	for _, src := range p.Nodes() {
		for _, dst := range p.Nodes() {
			if dst != src {
				out = append(out, Demand{Src: src, Dst: dst, Weight: 1})
			}
		}
	}
	return out
}

// Transpose sends each processor's data to its coordinate-reversed partner
// (a_1, …, a_d) → (a_d, …, a_1) — matrix transposition for d = 2. Pairs
// whose partner carries no processor, or is the processor itself, send
// nothing.
type Transpose struct{}

// Name implements Pattern.
func (Transpose) Name() string { return "transpose" }

// Demands implements Pattern.
func (Transpose) Demands(p *placement.Placement) []Demand {
	t := p.Torus()
	var out []Demand
	coords := make([]int, t.D())
	rev := make([]int, t.D())
	for _, src := range p.Nodes() {
		t.CoordsInto(src, coords)
		for j := range coords {
			rev[t.D()-1-j] = coords[j]
		}
		dst := t.NodeAt(rev)
		if dst != src && p.Contains(dst) {
			out = append(out, Demand{Src: src, Dst: dst, Weight: 1})
		}
	}
	return out
}

// Shift sends each processor to the processor at a fixed coordinate offset
// (a cyclic shift / neighbor exchange, the h = 1 relation of BSP practice).
// Offsets that land on router-only nodes produce no demand.
type Shift struct {
	Offset []int
}

// Name implements Pattern.
func (s Shift) Name() string { return fmt.Sprintf("shift%v", s.Offset) }

// Demands implements Pattern.
func (s Shift) Demands(p *placement.Placement) []Demand {
	t := p.Torus()
	if len(s.Offset) != t.D() {
		panic("load: shift offset arity mismatch")
	}
	var out []Demand
	for _, src := range p.Nodes() {
		dst := t.Translate(src, s.Offset)
		if dst != src && p.Contains(dst) {
			out = append(out, Demand{Src: src, Dst: dst, Weight: 1})
		}
	}
	return out
}

// HotSpot sends one message from every processor to a single processor
// (index HotIndex into the placement's node list) — the worst-case funnel,
// bounded below by (|P|−1)/2d on any routing.
type HotSpot struct {
	HotIndex int
}

// Name implements Pattern.
func (h HotSpot) Name() string { return fmt.Sprintf("hotspot(%d)", h.HotIndex) }

// Demands implements Pattern.
func (h HotSpot) Demands(p *placement.Placement) []Demand {
	nodes := p.Nodes()
	hot := nodes[h.HotIndex%len(nodes)]
	var out []Demand
	for _, src := range nodes {
		if src != hot {
			out = append(out, Demand{Src: src, Dst: hot, Weight: 1})
		}
	}
	return out
}

// RandomPairs draws Count ordered pairs uniformly (with replacement,
// excluding self-pairs) — an irregular traffic sample.
type RandomPairs struct {
	Count int
	Seed  int64
}

// Name implements Pattern.
func (r RandomPairs) Name() string { return fmt.Sprintf("random-pairs(%d)", r.Count) }

// Demands implements Pattern.
func (r RandomPairs) Demands(p *placement.Placement) []Demand {
	rng := rand.New(rand.NewSource(r.Seed))
	nodes := p.Nodes()
	out := make([]Demand, 0, r.Count)
	for len(out) < r.Count && len(nodes) > 1 {
		src := nodes[rng.Intn(len(nodes))]
		dst := nodes[rng.Intn(len(nodes))]
		if src != dst {
			out = append(out, Demand{Src: src, Dst: dst, Weight: 1})
		}
	}
	return out
}

// ComputePattern evaluates the exact expected per-edge load of an arbitrary
// traffic pattern under the routing algorithm — the Definition 4 engine
// generalized beyond complete exchange. Compute(p, alg, opts) is exactly
// ComputePattern(p, CompleteExchange{}, alg, opts).
func ComputePattern(p *placement.Placement, pat Pattern, alg routing.Algorithm, opts Options) *Result {
	t := p.Torus()
	demands := pat.Demands(p)
	workers := effectiveWorkers(opts.Workers, len(demands))

	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, t.Edges())
			for i := w; i < len(demands); i += workers {
				dm := demands[i]
				alg.AccumulatePair(t, dm.Src, dm.Dst, func(e torus.Edge, weight float64) {
					local[e] += weight * dm.Weight
				})
			}
			partials[w] = local
		}(w)
	}
	wg.Wait()

	loads := make([]float64, t.Edges())
	for _, local := range partials {
		for e, v := range local {
			loads[e] += v
		}
	}
	return newResult(t, p, alg.Name()+"/"+pat.Name(), loads)
}

// PatternTotal returns Σ demands weight·Lee(src,dst): the conserved total
// expected edge usage of the pattern under any minimal routing.
func PatternTotal(p *placement.Placement, pat Pattern) float64 {
	t := p.Torus()
	total := 0.0
	for _, dm := range pat.Demands(p) {
		total += dm.Weight * float64(t.LeeDistance(dm.Src, dm.Dst))
	}
	return total
}
