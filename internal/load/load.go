// Package load computes the communication load of Definition 4: given a
// placement P and a routing algorithm A on T^d_k, the load of a directed
// edge l is the expected number of messages crossing l during one complete
// exchange (every processor sends one message to every other processor,
// each message picking a path uniformly from C^A_{p→q}).
//
// The engine fans the |P|·(|P|−1) ordered pairs across workers, each with a
// private per-edge accumulator that is merged once at the end, so there is
// no shared-write contention and results are deterministic for a fixed
// worker count. An exact big.Rat engine and a Monte-Carlo estimator provide
// independent cross-checks.
package load

import (
	"fmt"
	"runtime"
	"sync"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// Result holds per-edge expected loads for one (placement, algorithm) pair.
type Result struct {
	Torus     *torus.Torus
	Placement *placement.Placement
	Algorithm string
	// Loads[e] is the expected number of messages crossing directed edge e.
	Loads []float64
	// Max is the maximum load E_max and MaxEdge attains it.
	Max     float64
	MaxEdge torus.Edge
	// Total is Σ_l E(l); it always equals the sum of Lee distances over all
	// ordered processor pairs (each message occupies exactly Lee(p,q) edges
	// in expectation).
	Total float64
}

// Options configures the engine.
type Options struct {
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
}

// Compute evaluates the exact expected load of every directed edge.
func Compute(p *placement.Placement, alg routing.Algorithm, opts Options) *Result {
	t := p.Torus()
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	procs := p.Nodes()
	if workers > len(procs) {
		workers = maxInt(1, len(procs))
	}

	partials := make([][]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			local := make([]float64, t.Edges())
			add := func(e torus.Edge, weight float64) { local[e] += weight }
			// Static block partition over source processors keeps the
			// floating-point summation order stable per worker count.
			for i := w; i < len(procs); i += workers {
				src := procs[i]
				for _, dst := range procs {
					if dst == src {
						continue
					}
					alg.AccumulatePair(t, src, dst, add)
				}
			}
			partials[w] = local
		}(w)
	}
	wg.Wait()

	loads := make([]float64, t.Edges())
	for _, local := range partials {
		for e, v := range local {
			loads[e] += v
		}
	}
	return newResult(t, p, alg.Name(), loads)
}

// NewResultFromLoads wraps an externally computed per-edge load vector in
// a Result (used by the fault-rerouting engine, which redistributes loads
// itself). The slice is owned by the Result afterwards.
func NewResultFromLoads(t *torus.Torus, p *placement.Placement, algName string, loads []float64) *Result {
	return newResult(t, p, algName, loads)
}

func newResult(t *torus.Torus, p *placement.Placement, algName string, loads []float64) *Result {
	res := &Result{Torus: t, Placement: p, Algorithm: algName, Loads: loads}
	for e, v := range loads {
		res.Total += v
		if v > res.Max {
			res.Max = v
			res.MaxEdge = torus.Edge(e)
		}
	}
	return res
}

// Mean returns the average load over all directed edges.
func (r *Result) Mean() float64 {
	return r.Total / float64(len(r.Loads))
}

// MeanNonzero returns the average load over edges with nonzero load.
func (r *Result) MeanNonzero() float64 {
	sum, n := 0.0, 0
	for _, v := range r.Loads {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// NonzeroEdges returns the number of edges carrying any load.
func (r *Result) NonzeroEdges() int {
	n := 0
	for _, v := range r.Loads {
		if v > 0 {
			n++
		}
	}
	return n
}

// PerDimensionMax returns E_max restricted to edges of each dimension.
func (r *Result) PerDimensionMax() []float64 {
	out := make([]float64, r.Torus.D())
	for e, v := range r.Loads {
		j := r.Torus.EdgeDim(torus.Edge(e))
		if v > out[j] {
			out[j] = v
		}
	}
	return out
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s with %s: E_max=%.4f at %s, mean=%.4f",
		r.Placement, r.Algorithm, r.Max, r.Torus.EdgeString(r.MaxEdge), r.Mean())
}

// ExpectedTotal returns the analytically required value of Total: the sum
// of Lee distances over all ordered processor pairs. Compute results must
// match it exactly up to floating point error (load conservation).
func ExpectedTotal(p *placement.Placement) float64 {
	t := p.Torus()
	procs := p.Nodes()
	total := 0
	for _, src := range procs {
		for _, dst := range procs {
			if dst != src {
				total += t.LeeDistance(src, dst)
			}
		}
	}
	return float64(total)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
