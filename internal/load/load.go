// Package load computes the communication load of Definition 4: given a
// placement P and a routing algorithm A on T^d_k, the load of a directed
// edge l is the expected number of messages crossing l during one complete
// exchange (every processor sends one message to every other processor,
// each message picking a path uniformly from C^A_{p→q}).
//
// The engine fans the |P|·(|P|−1) ordered pairs across workers, each with a
// private per-edge accumulator that is merged once at the end, so there is
// no shared-write contention and results are deterministic for a fixed
// worker count. An exact big.Rat engine and a Monte-Carlo estimator provide
// independent cross-checks.
package load

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"

	"torusnet/internal/obs"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// Result holds per-edge expected loads for one (placement, algorithm) pair.
type Result struct {
	Torus     *torus.Torus
	Placement *placement.Placement
	Algorithm string
	// Engine records which engine produced the loads: EngineGeneric for the
	// pair loop, EngineSymmetry for the translation fast path. Empty for
	// results wrapped via NewResultFromLoads.
	Engine string
	// Loads[e] is the expected number of messages crossing directed edge e.
	Loads []float64
	// Max is the maximum load E_max and MaxEdge attains it.
	Max     float64
	MaxEdge torus.Edge
	// Total is Σ_l E(l); it always equals the sum of Lee distances over all
	// ordered processor pairs (each message occupies exactly Lee(p,q) edges
	// in expectation).
	Total float64
	// Exact reports whether Max is E_max itself rather than an upper bound
	// on it. Every computed engine is exact; the analytic engine sets it
	// false when it answers from the Theorem 3–5 bounds, so bound-only
	// answers are never cross-checked (or cached) as equalities.
	Exact bool
	// Theorem names the closed form an analytic result came from
	// ("theorem2" … "theorem5"); empty for computed engines.
	Theorem string
}

// Engine names recorded in Result.Engine.
const (
	EngineGeneric  = "generic"
	EngineSymmetry = "symmetry"
	// EngineMonteCarlo labels estimates produced by the MonteCarlo sampler
	// (degraded service answers); MonteCarloResult has no Engine field, so
	// the name exists for consumers that mix exact and sampled loads.
	EngineMonteCarlo = "montecarlo"
	// EngineAnalytic labels O(1) closed-form answers from the Theorem 2–5
	// expressions. Analytic results carry no per-edge Loads vector (only
	// Max, plus Exact/Theorem); consumers that need edge detail must use a
	// computed engine.
	EngineAnalytic = "analytic"
)

// FastPathMode selects how Compute uses the translation-symmetry engine.
type FastPathMode int

const (
	// FastPathAuto (the zero value) uses the symmetry engine whenever it is
	// sound (translation-equivariant algorithm) and profitable (non-trivial
	// placement stabilizer), falling back to the generic pair loop otherwise.
	FastPathAuto FastPathMode = iota
	// FastPathOff always uses the generic pair loop.
	FastPathOff
	// FastPathForce uses the symmetry engine whenever it is sound, even for
	// a trivial (identity-only) stabilizer where it has no speed advantage.
	// Unsound combinations still fall back to the generic engine: soundness
	// is never negotiable.
	FastPathForce
)

// String names the mode for diagnostics.
func (m FastPathMode) String() string {
	switch m {
	case FastPathAuto:
		return "auto"
	case FastPathOff:
		return "off"
	case FastPathForce:
		return "force"
	default:
		return fmt.Sprintf("FastPathMode(%d)", int(m))
	}
}

// Options configures the engine.
type Options struct {
	// Workers is the number of goroutines; 0 means GOMAXPROCS.
	Workers int
	// FastPath selects the translation-symmetry fast path; the zero value
	// auto-detects. Both engines compute the same expectations, so results
	// agree up to floating-point summation order (~1e-12 relative).
	FastPath FastPathMode
	// CrossCheck recomputes every fast-path result with the generic engine
	// and panics on divergence beyond floating-point tolerance. Debugging
	// and experiment aid; no-op when the generic engine was used anyway.
	// For analytic results it gates Max instead: equality for exact cells,
	// the bound direction for Theorem 3–5 cells.
	CrossCheck bool
	// Analytic selects the closed-form O(1) tier, tried ahead of the fast
	// path. Off by default: see AnalyticMode.
	Analytic AnalyticMode
}

// effectiveWorkers resolves a requested worker count against the number of
// parallel items: <= 0 means GOMAXPROCS, and the count is capped at items
// (floor 1) before any partial buffers are sized, so the number of partial
// accumulators — and with it the floating-point merge order — is a pure
// function of (requested, items).
func effectiveWorkers(requested, items int) int {
	workers := requested
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > items {
		workers = maxInt(1, items)
	}
	return workers
}

// Compute evaluates the exact expected load of every directed edge.
func Compute(p *placement.Placement, alg routing.Algorithm, opts Options) *Result {
	return ComputeCtx(context.Background(), p, alg, opts)
}

// ComputeCtx is Compute with observability threaded through ctx: when the
// context carries an active trace, the dispatch, engine stages, and merge
// record spans (load.compute → load.pairs / load.bases / load.scatter →
// load.merge) and the engine goroutines carry a pprof "engine" label. With
// no active trace the instrumentation collapses to nil-span no-ops, so the
// background-context Compute path stays allocation-identical to before.
func ComputeCtx(ctx context.Context, p *placement.Placement, alg routing.Algorithm, opts Options) *Result {
	fpComputeDispatch.InjectHard()
	workers := effectiveWorkers(opts.Workers, p.Size())
	ctx, sp := obs.Start(ctx, "load.compute")
	defer sp.End()
	sp.SetAttr("algorithm", alg.Name())
	sp.SetAttrInt("workers", int64(workers))
	sp.SetAttrInt("processors", int64(p.Size()))
	if res, ok := computeAnalytic(ctx, p, alg, opts.Analytic); ok {
		sp.SetAttr("engine", EngineAnalytic)
		if opts.CrossCheck {
			crossCheckAnalytic(res, computeGeneric(ctx, p, alg, workers))
		}
		return res
	}
	if opts.FastPath != FastPathOff {
		if res, ok := computeSymmetry(ctx, p, alg, workers, opts.FastPath == FastPathForce); ok {
			sp.SetAttr("engine", EngineSymmetry)
			if opts.CrossCheck {
				crossCheck(res, computeGeneric(ctx, p, alg, workers))
			}
			return res
		}
	}
	sp.SetAttr("engine", EngineGeneric)
	return computeGeneric(ctx, p, alg, workers)
}

// withEngineLabel runs fn under a pprof "engine" label so CPU profiles
// attribute engine time, but only when observability is live (an active
// span or enabled counters): pprof.Do allocates its label set, and the
// allocation-free guarantee of the load engines is gated in CI.
func withEngineLabel(ctx context.Context, engine string, fn func()) {
	if obs.FromContext(ctx) == nil && !obs.CountersEnabled() {
		fn()
		return
	}
	pprof.Do(ctx, pprof.Labels("engine", engine), func(context.Context) { fn() })
}

// computeGeneric is the O(|P|²) ordered-pair loop. Workers must already be
// the effective count from effectiveWorkers.
func computeGeneric(ctx context.Context, p *placement.Placement, alg routing.Algorithm, workers int) *Result {
	t := p.Torus()
	procs := p.Nodes()

	ia, hasInto := alg.(routing.InplaceAccumulator)
	partials := make([][]float64, workers)
	func() {
		_, psp := obs.Start(ctx, "load.pairs")
		defer psp.End()
		psp.SetAttrInt("sources", int64(len(procs)))
		withEngineLabel(ctx, EngineGeneric, func() {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					local := make([]float64, t.Edges())
					// Static block partition over source processors keeps the
					// floating-point summation order stable per worker count.
					if hasInto {
						// Allocation-free steady state: scratch reused across pairs,
						// mass deposited straight into the worker's local slice.
						sc := routing.NewPairScratch(t)
						for i := w; i < len(procs); i += workers {
							src := procs[i]
							for _, dst := range procs {
								if dst == src {
									continue
								}
								ia.AccumulatePairInto(t, src, dst, local, sc)
							}
						}
					} else {
						add := func(e torus.Edge, weight float64) { local[e] += weight }
						for i := w; i < len(procs); i += workers {
							src := procs[i]
							for _, dst := range procs {
								if dst == src {
									continue
								}
								alg.AccumulatePair(t, src, dst, add)
							}
						}
					}
					partials[w] = local
				}(w)
			}
			wg.Wait()
		})
	}()
	fpComputeMerge.InjectHard()

	loads := make([]float64, t.Edges())
	func() {
		_, msp := obs.Start(ctx, "load.merge")
		defer msp.End()
		for _, local := range partials {
			for e, v := range local {
				loads[e] += v
			}
		}
	}()
	res := newResult(t, p, alg.Name(), loads)
	res.Engine = EngineGeneric
	return res
}

// NewResultFromLoads wraps an externally computed per-edge load vector in
// a Result (used by the fault-rerouting engine, which redistributes loads
// itself). The slice is owned by the Result afterwards.
func NewResultFromLoads(t *torus.Torus, p *placement.Placement, algName string, loads []float64) *Result {
	return newResult(t, p, algName, loads)
}

func newResult(t *torus.Torus, p *placement.Placement, algName string, loads []float64) *Result {
	res := &Result{Torus: t, Placement: p, Algorithm: algName, Loads: loads, Exact: true}
	for e, v := range loads {
		res.Total += v
		if v > res.Max {
			res.Max = v
			res.MaxEdge = torus.Edge(e)
		}
	}
	return res
}

// Mean returns the average load over all directed edges; 0 for analytic
// results, which carry no per-edge vector.
func (r *Result) Mean() float64 {
	if len(r.Loads) == 0 {
		return 0
	}
	return r.Total / float64(len(r.Loads))
}

// MeanNonzero returns the average load over edges with nonzero load.
func (r *Result) MeanNonzero() float64 {
	sum, n := 0.0, 0
	for _, v := range r.Loads {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// NonzeroEdges returns the number of edges carrying any load.
func (r *Result) NonzeroEdges() int {
	n := 0
	for _, v := range r.Loads {
		if v > 0 {
			n++
		}
	}
	return n
}

// PerDimensionMax returns E_max restricted to edges of each dimension.
func (r *Result) PerDimensionMax() []float64 {
	out := make([]float64, r.Torus.D())
	for e, v := range r.Loads {
		j := r.Torus.EdgeDim(torus.Edge(e))
		if v > out[j] {
			out[j] = v
		}
	}
	return out
}

// String summarizes the result. Analytic results have no busiest edge to
// report and print the bound relation instead.
func (r *Result) String() string {
	if len(r.Loads) == 0 {
		rel := "≤"
		if r.Exact {
			rel = "="
		}
		return fmt.Sprintf("%s with %s: E_max %s %.4f (%s)",
			r.Placement, r.Algorithm, rel, r.Max, r.Engine)
	}
	return fmt.Sprintf("%s with %s: E_max=%.4f at %s, mean=%.4f",
		r.Placement, r.Algorithm, r.Max, r.Torus.EdgeString(r.MaxEdge), r.Mean())
}

// ExpectedTotal returns the analytically required value of Total: the sum
// of Lee distances over all ordered processor pairs. Compute results must
// match it exactly up to floating point error (load conservation).
func ExpectedTotal(p *placement.Placement) float64 {
	t := p.Torus()
	procs := p.Nodes()
	total := 0
	for _, src := range procs {
		for _, dst := range procs {
			if dst != src {
				total += t.LeeDistance(src, dst)
			}
		}
	}
	return float64(total)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
