package load

import (
	"fmt"
	"math"
)

// ODRLinearInteriorMax returns the closed-form expression of §6.1 for the
// maximum load of a linear placement of size k^{d-1} under restricted ODR:
//
//	k^{d-1}/8 + k^{d-2}/4          (k even)
//	k^{d-1}/8 − k^{d-3}/8          (k odd)
//
// The paper presents this as E_max, but its busiest-edge census multiplies
// the ring-pair count by k^{s−2}·k^{d−s−1} residue solutions, which
// presumes an *interior* correction dimension 2 ≤ s ≤ d−1 — so the
// expression only exists for d ≥ 3, and the function errors below that
// rather than silently evaluating the odd-k k^{d−3} term at a fractional
// power (d = 2 used to yield k/8 − 1/(8k), which is no census of anything).
// Measurement (experiment E6) confirms the expression exactly — for edges
// of interior dimensions. The global maximum is attained on the first/last
// dimension instead, where ODR funnels (see ODRLinearMax); both are
// Θ(k^{d-1}), so Theorem 2's linearity claim is unaffected.
func ODRLinearInteriorMax(k, d int) (float64, error) {
	if d < 3 {
		return 0, fmt.Errorf("load: ODRLinearInteriorMax needs an interior dimension (d >= 3), got d=%d", d)
	}
	if k%2 == 0 {
		return math.Pow(float64(k), float64(d-1))/8 + math.Pow(float64(k), float64(d-2))/4, nil
	}
	return math.Pow(float64(k), float64(d-1))/8 - math.Pow(float64(k), float64(d-3))/8, nil
}

// ODRLinearMax returns the measured-and-derived global maximum load of a
// linear placement of size k^{d-1} under restricted ODR:
//
//	k^{d-1}/2                      (k even)
//	(k^{d-1} − k^{d-2})/2          (k odd)
//
// The maximum sits on last-dimension edges: every destination q receives
// its |P|−1 messages through only the two dim-d in-arcs ODR allows, so the
// busier arc carries ⌈k/2⌉·k^{d-2}-ish load. (Symmetrically, first-
// dimension out-edges of each source are equally hot.) This is a factor ~4
// above the paper's §6.1 expression but still linear in |P| = k^{d-1}, so
// Theorem 2 stands with constant 1/2 instead of 1/8. Any routing with a
// fixed final correction dimension in fact obeys E_max ≥ (|P|−k^{d-2})/2
// here: the |P|−k^{d-2} sources differing from a destination in that
// dimension all arrive over its 2 final-dimension in-edges.
func ODRLinearMax(k, d int) float64 {
	if k%2 == 0 {
		return math.Pow(float64(k), float64(d-1)) / 2
	}
	return (math.Pow(float64(k), float64(d-1)) - math.Pow(float64(k), float64(d-2))) / 2
}

// ODRRingPairChoices returns the number of admissible (p_s, q_s) choices on
// a single ring for the busiest edge under restricted ODR (§6.1):
// (k/2)(k/2+1)/2 for even k, ((k−1)/2)((k−1)/2+1)/2 for odd k.
func ODRRingPairChoices(k int) int {
	if k%2 == 0 {
		h := k / 2
		return h * (h + 1) / 2
	}
	h := (k - 1) / 2
	return h * (h + 1) / 2
}

// FullTorusLowerBound returns the §1 bisection-counting lower bound on the
// maximum load of the fully populated k-even d-dimensional torus:
// E_max > k^{d+1}/8. It is superlinear in the processor count k^d — the
// scaling failure that motivates partially populated tori.
func FullTorusLowerBound(k, d int) float64 {
	return math.Pow(float64(k), float64(d+1)) / 8
}

// MultiODRUpperBound returns the Theorem 3 bound t²·k^{d-1} on the maximum
// load of a multiple linear placement of size t·k^{d-1} under ODR.
func MultiODRUpperBound(k, d, t int) float64 {
	return float64(t*t) * math.Pow(float64(k), float64(d-1))
}

// UDRUpperBound returns the Theorem 4 bound 2^{d-1}·k^{d-1} on the maximum
// load of a linear placement under UDR.
func UDRUpperBound(k, d int) float64 {
	return math.Pow(2, float64(d-1)) * math.Pow(float64(k), float64(d-1))
}

// MultiUDRUpperBound returns the Theorem 5 bound t²·2^{d-1}·k^{d-1} for
// multiple linear placements under UDR.
func MultiUDRUpperBound(k, d, t int) float64 {
	return float64(t*t) * UDRUpperBound(k, d)
}
