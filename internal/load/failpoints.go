package load

import "torusnet/internal/failpoint"

// Chaos-injection sites for the load engines. Compute has no error return
// (its inputs are validated upstream), so faults use InjectHard: an armed
// error or panic spec surfaces as a panic, which the service's worker-pool
// shield converts to a 500 without taking the process down. Disarmed, each
// site costs one atomic pointer load per Compute call.
var (
	// fpComputeDispatch fires at the top of Compute, before engine
	// selection — a fault here models the whole analysis blowing up or
	// stalling (sleep spec) before any work is done.
	fpComputeDispatch = failpoint.New("load.compute.dispatch")
	// fpComputeMerge fires in the generic engine between the workers'
	// wg.Wait and the partial-accumulator merge — a fault here models a
	// crash after the fan-out completed but before results are combined.
	fpComputeMerge = failpoint.New("load.compute.merge")
	// fpAnalyticDispatch fires before the closed-form tier recognizes a
	// placement. Unlike the sites above it is soft: an armed error makes
	// recognition fail, so the request falls through to the computed
	// engines — the degradation path an analytic-tier bug would take.
	fpAnalyticDispatch = failpoint.New("load.analytic.dispatch")
)
