package load

import (
	"math"
	"strings"
	"testing"

	"torusnet/internal/failpoint"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func TestAnalyticModeString(t *testing.T) {
	cases := map[AnalyticMode]string{
		AnalyticOff:     "off",
		AnalyticAuto:    "auto",
		AnalyticForce:   "force",
		AnalyticMode(9): "AnalyticMode(9)",
	}
	for mode, want := range cases {
		if got := mode.String(); got != want {
			t.Errorf("AnalyticMode(%d).String() = %q, want %q", int(mode), got, want)
		}
	}
}

// TestAnalyticEMaxCellMap pins the theorem map cell by cell: which
// (algorithm, t, k parity) combinations answer, with which theorem, and
// whether exactOnly filters them.
func TestAnalyticEMaxCellMap(t *testing.T) {
	cases := []struct {
		name              string
		k, d, t           int
		alg               string
		exactOnly, wantOK bool
		wantExact         bool
		wantTheorem       string
		wantEMax          float64
	}{
		{"odr-t1-even", 8, 3, 1, "ODR", true, true, true, "theorem2", ODRLinearMax(8, 3)},
		{"odr-t1-odd", 5, 2, 1, "ODR", true, true, true, "theorem2", ODRLinearMax(5, 2)},
		{"odr-t2-exactonly", 8, 3, 2, "ODR", true, false, false, "", 0},
		{"odr-t2-force", 8, 3, 2, "ODR", false, true, false, "theorem3", MultiODRUpperBound(8, 3, 2)},
		{"odrmulti-t1-odd", 7, 2, 1, "ODR-multi", true, true, true, "theorem2", ODRLinearMax(7, 2)},
		{"odrmulti-t1-even-exactonly", 8, 2, 1, "ODR-multi", true, false, false, "", 0},
		{"odrmulti-t1-even-force", 8, 2, 1, "ODR-multi", false, true, false, "theorem3", MultiODRUpperBound(8, 2, 1)},
		{"odrmulti-t3-force", 6, 2, 3, "ODR-multi", false, true, false, "theorem3", MultiODRUpperBound(6, 2, 3)},
		{"udr-t1-exactonly", 6, 2, 1, "UDR", true, false, false, "", 0},
		{"udr-t1-force", 6, 2, 1, "UDR", false, true, false, "theorem4", UDRUpperBound(6, 2)},
		{"udr-t2-force", 6, 2, 2, "UDR", false, true, false, "theorem5", MultiUDRUpperBound(6, 2, 2)},
		{"udrmulti-t1-force", 5, 3, 1, "UDR-multi", false, true, false, "theorem4", UDRUpperBound(5, 3)},
		{"udrmulti-t4-force", 5, 3, 4, "UDR-multi", false, true, false, "theorem5", MultiUDRUpperBound(5, 3, 4)},
		{"unknown-alg", 5, 2, 1, "FAR", false, false, false, "", 0},
		{"d-too-small", 5, 1, 1, "ODR", false, false, false, "", 0},
		{"t-too-small", 5, 2, 0, "ODR", false, false, false, "", 0},
		{"k-too-small", 1, 2, 1, "ODR", false, false, false, "", 0},
	}
	for _, c := range cases {
		ev, ok := AnalyticEMax(c.k, c.d, c.t, c.alg, c.exactOnly)
		if ok != c.wantOK {
			t.Errorf("%s: ok = %v, want %v", c.name, ok, c.wantOK)
			continue
		}
		if !ok {
			continue
		}
		if ev.Exact != c.wantExact || ev.Theorem != c.wantTheorem || ev.EMax != c.wantEMax {
			t.Errorf("%s: got %+v, want exact=%v theorem=%q emax=%g",
				c.name, ev, c.wantExact, c.wantTheorem, c.wantEMax)
		}
	}
}

// TestAnalyticExactMatchesComputed is the acceptance property: on every
// Theorem 2 equality cell — single linear placements under ODR for all k,
// and under ODR-multi for odd k — the analytic answer equals the computed
// E_max with zero divergence, across parities, d ∈ {2,3}, and translates.
func TestAnalyticExactMatchesComputed(t *testing.T) {
	for _, dims := range []struct{ k, d int }{{4, 2}, {5, 2}, {6, 2}, {7, 2}, {4, 3}, {5, 3}, {6, 3}} {
		tr := torus.New(dims.k, dims.d)
		for _, c := range []int{0, dims.k - 1} {
			p := mustBuild(t, placement.Linear{C: c}, tr)
			algs := []routing.Algorithm{routing.ODR{}}
			if dims.k%2 == 1 {
				algs = append(algs, routing.ODRMulti{})
			}
			for _, alg := range algs {
				an := Compute(p, alg, Options{Analytic: AnalyticAuto})
				if an.Engine != EngineAnalytic || !an.Exact || an.Theorem != "theorem2" {
					t.Fatalf("T^%d_%d c=%d %s: engine=%q exact=%v theorem=%q",
						dims.d, dims.k, c, alg.Name(), an.Engine, an.Exact, an.Theorem)
				}
				gen := Compute(p, alg, Options{FastPath: FastPathOff})
				if an.Max != gen.Max {
					t.Errorf("T^%d_%d c=%d %s: analytic %g, computed %g (diff %g)",
						dims.d, dims.k, c, alg.Name(), an.Max, gen.Max, an.Max-gen.Max)
				}
			}
		}
	}
}

// TestAnalyticAutoSkipsBoundCells checks AnalyticAuto never serves a
// Theorem 3–5 bound as an answer: those shapes run the computed engines.
func TestAnalyticAutoSkipsBoundCells(t *testing.T) {
	tr := torus.New(6, 2)
	cases := []struct {
		spec placement.Spec
		alg  routing.Algorithm
	}{
		{placement.Linear{C: 0}, routing.ODRMulti{}}, // even k: paths split
		{placement.Linear{C: 0}, routing.UDR{}},
		{placement.Linear{C: 0}, routing.UDRMulti{}},
		{placement.MultipleLinear{T: 2}, routing.ODR{}},
	}
	for _, c := range cases {
		p := mustBuild(t, c.spec, tr)
		res := Compute(p, c.alg, Options{Analytic: AnalyticAuto})
		if res.Engine == EngineAnalytic {
			t.Errorf("%s/%s: bound cell answered analytically under AnalyticAuto", c.spec.Name(), c.alg.Name())
		}
		if !res.Exact {
			t.Errorf("%s/%s: computed engines are always exact", c.spec.Name(), c.alg.Name())
		}
	}
}

// TestAnalyticForceBounds checks AnalyticForce serves the Theorem 3–5
// upper bounds with Exact == false, and that each bound dominates the
// computed E_max.
func TestAnalyticForceBounds(t *testing.T) {
	tr := torus.New(6, 2)
	cases := []struct {
		spec    placement.Spec
		alg     routing.Algorithm
		theorem string
	}{
		{placement.MultipleLinear{T: 2}, routing.ODR{}, "theorem3"},
		{placement.Linear{C: 0}, routing.ODRMulti{}, "theorem3"}, // even k
		{placement.Linear{C: 0}, routing.UDR{}, "theorem4"},
		{placement.MultipleLinear{T: 3}, routing.UDRMulti{}, "theorem5"},
	}
	for _, c := range cases {
		p := mustBuild(t, c.spec, tr)
		res := Compute(p, c.alg, Options{Analytic: AnalyticForce})
		if res.Engine != EngineAnalytic || res.Exact || res.Theorem != c.theorem {
			t.Fatalf("%s/%s: engine=%q exact=%v theorem=%q, want forced %s bound",
				c.spec.Name(), c.alg.Name(), res.Engine, res.Exact, res.Theorem, c.theorem)
		}
		gen := Compute(p, c.alg, Options{FastPath: FastPathOff})
		if gen.Max > res.Max+1e-9 {
			t.Errorf("%s/%s: %s bound %g below computed E_max %g",
				c.spec.Name(), c.alg.Name(), c.theorem, res.Max, gen.Max)
		}
	}
}

// TestAnalyticOffByDefault checks the tier is opt-in: the Options zero
// value never answers analytically, even on a perfect Theorem 2 cell.
func TestAnalyticOffByDefault(t *testing.T) {
	tr := torus.New(5, 2)
	p := mustBuild(t, placement.Linear{C: 0}, tr)
	if res := Compute(p, routing.ODR{}, Options{}); res.Engine == EngineAnalytic {
		t.Errorf("zero-value Options answered analytically (engine %q)", res.Engine)
	}
}

// TestAnalyticUnrecognizedFallsThrough checks unstructured placements
// (and non-consecutive unions) go down the computed path.
func TestAnalyticUnrecognizedFallsThrough(t *testing.T) {
	tr := torus.New(5, 2)
	random := mustBuild(t, placement.Random{Count: 7, Seed: 3}, tr)
	if res := Compute(random, routing.ODR{}, Options{Analytic: AnalyticForce}); res.Engine == EngineAnalytic {
		t.Error("random placement answered analytically")
	}
}

// TestAnalyticCrossCheck runs the analytic tier with CrossCheck on: the
// computed engine is re-run and must agree, or the process panics.
func TestAnalyticCrossCheck(t *testing.T) {
	tr := torus.New(5, 3)
	p := mustBuild(t, placement.Linear{C: 2}, tr)
	res := Compute(p, routing.ODR{}, Options{Analytic: AnalyticAuto, CrossCheck: true})
	if res.Engine != EngineAnalytic {
		t.Fatalf("engine %q, want analytic", res.Engine)
	}
	// A forced bound cell cross-checks the bound direction only.
	p2 := mustBuild(t, placement.MultipleLinear{T: 2}, tr)
	res2 := Compute(p2, routing.ODR{}, Options{Analytic: AnalyticForce, CrossCheck: true})
	if res2.Engine != EngineAnalytic || res2.Exact {
		t.Fatalf("engine %q exact=%v, want non-exact analytic", res2.Engine, res2.Exact)
	}
}

func TestCrossCheckAnalyticPanics(t *testing.T) {
	tr := torus.New(5, 2)
	p := mustBuild(t, placement.Linear{C: 0}, tr)
	mk := func(max float64, exact bool) *Result {
		return &Result{Torus: tr, Placement: p, Algorithm: "ODR", Max: max, Exact: exact}
	}
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected a panic", name)
			}
		}()
		fn()
	}
	mustPanic("exact divergence", func() { crossCheckAnalytic(mk(5, true), mk(4, true)) })
	mustPanic("bound violation", func() { crossCheckAnalytic(mk(5, false), mk(6, true)) })
	crossCheckAnalytic(mk(5, false), mk(4, true)) // slack bound: fine
	crossCheckAnalytic(mk(5, true), mk(5, true))  // equal: fine
}

// TestAnalyticResultShape checks the documented shape of analytic
// Results: no per-edge vector, Mean 0, and a String that renders the
// bound/equality relation.
func TestAnalyticResultShape(t *testing.T) {
	tr := torus.New(5, 2)
	p := mustBuild(t, placement.Linear{C: 0}, tr)
	exact := Compute(p, routing.ODR{}, Options{Analytic: AnalyticAuto})
	if exact.Loads != nil || exact.Mean() != 0 || exact.NonzeroEdges() != 0 {
		t.Errorf("analytic result carries per-edge state: loads=%v mean=%g", exact.Loads, exact.Mean())
	}
	if s := exact.String(); !strings.Contains(s, "E_max = ") || !strings.Contains(s, "(analytic)") {
		t.Errorf("exact String() = %q", s)
	}
	bound := Compute(mustBuild(t, placement.MultipleLinear{T: 2}, tr), routing.ODR{},
		Options{Analytic: AnalyticForce})
	if s := bound.String(); !strings.Contains(s, "E_max ≤ ") || !strings.Contains(s, "(analytic)") {
		t.Errorf("bound String() = %q", s)
	}
}

// TestAnalyticDispatchFailpoint checks the soft failpoint: an armed
// fault suppresses the analytic answer and the computed path serves the
// request instead of an error.
func TestAnalyticDispatchFailpoint(t *testing.T) {
	if err := failpoint.Enable("load.analytic.dispatch", "error"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.Disable("load.analytic.dispatch")
	tr := torus.New(5, 2)
	p := mustBuild(t, placement.Linear{C: 0}, tr)
	res := Compute(p, routing.ODR{}, Options{Analytic: AnalyticAuto})
	if res.Engine == EngineAnalytic {
		t.Fatalf("armed dispatch failpoint still answered analytically")
	}
	if !res.Exact || res.Max != ODRLinearMax(5, 2) {
		t.Errorf("fallback result: exact=%v max=%g", res.Exact, res.Max)
	}
}

// TestAnalyticAnswerServiceEntry drives the service lane's entry point.
func TestAnalyticAnswerServiceEntry(t *testing.T) {
	ev, ok := AnalyticAnswer(5, 2, 1, "ODR", true)
	if !ok || !ev.Exact || ev.EMax != ODRLinearMax(5, 2) {
		t.Fatalf("AnalyticAnswer = %+v, %v", ev, ok)
	}
	if _, ok := AnalyticAnswer(6, 2, 1, "ODR-multi", true); ok {
		t.Error("even-k ODR-multi is not an exact cell")
	}
}

// TestODRLinearInteriorMaxSmallD is the regression test for the odd-k
// underflow: d < 3 has no interior dimension, and the old code silently
// evaluated fractional powers of k instead of erroring.
func TestODRLinearInteriorMaxSmallD(t *testing.T) {
	for _, d := range []int{0, 1, 2} {
		if v, err := ODRLinearInteriorMax(7, d); err == nil {
			t.Errorf("d=%d: got %g, want an error", d, v)
		}
	}
	if v, err := ODRLinearInteriorMax(7, 3); err != nil || v != 6 {
		t.Errorf("d=3: got %g, %v; want (49-1)/8 = 6", v, err)
	}
	// The d=2 failure mode was a fractional power: k/8 − 1/(8k), never an
	// integer edge count. Guard against it ever coming back.
	if v, err := ODRLinearInteriorMax(8, 2); err == nil && v != math.Trunc(v) {
		t.Errorf("d=2 returned the fractional artifact %g instead of an error", v)
	}
}
