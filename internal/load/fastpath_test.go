package load

import (
	"math"
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func mustBuild(t *testing.T, s placement.Spec, tr *torus.Torus) *placement.Placement {
	t.Helper()
	p, err := s.Build(tr)
	if err != nil {
		t.Fatalf("%s on %s: %v", s.Name(), tr, err)
	}
	return p
}

// TestFastPathMatchesGenericAndExact is the property test of the PR: for
// translation-symmetric placements across even/odd k and d ∈ {2,3}, and all
// four dimension-ordered routing algorithms, the symmetry engine, the
// generic engine, and the big.Rat exact engine agree per edge.
func TestFastPathMatchesGenericAndExact(t *testing.T) {
	algs := []routing.Algorithm{routing.ODR{}, routing.ODRMulti{}, routing.UDR{}, routing.UDRMulti{}}
	specs := []placement.Spec{
		placement.Linear{C: 0},
		placement.Linear{C: 1},
		placement.MultipleLinear{T: 2},
	}
	for _, dims := range []struct{ k, d int }{{4, 2}, {5, 2}, {6, 2}, {4, 3}, {3, 3}} {
		tr := torus.New(dims.k, dims.d)
		for _, spec := range specs {
			p := mustBuild(t, spec, tr)
			for _, alg := range algs {
				fast := Compute(p, alg, Options{FastPath: FastPathForce})
				if fast.Engine != EngineSymmetry {
					t.Fatalf("%s/%s on %s: forced fast path used engine %q", spec.Name(), alg.Name(), tr, fast.Engine)
				}
				generic := Compute(p, alg, Options{FastPath: FastPathOff})
				if generic.Engine != EngineGeneric {
					t.Fatalf("%s/%s on %s: FastPathOff used engine %q", spec.Name(), alg.Name(), tr, generic.Engine)
				}
				if div := MaxEngineDivergence(fast, generic); div > 1e-9 {
					t.Fatalf("%s/%s on %s: fast vs generic diverge by %g", spec.Name(), alg.Name(), tr, div)
				}
				exact, err := ComputeExact(p, alg)
				if err != nil {
					t.Fatalf("%s/%s on %s: exact engine: %v", spec.Name(), alg.Name(), tr, err)
				}
				for e := range fast.Loads {
					want, _ := exact.Loads[e].Float64()
					if math.Abs(fast.Loads[e]-want) > 1e-9*math.Max(1, want) {
						t.Fatalf("%s/%s on %s: edge %d fast %g, exact %g",
							spec.Name(), alg.Name(), tr, e, fast.Loads[e], want)
					}
				}
			}
		}
	}
}

// TestFastPathAutoDispatch checks the dispatcher's decisions: symmetric
// placements with equivariant algorithms take the fast path, everything
// else falls back to the generic engine.
func TestFastPathAutoDispatch(t *testing.T) {
	tr := torus.New(4, 2)
	linear := mustBuild(t, placement.Linear{C: 0}, tr)
	random := mustBuild(t, placement.Random{Count: 5, Seed: 1}, tr)

	if res := Compute(linear, routing.ODR{}, Options{}); res.Engine != EngineSymmetry {
		t.Fatalf("linear/ODR auto: engine %q, want symmetry", res.Engine)
	}
	// Random placements have a trivial stabilizer: auto must fall back.
	if res := Compute(random, routing.ODR{}, Options{}); res.Engine != EngineGeneric {
		t.Fatalf("random/ODR auto: engine %q, want generic", res.Engine)
	}
	// MeshODR is not translation-equivariant: even Force must stay generic.
	if res := Compute(linear, routing.MeshODR{}, Options{FastPath: FastPathForce}); res.Engine != EngineGeneric {
		t.Fatalf("linear/MeshODR forced: engine %q, want generic (unsound)", res.Engine)
	}
	if res := Compute(linear, routing.ODR{}, Options{FastPath: FastPathOff}); res.Engine != EngineGeneric {
		t.Fatalf("linear/ODR off: engine %q, want generic", res.Engine)
	}
}

// TestFastPathForceTrivialStabilizer checks Force is still exact when the
// stabilizer is only the identity (every source is its own orbit).
func TestFastPathForceTrivialStabilizer(t *testing.T) {
	tr := torus.New(5, 2)
	p := mustBuild(t, placement.Random{Count: 6, Seed: 7}, tr)
	fast := Compute(p, routing.UDR{}, Options{FastPath: FastPathForce})
	if fast.Engine != EngineSymmetry {
		t.Fatalf("forced fast path used engine %q", fast.Engine)
	}
	generic := Compute(p, routing.UDR{}, Options{FastPath: FastPathOff})
	if div := MaxEngineDivergence(fast, generic); div > 1e-9 {
		t.Fatalf("trivial-stabilizer fast path diverges by %g", div)
	}
}

// TestFastPathCrossCheckMode checks CrossCheck passes on sound inputs (it
// panics on divergence, so plain completion is the assertion), for both
// equivariant algorithms lacking an Into kernel (FAR) and those with one.
func TestFastPathCrossCheckMode(t *testing.T) {
	tr := torus.New(4, 2)
	p := mustBuild(t, placement.Linear{C: 0}, tr)
	for _, alg := range []routing.Algorithm{routing.ODRMulti{}, routing.FAR{}, routing.ODROrder{Order: []int{1, 0}}} {
		res := Compute(p, alg, Options{CrossCheck: true})
		if res.Engine != EngineSymmetry {
			t.Fatalf("%s: engine %q, want symmetry", alg.Name(), res.Engine)
		}
	}
}

// TestFastPathDeterministicAcrossWorkerCounts mirrors the generic engine's
// determinism contract for the symmetry engine; run under -race in CI it
// also proves the scatter phase is data-race-free.
func TestFastPathDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := torus.New(6, 3)
	p := mustBuild(t, placement.Linear{C: 0}, tr)
	ref := Compute(p, routing.UDRMulti{}, Options{Workers: 1, FastPath: FastPathForce})
	for _, workers := range []int{2, 3, 8, 64} {
		got := Compute(p, routing.UDRMulti{}, Options{Workers: workers, FastPath: FastPathForce})
		if got.Engine != EngineSymmetry {
			t.Fatalf("workers=%d: engine %q", workers, got.Engine)
		}
		if div := MaxEngineDivergence(ref, got); div > 1e-9 {
			t.Fatalf("workers=%d diverges from serial by %g", workers, div)
		}
	}
}

// TestFastPathConservation checks load conservation (Total = Σ Lee
// distances) holds for the symmetry engine, including multi-orbit
// placements.
func TestFastPathConservation(t *testing.T) {
	tr := torus.New(6, 2)
	for _, spec := range []placement.Spec{placement.Linear{C: 2}, placement.MultipleLinear{T: 3}} {
		p := mustBuild(t, spec, tr)
		res := Compute(p, routing.ODRMulti{}, Options{FastPath: FastPathForce})
		if want := ExpectedTotal(p); math.Abs(res.Total-want) > 1e-6 {
			t.Fatalf("%s: total %g, want %g", spec.Name(), res.Total, want)
		}
	}
}

// TestEffectiveWorkersPureFunction is the regression test for the workers
// bugfix task: the partial-accumulator count, and with it the float merge
// order, must depend only on (requested, items) — an over-request equal to
// the item count cap must produce bit-identical loads.
func TestEffectiveWorkersPureFunction(t *testing.T) {
	for _, tc := range []struct{ requested, items, want int }{
		{0, 10, effectiveWorkers(0, 10)}, // GOMAXPROCS-dependent, self-consistent
		{3, 10, 3},
		{10, 3, 3},
		{1000, 3, 3},
		{5, 0, 1},
		{-2, 0, 1},
	} {
		if got := effectiveWorkers(tc.requested, tc.items); got != tc.want {
			t.Fatalf("effectiveWorkers(%d, %d) = %d, want %d", tc.requested, tc.items, got, tc.want)
		}
	}

	tr := torus.New(5, 2)
	p := mustBuild(t, placement.Linear{C: 0}, tr) // |P| = 5
	for _, mode := range []FastPathMode{FastPathOff, FastPathForce} {
		capped := Compute(p, routing.UDR{}, Options{Workers: 5, FastPath: mode})
		over := Compute(p, routing.UDR{}, Options{Workers: 1000, FastPath: mode})
		for e := range capped.Loads {
			if capped.Loads[e] != over.Loads[e] {
				t.Fatalf("mode %v: workers=5 and workers=1000 differ bitwise at edge %d: %g vs %g",
					mode, e, capped.Loads[e], over.Loads[e])
			}
		}
	}
}

// TestComputeGenericAllocFree pins the satellite's allocation win: the
// generic engine's steady state must not allocate per pair (only the fixed
// per-call buffers remain).
func TestComputeGenericAllocFree(t *testing.T) {
	tr := torus.New(6, 3)
	p := mustBuild(t, placement.Linear{C: 0}, tr) // 36 processors, 1260 pairs
	opts := Options{Workers: 1, FastPath: FastPathOff}
	for _, alg := range []routing.Algorithm{routing.ODR{}, routing.ODRMulti{}, routing.UDR{}, routing.UDRMulti{}} {
		allocs := testing.AllocsPerRun(3, func() {
			Compute(p, alg, opts)
		})
		// Fixed per-call cost: partials slice + worker local + scratch
		// buffers + Result; must not scale with the 1260 pairs.
		if allocs > 32 {
			t.Errorf("%s: generic Compute allocates %v times per call, want a small pair-independent constant", alg.Name(), allocs)
		}
	}
}
