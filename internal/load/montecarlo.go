package load

import (
	"math/rand"
	"sync"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// MonteCarlo estimates edge loads empirically: each of the given rounds
// performs one complete exchange in which every ordered pair samples a
// routing path at random (the operational model in §2.1), and per-edge
// message counts are averaged over rounds. As rounds grows the estimate
// converges to the exact expectation from Compute; the estimator also
// exposes the per-edge *peak* over rounds, the quantity a capacity planner
// would care about.
func MonteCarlo(p *placement.Placement, alg routing.Algorithm, rounds int, seed int64, opts Options) *MonteCarloResult {
	t := p.Torus()
	workers := effectiveWorkers(opts.Workers, rounds)
	procs := p.Nodes()

	type partial struct {
		sum  []float64
		peak []float64
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sum := make([]float64, t.Edges())
			peak := make([]float64, t.Edges())
			count := make([]float64, t.Edges())
			// Each round gets its own derived, reproducible stream.
			for r := w; r < rounds; r += workers {
				rng := rand.New(rand.NewSource(seed + int64(r)*1_000_003))
				for i := range count {
					count[i] = 0
				}
				for _, src := range procs {
					for _, dst := range procs {
						if dst == src {
							continue
						}
						path := alg.SamplePath(t, src, dst, rng)
						for _, e := range path.Edges {
							count[e]++
						}
					}
				}
				for e, c := range count {
					sum[e] += c
					if c > peak[e] {
						peak[e] = c
					}
				}
			}
			partials[w] = partial{sum: sum, peak: peak}
		}(w)
	}
	wg.Wait()

	mean := make([]float64, t.Edges())
	peak := make([]float64, t.Edges())
	for _, pt := range partials {
		for e := range mean {
			mean[e] += pt.sum[e]
			if pt.peak[e] > peak[e] {
				peak[e] = pt.peak[e]
			}
		}
	}
	res := &MonteCarloResult{Torus: t, Rounds: rounds, MeanLoads: mean, PeakLoads: peak}
	for e := range mean {
		mean[e] /= float64(rounds)
		if mean[e] > res.MaxMean {
			res.MaxMean = mean[e]
		}
		if peak[e] > res.MaxPeak {
			res.MaxPeak = peak[e]
		}
	}
	return res
}

// MonteCarloResult holds empirical load estimates.
type MonteCarloResult struct {
	Torus  *torus.Torus
	Rounds int
	// MeanLoads[e] is the average number of messages on e per exchange.
	MeanLoads []float64
	// PeakLoads[e] is the maximum observed over all rounds.
	PeakLoads []float64
	MaxMean   float64
	MaxPeak   float64
}
