package load

import (
	"math"
	"math/rand"
	"sync"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// MonteCarlo estimates edge loads empirically: each of the given rounds
// performs one complete exchange in which every ordered pair samples a
// routing path at random (the operational model in §2.1), and per-edge
// message counts are averaged over rounds. As rounds grows the estimate
// converges to the exact expectation from Compute; the estimator also
// exposes the per-edge *peak* over rounds, the quantity a capacity planner
// would care about.
func MonteCarlo(p *placement.Placement, alg routing.Algorithm, rounds int, seed int64, opts Options) *MonteCarloResult {
	t := p.Torus()
	workers := effectiveWorkers(opts.Workers, rounds)
	procs := p.Nodes()

	type partial struct {
		sum   []float64
		sumsq []float64
		peak  []float64
	}
	partials := make([]partial, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sum := make([]float64, t.Edges())
			sumsq := make([]float64, t.Edges())
			peak := make([]float64, t.Edges())
			count := make([]float64, t.Edges())
			// Each round gets its own derived, reproducible stream.
			for r := w; r < rounds; r += workers {
				rng := rand.New(rand.NewSource(seed + int64(r)*1_000_003))
				for i := range count {
					count[i] = 0
				}
				for _, src := range procs {
					for _, dst := range procs {
						if dst == src {
							continue
						}
						path := alg.SamplePath(t, src, dst, rng)
						for _, e := range path.Edges {
							count[e]++
						}
					}
				}
				for e, c := range count {
					sum[e] += c
					sumsq[e] += c * c
					if c > peak[e] {
						peak[e] = c
					}
				}
			}
			partials[w] = partial{sum: sum, sumsq: sumsq, peak: peak}
		}(w)
	}
	wg.Wait()

	mean := make([]float64, t.Edges())
	sumsq := make([]float64, t.Edges())
	peak := make([]float64, t.Edges())
	for _, pt := range partials {
		for e := range mean {
			mean[e] += pt.sum[e]
			sumsq[e] += pt.sumsq[e]
			if pt.peak[e] > peak[e] {
				peak[e] = pt.peak[e]
			}
		}
	}
	res := &MonteCarloResult{Torus: t, Rounds: rounds, MeanLoads: mean, PeakLoads: peak}
	for e := range mean {
		mean[e] /= float64(rounds)
		if mean[e] > res.MaxMean {
			res.MaxMean = mean[e]
			res.MaxMeanEdge = torus.Edge(e)
			res.MaxMeanStdErr = stderrOfMean(mean[e], sumsq[e], rounds)
		}
		if peak[e] > res.MaxPeak {
			res.MaxPeak = peak[e]
		}
	}
	return res
}

// stderrOfMean computes the standard error of the per-round mean at one
// edge from its running Σc and Σc² (sample variance over rounds, then
// ÷√rounds). Fewer than two rounds have no measurable spread, so the
// estimate degrades to 0 — callers report the bound as "unknown tightness"
// rather than inventing one.
func stderrOfMean(mean, sumsq float64, rounds int) float64 {
	if rounds < 2 {
		return 0
	}
	r := float64(rounds)
	variance := (sumsq - r*mean*mean) / (r - 1)
	if variance <= 0 {
		// Zero (single-path algorithms like ODR have no per-round spread)
		// or slightly negative from float cancellation.
		return 0
	}
	return math.Sqrt(variance / r)
}

// MonteCarloResult holds empirical load estimates.
type MonteCarloResult struct {
	Torus  *torus.Torus
	Rounds int
	// MeanLoads[e] is the average number of messages on e per exchange.
	MeanLoads []float64
	// PeakLoads[e] is the maximum observed over all rounds.
	PeakLoads []float64
	MaxMean   float64
	MaxPeak   float64
	// MaxMeanEdge is the edge attaining MaxMean, and MaxMeanStdErr is the
	// standard error of the per-round mean at that edge (0 when rounds < 2
	// or the algorithm is single-path, e.g. ODR, whose per-round loads are
	// deterministic). The service's degraded /v1/analyze answers report
	// 3×MaxMeanStdErr as the error bound on E_max.
	MaxMeanEdge   torus.Edge
	MaxMeanStdErr float64
}
