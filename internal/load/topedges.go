package load

import (
	"sort"

	"torusnet/internal/torus"
)

// EdgeLoad pairs an edge with its expected load.
type EdgeLoad struct {
	Edge torus.Edge
	Load float64
}

// TopEdges returns the n most loaded edges in decreasing load order (ties
// broken by edge index for determinism). n larger than the edge count
// returns all edges.
func (r *Result) TopEdges(n int) []EdgeLoad {
	all := make([]EdgeLoad, len(r.Loads))
	for e, v := range r.Loads {
		all[e] = EdgeLoad{Edge: torus.Edge(e), Load: v}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Load != all[j].Load {
			return all[i].Load > all[j].Load
		}
		return all[i].Edge < all[j].Edge
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// LoadAtDistance aggregates the mean load over edges grouped by the Lee
// distance of their source from a reference node — the radial load profile
// around a processor, showing how traffic decays (or funnels) with
// distance.
func (r *Result) LoadAtDistance(ref torus.Node) []float64 {
	t := r.Torus
	maxDist := 0
	dist := make([]int, t.Nodes())
	t.ForEachNode(func(u torus.Node) {
		dist[u] = t.LeeDistance(ref, u)
		if dist[u] > maxDist {
			maxDist = dist[u]
		}
	})
	sums := make([]float64, maxDist+1)
	counts := make([]int, maxDist+1)
	for e, v := range r.Loads {
		d := dist[t.EdgeSource(torus.Edge(e))]
		sums[d] += v
		counts[d]++
	}
	for i := range sums {
		if counts[i] > 0 {
			sums[i] /= float64(counts[i])
		}
	}
	return sums
}
