package load

import (
	"math"
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func TestValiantConservation(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	for _, pat := range []Pattern{CompleteExchange{}, HotSpot{}} {
		res := ComputeValiant(p, pat, routing.ODR{}, Options{})
		want := ValiantExpectedTotal(p, pat)
		if math.Abs(res.Total-want) > 1e-6*math.Max(1, want) {
			t.Errorf("%s: total %v, want %v", pat.Name(), res.Total, want)
		}
	}
}

func TestValiantRoughlyDoublesTraffic(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	direct := Compute(p, routing.ODR{}, Options{})
	valiant := ComputeValiant(p, CompleteExchange{}, routing.ODR{}, Options{})
	ratio := valiant.Total / direct.Total
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("Valiant total/direct total = %v, expected around 2 (placement pairs are farther-than-average)", ratio)
	}
}

func TestValiantSmoothsAdversarialPermutation(t *testing.T) {
	// The classical Valiant win: on the full torus, the transpose
	// permutation is adversarial for dimension-ordered routing (the
	// diagonal band funnels), while two-phase randomization spreads it.
	// Compare E_max normalized by total traffic (Valiant pays 2× volume
	// but should still win in load *imbalance* = max/mean).
	tr := torus.New(8, 2)
	p := build(t, placement.Full{}, tr)
	direct := ComputePattern(p, Transpose{}, routing.ODR{}, Options{})
	valiant := ComputeValiant(p, Transpose{}, routing.ODR{}, Options{})
	directImbalance := direct.Max / direct.Mean()
	valiantImbalance := valiant.Max / valiant.Mean()
	if valiantImbalance >= directImbalance {
		t.Errorf("Valiant imbalance %v should beat direct ODR %v on transpose",
			valiantImbalance, directImbalance)
	}
}

func TestValiantDeterministicAcrossWorkers(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := ComputeValiant(p, CompleteExchange{}, routing.UDR{}, Options{Workers: 1})
	b := ComputeValiant(p, CompleteExchange{}, routing.UDR{}, Options{Workers: 4})
	for e := range a.Loads {
		if math.Abs(a.Loads[e]-b.Loads[e]) > 1e-9 {
			t.Fatal("worker counts disagree")
		}
	}
}

func TestValiantHotSpotStillFunnels(t *testing.T) {
	// Valiant balances the middle of the network but cannot beat the
	// destination funnel: |P|−1 messages still converge on the hot node's
	// 2d in-links.
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := ComputeValiant(p, HotSpot{}, routing.UDR{}, Options{})
	floor := float64(p.Size()-1) / float64(2*tr.D())
	if res.Max < floor-1e-9 {
		t.Errorf("Valiant hotspot E_max %v below funnel floor %v", res.Max, floor)
	}
}
