package load

import (
	"context"
	"fmt"
	"math"

	"torusnet/internal/obs"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
)

// AnalyticMode selects how Compute uses the closed-form analytic engine.
type AnalyticMode int

const (
	// AnalyticOff (the zero value) never answers analytically. Unlike the
	// fast path, the analytic tier is opt-in: its results carry no per-edge
	// load vector, which changes what downstream consumers can read off
	// the Result, so callers must ask for it.
	AnalyticOff AnalyticMode = iota
	// AnalyticAuto answers from the Theorem 2 closed form when it is an
	// equality: single linear placements under ODR (any k), and under
	// ODR-multi for odd k where the unique shortest ring paths make
	// ODR-multi coincide with ODR. Everything else runs the computed
	// engines.
	AnalyticAuto
	// AnalyticForce additionally serves the Theorem 3–5 upper bounds for
	// multiple linear placements and UDR variants. Those Results have
	// Exact == false: Max is a bound on E_max, not its value.
	AnalyticForce
)

// String names the mode for diagnostics.
func (m AnalyticMode) String() string {
	switch m {
	case AnalyticOff:
		return "off"
	case AnalyticAuto:
		return "auto"
	case AnalyticForce:
		return "force"
	default:
		return fmt.Sprintf("AnalyticMode(%d)", int(m))
	}
}

// AnalyticEval is one closed-form answer from the Theorem 2–5 family.
type AnalyticEval struct {
	// EMax is the closed-form value: E_max itself when Exact, an upper
	// bound on it otherwise.
	EMax float64
	// Exact distinguishes the Theorem 2 equality cells from the
	// Theorem 3–5 bound cells.
	Exact bool
	// Theorem names the paper result the value comes from
	// ("theorem2" … "theorem5").
	Theorem string
}

// AnalyticEMax maps a recognized placement shape — t consecutive residue
// classes on T^d_k — and a routing algorithm name (routing.Algorithm.Name
// spelling) to the paper's closed forms:
//
//	t == 1, ODR                    E_max = ODRLinearMax(k, d)    (Theorem 2, exact)
//	t == 1, ODR-multi, k odd       E_max = ODRLinearMax(k, d)    (Theorem 2, exact: odd
//	                               rings have unique shortest paths, so ODR-multi ≡ ODR)
//	ODR / ODR-multi otherwise      E_max ≤ MultiODRUpperBound    (Theorem 3)
//	UDR / UDR-multi, t == 1        E_max ≤ UDRUpperBound         (Theorem 4)
//	UDR / UDR-multi, t > 1         E_max ≤ MultiUDRUpperBound    (Theorem 5)
//
// exactOnly restricts the map to the equality cells. The second return is
// false when no theorem applies (d < 2, t < 1, or an unknown algorithm);
// d ≥ 2 is required because the theorems' edge census needs at least two
// dimensions (see also the ODRLinearInteriorMax small-d guard).
func AnalyticEMax(k, d, t int, algName string, exactOnly bool) (AnalyticEval, bool) {
	if d < 2 || t < 1 || k < 2 {
		return AnalyticEval{}, false
	}
	switch algName {
	case "ODR":
		if t == 1 {
			return AnalyticEval{EMax: ODRLinearMax(k, d), Exact: true, Theorem: "theorem2"}, true
		}
	case "ODR-multi":
		if t == 1 && k%2 == 1 {
			return AnalyticEval{EMax: ODRLinearMax(k, d), Exact: true, Theorem: "theorem2"}, true
		}
	case "UDR", "UDR-multi":
		if exactOnly {
			return AnalyticEval{}, false
		}
		if t == 1 {
			return AnalyticEval{EMax: UDRUpperBound(k, d), Exact: false, Theorem: "theorem4"}, true
		}
		return AnalyticEval{EMax: MultiUDRUpperBound(k, d, t), Exact: false, Theorem: "theorem5"}, true
	default:
		return AnalyticEval{}, false
	}
	if exactOnly {
		return AnalyticEval{}, false
	}
	return AnalyticEval{EMax: MultiODRUpperBound(k, d, t), Exact: false, Theorem: "theorem3"}, true
}

// AnalyticAnswer fires the load.analytic.dispatch failpoint and then
// consults the theorem map directly. It is the service fast lane's entry:
// there the placement spec itself proves the shape (t residue classes), so
// no recognizer walk is needed. An injected fault answers not-applicable,
// sending the request down the computed path.
func AnalyticAnswer(k, d, t int, algName string, exactOnly bool) (AnalyticEval, bool) {
	if err := fpAnalyticDispatch.Inject(); err != nil {
		return AnalyticEval{}, false
	}
	return AnalyticEMax(k, d, t, algName, exactOnly)
}

// computeAnalytic answers from the closed forms when the mode, the
// recognizer, and the theorem map all agree; ok == false sends the caller
// down the computed path. The failpoint is soft by design: an injected
// fault makes recognition "fail", exercising exactly the fallback a
// recognizer bug would take.
func computeAnalytic(ctx context.Context, p *placement.Placement, alg routing.Algorithm, mode AnalyticMode) (*Result, bool) {
	if mode == AnalyticOff {
		return nil, false
	}
	if err := fpAnalyticDispatch.Inject(); err != nil {
		return nil, false
	}
	t := p.Torus()
	cls := p.LinearClass()
	if !cls.Recognized || !cls.Consecutive {
		return nil, false
	}
	ev, ok := AnalyticEMax(t.K(), t.D(), cls.T, alg.Name(), mode != AnalyticForce)
	if !ok {
		return nil, false
	}
	_, sp := obs.Start(ctx, "load.analytic")
	defer sp.End()
	sp.SetAttr("theorem", ev.Theorem)
	sp.SetAttrInt("classes", int64(cls.T))
	var res *Result
	withEngineLabel(ctx, EngineAnalytic, func() {
		res = &Result{
			Torus:     t,
			Placement: p,
			Algorithm: alg.Name(),
			Engine:    EngineAnalytic,
			Max:       ev.EMax,
			Exact:     ev.Exact,
			Theorem:   ev.Theorem,
		}
	})
	return res, true
}

// crossCheckAnalytic panics if an analytic answer disagrees with the
// computed engine: equality within tolerance for exact cells, and the
// bound direction (computed ≤ bound) for Theorem 3–5 cells. Only Max is
// comparable — analytic results carry no per-edge vector.
func crossCheckAnalytic(analytic, computed *Result) {
	scale := math.Max(1, math.Max(math.Abs(analytic.Max), math.Abs(computed.Max)))
	if analytic.Exact {
		if math.Abs(analytic.Max-computed.Max) > crossCheckTolerance*scale {
			panic(fmt.Sprintf(
				"load: analytic engine diverges from computed engine on %s with %s: E_max %g vs %g (%s)",
				analytic.Placement, analytic.Algorithm, analytic.Max, computed.Max, analytic.Theorem))
		}
		return
	}
	if computed.Max > analytic.Max+crossCheckTolerance*scale {
		panic(fmt.Sprintf(
			"load: analytic upper bound violated on %s with %s: bound %g < computed E_max %g (%s)",
			analytic.Placement, analytic.Algorithm, analytic.Max, computed.Max, analytic.Theorem))
	}
}
