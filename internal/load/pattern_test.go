package load

import (
	"math"
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func TestCompleteExchangePatternMatchesCompute(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}} {
		direct := Compute(p, alg, Options{})
		viaPattern := ComputePattern(p, CompleteExchange{}, alg, Options{})
		for e := range direct.Loads {
			if math.Abs(direct.Loads[e]-viaPattern.Loads[e]) > 1e-9 {
				t.Fatalf("%s: edge %d: %v vs %v", alg.Name(), e, direct.Loads[e], viaPattern.Loads[e])
			}
		}
	}
}

func TestPatternConservation(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	patterns := []Pattern{
		CompleteExchange{},
		Transpose{},
		Shift{Offset: []int{1, 5}}, // 1+5 ≡ 0: stays on the placement
		HotSpot{HotIndex: 0},
		RandomPairs{Count: 30, Seed: 4},
	}
	for _, pat := range patterns {
		want := PatternTotal(p, pat)
		for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}, routing.FAR{}} {
			res := ComputePattern(p, pat, alg, Options{})
			if math.Abs(res.Total-want) > 1e-6*math.Max(1, want) {
				t.Errorf("%s/%s: total %v, want %v", pat.Name(), alg.Name(), res.Total, want)
			}
		}
	}
}

func TestTransposeDemands(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Full{}, tr)
	demands := (Transpose{}).Demands(p)
	// Diagonal nodes (a, a) are their own partner: 4 of them drop out.
	if len(demands) != 12 {
		t.Fatalf("transpose demands %d, want 12", len(demands))
	}
	for _, dm := range demands {
		c := tr.Coords(dm.Src)
		want := tr.NodeAt([]int{c[1], c[0]})
		if dm.Dst != want {
			t.Fatalf("partner of %v is %v, want %v", c, tr.Coords(dm.Dst), tr.Coords(want))
		}
	}
}

func TestTransposeOnLinearPlacementStaysInside(t *testing.T) {
	// Coordinate reversal preserves the coordinate sum, so a linear
	// placement is closed under transpose: every processor (except fixed
	// points) finds its partner.
	tr := torus.New(5, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	demands := (Transpose{}).Demands(p)
	fixed := 0
	coords := make([]int, 3)
	for _, u := range p.Nodes() {
		tr.CoordsInto(u, coords)
		if coords[0] == coords[2] {
			fixed++
		}
	}
	if len(demands) != p.Size()-fixed {
		t.Errorf("demands %d, want %d (size %d minus %d fixed points)",
			len(demands), p.Size()-fixed, p.Size(), fixed)
	}
}

func TestShiftDemands(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	// Zero-sum offset keeps the shift inside the placement: all |P| pairs.
	in := (Shift{Offset: []int{2, 4}}).Demands(p)
	if len(in) != p.Size() {
		t.Errorf("zero-sum shift demands %d, want %d", len(in), p.Size())
	}
	// Offset with nonzero sum leaves the placement entirely: no demands.
	out := (Shift{Offset: []int{1, 0}}).Demands(p)
	if len(out) != 0 {
		t.Errorf("off-placement shift demands %d, want 0", len(out))
	}
}

func TestShiftPanicsOnWrongArity(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	(Shift{Offset: []int{1}}).Demands(p)
}

func TestHotSpotRespectsBlaumStyleFloor(t *testing.T) {
	// |P|−1 messages into one node through at most 2d in-edges.
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := ComputePattern(p, HotSpot{}, routing.UDR{}, Options{})
	floor := float64(p.Size()-1) / float64(2*tr.D())
	if res.Max < floor-1e-9 {
		t.Errorf("hotspot E_max %v below funnel floor %v", res.Max, floor)
	}
	if len((HotSpot{}).Demands(p)) != p.Size()-1 {
		t.Error("hotspot demand count wrong")
	}
}

func TestRandomPairsDeterministic(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := (RandomPairs{Count: 20, Seed: 9}).Demands(p)
	b := (RandomPairs{Count: 20, Seed: 9}).Demands(p)
	if len(a) != 20 || len(b) != 20 {
		t.Fatal("wrong count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give same demands")
		}
	}
}

func TestPatternLoadsLighterThanExchange(t *testing.T) {
	// Transpose and shift are permutation-sized patterns; their E_max must
	// be far below the complete exchange's on the same placement.
	tr := torus.New(8, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	ce := ComputePattern(p, CompleteExchange{}, routing.UDR{}, Options{})
	trn := ComputePattern(p, Transpose{}, routing.UDR{}, Options{})
	if trn.Max >= ce.Max {
		t.Errorf("transpose E_max %v not below exchange %v", trn.Max, ce.Max)
	}
}

func TestPatternDeterministicAcrossWorkers(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := ComputePattern(p, HotSpot{}, routing.UDR{}, Options{Workers: 1})
	b := ComputePattern(p, HotSpot{}, routing.UDR{}, Options{Workers: 4})
	for e := range a.Loads {
		if math.Abs(a.Loads[e]-b.Loads[e]) > 1e-9 {
			t.Fatal("worker counts disagree")
		}
	}
}

func TestPatternNames(t *testing.T) {
	if (CompleteExchange{}).Name() != "complete-exchange" ||
		(Transpose{}).Name() != "transpose" ||
		(HotSpot{HotIndex: 2}).Name() != "hotspot(2)" ||
		(RandomPairs{Count: 5}).Name() != "random-pairs(5)" {
		t.Error("pattern names wrong")
	}
}
