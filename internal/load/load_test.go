package load

import (
	"math"
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func build(t *testing.T, spec placement.Spec, tr *torus.Torus) *placement.Placement {
	t.Helper()
	p, err := spec.Build(tr)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name(), err)
	}
	return p
}

var algs = []routing.Algorithm{routing.ODR{}, routing.ODRMulti{}, routing.UDR{}, routing.UDRMulti{}, routing.FAR{}}

func TestLoadConservation(t *testing.T) {
	// Σ_l E(l) must equal Σ_{p≠q} Lee(p,q) for every algorithm: each
	// message occupies exactly Lee(p,q) edges in expectation.
	cases := []struct {
		k, d int
		spec placement.Spec
	}{
		{4, 2, placement.Linear{C: 0}},
		{5, 2, placement.Linear{C: 1}},
		{6, 2, placement.MultipleLinear{T: 2}},
		{4, 3, placement.Linear{C: 0}},
		{5, 3, placement.Linear{C: 2}},
		{3, 2, placement.Full{}},
		{4, 2, placement.Random{Count: 7, Seed: 3}},
	}
	for _, c := range cases {
		tr := torus.New(c.k, c.d)
		p := build(t, c.spec, tr)
		want := ExpectedTotal(p)
		for _, alg := range algs {
			res := Compute(p, alg, Options{})
			if math.Abs(res.Total-want) > 1e-6*math.Max(1, want) {
				t.Errorf("%s / %s on %s: Total=%v, want %v", c.spec.Name(), alg.Name(), tr, res.Total, want)
			}
		}
	}
}

func TestComputeDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := torus.New(5, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	base := Compute(p, routing.UDR{}, Options{Workers: 1})
	for _, w := range []int{2, 3, 8} {
		res := Compute(p, routing.UDR{}, Options{Workers: w})
		for e := range base.Loads {
			if math.Abs(res.Loads[e]-base.Loads[e]) > 1e-9 {
				t.Fatalf("workers=%d: edge %d load %v vs %v", w, e, res.Loads[e], base.Loads[e])
			}
		}
	}
}

func TestODRLoadsAreIntegers(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := Compute(p, routing.ODR{}, Options{})
	for e, v := range res.Loads {
		if math.Abs(v-math.Round(v)) > 1e-9 {
			t.Fatalf("ODR load on edge %d is %v, not an integer", e, v)
		}
	}
	exact, err := ComputeExact(p, routing.ODR{})
	if err != nil {
		t.Fatal(err)
	}
	if !exact.AllIntegral() {
		t.Error("exact ODR loads should be integral")
	}
}

func TestExactMatchesFloat(t *testing.T) {
	tr := torus.New(4, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	for _, alg := range algs {
		res := Compute(p, alg, Options{})
		exact, err := ComputeExact(p, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		for e := range res.Loads {
			ef, _ := exact.Loads[e].Float64()
			if math.Abs(res.Loads[e]-ef) > 1e-6 {
				t.Fatalf("%s: edge %d float %v vs exact %v", alg.Name(), e, res.Loads[e], ef)
			}
		}
		if math.Abs(res.Max-exact.MaxFloat()) > 1e-6 {
			t.Fatalf("%s: max %v vs exact %v", alg.Name(), res.Max, exact.MaxFloat())
		}
	}
}

func TestODRGlobalMaxFormula(t *testing.T) {
	// Measured global E_max for linear + restricted ODR follows the
	// funneling closed form k^{d-1}/2 (even) / (k^{d-1}−k^{d-2})/2 (odd),
	// attained on first/last-dimension edges.
	cases := []struct{ k, d int }{
		{4, 2}, {6, 2}, {5, 2},
		{4, 3}, {6, 3}, {8, 3}, {5, 3}, {7, 3}, {9, 3},
		{4, 4}, {6, 4}, {5, 4}, {3, 5},
	}
	for _, c := range cases {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		res := Compute(p, routing.ODR{}, Options{})
		want := ODRLinearMax(c.k, c.d)
		if math.Abs(res.Max-want) > 1e-6 {
			t.Errorf("T^%d_%d: measured E_max=%v, funneling formula=%v", c.d, c.k, res.Max, want)
		}
	}
}

func TestPaperFormulaHoldsOnInteriorDimensions(t *testing.T) {
	// §6.1's expression k^{d-1}/8 + k^{d-2}/4 (k even) resp.
	// k^{d-1}/8 − k^{d-3}/8 (k odd) is exactly the maximum load over edges
	// of *interior* correction dimensions 2..d−1, which is where the
	// paper's census applies. This is the E6 paper-vs-measured row.
	cases := []struct{ k, d int }{
		{4, 3}, {6, 3}, {8, 3}, {5, 3}, {7, 3}, {9, 3},
		{4, 4}, {6, 4}, {5, 4}, {3, 5},
	}
	for _, c := range cases {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		res := Compute(p, routing.ODR{}, Options{})
		perDim := res.PerDimensionMax()
		interior := 0.0
		for j := 1; j <= c.d-2; j++ {
			interior = math.Max(interior, perDim[j])
		}
		want, err := ODRLinearInteriorMax(c.k, c.d)
		if err != nil {
			t.Fatalf("T^%d_%d: %v", c.d, c.k, err)
		}
		if math.Abs(interior-want) > 1e-6 {
			t.Errorf("T^%d_%d: interior-dim max=%v, §6.1 formula=%v (per-dim %v)",
				c.d, c.k, interior, want, perDim)
		}
	}
}

func TestTheorem2LinearInPlacementSize(t *testing.T) {
	// Theorem 2's substance: E_max / |P| stays bounded by a constant as k
	// grows (measured constant is 1/2 from funneling, not the paper's 1/8).
	for _, k := range []int{4, 6, 8, 10, 12} {
		tr := torus.New(k, 3)
		p := build(t, placement.Linear{C: 0}, tr)
		res := Compute(p, routing.ODR{}, Options{})
		ratio := res.Max / float64(p.Size())
		if ratio > 0.5+1e-9 {
			t.Errorf("k=%d: E_max/|P| = %v, exceeds the funneling constant 1/2", k, ratio)
		}
	}
}

func TestSinglePathFunnelingLowerBound(t *testing.T) {
	// Under any routing with a fixed final correction dimension, every
	// source that differs from a destination q in that dimension delivers
	// through one of q's 2 final-dimension in-edges. A linear placement has
	// |P| − k^{d-2} such sources per destination, so E_max ≥ (|P|−k^{d-2})/2.
	for _, c := range []struct{ k, d int }{{4, 2}, {5, 3}, {4, 3}, {6, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		res := Compute(p, routing.ODR{}, Options{})
		floor := (float64(p.Size()) - math.Pow(float64(c.k), float64(c.d-2))) / 2
		if res.Max < floor-1e-9 {
			t.Errorf("T^%d_%d: E_max=%v below the funneling floor %v", c.d, c.k, res.Max, floor)
		}
	}
}

func TestTheorem3MultiLinearODRBound(t *testing.T) {
	for _, tt := range []int{1, 2, 3} {
		for _, k := range []int{4, 5, 6} {
			tr := torus.New(k, 3)
			p := build(t, placement.MultipleLinear{T: tt}, tr)
			res := Compute(p, routing.ODR{}, Options{})
			if bound := MultiODRUpperBound(k, 3, tt); res.Max > bound {
				t.Errorf("k=%d t=%d: E_max=%v exceeds Theorem 3 bound %v", k, tt, res.Max, bound)
			}
		}
	}
}

func TestTheorem4UDRBound(t *testing.T) {
	for _, c := range []struct{ k, d int }{{4, 2}, {6, 2}, {4, 3}, {5, 3}, {6, 3}, {4, 4}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		res := Compute(p, routing.UDR{}, Options{})
		if bound := UDRUpperBound(c.k, c.d); res.Max >= bound {
			t.Errorf("T^%d_%d: UDR E_max=%v not below Theorem 4 bound %v", c.d, c.k, res.Max, bound)
		}
	}
}

func TestTheorem5MultiUDRBound(t *testing.T) {
	for _, tt := range []int{2, 3} {
		tr := torus.New(5, 3)
		p := build(t, placement.MultipleLinear{T: tt}, tr)
		res := Compute(p, routing.UDR{}, Options{})
		if bound := MultiUDRUpperBound(5, 3, tt); res.Max >= bound {
			t.Errorf("t=%d: UDR E_max=%v not below Theorem 5 bound %v", tt, res.Max, bound)
		}
	}
}

func TestFullTorusSuperlinear(t *testing.T) {
	// §1: the fully populated torus has an edge with load > k^{d+1}/8
	// (k even). ODR is classical dimension-ordered routing here.
	for _, c := range []struct{ k, d int }{{4, 2}, {6, 2}, {4, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Full{}, tr)
		res := Compute(p, routing.ODR{}, Options{})
		if bound := FullTorusLowerBound(c.k, c.d); res.Max <= bound {
			t.Errorf("T^%d_%d full: E_max=%v, want > %v", c.d, c.k, res.Max, bound)
		}
	}
}

func TestUDRSpreadsLoad(t *testing.T) {
	// UDR's E_max should never exceed ODR's on the same linear placement
	// (more paths can only smooth the expectation), and should be strictly
	// smaller somewhere for d >= 2 tori of odd k.
	tr := torus.New(5, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	odr := Compute(p, routing.ODR{}, Options{})
	udr := Compute(p, routing.UDR{}, Options{})
	if udr.Max > odr.Max+1e-9 {
		t.Errorf("UDR E_max %v exceeds ODR E_max %v", udr.Max, odr.Max)
	}
}

func TestMonteCarloConvergesToExpectation(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	exact := Compute(p, routing.UDR{}, Options{})
	mc := MonteCarlo(p, routing.UDR{}, 4000, 7, Options{})
	for e := range exact.Loads {
		if math.Abs(mc.MeanLoads[e]-exact.Loads[e]) > 0.15 {
			t.Fatalf("edge %d: Monte-Carlo %v vs exact %v", e, mc.MeanLoads[e], exact.Loads[e])
		}
	}
	if mc.MaxPeak < exact.Max {
		t.Errorf("peak %v below expected max %v (peak must dominate mean)", mc.MaxPeak, exact.Max)
	}
}

func TestMonteCarloDeterministic(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := MonteCarlo(p, routing.UDR{}, 50, 42, Options{Workers: 1})
	b := MonteCarlo(p, routing.UDR{}, 50, 42, Options{Workers: 4})
	for e := range a.MeanLoads {
		if a.MeanLoads[e] != b.MeanLoads[e] {
			t.Fatalf("edge %d: %v vs %v across worker counts", e, a.MeanLoads[e], b.MeanLoads[e])
		}
	}
}

func TestMonteCarloODRIsExact(t *testing.T) {
	// ODR has one path, so a single Monte-Carlo round reproduces the exact
	// loads with zero variance.
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	exact := Compute(p, routing.ODR{}, Options{})
	mc := MonteCarlo(p, routing.ODR{}, 1, 9, Options{})
	for e := range exact.Loads {
		if mc.MeanLoads[e] != exact.Loads[e] {
			t.Fatalf("edge %d: %v vs %v", e, mc.MeanLoads[e], exact.Loads[e])
		}
	}
}

func TestResultHelpers(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := Compute(p, routing.ODR{}, Options{})
	if res.Mean() <= 0 || res.Mean() > res.Max {
		t.Errorf("Mean() = %v out of range (max %v)", res.Mean(), res.Max)
	}
	if res.MeanNonzero() < res.Mean() {
		t.Errorf("MeanNonzero %v < Mean %v", res.MeanNonzero(), res.Mean())
	}
	if nz := res.NonzeroEdges(); nz <= 0 || nz > len(res.Loads) {
		t.Errorf("NonzeroEdges = %d", nz)
	}
	dims := res.PerDimensionMax()
	if len(dims) != 2 {
		t.Fatalf("PerDimensionMax arity %d", len(dims))
	}
	overall := math.Max(dims[0], dims[1])
	if math.Abs(overall-res.Max) > 1e-9 {
		t.Errorf("per-dimension max %v does not attain overall %v", overall, res.Max)
	}
	if res.String() == "" {
		t.Error("String() empty")
	}
}

func TestTranslationInvarianceOfLoads(t *testing.T) {
	// Translating by a zero-sum offset is an automorphism fixing a linear
	// placement, so the load function must be invariant under it.
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	offset := []int{1, 4} // 1+4 = 5 ≡ 0
	if !p.StabilizedBy(offset) {
		t.Fatal("offset should stabilize the placement")
	}
	for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}} {
		res := Compute(p, alg, Options{})
		tr.ForEachEdge(func(e torus.Edge) {
			te := tr.TranslateEdge(e, offset)
			if math.Abs(res.Loads[e]-res.Loads[te]) > 1e-9 {
				t.Fatalf("%s: load not translation invariant: %v vs %v on %s / %s",
					alg.Name(), res.Loads[e], res.Loads[te], tr.EdgeString(e), tr.EdgeString(te))
			}
		})
	}
}

func TestAnalyticHelpers(t *testing.T) {
	if got, err := ODRLinearInteriorMax(8, 3); err != nil || got != 8+2 {
		t.Errorf("ODRLinearInteriorMax(8,3) = %v, %v, want 10", got, err)
	}
	if got, err := ODRLinearInteriorMax(5, 3); err != nil || got != 3 {
		t.Errorf("ODRLinearInteriorMax(5,3) = %v, %v, want 3", got, err)
	}
	if got := ODRLinearMax(8, 3); got != 32 {
		t.Errorf("ODRLinearMax(8,3) = %v, want 32", got)
	}
	if got := ODRLinearMax(5, 3); got != 10 {
		t.Errorf("ODRLinearMax(5,3) = %v, want 10", got)
	}
	if got := ODRRingPairChoices(8); got != 10 {
		t.Errorf("ODRRingPairChoices(8) = %v, want 10", got)
	}
	if got := ODRRingPairChoices(5); got != 3 {
		t.Errorf("ODRRingPairChoices(5) = %v, want 3", got)
	}
	if got := FullTorusLowerBound(4, 2); got != 8 {
		t.Errorf("FullTorusLowerBound(4,2) = %v, want 8", got)
	}
	if got := MultiODRUpperBound(4, 3, 2); got != 64 {
		t.Errorf("MultiODRUpperBound = %v, want 64", got)
	}
	if got := UDRUpperBound(4, 3); got != 64 {
		t.Errorf("UDRUpperBound = %v, want 64", got)
	}
	if got := MultiUDRUpperBound(4, 3, 3); got != 9*64 {
		t.Errorf("MultiUDRUpperBound = %v, want 576", got)
	}
}

func TestExpectedTotalSmall(t *testing.T) {
	tr := torus.New(3, 2)
	p := build(t, placement.Explicit{Label: "pair", Coords: [][]int{{0, 0}, {1, 1}}}, tr)
	// Two processors at Lee distance 2: total = 2 + 2.
	if got := ExpectedTotal(p); got != 4 {
		t.Errorf("ExpectedTotal = %v, want 4", got)
	}
}

func TestFARConcentratesMoreThanUDROnD2(t *testing.T) {
	// Extension finding (E15): uniform sampling over ALL minimal paths is
	// not uniformly better than UDR. On d=2 linear placements the
	// multinomial path distribution peaks mid-box and FAR's E_max exceeds
	// UDR's, even though FAR has far more paths per pair.
	for _, k := range []int{6, 8} {
		tr := torus.New(k, 2)
		p := build(t, placement.Linear{C: 0}, tr)
		udr := Compute(p, routing.UDR{}, Options{})
		far := Compute(p, routing.FAR{}, Options{})
		if far.Max <= udr.Max {
			t.Errorf("k=%d: expected FAR E_max (%v) above UDR (%v) from multinomial concentration",
				k, far.Max, udr.Max)
		}
	}
}

func TestDimensionOrderedFamilyMonotone(t *testing.T) {
	// Within the dimension-ordered family, enlarging the path set never
	// increases E_max: ODR ≥ ODR-multi ≥ ... and ODR ≥ UDR ≥ UDR-multi.
	for _, c := range []struct{ k, d int }{{4, 2}, {6, 2}, {4, 3}, {6, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		odr := Compute(p, routing.ODR{}, Options{}).Max
		odrM := Compute(p, routing.ODRMulti{}, Options{}).Max
		udr := Compute(p, routing.UDR{}, Options{}).Max
		udrM := Compute(p, routing.UDRMulti{}, Options{}).Max
		if odrM > odr+1e-9 || udr > odr+1e-9 || udrM > udr+1e-9 {
			t.Errorf("T^%d_%d: monotonicity broken: ODR=%v ODRm=%v UDR=%v UDRm=%v",
				c.d, c.k, odr, odrM, udr, udrM)
		}
	}
}

func TestUDRLoadInvariantUnderDimensionPermutation(t *testing.T) {
	// The linear placement Σp ≡ 0 and the UDR/FAR path sets are symmetric
	// in the dimensions (odd k avoids tie-breaking asymmetry), so edge
	// loads must be invariant under dimension-permuting automorphisms.
	// ODR is excluded by design: its fixed correction order breaks the
	// symmetry (first/last dimensions funnel — the E6 finding).
	tr := torus.New(5, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	aut, err := tr.NewAutomorphism([]int{2, 0, 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The automorphism must stabilize the placement (sum of coords is
	// permutation invariant).
	for _, u := range p.Nodes() {
		if !p.Contains(aut.Node(u)) {
			t.Fatal("automorphism does not stabilize the placement")
		}
	}
	for _, alg := range []routing.Algorithm{routing.UDR{}, routing.FAR{}} {
		res := Compute(p, alg, Options{})
		tr.ForEachEdge(func(e torus.Edge) {
			img := aut.Edge(e)
			if math.Abs(res.Loads[e]-res.Loads[img]) > 1e-9 {
				t.Fatalf("%s: load differs across automorphism: %v vs %v",
					alg.Name(), res.Loads[e], res.Loads[img])
			}
		})
	}
}

func TestODRLoadBreaksDimensionSymmetry(t *testing.T) {
	// Counterpart to the invariance test: ODR's fixed order makes the
	// first/last dimensions hotter, so its load is NOT permutation
	// invariant — this asymmetry is exactly the funneling of E6.
	tr := torus.New(5, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	res := Compute(p, routing.ODR{}, Options{})
	perDim := res.PerDimensionMax()
	if perDim[0] == perDim[1] && perDim[1] == perDim[2] {
		t.Errorf("ODR per-dimension maxima unexpectedly symmetric: %v", perDim)
	}
}

func TestTopEdges(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := Compute(p, routing.ODR{}, Options{})
	top := res.TopEdges(5)
	if len(top) != 5 {
		t.Fatalf("got %d edges", len(top))
	}
	if top[0].Load != res.Max {
		t.Errorf("top edge load %v, want max %v", top[0].Load, res.Max)
	}
	for i := 1; i < len(top); i++ {
		if top[i].Load > top[i-1].Load {
			t.Fatal("TopEdges not sorted")
		}
	}
	all := res.TopEdges(1 << 20)
	if len(all) != len(res.Loads) {
		t.Errorf("oversized n should return all edges")
	}
}

func TestLoadAtDistance(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := Compute(p, routing.ODR{}, Options{})
	prof := res.LoadAtDistance(p.Nodes()[0])
	if len(prof) != 5 { // max Lee distance on T^2_5 is 4
		t.Fatalf("profile length %d", len(prof))
	}
	total := 0.0
	for _, v := range prof {
		total += v
		if v < 0 {
			t.Fatal("negative mean load")
		}
	}
	if total <= 0 {
		t.Error("profile should carry load")
	}
}

func TestODROrderPermutesLoadProfile(t *testing.T) {
	// Reversing the correction order must exactly transpose the load
	// picture: the load of edge e under order (0,1,2) equals the load of
	// the dimension-permuted edge under order (2,1,0), via the coordinate
	// permutation automorphism that also fixes the linear placement.
	tr := torus.New(5, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	fwd := Compute(p, routing.ODROrder{Order: []int{0, 1, 2}}, Options{})
	rev := Compute(p, routing.ODROrder{Order: []int{2, 1, 0}}, Options{})
	aut, err := tr.NewAutomorphism([]int{2, 1, 0}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.ForEachEdge(func(e torus.Edge) {
		if math.Abs(fwd.Loads[e]-rev.Loads[aut.Edge(e)]) > 1e-9 {
			t.Fatalf("profiles are not permutation images: %v vs %v",
				fwd.Loads[e], rev.Loads[aut.Edge(e)])
		}
	})
	// And the funneling max follows the last-corrected dimension.
	fwdDims := fwd.PerDimensionMax()
	revDims := rev.PerDimensionMax()
	if fwdDims[2] != revDims[0] || fwdDims[0] != revDims[2] {
		t.Errorf("per-dim maxima not swapped: %v vs %v", fwdDims, revDims)
	}
}

func TestLargeScaleFormulasHold(t *testing.T) {
	// Scale check (skipped with -short): T^3_16 has |P| = 256 processors
	// and 65,280 ordered pairs; the funneling and §6.1 closed forms must
	// hold there exactly, and the parallel engine must agree with the
	// serial one bit-for-bit on integer ODR loads.
	if testing.Short() {
		t.Skip("scale test")
	}
	tr := torus.New(16, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	par := Compute(p, routing.ODR{}, Options{})
	if want := ODRLinearMax(16, 3); par.Max != want {
		t.Errorf("E_max %v, funneling form %v", par.Max, want)
	}
	perDim := par.PerDimensionMax()
	if want, err := ODRLinearInteriorMax(16, 3); err != nil || perDim[1] != want {
		t.Errorf("interior max %v, §6.1 form %v (%v)", perDim[1], want, err)
	}
	ser := Compute(p, routing.ODR{}, Options{Workers: 1})
	for e := range par.Loads {
		if par.Loads[e] != ser.Loads[e] {
			t.Fatalf("parallel/serial divergence at edge %d", e)
		}
	}
	if want := ExpectedTotal(p); math.Abs(par.Total-want) > 1e-6 {
		t.Errorf("conservation at scale: %v vs %v", par.Total, want)
	}
}
