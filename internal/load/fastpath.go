package load

import (
	"context"
	"fmt"
	"math"
	"sync"

	"torusnet/internal/obs"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// The translation-symmetry fast path (Theorem 2's mechanism, generalized).
//
// When the placement is closed under a translation subgroup G and the
// routing algorithm is translation-equivariant, the per-edge load pattern
// contributed by source p ⊕ t is exactly the pattern of source p with every
// edge index translated by t. So instead of walking routes for all
// |P|·(|P|−1) ordered pairs, the engine
//
//  1. partitions the sources into G-orbits,
//  2. walks routes for ONE canonical source per orbit against all
//     destinations (O(|P|/|G| · |P| · d · k) routing work), and
//  3. replicates each orbit's base pattern to its other members by
//     translating edge indices through a precomputed node-translation
//     table (O(|P|·|E|) index arithmetic, no routing).
//
// For a linear placement |G| = k^{d−1} = |P|, so step 2 collapses to a
// single source: a ~k^{d−1}× reduction in routing walks.

// nnzEntry is one nonzero of an orbit's base load vector with the edge
// index pre-split into source node and (dimension, direction) slot, so the
// scatter loop translates with one table lookup and no division.
type nnzEntry struct {
	u    int32 // edge source node
	slot int32 // edge index mod 2d: dimension and direction
	w    float64
}

// scatterJob replicates one orbit's base pattern to one source.
type scatterJob struct {
	orbit  int   // index into bases
	offset []int // stabilizer offset with src = rep ⊕ offset
}

// computeSymmetry runs the fast path, reporting ok=false when it does not
// apply: non-equivariant algorithm, fewer than two processors, or (unless
// force) a trivial stabilizer that would make it a slower generic engine.
func computeSymmetry(ctx context.Context, p *placement.Placement, alg routing.Algorithm, workers int, force bool) (*Result, bool) {
	if !routing.IsTranslationEquivariant(alg) {
		return nil, false
	}
	t := p.Torus()
	procs := p.Nodes()
	if len(procs) < 2 {
		return nil, false
	}
	stab := p.TranslationStabilizer()
	if len(stab) == 1 && !force {
		return nil, false
	}

	// Orbit partition. Translations act freely on nodes, so each orbit has
	// exactly |stab| distinct members, all inside P by closure; iterating
	// processors in index order and stabilizers in their fixed order makes
	// reps and jobs deterministic.
	seen := make([]bool, t.Nodes())
	reps := make([]torus.Node, 0, len(procs)/len(stab)+1)
	jobs := make([]scatterJob, 0, len(procs))
	for _, src := range procs {
		if seen[src] {
			continue
		}
		orbit := len(reps)
		reps = append(reps, src)
		for _, off := range stab {
			img := t.Translate(src, off)
			seen[img] = true
			jobs = append(jobs, scatterJob{orbit: orbit, offset: off})
		}
	}

	// Base vectors: one canonical source per orbit against every
	// destination, serial with a fixed destination order so the summation
	// order never depends on the worker count.
	ia, hasInto := alg.(routing.InplaceAccumulator)
	bases := make([][]nnzEntry, len(reps))
	func() {
		_, bsp := obs.Start(ctx, "load.bases")
		defer bsp.End()
		bsp.SetAttrInt("orbits", int64(len(reps)))
		bsp.SetAttrInt("stabilizer", int64(len(stab)))
		withEngineLabel(ctx, EngineSymmetry, func() {
			var sc *routing.PairScratch
			if hasInto {
				sc = routing.NewPairScratch(t)
			}
			baseBuf := make([]float64, t.Edges())
			addBase := func(e torus.Edge, weight float64) { baseBuf[e] += weight }
			for oi, rep := range reps {
				for i := range baseBuf {
					baseBuf[i] = 0
				}
				for _, dst := range procs {
					if dst == rep {
						continue
					}
					if hasInto {
						ia.AccumulatePairInto(t, rep, dst, baseBuf, sc)
					} else {
						alg.AccumulatePair(t, rep, dst, addBase)
					}
				}
				nnz := make([]nnzEntry, 0, len(procs)*t.D()*t.K()/2)
				td2 := 2 * t.D()
				for e, w := range baseBuf {
					if w != 0 {
						nnz = append(nnz, nnzEntry{u: int32(e / td2), slot: int32(e % td2), w: w})
					}
				}
				bases[oi] = nnz
			}
		})
	}()

	// Replication: every job translates its orbit's nonzeros through a
	// per-worker node-translation table. Same striped partition + worker-
	// order merge as the generic engine, so determinism semantics match.
	if workers > len(jobs) {
		workers = maxInt(1, len(jobs))
	}
	td2 := 2 * t.D()
	partials := make([][]float64, workers)
	func() {
		_, ssp := obs.Start(ctx, "load.scatter")
		defer ssp.End()
		ssp.SetAttrInt("jobs", int64(len(jobs)))
		withEngineLabel(ctx, EngineSymmetry, func() {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					local := make([]float64, t.Edges())
					table := make([]torus.Node, t.Nodes())
					for ji := w; ji < len(jobs); ji += workers {
						job := jobs[ji]
						t.TranslationTableInto(job.offset, table)
						for _, ent := range bases[job.orbit] {
							local[int(table[ent.u])*td2+int(ent.slot)] += ent.w
						}
					}
					partials[w] = local
				}(w)
			}
			wg.Wait()
		})
	}()

	loads := make([]float64, t.Edges())
	func() {
		_, msp := obs.Start(ctx, "load.merge")
		defer msp.End()
		for _, local := range partials {
			for e, v := range local {
				loads[e] += v
			}
		}
	}()
	res := newResult(t, p, alg.Name(), loads)
	res.Engine = EngineSymmetry
	return res, true
}

// crossCheckTolerance bounds the relative divergence the two engines may
// accumulate from their different floating-point summation orders.
const crossCheckTolerance = 1e-9

// crossCheck panics if the fast-path result diverges from the generic
// reference beyond summation-order tolerance. A failure means a soundness
// bug (a placement or algorithm wrongly admitted to the fast path), which
// must never be papered over.
func crossCheck(fast, generic *Result) {
	for e := range fast.Loads {
		a, b := fast.Loads[e], generic.Loads[e]
		scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
		if math.Abs(a-b) > crossCheckTolerance*scale {
			panic(fmt.Sprintf(
				"load: symmetry fast path diverges from generic engine on %s with %s: edge %d has %g vs %g",
				fast.Placement, fast.Algorithm, e, a, b))
		}
	}
}

// MaxEngineDivergence computes the maximum absolute per-edge difference
// between two results on the same torus — the cross-check statistic the E31
// experiment reports. It panics if the edge sets differ in size.
func MaxEngineDivergence(a, b *Result) float64 {
	if len(a.Loads) != len(b.Loads) {
		panic(fmt.Sprintf("load: comparing results with %d and %d edges", len(a.Loads), len(b.Loads)))
	}
	worst := 0.0
	for e := range a.Loads {
		if d := math.Abs(a.Loads[e] - b.Loads[e]); d > worst {
			worst = d
		}
	}
	return worst
}
