package load

import (
	"fmt"
	"math"
	"math/big"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// ExactResult holds per-edge loads as exact rationals. Loads under any
// algorithm of the routing package are rational: the per-pair edge
// probabilities are |C_{p→l→q}| / |C_{p→q}| with integer numerator and
// denominator.
type ExactResult struct {
	Torus *torus.Torus
	Loads []*big.Rat
	Max   *big.Rat
}

// ComputeExact evaluates the load with exact rational arithmetic. It runs
// serially and is intended for the moderate tori used to verify the closed
// forms of §6.1 bit-for-bit; use Compute for large sweeps.
//
// For every pair, per-edge float weights from AccumulatePair are scaled by
// |C_{p→q}|; the scaled values must be integers (they are path counts), and
// any deviation beyond rounding noise is reported as an error since it
// would indicate a broken accumulator.
func ComputeExact(p *placement.Placement, alg routing.Algorithm) (*ExactResult, error) {
	t := p.Torus()
	loads := make([]*big.Rat, t.Edges())
	for i := range loads {
		loads[i] = new(big.Rat)
	}
	procs := p.Nodes()
	pairWeights := make(map[torus.Edge]float64)
	for _, src := range procs {
		for _, dst := range procs {
			if dst == src {
				continue
			}
			count := alg.PathCount(t, src, dst)
			if count <= 0 || count != math.Trunc(count) {
				return nil, fmt.Errorf("load: path count %v for pair %v->%v is not a positive integer",
					count, t.Coords(src), t.Coords(dst))
			}
			for e := range pairWeights {
				delete(pairWeights, e)
			}
			alg.AccumulatePair(t, src, dst, func(e torus.Edge, w float64) {
				pairWeights[e] += w
			})
			denom := new(big.Int).SetInt64(int64(count))
			for e, w := range pairWeights {
				scaled := w * count
				numer := math.Round(scaled)
				if math.Abs(scaled-numer) > 1e-6 {
					return nil, fmt.Errorf("load: scaled weight %v on edge %d for pair %v->%v is not integral",
						scaled, e, t.Coords(src), t.Coords(dst))
				}
				frac := new(big.Rat).SetFrac(new(big.Int).SetInt64(int64(numer)), denom)
				loads[e].Add(loads[e], frac)
			}
		}
	}
	res := &ExactResult{Torus: t, Loads: loads, Max: new(big.Rat)}
	for _, v := range loads {
		if v.Cmp(res.Max) > 0 {
			res.Max.Set(v)
		}
	}
	return res, nil
}

// MaxFloat returns E_max as a float64.
func (r *ExactResult) MaxFloat() float64 {
	f, _ := r.Max.Float64()
	return f
}

// AllIntegral reports whether every edge load is an integer — true for any
// single-path algorithm such as restricted ODR.
func (r *ExactResult) AllIntegral() bool {
	for _, v := range r.Loads {
		if !v.IsInt() {
			return false
		}
	}
	return true
}
