package cover

import (
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

func build(t *testing.T, spec placement.Spec, tr *torus.Torus) *placement.Placement {
	t.Helper()
	p, err := spec.Build(tr)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name(), err)
	}
	return p
}

func TestDistanceToPlacementMatchesPerNodeBFS(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Random{Count: 4, Seed: 3}, tr)
	dist := DistanceToPlacement(p)
	tr.ForEachNode(func(u torus.Node) {
		best := -1
		for _, v := range p.Nodes() {
			d := tr.LeeDistance(u, v)
			if best < 0 || d < best {
				best = d
			}
		}
		if dist[u] != best {
			t.Fatalf("node %d: multi-source %d, exhaustive %d", u, dist[u], best)
		}
	})
}

func TestLinearCoveringRadiusClosedForm(t *testing.T) {
	// Linear placements: covering radius is exactly ⌊k/2⌋ (residue walk).
	for _, c := range []struct{ k, d int }{{4, 2}, {5, 2}, {6, 2}, {7, 2}, {4, 3}, {5, 3}, {6, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		if got, want := CoveringRadius(p), LinearCoveringRadius(c.k); got != want {
			t.Errorf("T^%d_%d: covering radius %d, closed form %d", c.d, c.k, got, want)
		}
	}
}

func TestLinearPackingDistanceIsTwo(t *testing.T) {
	// Two processors with equal residue sums differ in at least two
	// coordinate steps, and distance exactly 2 is realized (±1 in two
	// dimensions), for every k ≥ 3, d ≥ 2.
	for _, c := range []struct{ k, d int }{{3, 2}, {5, 2}, {4, 3}, {5, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		if got := PackingDistance(p); got != 2 {
			t.Errorf("T^%d_%d: packing distance %d, want 2", c.d, c.k, got)
		}
	}
}

func TestMultipleLinearPackingDistanceIsOne(t *testing.T) {
	// Adjacent residue classes contain adjacent nodes.
	tr := torus.New(5, 2)
	p := build(t, placement.MultipleLinear{T: 2}, tr)
	if got := PackingDistance(p); got != 1 {
		t.Errorf("packing distance %d, want 1", got)
	}
}

func TestCoveringRadiusFullAndEmpty(t *testing.T) {
	tr := torus.New(4, 2)
	full := build(t, placement.Full{}, tr)
	if got := CoveringRadius(full); got != 0 {
		t.Errorf("full placement covering radius %d, want 0", got)
	}
	empty := placement.New(tr, nil, "empty")
	if got := CoveringRadius(empty); got != -1 {
		t.Errorf("empty placement covering radius %d, want -1", got)
	}
	if got := PackingDistance(empty); got != -1 {
		t.Errorf("empty placement packing %d, want -1", got)
	}
}

func TestPerfectCoverOnRing(t *testing.T) {
	// On a ring of 9 nodes, processors every 3 positions form a perfect
	// radius-1 cover (balls of size 3 tile Z_9).
	tr := torus.New(9, 1)
	p := build(t, placement.Explicit{Label: "every3", Coords: [][]int{{0}, {3}, {6}}}, tr)
	if !IsPerfectCover(p, 1) {
		t.Error("every-3rd placement should be a perfect radius-1 cover of the 9-ring")
	}
	if IsPerfectCover(p, 2) {
		t.Error("radius 2 should overlap")
	}
}

func TestPerfectCoverLeeSphereD2(t *testing.T) {
	// The classical diagonal perfect code: on T^2_5, the placement
	// {(i, 2i)} has 5 processors whose radius-1 Lee spheres (size 5) tile
	// the 25 nodes — the Lee-metric perfect 1-error-correcting code.
	tr := torus.New(5, 2)
	coords := make([][]int, 5)
	for i := 0; i < 5; i++ {
		coords[i] = []int{i, (2 * i) % 5}
	}
	p := build(t, placement.Explicit{Label: "lee-code", Coords: coords}, tr)
	if !IsPerfectCover(p, 1) {
		t.Error("the (1,2)-diagonal on T^2_5 should be a perfect Lee code")
	}
	if got := CoveringRadius(p); got != 1 {
		t.Errorf("covering radius %d, want 1", got)
	}
	if got := PackingDistance(p); got != 3 {
		t.Errorf("packing distance %d, want 3 (perfect 1-code has minimum distance 3)", got)
	}
}

func TestPerfectCoverRejectsWrongSizes(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	// 4 balls of size 5 ≠ 16 nodes.
	if IsPerfectCover(p, 1) {
		t.Error("linear placement on T^2_4 is not a perfect 1-cover")
	}
}

func TestAnalyzeReport(t *testing.T) {
	tr := torus.New(6, 2)
	lin := build(t, placement.Linear{C: 0}, tr)
	rep := Analyze(lin)
	if rep.CoveringRadius != 3 || rep.PackingDistance != 2 {
		t.Errorf("linear report: %+v", rep)
	}
	if rep.MeanDistance <= 0 || rep.MeanDistance >= float64(rep.CoveringRadius) {
		t.Errorf("mean distance %v out of range", rep.MeanDistance)
	}
	empty := Analyze(placement.New(tr, nil, "empty"))
	if empty.CoveringRadius != -1 {
		t.Errorf("empty report: %+v", empty)
	}
}

func TestLoadOptimalAndCoverageOptimalDiverge(t *testing.T) {
	// A key trade-off the cover metrics expose: the linear placement is
	// load-optimal but coverage-POOR — all its processors sit on one
	// residue class, so nodes with distant residues are ⌊k/2⌋ away. Random
	// placements of the same size spread across residues and usually cover
	// strictly better. (The E23 experiment tabulates this.)
	tr := torus.New(8, 2)
	lin := build(t, placement.Linear{C: 0}, tr)
	linRadius := CoveringRadius(lin)
	if linRadius != LinearCoveringRadius(8) {
		t.Fatalf("linear radius %d, closed form %d", linRadius, LinearCoveringRadius(8))
	}
	betterOrEqual := 0
	for seed := int64(0); seed < 8; seed++ {
		rnd := build(t, placement.Random{Count: lin.Size(), Seed: seed}, tr)
		if CoveringRadius(rnd) <= linRadius {
			betterOrEqual++
		}
	}
	if betterOrEqual < 5 {
		t.Errorf("only %d of 8 random placements cover at least as well as linear's radius %d",
			betterOrEqual, linRadius)
	}
}
