// Package cover measures placements as resource placements, the framing of
// the paper's references [3] (Bae & Bose) and [12] (Pitteli & Smitley): how
// far is any node from the nearest processor (covering radius), how far
// apart do processors keep from each other (packing distance), and is the
// placement a perfect Lee-sphere cover. Linear placements have clean closed
// forms — every unit step changes the residue Σp_i by ±1, so the distance
// from a node to the placement is exactly the cyclic distance of its
// residue to the placement's, giving covering radius ⌊k/2⌋ and packing
// distance 2 — which the tests pin against BFS ground truth.
package cover

import (
	"torusnet/internal/lee"
	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

// DistanceToPlacement returns, for every node, the Lee distance to the
// nearest processor (multi-source BFS).
func DistanceToPlacement(p *placement.Placement) []int {
	t := p.Torus()
	dist := make([]int, t.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]torus.Node, 0, t.Nodes())
	for _, u := range p.Nodes() {
		dist[u] = 0
		queue = append(queue, u)
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for j := 0; j < t.D(); j++ {
			for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
				v := t.Step(u, j, dir)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return dist
}

// CoveringRadius returns max over nodes of the distance to the nearest
// processor: every node finds a processor within this radius. Returns -1
// for an empty placement.
func CoveringRadius(p *placement.Placement) int {
	if p.Size() == 0 {
		return -1
	}
	max := 0
	for _, d := range DistanceToPlacement(p) {
		if d > max {
			max = d
		}
	}
	return max
}

// PackingDistance returns the minimum Lee distance between two distinct
// processors, or -1 when the placement has fewer than two.
func PackingDistance(p *placement.Placement) int {
	nodes := p.Nodes()
	if len(nodes) < 2 {
		return -1
	}
	t := p.Torus()
	best := -1
	for i, u := range nodes {
		for _, v := range nodes[i+1:] {
			d := t.LeeDistance(u, v)
			if best < 0 || d < best {
				best = d
				if best == 1 {
					return 1
				}
			}
		}
	}
	return best
}

// IsPerfectCover reports whether the Lee spheres of radius r around the
// processors tile the torus exactly: |P| · ballSize(r) = k^d and every
// node is within r of exactly one processor.
func IsPerfectCover(p *placement.Placement, r int) bool {
	t := p.Torus()
	if p.Size()*lee.BallSize(t.K(), t.D(), r) != t.Nodes() {
		return false
	}
	// Exact tiling: every node within r of exactly one processor. Count
	// coverage multiplicity by expanding each ball.
	covered := make([]int, t.Nodes())
	for _, u := range p.Nodes() {
		forEachWithin(t, u, r, func(v torus.Node) {
			covered[v]++
		})
	}
	for _, c := range covered {
		if c != 1 {
			return false
		}
	}
	return true
}

// forEachWithin visits every node at Lee distance ≤ r from u (BFS).
func forEachWithin(t *torus.Torus, u torus.Node, r int, visit func(torus.Node)) {
	seen := map[torus.Node]bool{u: true}
	frontier := []torus.Node{u}
	visit(u)
	for depth := 0; depth < r; depth++ {
		var next []torus.Node
		for _, x := range frontier {
			for j := 0; j < t.D(); j++ {
				for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
					v := t.Step(x, j, dir)
					if !seen[v] {
						seen[v] = true
						visit(v)
						next = append(next, v)
					}
				}
			}
		}
		frontier = next
	}
}

// Report bundles the resource-placement metrics of one placement.
type Report struct {
	CoveringRadius  int
	PackingDistance int
	// MeanDistance is the average node-to-nearest-processor distance.
	MeanDistance float64
}

// Analyze computes the Report.
func Analyze(p *placement.Placement) Report {
	dist := DistanceToPlacement(p)
	rep := Report{PackingDistance: PackingDistance(p), CoveringRadius: -1}
	if p.Size() == 0 {
		return rep
	}
	sum := 0
	for _, d := range dist {
		sum += d
		if d > rep.CoveringRadius {
			rep.CoveringRadius = d
		}
	}
	rep.MeanDistance = float64(sum) / float64(len(dist))
	return rep
}

// LinearCoveringRadius is the closed form for linear placements with unit
// coefficients: the residue Σp_i changes by exactly ±1 per hop, so the
// distance from residue r to residue c is their cyclic distance, and the
// worst node sits ⌊k/2⌋ away.
func LinearCoveringRadius(k int) int { return k / 2 }
