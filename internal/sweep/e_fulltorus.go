package sweep

import (
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/stats"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E2",
		Title:    "Fully populated torus: superlinear maximum load",
		PaperRef: "§1, E_max > k^{d+1}/8",
		Run:      runE2,
	})
}

func runE2(scale Scale) *Table {
	type series struct {
		d  int
		ks []int
	}
	var cfg []series
	if scale == Full {
		// Even k only: the §1 counting argument uses the even-k bisection
		// width 4k^{d-1}, and a uniform parity keeps the growth-exponent
		// fit clean (odd k carries slightly smaller constants).
		cfg = []series{{2, []int{4, 6, 8, 10, 12, 14, 16}}, {3, []int{4, 6, 8}}}
	} else {
		cfg = []series{{2, []int{4, 6, 8}}}
	}
	tb := &Table{
		ID:       "E2",
		Title:    "Fully populated torus under dimension-ordered routing",
		PaperRef: "§1",
		Columns:  []string{"d", "k", "|P|=k^d", "E_max", "bound k^{d+1}/8", "E_max/|P|"},
	}
	for _, s := range cfg {
		var ks, loads, linLoads []float64
		for _, k := range s.ks {
			t := torus.New(k, s.d)
			full := mustPlacement(placement.Full{}, t)
			res := load.Compute(full, routing.ODR{}, load.Options{})
			bound := load.FullTorusLowerBound(k, s.d)
			tb.AddRow(s.d, k, full.Size(), res.Max, bound, res.Max/float64(full.Size()))
			ks = append(ks, float64(k))
			loads = append(loads, res.Max)

			lin := mustPlacement(placement.Linear{C: 0}, t)
			linRes := load.Compute(lin, routing.ODR{}, load.Options{})
			linLoads = append(linLoads, linRes.Max)
		}
		fullExp := stats.GrowthExponent(ks, loads)
		linExp := stats.GrowthExponent(ks, linLoads)
		tb.AddNote("d=%d: fitted growth exponent of E_max is %.2f for the full torus (paper: d+1 = %d) vs %.2f for the linear placement (paper: d−1 = %d).",
			s.d, fullExp, s.d+1, linExp, s.d-1)
	}
	tb.AddNote("E_max per processor grows with k on the full torus — the scaling failure motivating partially populated tori — while it stays constant for linear placements. The k^{d+1}/8 bound is the paper's even-k argument; odd radices have a slightly smaller bisection constant and fall marginally below it.")
	return tb
}
