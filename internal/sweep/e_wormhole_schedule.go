package sweep

import (
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/schedule"
	"torusnet/internal/simnet"
	"torusnet/internal/torus"
	"torusnet/internal/wormhole"
)

func init() {
	register(Experiment{
		ID:       "E20",
		Title:    "Wormhole switching: virtual channels, datelines, and deadlock",
		PaperRef: "extension toward refs [7]/[11] (wormhole-routed tori)",
		Run:      runE20,
	})
	register(Experiment{
		ID:       "E21",
		Title:    "Offline scheduling: congestion + dilation vs FIFO queueing",
		PaperRef: "extension: operational meaning of E_max",
		Run:      runE21,
	})
}

func runE20(scale Scale) *Table {
	ks := []int{6}
	if scale == Full {
		ks = []int{4, 6, 8}
	}
	tb := &Table{
		ID:       "E20",
		Title:    "Flit-level complete exchange (F=4 flits/packet, B=2 buffers/VC)",
		PaperRef: "extension toward [7]/[11]",
		Columns: []string{"k", "placement", "routing", "VCs", "cycles", "delivered/flits",
			"max link flits", "mean packet latency", "outcome"},
	}
	type cfg struct {
		name string
		spec placement.Spec
		alg  routing.Algorithm
		vcs  int
	}
	for _, k := range ks {
		t := torus.New(k, 2)
		cfgs := []cfg{
			{"linear", placement.Linear{C: 0}, routing.ODR{}, 1},
			{"linear", placement.Linear{C: 0}, routing.ODR{}, 2},
			{"full", placement.Full{}, routing.ODR{}, 1},
			{"full", placement.Full{}, routing.ODR{}, 2},
			{"full", placement.Full{}, routing.UDR{}, 2},
		}
		for _, c := range cfgs {
			p := mustPlacement(c.spec, t)
			st := wormhole.Run(wormhole.Config{
				Placement: p, Algorithm: c.alg, Seed: 1,
				VirtualChannels: c.vcs, MaxCycles: 2_000_000,
			})
			outcome := "completed"
			if st.Deadlocked {
				outcome = "DEADLOCK"
			} else if st.Aborted {
				outcome = "aborted"
			}
			tb.AddRow(k, c.name, c.alg.Name(), c.vcs, st.Cycles,
				itoa(st.DeliveredFlits)+"/"+itoa(st.Flits),
				st.MaxLinkFlits, st.MeanPacketLatency, outcome)
		}
	}
	tb.AddNote("Three textbook phenomena reproduced: (1) single-VC wormhole deadlocks on the fully populated torus (cyclic buffer wait around wrap rings); (2) the two-VC dateline scheme restores completion under dimension-ordered routing; (3) UDR deadlocks even with datelines — per-packet dimension orders reintroduce cross-dimension cycles, which is why adaptive wormhole routing needs escape channels. The sparse linear placement completes in every configuration tried.")
	return tb
}

func runE21(scale Scale) *Table {
	cases := []kd{{6, 2}}
	if scale == Full {
		cases = []kd{{4, 2}, {6, 2}, {8, 2}, {10, 2}, {4, 3}, {6, 3}}
	}
	tb := &Table{
		ID:       "E21",
		Title:    "Greedy conflict-free schedule of one complete exchange (ODR routes)",
		PaperRef: "extension: E_max as congestion",
		Columns: []string{"d", "k", "placement", "congestion C (=E_max)", "dilation D",
			"schedule length", "length/max(C,D)", "FIFO sim cycles"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		for _, spec := range []placement.Spec{placement.Linear{C: 0}, placement.Full{}} {
			p := mustPlacement(spec, t)
			res := schedule.CompleteExchange(p, routing.ODR{}, 1, schedule.LongestFirst)
			exact := load.Compute(p, routing.ODR{}, load.Options{})
			if float64(res.Congestion) != exact.Max {
				panic("sweep: schedule congestion disagrees with the load engine")
			}
			fifo := simnet.Run(simnet.Config{Placement: p, Algorithm: routing.ODR{}, Seed: 1})
			tb.AddRow(c.d, c.k, spec.Name(), res.Congestion, res.Dilation, res.Length,
				float64(res.Length)/float64(res.LowerBound()), fifo.Cycles)
		}
	}
	tb.AddNote("The greedy schedule lands within C + D of the universal max(C, D) floor, usually much closer; the congestion column is exactly the load engine's E_max for deterministic ODR, making the paper's load bounds direct statements about achievable completion time. FIFO online queueing (simnet) pays a modest premium over the offline schedule.")
	return tb
}
