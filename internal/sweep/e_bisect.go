package sweep

import (
	"torusnet/internal/bisect"
	"torusnet/internal/bounds"
	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E3",
		Title:    "Sweep separator width vs the Corollary 1 ceiling",
		PaperRef: "Proposition 1, Corollary 1, Appendix",
		Run:      runE3,
	})
	register(Experiment{
		ID:       "E4",
		Title:    "Theorem 1 dimension cut: width 4k^{d−1}, balanced",
		PaperRef: "Theorem 1",
		Run:      runE4,
	})
	register(Experiment{
		ID:       "E14",
		Title:    "Appendix slab census: hyperplane crossings along the sweep",
		PaperRef: "Appendix, |S| ≤ 2dk^{d−1} array edges",
		Run:      runE14,
	})
}

func runE3(scale Scale) *Table {
	cases := []kd{{4, 2}, {4, 3}}
	if scale == Full {
		cases = []kd{{4, 2}, {6, 2}, {8, 2}, {4, 3}, {5, 3}, {6, 3}, {3, 4}, {4, 4}, {3, 5}}
	}
	tb := &Table{
		ID:       "E3",
		Title:    "Hyperplane-sweep bisection with respect to arbitrary placements",
		PaperRef: "Proposition 1 / Corollary 1",
		Columns:  []string{"d", "k", "placement", "|P|", "split", "width", "ceiling 6dk^{d-1}", "width/ceiling"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		specs := []placement.Spec{
			placement.Linear{C: 0},
			placement.Random{Count: t.Nodes() / 3, Seed: 41},
			placement.Random{Count: t.Nodes() / 2, Seed: 42},
		}
		for _, spec := range specs {
			p := mustPlacement(spec, t)
			cut := bisect.Sweep(p)
			ceiling := bisect.SweepCeiling(t)
			split := itoa(cut.ProcsA) + "|" + itoa(cut.ProcsB)
			tb.AddRow(c.d, c.k, spec.Name(), p.Size(), split, cut.Width(), ceiling,
				float64(cut.Width())/float64(ceiling))
		}
	}
	tb.AddNote("Every cut is balanced within one processor and stays below the 6dk^{d-1} directed-edge ceiling, for structured and unstructured placements alike.")
	return tb
}

func runE4(scale Scale) *Table {
	cases := []kd{{4, 2}, {4, 3}}
	if scale == Full {
		cases = []kd{{4, 2}, {6, 2}, {8, 2}, {4, 3}, {6, 3}, {8, 3}, {4, 4}, {6, 4}}
	}
	tb := &Table{
		ID:       "E4",
		Title:    "Theorem 1 dimension cut on uniform placements",
		PaperRef: "Theorem 1",
		Columns:  []string{"d", "k", "placement", "|P|", "cut width", "4k^{d-1}", "split", "Eq.8 bound"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		for _, spec := range []placement.Spec{placement.Linear{C: 0}, placement.MultipleLinear{T: 2}} {
			p := mustPlacement(spec, t)
			cut := bisect.DimensionCut(p, 0)
			want := int(bounds.Theorem1Width(c.k, c.d))
			split := itoa(cut.ProcsA) + "|" + itoa(cut.ProcsB)
			tb.AddRow(c.d, c.k, spec.Name(), p.Size(), cut.Width(), want, split,
				bounds.Bisection(p.Size(), cut.Width()))
		}
	}
	tb.AddNote("Width equals 4k^{d-1} exactly in every case; the split is even for even k. The final column feeds Eq. 8 and yields the §4 improved bound c²k^{d-1}/8.")
	return tb
}

func runE14(scale Scale) *Table {
	cases := []kd{{4, 2}, {3, 3}}
	if scale == Full {
		cases = []kd{{4, 2}, {6, 2}, {8, 2}, {4, 3}, {5, 3}, {3, 4}, {4, 4}}
	}
	tb := &Table{
		ID:       "E14",
		Title:    "Maximum hyperplane crossings along the full sweep",
		PaperRef: "Appendix",
		Columns:  []string{"d", "k", "positions", "max array crossings (directed)", "bound 4dk^{d-1}", "max total crossings", "ceiling 6dk^{d-1}"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Full{}, t)
		order := bisect.SweepOrder(t)
		maxArray, maxTotal := 0, 0
		positions := 0
		step := 1
		if t.Nodes() > 256 {
			step = t.Nodes() / 256
		}
		for n := 1; n < t.Nodes(); n += step {
			cut := bisect.CutFromPrefix(p, order, n)
			arrayE, _ := bisect.ArraySlabCrossings(t, cut)
			if arrayE > maxArray {
				maxArray = arrayE
			}
			if cut.Width() > maxTotal {
				maxTotal = cut.Width()
			}
			positions++
		}
		arrayBound := 4 * c.d * t.Nodes() / c.k
		tb.AddRow(c.d, c.k, positions, maxArray, arrayBound, maxTotal, bisect.SweepCeiling(t))
	}
	tb.AddNote("The appendix proves each hyperplane position crosses ≤ 2dk^{d-1} undirected array edges (= 4dk^{d-1} directed); the census over every prefix position confirms it, and wrap edges keep the total under the 6dk^{d-1} Corollary 1 ceiling.")
	return tb
}

func itoa(v int) string {
	return formatFloat(float64(v))
}
