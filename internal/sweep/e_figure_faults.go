package sweep

import (
	"torusnet/internal/core"
	"torusnet/internal/faults"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E10",
		Title:    "Fig. 1: three processors on T²₃ with highlighted links",
		PaperRef: "Fig. 1",
		Run:      runE10,
	})
	register(Experiment{
		ID:       "E11",
		Title:    "§7 fault tolerance: route multiplicity and critical links",
		PaperRef: "§7",
		Run:      runE11,
	})
}

func runE10(Scale) *Table {
	tb := &Table{
		ID:       "E10",
		Title:    "Fig. 1 reproduction: placement of three processors on T²₃",
		PaperRef: "Fig. 1",
		Columns:  []string{"routing", "paths per pair", "highlighted links", "of total"},
	}
	p, err := core.Figure1Placement()
	if err != nil {
		panic(err)
	}
	t := p.Torus()
	for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}, routing.FAR{}} {
		used, total := core.UsedLinks(p, alg)
		// All Fig. 1 pairs differ in both dimensions at cyclic distance 1
		// each, so every algorithm gives the same per-pair count for all
		// six pairs.
		count := alg.PathCount(t, p.Nodes()[0], p.Nodes()[1])
		tb.AddRow(alg.Name(), count, len(used), total)
	}
	art, err := core.RenderFigure1(p, routing.UDR{})
	if err != nil {
		panic(err)
	}
	tb.AddNote("UDR rendering (processors '#', highlighted links '='/'\"'):\n%s", art)
	summary, err := core.Figure1Summary(routing.UDR{})
	if err != nil {
		panic(err)
	}
	tb.AddNote("%s", summary)
	return tb
}

func runE11(scale Scale) *Table {
	cases := []kd{{4, 2}, {4, 3}}
	if scale == Full {
		cases = []kd{{4, 2}, {6, 2}, {4, 3}, {5, 3}, {6, 3}, {3, 4}}
	}
	tb := &Table{
		ID:       "E11",
		Title:    "Fault tolerance of ODR vs UDR on linear placements",
		PaperRef: "§7",
		Columns: []string{"d", "k", "routing", "routes min/mean/max", "pairs with critical link",
			"of pairs", "E[broken pairs per random link failure]"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}} {
			rep := faults.Analyze(p, alg, 0)
			routes := formatFloat(rep.MinRoutes) + "/" + formatFloat(rep.MeanRoutes) + "/" + formatFloat(rep.MaxRoutes)
			tb.AddRow(c.d, c.k, alg.Name(), routes, rep.PairsWithCritical, rep.Pairs, rep.ExpectedBrokenPairs)
		}
	}
	tb.AddNote("ODR: one route per pair, so every pair has a full path of critical links. UDR: s! routes; only pairs differing in a single dimension retain critical links, and the expected damage of a random link failure drops accordingly — the fault-tolerance claim of §7, quantified.")
	return tb
}
