package sweep

import (
	"math"

	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E32",
		Title:    "Analytic engine tier: closed forms vs computed E_max",
		PaperRef: "Theorems 2-5 closed forms on linear placements",
		Run:      runE32,
	})
}

// runE32 measures the closed-form analytic tier against the computed
// engines cell by cell: on the Theorem 2 equality cells (single linear
// placements under ODR for every k, and under ODR-multi for odd k) the
// difference must be exactly zero; on the Theorem 3-5 cells the closed
// form is an upper bound and the row reports its slack factor instead.
// Workers is pinned to 1 so the computed column is machine-independent.
func runE32(scale Scale) *Table {
	type cse struct {
		k, d int
		spec placement.Spec
		alg  routing.Algorithm
	}
	cases := []cse{
		{4, 2, placement.Linear{C: 0}, routing.ODR{}},
		{5, 2, placement.Linear{C: 2}, routing.ODR{}},
		{5, 2, placement.Linear{C: 0}, routing.ODRMulti{}},
		{4, 2, placement.MultipleLinear{T: 2}, routing.ODR{}},
		{4, 2, placement.Linear{C: 0}, routing.UDR{}},
		{5, 2, placement.MultipleLinear{T: 2}, routing.UDRMulti{}},
	}
	if scale == Full {
		cases = append(cases,
			cse{6, 2, placement.Linear{C: 0}, routing.ODR{}},
			cse{7, 2, placement.Linear{C: 3}, routing.ODRMulti{}},
			cse{4, 3, placement.Linear{C: 0}, routing.ODR{}},
			cse{5, 3, placement.Linear{C: 0}, routing.ODRMulti{}},
			cse{6, 3, placement.Linear{C: 1}, routing.ODR{}},
			cse{8, 3, placement.Linear{C: 0}, routing.ODR{}},
			cse{6, 3, placement.MultipleLinear{T: 3}, routing.ODR{}},
			cse{5, 3, placement.Linear{C: 0}, routing.UDR{}},
			cse{6, 3, placement.MultipleLinear{T: 2}, routing.UDRMulti{}},
		)
	}
	tb := &Table{
		ID:       "E32",
		Title:    "Analytic closed forms vs computed engines: agreement and bound slack",
		PaperRef: "Theorems 2-5",
		Columns: []string{"d", "k", "placement", "algorithm", "theorem", "exact",
			"analytic", "computed", "diff", "slack", "agree"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(c.spec, t)
		an := load.Compute(p, c.alg, load.Options{Workers: 1, Analytic: load.AnalyticForce})
		if an.Engine != load.EngineAnalytic {
			// Every case is a recognized linear shape; reaching the
			// computed path here means the recognizer or theorem map broke.
			panic("E32: case not answered analytically: " + p.Name() + "/" + c.alg.Name())
		}
		computed := load.Compute(p, c.alg, load.Options{Workers: 1, Analytic: load.AnalyticOff})
		diff := an.Max - computed.Max
		slack := 0.0
		if computed.Max > 0 {
			slack = an.Max / computed.Max
		}
		agree := "ok"
		if an.Exact {
			if diff != 0 {
				agree = "FAIL"
			}
		} else if computed.Max > an.Max+1e-9*math.Max(1, an.Max) {
			agree = "FAIL" // an upper bound below the measured value
		}
		tb.AddRow(c.d, c.k, p.Name(), c.alg.Name(), an.Theorem, an.Exact,
			an.Max, computed.Max, diff, slack, agree)
	}
	tb.AddNote("Exact rows (Theorem 2: ODR on any k; ODR-multi on odd k, where unique shortest ring paths make it coincide with ODR) must show diff 0 — the closed form k^{d-1}/2 (even k) or (k^{d-1}-k^{d-2})/2 (odd k) is the measured E_max bit for bit. Bound rows (Theorems 3-5) report slack = analytic/computed >= 1; the t^2 and 2^{d-1} factors are loose by design. The torusd fast lane serves only the exact cells; AnalyticForce exists for bound exploration like this table.")
	return tb
}
