package sweep

import (
	"torusnet/internal/load"
	"torusnet/internal/optimize"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/simnet"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E27",
		Title:    "Array vs torus routing: what the wrap links buy",
		PaperRef: "extension of the appendix's A^d_k ↔ T^d_k relation",
		Run:      runE27,
	})
	register(Experiment{
		ID:       "E28",
		Title:    "Annealed placements vs the linear construction",
		PaperRef: "empirical optimality check beyond the Θ-bounds",
		Run:      runE28,
	})
}

func runE27(scale Scale) *Table {
	cases := []kd{{6, 2}}
	if scale == Full {
		cases = []kd{{6, 2}, {8, 2}, {10, 2}, {5, 3}, {6, 3}}
	}
	tb := &Table{
		ID:       "E27",
		Title:    "Linear placement: torus ODR vs array (no-wrap) ODR",
		PaperRef: "appendix A^d_k relation",
		Columns: []string{"d", "k", "|P|", "E_max torus", "E_max array", "array/torus",
			"total torus (Lee)", "total array"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		torusRes := load.Compute(p, routing.ODR{}, load.Options{})
		meshRes := load.Compute(p, routing.MeshODR{}, load.Options{})
		tb.AddRow(c.d, c.k, p.Size(), torusRes.Max, meshRes.Max, meshRes.Max/torusRes.Max,
			torusRes.Total, meshRes.Total)
	}
	tb.AddNote("Forbidding wrap links (routing on the embedded array A^d_k) lengthens paths — total traffic grows toward the array-distance sum — and concentrates them through the array's center, roughly doubling E_max. The wrap links are where the torus's factor-of-two bisection advantage over the mesh shows up in measured load, mirroring the appendix's accounting of the dk^{d−1} extra edges.")
	return tb
}

func runE28(scale Scale) *Table {
	type cse struct{ k, d, steps int }
	cases := []cse{{5, 2, 150}}
	if scale == Full {
		cases = []cse{{4, 2, 400}, {5, 2, 400}, {6, 2, 400}, {4, 3, 250}}
	}
	tb := &Table{
		ID:       "E28",
		Title:    "Simulated annealing over size-k^{d-1} placements (UDR energy)",
		PaperRef: "empirical optimality of the linear construction",
		Columns: []string{"d", "k", "|P|", "E_max linear", "E_max random start", "E_max annealed",
			"annealed/linear", "annealed uniformity deviation"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		lin := mustPlacement(placement.Linear{C: 0}, t)
		linMax := load.Compute(lin, routing.UDR{}, load.Options{}).Max
		res := optimize.Anneal(t, routing.UDR{}, optimize.Config{
			Size: lin.Size(), Steps: c.steps, Seed: 7,
		})
		tb.AddRow(c.d, c.k, lin.Size(), linMax, res.StartEMax, res.BestEMax, res.BestEMax/linMax,
			res.Best.UniformityDeviation())
	}
	tb.AddNote("Hundreds of annealing steps over random size-k^{d-1} placements converge toward — and essentially never below — the linear placement's E_max, giving empirical weight to the construction's optimality beyond the asymptotic Θ(k^{d-1}) matching of bounds. The final column addresses the paper's closing open question (characterizing optimal placements by their subtorus restrictions): placements that anneal toward low E_max also drift toward per-dimension uniformity (deviation 0 = uniform), supporting the conjecture that near-uniformity is necessary for optimality.")
	return tb
}

func init() {
	register(Experiment{
		ID:       "E29",
		Title:    "Online adaptivity: congestion-aware routing vs oblivious ODR/UDR",
		PaperRef: "extension: runtime counterpart of UDR's route freedom",
		Run:      runE29,
	})
}

func runE29(scale Scale) *Table {
	ks := []int{8}
	if scale == Full {
		ks = []int{6, 8, 10, 12}
	}
	tb := &Table{
		ID:       "E29",
		Title:    "Complete exchange on the full torus: completion cycles by routing mode (d=2)",
		PaperRef: "extension",
		Columns: []string{"k", "mode", "cycles", "max link traffic", "max queue",
			"mean latency", "cycles/|P|"},
	}
	for _, k := range ks {
		t := torus.New(k, 2)
		p := mustPlacement(placement.Full{}, t)
		type mode struct {
			name     string
			alg      routing.Algorithm
			adaptive bool
		}
		for _, m := range []mode{
			{"ODR (oblivious)", routing.ODR{}, false},
			{"UDR (random order)", routing.UDR{}, false},
			{"adaptive (min queue)", routing.ODR{}, true},
		} {
			st := simnet.Run(simnet.Config{Placement: p, Algorithm: m.alg, Seed: 1, Adaptive: m.adaptive})
			tb.AddRow(k, m.name, st.Cycles, st.MaxLinkTraffic, st.MaxQueueLen,
				st.MeanLatency, float64(st.Cycles)/float64(p.Size()))
		}
	}
	tb.AddNote("Congestion-aware per-hop choice (the online counterpart of UDR's offline route freedom) shortens completion and flattens queues versus oblivious dimension order; it optimizes delay, not peak link traffic, so MaxLinkTraffic can tick up slightly while cycles drop.")
	return tb
}

func init() {
	register(Experiment{
		ID:       "E30",
		Title:    "Latency vs offered load: the saturation view of §1",
		PaperRef: "extension: classic interconnection-network evaluation curve",
		Run:      runE30,
	})
}

func runE30(scale Scale) *Table {
	rates := []float64{0.1, 0.5}
	k := 8
	warm, meas := 200, 600
	if scale == Full {
		rates = []float64{0.05, 0.2, 0.4, 0.6, 0.8, 0.95}
		k = 12
		warm, meas = 300, 900
	}
	tb := &Table{
		ID:       "E30",
		Title:    "Open-loop uniform traffic, d=2, ODR routing",
		PaperRef: "extension of §1",
		Columns: []string{"k", "placement", "offered rate", "throughput/proc",
			"mean latency", "mean queue/proc", "saturated"},
	}
	t := torus.New(k, 2)
	for _, spec := range []placement.Spec{placement.Linear{C: 0}, placement.Full{}} {
		p := mustPlacement(spec, t)
		for _, rate := range rates {
			st := simnet.RunOpenLoop(simnet.OpenLoopConfig{
				Placement: p, Algorithm: routing.ODR{}, Rate: rate,
				Warmup: warm, Measure: meas, Seed: 1,
			})
			tb.AddRow(k, spec.Name(), rate, st.ThroughputPerProc, st.MeanLatency,
				st.MeanQueue/float64(p.Size()), st.Saturated())
		}
	}
	tb.AddNote("The classic load-latency curve: the fully populated torus's links carry ρ ≈ λ·k/8 per unit of per-processor rate λ, so latency diverges (saturation) once λ·k/8 approaches the hottest link's capacity; the linear placement, with k× fewer injectors on the same fabric, runs at ρ ≈ λ/8 and stays flat across the whole sweep — §1's throughput claim as a saturation point.")
	return tb
}
