package sweep

import (
	"context"
	"time"

	"torusnet/internal/load"
	"torusnet/internal/optimize"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E33",
		Title:    "Search strategies head to head: anneal vs branch-and-bound vs Lee-sphere seeds",
		PaperRef: "§4 bounds as gap certificates; §5 linear construction as the baseline",
		Run:      runE33,
	})
}

func runE33(scale Scale) *Table {
	type cse struct{ k, d, steps int }
	cases := []cse{{6, 2, 400}}
	if scale == Full {
		cases = []cse{{6, 2, 800}, {8, 2, 800}, {8, 3, 200}}
	}
	tb := &Table{
		ID:       "E33",
		Title:    "Size-k^{d-1} ODR placements: E_max by search strategy, gap to the §4 lower bound",
		PaperRef: "§4, §5",
		Columns: []string{"d", "k", "|P|", "strategy", "E_max", "§4 lower bound",
			"gap", "proven optimal", "wall ms"},
	}
	ctx := context.Background()
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		lin := mustPlacement(placement.Linear{C: 0}, t)
		size := lin.Size()

		start := time.Now()
		lee, err := optimize.LeeSeed(t, size, routing.ODR{}, 0)
		if err != nil {
			panic(err)
		}
		leeMS := time.Since(start).Milliseconds()

		// The §4 lower bound depends only on (k, d, |P|, routing), so the
		// linear baseline shares the searched results' certificate.
		linStart := time.Now()
		linMax := load.Compute(lin, routing.ODR{}, load.Options{}).Max
		tb.AddRow(c.d, c.k, size, "linear (§5)", linMax, lee.LowerBound,
			linMax-lee.LowerBound, false, time.Since(linStart).Milliseconds())
		tb.AddRow(c.d, c.k, size, "leesphere", lee.BestEMax, lee.LowerBound,
			lee.Gap, lee.Proven, leeMS)

		start = time.Now()
		ann, err := optimize.AnnealCtx(ctx, t, routing.ODR{}, optimize.Config{
			Size: size, Steps: c.steps, Seed: 7, Start: lee.Best.Nodes(),
		})
		if err != nil {
			panic(err)
		}
		tb.AddRow(c.d, c.k, size, "anneal", ann.BestEMax, ann.LowerBound,
			ann.Gap, ann.Proven, time.Since(start).Milliseconds())

		// Exhaustive search is only tractable on small tori; past the node
		// gate the row is omitted rather than left to time out.
		if t.Nodes() <= 256 {
			start = time.Now()
			bnb, err := optimize.BranchAndBound(ctx, t, routing.ODR{}, optimize.Config{Size: size})
			if err != nil {
				panic(err)
			}
			tb.AddRow(c.d, c.k, size, "bnb", bnb.BestEMax, bnb.LowerBound,
				bnb.Gap, bnb.Proven, time.Since(start).Milliseconds())
		}
	}
	tb.AddNote("Branch-and-bound certifies the true optimum on small tori and shows the linear construction is not pointwise optimal at small k: proven optima of E_max = 2 on T²₆ (linear: 3) and E_max = 3 on T²₈ (linear: k/2 = 4). That does not contradict Theorem 2 — its optimality claim is asymptotic, about the growth order k^{d−1}, not each finite k — and the picture inverts at scale: on T³₈ the linear construction beats both the Lee-sphere seed and a short warm-started anneal by a wide margin, empirical support for the construction past the exhaustive-search regime. The gap column is the §4 lower-bound certificate every strategy's result carries; where bnb reports proven=true the remaining gap is the bound's looseness, not the search's.")
	return tb
}
