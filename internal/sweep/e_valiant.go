package sweep

import (
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E26",
		Title:    "Valiant two-phase randomization vs direct dimension-ordered routing",
		PaperRef: "extension toward ref [15] (Valiant)",
		Run:      runE26,
	})
}

func runE26(scale Scale) *Table {
	ks := []int{8}
	if scale == Full {
		ks = []int{6, 8, 10, 12}
	}
	tb := &Table{
		ID:       "E26",
		Title:    "Direct ODR vs Valiant (ODR phases) on the full torus, d=2",
		PaperRef: "extension toward [15]",
		Columns: []string{"k", "pattern", "E_max direct", "imbalance direct (max/mean)",
			"E_max valiant", "imbalance valiant", "traffic ratio"},
	}
	for _, k := range ks {
		t := torus.New(k, 2)
		p := mustPlacement(placement.Full{}, t)
		for _, pat := range []load.Pattern{load.Transpose{}, load.CompleteExchange{}} {
			direct := load.ComputePattern(p, pat, routing.ODR{}, load.Options{})
			valiant := load.ComputeValiant(p, pat, routing.ODR{}, load.Options{})
			tb.AddRow(k, pat.Name(), direct.Max, direct.Max/direct.Mean(),
				valiant.Max, valiant.Max/valiant.Mean(), valiant.Total/direct.Total)
		}
	}
	tb.AddNote("Valiant's theorem in numbers: on the adversarial transpose permutation, direct dimension-ordered routing concentrates the load (high max/mean), while routing via a random intermediate node flattens it to near-uniform at the cost of ~2× total traffic. On complete exchange — already symmetric — randomization buys little and just pays the doubling, which is precisely why the paper's structured placements rather than randomization are the right tool for all-to-all.")
	return tb
}
