package sweep

import (
	"torusnet/internal/bsp"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E25",
		Title:    "BSP cost parameters: the gap g of partially populated tori",
		PaperRef: "extension toward refs [8]/[15] (BSP)",
		Run:      runE25,
	})
}

func runE25(scale Scale) *Table {
	ks := []int{4, 6}
	hmax := 4
	if scale == Full {
		ks = []int{4, 6, 8, 10}
		hmax = 6
	}
	tb := &Table{
		ID:       "E25",
		Title:    "Fitted superstep cost cycles(h) ≈ g·h + L (d=2, UDR routing)",
		PaperRef: "extension toward [8]/[15]",
		Columns:  []string{"k", "placement", "|P|", "gap g", "latency L", "cycles at h=1", "cycles at hmax"},
	}
	for _, k := range ks {
		t := torus.New(k, 2)
		for _, spec := range []placement.Spec{placement.Linear{C: 0}, placement.Full{}} {
			p := mustPlacement(spec, t)
			params, samples := bsp.Estimate(p, routing.UDR{}, hmax, 1)
			tb.AddRow(k, spec.Name(), p.Size(), params.G, params.L,
				samples[0].Cycles, samples[len(samples)-1].Cycles)
		}
	}
	tb.AddNote("The linear placement's gap stays roughly constant as k grows — h-relations meet only linear contention, the BSP restatement of the paper's load linearity. The fully populated torus's gap grows with k: each unit of h adds traffic across a bisection that did not grow to match, so the machine is not BSP-scalable without depopulation.")
	return tb
}
