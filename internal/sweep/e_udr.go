package sweep

import (
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E8",
		Title:    "Theorem 4: UDR on linear placements",
		PaperRef: "Theorem 4, bound 2^{d−1}k^{d−1}",
		Run:      runE8,
	})
	register(Experiment{
		ID:       "E9",
		Title:    "Theorem 5: multiple linear placements under UDR",
		PaperRef: "Theorem 5, bound t²2^{d−1}k^{d−1}",
		Run:      runE9,
	})
}

func runE8(scale Scale) *Table {
	cases := []kd{{6, 2}, {4, 3}}
	if scale == Full {
		cases = []kd{{4, 2}, {6, 2}, {8, 2}, {12, 2}, {16, 2}, {4, 3}, {5, 3}, {6, 3}, {8, 3}, {10, 3}, {3, 4}, {4, 4}, {5, 4}, {3, 5}}
	}
	tb := &Table{
		ID:       "E8",
		Title:    "Linear placement + UDR: measured load vs Theorem 4 bound",
		PaperRef: "Theorem 4",
		Columns: []string{"d", "k", "|P|", "E_max UDR", "bound 2^{d-1}k^{d-1}", "E_max/bound",
			"E_max ODR", "UDR/ODR"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		udr := load.Compute(p, routing.UDR{}, load.Options{})
		odr := load.Compute(p, routing.ODR{}, load.Options{})
		bound := load.UDRUpperBound(c.k, c.d)
		tb.AddRow(c.d, c.k, p.Size(), udr.Max, bound, udr.Max/bound, odr.Max, udr.Max/odr.Max)
	}
	tb.AddNote("UDR stays strictly below the Theorem 4 bound and below ODR's maximum: spreading the final correction over d dimensions dilutes the destination funnel.")
	return tb
}

func runE9(scale Scale) *Table {
	type cse struct{ k, d, t int }
	cases := []cse{{4, 2, 2}, {4, 3, 2}}
	if scale == Full {
		cases = []cse{
			{6, 2, 1}, {6, 2, 2}, {6, 2, 3}, {8, 2, 2},
			{4, 3, 2}, {5, 3, 2}, {5, 3, 3}, {6, 3, 2},
		}
	}
	tb := &Table{
		ID:       "E9",
		Title:    "Multiple linear placements under UDR",
		PaperRef: "Theorem 5",
		Columns:  []string{"d", "k", "t", "|P|", "E_max", "bound t²2^{d-1}k^{d-1}", "E_max/bound", "E_max/|P|"},
	}
	for _, c := range cases {
		tr := torus.New(c.k, c.d)
		p := mustPlacement(placement.MultipleLinear{T: c.t}, tr)
		res := load.Compute(p, routing.UDR{}, load.Options{})
		bound := load.MultiUDRUpperBound(c.k, c.d, c.t)
		tb.AddRow(c.d, c.k, c.t, p.Size(), res.Max, bound, res.Max/bound, res.Max/float64(p.Size()))
	}
	tb.AddNote("Linear load for every fixed t, comfortably inside the Theorem 5 bound (which is loose by design: t² counts all residue-pair combinations).")
	return tb
}
