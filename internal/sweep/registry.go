package sweep

import (
	"context"
	"fmt"
	"runtime/pprof"
	"sort"

	"torusnet/internal/failpoint"
	"torusnet/internal/obs"
)

// fpExperiment fires at the start of every registered experiment run.
// Error and panic specs panic (Run has no error return; torusd's pool
// shield maps the panic to a 500), sleep stalls the run, and a partial
// spec truncates the table to its first half with an explanatory note —
// the sweep-level model of a run cut short.
var fpExperiment = failpoint.New("sweep.experiment")

// Experiment is one registered reproduction experiment.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	// Run executes the experiment. Scale selects parameter ranges:
	// "quick" for CI-sized runs, "full" for the EXPERIMENTS.md tables.
	Run func(scale Scale) *Table
}

// Scale selects experiment parameter ranges.
type Scale string

const (
	// Quick keeps every experiment under roughly a second.
	Quick Scale = "quick"
	// Full uses the ranges recorded in EXPERIMENTS.md.
	Full Scale = "full"
)

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("sweep: duplicate experiment " + e.ID)
	}
	inner := e.Run
	e.Run = func(scale Scale) *Table {
		if err := fpExperiment.Inject(); err != nil {
			if !failpoint.IsPartial(err) {
				panic(err)
			}
			tb := inner(scale)
			if n := len(tb.Rows); n > 1 {
				tb.Rows = tb.Rows[:(n+1)/2]
				tb.AddNote("partial result: truncated to %d of %d rows by failpoint sweep.experiment", len(tb.Rows), n)
			}
			return tb
		}
		return inner(scale)
	}
	registry[e.ID] = e
}

// RunTraced executes the experiment like Run, but records a
// "sweep.experiment" span (attrs: id, scale, rows) under any trace carried
// by ctx, and labels the run's goroutines with the experiment ID so CPU
// profiles attribute samples per experiment. With no active trace it only
// adds the pprof label when observability counters are enabled, keeping
// benchmark runs on the unlabeled path.
func (e Experiment) RunTraced(ctx context.Context, scale Scale) *Table {
	_, sp := obs.Start(ctx, "sweep.experiment")
	defer sp.End()
	sp.SetAttr("id", e.ID)
	sp.SetAttr("scale", string(scale))
	var tb *Table
	if sp == nil && !obs.CountersEnabled() {
		tb = e.Run(scale)
	} else {
		pprof.Do(ctx, pprof.Labels("experiment", e.ID), func(context.Context) {
			tb = e.Run(scale)
		})
	}
	sp.SetAttrInt("rows", int64(len(tb.Rows)))
	return tb
}

// All returns the registered experiments sorted by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 0
	}
	return n
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
