package sweep

import (
	"fmt"
	"sort"
)

// Experiment is one registered reproduction experiment.
type Experiment struct {
	ID       string
	Title    string
	PaperRef string
	// Run executes the experiment. Scale selects parameter ranges:
	// "quick" for CI-sized runs, "full" for the EXPERIMENTS.md tables.
	Run func(scale Scale) *Table
}

// Scale selects experiment parameter ranges.
type Scale string

const (
	// Quick keeps every experiment under roughly a second.
	Quick Scale = "quick"
	// Full uses the ranges recorded in EXPERIMENTS.md.
	Full Scale = "full"
)

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("sweep: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns the registered experiments sorted by numeric ID.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		return idNum(out[i].ID) < idNum(out[j].ID)
	})
	return out
}

func idNum(id string) int {
	n := 0
	if _, err := fmt.Sscanf(id, "E%d", &n); err != nil {
		return 0
	}
	return n
}

// ByID finds one experiment.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}
