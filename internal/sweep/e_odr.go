package sweep

import (
	"math"

	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E6",
		Title:    "Theorem 2 / §6.1: exact ODR maximum load on linear placements",
		PaperRef: "Theorem 2, §6.1 closed forms",
		Run:      runE6,
	})
	register(Experiment{
		ID:       "E7",
		Title:    "Theorem 3: multiple linear placements under ODR",
		PaperRef: "Theorem 3, bound t²k^{d−1}",
		Run:      runE7,
	})
}

func runE6(scale Scale) *Table {
	cases := []kd{{4, 3}, {5, 3}}
	if scale == Full {
		cases = []kd{{4, 3}, {6, 3}, {8, 3}, {10, 3}, {12, 3}, {5, 3}, {7, 3}, {9, 3}, {11, 3}, {4, 4}, {5, 4}, {6, 4}, {3, 5}, {4, 5}}
	}
	tb := &Table{
		ID:       "E6",
		Title:    "Linear placement + restricted ODR: measured vs closed forms",
		PaperRef: "Theorem 2 / §6.1",
		Columns: []string{"d", "k", "|P|", "E_max measured", "funneling form k^{d-1}/2*",
			"interior-dim max", "§6.1 form k^{d-1}/8+…", "E_max/|P|"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		res := load.Compute(p, routing.ODR{}, load.Options{})
		perDim := res.PerDimensionMax()
		interior := 0.0
		for j := 1; j <= c.d-2; j++ {
			interior = math.Max(interior, perDim[j])
		}
		interiorForm, err := load.ODRLinearInteriorMax(c.k, c.d)
		if err != nil {
			// Every E6 case has d ≥ 3, so the interior form always exists.
			panic(err)
		}
		tb.AddRow(c.d, c.k, p.Size(), res.Max, load.ODRLinearMax(c.k, c.d),
			interior, interiorForm, res.Max/float64(p.Size()))
	}
	tb.AddNote("Reproduction finding: the paper's §6.1 expression (k^{d-1}/8 + k^{d-2}/4 even / k^{d-1}/8 − k^{d-3}/8 odd) matches the measured maximum over *interior* correction dimensions exactly, but the global maximum sits on first/last-dimension edges where ODR funnels each destination's traffic through 2 in-arcs: k^{d-1}/2 (even) resp. (k^{d-1}−k^{d-2})/2 (odd). Both are linear in |P|, so Theorem 2 holds — with constant 1/2, not 1/8.")
	return tb
}

func runE7(scale Scale) *Table {
	type cse struct{ k, d, t int }
	cases := []cse{{4, 2, 2}, {4, 3, 2}}
	if scale == Full {
		cases = []cse{
			{6, 2, 1}, {6, 2, 2}, {6, 2, 3}, {8, 2, 2}, {8, 2, 4},
			{4, 3, 1}, {4, 3, 2}, {6, 3, 2}, {6, 3, 3}, {5, 3, 2},
		}
	}
	tb := &Table{
		ID:       "E7",
		Title:    "Multiple linear placements under ODR",
		PaperRef: "Theorem 3",
		Columns:  []string{"d", "k", "t", "|P|=t·k^{d-1}", "E_max", "bound t²k^{d-1}", "E_max/bound", "E_max/|P|"},
	}
	for _, c := range cases {
		tr := torus.New(c.k, c.d)
		p := mustPlacement(placement.MultipleLinear{T: c.t}, tr)
		res := load.Compute(p, routing.ODR{}, load.Options{})
		bound := load.MultiODRUpperBound(c.k, c.d, c.t)
		tb.AddRow(c.d, c.k, c.t, p.Size(), res.Max, bound, res.Max/bound, res.Max/float64(p.Size()))
	}
	tb.AddNote("E_max stays below t²k^{d-1} everywhere and E_max/|P| stays bounded (≈ t/2 from funneling), confirming linear load for every fixed t.")
	return tb
}
