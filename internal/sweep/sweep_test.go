package sweep

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 33 {
		t.Fatalf("registry has %d experiments, want 33", len(all))
	}
	// Sorted by numeric ID and all present.
	for i, e := range all {
		want := i + 1
		if idNum(e.ID) != want {
			t.Errorf("position %d holds %s, want E%d", i, e.ID, want)
		}
	}
	for _, id := range []string{"E1", "E7", "E14"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%q) missing", id)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb := e.Run(Quick)
			if tb == nil {
				t.Fatal("nil table")
			}
			if tb.ID != e.ID {
				t.Errorf("table ID %q, want %q", tb.ID, e.ID)
			}
			if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
				t.Fatalf("experiment produced an empty table: %+v", tb)
			}
			for _, row := range tb.Rows {
				if len(row) != len(tb.Columns) {
					t.Errorf("row arity %d, want %d: %v", len(row), len(tb.Columns), row)
				}
			}
		})
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", PaperRef: "ref", Columns: []string{"a", "b"}}
	tb.AddRow(1, 2.5)
	tb.AddNote("note %d", 7)
	md := tb.Markdown()
	for _, want := range []string{"### T — demo", "| a | b |", "| 1 | 2.5 |", "> note 7"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{Columns: []string{"x", "y"}}
	tb.AddRow("plain", `quote"and,comma`)
	csv := tb.CSV()
	if !strings.Contains(csv, `plain,"quote""and,comma"`) {
		t.Errorf("CSV quoting wrong:\n%s", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("CSV header wrong:\n%s", csv)
	}
}

func TestTableText(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"col", "value"}}
	tb.AddRow("row1", 10)
	txt := tb.Text()
	if !strings.Contains(txt, "col") || !strings.Contains(txt, "row1") {
		t.Errorf("text render missing content:\n%s", txt)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		-2:      "-2",
		2.5:     "2.5",
		1.0 / 3: "0.3333",
	}
	for in, want := range cases {
		if got := formatFloat(in); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration should panic")
		}
	}()
	register(Experiment{ID: "E1"})
}
