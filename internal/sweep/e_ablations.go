package sweep

// Extension experiments E15–E19: ablations beyond the paper's claims,
// probing the design choices the paper leaves implicit (tie-breaking, path
// multiplicity, the uniformity premise, coefficient choice, and the buffer
// economics the load theory ultimately serves).

import (
	"torusnet/internal/bisect"
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/simnet"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E15",
		Title:    "Ablation: path multiplicity across the routing matrix",
		PaperRef: "extension of §6/§7 (ODR, ODR-multi, UDR, UDR-multi, FAR)",
		Run:      runE15,
	})
	register(Experiment{
		ID:       "E16",
		Title:    "Ablation: tie-breaking rule on even-radix tori",
		PaperRef: "extension of §6 (restricted vs unrestricted correction)",
		Run:      runE16,
	})
	register(Experiment{
		ID:       "E17",
		Title:    "Ablation: relaxing the uniformity premise of Theorem 1",
		PaperRef: "extension of Theorem 1's generalization remark",
		Run:      runE17,
	})
	register(Experiment{
		ID:       "E18",
		Title:    "Ablation: linear placements with general unit coefficients",
		PaperRef: "extension of Definition 10",
		Run:      runE18,
	})
	register(Experiment{
		ID:       "E19",
		Title:    "Ablation: buffer capacity, injection pacing, and deadlock",
		PaperRef: "extension of §1 via the cycle simulator",
		Run:      runE19,
	})
}

var matrixAlgs = []routing.Algorithm{
	routing.ODR{}, routing.ODRMulti{}, routing.UDR{}, routing.UDRMulti{}, routing.FAR{},
}

func runE15(scale Scale) *Table {
	cases := []kd{{6, 2}}
	if scale == Full {
		cases = []kd{{6, 2}, {8, 2}, {4, 3}, {6, 3}, {5, 3}}
	}
	tb := &Table{
		ID:       "E15",
		Title:    "Routing matrix on linear placements: multiplicity vs maximum load",
		PaperRef: "extension of §6/§7",
		Columns:  []string{"d", "k", "routing", "E_max", "E_max/|P|", "mean paths/pair", "max paths/pair"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		for _, alg := range matrixAlgs {
			res := load.Compute(p, alg, load.Options{})
			meanPaths, maxPaths := 0.0, 0.0
			for _, src := range p.Nodes() {
				for _, dst := range p.Nodes() {
					if src == dst {
						continue
					}
					n := alg.PathCount(t, src, dst)
					meanPaths += n
					if n > maxPaths {
						maxPaths = n
					}
				}
			}
			meanPaths /= float64(p.Pairs())
			tb.AddRow(c.d, c.k, alg.Name(), res.Max, res.Max/float64(p.Size()), meanPaths, maxPaths)
		}
	}
	tb.AddNote("Within the dimension-ordered family, more paths monotonically lower E_max: ODR → ODR-multi → UDR → UDR-multi. FAR, despite having by far the most paths, is NOT uniformly better than UDR (e.g. d=2: 1.73 vs 1.5 at k=6): sampling uniformly over all interleavings concentrates probability on the middle of each p→q routing box (the multinomial peak), re-creating hotspots that UDR's endpoint-hugging staircase paths avoid. Path count alone is a poor proxy for load spreading.")
	return tb
}

func runE16(scale Scale) *Table {
	cases := []kd{{4, 2}, {6, 2}}
	if scale == Full {
		cases = []kd{{4, 2}, {6, 2}, {8, 2}, {4, 3}, {6, 3}}
	}
	tb := &Table{
		ID:       "E16",
		Title:    "Restricted (+)-tie-breaking vs both-direction ties, even k",
		PaperRef: "extension of §6",
		Columns: []string{"d", "k", "E_max ODR", "E_max ODR-multi", "gain",
			"E_max UDR", "E_max UDR-multi", "gain"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		odr := load.Compute(p, routing.ODR{}, load.Options{}).Max
		odrM := load.Compute(p, routing.ODRMulti{}, load.Options{}).Max
		udr := load.Compute(p, routing.UDR{}, load.Options{}).Max
		udrM := load.Compute(p, routing.UDRMulti{}, load.Options{}).Max
		tb.AddRow(c.d, c.k, odr, odrM, odr/odrM, udr, udrM, udr/udrM)
	}
	tb.AddNote("The paper's restricted rule (break k/2 ties toward +) concentrates tie traffic on one arc; allowing both directions halves the tie load. The effect is a constant factor ≤ 2 — the restricted rule costs something but never the linearity.")
	return tb
}

func runE17(scale Scale) *Table {
	cases := []kd{{6, 2}, {4, 3}}
	if scale == Full {
		cases = []kd{{6, 2}, {8, 2}, {4, 3}, {6, 3}}
	}
	tb := &Table{
		ID:       "E17",
		Title:    "Fully uniform vs single-dimension-uniform vs random placements",
		PaperRef: "extension of Theorem 1's remark",
		Columns: []string{"d", "k", "placement", "uniform dims", "dim-cut balanced",
			"dim-cut width", "sweep width", "E_max UDR", "E_max/|P|"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		specs := []placement.Spec{
			placement.Linear{C: 0},
			placement.LayerCluster{Dim: 0},
			placement.Random{Count: t.Nodes() / c.k, Seed: 17},
		}
		for _, spec := range specs {
			p := mustPlacement(spec, t)
			uniformDims := 0
			for dim := 0; dim < c.d; dim++ {
				if p.UniformAlong(dim) {
					uniformDims++
				}
			}
			cut := bisect.DimensionCut(p, 0)
			sweepCut := bisect.Sweep(p)
			res := load.Compute(p, routing.UDR{}, load.Options{})
			tb.AddRow(c.d, c.k, spec.Name(), uniformDims, cut.Balanced(), cut.Width(),
				sweepCut.Width(), res.Max, res.Max/float64(p.Size()))
		}
	}
	tb.AddNote("Uniformity along one dimension already yields the Theorem 1 cut (width 4k^{d-1}, balanced along that dimension); random placements need the sweep for balance. Clustered layers pay for their skew with a higher load constant, quantifying why the paper's constructions spread processors within layers too.")
	return tb
}

func runE18(scale Scale) *Table {
	type cse struct {
		k, d   int
		coeffs []int
	}
	cases := []cse{
		{5, 2, nil}, {5, 2, []int{1, 2}}, {5, 2, []int{2, 3}},
	}
	if scale == Full {
		cases = []cse{
			{5, 2, nil}, {5, 2, []int{1, 2}}, {5, 2, []int{2, 3}},
			{7, 2, nil}, {7, 2, []int{1, 3}}, {7, 2, []int{2, 5}},
			{5, 3, nil}, {5, 3, []int{1, 2, 3}}, {5, 3, []int{1, 1, 2}},
			{8, 2, nil}, {8, 2, []int{1, 3}}, {8, 2, []int{3, 5}}, {8, 2, []int{2, 3}},
		}
	}
	tb := &Table{
		ID:       "E18",
		Title:    "Linear placements with general coefficient vectors (Definition 10)",
		PaperRef: "extension of Definition 10",
		Columns:  []string{"d", "k", "coefficients", "|P|", "uniform", "E_max ODR", "E_max UDR", "UDR E_max/|P|"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0, Coeffs: c.coeffs}, t)
		odr := load.Compute(p, routing.ODR{}, load.Options{})
		udr := load.Compute(p, routing.UDR{}, load.Options{})
		label := "1,…,1"
		if c.coeffs != nil {
			label = trimBrackets(c.coeffs)
		}
		tb.AddRow(c.d, c.k, label, p.Size(), p.IsUniform(), odr.Max, udr.Max,
			udr.Max/float64(p.Size()))
	}
	tb.AddNote("Any coefficient vector with a unit entry gives the same size k^{d-1}; with *all* entries units the placement stays uniform and the load constants are unchanged up to torus symmetry — the choice c_i = 1 in the paper is without loss of generality. Vectors containing a non-unit entry (e.g. 2 mod 8) remain valid placements but lose per-dimension uniformity, and the ODR load reflects the skew.")
	return tb
}

func trimBrackets(xs []int) string {
	s := ""
	for i, x := range xs {
		if i > 0 {
			s += ","
		}
		s += itoa(x)
	}
	return s
}

func runE19(scale Scale) *Table {
	caps := []int{2, 64}
	inject := []int{0}
	if scale == Full {
		caps = []int{1, 2, 4, 8, 16, 32, 64, 0}
		inject = []int{0, 4}
	}
	tb := &Table{
		ID:       "E19",
		Title:    "Buffer capacity and injection pacing on T²₆ (0 cap = unbounded)",
		PaperRef: "extension of §1",
		Columns: []string{"placement", "queue cap", "inject interval", "cycles",
			"max queue", "deadlocked", "utilization"},
	}
	t := torus.New(6, 2)
	full := mustPlacement(placement.Full{}, t)
	lin := mustPlacement(placement.Linear{C: 0}, t)
	for _, p := range []*placement.Placement{lin, full} {
		name := "linear"
		if p.Size() == t.Nodes() {
			name = "full"
		}
		for _, iv := range inject {
			for _, qc := range caps {
				st := simnet.Run(simnet.Config{
					Placement: p, Algorithm: routing.ODR{}, Seed: 1,
					QueueCapacity: qc, InjectInterval: iv, MaxCycles: 200000,
				})
				tb.AddRow(name, qc, iv, st.Cycles, st.MaxQueueLen, st.Deadlocked, st.LinkUtilization)
			}
		}
	}
	tb.AddNote("The linear placement completes even with single-packet buffers; the fully populated torus deadlocks (classical store-and-forward cyclic buffer wait on the wrap rings) until buffers grow past its queue demand or injection is paced. Partial population buys not only linear load but bounded buffer pressure.")
	return tb
}
