package sweep

import (
	"torusnet/internal/bounds"
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/stats"
	"torusnet/internal/torus"
)

func mustPlacement(spec placement.Spec, t *torus.Torus) *placement.Placement {
	p, err := spec.Build(t)
	if err != nil {
		panic("sweep: " + err.Error())
	}
	return p
}

type kd struct{ k, d int }

func init() {
	register(Experiment{
		ID:       "E1",
		Title:    "Blaum lower bound (Eq. 1) vs measured E_max",
		PaperRef: "Eq. 1/6, Lemma 1 with |S|=1",
		Run:      runE1,
	})
	register(Experiment{
		ID:       "E5",
		Title:    "Improved §4 bound vs Blaum bound as d grows",
		PaperRef: "§4, c²k^{d−1}/8 vs (|P|−1)/2d",
		Run:      runE5,
	})
	register(Experiment{
		ID:       "E13",
		Title:    "Optimality gauge: E_max against the §4 lower bound",
		PaperRef: "§4 lower bound vs Theorems 2/4 placements",
		Run:      runE13,
	})
}

func runE1(scale Scale) *Table {
	cases := []kd{{6, 2}, {4, 3}}
	if scale == Full {
		cases = []kd{{4, 2}, {8, 2}, {12, 2}, {16, 2}, {20, 2}, {4, 3}, {6, 3}, {8, 3}, {10, 3}, {3, 4}, {4, 4}, {5, 4}, {3, 5}, {4, 5}}
	}
	tb := &Table{
		ID:       "E1",
		Title:    "Blaum lower bound (Eq. 1) vs measured E_max, linear placement",
		PaperRef: "Eq. 1/6",
		Columns:  []string{"d", "k", "|P|", "Blaum bound", "E_max ODR", "ODR/bound", "E_max UDR", "UDR/bound"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		blaum := bounds.Blaum(p.Size(), c.d)
		odr := load.Compute(p, routing.ODR{}, load.Options{})
		udr := load.Compute(p, routing.UDR{}, load.Options{})
		tb.AddRow(c.d, c.k, p.Size(), blaum, odr.Max, odr.Max/blaum, udr.Max, udr.Max/blaum)
	}
	tb.AddNote("Both algorithms respect the bound everywhere; UDR sits closer to it (ratio → d for ODR's funneling constant 1/2 vs Blaum's 1/2d).")
	return tb
}

func runE5(scale Scale) *Table {
	cases := []kd{{4, 2}, {4, 3}, {4, 4}, {4, 5}}
	if scale == Full {
		cases = []kd{{4, 2}, {4, 3}, {4, 4}, {4, 5}, {4, 6}, {4, 7}, {3, 6}, {3, 8}}
	}
	tb := &Table{
		ID:       "E5",
		Title:    "Improved dimension-independent bound vs Blaum bound (linear placement, c=1)",
		PaperRef: "§4",
		Columns:  []string{"d", "k", "|P|=k^{d-1}", "Blaum=(|P|-1)/2d", "improved=k^{d-1}/8", "improved/Blaum"},
	}
	for _, c := range cases {
		sizeP, err := torus.Volume(c.k, c.d-1)
		if err != nil {
			panic("sweep: E5 case exceeds torus.MaxNodes: " + err.Error())
		}
		blaum := bounds.Blaum(sizeP, c.d)
		improved := bounds.Improved(1, c.k, c.d)
		tb.AddRow(c.d, c.k, sizeP, blaum, improved, improved/blaum)
	}
	tb.AddNote("The Blaum bound decays with d (division by 2d); the §4 bound does not. Crossover at 2d > 8, i.e. d ≥ 5, exactly as the paper argues.")
	return tb
}

func runE13(scale Scale) *Table {
	cases := []kd{{6, 2}, {4, 3}}
	if scale == Full {
		cases = []kd{{4, 2}, {8, 2}, {12, 2}, {16, 2}, {4, 3}, {6, 3}, {8, 3}, {10, 3}, {3, 4}, {4, 4}, {3, 5}}
	}
	tb := &Table{
		ID:       "E13",
		Title:    "Optimality: measured E_max over the §4 lower bound k^{d-1}/8",
		PaperRef: "§4 + Theorems 2/4",
		Columns:  []string{"d", "k", "algorithm", "E_max", "k^{d-1}/8", "ratio"},
	}
	var ratiosODR, ratiosUDR []float64
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		lb := bounds.Improved(1, c.k, c.d)
		for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}} {
			res := load.Compute(p, alg, load.Options{})
			ratio := res.Max / lb
			tb.AddRow(c.d, c.k, alg.Name(), res.Max, lb, ratio)
			if alg.Name() == "ODR" {
				ratiosODR = append(ratiosODR, ratio)
			} else {
				ratiosUDR = append(ratiosUDR, ratio)
			}
		}
	}
	tb.AddNote("Bounded ratios certify the linear placement optimal: E_max = Θ(k^{d-1}) matches the Ω(k^{d-1}) bound. ODR ratio → 4 (funneling constant 1/2 over bound constant 1/8); UDR mean ratio %.3g.",
		stats.Summarize(ratiosUDR).Mean)
	return tb
}
