package sweep

import (
	"strings"
	"testing"
)

// Golden regression tests: pin the headline scientific numbers of the
// reproduction so an engine change that silently alters a result fails
// loudly. Values are quick-scale rows; full-scale tables live in results/.

func findRow(t *testing.T, tb *Table, prefix ...string) []string {
	t.Helper()
	for _, row := range tb.Rows {
		if len(row) < len(prefix) {
			continue
		}
		match := true
		for i, want := range prefix {
			if row[i] != want {
				match = false
				break
			}
		}
		if match {
			return row
		}
	}
	t.Fatalf("no row with prefix %v in %s:\n%v", prefix, tb.ID, tb.Rows)
	return nil
}

func TestGoldenE6ODRNumbers(t *testing.T) {
	e, _ := ByID("E6")
	tb := e.Run(Quick)
	// T^3_4: measured E_max 8 (funneling k^{d-1}/2), interior max 3 (§6.1).
	row := findRow(t, tb, "3", "4")
	if row[3] != "8" || row[4] != "8" || row[5] != "3" || row[6] != "3" {
		t.Errorf("E6 T^3_4 row drifted: %v", row)
	}
	// T^3_5 (odd k): measured 10, §6.1 interior 3.
	row = findRow(t, tb, "3", "5")
	if row[3] != "10" || row[5] != "3" {
		t.Errorf("E6 T^3_5 row drifted: %v", row)
	}
}

func TestGoldenE2FullTorusNumbers(t *testing.T) {
	e, _ := ByID("E2")
	tb := e.Run(Quick)
	// T^2_8 fully populated: E_max 80 > bound 64.
	row := findRow(t, tb, "2", "8")
	if row[3] != "80" || row[4] != "64" {
		t.Errorf("E2 T^2_8 row drifted: %v", row)
	}
}

func TestGoldenE10Figure1Numbers(t *testing.T) {
	e, _ := ByID("E10")
	tb := e.Run(Quick)
	// ODR: 1 path/pair, 12 of 36 links; UDR: 2 paths/pair, 24 links.
	odr := findRow(t, tb, "ODR")
	if odr[1] != "1" || odr[2] != "12" || odr[3] != "36" {
		t.Errorf("E10 ODR row drifted: %v", odr)
	}
	udr := findRow(t, tb, "UDR")
	if udr[1] != "2" || udr[2] != "24" {
		t.Errorf("E10 UDR row drifted: %v", udr)
	}
}

func TestGoldenE13OptimalityRatios(t *testing.T) {
	e, _ := ByID("E13")
	tb := e.Run(Quick)
	// d=2 k=6: ODR ratio exactly 4; UDR exactly 2.
	odr := findRow(t, tb, "2", "6", "ODR")
	if odr[5] != "4" {
		t.Errorf("E13 ODR ratio drifted: %v", odr)
	}
	udr := findRow(t, tb, "2", "6", "UDR")
	if udr[5] != "2" {
		t.Errorf("E13 UDR ratio drifted: %v", udr)
	}
}

func TestGoldenE4Theorem1Width(t *testing.T) {
	e, _ := ByID("E4")
	tb := e.Run(Quick)
	for _, row := range tb.Rows {
		if row[4] != row[5] {
			t.Errorf("E4: measured width %s != Theorem 1 value %s in row %v", row[4], row[5], row)
		}
	}
}

func TestGoldenE11UDRZeroCritical(t *testing.T) {
	e, _ := ByID("E11")
	tb := e.Run(Quick)
	for _, row := range tb.Rows {
		if row[2] == "UDR" && row[4] != "0" {
			t.Errorf("E11: UDR should have zero vulnerable pairs on linear placements: %v", row)
		}
		if row[2] == "ODR" && row[4] != row[5] {
			t.Errorf("E11: ODR should have every pair vulnerable: %v", row)
		}
	}
}

func TestGoldenE20WormholeOutcomes(t *testing.T) {
	e, _ := ByID("E20")
	tb := e.Run(Quick)
	outcomes := map[string]string{}
	for _, row := range tb.Rows {
		key := row[1] + "/" + row[2] + "/V=" + row[3]
		outcomes[key] = row[8]
	}
	want := map[string]string{
		"full/ODR/V=1":   "DEADLOCK",
		"full/ODR/V=2":   "completed",
		"full/UDR/V=2":   "DEADLOCK",
		"linear/ODR/V=1": "completed",
		"linear/ODR/V=2": "completed",
	}
	for key, outcome := range want {
		if outcomes[key] != outcome {
			t.Errorf("E20 %s: outcome %q, want %q", key, outcomes[key], outcome)
		}
	}
}

func TestGoldenNotesMentionKeyFindings(t *testing.T) {
	// The documented reproduction findings must stay in the experiment
	// notes (they are what EXPERIMENTS.md cites).
	e6, _ := ByID("E6")
	if tb := e6.Run(Quick); !strings.Contains(strings.Join(tb.Notes, " "), "interior") {
		t.Error("E6 note lost the interior-dimension finding")
	}
	e15, _ := ByID("E15")
	if tb := e15.Run(Quick); !strings.Contains(strings.Join(tb.Notes, " "), "multinomial") {
		t.Error("E15 note lost the FAR concentration finding")
	}
}
