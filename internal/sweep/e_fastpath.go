package sweep

import (
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E31",
		Title:    "Symmetry fast path: engine cross-check and orbit statistics",
		PaperRef: "Theorem 2 mechanism: translation invariance of linear placements",
		Run:      runE31,
	})
}

// runE31 exercises the load engine's translation fast path across the
// placement/algorithm matrix: for symmetric placements it reports the
// stabilizer size, the orbit count, and the maximum per-edge divergence
// between the symmetry and generic engines; unstructured placements must
// show the automatic fallback. Workers is pinned to 1 so the float
// summation order — and with it the divergence column — is machine-
// independent.
func runE31(scale Scale) *Table {
	type cse struct {
		k, d int
		spec placement.Spec
		alg  routing.Algorithm
	}
	cases := []cse{
		{4, 2, placement.Linear{C: 0}, routing.ODR{}},
		{5, 2, placement.Linear{C: 1}, routing.UDR{}},
		{4, 2, placement.MultipleLinear{T: 2}, routing.ODRMulti{}},
		{4, 2, placement.Random{Count: 6, Seed: 1}, routing.ODR{}},
		{4, 2, placement.Linear{C: 0}, routing.MeshODR{}},
	}
	if scale == Full {
		cases = append(cases,
			cse{8, 2, placement.Linear{C: 0}, routing.ODR{}},
			cse{6, 3, placement.Linear{C: 0}, routing.ODRMulti{}},
			cse{8, 3, placement.Linear{C: 0}, routing.ODR{}},
			cse{6, 3, placement.MultipleLinear{T: 3}, routing.UDRMulti{}},
			cse{16, 3, placement.Linear{C: 0}, routing.ODR{}},
			cse{10, 2, placement.Random{Count: 20, Seed: 7}, routing.UDR{}},
		)
	}
	tb := &Table{
		ID:       "E31",
		Title:    "Translation fast path vs generic engine: dispatch and divergence",
		PaperRef: "Theorem 2 / §6.1 symmetry argument",
		Columns: []string{"d", "k", "placement", "algorithm", "|P|", "|stab|", "orbits",
			"engine", "max|fast-generic|", "agree"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(c.spec, t)
		stab := p.TranslationStabilizer()
		orbits := 0
		if len(stab) > 0 {
			orbits = p.Size() / len(stab)
		}
		fast := load.Compute(p, c.alg, load.Options{Workers: 1})
		generic := load.Compute(p, c.alg, load.Options{Workers: 1, FastPath: load.FastPathOff})
		div := load.MaxEngineDivergence(fast, generic)
		agree := "ok"
		if div > 1e-9 {
			agree = "FAIL"
		}
		tb.AddRow(c.d, c.k, p.Name(), c.alg.Name(), p.Size(), len(stab), orbits,
			fast.Engine, div, agree)
	}
	tb.AddNote("Linear placements are closed under the k^{d−1} translations with zero coordinate sum, so one orbit covers every source and routing walks drop from |P|² to |P| pairs. Random placements (trivial stabilizer) and MeshODR (not translation-equivariant: the array metric distinguishes wrap links) dispatch to the generic engine automatically; divergence beyond float summation order is a soundness failure.")
	return tb
}
