package sweep

import (
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/simnet"
	"torusnet/internal/stats"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E12",
		Title:    "Cycle-level complete exchange: full torus vs linear placement",
		PaperRef: "§1 throughput motivation, executed on the simulator",
		Run:      runE12,
	})
}

func runE12(scale Scale) *Table {
	ks := []int{4, 6}
	if scale == Full {
		ks = []int{4, 6, 8, 10, 12, 14, 16}
	}
	tb := &Table{
		ID:       "E12",
		Title:    "Store-and-forward simulation of one complete exchange (d=2)",
		PaperRef: "§1",
		Columns: []string{"placement", "routing", "k", "|P|", "packets", "cycles",
			"max link traffic", "cycles/|P|", "throughput pkts/cycle"},
	}
	type cfg struct {
		name string
		spec func(k int) placement.Spec
		alg  routing.Algorithm
	}
	cfgs := []cfg{
		{"full", func(int) placement.Spec { return placement.Full{} }, routing.ODR{}},
		{"linear", func(int) placement.Spec { return placement.Linear{C: 0} }, routing.ODR{}},
		{"linear", func(int) placement.Spec { return placement.Linear{C: 0} }, routing.UDR{}},
	}
	perProc := map[string][]float64{}
	kf := []float64{}
	for _, k := range ks {
		t := torus.New(k, 2)
		kf = append(kf, float64(k))
		for _, c := range cfgs {
			p := mustPlacement(c.spec(k), t)
			st := simnet.Run(simnet.Config{Placement: p, Algorithm: c.alg, Seed: 1})
			norm := float64(st.Cycles) / float64(p.Size())
			tb.AddRow(c.name, c.alg.Name(), k, p.Size(), st.Packets, st.Cycles,
				st.MaxLinkTraffic, norm, st.Throughput())
			key := c.name + "/" + c.alg.Name()
			perProc[key] = append(perProc[key], norm)
		}
	}
	fullTrend := stats.GrowthExponent(kf, perProc["full/ODR"])
	linTrend := stats.GrowthExponent(kf, perProc["linear/ODR"])
	tb.AddNote("Cycles per processor grow like k^%.2f on the full torus versus k^%.2f on the linear placement: the simulator reproduces the §1 separation — completion time per injecting processor degrades superlinearly only when every node injects.",
		fullTrend, linTrend)
	return tb
}
