package sweep

import (
	"torusnet/internal/cover"
	"torusnet/internal/faults"
	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func init() {
	register(Experiment{
		ID:       "E22",
		Title:    "Traffic patterns beyond complete exchange (transpose, shift, hot-spot)",
		PaperRef: "extension of §1's motivating applications",
		Run:      runE22,
	})
	register(Experiment{
		ID:       "E23",
		Title:    "Resource-placement metrics: covering radius vs load optimality",
		PaperRef: "extension toward refs [3]/[12]",
		Run:      runE23,
	})
	register(Experiment{
		ID:       "E24",
		Title:    "Load under link failures: redistribution and rerouting",
		PaperRef: "extension of §7",
		Run:      runE24,
	})
}

func runE22(scale Scale) *Table {
	cases := []kd{{6, 2}}
	if scale == Full {
		cases = []kd{{6, 2}, {8, 2}, {5, 3}, {6, 3}}
	}
	tb := &Table{
		ID:       "E22",
		Title:    "Pattern loads on linear placements under UDR",
		PaperRef: "extension of §1",
		Columns:  []string{"d", "k", "pattern", "demands", "E_max", "mean load", "E_max/|P|"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		zeroSum := make([]int, c.d)
		zeroSum[0] = 1
		zeroSum[c.d-1] += c.k - 1 // Σ ≡ 0: the shift stays on the placement
		patterns := []load.Pattern{
			load.CompleteExchange{},
			load.Transpose{},
			load.Shift{Offset: zeroSum},
			load.HotSpot{HotIndex: 0},
			load.RandomPairs{Count: p.Pairs() / 4, Seed: 11},
		}
		for _, pat := range patterns {
			res := load.ComputePattern(p, pat, routing.UDR{}, load.Options{})
			demands := len(pat.Demands(p))
			tb.AddRow(c.d, c.k, pat.Name(), demands, res.Max, res.Mean(), res.Max/float64(p.Size()))
		}
	}
	tb.AddNote("Linear placements are closed under coordinate reversal and zero-sum shifts (the residue Σp_i is invariant), so the paper's motivating applications — matrix transposition and neighbor exchanges — run entirely inside the placement with permutation-sized loads. The hot-spot column shows the (|P|−1)/2d funnel floor every routing obeys.")
	return tb
}

func runE23(scale Scale) *Table {
	cases := []kd{{6, 2}}
	if scale == Full {
		cases = []kd{{6, 2}, {8, 2}, {5, 3}, {6, 3}}
	}
	tb := &Table{
		ID:       "E23",
		Title:    "Covering radius, packing distance, and load per processor",
		PaperRef: "extension toward refs [3]/[12]",
		Columns: []string{"d", "k", "placement", "|P|", "covering radius", "packing distance",
			"mean dist to placement", "E_max UDR / |P|"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		specs := []placement.Spec{
			placement.Linear{C: 0},
			placement.MultipleLinear{T: 2},
			placement.Random{Count: t.Nodes() / c.k, Seed: 23},
			placement.LayerCluster{Dim: 0},
		}
		for _, spec := range specs {
			p := mustPlacement(spec, t)
			rep := cover.Analyze(p)
			res := load.Compute(p, routing.UDR{}, load.Options{})
			tb.AddRow(c.d, c.k, spec.Name(), p.Size(), rep.CoveringRadius, rep.PackingDistance,
				rep.MeanDistance, res.Max/float64(p.Size()))
		}
	}
	tb.AddNote("Load optimality and coverage optimality diverge: the linear placement (best load constant) concentrates on one residue class and covers worst (radius ⌊k/2⌋ — closed form, residues change ±1 per hop), while random placements of the same size usually cover better but carry higher load. A placement cannot be judged by one metric; the paper optimizes load, refs [3]/[12] optimize coverage.")
	return tb
}

func runE24(scale Scale) *Table {
	fails := []int{0, 2, 8}
	cases := []kd{{5, 2}}
	if scale == Full {
		fails = []int{0, 1, 2, 4, 8, 16}
		cases = []kd{{6, 2}, {5, 3}}
	}
	tb := &Table{
		ID:       "E24",
		Title:    "Degraded-network load (linear placement, failures seeded)",
		PaperRef: "extension of §7",
		Columns: []string{"d", "k", "routing", "failed links", "E_max", "vs clean",
			"rerouted pairs", "detoured", "broken pairs"},
	}
	for _, c := range cases {
		t := torus.New(c.k, c.d)
		p := mustPlacement(placement.Linear{C: 0}, t)
		for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}} {
			clean := load.Compute(p, alg, load.Options{})
			for _, f := range fails {
				failed := faults.RandomFailures(t, f, 77)
				deg := faults.LoadWithFailures(p, alg, failed)
				tb.AddRow(c.d, c.k, alg.Name(), f, deg.Load.Max, deg.Load.Max/clean.Max,
					deg.ReroutedPairs, deg.Detoured, deg.BrokenPairs)
			}
		}
	}
	tb.AddNote("Failures degrade gracefully: surviving UDR routes absorb traffic with E_max inflating smoothly, and the BFS fallback (needed almost exclusively by single-path ODR) adds detours without disconnecting anything until a processor is fully isolated. UDR needs rerouting far less often than ODR — §7's argument, extended to the post-failure load picture.")
	return tb
}
