package torus

import "fmt"

// Automorphism is a graph automorphism of T^d_k from the natural symmetry
// group: a permutation of the dimensions, a per-dimension reflection, and a
// translation, applied in that order:
//
//	φ(a)_j = offset_j + sign_j · a_{perm_j}   (mod k)
//
// These generate the full symmetry group (Z_k ⋊ Z_2) ≀ S_d of the torus.
// Automorphisms map edges to edges, so any quantity defined purely by the
// graph structure (distances, path counts, loads of symmetric placements)
// is invariant under them — the cross-check used by the load tests.
type Automorphism struct {
	t      *Torus
	perm   []int  // image dimension j draws from source dimension perm[j]
	flip   []bool // reflect coordinate of image dimension j
	offset []int  // translation added last
}

// NewAutomorphism validates and builds an automorphism. perm must be a
// permutation of 0..d-1; flip and offset must have length d (nil means
// identity / zero).
func (t *Torus) NewAutomorphism(perm []int, flip []bool, offset []int) (*Automorphism, error) {
	d := t.d
	if perm == nil {
		perm = make([]int, d)
		for j := range perm {
			perm[j] = j
		}
	}
	if len(perm) != d {
		return nil, fmt.Errorf("torus: permutation arity %d, want %d", len(perm), d)
	}
	seen := make([]bool, d)
	for _, src := range perm {
		if src < 0 || src >= d || seen[src] {
			return nil, fmt.Errorf("torus: %v is not a permutation of 0..%d", perm, d-1)
		}
		seen[src] = true
	}
	if flip == nil {
		flip = make([]bool, d)
	}
	if len(flip) != d {
		return nil, fmt.Errorf("torus: flip arity %d, want %d", len(flip), d)
	}
	if offset == nil {
		offset = make([]int, d)
	}
	if len(offset) != d {
		return nil, fmt.Errorf("torus: offset arity %d, want %d", len(offset), d)
	}
	return &Automorphism{
		t:      t,
		perm:   append([]int(nil), perm...),
		flip:   append([]bool(nil), flip...),
		offset: append([]int(nil), offset...),
	}, nil
}

// Node maps a node through the automorphism.
func (a *Automorphism) Node(u Node) Node {
	t := a.t
	idx := 0
	for j := 0; j < t.d; j++ {
		c := t.Coord(u, a.perm[j])
		if a.flip[j] {
			c = Mod(t.k-c, t.k)
		}
		c = Mod(c+a.offset[j], t.k)
		idx += c * t.strides[j]
	}
	return Node(idx)
}

// Edge maps a directed edge through the automorphism: the image edge leaves
// the image of the source along the permuted dimension, with direction
// reversed when that dimension is reflected.
func (a *Automorphism) Edge(e Edge) Edge {
	t := a.t
	srcDim := t.EdgeDim(e)
	// Find the image dimension that draws from srcDim.
	imgDim := -1
	for j, s := range a.perm {
		if s == srcDim {
			imgDim = j
			break
		}
	}
	dir := t.EdgeDir(e)
	if a.flip[imgDim] {
		dir = dir.Opposite()
	}
	return t.EdgeFrom(a.Node(t.EdgeSource(e)), imgDim, dir)
}

// Verify checks the automorphism property on every edge: adjacency and
// dimension structure are preserved. Intended for tests.
func (a *Automorphism) Verify() error {
	t := a.t
	var err error
	t.ForEachEdge(func(e Edge) {
		if err != nil {
			return
		}
		img := a.Edge(e)
		if t.EdgeSource(img) != a.Node(t.EdgeSource(e)) {
			err = fmt.Errorf("torus: automorphism breaks source of edge %d", e)
			return
		}
		if t.EdgeTarget(img) != a.Node(t.EdgeTarget(e)) {
			err = fmt.Errorf("torus: automorphism breaks target of edge %d", e)
		}
	})
	return err
}
