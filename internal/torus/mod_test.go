package torus

import "testing"

func TestMod(t *testing.T) {
	cases := []struct{ a, k, want int }{
		{0, 5, 0},
		{4, 5, 4},
		{5, 5, 0},
		{7, 5, 2},
		{-1, 5, 4},
		{-5, 5, 0},
		{-7, 5, 3},
		{-13, 4, 3},
		{13, 4, 1},
		{-1, 2, 1},
	}
	for _, c := range cases {
		if got := Mod(c.a, c.k); got != c.want {
			t.Errorf("Mod(%d, %d) = %d, want %d", c.a, c.k, got, c.want)
		}
	}
}

func TestModPanicsOnNonPositiveModulus(t *testing.T) {
	for _, k := range []int{0, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Mod(1, %d) did not panic", k)
				}
			}()
			Mod(1, k)
		}()
	}
}

func TestWrapCoordMatchesNodeAt(t *testing.T) {
	tr := New(5, 2)
	for _, c := range []int{-11, -5, -1, 0, 4, 5, 23} {
		u := tr.NodeAt([]int{c, 0})
		if got, want := tr.Coord(u, 0), tr.WrapCoord(c); got != want {
			t.Errorf("NodeAt wraps %d to %d, WrapCoord gives %d", c, got, want)
		}
	}
}

func TestTranslateNegativeOffset(t *testing.T) {
	tr := New(4, 3)
	u := tr.NodeAt([]int{1, 2, 3})
	got := tr.Translate(u, []int{-3, -7, 5})
	want := tr.NodeAt([]int{1 - 3, 2 - 7, 3 + 5})
	if got != want {
		t.Errorf("Translate with negative offset: got %v, want %v", tr.Coords(got), tr.Coords(want))
	}
}

func TestSubtorusNegativeValue(t *testing.T) {
	tr := New(5, 2)
	neg := tr.SubtorusNodes(Subtorus{Dim: 0, Value: -2})
	pos := tr.SubtorusNodes(Subtorus{Dim: 0, Value: 3})
	if len(neg) != len(pos) {
		t.Fatalf("subtorus sizes differ: %d vs %d", len(neg), len(pos))
	}
	for i := range neg {
		if neg[i] != pos[i] {
			t.Fatalf("subtorus value -2 and 3 disagree at %d: %v vs %v", i, neg[i], pos[i])
		}
	}
}

func TestAutomorphismNegativeOffset(t *testing.T) {
	tr := New(5, 2)
	a, err := tr.NewAutomorphism(nil, nil, []int{-1, -7})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
	u := tr.NodeAt([]int{0, 0})
	if got, want := a.Node(u), tr.NodeAt([]int{-1, -7}); got != want {
		t.Errorf("negative-offset automorphism maps origin to %v, want %v", tr.Coords(got), tr.Coords(want))
	}
}

func TestVolume(t *testing.T) {
	cases := []struct {
		k, d, want int
		ok         bool
	}{
		{2, 1, 2, true},
		{5, 3, 125, true},
		{2, 28, 1 << 28, true},
		{2, 29, 0, false},
		{1 << 14, 2, 1 << 28, true},
		{100000, 3, 0, false},
		{3, 0, 1, true},
		{0, 2, 0, false},
		{5, -1, 0, false},
	}
	for _, c := range cases {
		got, err := Volume(c.k, c.d)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("Volume(%d, %d) = %d, %v; want %d", c.k, c.d, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("Volume(%d, %d) = %d, want overflow error", c.k, c.d, got)
		}
	}
}
