package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBasicProperties(t *testing.T) {
	cases := []struct{ k, d, nodes, edges int }{
		{2, 1, 2, 4},
		{3, 1, 3, 6},
		{3, 2, 9, 36},
		{4, 2, 16, 64},
		{3, 3, 27, 162},
		{8, 3, 512, 3072},
		{5, 4, 625, 5000},
	}
	for _, c := range cases {
		tr := New(c.k, c.d)
		if tr.Nodes() != c.nodes {
			t.Errorf("T^%d_%d: Nodes() = %d, want %d", c.d, c.k, tr.Nodes(), c.nodes)
		}
		if tr.Edges() != c.edges {
			t.Errorf("T^%d_%d: Edges() = %d, want %d", c.d, c.k, tr.Edges(), c.edges)
		}
		if tr.K() != c.k || tr.D() != c.d {
			t.Errorf("T^%d_%d: K/D mismatch", c.d, c.k)
		}
	}
}

func TestCheckRejectsBadParameters(t *testing.T) {
	for _, c := range []struct{ k, d int }{{1, 2}, {0, 1}, {-3, 2}, {4, 0}, {5, -1}, {2, 40}, {1 << 20, 3}} {
		if err := Check(c.k, c.d); err == nil {
			t.Errorf("Check(%d, %d) should fail", c.k, c.d)
		}
	}
	for _, c := range []struct{ k, d int }{{2, 1}, {3, 2}, {16, 4}, {2, 20}} {
		if err := Check(c.k, c.d); err != nil {
			t.Errorf("Check(%d, %d) unexpectedly failed: %v", c.k, c.d, err)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(1, 1) should panic")
		}
	}()
	New(1, 1)
}

func TestCoordRoundTrip(t *testing.T) {
	tr := New(5, 3)
	for u := Node(0); int(u) < tr.Nodes(); u++ {
		if got := tr.NodeAt(tr.Coords(u)); got != u {
			t.Fatalf("round trip failed: node %d -> %v -> %d", u, tr.Coords(u), got)
		}
	}
}

func TestNodeAtReducesModK(t *testing.T) {
	tr := New(4, 2)
	if tr.NodeAt([]int{5, -1}) != tr.NodeAt([]int{1, 3}) {
		t.Error("NodeAt should reduce coordinates modulo k")
	}
	if tr.NodeAt([]int{-4, 8}) != tr.NodeAt([]int{0, 0}) {
		t.Error("NodeAt should reduce negative and large coordinates")
	}
}

func TestNodeAtPanicsOnWrongLength(t *testing.T) {
	tr := New(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("NodeAt with wrong arity should panic")
		}
	}()
	tr.NodeAt([]int{1, 2, 3})
}

func TestStepWrapsAround(t *testing.T) {
	tr := New(4, 2)
	u := tr.NodeAt([]int{3, 0})
	if got := tr.Step(u, 0, Plus); got != tr.NodeAt([]int{0, 0}) {
		t.Errorf("Step +: got %v", tr.Coords(got))
	}
	if got := tr.Step(tr.NodeAt([]int{0, 2}), 0, Minus); got != tr.NodeAt([]int{3, 2}) {
		t.Errorf("Step -: got %v", tr.Coords(got))
	}
}

func TestStepInverse(t *testing.T) {
	tr := New(5, 3)
	tr.ForEachNode(func(u Node) {
		for j := 0; j < tr.D(); j++ {
			if tr.Step(tr.Step(u, j, Plus), j, Minus) != u {
				t.Fatalf("Step is not invertible at node %d dim %d", u, j)
			}
		}
	})
}

func TestEdgeEncodingRoundTrip(t *testing.T) {
	tr := New(4, 3)
	count := 0
	tr.ForEachEdge(func(e Edge) {
		count++
		u, j, dir := tr.EdgeSource(e), tr.EdgeDim(e), tr.EdgeDir(e)
		if tr.EdgeFrom(u, j, dir) != e {
			t.Fatalf("edge %d does not round trip", e)
		}
		if tr.EdgeTarget(e) != tr.Step(u, j, dir) {
			t.Fatalf("edge %d target mismatch", e)
		}
	})
	if count != tr.Edges() {
		t.Fatalf("ForEachEdge visited %d edges, want %d", count, tr.Edges())
	}
}

func TestReverseIsInvolution(t *testing.T) {
	tr := New(5, 2)
	tr.ForEachEdge(func(e Edge) {
		r := tr.Reverse(e)
		if tr.Reverse(r) != e {
			t.Fatalf("Reverse(Reverse(%d)) != %d", e, e)
		}
		if tr.EdgeSource(r) != tr.EdgeTarget(e) || tr.EdgeTarget(r) != tr.EdgeSource(e) {
			t.Fatalf("Reverse(%d) endpoints wrong", e)
		}
	})
}

func TestEveryNodeHas2DOutEdges(t *testing.T) {
	tr := New(3, 3)
	outdeg := make(map[Node]int)
	tr.ForEachEdge(func(e Edge) { outdeg[tr.EdgeSource(e)]++ })
	tr.ForEachNode(func(u Node) {
		if outdeg[u] != 2*tr.D() {
			t.Fatalf("node %d has out-degree %d, want %d", u, outdeg[u], 2*tr.D())
		}
	})
}

func TestCyclicDistance(t *testing.T) {
	cases := []struct{ i, j, k, want int }{
		{0, 0, 5, 0},
		{0, 1, 5, 1},
		{0, 4, 5, 1},
		{0, 2, 5, 2},
		{1, 4, 5, 2},
		{0, 3, 6, 3},
		{2, 5, 6, 3},
		{0, 4, 8, 4},
		{7, 1, 8, 2},
	}
	for _, c := range cases {
		if got := CyclicDistance(c.i, c.j, c.k); got != c.want {
			t.Errorf("CyclicDistance(%d,%d,%d) = %d, want %d", c.i, c.j, c.k, got, c.want)
		}
	}
}

func TestCyclicDistanceSymmetric(t *testing.T) {
	fn := func(i, j uint8, kRaw uint8) bool {
		k := int(kRaw%30) + 2
		a, b := int(i)%k, int(j)%k
		return CyclicDistance(a, b, k) == CyclicDistance(b, a, k)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestCyclicDistanceTriangle(t *testing.T) {
	fn := func(i, j, l uint8, kRaw uint8) bool {
		k := int(kRaw%30) + 2
		a, b, c := int(i)%k, int(j)%k, int(l)%k
		return CyclicDistance(a, c, k) <= CyclicDistance(a, b, k)+CyclicDistance(b, c, k)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestCoordDelta(t *testing.T) {
	cases := []struct {
		p, q, k int
		want    Delta
	}{
		{0, 0, 5, Delta{0, Plus, false}},
		{0, 2, 5, Delta{2, Plus, false}},
		{0, 3, 5, Delta{2, Minus, false}},
		{0, 2, 4, Delta{2, Plus, true}},
		{1, 3, 4, Delta{2, Plus, true}},
		{3, 1, 4, Delta{2, Plus, true}},
		{0, 7, 8, Delta{1, Minus, false}},
		{6, 1, 8, Delta{3, Plus, false}},
	}
	for _, c := range cases {
		if got := CoordDelta(c.p, c.q, c.k); got != c.want {
			t.Errorf("CoordDelta(%d,%d,%d) = %+v, want %+v", c.p, c.q, c.k, got, c.want)
		}
	}
}

func TestCoordDeltaMatchesCyclicDistance(t *testing.T) {
	fn := func(p, q uint8, kRaw uint8) bool {
		k := int(kRaw%30) + 2
		a, b := int(p)%k, int(q)%k
		del := CoordDelta(a, b, k)
		if del.Dist != CyclicDistance(a, b, k) {
			return false
		}
		// Walking Dist steps in direction Dir must land on b.
		c := a
		for s := 0; s < del.Dist; s++ {
			if del.Dir == Plus {
				c = (c + 1) % k
			} else {
				c = (c - 1 + k) % k
			}
		}
		return c == b
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestCoordDeltaTieOnlyWhenHalfway(t *testing.T) {
	for k := 2; k <= 12; k++ {
		for p := 0; p < k; p++ {
			for q := 0; q < k; q++ {
				del := CoordDelta(p, q, k)
				wantTie := k%2 == 0 && CyclicDistance(p, q, k) == k/2
				if del.Tie != wantTie {
					t.Fatalf("CoordDelta(%d,%d,%d).Tie = %v, want %v", p, q, k, del.Tie, wantTie)
				}
			}
		}
	}
}

func TestLeeDistanceAgainstBFS(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 2}, {3, 3}, {4, 3}} {
		tr := New(c.k, c.d)
		dist := bfsAllDistances(tr, 0)
		tr.ForEachNode(func(v Node) {
			if got := tr.LeeDistance(0, v); got != dist[v] {
				t.Fatalf("T^%d_%d: LeeDistance(0,%d)=%d, BFS=%d", c.d, c.k, v, got, dist[v])
			}
		})
	}
}

func bfsAllDistances(tr *Torus, src Node) []int {
	dist := make([]int, tr.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []Node{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for j := 0; j < tr.D(); j++ {
			for _, dir := range []Direction{Plus, Minus} {
				v := tr.Step(u, j, dir)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
			}
		}
	}
	return dist
}

func TestLeeDistanceSymmetric(t *testing.T) {
	tr := New(6, 3)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		u := Node(rng.Intn(tr.Nodes()))
		v := Node(rng.Intn(tr.Nodes()))
		if tr.LeeDistance(u, v) != tr.LeeDistance(v, u) {
			t.Fatalf("LeeDistance(%d,%d) not symmetric", u, v)
		}
	}
}

func TestDeltasCountsDifferingDims(t *testing.T) {
	tr := New(5, 3)
	dst := make([]Delta, 3)
	u := tr.NodeAt([]int{1, 2, 3})
	v := tr.NodeAt([]int{1, 4, 0})
	if got := tr.Deltas(u, v, dst); got != 2 {
		t.Errorf("Deltas reported %d differing dims, want 2", got)
	}
	if dst[0].Dist != 0 || dst[1].Dist != 2 || dst[2].Dist != 2 {
		t.Errorf("unexpected deltas: %+v", dst)
	}
}

func TestMinimalPathCount(t *testing.T) {
	tr := New(5, 2)
	u := tr.NodeAt([]int{0, 0})
	// Distance (2,1): 3 steps, 3!/2!1! = 3 paths.
	if got := tr.MinimalPathCount(u, tr.NodeAt([]int{2, 1})); got != 3 {
		t.Errorf("path count (2,1) = %v, want 3", got)
	}
	// Same node: exactly one (empty) path.
	if got := tr.MinimalPathCount(u, u); got != 1 {
		t.Errorf("path count to self = %v, want 1", got)
	}
	// Tie case on even torus: T^1_4 from 0 to 2 has two shortest paths.
	tr4 := New(4, 1)
	if got := tr4.MinimalPathCount(0, 2); got != 2 {
		t.Errorf("tie path count = %v, want 2", got)
	}
	// Two tied dimensions on T^2_4 from (0,0) to (2,2): 4 direction choices
	// times 4!/2!2! = 6 interleavings = 24.
	tr44 := New(4, 2)
	if got := tr44.MinimalPathCount(tr44.NodeAt([]int{0, 0}), tr44.NodeAt([]int{2, 2})); got != 24 {
		t.Errorf("double-tie path count = %v, want 24", got)
	}
}

func TestSubtorusNodes(t *testing.T) {
	tr := New(4, 3)
	for dim := 0; dim < 3; dim++ {
		for v := 0; v < 4; v++ {
			nodes := tr.SubtorusNodes(Subtorus{Dim: dim, Value: v})
			if len(nodes) != 16 {
				t.Fatalf("subtorus dim=%d v=%d has %d nodes, want 16", dim, v, len(nodes))
			}
			for _, u := range nodes {
				if tr.Coord(u, dim) != v {
					t.Fatalf("node %d in subtorus dim=%d v=%d has coord %d", u, dim, v, tr.Coord(u, dim))
				}
			}
		}
	}
}

func TestSubtoriPartitionNodes(t *testing.T) {
	tr := New(5, 3)
	seen := make(map[Node]bool)
	for v := 0; v < tr.K(); v++ {
		for _, u := range tr.SubtorusNodes(Subtorus{Dim: 1, Value: v}) {
			if seen[u] {
				t.Fatalf("node %d in two subtori", u)
			}
			seen[u] = true
		}
	}
	if len(seen) != tr.Nodes() {
		t.Fatalf("subtori cover %d nodes, want %d", len(seen), tr.Nodes())
	}
}

func TestCrossingEdges(t *testing.T) {
	tr := New(4, 3)
	edges := tr.CrossingEdges(2, 1)
	if len(edges) != 2*16 {
		t.Fatalf("crossing has %d edges, want 32", len(edges))
	}
	seen := make(map[Edge]bool)
	for _, e := range edges {
		if seen[e] {
			t.Fatalf("duplicate edge %d in crossing", e)
		}
		seen[e] = true
		src, dst := tr.EdgeSource(e), tr.EdgeTarget(e)
		cs, cd := tr.Coord(src, 2), tr.Coord(dst, 2)
		ok := (cs == 1 && cd == 2) || (cs == 2 && cd == 1)
		if !ok {
			t.Fatalf("edge %s does not cross the 1|2 boundary in dim 2", tr.EdgeString(e))
		}
	}
}

func TestTranslate(t *testing.T) {
	tr := New(5, 2)
	u := tr.NodeAt([]int{4, 3})
	if got := tr.Translate(u, []int{2, 3}); got != tr.NodeAt([]int{1, 1}) {
		t.Errorf("Translate = %v", tr.Coords(got))
	}
	if got := tr.Translate(u, []int{-5, 0}); got != u {
		t.Errorf("Translate by multiples of k should be identity")
	}
}

func TestTranslatePreservesAdjacency(t *testing.T) {
	tr := New(4, 3)
	offset := []int{1, 2, 3}
	tr.ForEachEdge(func(e Edge) {
		te := tr.TranslateEdge(e, offset)
		if tr.Translate(tr.EdgeTarget(e), offset) != tr.EdgeTarget(te) {
			t.Fatalf("TranslateEdge(%d) target mismatch", e)
		}
	})
}

func TestTranslateIsGroupAction(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New(3+rng.Intn(5), 1+rng.Intn(3))
		u := Node(rng.Intn(tr.Nodes()))
		a := make([]int, tr.D())
		b := make([]int, tr.D())
		ab := make([]int, tr.D())
		for j := range a {
			a[j] = rng.Intn(tr.K())
			b[j] = rng.Intn(tr.K())
			ab[j] = a[j] + b[j]
		}
		return tr.Translate(tr.Translate(u, a), b) == tr.Translate(u, ab)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDirectionString(t *testing.T) {
	if Plus.String() != "+" || Minus.String() != "-" {
		t.Error("Direction.String mismatch")
	}
	if Plus.Opposite() != Minus || Minus.Opposite() != Plus {
		t.Error("Direction.Opposite mismatch")
	}
}

func TestTorusString(t *testing.T) {
	if got := New(8, 3).String(); got != "T^3_8 (512 nodes)" {
		t.Errorf("String() = %q", got)
	}
}
