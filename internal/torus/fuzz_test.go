package torus

import "testing"

// Fuzz targets run their seed corpus under plain `go test` and can be
// extended with `go test -fuzz=FuzzX ./internal/torus`.

func FuzzCoordDelta(f *testing.F) {
	f.Add(0, 0, 2)
	f.Add(3, 1, 5)
	f.Add(7, 3, 8)
	f.Add(100, -3, 17)
	f.Fuzz(func(t *testing.T, p, q, kRaw int) {
		k := kRaw%64 + 2
		if k < 2 {
			k = 2 - k // keep k >= 2 for negative raw values
		}
		pp := ((p % k) + k) % k
		qq := ((q % k) + k) % k
		del := CoordDelta(pp, qq, k)
		if del.Dist < 0 || del.Dist > k/2 {
			t.Fatalf("distance %d out of [0, %d]", del.Dist, k/2)
		}
		if del.Dist != CyclicDistance(pp, qq, k) {
			t.Fatal("delta distance disagrees with CyclicDistance")
		}
		// Walking Dist steps in Dir reaches q.
		c := pp
		for s := 0; s < del.Dist; s++ {
			if del.Dir == Plus {
				c = (c + 1) % k
			} else {
				c = (c - 1 + k) % k
			}
		}
		if c != qq {
			t.Fatalf("walk from %d in %v for %d steps ends at %d, want %d", pp, del.Dir, del.Dist, c, qq)
		}
		if del.Tie && (k%2 != 0 || del.Dist != k/2) {
			t.Fatal("tie flagged away from the antipode")
		}
	})
}

func FuzzNodeRoundTrip(f *testing.F) {
	f.Add(3, 2, 0)
	f.Add(5, 3, 77)
	f.Add(8, 2, 63)
	f.Fuzz(func(t *testing.T, kRaw, dRaw, nodeRaw int) {
		k := abs(kRaw)%7 + 2
		d := abs(dRaw)%4 + 1
		tr := New(k, d)
		u := Node(abs(nodeRaw) % tr.Nodes())
		if got := tr.NodeAt(tr.Coords(u)); got != u {
			t.Fatalf("round trip %d -> %v -> %d", u, tr.Coords(u), got)
		}
		// Lee distance to self is 0 and to a +1 neighbor is 1.
		if tr.LeeDistance(u, u) != 0 {
			t.Fatal("self distance nonzero")
		}
		if tr.LeeDistance(u, tr.Step(u, 0, Plus)) != 1 && k > 2 {
			t.Fatal("neighbor distance not 1")
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
