package torus

import "testing"

// Fuzz targets run their seed corpus under plain `go test` and can be
// extended with `go test -fuzz=FuzzX ./internal/torus`.

func FuzzCoordDelta(f *testing.F) {
	f.Add(0, 0, 2)
	f.Add(3, 1, 5)
	f.Add(7, 3, 8)
	f.Add(100, -3, 17)
	f.Fuzz(func(t *testing.T, p, q, kRaw int) {
		k := kRaw%64 + 2
		if k < 2 {
			k = 2 - k // keep k >= 2 for negative raw values
		}
		pp := ((p % k) + k) % k
		qq := ((q % k) + k) % k
		del := CoordDelta(pp, qq, k)
		if del.Dist < 0 || del.Dist > k/2 {
			t.Fatalf("distance %d out of [0, %d]", del.Dist, k/2)
		}
		if del.Dist != CyclicDistance(pp, qq, k) {
			t.Fatal("delta distance disagrees with CyclicDistance")
		}
		// Walking Dist steps in Dir reaches q.
		c := pp
		for s := 0; s < del.Dist; s++ {
			if del.Dir == Plus {
				c = (c + 1) % k
			} else {
				c = (c - 1 + k) % k
			}
		}
		if c != qq {
			t.Fatalf("walk from %d in %v for %d steps ends at %d, want %d", pp, del.Dir, del.Dist, c, qq)
		}
		if del.Tie && (k%2 != 0 || del.Dist != k/2) {
			t.Fatal("tie flagged away from the antipode")
		}
	})
}

func FuzzNodeRoundTrip(f *testing.F) {
	f.Add(3, 2, 0)
	f.Add(5, 3, 77)
	f.Add(8, 2, 63)
	f.Fuzz(func(t *testing.T, kRaw, dRaw, nodeRaw int) {
		k := abs(kRaw)%7 + 2
		d := abs(dRaw)%4 + 1
		tr := New(k, d)
		u := Node(abs(nodeRaw) % tr.Nodes())
		if got := tr.NodeAt(tr.Coords(u)); got != u {
			t.Fatalf("round trip %d -> %v -> %d", u, tr.Coords(u), got)
		}
		// Lee distance to self is 0 and to a +1 neighbor is 1.
		if tr.LeeDistance(u, u) != 0 {
			t.Fatal("self distance nonzero")
		}
		if tr.LeeDistance(u, tr.Step(u, 0, Plus)) != 1 && k > 2 {
			t.Fatal("neighbor distance not 1")
		}
	})
}

// FuzzLeeDistance checks the metric axioms of the Lee distance for arbitrary
// (including negative) raw node material: symmetry, identity, the triangle
// inequality, and the per-dimension bound 0 <= cyclic distance <= k/2.
func FuzzLeeDistance(f *testing.F) {
	f.Add(4, 2, 0, 1, 2)
	f.Add(5, 3, 7, 100, -3)
	f.Add(8, 1, -6, 63, 12)
	f.Add(2, 4, 1, -1, 15)
	f.Fuzz(func(t *testing.T, kRaw, dRaw, uRaw, vRaw, wRaw int) {
		k := abs(kRaw)%8 + 2
		d := abs(dRaw)%4 + 1
		tr := New(k, d)
		u := Node(Mod(uRaw, tr.Nodes()))
		v := Node(Mod(vRaw, tr.Nodes()))
		w := Node(Mod(wRaw, tr.Nodes()))

		duv := tr.LeeDistance(u, v)
		if duv != tr.LeeDistance(v, u) {
			t.Fatalf("asymmetric: Lee(%d,%d)=%d, Lee(%d,%d)=%d", u, v, duv, v, u, tr.LeeDistance(v, u))
		}
		if duv < 0 || duv > d*(k/2) {
			t.Fatalf("Lee(%d,%d)=%d out of [0,%d]", u, v, duv, d*(k/2))
		}
		if (duv == 0) != (u == v) {
			t.Fatalf("Lee(%d,%d)=%d violates identity of indiscernibles", u, v, duv)
		}
		if tr.LeeDistance(u, w) > duv+tr.LeeDistance(v, w) {
			t.Fatalf("triangle violated: Lee(%d,%d)=%d > %d+%d",
				u, w, tr.LeeDistance(u, w), duv, tr.LeeDistance(v, w))
		}
		// Per-dimension contributions stay in [0, k/2] and sum to the total,
		// even when coordinates are fed in unnormalized.
		sum := 0
		for j := 0; j < d; j++ {
			cd := CyclicDistance(tr.Coord(u, j)-7*k, tr.Coord(v, j)+3*k, k)
			if cd < 0 || cd > k/2 {
				t.Fatalf("cyclic distance %d out of [0,%d]", cd, k/2)
			}
			sum += cd
		}
		if sum != duv {
			t.Fatalf("per-dimension sum %d != Lee distance %d", sum, duv)
		}
	})
}

// FuzzWrapCoord checks that Mod/WrapCoord produce canonical residues for any
// integer input and that NodeAt agrees with them.
func FuzzWrapCoord(f *testing.F) {
	f.Add(0, 2)
	f.Add(-1, 5)
	f.Add(17, 4)
	f.Add(-1000000, 9)
	f.Fuzz(func(t *testing.T, a, kRaw int) {
		k := abs(kRaw)%64 + 2
		m := Mod(a, k)
		if m < 0 || m >= k {
			t.Fatalf("Mod(%d,%d)=%d out of [0,%d)", a, k, m, k)
		}
		if (a-m)%k != 0 {
			t.Fatalf("Mod(%d,%d)=%d not congruent to input", a, k, m)
		}
		if Mod(m, k) != m {
			t.Fatalf("Mod not idempotent at %d mod %d", a, k)
		}
		if Mod(a+k, k) != m || Mod(a-k, k) != m {
			t.Fatalf("Mod(%d,%d) not periodic", a, k)
		}
		tr := New(k, 2)
		if tr.WrapCoord(a) != m {
			t.Fatalf("WrapCoord(%d)=%d, Mod=%d", a, tr.WrapCoord(a), m)
		}
		u := tr.NodeAt([]int{a, a})
		if tr.Coord(u, 0) != m || tr.Coord(u, 1) != m {
			t.Fatalf("NodeAt wraps %d to (%d,%d), want %d", a, tr.Coord(u, 0), tr.Coord(u, 1), m)
		}
	})
}

// FuzzTranslateEdge checks that the precomputed EdgeTranslation table is a
// bijection on edges consistent with Torus.Translate/TranslateEdge, and that
// composing with the inverse offset is the identity.
func FuzzTranslateEdge(f *testing.F) {
	f.Add(4, 2, 1, 0, 3)
	f.Add(5, 3, -2, 7, 11)
	f.Add(6, 2, 100, -5, 0)
	f.Add(2, 3, 1, 1, 1)
	f.Fuzz(func(t *testing.T, kRaw, dRaw, o0, o1, eRaw int) {
		k := abs(kRaw)%5 + 2
		d := abs(dRaw)%2 + 2
		tr := New(k, d)
		offset := make([]int, d)
		inverse := make([]int, d)
		for j := range offset {
			if j%2 == 0 {
				offset[j] = o0 + j
			} else {
				offset[j] = o1 - j
			}
			inverse[j] = -offset[j]
		}
		et := tr.NewEdgeTranslation(offset)
		inv := tr.NewEdgeTranslation(inverse)

		e := Edge(abs(eRaw) % tr.Edges())
		if got, want := et.Edge(e), tr.TranslateEdge(e, offset); got != want {
			t.Fatalf("table edge image %d, TranslateEdge %d", got, want)
		}
		u := tr.EdgeSource(e)
		if got, want := et.Node(u), tr.Translate(u, offset); got != want {
			t.Fatalf("table node image %d, Translate %d", got, want)
		}
		if tr.EdgeDim(et.Edge(e)) != tr.EdgeDim(e) || tr.EdgeDir(et.Edge(e)) != tr.EdgeDir(e) {
			t.Fatal("translation changed edge dimension or direction")
		}
		if inv.Edge(et.Edge(e)) != e {
			t.Fatalf("inverse translation does not undo edge %d", e)
		}

		// Bijection over the whole (small) edge set.
		seen := make([]bool, tr.Edges())
		for idx := 0; idx < tr.Edges(); idx++ {
			img := et.Edge(Edge(idx))
			if img < 0 || int(img) >= tr.Edges() {
				t.Fatalf("edge image %d out of range", img)
			}
			if seen[img] {
				t.Fatalf("edge image %d hit twice: not a bijection", img)
			}
			seen[img] = true
		}
	})
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
