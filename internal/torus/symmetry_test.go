package torus

import (
	"math/rand"
	"testing"
)

func TestAutomorphismIdentity(t *testing.T) {
	tr := New(4, 3)
	a, err := tr.NewAutomorphism(nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr.ForEachNode(func(u Node) {
		if a.Node(u) != u {
			t.Fatalf("identity moved node %d", u)
		}
	})
	if err := a.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestAutomorphismValidation(t *testing.T) {
	tr := New(4, 2)
	if _, err := tr.NewAutomorphism([]int{0, 0}, nil, nil); err == nil {
		t.Error("repeated dimension should fail")
	}
	if _, err := tr.NewAutomorphism([]int{0, 2}, nil, nil); err == nil {
		t.Error("out-of-range dimension should fail")
	}
	if _, err := tr.NewAutomorphism([]int{0}, nil, nil); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := tr.NewAutomorphism(nil, []bool{true}, nil); err == nil {
		t.Error("wrong flip arity should fail")
	}
	if _, err := tr.NewAutomorphism(nil, nil, []int{1}); err == nil {
		t.Error("wrong offset arity should fail")
	}
}

func TestAutomorphismPreservesAdjacency(t *testing.T) {
	tr := New(5, 3)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		perm := rng.Perm(3)
		flip := []bool{rng.Intn(2) == 1, rng.Intn(2) == 1, rng.Intn(2) == 1}
		offset := []int{rng.Intn(5), rng.Intn(5), rng.Intn(5)}
		a, err := tr.NewAutomorphism(perm, flip, offset)
		if err != nil {
			t.Fatal(err)
		}
		if err := a.Verify(); err != nil {
			t.Fatalf("perm=%v flip=%v offset=%v: %v", perm, flip, offset, err)
		}
	}
}

func TestAutomorphismIsBijective(t *testing.T) {
	tr := New(4, 2)
	a, err := tr.NewAutomorphism([]int{1, 0}, []bool{true, false}, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	seenN := make(map[Node]bool)
	tr.ForEachNode(func(u Node) {
		v := a.Node(u)
		if seenN[v] {
			t.Fatalf("node image %d repeated", v)
		}
		seenN[v] = true
	})
	seenE := make(map[Edge]bool)
	tr.ForEachEdge(func(e Edge) {
		img := a.Edge(e)
		if seenE[img] {
			t.Fatalf("edge image %d repeated", img)
		}
		seenE[img] = true
	})
}

func TestAutomorphismPreservesLeeDistance(t *testing.T) {
	tr := New(5, 3)
	a, err := tr.NewAutomorphism([]int{2, 0, 1}, []bool{false, true, false}, []int{1, 4, 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		u := Node(rng.Intn(tr.Nodes()))
		v := Node(rng.Intn(tr.Nodes()))
		if tr.LeeDistance(u, v) != tr.LeeDistance(a.Node(u), a.Node(v)) {
			t.Fatalf("Lee distance not preserved for %d,%d", u, v)
		}
	}
}

func TestReflectionReversesDirections(t *testing.T) {
	tr := New(5, 1)
	a, err := tr.NewAutomorphism(nil, []bool{true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	e := tr.EdgeFrom(1, 0, Plus) // 1 -> 2
	img := a.Edge(e)             // should be 4 -> 3
	if tr.EdgeSource(img) != 4 || tr.EdgeTarget(img) != 3 {
		t.Errorf("reflection image: %s", tr.EdgeString(img))
	}
	if tr.EdgeDir(img) != Minus {
		t.Error("reflection should reverse direction")
	}
}
