package torus

import "fmt"

// EdgeTranslation is the edge permutation induced by one torus translation.
// Translations are automorphisms that preserve every edge's dimension and
// direction, so the image of edge (u, j, dir) is (u+offset, j, dir); the
// table precomputes the node images once (O(n·d) amortized to O(n)) and
// answers each edge or node lookup in O(1) with pure index arithmetic.
//
// It exists for the load engine's symmetry fast path: when a placement is
// closed under a translation subgroup, the per-edge load pattern of every
// source is the translate of one canonical source's pattern, and replication
// is a table-indexed scatter instead of a routing walk.
type EdgeTranslation struct {
	t      *Torus
	offset []int
	nodes  []Node // nodes[u] = Translate(u, offset)
}

// NewEdgeTranslation precomputes the translation table for the offset
// vector, which must have length D. Coordinates may be any integers; they
// are reduced modulo k.
func (t *Torus) NewEdgeTranslation(offset []int) *EdgeTranslation {
	et := &EdgeTranslation{
		t:      t,
		offset: append([]int(nil), offset...),
		nodes:  make([]Node, t.nodes),
	}
	t.TranslationTableInto(offset, et.nodes)
	return et
}

// maxDims bounds d for any constructible torus: k >= 2 forces k^d <=
// MaxNodes = 2^28, hence d <= 28. Odometer buffers below rely on it.
const maxDims = 28

// TranslationTableInto fills dst, which must have length Nodes, with the
// node-translation table dst[u] = Translate(u, offset). It is the reusable
// buffer form used by per-worker scratch in hot loops; NewEdgeTranslation
// wraps it. Dimension 0 is fastest-varying (stride 1), so each aligned
// k-block of dst is two runs of consecutive node indices — the fill writes
// those runs branch-free and walks the higher dimensions with an odometer,
// for O(n) total with ~2 operations per entry.
func (t *Torus) TranslationTableInto(offset []int, dst []Node) {
	if len(offset) != t.d {
		panic(fmt.Sprintf("torus: offset vector has length %d, want %d", len(offset), t.d))
	}
	if len(dst) != t.nodes {
		panic(fmt.Sprintf("torus: translation table has length %d, want %d", len(dst), t.nodes))
	}
	k := t.k
	off0 := t.WrapCoord(offset[0])
	var coords, imgc [maxDims]int
	imgBase := 0 // image index of the current block's (0, c_1, ..) node
	for j := 1; j < t.d; j++ {
		imgc[j] = t.WrapCoord(offset[j])
		imgBase += imgc[j] * t.strides[j]
	}
	for base := 0; base < t.nodes; base += k {
		// Images along dimension 0 are imgBase + ((c0 + off0) mod k): one
		// ascending run from off0, then the wrapped run from 0.
		i := base
		for c := off0; c < k; c++ {
			dst[i] = Node(imgBase + c)
			i++
		}
		for c := 0; c < off0; c++ {
			dst[i] = Node(imgBase + c)
			i++
		}
		// Advance the higher dimensions to the next block: each carried
		// dimension and the final one step +1 (mod k), image following.
		for j := 1; j < t.d; j++ {
			if imgc[j]+1 == k {
				imgc[j] = 0
				imgBase -= (k - 1) * t.strides[j]
			} else {
				imgc[j]++
				imgBase += t.strides[j]
			}
			if coords[j]+1 == k {
				coords[j] = 0
				continue // carry into the next dimension
			}
			coords[j]++
			break
		}
	}
}

// Torus returns the torus the table was built for.
func (et *EdgeTranslation) Torus() *Torus { return et.t }

// Offset returns a copy of the (wrapped) translation offset.
func (et *EdgeTranslation) Offset() []int {
	out := make([]int, len(et.offset))
	for j, c := range et.offset {
		out[j] = et.t.WrapCoord(c)
	}
	return out
}

// Node returns the image of node u under the translation.
func (et *EdgeTranslation) Node(u Node) Node { return et.nodes[u] }

// Edge returns the image of edge e under the translation: the source node
// is translated, the dimension and direction are unchanged.
func (et *EdgeTranslation) Edge(e Edge) Edge {
	td2 := 2 * et.t.d
	return Edge(int(et.nodes[int(e)/td2])*td2 + int(e)%td2)
}
