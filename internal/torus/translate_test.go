package torus

import "testing"

func TestEdgeTranslationMatchesTranslate(t *testing.T) {
	for _, tc := range []struct {
		k, d   int
		offset []int
	}{
		{4, 2, []int{1, 3}},
		{5, 2, []int{0, 0}},
		{5, 3, []int{2, 4, 1}},
		{2, 3, []int{1, 0, 1}},
		{6, 2, []int{-1, 7}}, // unwrapped coordinates are reduced mod k
	} {
		tr := New(tc.k, tc.d)
		et := tr.NewEdgeTranslation(tc.offset)
		for u := 0; u < tr.Nodes(); u++ {
			if got, want := et.Node(Node(u)), tr.Translate(Node(u), tc.offset); got != want {
				t.Fatalf("T^%d_%d offset %v: node %d -> %d, want %d", tc.d, tc.k, tc.offset, u, got, want)
			}
		}
		for e := 0; e < tr.Edges(); e++ {
			if got, want := et.Edge(Edge(e)), tr.TranslateEdge(Edge(e), tc.offset); got != want {
				t.Fatalf("T^%d_%d offset %v: edge %d -> %d, want %d", tc.d, tc.k, tc.offset, e, got, want)
			}
		}
	}
}

func TestEdgeTranslationCompose(t *testing.T) {
	tr := New(5, 3)
	a := []int{1, 2, 3}
	b := []int{4, 0, 2}
	ab := []int{0, 2, 0} // a+b mod 5
	eta, etb, etab := tr.NewEdgeTranslation(a), tr.NewEdgeTranslation(b), tr.NewEdgeTranslation(ab)
	for e := 0; e < tr.Edges(); e++ {
		if etb.Edge(eta.Edge(Edge(e))) != etab.Edge(Edge(e)) {
			t.Fatalf("composition mismatch at edge %d", e)
		}
	}
}

func TestEdgeTranslationOffsetWrapped(t *testing.T) {
	tr := New(4, 2)
	et := tr.NewEdgeTranslation([]int{-1, 9})
	got := et.Offset()
	if got[0] != 3 || got[1] != 1 {
		t.Fatalf("Offset() = %v, want [3 1]", got)
	}
	if et.Torus() != tr {
		t.Fatal("Torus() does not return the constructing torus")
	}
}

func TestTranslationTableIntoPanics(t *testing.T) {
	tr := New(4, 2)
	for name, fn := range map[string]func(){
		"short offset": func() { tr.TranslationTableInto([]int{1}, make([]Node, tr.Nodes())) },
		"short dst":    func() { tr.TranslationTableInto([]int{1, 2}, make([]Node, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestTranslationTableIntoAllocFree(t *testing.T) {
	tr := New(8, 3)
	offset := []int{3, 0, 5}
	dst := make([]Node, tr.Nodes())
	allocs := testing.AllocsPerRun(10, func() {
		tr.TranslationTableInto(offset, dst)
	})
	if allocs != 0 {
		t.Fatalf("TranslationTableInto allocates %v times per call, want 0", allocs)
	}
}
