package torus

// Subtorus identifies a principal subtorus of T^d_k: the set of nodes whose
// coordinate in dimension Dim is fixed to Value. It is isomorphic to
// T^{d-1}_k (Definition 1 remark).
type Subtorus struct {
	Dim   int
	Value int
}

// SubtorusNodes returns the nodes of the principal subtorus in increasing
// index order. There are exactly k^{d-1} of them.
func (t *Torus) SubtorusNodes(s Subtorus) []Node {
	out := make([]Node, 0, t.nodes/t.k)
	t.ForEachSubtorusNode(s, func(u Node) { out = append(out, u) })
	return out
}

// ForEachSubtorusNode invokes fn for every node of the principal subtorus
// in increasing index order.
func (t *Torus) ForEachSubtorusNode(s Subtorus, fn func(Node)) {
	if s.Dim < 0 || s.Dim >= t.d {
		panic("torus: subtorus dimension out of range")
	}
	v := t.WrapCoord(s.Value)
	stride := t.strides[s.Dim]
	block := stride * t.k
	for hi := 0; hi < t.nodes; hi += block {
		base := hi + v*stride
		for lo := 0; lo < stride; lo++ {
			fn(Node(base + lo))
		}
	}
}

// CrossingEdges returns the directed edges that cross between the principal
// subtori at Value and Value+1 (mod k) of dimension Dim, in both directions.
// There are exactly 2·k^{d-1} of them; removing the edges of two antipodal
// crossings realizes the Theorem 1 bisection of size 4·k^{d-1}.
func (t *Torus) CrossingEdges(dim, value int) []Edge {
	out := make([]Edge, 0, 2*t.nodes/t.k)
	t.ForEachSubtorusNode(Subtorus{Dim: dim, Value: value}, func(u Node) {
		out = append(out, t.EdgeFrom(u, dim, Plus))
		out = append(out, t.EdgeFrom(t.Step(u, dim, Plus), dim, Minus))
	})
	return out
}
