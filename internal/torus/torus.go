// Package torus models the d-dimensional k-torus T^d_k as a directed graph,
// following Definition 1 of Azizoglu & Egecioglu: the vertex set is Z_k^d and
// there is one directed edge (link) from a node to each of its 2d neighbors,
// obtained by changing a single coordinate by ±1 modulo k.
//
// Nodes and edges are identified by dense integer indices so that large tori
// can be processed with flat slices instead of hash maps. For a torus with
// n = k^d nodes there are exactly 2·d·n directed edges.
package torus

import "fmt"

// Direction of travel along a dimension.
type Direction int

const (
	// Plus is the direction that increases a coordinate by 1 (mod k).
	Plus Direction = iota
	// Minus is the direction that decreases a coordinate by 1 (mod k).
	Minus
)

// String returns "+" or "-".
func (dir Direction) String() string {
	if dir == Plus {
		return "+"
	}
	return "-"
}

// Opposite returns the reverse direction.
func (dir Direction) Opposite() Direction {
	if dir == Plus {
		return Minus
	}
	return Plus
}

// Node is a dense index of a torus vertex in [0, k^d).
// The coordinate vector (a_1, ..., a_d) maps to
// a_1 + a_2·k + a_3·k² + ... (dimension 1 is the fastest varying).
type Node int

// Edge is a dense index of a directed link in [0, 2·d·k^d).
// The edge leaving node u along dimension j (0-based) in direction dir has
// index u·2d + 2j + dir.
type Edge int

// Torus is an immutable descriptor of T^d_k.
type Torus struct {
	k       int
	d       int
	nodes   int   // k^d
	strides []int // strides[j] = k^j
}

// MaxNodes bounds the size of a torus this package will construct; it keeps
// index arithmetic comfortably inside int64 and guards against accidental
// construction of tori too large to enumerate.
const MaxNodes = 1 << 28

// New constructs the d-dimensional k-torus. It panics if k < 2, d < 1, or
// the torus would exceed MaxNodes nodes; use Check to validate parameters
// without panicking.
func New(k, d int) *Torus {
	if err := Check(k, d); err != nil {
		panic(err)
	}
	strides := make([]int, d+1)
	strides[0] = 1
	for j := 1; j <= d; j++ {
		strides[j] = strides[j-1] * k
	}
	return &Torus{k: k, d: d, nodes: strides[d], strides: strides}
}

// Check reports whether (k, d) describe a torus this package can represent.
func Check(k, d int) error {
	if k < 2 {
		return fmt.Errorf("torus: k must be at least 2, got %d", k)
	}
	if d < 1 {
		return fmt.Errorf("torus: d must be at least 1, got %d", d)
	}
	_, err := Volume(k, d)
	return err
}

// K returns the radix (nodes per dimension).
func (t *Torus) K() int { return t.k }

// D returns the number of dimensions.
func (t *Torus) D() int { return t.d }

// Nodes returns the number of nodes, k^d.
func (t *Torus) Nodes() int { return t.nodes }

// Edges returns the number of directed edges, 2·d·k^d.
func (t *Torus) Edges() int { return 2 * t.d * t.nodes }

// String describes the torus, e.g. "T^3_8 (512 nodes)".
func (t *Torus) String() string {
	return fmt.Sprintf("T^%d_%d (%d nodes)", t.d, t.k, t.nodes)
}

// NodeAt returns the node with the given coordinate vector. Coordinates are
// reduced modulo k, so any integer vector is accepted. The slice length must
// equal D.
func (t *Torus) NodeAt(coords []int) Node {
	if len(coords) != t.d {
		panic(fmt.Sprintf("torus: coordinate vector has length %d, want %d", len(coords), t.d))
	}
	idx := 0
	for j, c := range coords {
		idx += t.WrapCoord(c) * t.strides[j]
	}
	return Node(idx)
}

// Coord returns the j-th (0-based) coordinate of node u.
func (t *Torus) Coord(u Node, j int) int {
	return int(u) / t.strides[j] % t.k
}

// Coords decodes u into a freshly allocated coordinate vector.
func (t *Torus) Coords(u Node) []int {
	out := make([]int, t.d)
	t.CoordsInto(u, out)
	return out
}

// CoordsInto decodes u into dst, which must have length D. It avoids the
// allocation of Coords for hot loops.
func (t *Torus) CoordsInto(u Node, dst []int) {
	idx := int(u)
	for j := 0; j < t.d; j++ {
		dst[j] = idx % t.k
		idx /= t.k
	}
}

// InRange reports whether u is a valid node index.
func (t *Torus) InRange(u Node) bool {
	return u >= 0 && int(u) < t.nodes
}

// Step returns the neighbor of u along dimension j in direction dir.
func (t *Torus) Step(u Node, j int, dir Direction) Node {
	c := t.Coord(u, j)
	var nc int
	if dir == Plus {
		nc = c + 1
		if nc == t.k {
			nc = 0
		}
	} else {
		nc = c - 1
		if nc < 0 {
			nc = t.k - 1
		}
	}
	return u + Node((nc-c)*t.strides[j])
}

// EdgeFrom returns the directed edge leaving u along dimension j in
// direction dir.
func (t *Torus) EdgeFrom(u Node, j int, dir Direction) Edge {
	return Edge(int(u)*2*t.d + 2*j + int(dir))
}

// EdgeSource returns the node the edge leaves.
func (t *Torus) EdgeSource(e Edge) Node {
	return Node(int(e) / (2 * t.d))
}

// EdgeDim returns the dimension (0-based) the edge travels along.
func (t *Torus) EdgeDim(e Edge) int {
	return int(e) % (2 * t.d) / 2
}

// EdgeDir returns the direction the edge travels.
func (t *Torus) EdgeDir(e Edge) Direction {
	return Direction(int(e) % 2)
}

// EdgeTarget returns the node the edge enters.
func (t *Torus) EdgeTarget(e Edge) Node {
	return t.Step(t.EdgeSource(e), t.EdgeDim(e), t.EdgeDir(e))
}

// Reverse returns the edge with the same endpoints travelled backwards.
func (t *Torus) Reverse(e Edge) Edge {
	return t.EdgeFrom(t.EdgeTarget(e), t.EdgeDim(e), t.EdgeDir(e).Opposite())
}

// EdgeString renders an edge as "(a,b,..) -> (c,d,..)" for diagnostics.
func (t *Torus) EdgeString(e Edge) string {
	return fmt.Sprintf("%v -> %v", t.Coords(t.EdgeSource(e)), t.Coords(t.EdgeTarget(e)))
}

// ForEachNode invokes fn for every node in increasing index order.
func (t *Torus) ForEachNode(fn func(Node)) {
	for u := 0; u < t.nodes; u++ {
		fn(Node(u))
	}
}

// ForEachEdge invokes fn for every directed edge in increasing index order.
func (t *Torus) ForEachEdge(fn func(Edge)) {
	for e := 0; e < t.Edges(); e++ {
		fn(Edge(e))
	}
}

// Translate returns the node obtained by adding the offset vector to u,
// coordinate-wise modulo k. The offset length must equal D.
func (t *Torus) Translate(u Node, offset []int) Node {
	if len(offset) != t.d {
		panic(fmt.Sprintf("torus: offset vector has length %d, want %d", len(offset), t.d))
	}
	idx := 0
	for j := 0; j < t.d; j++ {
		idx += t.WrapCoord(t.Coord(u, j)+offset[j]) * t.strides[j]
	}
	return Node(idx)
}

// TranslateEdge translates an edge by the offset vector; the resulting edge
// has the translated source and the same dimension and direction.
func (t *Torus) TranslateEdge(e Edge, offset []int) Edge {
	return t.EdgeFrom(t.Translate(t.EdgeSource(e), offset), t.EdgeDim(e), t.EdgeDir(e))
}
