package torus

// CyclicDistance returns the cyclic distance between residues i and j
// modulo k (Definition 6): min{ i−j mod k, j−i mod k }.
func CyclicDistance(i, j, k int) int {
	diff := Mod(i-j, k)
	if other := k - diff; other < diff {
		return other
	}
	return diff
}

// Delta describes the shortest way(s) to correct one coordinate from p to q
// on a ring of k nodes.
type Delta struct {
	// Dist is the cyclic distance between the coordinates.
	Dist int
	// Dir is the direction of a shortest correction. When Tie is true both
	// directions are shortest and Dir is Plus, the canonical choice used by
	// the paper's restricted ODR ("pick the path that corrects p_i in the
	// (+) direction").
	Dir Direction
	// Tie reports that both directions give a shortest correction. This
	// happens exactly when k is even and the coordinates are k/2 apart.
	Tie bool
}

// CoordDelta computes the Delta from residue p to residue q modulo k.
func CoordDelta(p, q, k int) Delta {
	fwd := Mod(q-p, k)
	bwd := k - fwd
	switch {
	case fwd == 0:
		return Delta{Dist: 0, Dir: Plus}
	case fwd < bwd:
		return Delta{Dist: fwd, Dir: Plus}
	case bwd < fwd:
		return Delta{Dist: bwd, Dir: Minus}
	default: // fwd == bwd == k/2: tie, canonical direction is Plus.
		return Delta{Dist: fwd, Dir: Plus, Tie: true}
	}
}

// LeeDistance returns the Lee distance between nodes u and v: the sum of
// the cyclic distances of their coordinates. It equals the length of a
// shortest path between u and v on the torus.
func (t *Torus) LeeDistance(u, v Node) int {
	sum := 0
	ui, vi := int(u), int(v)
	for j := 0; j < t.d; j++ {
		sum += CyclicDistance(ui%t.k, vi%t.k, t.k)
		ui /= t.k
		vi /= t.k
	}
	return sum
}

// Deltas computes the per-dimension Delta vector from u to v into dst,
// which must have length D. It returns the number of dimensions in which
// u and v differ.
func (t *Torus) Deltas(u, v Node, dst []Delta) int {
	if len(dst) != t.d {
		panic("torus: Deltas destination has wrong length")
	}
	differing := 0
	ui, vi := int(u), int(v)
	for j := 0; j < t.d; j++ {
		dst[j] = CoordDelta(ui%t.k, vi%t.k, t.k)
		if dst[j].Dist > 0 {
			differing++
		}
		ui /= t.k
		vi /= t.k
	}
	return differing
}

// MinimalPathCount returns the number of distinct shortest paths between u
// and v in the torus, counting every interleaving of unit steps and, for
// tied dimensions (k even, distance exactly k/2), both directions. The
// result is exact but can overflow for very long distances; it is intended
// for the moderate tori used in tests and experiments. It returns the count
// as a float64 to make the overflow behaviour (loss of precision rather
// than wraparound) explicit.
func (t *Torus) MinimalPathCount(u, v Node) float64 {
	total := 0
	count := 1.0
	ui, vi := int(u), int(v)
	for j := 0; j < t.d; j++ {
		del := CoordDelta(ui%t.k, vi%t.k, t.k)
		total += del.Dist
		if del.Tie {
			count *= 2
		}
		ui /= t.k
		vi /= t.k
	}
	// Multinomial coefficient: total! / prod(dist_j!).
	ui, vi = int(u), int(v)
	remaining := total
	for j := 0; j < t.d; j++ {
		del := CoordDelta(ui%t.k, vi%t.k, t.k)
		count *= binomialFloat(remaining, del.Dist)
		remaining -= del.Dist
		ui /= t.k
		vi /= t.k
	}
	return count
}

func binomialFloat(n, r int) float64 {
	if r < 0 || r > n {
		return 0
	}
	if r > n-r {
		r = n - r
	}
	out := 1.0
	for i := 1; i <= r; i++ {
		out = out * float64(n-r+i) / float64(i)
	}
	return out
}
