package torus

import "fmt"

// Mod returns a reduced into the canonical residue range [0, k). Unlike Go's
// built-in %, which truncates toward zero and can return negative values for
// negative a, Mod always returns the mathematical residue. Every coordinate
// wrap in this repository must route through Mod (or a helper built on it);
// the toruslint modmath analyzer enforces this.
//
// Mod panics if k <= 0.
func Mod(a, k int) int {
	if k <= 0 {
		panic(fmt.Sprintf("torus: Mod modulus must be positive, got %d", k))
	}
	//lint:ignore modmath this is the canonical normalized-mod helper.
	a %= k
	if a < 0 {
		a += k
	}
	return a
}

// WrapCoord normalizes a single (possibly negative, possibly >= k) coordinate
// onto the ring Z_k of this torus.
func (t *Torus) WrapCoord(c int) int { return Mod(c, t.k) }

// Volume returns k^d, the node count of T^d_k, guarded against int overflow
// and against exceeding MaxNodes. It is the canonical checked way to compute
// torus volumes and k^j edge/slab counts; the toruslint overflowvol analyzer
// flags unguarded repeated-multiplication volume computations.
func Volume(k, d int) (int, error) {
	if k < 1 {
		return 0, fmt.Errorf("torus: volume radix must be positive, got %d", k)
	}
	if d < 0 {
		return 0, fmt.Errorf("torus: volume dimension must be nonnegative, got %d", d)
	}
	n := 1
	for j := 0; j < d; j++ {
		if n > MaxNodes/k {
			return 0, fmt.Errorf("torus: %d^%d exceeds the %d node limit", k, d, MaxNodes)
		}
		n *= k
	}
	if n > MaxNodes {
		return 0, fmt.Errorf("torus: %d^%d exceeds the %d node limit", k, d, MaxNodes)
	}
	return n, nil
}
