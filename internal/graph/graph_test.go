package graph

import (
	"testing"

	"torusnet/internal/torus"
)

func TestBFSOnPath(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	dist := g.BFS(0)
	for i, want := range []int{0, 1, 2, 3} {
		if dist[i] != want {
			t.Errorf("dist[%d] = %d, want %d", i, dist[i], want)
		}
	}
	back := g.BFS(3)
	if back[0] != -1 {
		t.Error("0 should be unreachable from 3 in a directed path")
	}
}

func TestBFSMatchesTorusLeeDistance(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}} {
		tr := torus.New(c.k, c.d)
		g := FromTorus(tr)
		if g.N() != tr.Nodes() || g.Edges() != tr.Edges() {
			t.Fatalf("T^%d_%d: graph shape mismatch", c.d, c.k)
		}
		dist := g.BFS(0)
		tr.ForEachNode(func(v torus.Node) {
			if dist[v] != tr.LeeDistance(0, v) {
				t.Fatalf("T^%d_%d: BFS %d vs Lee %d at node %d", c.d, c.k, dist[v], tr.LeeDistance(0, v), v)
			}
		})
	}
}

func TestShortestPathCountsMatchTorus(t *testing.T) {
	tr := torus.New(5, 2)
	g := FromTorus(tr)
	dist, count := g.ShortestPathCounts(0)
	tr.ForEachNode(func(v torus.Node) {
		if dist[v] != tr.LeeDistance(0, v) {
			t.Fatalf("distance mismatch at %d", v)
		}
		if want := tr.MinimalPathCount(0, v); count[v] != want {
			t.Fatalf("node %v: graph counts %v shortest paths, torus counts %v",
				tr.Coords(v), count[v], want)
		}
	})
}

func TestShortestPathCountsParallelEdges(t *testing.T) {
	// Two parallel edges 0 -> 1 count as two shortest paths.
	g := New(2)
	g.AddEdge(0, 1)
	g.AddEdge(0, 1)
	_, count := g.ShortestPathCounts(0)
	if count[1] != 2 {
		t.Errorf("parallel-edge count = %v, want 2", count[1])
	}
}

func TestTorusIsStronglyConnected(t *testing.T) {
	tr := torus.New(4, 2)
	if !FromTorus(tr).StronglyConnected() {
		t.Error("torus should be strongly connected")
	}
}

func TestFromTorusWithout(t *testing.T) {
	tr := torus.New(3, 1) // ring 0-1-2
	// Remove both edges leaving node 0 in the + and - directions.
	failed := map[torus.Edge]bool{
		tr.EdgeFrom(0, 0, torus.Plus):  true,
		tr.EdgeFrom(0, 0, torus.Minus): true,
	}
	g := FromTorusWithout(tr, failed)
	if g.Edges() != tr.Edges()-2 {
		t.Fatalf("edges = %d, want %d", g.Edges(), tr.Edges()-2)
	}
	if g.Reachable(0, 1) {
		t.Error("node 0 should be cut off outbound")
	}
	if !g.Reachable(1, 0) {
		t.Error("inbound edges to 0 remain")
	}
}

func TestReverse(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	r := g.Reverse()
	if !r.Reachable(2, 0) {
		t.Error("reverse graph should reach 0 from 2")
	}
	if r.Reachable(0, 2) {
		t.Error("reverse graph should not reach 2 from 0")
	}
	if r.Edges() != 2 {
		t.Errorf("reverse edges = %d", r.Edges())
	}
}

func TestStronglyConnectedNegative(t *testing.T) {
	g := New(2)
	g.AddEdge(0, 1)
	if g.StronglyConnected() {
		t.Error("one-way pair is not strongly connected")
	}
	if !New(0).StronglyConnected() {
		t.Error("empty graph is vacuously strongly connected")
	}
}

func TestOutDegreeAndForEachSuccessor(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	g.AddEdge(0, 1)
	if g.OutDegree(0) != 3 {
		t.Errorf("out-degree %d, want 3", g.OutDegree(0))
	}
	sum := 0
	g.ForEachSuccessor(0, func(v int) { sum += v })
	if sum != 4 {
		t.Errorf("successor sum %d, want 4", sum)
	}
}

func TestReachableSelf(t *testing.T) {
	g := New(1)
	if !g.Reachable(0, 0) {
		t.Error("node should reach itself")
	}
}
