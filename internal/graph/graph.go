// Package graph provides a small generic digraph substrate: adjacency
// construction, breadth-first search, shortest-path counting, and
// connectivity. It is deliberately independent of the torus package so that
// torus-specific distance and routing code can be cross-validated against a
// structure-agnostic implementation, and so that fault analysis can operate
// on mutilated copies of the network.
package graph

// Digraph is a directed graph over nodes 0..N-1 with parallel edges
// permitted (a k=2 torus ring has genuine parallel links).
type Digraph struct {
	n   int
	adj [][]int32 // adjacency lists
}

// New creates a digraph with n nodes and no edges.
func New(n int) *Digraph {
	return &Digraph{n: n, adj: make([][]int32, n)}
}

// N returns the number of nodes.
func (g *Digraph) N() int { return g.n }

// AddEdge inserts a directed edge u -> v.
func (g *Digraph) AddEdge(u, v int) {
	g.adj[u] = append(g.adj[u], int32(v))
}

// OutDegree returns the number of edges leaving u.
func (g *Digraph) OutDegree(u int) int { return len(g.adj[u]) }

// Edges returns the total number of directed edges.
func (g *Digraph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total
}

// ForEachSuccessor calls fn for every successor of u (with multiplicity).
func (g *Digraph) ForEachSuccessor(u int, fn func(v int)) {
	for _, v := range g.adj[u] {
		fn(int(v))
	}
}

// BFS returns the hop distance from src to every node; unreachable nodes
// get -1.
func (g *Digraph) BFS(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, g.n)
	queue = append(queue, int32(src))
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, v := range g.adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// ShortestPathCounts returns, for every node v, the number of distinct
// shortest paths from src to v (counting parallel edges separately). Counts
// are float64 to avoid overflow on dense graphs.
func (g *Digraph) ShortestPathCounts(src int) (dist []int, count []float64) {
	dist = g.BFS(src)
	count = make([]float64, g.n)
	count[src] = 1
	// Process nodes in nondecreasing distance order.
	order := make([]int, 0, g.n)
	for v, dv := range dist {
		if dv >= 0 {
			order = append(order, v)
		}
	}
	// Counting sort by distance.
	maxD := 0
	for _, v := range order {
		if dist[v] > maxD {
			maxD = dist[v]
		}
	}
	buckets := make([][]int, maxD+1)
	for _, v := range order {
		buckets[dist[v]] = append(buckets[dist[v]], v)
	}
	for dv := 0; dv <= maxD; dv++ {
		for _, u := range buckets[dv] {
			for _, v := range g.adj[u] {
				if dist[v] == dv+1 {
					count[v] += count[u]
				}
			}
		}
	}
	return dist, count
}

// Reachable reports whether dst is reachable from src.
func (g *Digraph) Reachable(src, dst int) bool {
	if src == dst {
		return true
	}
	return g.BFS(src)[dst] >= 0
}

// StronglyConnected reports whether the whole graph is strongly connected.
func (g *Digraph) StronglyConnected() bool {
	if g.n == 0 {
		return true
	}
	for _, d := range g.BFS(0) {
		if d < 0 {
			return false
		}
	}
	rev := g.Reverse()
	for _, d := range rev.BFS(0) {
		if d < 0 {
			return false
		}
	}
	return true
}

// Reverse returns the graph with every edge direction flipped.
func (g *Digraph) Reverse() *Digraph {
	out := New(g.n)
	for u, a := range g.adj {
		for _, v := range a {
			out.AddEdge(int(v), u)
		}
	}
	return out
}
