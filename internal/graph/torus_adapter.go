package graph

import "torusnet/internal/torus"

// FromTorus builds the digraph of a torus, one graph edge per directed
// torus link, in torus edge-index order (graph edge i corresponds to torus
// edge i in iteration order of adjacency lists built here).
func FromTorus(t *torus.Torus) *Digraph {
	g := New(t.Nodes())
	t.ForEachNode(func(u torus.Node) {
		for j := 0; j < t.D(); j++ {
			g.AddEdge(int(u), int(t.Step(u, j, torus.Plus)))
			g.AddEdge(int(u), int(t.Step(u, j, torus.Minus)))
		}
	})
	return g
}

// FromTorusWithout builds the torus digraph minus a set of failed directed
// links, for fault analysis.
func FromTorusWithout(t *torus.Torus, failed map[torus.Edge]bool) *Digraph {
	g := New(t.Nodes())
	t.ForEachEdge(func(e torus.Edge) {
		if !failed[e] {
			g.AddEdge(int(t.EdgeSource(e)), int(t.EdgeTarget(e)))
		}
	})
	return g
}
