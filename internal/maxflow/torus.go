package maxflow

import "torusnet/internal/torus"

// EdgeConnectivity returns the maximum number of edge-disjoint directed
// paths between two distinct torus nodes, treating every directed link as
// unit capacity. For the torus this is 2d whenever k ≥ 3 (and 2d counting
// the parallel links of a k=2 ring).
func EdgeConnectivity(t *torus.Torus, src, dst torus.Node) int {
	nw := New(t.Nodes())
	t.ForEachEdge(func(e torus.Edge) {
		nw.AddEdge(int(t.EdgeSource(e)), int(t.EdgeTarget(e)), 1)
	})
	return int(nw.MaxFlow(int(src), int(dst)))
}

// EdgeConnectivityWithout computes edge connectivity after removing the
// given failed links.
func EdgeConnectivityWithout(t *torus.Torus, src, dst torus.Node, failed map[torus.Edge]bool) int {
	nw := New(t.Nodes())
	t.ForEachEdge(func(e torus.Edge) {
		if !failed[e] {
			nw.AddEdge(int(t.EdgeSource(e)), int(t.EdgeTarget(e)), 1)
		}
	})
	return int(nw.MaxFlow(int(src), int(dst)))
}
