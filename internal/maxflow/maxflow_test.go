package maxflow

import (
	"math/rand"
	"testing"

	"torusnet/internal/torus"
)

func TestMaxFlowTinyNetwork(t *testing.T) {
	// Classic diamond: s=0, t=3; two disjoint unit paths.
	nw := New(4)
	nw.AddEdge(0, 1, 1)
	nw.AddEdge(0, 2, 1)
	nw.AddEdge(1, 3, 1)
	nw.AddEdge(2, 3, 1)
	if got := nw.MaxFlow(0, 3); got != 2 {
		t.Errorf("diamond max flow = %d, want 2", got)
	}
}

func TestMaxFlowWithBottleneck(t *testing.T) {
	nw := New(4)
	nw.AddEdge(0, 1, 5)
	nw.AddEdge(1, 2, 2)
	nw.AddEdge(2, 3, 5)
	if got := nw.MaxFlow(0, 3); got != 2 {
		t.Errorf("bottleneck max flow = %d, want 2", got)
	}
}

func TestMaxFlowSelfLoopAndSameNode(t *testing.T) {
	nw := New(2)
	nw.AddEdge(0, 1, 3)
	if got := nw.MaxFlow(0, 0); got != 0 {
		t.Errorf("s == t flow = %d, want 0", got)
	}
}

func TestMaxFlowDisconnected(t *testing.T) {
	nw := New(3)
	nw.AddEdge(0, 1, 1)
	if got := nw.MaxFlow(0, 2); got != 0 {
		t.Errorf("disconnected flow = %d, want 0", got)
	}
}

func TestMinCutMatchesFlow(t *testing.T) {
	nw := New(6)
	nw.AddEdge(0, 1, 3)
	nw.AddEdge(0, 2, 2)
	nw.AddEdge(1, 3, 2)
	nw.AddEdge(2, 3, 1)
	nw.AddEdge(2, 4, 2)
	nw.AddEdge(3, 5, 4)
	nw.AddEdge(4, 5, 1)
	flow := nw.MaxFlow(0, 5)
	cut := nw.MinCut(0)
	var cutCap int64
	for _, id := range cut {
		cutCap += nw.Capacity(id)
	}
	if cutCap != flow {
		t.Errorf("min cut capacity %d != max flow %d", cutCap, flow)
	}
}

func TestTorusEdgeConnectivityIs2D(t *testing.T) {
	// Menger: the torus (k ≥ 3) is 2d-edge-connected, and 2d is also the
	// out-degree ceiling.
	for _, c := range []struct{ k, d int }{{3, 1}, {4, 1}, {3, 2}, {4, 2}, {3, 3}} {
		tr := torus.New(c.k, c.d)
		rng := rand.New(rand.NewSource(1))
		for trial := 0; trial < 4; trial++ {
			src := torus.Node(rng.Intn(tr.Nodes()))
			dst := torus.Node(rng.Intn(tr.Nodes()))
			if src == dst {
				continue
			}
			if got := EdgeConnectivity(tr, src, dst); got != 2*c.d {
				t.Errorf("T^%d_%d: connectivity(%d,%d) = %d, want %d", c.d, c.k, src, dst, got, 2*c.d)
			}
		}
	}
}

func TestEdgeConnectivityAfterFailures(t *testing.T) {
	tr := torus.New(4, 2)
	src := tr.NodeAt([]int{0, 0})
	dst := tr.NodeAt([]int{2, 2})
	// Fail one of src's out-edges: connectivity drops to 3.
	failed := map[torus.Edge]bool{tr.EdgeFrom(src, 0, torus.Plus): true}
	if got := EdgeConnectivityWithout(tr, src, dst, failed); got != 3 {
		t.Errorf("after one failure: %d, want 3", got)
	}
	// Fail all four out-edges: disconnected.
	for j := 0; j < 2; j++ {
		failed[tr.EdgeFrom(src, j, torus.Plus)] = true
		failed[tr.EdgeFrom(src, j, torus.Minus)] = true
	}
	if got := EdgeConnectivityWithout(tr, src, dst, failed); got != 0 {
		t.Errorf("after isolating source: %d, want 0", got)
	}
}

func TestFlowAccessors(t *testing.T) {
	nw := New(2)
	id := nw.AddEdge(0, 1, 7)
	if nw.Capacity(id) != 7 {
		t.Errorf("capacity %d", nw.Capacity(id))
	}
	nw.MaxFlow(0, 1)
	if nw.Flow(id) != 7 {
		t.Errorf("flow %d, want 7", nw.Flow(id))
	}
	if nw.N() != 2 {
		t.Errorf("N = %d", nw.N())
	}
}

func TestLargeRandomNetworkFlowEqualsCut(t *testing.T) {
	// Max-flow/min-cut duality as a property check on random networks.
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		n := 12
		nw := New(n)
		for i := 0; i < 40; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				nw.AddEdge(u, v, int64(1+rng.Intn(5)))
			}
		}
		flow := nw.MaxFlow(0, n-1)
		var cutCap int64
		for _, id := range nw.MinCut(0) {
			cutCap += nw.Capacity(id)
		}
		if cutCap != flow {
			t.Fatalf("trial %d: cut %d != flow %d", trial, cutCap, flow)
		}
	}
}
