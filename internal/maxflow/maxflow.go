// Package maxflow implements Dinic's maximum-flow algorithm on integer-
// capacity networks. In this repository it serves as the exact engine for
// edge-connectivity questions: the number of edge-disjoint paths between
// processors (the fault-tolerance ceiling that UDR's s! route sets are
// measured against) and min-cut separators used to sanity-check bisection
// constructions on small tori.
package maxflow

// Network is a flow network over nodes 0..N-1.
type Network struct {
	n     int
	head  [][]int32 // per-node indices into edges
	to    []int32
	cap   []int64
	flow  []int64
	level []int32
	iter  []int32
}

// New creates an empty network with n nodes.
func New(n int) *Network {
	return &Network{n: n, head: make([][]int32, n)}
}

// N returns the number of nodes.
func (nw *Network) N() int { return nw.n }

// AddEdge inserts a directed edge u -> v with the given capacity and its
// residual reverse edge with capacity 0. It returns the edge's id, usable
// with Flow and Residual after a MaxFlow run.
func (nw *Network) AddEdge(u, v int, capacity int64) int {
	id := len(nw.to)
	nw.to = append(nw.to, int32(v))
	nw.cap = append(nw.cap, capacity)
	nw.flow = append(nw.flow, 0)
	nw.head[u] = append(nw.head[u], int32(id))
	// Reverse residual edge.
	nw.to = append(nw.to, int32(u))
	nw.cap = append(nw.cap, 0)
	nw.flow = append(nw.flow, 0)
	nw.head[v] = append(nw.head[v], int32(id+1))
	return id
}

// Flow returns the flow currently assigned to edge id.
func (nw *Network) Flow(id int) int64 { return nw.flow[id] }

// Capacity returns the capacity of edge id.
func (nw *Network) Capacity(id int) int64 { return nw.cap[id] }

func (nw *Network) residual(id int) int64 { return nw.cap[id] - nw.flow[id] }

// bfsLevels builds the level graph; returns false if t is unreachable.
func (nw *Network) bfsLevels(s, t int) bool {
	if nw.level == nil {
		nw.level = make([]int32, nw.n)
	}
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := make([]int32, 0, nw.n)
	queue = append(queue, int32(s))
	nw.level[s] = 0
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, id := range nw.head[u] {
			if nw.residual(int(id)) <= 0 {
				continue
			}
			v := nw.to[id]
			if nw.level[v] < 0 {
				nw.level[v] = nw.level[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return nw.level[t] >= 0
}

func (nw *Network) dfsAugment(u, t int, pushed int64) int64 {
	if u == t {
		return pushed
	}
	for ; nw.iter[u] < int32(len(nw.head[u])); nw.iter[u]++ {
		id := nw.head[u][nw.iter[u]]
		v := nw.to[id]
		if nw.residual(int(id)) <= 0 || nw.level[v] != nw.level[u]+1 {
			continue
		}
		avail := pushed
		if r := nw.residual(int(id)); r < avail {
			avail = r
		}
		if got := nw.dfsAugment(int(v), t, avail); got > 0 {
			nw.flow[id] += got
			nw.flow[id^1] -= got
			return got
		}
	}
	return 0
}

// MaxFlow computes the maximum s→t flow. It may be called once per network
// (flows accumulate); build a fresh network for each query.
func (nw *Network) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	if nw.iter == nil {
		nw.iter = make([]int32, nw.n)
	}
	var total int64
	const inf = int64(1) << 62
	for nw.bfsLevels(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			pushed := nw.dfsAugment(s, t, inf)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

// MinCut returns the edge ids of a minimum s-t cut after MaxFlow has run:
// the saturated forward edges from the residual-reachable side of s.
func (nw *Network) MinCut(s int) []int {
	reach := make([]bool, nw.n)
	reach[s] = true
	stack := []int32{int32(s)}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, id := range nw.head[u] {
			v := nw.to[id]
			if !reach[v] && nw.residual(int(id)) > 0 {
				reach[v] = true
				stack = append(stack, v)
			}
		}
	}
	var cut []int
	for u := 0; u < nw.n; u++ {
		if !reach[u] {
			continue
		}
		for _, id := range nw.head[u] {
			// Only original (even-indexed) edges count; residual reverses
			// are odd.
			if id%2 == 0 && !reach[nw.to[id]] && nw.cap[id] > 0 {
				cut = append(cut, int(id))
			}
		}
	}
	return cut
}
