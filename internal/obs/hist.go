package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket, lock-free histogram in the Prometheus mold:
// each bound is an inclusive upper edge (le), with an implicit +Inf
// overflow bucket, plus a running sum and count. Observe is a couple of
// atomic operations and is safe for concurrent use; bucket layouts are
// fixed at construction so rendering needs no locks either.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram over the given strictly ascending upper
// bounds. It panics on an empty or unsorted bound list — bucket layouts are
// static configuration, and a bad one should fail at startup, not skew
// metrics silently.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("obs: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly ascending")
		}
	}
	h := &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := len(h.bounds) // +Inf overflow bucket
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds, the Prometheus base unit.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistSnapshot is a point-in-time copy of a histogram's state. Counts are
// per-bucket (not cumulative); the final entry is the +Inf overflow bucket.
type HistSnapshot struct {
	Bounds []float64
	Counts []int64
	Count  int64
	Sum    float64
}

// Snapshot copies the histogram's current state. Concurrent observers may
// land between the bucket and count reads, so totals are only guaranteed
// consistent once observation has quiesced.
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}
