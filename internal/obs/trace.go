package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// SpanData is the immutable record of a finished span.
type SpanData struct {
	SpanID     uint64    `json:"span_id"`
	ParentID   uint64    `json:"parent_id,omitempty"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationNS int64     `json:"dur_ns"`
	Attrs      []Attr    `json:"attrs,omitempty"`
}

// Trace is one exported span tree, completed when its root span ended.
type Trace struct {
	TraceID string     `json:"trace_id"`
	Spans   []SpanData `json:"spans"`
}

// Wellformed checks the structural invariants of an exported trace: a
// non-empty trace ID, exactly one root, unique non-zero span IDs, every
// parent present, and no unnamed or negative-duration spans. The chaos
// suite asserts these hold even when failpoints abort requests mid-span.
func (tr Trace) Wellformed() error {
	if tr.TraceID == "" {
		return fmt.Errorf("trace has empty trace ID")
	}
	if len(tr.Spans) == 0 {
		return fmt.Errorf("trace %s has no spans", tr.TraceID)
	}
	ids := make(map[uint64]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		if s.SpanID == 0 {
			return fmt.Errorf("trace %s: span %q has zero ID", tr.TraceID, s.Name)
		}
		if ids[s.SpanID] {
			return fmt.Errorf("trace %s: duplicate span ID %d", tr.TraceID, s.SpanID)
		}
		ids[s.SpanID] = true
	}
	roots := 0
	for _, s := range tr.Spans {
		if s.Name == "" {
			return fmt.Errorf("trace %s: span %d has no name", tr.TraceID, s.SpanID)
		}
		if s.DurationNS < 0 {
			return fmt.Errorf("trace %s: span %q has negative duration", tr.TraceID, s.Name)
		}
		if s.ParentID == 0 {
			roots++
		} else if !ids[s.ParentID] {
			return fmt.Errorf("trace %s: span %q is orphaned (parent %d not recorded)",
				tr.TraceID, s.Name, s.ParentID)
		}
	}
	if roots != 1 {
		return fmt.Errorf("trace %s: %d root spans, want 1", tr.TraceID, roots)
	}
	return nil
}

// container accumulates the finished spans of one trace until the root span
// ends and the whole tree is exported to the tracer's ring buffer.
type container struct {
	tracer  *Tracer
	traceID string

	mu       sync.Mutex
	nextID   uint64
	finished []SpanData
	exported bool
}

func (c *container) startSpan(name string, parent uint64) *Span {
	c.mu.Lock()
	c.nextID++
	id := c.nextID
	c.mu.Unlock()
	return &Span{c: c, name: name, id: id, parent: parent, start: time.Now()}
}

// Span is one live timed region. The zero value of *Span (nil) is the
// disabled span: every method is a no-op, which is what keeps
// instrumentation sites free when no trace is active. A span belongs to the
// goroutine that started it; End is safe to call at most once effectively
// (later calls are ignored).
type Span struct {
	c      *container
	name   string
	id     uint64
	parent uint64
	start  time.Time

	// ended and attrs are guarded by c.mu so a late SetAttr racing an
	// export elsewhere in the tree stays race-clean.
	ended bool
	attrs []Attr
}

// SpanID returns the span's ID within its trace, or 0 for a nil span.
func (s *Span) SpanID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// SetAttr annotates the span. No-op on a nil or already-ended span.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	s.c.mu.Lock()
	if !s.ended {
		s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	}
	s.c.mu.Unlock()
}

// SetAttrInt annotates the span with an integer value.
func (s *Span) SetAttrInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(value, 10))
}

// SetAttrBool annotates the span with a boolean value.
func (s *Span) SetAttrBool(key string, value bool) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatBool(value))
}

// End finishes the span, recording its duration from the monotonic clock.
// Ending the root span exports the trace; a span that ends after its root
// exported is counted in the tracer's late-span counter and discarded, so
// exported traces never contain unfinished or dangling work.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	c := s.c
	c.mu.Lock()
	if s.ended {
		c.mu.Unlock()
		return
	}
	s.ended = true
	if c.exported {
		c.mu.Unlock()
		c.tracer.late.Add(1)
		return
	}
	c.finished = append(c.finished, SpanData{
		SpanID:     s.id,
		ParentID:   s.parent,
		Name:       s.name,
		Start:      s.start,
		DurationNS: d.Nanoseconds(),
		Attrs:      s.attrs,
	})
	if s.parent != 0 {
		c.mu.Unlock()
		return
	}
	spans := c.finished
	c.finished = nil
	c.exported = true
	c.mu.Unlock()
	c.tracer.export(Trace{TraceID: c.traceID, Spans: spans})
}

// spanKey carries the active *Span through a context.
type spanKey struct{}

// FromContext returns the active span in ctx, or nil.
func FromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// TraceIDFromContext returns the trace ID of the active span in ctx, or ""
// when no trace is active. Clients use it to propagate the request's
// traceparent downstream.
func TraceIDFromContext(ctx context.Context) string {
	if sp := FromContext(ctx); sp != nil {
		return sp.c.traceID
	}
	return ""
}

// Start begins a child of the span carried by ctx, or — when ctx has no
// active span but a default tracer is installed — a fresh root. With no
// span and no default tracer it returns (ctx, nil) without allocating,
// which is the hot disabled path.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent, ok := ctx.Value(spanKey{}).(*Span); ok && parent != nil {
		sp := parent.c.startSpan(name, parent.id)
		return context.WithValue(ctx, spanKey{}, sp), sp
	}
	return Default().Root(ctx, name, "")
}

// TracerStats is a snapshot of a tracer's lifetime counters.
type TracerStats struct {
	Exported int64 `json:"exported"` // traces exported into the ring
	Evicted  int64 `json:"evicted"`  // traces overwritten by newer ones
	Late     int64 `json:"late"`     // spans ended after their root exported
	Buffered int   `json:"buffered"` // traces currently held
}

// Tracer collects finished traces into a fixed-capacity ring buffer, newest
// overwriting oldest. A nil *Tracer is valid and inert.
type Tracer struct {
	mu   sync.Mutex
	ring []Trace
	next int
	n    int

	exported int64
	evicted  int64
	late     atomic.Int64
}

// NewTracer returns a tracer retaining up to capacity finished traces
// (default 256 when capacity <= 0).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{ring: make([]Trace, capacity)}
}

// Root begins a new trace rooted at name. An empty traceID generates a
// fresh one; callers seeding from an incoming traceparent pass the parsed
// ID through so distributed requests correlate. Nil-receiver safe: a nil
// tracer returns (ctx, nil).
func (t *Tracer) Root(ctx context.Context, name, traceID string) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	if traceID == "" {
		traceID = NewTraceID()
	}
	c := &container{tracer: t, traceID: traceID}
	sp := c.startSpan(name, 0)
	return context.WithValue(ctx, spanKey{}, sp), sp
}

func (t *Tracer) export(tr Trace) {
	t.mu.Lock()
	if t.n == len(t.ring) {
		t.evicted++
	} else {
		t.n++
	}
	t.ring[t.next] = tr
	t.next = (t.next + 1) % len(t.ring)
	t.exported++
	t.mu.Unlock()
}

// Snapshot returns up to n buffered traces, newest first (n <= 0 means
// all).
func (t *Tracer) Snapshot(n int) []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 || n > t.n {
		n = t.n
	}
	out := make([]Trace, 0, n)
	for i := 1; i <= n; i++ {
		//lint:ignore modmath t.next-i+len(ring) is non-negative: next < len(ring) and i <= n <= len(ring)
		out = append(out, t.ring[(t.next-i+len(t.ring))%len(t.ring)])
	}
	return out
}

// Stats returns the tracer's lifetime counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return TracerStats{
		Exported: t.exported,
		Evicted:  t.evicted,
		Late:     t.late.Load(),
		Buffered: t.n,
	}
}

// Handler serves buffered traces as JSON: an object with "stats" (the
// TracerStats) and "traces" (newest first). The optional ?n= query
// parameter caps the number of traces returned. Mounted at /debug/traces
// on the torusd debug sidecar.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		n := 0
		if q := r.URL.Query().Get("n"); q != "" {
			v, err := strconv.Atoi(q)
			if err != nil || v < 0 {
				http.Error(w, "invalid n", http.StatusBadRequest)
				return
			}
			n = v
		}
		data, err := json.MarshalIndent(struct {
			Stats  TracerStats `json:"stats"`
			Traces []Trace     `json:"traces"`
		}{t.Stats(), t.Snapshot(n)}, "", "  ")
		if err != nil {
			http.Error(w, "obs: trace encoding failed", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(data); err != nil {
			return // client went away mid-response; nothing to recover
		}
	})
}
