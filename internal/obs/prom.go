package obs

import (
	"bytes"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// This file renders metrics in the Prometheus text exposition format
// (version 0.0.4): "# HELP"/"# TYPE" comment pairs followed by sample
// lines. Writers render into a *bytes.Buffer — in-memory writes never fail,
// and callers flush the finished page to the response in one Write.

// PromContentType is the Content-Type for the text exposition format.
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// promFloat renders a sample value the way Prometheus expects, including
// the +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// PromEscape escapes a label value for the text format (backslash, quote,
// and newline).
func PromEscape(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func promHeader(w *bytes.Buffer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// PromCounter writes one unlabeled counter sample with its header.
func PromCounter(w *bytes.Buffer, name, help string, v float64) {
	promHeader(w, name, help, "counter")
	fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
}

// PromGauge writes one unlabeled gauge sample with its header.
func PromGauge(w *bytes.Buffer, name, help string, v float64) {
	promHeader(w, name, help, "gauge")
	fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
}

// PromLabeledCounter writes a counter header followed by one sample per
// (label value → count) entry, in the iteration order of vals — callers
// sort for stable output.
func PromLabeledCounter(w *bytes.Buffer, name, help, label string, keys []string, vals map[string]int64) {
	promHeader(w, name, help, "counter")
	for _, k := range keys {
		fmt.Fprintf(w, "%s{%s=\"%s\"} %s\n", name, label, PromEscape(k), promFloat(float64(vals[k])))
	}
}

// PromHistogram writes a full histogram family: cumulative le buckets
// (including +Inf), _sum, and _count.
func PromHistogram(w *bytes.Buffer, name, help string, h *Histogram) {
	promHeader(w, name, help, "histogram")
	s := h.Snapshot()
	cum := int64(0)
	for i, b := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, promFloat(b), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(s.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
}

// PromCounters writes every registered gated Counter as its own family.
func PromCounters(w *bytes.Buffer) {
	for _, c := range Counters() {
		PromCounter(w, c.Name(), c.Help(), float64(c.Value()))
	}
}
