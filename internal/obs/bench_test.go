package obs

import (
	"context"
	"testing"
	"time"
)

// The disabled paths below are the contract that lets instrumentation sit
// inside hot loops: like an unarmed failpoint, obs.Start with no active
// trace and Counter.Inc with the gate off must stay allocation-free and in
// the low single-digit nanoseconds. CI pins the allocation half via
// TestDisabledPathAllocFree; the ns/op halves are pinned against the ODR
// kernel by BenchmarkODRKernelCounterOverhead in internal/routing.

func BenchmarkStartDisabled(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "load.compute")
		sp.End()
	}
}

// Registered once at package level: the harness re-invokes benchmark
// functions while calibrating b.N, and NewCounter panics on re-registration.
var (
	benchDisabledCounter = NewCounter("obs_bench_disabled_total", "bench")
	benchEnabledCounter  = NewCounter("obs_bench_enabled_total", "bench")
)

func BenchmarkCounterIncDisabled(b *testing.B) {
	c := benchDisabledCounter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncEnabled(b *testing.B) {
	c := benchEnabledCounter
	SetCountersEnabled(true)
	defer SetCountersEnabled(false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkSpanLifecycle(b *testing.B) {
	tr := NewTracer(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, root := tr.Root(context.Background(), "http.request", "")
		_, sp := Start(ctx, "cache.get")
		sp.End()
		root.End()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(0.001, 0.01, 0.1, 1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveDuration(42 * time.Microsecond)
	}
}

// TestDisabledPathAllocFree pins the 0 allocs/op half of the acceptance
// criterion deterministically (benchmarks report it, but tests gate it).
func TestDisabledPathAllocFree(t *testing.T) {
	ctx := context.Background()
	c := NewCounter("obs_test_allocfree_total", "test")
	if n := testing.AllocsPerRun(100, func() {
		_, sp := Start(ctx, "load.compute")
		sp.SetAttr("k", "v")
		sp.End()
	}); n != 0 {
		t.Errorf("disabled Start path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
	}); n != 0 {
		t.Errorf("disabled Counter.Inc allocates %v/op, want 0", n)
	}
	h := NewHistogram(0.001, 0.01)
	if n := testing.AllocsPerRun(100, func() {
		h.Observe(0.005)
	}); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op, want 0", n)
	}
}
