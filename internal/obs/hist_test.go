package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock: bucket-boundary tests derive exact
// durations from it instead of the wall clock, so boundary observations
// land deterministically.
type fakeClock struct {
	t time.Time
}

func (c *fakeClock) Now() time.Time                   { return c.t }
func (c *fakeClock) Advance(d time.Duration)          { c.t = c.t.Add(d) }
func (c *fakeClock) Since(t0 time.Time) time.Duration { return c.t.Sub(t0) }

// TestHistogramBucketBoundaries pins the le-inclusive bucket semantics at
// exact boundaries using fake-clock durations: a value equal to a bound
// lands in that bound's bucket, one nanosecond more spills into the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram(0.001, 0.010, 0.100) // 1ms, 10ms, 100ms
	clk := &fakeClock{t: time.Unix(1000, 0)}

	observe := func(d time.Duration) {
		start := clk.Now()
		clk.Advance(d)
		h.ObserveDuration(clk.Since(start))
	}

	observe(1 * time.Millisecond)                 // == bound 0 → bucket 0
	observe(1*time.Millisecond + time.Nanosecond) // just over → bucket 1
	observe(10 * time.Millisecond)                // == bound 1 → bucket 1
	observe(100 * time.Millisecond)               // == bound 2 → bucket 2
	observe(150 * time.Millisecond)               // over the top → +Inf bucket
	observe(0)                                    // zero → bucket 0

	s := h.Snapshot()
	want := []int64{2, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d count = %d, want %d (all: %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 {
		t.Errorf("count = %d, want 6", s.Count)
	}
	wantSum := 0.001 + 0.001000000001 + 0.010 + 0.100 + 0.150 + 0
	if math.Abs(s.Sum-wantSum) > 1e-9 {
		t.Errorf("sum = %v, want %v", s.Sum, wantSum)
	}
}

func TestHistogramPanicsOnBadBounds(t *testing.T) {
	for name, bounds := range map[string][]float64{
		"empty":     {},
		"unsorted":  {1, 0.5},
		"duplicate": {1, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s bounds: no panic", name)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram(1, 2, 3)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(2.5)
			}
		}()
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != 8000 || s.Counts[2] != 8000 {
		t.Errorf("count = %d, bucket[2] = %d, want 8000 each", s.Count, s.Counts[2])
	}
	if math.Abs(s.Sum-8000*2.5) > 1e-6 {
		t.Errorf("sum = %v, want %v", s.Sum, 8000*2.5)
	}
}

func TestPromHistogramRendering(t *testing.T) {
	h := NewHistogram(0.5, 1)
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(5)

	var buf bytes.Buffer
	PromHistogram(&buf, "test_seconds", "help text", h)
	got := buf.String()
	for _, want := range []string{
		"# HELP test_seconds help text\n",
		"# TYPE test_seconds histogram\n",
		`test_seconds_bucket{le="0.5"} 1` + "\n",
		`test_seconds_bucket{le="1"} 2` + "\n",
		`test_seconds_bucket{le="+Inf"} 3` + "\n",
		"test_seconds_sum 6\n",
		"test_seconds_count 3\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("rendering missing %q:\n%s", want, got)
		}
	}
}

func TestPromWritersAndEscape(t *testing.T) {
	var buf bytes.Buffer
	PromCounter(&buf, "c_total", "a counter", 3)
	PromGauge(&buf, "g", "a gauge", 1.5)
	PromLabeledCounter(&buf, "by_ep_total", "per endpoint", "endpoint",
		[]string{`with"quote`}, map[string]int64{`with"quote`: 2})
	got := buf.String()
	for _, want := range []string{
		"# TYPE c_total counter\nc_total 3\n",
		"# TYPE g gauge\ng 1.5\n",
		`by_ep_total{endpoint="with\"quote"} 2` + "\n",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
	if got := PromEscape("a\\b\"c\nd"); got != `a\\b\"c\nd` {
		t.Errorf("PromEscape = %q", got)
	}
	if promFloat(math.Inf(1)) != "+Inf" || promFloat(math.Inf(-1)) != "-Inf" || promFloat(math.NaN()) != "NaN" {
		t.Error("promFloat special values wrong")
	}
}

func TestGatedCounters(t *testing.T) {
	c := NewCounter("obs_test_events_total", "test counter")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("disabled counter recorded %d", c.Value())
	}
	SetCountersEnabled(true)
	defer SetCountersEnabled(false)
	if !CountersEnabled() {
		t.Fatal("gate did not enable")
	}
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("enabled counter = %d, want 3", c.Value())
	}

	found := false
	for _, rc := range Counters() {
		if rc.Name() == "obs_test_events_total" {
			found = true
		}
	}
	if !found {
		t.Error("counter not in registry")
	}
	var buf bytes.Buffer
	PromCounters(&buf)
	if !strings.Contains(buf.String(), "obs_test_events_total 3") {
		t.Errorf("PromCounters missing sample:\n%s", buf.String())
	}

	for name, bad := range map[string]string{
		"duplicate": "obs_test_events_total",
		"malformed": "9bad name",
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s counter name: no panic", name)
				}
			}()
			NewCounter(bad, "")
		}()
	}
}
