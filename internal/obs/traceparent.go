package obs

import (
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
)

// TraceparentHeader is the canonical W3C trace-context header name. torusd
// accepts it on requests, echoes it on responses, and the typed/resilient
// clients propagate it downstream (same trace ID across retries and hedges,
// fresh span ID per attempt).
const TraceparentHeader = "traceparent"

// NewTraceID returns a random 16-byte trace ID as 32 lowercase hex digits,
// never all-zero (the W3C invalid value).
func NewTraceID() string {
	var b [16]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			// crypto/rand never fails on supported platforms; a broken
			// entropy source is unrecoverable for the process anyway.
			panic("obs: crypto/rand failed: " + err.Error())
		}
		if b != [16]byte{} {
			return hex.EncodeToString(b[:])
		}
	}
}

// NewSpanID returns a random non-zero span ID for traceparent headers.
func NewSpanID() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			panic("obs: crypto/rand failed: " + err.Error())
		}
		if v := binary.BigEndian.Uint64(b[:]); v != 0 {
			return v
		}
	}
}

// FormatTraceparent renders a version-00 sampled traceparent value:
// "00-<trace-id>-<span-id>-01".
func FormatTraceparent(traceID string, spanID uint64) string {
	return fmt.Sprintf("00-%s-%016x-01", traceID, spanID)
}

// ParseTraceparent extracts the trace ID from a version-00 traceparent
// header value. It reports ok=false for malformed values, unknown versions,
// and the all-zero (invalid) trace ID.
func ParseTraceparent(h string) (traceID string, ok bool) {
	parts := strings.Split(strings.TrimSpace(h), "-")
	if len(parts) != 4 || parts[0] != "00" ||
		len(parts[1]) != 32 || len(parts[2]) != 16 || len(parts[3]) != 2 {
		return "", false
	}
	if !isLowerHex(parts[1]) || !isLowerHex(parts[2]) || !isLowerHex(parts[3]) {
		return "", false
	}
	if parts[1] == strings.Repeat("0", 32) || parts[2] == strings.Repeat("0", 16) {
		return "", false
	}
	return parts[1], true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
