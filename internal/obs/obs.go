// Package obs is a zero-dependency observability layer for the torusnet
// tree: context-propagated spans with monotonic timings, fixed-bucket
// histograms with Prometheus text rendering, W3C traceparent request-ID
// helpers, and cheap gated counters for hot routing kernels.
//
// The design mirrors internal/failpoint's discipline: every instrumentation
// site must be close to free when observability is off. A *Span is nil when
// no trace is active, and all Span methods are nil-receiver safe, so the
// disabled path through obs.Start is one context lookup, one atomic load,
// and no allocations. Counter.Inc behind a disabled gate is a single atomic
// load. Both paths are pinned by benchmarks in bench_test.go and by the
// routing-kernel acceptance benchmark (0 allocs/op, low single-digit ns).
//
// Spans form per-request trees. A root span is created by Tracer.Root
// (typically in the HTTP middleware, seeded from an incoming traceparent
// header); children are created by Start from the context. Ending the root
// exports the finished trace into the tracer's ring buffer, where it can be
// read back as JSON via Tracer.Handler (mounted at /debug/traces on the
// torusd debug sidecar). Spans that end after their root has exported are
// counted as late rather than recorded, so exported traces are always
// well-formed: see Trace.Wellformed.
//
// There is no sampling and no wire protocol: this package exists to answer
// "where did this request spend its time" for a single process, the same
// per-stage attribution exercise the paper performs on torus links when
// bounding E_max (PAPER.md; DESIGN.md §11 documents naming conventions and
// bucket choices).
package obs

import "sync/atomic"

// defaultTracer is the process-global tracer used by Start when the context
// carries no active span. It is nil until SetDefault installs one, so
// library code instrumented with Start is inert in tests and benchmarks.
var defaultTracer atomic.Pointer[Tracer]

// SetDefault installs t as the process-global fallback tracer used by Start
// for root spans. Passing nil disables the fallback.
func SetDefault(t *Tracer) {
	defaultTracer.Store(t)
}

// Default returns the process-global tracer, or nil if none is installed.
func Default() *Tracer {
	return defaultTracer.Load()
}
