package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanTreeExport(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Root(context.Background(), "http.request", "")
	root.SetAttr("path", "/v1/analyze")

	cctx, child := Start(ctx, "cache.get")
	child.SetAttrBool("hit", false)
	_, grand := Start(cctx, "pool.run")
	grand.SetAttrInt("workers", 4)
	grand.End()
	child.End()
	root.End()

	traces := tr.Snapshot(0)
	if len(traces) != 1 {
		t.Fatalf("Snapshot: %d traces, want 1", len(traces))
	}
	got := traces[0]
	if err := got.Wellformed(); err != nil {
		t.Fatalf("Wellformed: %v", err)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("spans = %d, want 3", len(got.Spans))
	}
	byName := map[string]SpanData{}
	for _, s := range got.Spans {
		byName[s.Name] = s
	}
	if byName["cache.get"].ParentID != byName["http.request"].SpanID {
		t.Error("cache.get not parented to http.request")
	}
	if byName["pool.run"].ParentID != byName["cache.get"].SpanID {
		t.Error("pool.run not parented to cache.get")
	}
	if a := byName["pool.run"].Attrs; len(a) != 1 || a[0] != (Attr{"workers", "4"}) {
		t.Errorf("pool.run attrs = %v", a)
	}
	if st := tr.Stats(); st.Exported != 1 || st.Late != 0 || st.Buffered != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLateSpanDiscarded(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Root(context.Background(), "root", "")
	_, straggler := Start(ctx, "wedged.worker")
	root.End() // export before the child finishes
	straggler.End()

	traces := tr.Snapshot(0)
	if len(traces) != 1 {
		t.Fatalf("Snapshot: %d traces, want 1", len(traces))
	}
	if err := traces[0].Wellformed(); err != nil {
		t.Fatalf("trace with straggler not wellformed: %v", err)
	}
	for _, s := range traces[0].Spans {
		if s.Name == "wedged.worker" {
			t.Error("late span leaked into the exported trace")
		}
	}
	if st := tr.Stats(); st.Late != 1 {
		t.Errorf("late = %d, want 1", st.Late)
	}
	straggler.End() // double End after lateness stays a no-op
	if st := tr.Stats(); st.Late != 1 {
		t.Errorf("late after double End = %d, want 1", st.Late)
	}
}

func TestDoubleEndAndNilSafety(t *testing.T) {
	tr := NewTracer(2)
	_, root := tr.Root(context.Background(), "r", "")
	root.End()
	root.End()
	if st := tr.Stats(); st.Exported != 1 {
		t.Errorf("double End exported %d traces", st.Exported)
	}

	var nilSpan *Span
	nilSpan.SetAttr("k", "v")
	nilSpan.SetAttrInt("k", 1)
	nilSpan.SetAttrBool("k", true)
	nilSpan.End()
	if nilSpan.SpanID() != 0 {
		t.Error("nil span has non-zero ID")
	}

	var nilTracer *Tracer
	ctx, sp := nilTracer.Root(context.Background(), "r", "")
	if sp != nil || ctx != context.Background() {
		t.Error("nil tracer Root should be inert")
	}
	if nilTracer.Snapshot(0) != nil || nilTracer.Stats() != (TracerStats{}) {
		t.Error("nil tracer Snapshot/Stats should be zero")
	}
}

func TestStartWithoutTraceIsInert(t *testing.T) {
	if Default() != nil {
		t.Fatal("test requires no default tracer")
	}
	ctx := context.Background()
	got, sp := Start(ctx, "load.compute")
	if sp != nil {
		t.Fatal("Start without a trace returned a live span")
	}
	if got != ctx {
		t.Fatal("Start without a trace must return the context unchanged")
	}
	if FromContext(got) != nil || TraceIDFromContext(got) != "" {
		t.Fatal("inert context leaked span state")
	}
}

func TestStartFallsBackToDefaultTracer(t *testing.T) {
	tr := NewTracer(2)
	SetDefault(tr)
	defer SetDefault(nil)
	_, sp := Start(context.Background(), "standalone")
	if sp == nil {
		t.Fatal("Start did not use the default tracer")
	}
	sp.End()
	if got := tr.Snapshot(0); len(got) != 1 || got[0].Spans[0].Name != "standalone" {
		t.Fatalf("default tracer did not receive the trace: %+v", got)
	}
}

func TestRingEviction(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 3; i++ {
		_, root := tr.Root(context.Background(), "r", "")
		root.End()
	}
	st := tr.Stats()
	if st.Exported != 3 || st.Evicted != 1 || st.Buffered != 2 {
		t.Errorf("stats = %+v, want exported 3 evicted 1 buffered 2", st)
	}
	if got := tr.Snapshot(1); len(got) != 1 {
		t.Errorf("Snapshot(1) = %d traces", len(got))
	}
}

func TestWellformedRejectsBadTraces(t *testing.T) {
	base := func() Trace {
		return Trace{TraceID: "t", Spans: []SpanData{
			{SpanID: 1, Name: "root"},
			{SpanID: 2, ParentID: 1, Name: "child"},
		}}
	}
	if err := base().Wellformed(); err != nil {
		t.Fatalf("base trace: %v", err)
	}
	cases := map[string]func(*Trace){
		"empty id":     func(tr *Trace) { tr.TraceID = "" },
		"no spans":     func(tr *Trace) { tr.Spans = nil },
		"zero span id": func(tr *Trace) { tr.Spans[1].SpanID = 0; tr.Spans[1].ParentID = 0 },
		"dup span id":  func(tr *Trace) { tr.Spans[1].SpanID = 1 },
		"orphan":       func(tr *Trace) { tr.Spans[1].ParentID = 99 },
		"two roots":    func(tr *Trace) { tr.Spans[1].ParentID = 0 },
		"unnamed":      func(tr *Trace) { tr.Spans[1].Name = "" },
		"negative dur": func(tr *Trace) { tr.Spans[1].DurationNS = -1 },
	}
	for name, mutate := range cases {
		tr := base()
		mutate(&tr)
		if err := tr.Wellformed(); err == nil {
			t.Errorf("%s: Wellformed accepted a bad trace", name)
		}
	}
}

func TestConcurrentSpansRaceClean(t *testing.T) {
	tr := NewTracer(8)
	ctx, root := tr.Root(context.Background(), "root", "")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, sp := Start(ctx, "worker")
			sp.SetAttrInt("i", 1)
			sp.End()
		}()
	}
	wg.Wait()
	root.End()
	traces := tr.Snapshot(0)
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	if err := traces[0].Wellformed(); err != nil {
		t.Fatal(err)
	}
	if len(traces[0].Spans) != 9 {
		t.Errorf("spans = %d, want 9", len(traces[0].Spans))
	}
}

func TestTracerHandler(t *testing.T) {
	tr := NewTracer(4)
	ctx, root := tr.Root(context.Background(), "http.request", "")
	_, sp := Start(ctx, "cache.get")
	sp.End()
	root.End()

	rec := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var body struct {
		Stats  TracerStats `json:"stats"`
		Traces []Trace     `json:"traces"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Stats.Exported != 1 || len(body.Traces) != 1 || len(body.Traces[0].Spans) != 2 {
		t.Errorf("unexpected body: %+v", body)
	}

	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/debug/traces", nil))
	if rec.Code != 405 {
		t.Errorf("POST status %d, want 405", rec.Code)
	}
	rec = httptest.NewRecorder()
	tr.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?n=bogus", nil))
	if rec.Code != 400 {
		t.Errorf("bad n status %d, want 400", rec.Code)
	}
}

func TestSpanDurationsMonotonic(t *testing.T) {
	tr := NewTracer(1)
	_, root := tr.Root(context.Background(), "r", "")
	time.Sleep(2 * time.Millisecond)
	root.End()
	sp := tr.Snapshot(0)[0].Spans[0]
	if sp.DurationNS < int64(time.Millisecond) {
		t.Errorf("duration %dns, want >= 1ms", sp.DurationNS)
	}
}

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	if len(tid) != 32 || !isLowerHex(tid) {
		t.Fatalf("NewTraceID() = %q", tid)
	}
	if NewSpanID() == 0 {
		t.Fatal("NewSpanID returned 0")
	}
	h := FormatTraceparent(tid, 0xabc)
	if !strings.HasPrefix(h, "00-"+tid+"-") || !strings.HasSuffix(h, "-01") {
		t.Fatalf("FormatTraceparent = %q", h)
	}
	got, ok := ParseTraceparent(h)
	if !ok || got != tid {
		t.Fatalf("ParseTraceparent(%q) = %q, %v", h, got, ok)
	}

	bad := []string{
		"",
		"garbage",
		"01-" + tid + "-00000000000000ab-01", // unknown version
		"00-" + strings.Repeat("0", 32) + "-00000000000000ab-01", // zero trace id
		"00-" + tid + "-0000000000000000-01",                     // zero span id
		"00-" + strings.ToUpper(tid) + "-00000000000000ab-01",    // uppercase hex
		"00-" + tid[:30] + "-00000000000000ab-01",                // short trace id
		"00-" + tid + "-00000000000000ab",                        // missing flags
	}
	for _, h := range bad {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
}
