package obs

import (
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

// countersEnabled gates every registered Counter at once. Off (the default)
// the increment path is a single atomic load and branch, cheap enough to
// sit inside the per-pair routing kernels; torusd flips it on at boot.
var countersEnabled atomic.Bool

// SetCountersEnabled turns the global counter gate on or off.
func SetCountersEnabled(on bool) {
	countersEnabled.Store(on)
}

// CountersEnabled reports whether gated counters are recording.
func CountersEnabled() bool {
	return countersEnabled.Load()
}

// Counter is a monotonically increasing gated counter. Increments are
// dropped while the global gate is off, so hot loops can carry an Inc
// unconditionally.
type Counter struct {
	name string
	help string
	n    atomic.Int64
}

// Inc adds one if the global gate is on.
func (c *Counter) Inc() {
	if !countersEnabled.Load() {
		return
	}
	c.n.Add(1)
}

// Add adds delta if the global gate is on.
func (c *Counter) Add(delta int64) {
	if !countersEnabled.Load() {
		return
	}
	c.n.Add(delta)
}

// Value returns the counter's current value.
func (c *Counter) Value() int64 {
	return c.n.Load()
}

// Name returns the counter's registered (Prometheus-style) name.
func (c *Counter) Name() string { return c.name }

// Help returns the counter's help text.
func (c *Counter) Help() string { return c.help }

var (
	counterMu  sync.Mutex
	counterReg = make(map[string]*Counter)
)

var promNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// NewCounter registers a process-global counter under a Prometheus-legal
// name. It panics on a duplicate or malformed name: counters are declared
// in package var blocks, so both are programming errors best caught at
// init.
func NewCounter(name, help string) *Counter {
	if !promNameRe.MatchString(name) {
		panic("obs: invalid counter name " + name)
	}
	counterMu.Lock()
	defer counterMu.Unlock()
	if counterReg[name] != nil {
		panic("obs: duplicate counter " + name)
	}
	c := &Counter{name: name, help: help}
	counterReg[name] = c
	return c
}

// Counters returns all registered counters sorted by name.
func Counters() []*Counter {
	counterMu.Lock()
	defer counterMu.Unlock()
	out := make([]*Counter, 0, len(counterReg))
	for _, c := range counterReg {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
