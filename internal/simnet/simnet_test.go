package simnet

import (
	"testing"

	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func build(t *testing.T, spec placement.Spec, tr *torus.Torus) *placement.Placement {
	t.Helper()
	p, err := spec.Build(tr)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name(), err)
	}
	return p
}

func TestAllPacketsDelivered(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 1})
	if st.Aborted {
		t.Fatal("simulation aborted")
	}
	if st.Packets != p.Pairs() {
		t.Errorf("packets = %d, want %d", st.Packets, p.Pairs())
	}
	if st.Cycles <= 0 {
		t.Error("no cycles elapsed")
	}
}

func TestTotalHopsEqualsLeeSum(t *testing.T) {
	// Every packet travels exactly Lee(p,q) hops under minimal routing.
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}, routing.FAR{}} {
		st := Run(Config{Placement: p, Algorithm: alg, Seed: 2})
		if want := int(load.ExpectedTotal(p)); st.TotalHops != want {
			t.Errorf("%s: total hops %d, want %d", alg.Name(), st.TotalHops, want)
		}
	}
}

func TestCompletionAtLeastMaxTraffic(t *testing.T) {
	// A link delivers one packet per cycle, so cycles >= max link traffic.
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 3})
	if st.Cycles < st.MaxLinkTraffic {
		t.Errorf("cycles %d below max link traffic %d", st.Cycles, st.MaxLinkTraffic)
	}
}

func TestODRTrafficMatchesExactLoads(t *testing.T) {
	// ODR is deterministic, so per-link traffic equals the exact load and
	// the max equals E_max.
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := load.Compute(p, routing.ODR{}, load.Options{})
	st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 4})
	if float64(st.MaxLinkTraffic) != res.Max {
		t.Errorf("sim max traffic %d, exact E_max %v", st.MaxLinkTraffic, res.Max)
	}
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := Run(Config{Placement: p, Algorithm: routing.UDR{}, Seed: 5, Workers: 1})
	b := Run(Config{Placement: p, Algorithm: routing.UDR{}, Seed: 5, Workers: 7})
	if a.Cycles != b.Cycles || a.MaxLinkTraffic != b.MaxLinkTraffic ||
		a.MeanLatency != b.MeanLatency || a.MaxQueueLen != b.MaxQueueLen {
		t.Errorf("worker counts disagree: %s vs %s", a, b)
	}
}

func TestSameSeedSameResult(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := Run(Config{Placement: p, Algorithm: routing.FAR{}, Seed: 6})
	b := Run(Config{Placement: p, Algorithm: routing.FAR{}, Seed: 6})
	if a.Cycles != b.Cycles || a.TotalHops != b.TotalHops {
		t.Error("same seed should reproduce the run exactly")
	}
}

func TestMaxCyclesAborts(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Full{}, tr)
	st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 7, MaxCycles: 2})
	if !st.Aborted {
		t.Error("expected abort at MaxCycles")
	}
	if st.Cycles != 2 {
		t.Errorf("cycles = %d, want 2", st.Cycles)
	}
}

func TestFullTorusSlowerThanLinearPlacement(t *testing.T) {
	// The headline motivation: a complete exchange on the fully populated
	// torus needs superlinearly more cycles per processor than on a linear
	// placement.
	// At small k the linear placement's completion is dominated by path
	// latency rather than load, so the separation needs k large enough for
	// the full torus's superlinear E_max (~k³/8 for d=2) to bite.
	tr := torus.New(10, 2)
	full := Run(Config{Placement: build(t, placement.Full{}, tr), Algorithm: routing.ODR{}, Seed: 8})
	lin := Run(Config{Placement: build(t, placement.Linear{C: 0}, tr), Algorithm: routing.ODR{}, Seed: 8})
	// Normalize by processor count: cycles per processor.
	fullNorm := float64(full.Cycles) / 100
	linNorm := float64(lin.Cycles) / 10
	if fullNorm <= linNorm {
		t.Errorf("full torus %.2f cycles/proc should exceed linear %.2f", fullNorm, linNorm)
	}
}

func TestUDRFinishesNoLaterThanODROnAverage(t *testing.T) {
	// UDR spreads the funneled load, so its completion time should not be
	// meaningfully worse; allow slack for sampling noise.
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	odr := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 9})
	udr := Run(Config{Placement: p, Algorithm: routing.UDR{}, Seed: 9})
	if udr.Cycles > odr.Cycles+odr.Cycles/2 {
		t.Errorf("UDR cycles %d far above ODR %d", udr.Cycles, odr.Cycles)
	}
}

func TestThroughputAndString(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 10})
	if st.Throughput() <= 0 {
		t.Error("throughput should be positive")
	}
	if st.String() == "" {
		t.Error("String() empty")
	}
	var empty Stats
	if empty.Throughput() != 0 {
		t.Error("zero-cycle throughput should be 0")
	}
}

func TestLatencyAtLeastPathLength(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 11})
	// Max latency is at least the longest path (a packet needs >= 1 cycle
	// per hop), and mean latency at least the mean path length.
	maxLee := 0
	sumLee := 0
	for _, src := range p.Nodes() {
		for _, dst := range p.Nodes() {
			if src == dst {
				continue
			}
			l := tr.LeeDistance(src, dst)
			sumLee += l
			if l > maxLee {
				maxLee = l
			}
		}
	}
	if st.MaxLatency < maxLee {
		t.Errorf("max latency %d below longest path %d", st.MaxLatency, maxLee)
	}
	if st.MeanLatency < float64(sumLee)/float64(p.Pairs()) {
		t.Errorf("mean latency %v below mean path length %v", st.MeanLatency, float64(sumLee)/float64(p.Pairs()))
	}
}

func TestQueuePopCompaction(t *testing.T) {
	var q queue
	for i := 0; i < 5000; i++ {
		q.push(int32(i))
	}
	for i := 0; i < 5000; i++ {
		if got := q.pop(); got != int32(i) {
			t.Fatalf("pop %d = %d", i, got)
		}
	}
	if !q.empty() {
		t.Error("queue should be empty")
	}
}

func TestBoundedQueuesRespectCapacity(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	for _, capacity := range []int{1, 2, 4} {
		st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 1,
			QueueCapacity: capacity, MaxCycles: 10000})
		if st.Deadlocked || st.Aborted {
			t.Fatalf("cap=%d: linear placement should complete: %s", capacity, st)
		}
		if st.MaxQueueLen > capacity {
			t.Errorf("cap=%d: max queue %d exceeds capacity", capacity, st.MaxQueueLen)
		}
		if st.Packets != p.Pairs() {
			t.Errorf("cap=%d: packets %d", capacity, st.Packets)
		}
	}
}

func TestFullTorusDeadlocksWithTinyBuffers(t *testing.T) {
	// Classical store-and-forward deadlock: wrap-around rings full of
	// packets each waiting for the next buffer. The fully populated torus
	// with burst injection hits it at small capacities; the linear
	// placement (30× fewer packets) never does.
	tr := torus.New(6, 2)
	full := build(t, placement.Full{}, tr)
	st := Run(Config{Placement: full, Algorithm: routing.ODR{}, Seed: 1,
		QueueCapacity: 2, MaxCycles: 100000})
	if !st.Deadlocked {
		t.Errorf("expected deadlock for full torus with capacity 2: %s", st)
	}
	// Large buffers restore completion.
	ok := Run(Config{Placement: full, Algorithm: routing.ODR{}, Seed: 1,
		QueueCapacity: 64, MaxCycles: 100000})
	if ok.Deadlocked || ok.Aborted {
		t.Errorf("capacity 64 should complete: %s", ok)
	}
}

func TestInjectIntervalPacesTraffic(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	burst := Run(Config{Placement: p, Algorithm: routing.UDR{}, Seed: 1})
	paced := Run(Config{Placement: p, Algorithm: routing.UDR{}, Seed: 1, InjectInterval: 5})
	if paced.Deadlocked || paced.Aborted {
		t.Fatalf("paced run failed: %s", paced)
	}
	if paced.Cycles <= burst.Cycles {
		t.Errorf("pacing should stretch completion: paced %d vs burst %d", paced.Cycles, burst.Cycles)
	}
	if paced.MaxQueueLen > burst.MaxQueueLen {
		t.Errorf("pacing should not increase queueing: paced %d vs burst %d",
			paced.MaxQueueLen, burst.MaxQueueLen)
	}
	if paced.Packets != burst.Packets || paced.TotalHops != burst.TotalHops {
		t.Error("pacing must not change the work done")
	}
}

func TestPacedInjectionAvoidsDeadlock(t *testing.T) {
	tr := torus.New(6, 2)
	full := build(t, placement.Full{}, tr)
	blocked := Run(Config{Placement: full, Algorithm: routing.ODR{}, Seed: 1,
		QueueCapacity: 4, MaxCycles: 100000})
	if !blocked.Deadlocked {
		t.Skip("burst run did not deadlock; pacing comparison moot")
	}
	paced := Run(Config{Placement: full, Algorithm: routing.ODR{}, Seed: 1,
		QueueCapacity: 4, InjectInterval: 4, MaxCycles: 100000})
	if paced.Deadlocked || paced.Aborted {
		t.Errorf("paced injection should drain the same load: %s", paced)
	}
}

func TestPerDimTrafficAndUtilization(t *testing.T) {
	tr := torus.New(5, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 2})
	if len(st.PerDimTraffic) != 3 {
		t.Fatalf("per-dim arity %d", len(st.PerDimTraffic))
	}
	maxDim := 0
	for _, v := range st.PerDimTraffic {
		if v > maxDim {
			maxDim = v
		}
	}
	if maxDim != st.MaxLinkTraffic {
		t.Errorf("per-dim max %d != overall %d", maxDim, st.MaxLinkTraffic)
	}
	if st.LinkUtilization <= 0 || st.LinkUtilization > 1 {
		t.Errorf("utilization %v out of (0,1]", st.LinkUtilization)
	}
}

func TestBoundedRunDeterministicAcrossWorkers(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Full{}, tr)
	a := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 3, QueueCapacity: 8,
		InjectInterval: 2, MaxCycles: 50000, Workers: 1})
	b := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 3, QueueCapacity: 8,
		InjectInterval: 2, MaxCycles: 50000, Workers: 5})
	if a.Cycles != b.Cycles || a.Deadlocked != b.Deadlocked || a.TotalHops != b.TotalHops ||
		a.MaxQueueLen != b.MaxQueueLen {
		t.Errorf("worker counts disagree: %s vs %s", a, b)
	}
}

func TestSortByInjection(t *testing.T) {
	ids := []int32{0, 1, 2, 3, 4}
	times := []int32{3, 0, 3, 1, 0}
	sortByInjection(ids, times)
	want := []int32{1, 4, 3, 0, 2} // stable by (time, id)
	for i, id := range ids {
		if id != want[i] {
			t.Fatalf("order %v, want %v", ids, want)
		}
	}
}

func TestAdaptiveDeliversEverything(t *testing.T) {
	tr := torus.New(6, 2)
	for _, spec := range []placement.Spec{placement.Linear{C: 0}, placement.Full{}} {
		p := build(t, spec, tr)
		st := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 1, Adaptive: true,
			MaxCycles: 100000})
		if st.Aborted || st.Deadlocked {
			t.Fatalf("%s: adaptive run failed: %s", spec.Name(), st)
		}
		if st.Packets != p.Pairs() {
			t.Errorf("%s: packets %d", spec.Name(), st.Packets)
		}
		// Adaptive hops are still minimal: total = Lee sum.
		if want := int(load.ExpectedTotal(p)); st.TotalHops != want {
			t.Errorf("%s: hops %d, want Lee sum %d", spec.Name(), st.TotalHops, want)
		}
	}
}

func TestAdaptiveNoSlowerThanODROnFullTorus(t *testing.T) {
	// Congestion-aware next-hop choice should beat (or match) oblivious
	// dimension-ordered routing on the heavy full-torus exchange.
	tr := torus.New(8, 2)
	p := build(t, placement.Full{}, tr)
	odr := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 2})
	adaptive := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 2, Adaptive: true})
	if adaptive.Cycles > odr.Cycles {
		t.Errorf("adaptive %d cycles, ODR %d — adaptivity should not lose here",
			adaptive.Cycles, odr.Cycles)
	}
	// Note: adaptive minimizes queueing delay, not global peak traffic —
	// its MaxLinkTraffic can slightly exceed ODR's even while finishing
	// sooner, so only completion time is asserted.
}

func TestAdaptiveDeterministic(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 3, Adaptive: true, Workers: 1})
	b := Run(Config{Placement: p, Algorithm: routing.ODR{}, Seed: 3, Adaptive: true, Workers: 6})
	if a.Cycles != b.Cycles || a.TotalHops != b.TotalHops || a.MaxQueueLen != b.MaxQueueLen {
		t.Errorf("adaptive runs diverge: %s vs %s", a, b)
	}
}

func TestOpenLoopLowRateKeepsUp(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	st := RunOpenLoop(OpenLoopConfig{Placement: p, Algorithm: routing.UDR{},
		Rate: 0.1, Warmup: 200, Measure: 800, Seed: 1})
	if st.Saturated() {
		t.Errorf("10%% offered load should not saturate a linear placement: %+v", st)
	}
	if st.MeanLatency <= 0 {
		t.Error("no latency measured")
	}
	// Delivered tracks injected in steady state (within stochastic slack).
	if st.Delivered < st.Injected*8/10 {
		t.Errorf("delivered %d far below injected %d", st.Delivered, st.Injected)
	}
}

func TestOpenLoopFullTorusSaturatesBeforeLinear(t *testing.T) {
	// The §1 throughput statement as a saturation point: uniform traffic
	// loads the full torus's links at ρ ≈ λ·k/8 per unit injection rate
	// (mean distance k/2 over 4 links per node), so k=12 saturates below
	// λ=0.9, while the linear placement with k× fewer injectors runs at
	// ρ ≈ λ/8 and keeps up easily at the same per-processor rate.
	tr := torus.New(12, 2)
	lin := build(t, placement.Linear{C: 0}, tr)
	full := build(t, placement.Full{}, tr)
	const rate = 0.9
	linStats := RunOpenLoop(OpenLoopConfig{Placement: lin, Algorithm: routing.ODR{},
		Rate: rate, Warmup: 300, Measure: 900, Seed: 2})
	fullStats := RunOpenLoop(OpenLoopConfig{Placement: full, Algorithm: routing.ODR{},
		Rate: rate, Warmup: 300, Measure: 900, Seed: 2})
	if linStats.Saturated() {
		t.Errorf("linear placement saturated at rate %v: %+v", rate, linStats)
	}
	if !fullStats.Saturated() {
		t.Errorf("full torus should saturate at rate %v: %+v", rate, fullStats)
	}
	if fullStats.MeanQueue/float64(full.Size()) <= linStats.MeanQueue/float64(lin.Size()) {
		t.Errorf("full torus per-proc queue (%v) should dwarf linear's (%v)",
			fullStats.MeanQueue/float64(full.Size()), linStats.MeanQueue/float64(lin.Size()))
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	a := RunOpenLoop(OpenLoopConfig{Placement: p, Algorithm: routing.FAR{},
		Rate: 0.3, Warmup: 50, Measure: 200, Seed: 7})
	b := RunOpenLoop(OpenLoopConfig{Placement: p, Algorithm: routing.FAR{},
		Rate: 0.3, Warmup: 50, Measure: 200, Seed: 7})
	if a.Delivered != b.Delivered || a.MeanLatency != b.MeanLatency {
		t.Error("same seed must reproduce the run")
	}
}

func TestOpenLoopLatencyGrowsWithRate(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Full{}, tr)
	low := RunOpenLoop(OpenLoopConfig{Placement: p, Algorithm: routing.ODR{},
		Rate: 0.05, Warmup: 200, Measure: 600, Seed: 3})
	high := RunOpenLoop(OpenLoopConfig{Placement: p, Algorithm: routing.ODR{},
		Rate: 0.6, Warmup: 200, Measure: 600, Seed: 3})
	if high.MeanLatency <= low.MeanLatency {
		t.Errorf("latency should grow with offered load: %v vs %v",
			low.MeanLatency, high.MeanLatency)
	}
}
