// Package simnet is a cycle-accurate store-and-forward network simulator
// for partially populated tori. It executes the paper's operational model
// directly: one complete exchange injects |P|·(|P|−1) packets, each packet
// follows a path drawn from its routing algorithm's path set, every
// directed link transmits one packet per cycle, and contended packets wait
// in per-link FIFO queues.
//
// The simulator substitutes for the hardware testbed the paper reasons
// about abstractly: completion time is lower-bounded by the maximum link
// traffic, so the linear-vs-superlinear E_max separation between linear
// placements and the fully populated torus shows up directly as a
// completion-time separation (experiment E12).
//
// Beyond the paper's model the simulator supports two knobs real routers
// have: bounded link queues with backpressure (a packet cannot advance into
// a full queue; cyclic buffer dependencies can then deadlock, which is
// detected and reported) and staggered injection (each processor spaces its
// messages InjectInterval cycles apart instead of dumping them all at cycle
// zero). Both default off, reproducing the paper's idealized scenario.
//
// Each cycle advances in two phases: a parallel peek phase in which every
// link inspects its head packet, and an ordered commit phase that admits
// moves in link-index order (respecting queue capacities). Results are
// bit-identical regardless of worker count.
package simnet

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// Config parameterizes a simulation run.
type Config struct {
	Placement *placement.Placement
	Algorithm routing.Algorithm
	// Seed drives path sampling for multi-path algorithms.
	Seed int64
	// Workers for the peek phase; 0 means GOMAXPROCS.
	Workers int
	// MaxCycles aborts a runaway simulation; 0 means no limit.
	MaxCycles int
	// QueueCapacity bounds every link queue; 0 means unbounded. With
	// bounded queues a packet stays put until its next queue has room
	// (backpressure), and a source holds each packet until its first link
	// queue admits it.
	QueueCapacity int
	// InjectInterval spaces each source's messages this many cycles apart
	// (message j enters at cycle j·InjectInterval); 0 injects everything
	// at cycle 0.
	InjectInterval int
	// Demands overrides the workload: one packet per demand (weights are
	// rounded to packet counts). Nil means one complete exchange.
	Demands []load.Demand
	// Adaptive switches to congestion-aware minimal routing: instead of a
	// precomputed path, every hop picks the minimal-direction output link
	// with the shortest queue (ties by link order). The Algorithm is then
	// unused. Adaptivity is the online counterpart of UDR's route freedom.
	Adaptive bool
}

// Stats reports the outcome of one complete exchange.
type Stats struct {
	// Packets injected (= |P|·(|P|−1)).
	Packets int
	// Cycles until the last delivery.
	Cycles int
	// MaxLinkTraffic is the largest total number of packets carried by any
	// single directed link — the empirical counterpart of E_max.
	MaxLinkTraffic int
	// PerDimTraffic[j] is the largest traffic on any link of dimension j.
	PerDimTraffic []int
	// MaxQueueLen is the peak occupancy of any link queue.
	MaxQueueLen int
	// TotalHops is the sum of path lengths actually travelled.
	TotalHops int
	// MeanLatency and MaxLatency are delivery-time statistics in cycles,
	// measured from each packet's injection time.
	MeanLatency float64
	MaxLatency  int
	// LinkUtilization is TotalHops / (Cycles · links): the fraction of
	// link-cycles that carried a packet.
	LinkUtilization float64
	// Aborted is set when MaxCycles was reached before completion.
	Aborted bool
	// Deadlocked is set when bounded queues reached a cycle with pending
	// packets and no possible progress (cyclic buffer dependency).
	Deadlocked bool
}

// Throughput returns delivered packets per cycle.
func (s *Stats) Throughput() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Packets) / float64(s.Cycles)
}

// String summarizes the run.
func (s *Stats) String() string {
	suffix := ""
	if s.Deadlocked {
		suffix = " DEADLOCK"
	}
	if s.Aborted {
		suffix += " ABORTED"
	}
	return fmt.Sprintf("packets=%d cycles=%d maxLink=%d maxQueue=%d meanLat=%.1f%s",
		s.Packets, s.Cycles, s.MaxLinkTraffic, s.MaxQueueLen, s.MeanLatency, suffix)
}

type packet struct {
	route []torus.Edge // nil in adaptive mode
	src   torus.Node   // used in adaptive mode
	dst   torus.Node
	hop   int32
	birth int32
}

// queue is a simple FIFO of packet ids.
type queue struct {
	items []int32
	head  int
}

func (q *queue) push(id int32) { q.items = append(q.items, id) }
func (q *queue) empty() bool   { return q.head >= len(q.items) }
func (q *queue) length() int   { return len(q.items) - q.head }
func (q *queue) peek() int32   { return q.items[q.head] }
func (q *queue) pop() int32 {
	id := q.items[q.head]
	q.head++
	if q.head > 1024 && q.head*2 > len(q.items) {
		q.items = append(q.items[:0], q.items[q.head:]...)
		q.head = 0
	}
	return id
}

// Run executes one complete exchange and returns its statistics.
func Run(cfg Config) *Stats {
	p := cfg.Placement
	t := p.Torus()
	alg := cfg.Algorithm
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// Build packets, one per demand (default: complete exchange), with a
	// sampled route and an injection time from the per-source message index.
	rng := rand.New(rand.NewSource(cfg.Seed))
	demands := cfg.Demands
	if demands == nil {
		demands = load.CompleteExchange{}.Demands(p)
	}
	packets := make([]packet, 0, len(demands))
	injectAt := make([]int32, 0, len(demands))
	msgIdx := make(map[torus.Node]int)
	for _, dm := range demands {
		copies := int(dm.Weight + 0.5)
		for c := 0; c < copies; c++ {
			if cfg.Adaptive {
				packets = append(packets, packet{src: dm.Src, dst: dm.Dst})
			} else {
				path := alg.SamplePath(t, dm.Src, dm.Dst, rng)
				packets = append(packets, packet{route: path.Edges, src: dm.Src, dst: dm.Dst})
			}
			injectAt = append(injectAt, int32(msgIdx[dm.Src]*cfg.InjectInterval))
			msgIdx[dm.Src]++
		}
	}

	// Injection order: packets sorted by (injectAt, packet id). With
	// InjectInterval == 0 this is plain packet order.
	pending := make([]int32, len(packets))
	for i := range pending {
		pending[i] = int32(i)
	}
	if cfg.InjectInterval > 0 {
		sortByInjection(pending, injectAt)
	}

	stats := &Stats{Packets: len(packets), PerDimTraffic: make([]int, t.D())}
	queues := make([]queue, t.Edges())
	traffic := make([]int, t.Edges())

	// adaptiveNext picks the minimal-direction out-edge of node v toward
	// dst with the shortest queue (deterministic tie-break by edge order).
	adaptiveNext := func(v, dst torus.Node) torus.Edge {
		best := torus.Edge(-1)
		bestLen := 0
		for j := 0; j < t.D(); j++ {
			del := torus.CoordDelta(t.Coord(v, j), t.Coord(dst, j), t.K())
			if del.Dist == 0 {
				continue
			}
			candidates := []torus.Direction{del.Dir}
			if del.Tie {
				candidates = []torus.Direction{torus.Plus, torus.Minus}
			}
			for _, dir := range candidates {
				e := t.EdgeFrom(v, j, dir)
				if l := queues[e].length(); best < 0 || l < bestLen {
					best = e
					bestLen = l
				}
			}
		}
		return best
	}
	remaining := 0
	for _, id := range pending {
		pk := &packets[id]
		if len(pk.route) > 0 || (cfg.Adaptive && pk.src != pk.dst) {
			remaining++
		}
	}

	// moved[e] is the packet the link at e wants to forward this cycle
	// (-1 when its queue is empty).
	moved := make([]int32, t.Edges())
	var latencySum int64
	var blockedInj []int32
	nextInject := 0
	capUnlimited := cfg.QueueCapacity <= 0

	cycle := 0
	for remaining > 0 {
		if cfg.MaxCycles > 0 && cycle >= cfg.MaxCycles {
			stats.Aborted = true
			break
		}

		// Injection: packets whose time has come enter their first queue,
		// provided it has room; blocked injections retry next cycle in
		// their original order.
		injected := false
		var retry []int32
		tryInject := func(id int32) {
			pk := &packets[id]
			var first torus.Edge
			if cfg.Adaptive {
				if pk.src == pk.dst {
					return
				}
				first = adaptiveNext(pk.src, pk.dst)
			} else {
				if len(pk.route) == 0 {
					return
				}
				first = pk.route[0]
			}
			if !capUnlimited && queues[first].length() >= cfg.QueueCapacity {
				retry = append(retry, id)
				return
			}
			pk.birth = int32(cycle)
			queues[first].push(id)
			injected = true
			if l := queues[first].length(); l > stats.MaxQueueLen {
				stats.MaxQueueLen = l
			}
		}
		for _, id := range blockedInj {
			tryInject(id)
		}
		for nextInject < len(pending) {
			id := pending[nextInject]
			if int(injectAt[id]) > cycle {
				break
			}
			tryInject(id)
			nextInject++
		}
		blockedInj = retry

		cycle++

		// Phase 1 (parallel): each link peeks at its head packet.
		var wg sync.WaitGroup
		shard := (len(queues) + workers - 1) / workers
		for w := 0; w < workers; w++ {
			lo := w * shard
			hi := lo + shard
			if hi > len(queues) {
				hi = len(queues)
			}
			if lo >= hi {
				continue
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				for e := lo; e < hi; e++ {
					if queues[e].empty() {
						moved[e] = -1
					} else {
						moved[e] = queues[e].peek()
					}
				}
			}(lo, hi)
		}
		wg.Wait()

		// Phase 2 (ordered): commit moves in link-index order, honoring
		// queue capacities observed at commit time (deterministic).
		progressed := false
		for e := range moved {
			id := moved[e]
			if id < 0 {
				continue
			}
			pk := &packets[id]
			var final bool
			var next torus.Edge
			if cfg.Adaptive {
				arrival := t.EdgeTarget(torus.Edge(e))
				final = arrival == pk.dst
				if !final {
					next = adaptiveNext(arrival, pk.dst)
				}
			} else {
				final = int(pk.hop) == len(pk.route)-1
				if !final {
					next = pk.route[pk.hop+1]
				}
			}
			if !final && !capUnlimited && queues[next].length() >= cfg.QueueCapacity {
				continue // backpressure: stay at the head of this queue
			}
			queues[e].pop()
			progressed = true
			traffic[e]++
			stats.TotalHops++
			pk.hop++
			if final {
				lat := cycle - int(pk.birth)
				latencySum += int64(lat)
				if lat > stats.MaxLatency {
					stats.MaxLatency = lat
				}
				remaining--
			} else {
				queues[next].push(id)
				if l := queues[next].length(); l > stats.MaxQueueLen {
					stats.MaxQueueLen = l
				}
			}
		}

		if !progressed && !injected && nextInject >= len(pending) {
			// Nothing moved, nothing entered, and nothing remains to
			// inject on a future cycle: with bounded queues this is a
			// buffer deadlock; without, it is impossible while packets
			// remain.
			stats.Deadlocked = true
			break
		}
	}

	stats.Cycles = cycle
	for e, tr := range traffic {
		if tr > stats.MaxLinkTraffic {
			stats.MaxLinkTraffic = tr
		}
		if j := t.EdgeDim(torus.Edge(e)); tr > stats.PerDimTraffic[j] {
			stats.PerDimTraffic[j] = tr
		}
	}
	delivered := stats.Packets - remaining
	if delivered > 0 {
		stats.MeanLatency = float64(latencySum) / float64(delivered)
	}
	if cycle > 0 {
		stats.LinkUtilization = float64(stats.TotalHops) / (float64(cycle) * float64(t.Edges()))
	}
	return stats
}

// sortByInjection stably sorts packet ids by injection time, preserving id
// order within a time (insertion-friendly counting sort over times).
func sortByInjection(ids []int32, injectAt []int32) {
	maxT := int32(0)
	for _, id := range ids {
		if injectAt[id] > maxT {
			maxT = injectAt[id]
		}
	}
	counts := make([]int32, maxT+2)
	for _, id := range ids {
		counts[injectAt[id]+1]++
	}
	for i := 1; i < len(counts); i++ {
		counts[i] += counts[i-1]
	}
	out := make([]int32, len(ids))
	for _, id := range ids {
		out[counts[injectAt[id]]] = id
		counts[injectAt[id]]++
	}
	copy(ids, out)
}
