package simnet

import (
	"math/rand"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// OpenLoopConfig parameterizes a rate-driven (open-loop) simulation: every
// cycle each processor independently injects a packet with probability
// Rate, addressed to a uniform random other processor. This produces the
// classical latency-vs-offered-load curve of interconnection-network
// evaluation; the §1 throughput claim appears as the offered rate at which
// latency diverges (saturation).
type OpenLoopConfig struct {
	Placement *placement.Placement
	Algorithm routing.Algorithm
	// Rate is the per-processor injection probability per cycle, in (0, 1].
	Rate float64
	// Warmup cycles run before measurement starts.
	Warmup int
	// Measure cycles are observed for the statistics.
	Measure int
	Seed    int64
}

// OpenLoopStats reports the steady-state measurement window.
type OpenLoopStats struct {
	// OfferedRate is the configured per-processor injection probability.
	OfferedRate float64
	// Injected and Delivered count packets during the measurement window.
	Injected, Delivered int
	// ThroughputPerProc is delivered packets per cycle per processor.
	ThroughputPerProc float64
	// MeanLatency averages delivery delays of packets delivered in-window.
	MeanLatency float64
	// MeanQueue is the average total queued packets over the window —
	// unbounded growth here is the saturation signature.
	MeanQueue float64
	// EndBacklog is the number of packets still in flight at the end.
	EndBacklog int
}

// Saturated reports whether the network failed to keep up: deliveries fell
// clearly behind injections over the measurement window (the backlog grows
// without bound past the saturation rate).
func (s *OpenLoopStats) Saturated() bool {
	return float64(s.Delivered) < 0.9*float64(s.Injected)
}

// RunOpenLoop executes the open-loop experiment. It is serial and
// deterministic for a fixed seed.
func RunOpenLoop(cfg OpenLoopConfig) *OpenLoopStats {
	p := cfg.Placement
	t := p.Torus()
	procs := p.Nodes()
	rng := rand.New(rand.NewSource(cfg.Seed))

	queues := make([]queue, t.Edges())
	type pkt struct {
		route []torus.Edge
		hop   int32
		birth int32
	}
	var packets []pkt
	moved := make([]int32, t.Edges())
	inFlight := 0

	stats := &OpenLoopStats{OfferedRate: cfg.Rate}
	var latencySum int64
	var queueSum int64

	total := cfg.Warmup + cfg.Measure
	for cycle := 0; cycle < total; cycle++ {
		measuring := cycle >= cfg.Warmup

		// Injection: Bernoulli per processor, uniform destination.
		for _, src := range procs {
			if rng.Float64() >= cfg.Rate {
				continue
			}
			dst := procs[rng.Intn(len(procs))]
			if dst == src {
				continue
			}
			path := cfg.Algorithm.SamplePath(t, src, dst, rng)
			id := int32(len(packets))
			packets = append(packets, pkt{route: path.Edges, birth: int32(cycle)})
			queues[path.Edges[0]].push(id)
			inFlight++
			if measuring {
				stats.Injected++
			}
		}

		// One flit per link per cycle (peek then commit, serial).
		for e := range queues {
			if queues[e].empty() {
				moved[e] = -1
			} else {
				moved[e] = queues[e].peek()
			}
		}
		for e := range moved {
			id := moved[e]
			if id < 0 {
				continue
			}
			pk := &packets[id]
			queues[e].pop()
			pk.hop++
			if int(pk.hop) == len(pk.route) {
				inFlight--
				if measuring {
					stats.Delivered++
					latencySum += int64(cycle+1) - int64(pk.birth)
				}
			} else {
				queues[pk.route[pk.hop]].push(id)
			}
		}
		if measuring {
			queueSum += int64(inFlight)
		}
	}

	if stats.Delivered > 0 {
		stats.MeanLatency = float64(latencySum) / float64(stats.Delivered)
	}
	if cfg.Measure > 0 {
		stats.ThroughputPerProc = float64(stats.Delivered) / float64(cfg.Measure) / float64(len(procs))
		stats.MeanQueue = float64(queueSum) / float64(cfg.Measure)
	}
	stats.EndBacklog = inFlight
	return stats
}
