package lintcheck

import (
	"go/ast"
	"go/types"
	"strings"
)

// runErrcheck flags discarded error returns outside test files: bare call
// statements (including defer/go) whose callee returns an error, and
// assignments that send an error result to the blank identifier.
//
// A small allowlist keeps the check signal-dense: fmt printing to
// stdout/stderr and writes to in-memory buffers (strings.Builder,
// bytes.Buffer) are documented never to fail meaningfully.
func runErrcheck(u *Unit, p *Package) []Finding {
	var out []Finding
	const name = "errcheck-lite"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := unparen(n.X).(*ast.CallExpr); ok {
					out = append(out, checkDiscardedCall(u, p, call, name)...)
				}
			case *ast.DeferStmt:
				out = append(out, checkDiscardedCall(u, p, n.Call, name)...)
			case *ast.GoStmt:
				out = append(out, checkDiscardedCall(u, p, n.Call, name)...)
			case *ast.AssignStmt:
				out = append(out, checkBlankErrorAssign(u, p, n, name)...)
			}
			return true
		})
	}
	return out
}

// checkDiscardedCall flags a call statement whose results include an error.
func checkDiscardedCall(u *Unit, p *Package, call *ast.CallExpr, name string) []Finding {
	if !callReturnsError(p, call) || allowedCallee(p, call) {
		return nil
	}
	return []Finding{u.finding(name, call.Pos(),
		"discarded error result from "+calleeLabel(p, call),
		"handle or explicitly propagate the error")}
}

// checkBlankErrorAssign flags `_` positions that receive an error.
func checkBlankErrorAssign(u *Unit, p *Package, as *ast.AssignStmt, name string) []Finding {
	var out []Finding
	report := func(call *ast.CallExpr) {
		if !allowedCallee(p, call) {
			out = append(out, u.finding(name, as.Pos(),
				"error result from "+calleeLabel(p, call)+" assigned to _",
				"handle or explicitly propagate the error"))
		}
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment: v1, _, ... := f()
		call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		tuple, ok := p.Info.TypeOf(call).(*types.Tuple)
		if !ok {
			return nil
		}
		for i, lhs := range as.Lhs {
			if isBlank(lhs) && i < tuple.Len() && isErrorType(tuple.At(i).Type()) {
				report(call)
				break
			}
		}
		return out
	}
	for i, lhs := range as.Lhs {
		if !isBlank(lhs) || i >= len(as.Rhs) {
			continue
		}
		call, ok := unparen(as.Rhs[i]).(*ast.CallExpr)
		if ok && isErrorType(p.Info.TypeOf(call)) {
			report(call)
		}
	}
	return out
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callReturnsError reports whether any result of the call is of type error.
func callReturnsError(p *Package, call *ast.CallExpr) bool {
	switch t := p.Info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// calleeLabel renders the callee for a finding message, e.g. "os.WriteFile"
// or "(*bufio.Writer).Flush".
func calleeLabel(p *Package, call *ast.CallExpr) string {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			return "(" + sel.Recv().String() + ")." + fun.Sel.Name
		}
		if x, ok := unparen(fun.X).(*ast.Ident); ok {
			return x.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}

// allowedCallee implements the default allowlist.
func allowedCallee(p *Package, call *ast.CallExpr) bool {
	fun, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	// Method calls: writes to in-memory sinks never fail.
	if sel, ok := p.Info.Selections[fun]; ok {
		recv := sel.Recv().String()
		return strings.Contains(recv, "strings.Builder") || strings.Contains(recv, "bytes.Buffer")
	}
	// Package-level calls.
	obj := p.Info.Uses[fun.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "fmt" {
		return false
	}
	switch obj.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && allowedSink(p, call.Args[0])
	}
	return false
}

// allowedSink matches writer arguments that cannot meaningfully fail:
// os.Stdout / os.Stderr and the in-memory strings.Builder / bytes.Buffer.
func allowedSink(p *Package, e ast.Expr) bool {
	e = unparen(e)
	if sel, ok := e.(*ast.SelectorExpr); ok {
		if x, ok := unparen(sel.X).(*ast.Ident); ok &&
			x.Name == "os" && (sel.Sel.Name == "Stdout" || sel.Sel.Name == "Stderr") {
			return true
		}
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	s := t.String()
	return strings.HasSuffix(s, "strings.Builder") || strings.HasSuffix(s, "bytes.Buffer") ||
		strings.HasSuffix(s, "*strings.Builder") || strings.HasSuffix(s, "*bytes.Buffer")
}
