package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// runCtxflow enforces the context-threading discipline: once a request has a
// context, every downstream hop must carry it.
//
// Two checks:
//
//  1. context.Background() and context.TODO() re-root the context tree and
//     are banned outside package main and the allowlist
//     (ctxflow_allowlist.txt, one pkgpath.Func per line, naming functions —
//     typically pre-context compatibility shims — whose bodies may re-root).
//     Test files never load, so tests are exempt by construction. When an
//     enclosing function has a context parameter the fix is mechanical:
//     replace the call with that parameter.
//
//  2. Calling F(args) from a function that has a context parameter, when
//     F's package also exports FCtx(ctx, args) with an otherwise identical
//     signature, silently drops the context (deadlines, cancellation, and
//     trace spans all stop propagating). The fix rewrites the call to the
//     Ctx variant with the in-scope context prepended.
func runCtxflow(u *Unit, p *Package) []Finding {
	if p.Types == nil || p.Types.Name() == "main" {
		return nil
	}
	allow, _ := loadCtxflowAllowlist(u)
	// frame is one entry of the enclosing-function stack, so each call site
	// can look up the nearest context parameter and allowlist key.
	type frame struct {
		ctxName string // innermost reachable ctx param name ("" if none)
		key     string // allowlist key (from the top-level decl)
	}
	var out []Finding
	for _, f := range p.Files {
		var stack []frame
		top := func() frame {
			if len(stack) == 0 {
				return frame{}
			}
			return stack[len(stack)-1]
		}
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				stack = append(stack, frame{ctxParamName(p, n.Type), p.Path + "." + n.Name.Name})
				if n.Body != nil {
					ast.Inspect(n.Body, walk)
				}
				stack = stack[:len(stack)-1]
				return false
			case *ast.FuncLit:
				name := ctxParamName(p, n.Type)
				if name == "" {
					// Closures capture the enclosing ctx lexically.
					name = top().ctxName
				}
				stack = append(stack, frame{name, top().key})
				ast.Inspect(n.Body, walk)
				stack = stack[:len(stack)-1]
				return false
			case *ast.CallExpr:
				out = append(out, checkCtxCall(u, p, n, top().ctxName, top().key, allow)...)
			}
			return true
		}
		ast.Inspect(f, walk)
	}
	return out
}

// checkCtxCall inspects one call expression given the innermost in-scope
// context parameter name (or "") and the enclosing function's allowlist key.
func checkCtxCall(u *Unit, p *Package, call *ast.CallExpr, ctxName, key string, allow map[string]bool) []Finding {
	fn := calleeFunc(p, call)
	if fn == nil {
		return nil
	}
	var out []Finding
	if fn.Pkg() != nil && fn.Pkg().Path() == "context" &&
		(fn.Name() == "Background" || fn.Name() == "TODO") {
		if allow[key] {
			return nil
		}
		fnd := u.finding("ctxflow", call.Pos(),
			"context."+fn.Name()+"() re-roots the context tree; thread the caller's ctx instead",
			"accept a context.Context parameter, or allowlist this function in ctxflow_allowlist.txt")
		if ctxName != "" && ctxName != "_" {
			fnd.Suggestion = "use the in-scope context " + ctxName
			fnd.Edits = []TextEdit{replaceRange(u, call.Pos(), call.End(), ctxName)}
		}
		return append(out, fnd)
	}
	// Ctx-variant check: only meaningful when a context is in scope and the
	// callee has no context parameter of its own.
	if ctxName == "" || ctxName == "_" {
		return nil
	}
	if takesContext(fn) {
		return nil
	}
	variant := ctxVariant(fn)
	if variant == nil {
		return nil
	}
	fnd := u.finding("ctxflow", call.Pos(),
		"call to "+fn.Name()+" drops the in-scope context; "+fn.Pkg().Name()+"."+variant.Name()+" accepts one",
		"call "+variant.Name()+"("+ctxName+", ...) instead")
	// The mechanical fix renames the callee and prepends the context
	// argument. Variadic or argless calls rewrite the same way.
	calleeEnd := call.Fun.End()
	insert := ctxName
	if len(call.Args) > 0 {
		insert += ", "
	}
	fnd.Edits = []TextEdit{
		replaceRange(u, lastSelPos(call.Fun), calleeEnd, variant.Name()),
		replaceRange(u, call.Lparen+1, call.Lparen+1, insert),
	}
	return append(out, fnd)
}

// calleeFunc resolves a call's callee to its *types.Func, or nil for
// builtins, conversions, and indirect calls.
func calleeFunc(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// lastSelPos returns the position of the final identifier of a callee
// expression (the Sel of a selector, or the ident itself), so edits rename
// only the function name and keep any package qualifier.
func lastSelPos(fun ast.Expr) token.Pos {
	switch fun := unparen(fun).(type) {
	case *ast.SelectorExpr:
		return fun.Sel.Pos()
	default:
		return fun.Pos()
	}
}

// ctxParamName returns the name of the first context.Context parameter of a
// function type, or "".
func ctxParamName(p *Package, ft *ast.FuncType) string {
	if ft == nil || ft.Params == nil {
		return ""
	}
	for _, field := range ft.Params.List {
		t := p.Info.TypeOf(field.Type)
		if !isContextType(t) {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				return name.Name
			}
		}
	}
	return ""
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// takesContext reports whether any parameter of fn is a context.Context.
func takesContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// ctxVariant looks up an exported <Name>Ctx sibling of fn in fn's package
// whose signature is fn's with a context.Context prepended (and identical
// results). Methods have no variant lookup.
func ctxVariant(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil || fn.Pkg() == nil {
		return nil
	}
	obj := fn.Pkg().Scope().Lookup(fn.Name() + "Ctx")
	variant, ok := obj.(*types.Func)
	if !ok || !variant.Exported() {
		return nil
	}
	vsig, ok := variant.Type().(*types.Signature)
	if !ok || vsig.Recv() != nil {
		return nil
	}
	if vsig.Params().Len() != sig.Params().Len()+1 ||
		!isContextType(vsig.Params().At(0).Type()) ||
		vsig.Variadic() != sig.Variadic() {
		return nil
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if !types.Identical(sig.Params().At(i).Type(), vsig.Params().At(i+1).Type()) {
			return nil
		}
	}
	if vsig.Results().Len() != sig.Results().Len() {
		return nil
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if !types.Identical(sig.Results().At(i).Type(), vsig.Results().At(i).Type()) {
			return nil
		}
	}
	return variant
}

// replaceRange builds a TextEdit covering [from, to) in the file holding
// from.
func replaceRange(u *Unit, from, to token.Pos, text string) TextEdit {
	fp := u.Fset.Position(from)
	tp := u.Fset.Position(to)
	return TextEdit{File: fp.Filename, Start: fp.Offset, End: tp.Offset, Text: text}
}

// loadCtxflowAllowlist reads ctxflow_allowlist.txt (in-tree location first,
// unit root as the fixture fallback). Entries are pkgpath.Func, one per
// line; # starts a comment.
func loadCtxflowAllowlist(u *Unit) (map[string]bool, string) {
	allow := make(map[string]bool)
	candidates := []string{
		filepath.Join(u.Root, "internal", "lintcheck", "ctxflow_allowlist.txt"),
		filepath.Join(u.Root, "ctxflow_allowlist.txt"),
	}
	for _, path := range candidates {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			allow[line] = true
		}
		return allow, path
	}
	return allow, candidates[0]
}
