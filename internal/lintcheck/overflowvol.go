package lintcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// runOverflowvol flags k^d-style volume and edge-count computations that are
// not guarded against int overflow. Three shapes are recognized:
//
//  1. An integer accumulator multiplied inside a loop (n *= k) with no bound
//     check on the accumulator in the loop and no MaxNodes/Check/Volume
//     guard in the function.
//  2. A variable-amount power-of-two shift 1 << e whose amount is not
//     bounded by a comparison in the same function (bitmask operands of
//     &, |, ^, &^ are exempt — those cannot silently inflate a count).
//  3. An integer conversion of a math.Pow result, which silently truncates
//     and saturates long before int overflows.
//
// The canonical fix is torus.Volume(k, d), which refuses anything beyond
// MaxNodes.
func runOverflowvol(u *Unit, p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var fnNode ast.Node
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body, fnNode = fn.Body, fn
			case *ast.FuncLit:
				body, fnNode = fn.Body, fn
			default:
				return true
			}
			if body == nil {
				return true
			}
			guarded := fnHasVolumeGuard(body)
			masked := bitmaskShiftOperands(body)
			ast.Inspect(body, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok && m != fnNode {
					return false // analyzed as its own function
				}
				switch m := m.(type) {
				case *ast.ForStmt:
					out = append(out, loopProductFindings(u, p, m.Body, guarded)...)
				case *ast.RangeStmt:
					out = append(out, loopProductFindings(u, p, m.Body, guarded)...)
				case *ast.BinaryExpr:
					if m.Op == token.SHL && !masked[m] && !guarded {
						out = append(out, shiftFindings(u, p, body, m)...)
					}
				case *ast.CallExpr:
					out = append(out, powCastFindings(u, p, m)...)
				}
				return true
			})
			return true
		})
	}
	return out
}

// fnHasVolumeGuard reports whether the function body references MaxNodes or
// calls a checked-volume helper (Check, CheckTorus, Volume).
func fnHasVolumeGuard(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.Ident:
			if n.Name == "MaxNodes" {
				found = true
			}
		case *ast.CallExpr:
			name := ""
			switch fun := unparen(n.Fun).(type) {
			case *ast.Ident:
				name = fun.Name
			case *ast.SelectorExpr:
				name = fun.Sel.Name
			}
			if name == "Check" || name == "CheckTorus" || name == "Volume" {
				found = true
			}
		}
		return !found
	})
	return found
}

// loopProductFindings flags integer accumulators multiplied in a loop body
// with no comparison mentioning the accumulator inside the loop.
func loopProductFindings(u *Unit, p *Package, body *ast.BlockStmt, guarded bool) []Finding {
	if guarded {
		return nil
	}
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false // nested loops are analyzed on their own visit
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		id, ok := unparen(as.Lhs[0]).(*ast.Ident)
		if !ok || !signedInt(p.Info.TypeOf(as.Lhs[0])) {
			return true
		}
		isProduct := as.Tok == token.MUL_ASSIGN
		if !isProduct && as.Tok == token.ASSIGN && len(as.Rhs) == 1 {
			if be, ok := unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && be.Op == token.MUL {
				if x, ok := unparen(be.X).(*ast.Ident); ok && x.Name == id.Name {
					isProduct = true
				}
			}
		}
		if !isProduct {
			return true
		}
		if loopBoundsIdent(body, id.Name) {
			return true
		}
		out = append(out, u.finding("overflowvol", as.Pos(),
			"integer accumulator "+id.Name+" multiplied in a loop without an overflow bound",
			"use the checked helper torus.Volume(k, d) or compare against torus.MaxNodes"))
		return true
	})
	return out
}

// loopBoundsIdent reports whether the loop body contains a comparison
// mentioning the identifier (the usual "if n > limit" overflow guard).
func loopBoundsIdent(body *ast.BlockStmt, name string) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return !found
		}
		switch be.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ:
			if mentionsIdent(be, name) {
				found = true
			}
		}
		return !found
	})
	return found
}

// bitmaskShiftOperands collects SHL expressions used directly as operands of
// bitwise mask operators; those are single-bit tests, not volume math.
func bitmaskShiftOperands(body *ast.BlockStmt) map[*ast.BinaryExpr]bool {
	masked := make(map[*ast.BinaryExpr]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.AND, token.OR, token.XOR, token.AND_NOT:
				if s, ok := unparen(n.X).(*ast.BinaryExpr); ok && s.Op == token.SHL {
					masked[s] = true
				}
				if s, ok := unparen(n.Y).(*ast.BinaryExpr); ok && s.Op == token.SHL {
					masked[s] = true
				}
			}
		case *ast.AssignStmt:
			switch n.Tok {
			case token.AND_ASSIGN, token.OR_ASSIGN, token.XOR_ASSIGN, token.AND_NOT_ASSIGN:
				for _, r := range n.Rhs {
					if s, ok := unparen(r).(*ast.BinaryExpr); ok && s.Op == token.SHL {
						masked[s] = true
					}
				}
			}
		}
		return true
	})
	return masked
}

// shiftFindings flags 1 << e with a non-constant, in-function-unbounded e.
func shiftFindings(u *Unit, p *Package, body *ast.BlockStmt, sh *ast.BinaryExpr) []Finding {
	base := unparen(sh.X)
	if conv, ok := base.(*ast.CallExpr); ok && len(conv.Args) == 1 {
		if tv, ok := p.Info.Types[conv.Fun]; ok && tv.IsType() {
			base = unparen(conv.Args[0])
		}
	}
	tv, ok := p.Info.Types[base]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return nil
	}
	if v, ok := constant.Int64Val(tv.Value); !ok || v != 1 {
		return nil
	}
	if amt, ok := p.Info.Types[sh.Y]; ok && amt.Value != nil {
		return nil // constant shift amount
	}
	// Any comparison in the function mentioning an identifier of the shift
	// amount counts as a bound (e.g. "if n > BruteForceLimit { ... }").
	bounded := false
	ast.Inspect(sh.Y, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || bounded {
			return !bounded
		}
		ast.Inspect(body, func(m ast.Node) bool {
			be, ok := m.(*ast.BinaryExpr)
			if !ok || be == sh {
				return !bounded
			}
			switch be.Op {
			case token.GTR, token.GEQ, token.LSS, token.LEQ:
				if mentionsIdent(be, id.Name) {
					bounded = true
				}
			}
			return !bounded
		})
		return !bounded
	})
	if bounded {
		return nil
	}
	return []Finding{u.finding("overflowvol", sh.OpPos,
		"1 << n with an unbounded shift amount can overflow int",
		"bound the amount with a comparison or use torus.Volume for k^d counts")}
}

// powCastFindings flags integer conversions of math.Pow results.
func powCastFindings(u *Unit, p *Package, call *ast.CallExpr) []Finding {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return nil
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Info()&types.IsInteger == 0 {
		return nil
	}
	hasPow := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if ok && sel.Sel.Name == "Pow" {
			if id, ok := unparen(sel.X).(*ast.Ident); ok && id.Name == "math" {
				hasPow = true
			}
		}
		return !hasPow
	})
	if !hasPow {
		return nil
	}
	return []Finding{u.finding("overflowvol", call.Pos(),
		"integer conversion of math.Pow truncates and overflows silently for large k^d",
		"use the checked helper torus.Volume(k, d)")}
}
