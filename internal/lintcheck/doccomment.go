package lintcheck

import (
	"go/ast"
	"go/token"
)

// runDoccomment enforces the repository's documentation contract. Two
// checks:
//
//  1. Every package must carry a package doc comment on at least one of its
//     files ("// Package x ..." — or "// Command x ..." for main packages).
//     The operator docs (OBSERVABILITY.md, DESIGN.md) link into package docs
//     by paper anchor, so an undocumented package is a broken link target.
//
//  2. Every exported declaration of the module-root facade package must have
//     a doc comment: the facade is the public surface `go doc torusnet`
//     renders, and an undocumented re-export hides which paper definition or
//     subsystem it fronts. A doc comment on a grouped const/var/type
//     declaration covers every spec in the group, matching go/doc; trailing
//     same-line comments do not count.
func runDoccomment(u *Unit, p *Package) []Finding {
	var out []Finding
	documented := false
	for _, f := range p.Files {
		if f.Doc != nil {
			documented = true
			break
		}
	}
	if !documented && len(p.Files) > 0 {
		// Files are sorted by name, so the first file is a stable anchor.
		name := p.Files[0].Name.Name
		out = append(out, u.finding("doccomment", p.Files[0].Package,
			"package "+name+" has no package doc comment",
			"add a // Package "+name+" ... comment (// Command ... for main) above one package clause"))
	}
	if p.Path != u.ModulePath {
		return out
	}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.IsExported() && d.Doc == nil {
					out = append(out, u.finding("doccomment", d.Pos(),
						"exported facade symbol "+d.Name.Name+" has no doc comment",
						"document every re-export so go doc describes the public surface"))
				}
			case *ast.GenDecl:
				if d.Tok == token.IMPORT || d.Doc != nil {
					continue // a group doc documents every spec, as in go/doc
				}
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && s.Doc == nil {
							out = append(out, u.finding("doccomment", s.Pos(),
								"exported facade symbol "+s.Name.Name+" has no doc comment",
								"document every re-export so go doc describes the public surface"))
						}
					case *ast.ValueSpec:
						if s.Doc != nil {
							continue
						}
						for _, n := range s.Names {
							if n.IsExported() {
								out = append(out, u.finding("doccomment", n.Pos(),
									"exported facade symbol "+n.Name+" has no doc comment",
									"document every re-export so go doc describes the public surface"))
							}
						}
					}
				}
			}
		}
	}
	return out
}
