package lintcheck

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// fixtureTrees pairs each testdata/src tree with the analyzer it exercises.
// The four per-package trees hold a bad package (every finding marked with a
// want comment) and a good package (no findings); the facade trees exercise
// the unitwide analyzer with and without an allowlist.
var fixtureTrees = []struct {
	tree     string
	analyzer string
}{
	{"modmath", "modmath"},
	{"overflowvol", "overflowvol"},
	{"errcheck", "errcheck-lite"},
	{"syncmisuse", "syncmisuse"},
	{"retrymisuse", "retrymisuse"},
	{"doccomment", "doccomment"},
	{"facade-bad", "facade-complete"},
	{"facade-good", "facade-complete"},
	{"ctxflow", "ctxflow"},
	{"spanend", "spanend"},
	{"metricschema", "metricschema"},
	{"failpointsite", "failpointsite"},
	{"goroutinelifecycle", "goroutinelifecycle"},
}

func fixtureDir(t *testing.T, tree string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", tree))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func analyzerByName(t *testing.T, name string) *Analyzer {
	t.Helper()
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("no analyzer named %q", name)
	return nil
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// wantSuffixes are the file kinds that may carry want comments: Go sources,
// plus the raw files the failpointsite scanner and the facade allowlist
// checks produce findings in.
var wantSuffixes = []string{".go", ".md", ".sh", ".txt"}

// collectWants scans every fixture file under dir for // want "frag"
// comments and returns file -> line -> expected message fragment.
func collectWants(t *testing.T, dir string) map[string]map[int]string {
	t.Helper()
	wants := make(map[string]map[int]string)
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		hit := false
		for _, suf := range wantSuffixes {
			if strings.HasSuffix(path, suf) {
				hit = true
				break
			}
		}
		if !hit {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			if wants[path] == nil {
				wants[path] = make(map[int]string)
			}
			wants[path][i+1] = m[1]
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return wants
}

// TestAnalyzersAgainstFixtures runs each analyzer over its fixture tree and
// checks the findings against the want comments: every finding must match a
// want on its line, and every want must be hit. Good packages carry no want
// comments, so any finding there fails the test.
func TestAnalyzersAgainstFixtures(t *testing.T) {
	for _, tc := range fixtureTrees {
		t.Run(tc.tree, func(t *testing.T) {
			dir := fixtureDir(t, tc.tree)
			u, err := Load(dir)
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			for _, p := range u.Pkgs {
				for _, terr := range p.TypeErrors {
					t.Errorf("fixture %s: type error: %v", p.Path, terr)
				}
			}
			findings := Run(u, []*Analyzer{analyzerByName(t, tc.analyzer)}, nil)
			wants := collectWants(t, dir)
			matched := make(map[string]map[int]bool)
			for _, f := range findings {
				frag, ok := wants[f.File][f.Line]
				if !ok {
					t.Errorf("unexpected finding: %s", f)
					continue
				}
				if !strings.Contains(f.Message, frag) {
					t.Errorf("finding at %s:%d: message %q does not contain want %q",
						f.File, f.Line, f.Message, frag)
					continue
				}
				if matched[f.File] == nil {
					matched[f.File] = make(map[int]bool)
				}
				matched[f.File][f.Line] = true
			}
			for file, lines := range wants {
				for line, frag := range lines {
					if !matched[file][line] {
						t.Errorf("missing finding at %s:%d (want %q)", file, line, frag)
					}
				}
			}
		})
	}
}

// TestGolden runs the full analyzer suite over every fixture tree and
// compares the rendered findings (root-relative paths) against
// testdata/golden/<tree>.txt. Run with -update to rewrite.
func TestGolden(t *testing.T) {
	seen := make(map[string]bool)
	for _, tc := range fixtureTrees {
		if seen[tc.tree] {
			continue
		}
		seen[tc.tree] = true
		t.Run(tc.tree, func(t *testing.T) {
			dir := fixtureDir(t, tc.tree)
			u, err := Load(dir)
			if err != nil {
				t.Fatalf("Load(%s): %v", dir, err)
			}
			var sb strings.Builder
			for _, f := range Run(u, All(), nil) {
				rel, err := filepath.Rel(dir, f.File)
				if err != nil {
					t.Fatal(err)
				}
				f.File = filepath.ToSlash(rel)
				fmt.Fprintf(&sb, "%s\n", f)
			}
			golden := filepath.Join("testdata", "golden", tc.tree+".txt")
			if *update {
				if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			data, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file (re-generate with -update): %v", err)
			}
			if got, want := sb.String(), string(data); got != want {
				t.Errorf("findings diverge from %s (re-generate with -update):\ngot:\n%s\nwant:\n%s",
					golden, got, want)
			}
		})
	}
}

// TestSuppressionDirective pins the //lint:ignore semantics: the directive
// silences its own line and the next one, for the named analyzer only.
func TestSuppressionDirective(t *testing.T) {
	dir := fixtureDir(t, "modmath")
	u, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The good fixture's canonical helper carries the only directive; with
	// suppression honored (Run) there must be no finding in good/.
	for _, f := range Run(u, []*Analyzer{analyzerByName(t, "modmath")}, nil) {
		if strings.Contains(filepath.ToSlash(f.File), "/good/") {
			t.Errorf("suppressed finding leaked: %s", f)
		}
	}
	// Bypassing Run, the raw analyzer does flag the helper — proving the
	// directive (not an analyzer blind spot) is what silences it.
	raw := 0
	for _, p := range u.Pkgs {
		if !strings.HasSuffix(p.Path, "/good") {
			continue
		}
		raw += len(runModmath(u, p))
	}
	if raw == 0 {
		t.Error("expected the raw analyzer to flag the canonical helper in good/")
	}
}

// TestNewAnalyzersHonorSuppression pins that every dataflow analyzer goes
// through the shared suppression table: each one's fixture findings vanish
// when a //lint:ignore entry is injected for their exact file and line.
func TestNewAnalyzersHonorSuppression(t *testing.T) {
	cases := []struct{ tree, analyzer string }{
		{"ctxflow", "ctxflow"},
		{"spanend", "spanend"},
		{"metricschema", "metricschema"},
		{"failpointsite", "failpointsite"},
		{"goroutinelifecycle", "goroutinelifecycle"},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			u, err := Load(fixtureDir(t, tc.tree))
			if err != nil {
				t.Fatal(err)
			}
			a := analyzerByName(t, tc.analyzer)
			var found []Finding
			for _, f := range Run(u, []*Analyzer{a}, nil) {
				if f.Analyzer == tc.analyzer {
					found = append(found, f)
				}
			}
			if len(found) == 0 {
				t.Fatalf("analyzer %s produced no findings over its bad fixture", tc.analyzer)
			}
			for _, f := range found {
				m := u.suppress[f.File]
				if m == nil {
					m = make(map[int]map[string]bool)
					u.suppress[f.File] = m
				}
				if m[f.Line] == nil {
					m[f.Line] = make(map[string]bool)
				}
				m[f.Line][tc.analyzer] = true
			}
			for _, f := range Run(u, []*Analyzer{a}, nil) {
				if f.Analyzer == tc.analyzer {
					t.Errorf("finding survived suppression: %s", f)
				}
			}
		})
	}
}

// TestIgnoreMultiAnalyzer pins that one //lint:ignore directive naming two
// analyzers silences both on the line below.
func TestIgnoreMultiAnalyzer(t *testing.T) {
	u, err := Load(fixtureDir(t, "ignore"))
	if err != nil {
		t.Fatal(err)
	}
	multi := u.Package("fixture/multi")
	if multi == nil {
		t.Fatal("fixture/multi did not load")
	}
	// Both raw analyzers flag the naked go statement...
	if n := len(runSyncmisuse(u, multi)); n == 0 {
		t.Error("expected raw syncmisuse findings in fixture/multi")
	}
	if n := len(runGoroutineLifecycle(u, multi)); n == 0 {
		t.Error("expected raw goroutinelifecycle findings in fixture/multi")
	}
	// ...and the single two-name directive silences both through Run.
	analyzers := []*Analyzer{
		analyzerByName(t, "syncmisuse"),
		analyzerByName(t, "goroutinelifecycle"),
	}
	for _, f := range Run(u, analyzers, nil) {
		if strings.Contains(filepath.ToSlash(f.File), "/multi/") {
			t.Errorf("finding survived the multi-analyzer directive: %s", f)
		}
	}
}

// TestIgnoreMissingReason pins that a reasonless directive suppresses
// nothing and surfaces as an unsuppressible lint-ignore finding.
func TestIgnoreMissingReason(t *testing.T) {
	u, err := Load(fixtureDir(t, "ignore"))
	if err != nil {
		t.Fatal(err)
	}
	findings := Run(u, []*Analyzer{analyzerByName(t, "modmath")}, nil)
	var sawModmath, sawDirective bool
	for _, f := range findings {
		if !strings.Contains(filepath.ToSlash(f.File), "/missing/") {
			continue
		}
		switch f.Analyzer {
		case "modmath":
			sawModmath = true
		case "lint-ignore":
			sawDirective = true
			if !strings.Contains(f.Message, "missing a reason") {
				t.Errorf("lint-ignore message %q does not mention the missing reason", f.Message)
			}
		}
	}
	if !sawModmath {
		t.Error("reasonless directive still suppressed the modmath finding")
	}
	if !sawDirective {
		t.Error("malformed directive produced no lint-ignore finding")
	}
}

// FuzzLintIgnoreDirective hammers the directive parser: it must never
// panic, and a well-formed parse must yield non-empty analyzer names and a
// non-empty reason.
func FuzzLintIgnoreDirective(f *testing.F) {
	for _, seed := range []string{
		"lint:ignore modmath reason",
		"lint:ignore a,b two analyzers",
		"lint:ignore all everything",
		"lint:ignore",
		"lint:ignore modmath",
		"lint:ignore modmath, trailing comma",
		"lint:ignore ,lead comma",
		"lint:ignoreX not a directive",
		"not a directive at all",
		"  lint:ignore\tmodmath\ttabbed reason",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		names, reason, err, ok := parseIgnoreDirective(text)
		if !ok {
			if names != nil || reason != "" || err != nil {
				t.Errorf("non-directive %q returned (%v, %q, %v)", text, names, reason, err)
			}
			return
		}
		if err != nil {
			return // malformed: rejected, nothing else to hold
		}
		if len(names) == 0 {
			t.Errorf("well-formed directive %q parsed to no analyzer names", text)
		}
		for _, n := range names {
			if n == "" {
				t.Errorf("well-formed directive %q contains an empty analyzer name", text)
			}
			if strings.ContainsAny(n, " \t") {
				t.Errorf("analyzer name %q from %q contains whitespace", n, text)
			}
		}
		if reason == "" {
			t.Errorf("well-formed directive %q parsed to an empty reason", text)
		}
	})
}

func TestSelect(t *testing.T) {
	all, err := Select("", "")
	if err != nil || len(all) != len(All()) {
		t.Fatalf("Select(\"\",\"\") = %d analyzers, err %v; want %d, nil", len(all), err, len(All()))
	}
	picked, err := Select("modmath,errcheck-lite", "")
	if err != nil || len(picked) != 2 {
		t.Fatalf("Select enable: got %d analyzers, err %v; want 2, nil", len(picked), err)
	}
	rest, err := Select("", "facade-complete")
	if err != nil || len(rest) != len(All())-1 {
		t.Fatalf("Select disable: got %d analyzers, err %v; want %d, nil", len(rest), err, len(All())-1)
	}
	for _, a := range rest {
		if a.Name == "facade-complete" {
			t.Error("disabled analyzer still selected")
		}
	}
	if _, err := Select("nope", ""); err == nil {
		t.Error("Select should reject unknown analyzer names")
	}
}
