package lintcheck

import (
	"go/ast"
	"go/types"
)

// runSyncmisuse flags two hazard classes in concurrent code:
//
//  1. Copied synchronization primitives: a sync.Mutex, RWMutex, WaitGroup,
//     Once, or Cond (or any struct/array containing one) passed, returned,
//     received, or assigned by value. A copied lock guards nothing.
//  2. Fire-and-forget goroutines: a `go` statement inside a function with no
//     visible join — no Wait call, channel receive, channel range, or select
//     — anywhere in the same function body. The engine packages (load,
//     simnet, faults) fan out workers per request; a missing join there
//     leaks goroutines under production traffic.
func runSyncmisuse(u *Unit, p *Package) []Finding {
	var out []Finding
	const name = "syncmisuse"
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				out = append(out, checkLockSignature(u, p, n.Recv, n.Type, name)...)
				if n.Body != nil {
					out = append(out, checkGoroutineJoins(u, p, n.Body, name)...)
				}
			case *ast.FuncLit:
				out = append(out, checkLockSignature(u, p, nil, n.Type, name)...)
			case *ast.AssignStmt:
				out = append(out, checkLockCopyAssign(u, p, n, name)...)
			case *ast.RangeStmt:
				if n.Value != nil && containsLock(p.Info.TypeOf(n.Value)) {
					out = append(out, u.finding(name, n.Value.Pos(),
						"range copies a value containing a sync primitive",
						"range over indices or use a slice of pointers"))
				}
			}
			return true
		})
	}
	return out
}

// checkLockSignature flags by-value sync primitives in receivers, params,
// and results.
func checkLockSignature(u *Unit, p *Package, recv *ast.FieldList, ft *ast.FuncType, name string) []Finding {
	var out []Finding
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := p.Info.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				out = append(out, u.finding(name, field.Pos(),
					what+" copies a value containing a sync primitive",
					"pass a pointer instead"))
			}
		}
	}
	flag(recv, "value receiver")
	flag(ft.Params, "parameter")
	flag(ft.Results, "result")
	return out
}

// checkLockCopyAssign flags assignments that copy an existing lock-bearing
// value (fresh composite literals and zero values are fine).
func checkLockCopyAssign(u *Unit, p *Package, as *ast.AssignStmt, name string) []Finding {
	var out []Finding
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || isBlank(as.Lhs[i]) {
			continue
		}
		e := unparen(rhs)
		switch e.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue // literals, calls, &x — not copies of an existing value
		}
		if containsLock(p.Info.TypeOf(e)) {
			out = append(out, u.finding(name, as.Pos(),
				"assignment copies a value containing a sync primitive",
				"share it through a pointer"))
		}
	}
	return out
}

// checkGoroutineJoins flags go statements in functions with no visible join.
func checkGoroutineJoins(u *Unit, p *Package, body *ast.BlockStmt, name string) []Finding {
	var gos []*ast.GoStmt
	joined := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			gos = append(gos, n)
		case *ast.SelectStmt:
			joined = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				joined = true
			}
		case *ast.RangeStmt:
			if t := p.Info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					joined = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Wait" {
				joined = true
			}
		}
		return true
	})
	if joined || len(gos) == 0 {
		return nil
	}
	var out []Finding
	for _, g := range gos {
		out = append(out, u.finding(name, g.Pos(),
			"goroutine launched without a visible join (Wait/receive/select) in this function",
			"join with sync.WaitGroup.Wait or a channel before returning"))
	}
	return out
}

// lockNames are the sync types that must never be copied.
var lockNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// containsLock reports whether the type holds a sync primitive by value.
func containsLock(t types.Type) bool {
	return containsLockSeen(t, make(map[types.Type]bool))
}

func containsLockSeen(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockNames[obj.Name()] {
			return true
		}
	}
	switch ut := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < ut.NumFields(); i++ {
			if containsLockSeen(ut.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockSeen(ut.Elem(), seen)
	}
	return false
}
