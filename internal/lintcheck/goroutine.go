package lintcheck

import (
	"go/ast"
	"go/types"
)

// runGoroutineLifecycle flags naked go statements in library packages. A
// goroutine with no owner outlives its caller silently: it leaks on early
// return, keeps running after test teardown, and hides panics. A launch is
// considered owned when the launching function calls Add on a
// sync.WaitGroup (directly or via a struct that embeds one) before the go
// statement, or when the launched function literal itself calls Done — the
// two halves of the WaitGroup protocol the worker pool uses. Anything else
// (including handoffs joined by channel receives, which this pass cannot
// see) needs a //lint:ignore goroutinelifecycle directive stating who joins
// the goroutine. Package main is exempt: top-level daemons own their
// goroutines by construction.
func runGoroutineLifecycle(u *Unit, p *Package) []Finding {
	if p.Types == nil || p.Types.Name() == "main" {
		return nil
	}
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fd, ok := n.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				return true
			}
			out = append(out, checkGoStmts(u, p, fd.Body)...)
			return false
		})
	}
	return out
}

// checkGoStmts inspects one function body (including nested literals, which
// share the enclosing function's WaitGroup discipline).
func checkGoStmts(u *Unit, p *Package, body *ast.BlockStmt) []Finding {
	// Collect every wg.Add call position in the function first: the launch
	// is fine when any Add precedes it textually (loops make true ordering
	// undecidable; textual order matches how the protocol is written).
	var adds []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(p, call, "Add") {
			adds = append(adds, call)
		}
		return true
	})
	var out []Finding
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		for _, a := range adds {
			if a.Pos() < g.Pos() {
				return true
			}
		}
		if lit, ok := unparen(g.Call.Fun).(*ast.FuncLit); ok && callsWaitGroupDone(p, lit.Body) {
			return true
		}
		out = append(out, u.finding("goroutinelifecycle", g.Pos(),
			"naked go statement: no WaitGroup ties this goroutine to an owner",
			"call wg.Add before the launch and Done inside, or add //lint:ignore goroutinelifecycle <who joins it>"))
		return true
	})
	return out
}

// callsWaitGroupDone reports whether the block calls Done on a WaitGroup.
func callsWaitGroupDone(p *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupCall(p, call, "Done") {
			found = true
		}
		return !found
	})
	return found
}

// isWaitGroupCall reports whether call is method `name` on sync.WaitGroup.
func isWaitGroupCall(p *Package, call *ast.CallExpr, name string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
