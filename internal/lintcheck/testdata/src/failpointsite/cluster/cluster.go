// Package cluster mirrors the real internal/cluster failpoint layout: the
// cluster.* sites are declared here (first segment == declaring package),
// and consumers in other packages, scripts, and docs reference them by
// literal name so the registry scan can hold the whole set together.
package cluster

import "fixture/failpoint"

var (
	fpRingLookup     = failpoint.New("cluster.ring.lookup")
	fpPeerDial       = failpoint.New("cluster.peer.dial")
	fpFillDecode     = failpoint.New("cluster.fill.decode")
	fpOwnerFailover  = failpoint.New("cluster.owner.failover")
	fpReplicaPut     = failpoint.New("cluster.replica.put")
	fpMembershipSwap = failpoint.New("cluster.membership.swap")
)

// Touch keeps the site variables referenced.
func Touch() {
	_, _, _ = fpRingLookup, fpPeerDial, fpFillDecode
	_, _, _ = fpOwnerFailover, fpReplicaPut, fpMembershipSwap
}
