#!/bin/sh
# Chaos smoke for the cluster fixture: armed sites must exist in the registry.
TORUSNET_FAILPOINTS='cluster.peer.dial=error' ./run.sh
TORUSNET_FAILPOINTS='cluster.peer.probe=error' ./run.sh # // want "registered nowhere"
