// Package bad registers failpoint sites that break every registry rule:
// duplicates, naming-convention violations, wrong package prefixes, and a
// non-literal site name.
package bad

import "fixture/failpoint"

var (
	fpGet  = failpoint.New("bad.cache.get")
	fpDup  = failpoint.New("bad.cache.get")  // want "already registered"
	fpCase = failpoint.New("Bad.Cache.Get")  // want "convention"
	fpPkg  = failpoint.New("other.pool.run") // want "must start with its declaring package name"
)

// siteName builds a dynamic name, defeating greppability.
func siteName() string { return "bad." + "dyn" }

var fpDyn = failpoint.New(siteName()) // want "must be a string literal"
