package bad

import (
	"testing"

	"fixture/failpoint"
)

// chaosTable drives the chaos matrix; dotted keys whose first segment is a
// registering package must resolve.
var chaosTable = []struct{ site, spec string }{
	{"bad.cache.get", "error"},
	{"bad.flight.ooo", "panic"}, // want "registered nowhere"
	{"span.cache.get", "sleep"}, // unflagged: "span" registers no failpoints
}

func TestChaos(t *testing.T) {
	if err := failpoint.Enable("bad.cache.get", "error"); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("bad.cache.drop", "error"); err != nil { // want "registered nowhere"
		t.Fatal(err)
	}
	_ = chaosTable
	_, _, _, _ = fpGet, fpDup, fpCase, fpPkg
	_ = fpDyn
}
