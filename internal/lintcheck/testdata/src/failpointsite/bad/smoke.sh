#!/bin/sh
# Chaos smoke for the bad fixtures.
TORUSNET_FAILPOINTS='bad.cache.get=error' ./run.sh
TORUSNET_FAILPOINTS='bad.boot.missing=error' ./run.sh # // want "registered nowhere"
