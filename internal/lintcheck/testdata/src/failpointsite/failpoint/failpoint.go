// Package failpoint is a minimal site registry for the failpointsite
// fixtures.
package failpoint

// Site is one registered failpoint.
type Site struct{ name string }

// New registers a failpoint site under the given name.
func New(name string) *Site { return &Site{name: name} }

// Enable arms a site by name.
func Enable(name, spec string) error {
	_ = name
	_ = spec
	return nil
}
