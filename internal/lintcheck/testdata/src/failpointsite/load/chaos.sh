#!/bin/sh
# Chaos smoke for the load fixture: the soft analytic-dispatch site falls
# back to the computed path when armed, so arming it must be a known site.
TORUSNET_FAILPOINTS='load.analytic.dispatch=error' ./run.sh
