// Package load mirrors the real internal/load failpoint layout: the soft
// analytic-dispatch site is declared here (first segment == declaring
// package), and the chaos script arms it by literal name so the registry
// scan ties declaration and reference together.
package load

import "fixture/failpoint"

var fpAnalyticDispatch = failpoint.New("load.analytic.dispatch")

// Touch keeps the site variable referenced.
func Touch() {
	_ = fpAnalyticDispatch
}
