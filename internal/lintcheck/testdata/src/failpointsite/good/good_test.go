package good

import (
	"testing"

	"fixture/failpoint"
)

// Sites may also be registered from test files.
var fpExtra = failpoint.New("good.test.extra")

func TestChaos(t *testing.T) {
	if err := failpoint.Enable("good.cache.get", "error"); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("good.test.extra", "error"); err != nil {
		t.Fatal(err)
	}
	//lint:ignore failpointsite deliberately unknown site: this asserts rejection
	if err := failpoint.Enable("good.cache.nope", "error"); err == nil {
		t.Fatal("expected unknown site")
	}
	_, _, _ = fpGet, fpPut, fpExtra
}
