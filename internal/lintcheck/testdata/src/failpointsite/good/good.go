// Package good registers failpoint sites that follow every registry rule.
package good

import "fixture/failpoint"

var (
	fpGet = failpoint.New("good.cache.get")
	fpPut = failpoint.New("good.cache.put")
)
