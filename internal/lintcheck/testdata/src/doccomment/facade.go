// Package docfacade is the fixture facade (module root): every exported
// declaration here must carry a doc comment. Trailing same-line comments —
// including the want markers themselves — do not count as documentation.
package docfacade

// Area is documented and must not be flagged.
func Area(w, h int) int { return w * h }

func Perimeter(w, h int) int { return 2 * (w + h) } // want "exported facade symbol Perimeter has no doc comment"

// unexported declarations are never flagged, documented or not.
func scale(v, s int) int { return v * s }

// Shape is a documented type alias target.
type Shape struct{ W, H int }

type Box struct{ S Shape } // want "exported facade symbol Box has no doc comment"

// Sides is a documented constant.
const Sides = 4

const Corners = 4 // want "exported facade symbol Corners has no doc comment"

var Origin = Shape{} // want "exported facade symbol Origin has no doc comment"

// Named dimensions: a doc comment on the group covers every spec, matching
// go/doc, so none of these is flagged.
const (
	Width  = 0
	Height = 1
)

const (
	// Depth carries its own spec doc and passes.
	Depth  = 2
	Layers = 3 // want "exported facade symbol Layers has no doc comment"
)
