package bad // want "package bad has no package doc comment"

// Exported is undocumented-package content: outside the facade package,
// exported declarations are not checked, so only the missing package doc
// above is flagged.
func Exported(v int) int { return v + 1 }

func AlsoExported(v int) int { return v - 1 }
