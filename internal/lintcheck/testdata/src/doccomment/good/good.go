// Package good carries a package doc comment, so nothing here is flagged —
// exported declarations outside the facade need no per-symbol docs.
package good

func Exported(v int) int { return v * 2 }
