// Package good ties every goroutine to an owner: Add before the launch,
// Done inside the launched literal, or a documented channel join.
package good

import "sync"

// fanOut launches one goroutine per job and joins them all.
func fanOut(jobs []func()) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j func()) {
			defer wg.Done()
			j()
		}(j)
	}
	wg.Wait()
}

// track launches the job tied to a WaitGroup slot the caller Added; the
// Done inside the literal is the visible half of the protocol here.
func track(wg *sync.WaitGroup, job func()) {
	//lint:ignore syncmisuse joined by the owner that called wg.Add and waits on wg
	go func() {
		defer wg.Done()
		job()
	}()
}

// viaChannel hands the result back over a buffered channel; the receive
// below joins the goroutine.
func viaChannel(job func() int) int {
	ch := make(chan int, 1)
	//lint:ignore goroutinelifecycle joined by the channel receive below
	go func() { ch <- job() }()
	return <-ch
}
