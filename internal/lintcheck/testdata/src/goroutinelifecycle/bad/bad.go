// Package bad launches goroutines that no WaitGroup ties to an owner.
package bad

// run fires a worker and forgets it.
func run(work func()) {
	go work() // want "naked go statement"
}

type worker struct{ ch chan int }

func (w worker) loop() { w.ch <- 1 }

// spawn launches the worker loop with a channel join but no WaitGroup; the
// channel receive satisfies syncmisuse but not the lifecycle discipline.
func spawn(w worker) {
	go w.loop() // want "naked go statement"
	<-w.ch
}
