// Package bad seeds syncmisuse violations: sync primitives copied by value
// and goroutines with no visible join.
package bad

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func byValueParam(c counter) int { // want "parameter copies a value containing a sync primitive"
	return c.n
}

func (c counter) get() int { // want "value receiver copies a value containing a sync primitive"
	return c.n
}

func copyAssign(src *counter) int {
	c := *src // want "assignment copies a value containing a sync primitive"
	return c.n
}

func fireAndForget(f func()) {
	go f() // want "goroutine launched without a visible join"
}

func rangeCopy(cs []counter) int {
	total := 0
	for _, c := range cs { // want "range copies a value containing a sync primitive"
		total += c.n
	}
	return total
}

// tableCache mirrors a lazily built translation table guarded by sync.Once;
// copying the cache forks the Once and lets the table build twice.
type tableCache struct {
	once sync.Once
	tab  []int
}

func snapshotTable(tc tableCache) []int { // want "parameter copies a value containing a sync primitive"
	return tc.tab
}

func scatterNoJoin(jobs []int, apply func(int)) {
	for _, j := range jobs {
		go apply(j) // want "goroutine launched without a visible join"
	}
}
