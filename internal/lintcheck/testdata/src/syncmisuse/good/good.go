// Package good uses sync primitives in the ways the syncmisuse analyzer
// accepts: pointer receivers, WaitGroup joins, and channel joins.
package good

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

func viaChannel(f func() int) int {
	ch := make(chan int, 1)
	go func() { ch <- f() }()
	return <-ch
}
