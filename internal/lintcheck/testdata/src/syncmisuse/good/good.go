// Package good uses sync primitives in the ways the syncmisuse analyzer
// accepts: pointer receivers, WaitGroup joins, and channel joins.
package good

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func fanOut(work []func()) {
	var wg sync.WaitGroup
	for _, f := range work {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(f)
	}
	wg.Wait()
}

func viaChannel(f func() int) int {
	ch := make(chan int, 1)
	//lint:ignore goroutinelifecycle joined by the channel receive below
	go func() { ch <- f() }()
	return <-ch
}

// tableCache holds a lazily built translation table; the Once is reached
// only through a pointer receiver, so it is never copied.
type tableCache struct {
	once sync.Once
	tab  []int
}

func (tc *tableCache) table(build func() []int) []int {
	tc.once.Do(func() { tc.tab = build() })
	return tc.tab
}

// scatterWorkers fans translation jobs out to goroutines and joins them
// all before returning, the shape of the fast path's scatter stage.
func scatterWorkers(jobs []int, apply func(int)) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			apply(j)
		}(j)
	}
	wg.Wait()
}
