// Package bad seeds modmath violations: raw % on expressions that can be
// negative, and the manual normalization idiom outside the canonical helper.
package bad

func wrapDelta(i, j, k int) int {
	return (i - j) % k // want "raw % on a possibly negative value"
}

func negated(a, k int) int {
	return -a % k // want "raw % on a possibly negative value"
}

func converted(a, k int) int64 {
	return int64(a-1) % int64(k) // want "raw % on a possibly negative value"
}

func manual(x, k int) int {
	v := x % k // want "manual mod normalization"
	if v < 0 {
		v += k
	}
	return v
}

func manualRemAssign(v, k int) int {
	v %= k // want "manual mod normalization"
	if v < 0 {
		v = v + k
	}
	return v
}
