// Package good holds modular arithmetic the modmath analyzer must accept:
// % on values that cannot be negative, and the canonical helper pattern
// silenced with a //lint:ignore directive.
package good

// mod mirrors torus.Mod; the normalization idiom is allowed exactly once,
// behind an explicit suppression.
func mod(a, k int) int {
	//lint:ignore modmath canonical normalized-mod helper for this fixture
	a %= k
	if a < 0 {
		a += k
	}
	return a
}

func wrapDelta(i, j, k int) int {
	return mod(i-j, k)
}

func plainIndex(a, k int) int {
	return a % k // identifiers are assumed non-negative
}

func lengthBucket(s []int, k int) int {
	return len(s) % k
}

func constantFold(k int) int {
	return 7 % 3 // constant expression, evaluated at compile time
}
