// Package good handles or legitimately ignores errors in every way the
// errcheck-lite analyzer accepts.
package good

import (
	"bytes"
	"fmt"
	"os"
	"strconv"
	"strings"
)

func handled(path string) error {
	if err := os.Remove(path); err != nil {
		return err
	}
	return nil
}

func propagated(s string) (int, error) {
	return strconv.Atoi(s)
}

func printing(v int) {
	fmt.Println(v)
	fmt.Fprintf(os.Stderr, "v=%d\n", v)
}

func inMemorySinks() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "head")
	sb.WriteString("-tail")
	var buf bytes.Buffer
	buf.WriteByte('!')
	return sb.String() + buf.String()
}
