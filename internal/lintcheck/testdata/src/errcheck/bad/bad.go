// Package bad seeds errcheck-lite violations: bare calls, deferred calls,
// and blank assignments that discard error results.
package bad

import (
	"fmt"
	"os"
	"strconv"
)

func bareCall(path string) {
	os.Remove(path) // want "discarded error result from os.Remove"
}

func deferred(f *os.File) {
	defer f.Close() // want "discarded error result from"
}

func blankTuple(s string) int {
	n, _ := strconv.Atoi(s) // want "assigned to _"
	return n
}

func blankSingle(f *os.File) {
	_ = f.Sync() // want "assigned to _"
}

func printToFile(f *os.File) {
	fmt.Fprintln(f, "hello") // want "discarded error result from"
}
