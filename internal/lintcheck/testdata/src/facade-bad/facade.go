// Package facadebad is a facade that re-exports only part of its internal
// package and has no allowlist, so facade-complete must flag the rest.
package facadebad

import "fixture/internal/geom"

// Area re-exports geom.Area.
func Area(w, h int) int { return geom.Area(w, h) }
