// Package bad seeds overflowvol violations: unguarded k^d loop products,
// unbounded power-of-two shifts, and integer casts of math.Pow.
package bad

import "math"

func volume(k, d int) int {
	n := 1
	for i := 0; i < d; i++ {
		n *= k // want "integer accumulator n multiplied in a loop"
	}
	return n
}

func volumeExplicit(k, d int) int {
	n := 1
	for i := 0; i < d; i++ {
		n = n * k // want "integer accumulator n multiplied in a loop"
	}
	return n
}

func subsets(n int) int {
	return 1 << n // want "1 << n with an unbounded shift amount"
}

func powVolume(k, d int) int {
	return int(math.Pow(float64(k), float64(d))) // want "integer conversion of math.Pow"
}

// strideTable mimics a naive translation-table stride precomputation: the
// running stride k^j is accumulated through a plain identifier with no
// volume guard, so the k^d product can overflow silently.
func strideTable(k, d int) []int {
	strides := make([]int, d)
	stride := 1
	for j := 0; j < d; j++ {
		strides[j] = stride
		stride *= k // want "integer accumulator stride multiplied in a loop"
	}
	return strides
}
