// Package good computes volumes in the ways the overflowvol analyzer
// accepts: guarded accumulators, bounded or constant shifts, and bitmask
// shifts.
package good

import "errors"

// MaxNodes bounds every volume computed in this fixture.
const MaxNodes = 1 << 28

var errTooBig = errors.New("volume exceeds MaxNodes")

func volume(k, d int) (int, error) {
	n := 1
	for i := 0; i < d; i++ {
		if n > MaxNodes/k {
			return 0, errTooBig
		}
		n *= k
	}
	return n, nil
}

func boundedShift(n int) int {
	if n > 30 {
		n = 30
	}
	return 1 << n
}

func bitTest(flags, bit int) bool {
	return flags&(1<<bit) != 0
}

func constShift() int {
	return 1 << 10
}

// strideTable precomputes translation-table strides the accepted way: the
// total volume is validated by the guarded accumulator first, and each
// stride k^j is then derived element-to-element inside the slice, never
// through an unguarded scalar accumulator.
func strideTable(k, d int) ([]int, error) {
	if _, err := volume(k, d); err != nil {
		return nil, err
	}
	strides := make([]int, d)
	strides[0] = 1
	for j := 1; j < d; j++ {
		strides[j] = strides[j-1] * k
	}
	return strides, nil
}

// maskSweep enumerates routing-order subsets with the shift bounded by the
// loop comparison, the shape used by the UDR accumulation kernels.
func maskSweep(s int, visit func(int)) {
	for mask := 0; mask < 1<<(s-1); mask++ {
		visit(mask)
	}
}
