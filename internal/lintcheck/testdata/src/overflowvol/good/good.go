// Package good computes volumes in the ways the overflowvol analyzer
// accepts: guarded accumulators, bounded or constant shifts, and bitmask
// shifts.
package good

import "errors"

// MaxNodes bounds every volume computed in this fixture.
const MaxNodes = 1 << 28

var errTooBig = errors.New("volume exceeds MaxNodes")

func volume(k, d int) (int, error) {
	n := 1
	for i := 0; i < d; i++ {
		if n > MaxNodes/k {
			return 0, errTooBig
		}
		n *= k
	}
	return n, nil
}

func boundedShift(n int) int {
	if n > 30 {
		n = 30
	}
	return 1 << n
}

func bitTest(flags, bit int) bool {
	return flags&(1<<bit) != 0
}

func constShift() int {
	return 1 << 10
}
