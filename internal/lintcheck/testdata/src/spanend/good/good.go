// Package good ends every span on every path: deferred Ends, dominating
// explicit Ends, nil guards, deferred closures, and escaping spans.
package good

import (
	"context"

	"fixture/obs"
)

func deferred(ctx context.Context) {
	ctx, sp := obs.Start(ctx, "good.deferred")
	defer sp.End()
	_ = ctx
}

func bothBranches(ctx context.Context, fail bool) error {
	_, sp := obs.Start(ctx, "good.branches")
	if fail {
		sp.End()
		return context.Canceled
	}
	sp.End()
	return nil
}

func nilGuarded(ctx context.Context) {
	_, sp := obs.Start(ctx, "good.nilguard")
	if sp == nil {
		return
	}
	defer sp.End()
}

func deferredClosure(ctx context.Context) {
	_, sp := obs.Start(ctx, "good.closure")
	defer func() { sp.End() }()
}

// escapes hands the span to its caller, who owns the End from here on.
func escapes(ctx context.Context) (context.Context, *obs.Span) {
	return obs.Start(ctx, "good.escape")
}
