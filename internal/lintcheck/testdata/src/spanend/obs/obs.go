// Package obs is a minimal span tracer for the spanend fixtures.
package obs

import "context"

// Span is one in-flight trace span; End is idempotent and nil-safe.
type Span struct{ ended bool }

// End closes the span. Safe on a nil receiver.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.ended = true
}

// Start opens a span with the given name.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	_ = name
	return ctx, &Span{}
}
