// Package bad mishandles span lifecycles in every way spanend flags:
// discarded spans and spans that miss End on some path.
package bad

import (
	"context"

	"fixture/obs"
)

func discarded(ctx context.Context) {
	obs.Start(ctx, "bad.discarded") // want "is discarded"
}

func blanked(ctx context.Context) {
	_, _ = obs.Start(ctx, "bad.blanked") // want "is discarded"
}

func leaksOnError(ctx context.Context, fail bool) error {
	ctx, sp := obs.Start(ctx, "bad.leaky") // want "not ended on every path"
	_ = ctx
	if fail {
		return context.Canceled
	}
	sp.End()
	return nil
}

func fallsOffEnd(ctx context.Context) {
	_, sp := obs.Start(ctx, "bad.falloff") // want "not ended on every path"
	if sp != nil {
		_ = ctx
	}
}
