// Package good threads contexts the way ctxflow demands: downstream hops
// carry the caller's ctx, and the only re-root is the allowlisted Seed.
package good

import "context"

// Step does work without a context; callers that have one use StepCtx.
func Step(n int) int { return n + 1 }

// StepCtx is the context-threading variant of Step.
func StepCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n + 1
}

// Run threads its context to StepCtx.
func Run(ctx context.Context, n int) int {
	return StepCtx(ctx, n)
}

// stepless has no context in scope, so calling Step directly is fine.
func stepless(n int) int {
	return Step(n)
}

// Seed builds the process root context; allowlisted in
// ctxflow_allowlist.txt at the tree root.
func Seed() context.Context {
	return context.Background()
}
