// Package bad re-roots the context tree and drops in-scope contexts, the
// two hazards ctxflow flags.
package bad

import "context"

// Work does work without a context.
func Work(n int) int { return n + 1 }

// WorkCtx is the context-threading variant of Work.
func WorkCtx(ctx context.Context, n int) int {
	if ctx.Err() != nil {
		return 0
	}
	return n + 1
}

func reroot() context.Context {
	return context.Background() // want "re-roots the context tree"
}

func todoInside(ctx context.Context) context.Context {
	c := context.TODO() // want "re-roots the context tree"
	_ = ctx
	return c
}

func dropsCtx(ctx context.Context) int {
	_ = ctx
	return Work(1) // want "drops the in-scope context"
}

func dropsCtxInClosure(ctx context.Context) func() int {
	_ = ctx
	return func() int {
		return Work(2) // want "drops the in-scope context"
	}
}
