// Package multi exercises one //lint:ignore directive naming two analyzers.
package multi

// fire launches a goroutine nothing joins; the directive below must silence
// both the syncmisuse and the goroutinelifecycle finding on the go line.
func fire(job func()) {
	//lint:ignore syncmisuse,goroutinelifecycle fixture: the process owns this goroutine
	go job()
}
