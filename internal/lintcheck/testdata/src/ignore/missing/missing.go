// Package missing carries a malformed directive: an analyzer list but no
// reason. It must suppress nothing and surface as a lint-ignore finding.
package missing

// wrap misuses raw %; the reasonless directive must not silence modmath.
func wrap(a, k int) int {
	//lint:ignore modmath
	return (a - 1) % k
}
