// Package facadegood re-exports one internal symbol and allowlists the
// other, so facade-complete must stay silent.
package facadegood

import "fixture/internal/geom"

// Area re-exports geom.Area.
func Area(w, h int) int { return geom.Area(w, h) }
