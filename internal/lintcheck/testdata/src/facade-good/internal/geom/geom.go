// Package geom is internal plumbing behind the fixture facade.
package geom

// Area returns w*h.
func Area(w, h int) int { return w * h }

// Perimeter returns 2*(w+h). Allowlisted, not re-exported.
func Perimeter(w, h int) int { return 2 * (w + h) }
