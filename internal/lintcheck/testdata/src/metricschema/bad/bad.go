// Package bad violates the promSchema contract in every way metricschema
// flags: orphan and phantom counters, duplicate families, shuffled and
// duplicated histogram buckets, and a double-registered gated counter.
package bad

// NewHistogram registers a histogram with the given bucket bounds; a local
// stand-in for the obs metrics surface (the analyzer matches by name).
func NewHistogram(bounds ...float64) int { return len(bounds) }

// NewCounter registers a gated counter.
func NewCounter(name, help string) int {
	_ = help
	return len(name)
}

// PromCounter renders one counter family.
func PromCounter(buf []byte, name, help string, v int) []byte {
	_ = name
	_ = help
	_ = v
	return buf
}

const (
	mHits   = "fx_hits"
	mMisses = "fx_misses" // want "orphan metric"
)

var promSchema = []struct {
	src, name, help string
}{
	{mHits, "fx_hits_total", "cache hits"},
	{"fx_ghost", "fx_ghost_total", "ghost"}, // want "phantom metric"
	{mHits, "fx_hits_total", "dup family"},  // want "emitted more than once"
}

func emit(buf []byte) []byte {
	buf = PromCounter(buf, "fx_hits_total", "hits again", 1) // want "emitted more than once"
	return buf
}

func histograms() {
	NewHistogram(0.1, 0.05, 1)  // want "not sorted ascending"
	NewHistogram(0.1, 0.1, 0.5) // want "duplicate bounds"
}

func counters() {
	NewCounter("fx_gated_total", "gated")
	NewCounter("fx_gated_total", "gated twice") // want "already registered"
}
