// Package good keeps its metrics surface consistent: every counter const
// has a promSchema row, families are unique, and buckets ascend.
package good

// NewHistogram registers a histogram with the given bucket bounds; a local
// stand-in for the obs metrics surface (the analyzer matches by name).
func NewHistogram(bounds ...float64) int { return len(bounds) }

// NewCounter registers a gated counter.
func NewCounter(name, help string) int {
	_ = help
	return len(name)
}

// PromCounter renders one counter family.
func PromCounter(buf []byte, name, help string, v int) []byte {
	_ = name
	_ = help
	_ = v
	return buf
}

const (
	gHits     = "fy_hits"
	gMisses   = "fy_misses"
	gAnalytic = "fy_analytic_hits"
)

var promSchema = []struct {
	src, name, help string
}{
	{gHits, "fy_hits_total", "cache hits"},
	{gMisses, "fy_misses_total", "cache misses"},
	{gAnalytic, "fy_analytic_hits_total", "closed-form fast lane answers"},
}

func emit(buf []byte) []byte {
	return PromCounter(buf, "fy_errors_total", "errors", 0)
}

func setup() {
	NewHistogram(0.05, 0.1, 1)
	NewCounter("fy_gated_total", "gated")
}
