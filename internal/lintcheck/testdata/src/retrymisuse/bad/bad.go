// Package bad seeds retrymisuse violations: retry loops that sleep or
// block on timers with no way to cancel them.
package bad

import (
	"context"
	"errors"
	"time"
)

var errUnavailable = errors.New("unavailable")

func call() error { return errUnavailable }

// sleepRetry is the classic uncancellable retry storm: the caller's
// context is dead but the loop keeps hammering the server.
func sleepRetry(ctx context.Context) error {
	for i := 0; i < 5; i++ {
		if err := call(); err == nil {
			return nil
		}
		time.Sleep(100 * time.Millisecond) // want "retry loop sleeps with bare time.Sleep"
	}
	return errUnavailable
}

// afterRetry swaps Sleep for a bare After receive — equally uncancellable
// and it leaks one timer per iteration.
func afterRetry() error {
	for {
		if err := call(); err == nil {
			return nil
		}
		<-time.After(time.Second) // want "retry loop blocks on <-time.After with no cancellation escape"
	}
}

// selectNoDone dresses the After receive in a select, but with no
// cancellation case the select is just a slow spin.
func selectNoDone(results <-chan int) int {
	for {
		select {
		case v := <-results:
			return v
		case <-time.After(50 * time.Millisecond): // want "select retries on <-time.After with no cancellation case"
		}
	}
}

// rangeSleep throttles a fan-out with a bare sleep; range loops are
// retry-shaped too.
func rangeSleep(jobs []int, apply func(int)) {
	for _, j := range jobs {
		apply(j)
		time.Sleep(10 * time.Millisecond) // want "retry loop sleeps with bare time.Sleep"
	}
}
