// Package good shows the cancellable counterparts of every retrymisuse
// violation: retry delays always race a cancellation channel.
package good

import (
	"context"
	"errors"
	"time"
)

var errUnavailable = errors.New("unavailable")

func call() error { return errUnavailable }

// sleepCtx is the canonical cancellable delay: a timer raced against
// ctx.Done(), mirrored from the service client's realClock.Sleep.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// retryWithBackoff delays between attempts through sleepCtx, so the loop
// dies with its context.
func retryWithBackoff(ctx context.Context) error {
	for i := 0; i < 5; i++ {
		if err := call(); err == nil {
			return nil
		}
		if err := sleepCtx(ctx, 100*time.Millisecond); err != nil {
			return err
		}
	}
	return errUnavailable
}

// selectWithDone pairs the After receive with a ctx.Done() case — the
// cancellable form of the bad package's selectNoDone.
func selectWithDone(ctx context.Context, results <-chan int) (int, error) {
	for {
		select {
		case v := <-results:
			return v, nil
		case <-time.After(50 * time.Millisecond):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
	}
}

// stopChannelLoop receives from a conventional struct{} stop channel,
// which counts as a cancellation escape just like ctx.Done().
func stopChannelLoop(stop <-chan struct{}, tick func()) {
	for {
		select {
		case <-stop:
			return
		case <-time.After(10 * time.Millisecond):
			tick()
		}
	}
}

// tickerLoop uses a Ticker, the non-leaking way to pace periodic work;
// ticker channels are not After calls and are not flagged.
func tickerLoop(ctx context.Context, tick func()) {
	t := time.NewTicker(10 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			tick()
		case <-ctx.Done():
			return
		}
	}
}
