package lintcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// runFailpointsite audits the failpoint registry end to end.
//
// Registration side (loaded packages): every failpoint.New argument must be
// a string literal (the registry is meant to be greppable), site names must
// be unique, and each name must follow the repo convention from DESIGN.md
// §10 — lowercase dot-separated segments whose first segment is the
// declaring package's name (service.cache.get, load.compute.merge).
//
// Reference side (raw scan of *_test.go, *.sh, and *.md files, which the
// type-checked loader never sees): every site string used in an explicit
// failpoint context — Enable/FailpointEnable calls, PUT/DELETE paths under
// debug/failpoints/, -failpoints flag or TORUSNET_FAILPOINTS env specs, and
// failpoint.New examples in docs — must resolve to a registered site, so
// chaos tests, the smoke script, and the operator docs cannot drift from
// the code. Dotted map keys and {"site", "spec"} tuples in test tables are
// checked too, but only when their first segment matches a registering
// package (avoiding span names and the like). Deliberate negative tests
// carry a //lint:ignore failpointsite directive on or above the line, which
// the raw scanner honors directly.
func runFailpointsite(u *Unit) []Finding {
	var out []Finding
	sites := make(map[string]token.Pos) // registered site -> first New call

	// Pass 1: registrations in loaded (non-test) packages.
	for _, p := range u.Pkgs {
		if p.Types == nil {
			continue
		}
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil || fn.Name() != "New" || fn.Pkg() == nil || fn.Pkg().Name() != "failpoint" {
					return true
				}
				if len(call.Args) != 1 {
					return true
				}
				lit, ok := unparen(call.Args[0]).(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					out = append(out, u.finding("failpointsite", call.Args[0].Pos(),
						"failpoint.New argument must be a string literal so the site registry stays greppable", ""))
					return true
				}
				name := strings.Trim(lit.Value, "`\"")
				if first, dup := sites[name]; dup {
					out = append(out, u.finding("failpointsite", call.Pos(),
						fmt.Sprintf("failpoint site %q is already registered (line %d)",
							name, u.Fset.Position(first).Line), ""))
					return true
				}
				sites[name] = call.Pos()
				if !siteNameRe.MatchString(name) {
					out = append(out, u.finding("failpointsite", call.Pos(),
						fmt.Sprintf("failpoint site %q does not follow the <pkg>.<stage>[.<op>] convention (lowercase dot-separated segments)", name), ""))
				} else if seg := name[:strings.IndexByte(name, '.')]; seg != p.Types.Name() {
					out = append(out, u.finding("failpointsite", call.Pos(),
						fmt.Sprintf("failpoint site %q must start with its declaring package name %q", name, p.Types.Name()), ""))
				}
				return true
			})
		}
	}

	// Pass 2: raw files. Test files both register sites (var fp = New(...)
	// in _test.go) and reference them, so collect registrations first.
	raw := rawScanFiles(u)
	for _, rf := range raw {
		if !strings.HasSuffix(rf.path, "_test.go") {
			continue
		}
		for _, m := range testNewRe.FindAllStringSubmatchIndex(rf.data, -1) {
			whole := rf.data[m[0]:m[1]]
			name := rf.data[m[2]:m[3]]
			if !strings.Contains(whole, "failpoint.New") && !strings.Contains(rf.path, "failpoint") {
				continue
			}
			if _, ok := sites[name]; !ok {
				sites[name] = token.NoPos
			}
		}
	}
	pkgSegs := make(map[string]bool)
	for name := range sites {
		if i := strings.IndexByte(name, '.'); i > 0 {
			pkgSegs[name[:i]] = true
		}
	}

	for _, rf := range raw {
		isTest := strings.HasSuffix(rf.path, "_test.go")
		lines := strings.Split(rf.data, "\n")
		for i, line := range lines {
			if rawSuppressed(lines, i) {
				continue
			}
			for _, pat := range sitePatterns {
				if pat.testOnly && !isTest {
					continue
				}
				if pat.failpointPkgOnly && !strings.Contains(rf.path, "failpoint") {
					continue
				}
				for _, m := range pat.re.FindAllStringSubmatch(line, -1) {
					name := m[1]
					if pat.weak && !pkgSegs[firstSeg(name)] {
						continue
					}
					if _, ok := sites[name]; !ok {
						out = append(out, Finding{
							Analyzer: "failpointsite",
							File:     rf.path,
							Line:     i + 1,
							Col:      strings.Index(line, name) + 1,
							Message:  fmt.Sprintf("failpoint site %q is referenced here but registered nowhere", name),
							Suggestion: "register it with failpoint.New, fix the name, or mark a deliberate " +
								"negative test with //lint:ignore failpointsite <reason>",
						})
					}
				}
			}
		}
	}
	return out
}

var siteNameRe = regexp.MustCompile(`^[a-z][a-z0-9]*(\.[a-z][a-z0-9]*)+$`)

// testNewRe finds failpoint registrations in raw test files.
var testNewRe = regexp.MustCompile(`(?:failpoint\.)?\bNew\(\s*"([a-z][a-z0-9]*(?:\.[a-z][a-z0-9]*)+)"\s*\)`)

// sitePatterns are the explicit contexts a failpoint site string appears in
// outside loaded Go code. weak patterns (test tables) only match sites whose
// first segment is a known registering package; failpointPkgOnly patterns
// (bare Enable) apply only to the failpoint package's own files.
var sitePatterns = []struct {
	re               *regexp.Regexp
	weak             bool
	testOnly         bool
	failpointPkgOnly bool
}{
	{re: regexp.MustCompile(`failpoint\.Enable\(\s*"([^"]+)"`)},
	{re: regexp.MustCompile(`\bFailpointEnable\(\s*"([^"]+)"`)},
	{re: regexp.MustCompile(`(?:^|[^.\w])Enable\(\s*"([^"]+)"`), failpointPkgOnly: true, testOnly: true},
	{re: regexp.MustCompile(`debug/failpoints/([a-z][a-z0-9]*(?:\.[a-z][a-z0-9]*)+)`)},
	{re: regexp.MustCompile(`failpoint\.New\(\s*"([^"]+)"`), testOnly: false},
	{re: regexp.MustCompile(`-failpoints[= ]'?"?([a-z][a-z0-9]*(?:\.[a-z][a-z0-9]*)+)=`)},
	{re: regexp.MustCompile(`TORUSNET_FAILPOINTS=['"]?([a-z][a-z0-9]*(?:\.[a-z][a-z0-9]*)+)=`)},
	{re: regexp.MustCompile(`\{"([a-z][a-z0-9]*(?:\.[a-z][a-z0-9]*)+)",\s*"`), weak: true, testOnly: true},
	{re: regexp.MustCompile(`"([a-z][a-z0-9]*(?:\.[a-z][a-z0-9]*)+)":\s`), weak: true, testOnly: true},
}

func firstSeg(name string) string {
	if i := strings.IndexByte(name, '.'); i > 0 {
		return name[:i]
	}
	return name
}

// rawSuppressed honors //lint:ignore failpointsite directives in raw-scanned
// files (the loader's suppression table only covers loaded Go files). The
// directive works on its own line or the line above, in any comment syntax.
func rawSuppressed(lines []string, i int) bool {
	if strings.Contains(lines[i], "lint:ignore failpointsite") {
		return true
	}
	return i > 0 && strings.Contains(lines[i-1], "lint:ignore failpointsite")
}

type rawFile struct {
	path string
	data string
}

// rawScanFiles collects the unit's *_test.go, *.sh, and *.md files, skipping
// testdata, vendor, hidden, and underscore directories (mirroring the
// package loader) so analyzer fixtures never leak into a real run.
func rawScanFiles(u *Unit) []rawFile {
	var out []rawFile
	//lint:ignore errcheck-lite WalkDir only errors on unreadable dirs, which the loader already tolerated
	filepath.WalkDir(u.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return nil
		}
		name := d.Name()
		if d.IsDir() {
			if path != u.Root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, "_test.go") && !strings.HasSuffix(name, ".sh") && !strings.HasSuffix(name, ".md") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil
		}
		out = append(out, rawFile{path, string(data)})
		return nil
	})
	sort.Slice(out, func(i, j int) bool { return out[i].path < out[j].path })
	return out
}
