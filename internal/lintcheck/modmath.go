package lintcheck

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// runModmath flags modular arithmetic that goes wrong on negative operands.
// Go's % truncates toward zero, so (i-j) % k is negative whenever i < j —
// a silent corruption on every torus wrap path. Two rules:
//
//  1. a % b where a is a signed integer expression that can be negative
//     (it contains a subtraction, a unary minus, or a negative constant).
//  2. The manual normalization idiom
//     v := x % k; if v < 0 { v += k }
//     which is correct but must be centralized in the canonical helper
//     torus.Mod so that rule 1 has a single blessed implementation.
func runModmath(u *Unit, p *Package) []Finding {
	var out []Finding
	const name = "modmath"
	flagged := make(map[ast.Node]bool)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.REM || flagged[n] {
					return true
				}
				if tv, ok := p.Info.Types[n]; ok && tv.Value != nil {
					return true // constant expression, evaluated at compile time
				}
				if !signedInt(p.Info.TypeOf(n.X)) {
					return true
				}
				if maybeNegative(p.Info, n.X) {
					flagged[n] = true
					out = append(out, u.finding(name, n.OpPos,
						"raw % on a possibly negative value truncates toward zero",
						"wrap with the canonical normalized-mod helper torus.Mod(a, k)"))
				}
			case *ast.BlockStmt:
				out = append(out, modNormalizePattern(u, p, n.List, flagged)...)
			case *ast.CaseClause:
				out = append(out, modNormalizePattern(u, p, n.Body, flagged)...)
			}
			return true
		})
	}
	return out
}

// modNormalizePattern matches consecutive statements of the form
// "v %= k" or "v := x % k" followed by "if v < 0 { v += k }".
func modNormalizePattern(u *Unit, p *Package, stmts []ast.Stmt, flagged map[ast.Node]bool) []Finding {
	var out []Finding
	for i := 0; i+1 < len(stmts); i++ {
		name, rem := modAssignTarget(stmts[i])
		if name == "" {
			continue
		}
		ifs, ok := stmts[i+1].(*ast.IfStmt)
		if !ok || ifs.Init != nil || ifs.Else != nil || !isNegFixup(ifs, name) {
			continue
		}
		if rem != nil && flagged[rem] {
			continue // rule 1 already reported this site
		}
		if rem != nil {
			flagged[rem] = true
		}
		out = append(out, u.finding("modmath", stmts[i].Pos(),
			"manual mod normalization (% then negative fixup)",
			"use the canonical helper torus.Mod(a, k) instead"))
	}
	return out
}

// modAssignTarget returns the assigned identifier when the statement is a
// single-variable %= or an assignment whose RHS is a % expression, plus the
// REM node itself (nil for %=).
func modAssignTarget(s ast.Stmt) (string, *ast.BinaryExpr) {
	as, ok := s.(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return "", nil
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok {
		return "", nil
	}
	switch as.Tok {
	case token.REM_ASSIGN:
		return id.Name, nil
	case token.ASSIGN, token.DEFINE:
		if be, ok := unparen(as.Rhs[0]).(*ast.BinaryExpr); ok && be.Op == token.REM {
			return id.Name, be
		}
	}
	return "", nil
}

// isNegFixup matches "if v < 0 { v += k }" (or v = v + k).
func isNegFixup(ifs *ast.IfStmt, v string) bool {
	cond, ok := unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return false
	}
	if id, ok := unparen(cond.X).(*ast.Ident); !ok || id.Name != v {
		return false
	}
	if lit, ok := unparen(cond.Y).(*ast.BasicLit); !ok || lit.Value != "0" {
		return false
	}
	if len(ifs.Body.List) != 1 {
		return false
	}
	as, ok := ifs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 {
		return false
	}
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name != v {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN:
		return true
	case token.ASSIGN:
		be, ok := unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok || be.Op != token.ADD {
			return false
		}
		x, ok := unparen(be.X).(*ast.Ident)
		return ok && x.Name == v
	}
	return false
}

// signedInt reports whether t is a signed integer basic type.
func signedInt(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUnsigned == 0
}

// maybeNegative conservatively decides whether an integer expression can be
// negative. Identifiers, selectors, and ordinary calls are assumed
// non-negative (torus indices and radices are invariantly >= 0); what the
// rule hunts is arithmetic that manufactures negativity: subtraction, unary
// minus, and negative constants, propagated through +, *, /, %, and
// conversions.
func maybeNegative(info *types.Info, e ast.Expr) bool {
	e = unparen(e)
	if tv, ok := info.Types[e]; ok && tv.Value != nil {
		if tv.Value.Kind() == constant.Int || tv.Value.Kind() == constant.Float {
			return constant.Sign(tv.Value) < 0
		}
		return false
	}
	switch e := e.(type) {
	case *ast.UnaryExpr:
		return e.Op == token.SUB
	case *ast.BinaryExpr:
		switch e.Op {
		case token.SUB:
			return true
		case token.ADD, token.MUL, token.QUO, token.REM:
			return maybeNegative(info, e.X) || maybeNegative(info, e.Y)
		}
		return false
	case *ast.CallExpr:
		if id, ok := unparen(e.Fun).(*ast.Ident); ok && (id.Name == "len" || id.Name == "cap") {
			return false
		}
		// A conversion is as negative as its operand.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return maybeNegative(info, e.Args[0])
		}
		return false
	}
	return false
}
