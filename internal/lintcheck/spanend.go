package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// runSpanend enforces the span lifecycle discipline: every span produced by
// obs.Start, (*Tracer).Root, or any other call returning a *Span must have
// End called on every path out of the function that owns it — either a
// dominating explicit End before each return, or (preferred) a defer right
// after the Start. Discarding the span result outright is always a finding.
//
// The analysis is per-function and deliberately modest: a span that escapes
// its function (returned, stored, passed to another call, or captured by a
// non-deferred closure) is assumed to be managed elsewhere and skipped.
// Within a function the walk tracks, per statement, whether End dominates,
// merging over if/else branches; `if sp == nil` / `if sp != nil` guards are
// understood (End is nil-receiver-safe, so a nil span never needs ending).
// The fix inserts `defer sp.End()` after the Start — End is idempotent, so
// the defer is safe even when explicit Ends remain on some paths.
func runSpanend(u *Unit, p *Package) []Finding {
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				out = append(out, checkSpansInFunc(u, p, body)...)
			}
			return true
		})
	}
	return out
}

// spanResultIndexes returns the result-tuple indexes of a call that carry a
// span (pointer to a named type with a niladic End method, conventionally
// named Span), or nil when the call produces none.
func spanResultIndexes(p *Package, call *ast.CallExpr) []int {
	tv, ok := p.Info.Types[call]
	if !ok {
		return nil
	}
	var idx []int
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isSpanType(t.At(i).Type()) {
				idx = append(idx, i)
			}
		}
	default:
		if isSpanType(tv.Type) {
			idx = []int{0}
		}
	}
	return idx
}

// isSpanType reports whether t is a pointer to a named type called Span
// whose pointer method set includes a niladic End.
func isSpanType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Name() != "Span" {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "End" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		return ok && sig.Params().Len() == 0
	}
	return false
}

// spanName extracts a human label for the span: the first string literal
// argument of the producing call (obs.Start(ctx, "cache.get")), else the
// bound variable name.
func spanName(call *ast.CallExpr, fallback string) string {
	for _, arg := range call.Args {
		if lit, ok := unparen(arg).(*ast.BasicLit); ok && lit.Kind == token.STRING {
			return strings.Trim(lit.Value, "`\"")
		}
	}
	return fallback
}

// checkSpansInFunc finds span-producing calls directly inside the function
// body (not in nested function literals — those are visited separately) and
// verifies each span's lifecycle.
func checkSpansInFunc(u *Unit, p *Package, body *ast.BlockStmt) []Finding {
	var out []Finding
	var visitBlock func(b *ast.BlockStmt)
	var visitStmts func(stmts []ast.Stmt)
	visitStmts = func(stmts []ast.Stmt) {
		for i, s := range stmts {
			switch s := s.(type) {
			case *ast.AssignStmt:
				out = append(out, checkSpanAssign(u, p, s, stmts[i+1:])...)
			case *ast.ExprStmt:
				if call, ok := unparen(s.X).(*ast.CallExpr); ok && len(spanResultIndexes(p, call)) > 0 {
					out = append(out, u.finding("spanend", call.Pos(),
						"span "+quoteName(spanName(call, "result"))+" is discarded; its End can never run",
						"bind the span and defer its End"))
				}
			case *ast.BlockStmt:
				visitBlock(s)
				continue
			case *ast.IfStmt:
				visitBlock(s.Body)
				if els, ok := s.Else.(*ast.BlockStmt); ok {
					visitBlock(els)
				} else if elif, ok := s.Else.(*ast.IfStmt); ok {
					visitStmts([]ast.Stmt{elif})
				}
				continue
			case *ast.ForStmt:
				visitBlock(s.Body)
				continue
			case *ast.RangeStmt:
				visitBlock(s.Body)
				continue
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						visitStmts(cc.Body)
					}
				}
				continue
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						visitStmts(cc.Body)
					}
				}
				continue
			case *ast.SelectStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						visitStmts(cc.Body)
					}
				}
				continue
			case *ast.LabeledStmt:
				visitStmts([]ast.Stmt{s.Stmt})
				continue
			}
		}
	}
	visitBlock = func(b *ast.BlockStmt) { visitStmts(b.List) }
	visitBlock(body)
	return out
}

func quoteName(s string) string { return "\"" + s + "\"" }

// checkSpanAssign verifies one `... := spanProducingCall(...)` statement.
// rest is the statement list following the assignment in its block.
func checkSpanAssign(u *Unit, p *Package, as *ast.AssignStmt, rest []ast.Stmt) []Finding {
	if len(as.Rhs) != 1 {
		return nil
	}
	call, ok := unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	idxs := spanResultIndexes(p, call)
	if len(idxs) == 0 {
		return nil
	}
	var out []Finding
	for _, idx := range idxs {
		if idx >= len(as.Lhs) {
			continue
		}
		lhs, ok := unparen(as.Lhs[idx]).(*ast.Ident)
		if !ok {
			continue
		}
		if lhs.Name == "_" {
			out = append(out, u.finding("spanend", call.Pos(),
				"span "+quoteName(spanName(call, "result"))+" is discarded; its End can never run",
				"bind the span and defer its End"))
			continue
		}
		if as.Tok != token.DEFINE {
			continue // reassignment of an outer variable: managed elsewhere
		}
		obj := p.Info.Defs[lhs]
		if obj == nil {
			continue
		}
		if spanEscapes(p, rest, obj) {
			continue
		}
		ended, leak, terminated := walkSpanPath(p, rest, obj, false)
		exit := token.NoPos
		switch {
		case leak.IsValid():
			exit = leak
		case !ended && !terminated:
			// Fell off the end of the declaring block without End: for the
			// function body that is an implicit return; for a nested block
			// the span variable is dead from here on either way.
			exit = as.End()
			if len(rest) > 0 {
				exit = rest[len(rest)-1].End()
			}
		}
		if !exit.IsValid() {
			continue
		}
		fnd := u.finding("spanend", call.Pos(),
			"span "+quoteName(spanName(call, lhs.Name))+" is not ended on every path (unended exit at line "+
				itoa(u.Fset.Position(exit).Line)+")",
			"defer "+lhs.Name+".End() right after the Start (End is idempotent and nil-safe)")
		indent := strings.Repeat("\t", u.Fset.Position(as.Pos()).Column-1)
		fnd.Edits = []TextEdit{replaceRange(u, as.End(), as.End(),
			"\n"+indent+"defer "+lhs.Name+".End()")}
		out = append(out, fnd)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// spanEscapes reports whether the span object is used in a way the
// per-function walk cannot follow: passed to a call, returned, stored,
// address-taken, or captured by a closure that is not an immediately
// deferred End. Escaped spans are someone else's responsibility.
func spanEscapes(p *Package, stmts []ast.Stmt, obj types.Object) bool {
	escaped := false
	for _, s := range stmts {
		var stack []ast.Node
		ast.Inspect(s, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			id, ok := n.(*ast.Ident)
			if !ok || p.Info.Uses[id] != obj {
				return true
			}
			if !spanUseIsLocal(stack) {
				escaped = true
			}
			return !escaped
		})
		if escaped {
			return true
		}
	}
	return false
}

// spanUseIsLocal classifies one use of the span variable given the ancestor
// stack (outermost first, the ident itself last). Local (followable) uses:
// the receiver of an End call, a nil comparison, and either of those inside
// a deferred closure.
func spanUseIsLocal(stack []ast.Node) bool {
	id := stack[len(stack)-1]
	// Direct parent must be sp.End(...) receiver position or a nil
	// comparison.
	if len(stack) < 2 {
		return false
	}
	parent := stack[len(stack)-2]
	okUse := false
	switch pn := parent.(type) {
	case *ast.SelectorExpr:
		if pn.X == id && pn.Sel.Name == "End" {
			okUse = true
		}
	case *ast.BinaryExpr:
		if (pn.Op == token.EQL || pn.Op == token.NEQ) && (isNilIdent(pn.X) || isNilIdent(pn.Y)) {
			okUse = true
		}
	}
	if !okUse {
		return false
	}
	// Any enclosing closure must be an immediately deferred func literal;
	// capture by a go statement or a stored closure escapes.
	for i := len(stack) - 2; i >= 0; i-- {
		if _, ok := stack[i].(*ast.FuncLit); ok {
			// Expect FuncLit <- CallExpr <- DeferStmt.
			if i < 2 {
				return false
			}
			call, ok := stack[i-1].(*ast.CallExpr)
			if !ok || call.Fun != stack[i] {
				return false
			}
			if _, ok := stack[i-2].(*ast.DeferStmt); !ok {
				return false
			}
		}
	}
	return true
}

func isNilIdent(e ast.Expr) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// walkSpanPath walks a statement list tracking whether End dominates.
// Returns (ended at fall-through, first unended function exit, terminated:
// the list cannot fall through). ended means every path reaching the end of
// the list has called (or deferred) End.
func walkSpanPath(p *Package, stmts []ast.Stmt, obj types.Object, ended bool) (bool, token.Pos, bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if isSpanEndCall(p, s.X, obj) {
				ended = true
			} else if isPanicCall(s.X) {
				// panic unwinds without running non-deferred Ends; treat as
				// a terminator but do not flag — crash paths are out of
				// scope for span accounting.
				return ended, token.NoPos, true
			}
		case *ast.DeferStmt:
			if isSpanEndCall(p, s.Call, obj) || deferClosureEnds(p, s, obj) {
				ended = true
			}
		case *ast.ReturnStmt:
			if !ended {
				return ended, s.Pos(), true
			}
			return ended, token.NoPos, true
		case *ast.BranchStmt:
			// break/continue/goto leave the block; conservatively assume the
			// jump target handles the span (no finding).
			return ended, token.NoPos, true
		case *ast.BlockStmt:
			var leak token.Pos
			var term bool
			ended, leak, term = walkSpanPath(p, s.List, obj, ended)
			if leak.IsValid() {
				return ended, leak, false
			}
			if term {
				return ended, token.NoPos, true
			}
		case *ast.IfStmt:
			var leak token.Pos
			ended, leak = walkSpanIf(p, s, obj, ended)
			if leak.IsValid() {
				return ended, leak, false
			}
		case *ast.ForStmt:
			if leak := walkSpanLoop(p, s.Body, obj, ended); leak.IsValid() {
				return ended, leak, false
			}
		case *ast.RangeStmt:
			if leak := walkSpanLoop(p, s.Body, obj, ended); leak.IsValid() {
				return ended, leak, false
			}
		case *ast.SwitchStmt:
			if leak := walkSpanClauses(p, s.Body, obj, ended); leak.IsValid() {
				return ended, leak, false
			}
		case *ast.TypeSwitchStmt:
			if leak := walkSpanClauses(p, s.Body, obj, ended); leak.IsValid() {
				return ended, leak, false
			}
		case *ast.SelectStmt:
			if leak := walkSpanClauses(p, s.Body, obj, ended); leak.IsValid() {
				return ended, leak, false
			}
		case *ast.LabeledStmt:
			var leak token.Pos
			var term bool
			ended, leak, term = walkSpanPath(p, []ast.Stmt{s.Stmt}, obj, ended)
			if leak.IsValid() {
				return ended, leak, false
			}
			if term {
				return ended, token.NoPos, true
			}
		}
	}
	return ended, token.NoPos, false
}

// walkSpanIf merges End-domination over an if/else. Nil guards are special:
// End is nil-receiver-safe, so on the `sp == nil` arm the span counts as
// ended.
func walkSpanIf(p *Package, s *ast.IfStmt, obj types.Object, ended bool) (bool, token.Pos) {
	thenEntry, elseEntry := ended, ended
	switch nilGuard(p, s.Cond, obj) {
	case token.EQL: // if sp == nil { ... } — nil inside then
		thenEntry = true
	case token.NEQ: // if sp != nil { ... } — nil on the else path
		elseEntry = true
	}
	thenEnd, thenLeak, thenTerm := walkSpanPath(p, s.Body.List, obj, thenEntry)
	if thenLeak.IsValid() {
		return ended, thenLeak
	}
	elseEnd, elseTerm := elseEntry, false
	switch els := s.Else.(type) {
	case *ast.BlockStmt:
		var leak token.Pos
		elseEnd, leak, elseTerm = walkSpanPath(p, els.List, obj, elseEntry)
		if leak.IsValid() {
			return ended, leak
		}
	case *ast.IfStmt:
		var leak token.Pos
		elseEnd, leak = walkSpanIf(p, els, obj, elseEntry)
		if leak.IsValid() {
			return ended, leak
		}
	case nil:
		// No else: the fall-through path keeps elseEntry.
	}
	// Merge: a terminated branch imposes no constraint on the code after
	// the if.
	switch {
	case thenTerm && elseTerm:
		// Both branches exit; statements after the if are unreachable, but
		// keep walking with the pre-if state (harmlessly conservative).
		return ended, token.NoPos
	case thenTerm:
		return elseEnd, token.NoPos
	case elseTerm:
		return thenEnd, token.NoPos
	default:
		return thenEnd && elseEnd, token.NoPos
	}
}

// walkSpanLoop scans a loop body only for unended exits (returns); End
// inside a possibly-zero-trip loop never upgrades the fall-through state.
func walkSpanLoop(p *Package, body *ast.BlockStmt, obj types.Object, ended bool) token.Pos {
	_, leak, _ := walkSpanPath(p, body.List, obj, ended)
	return leak
}

// walkSpanClauses scans switch/select clause bodies for unended exits; like
// loops, clause-local Ends do not upgrade the fall-through state (a clause
// may not run).
func walkSpanClauses(p *Package, body *ast.BlockStmt, obj types.Object, ended bool) token.Pos {
	for _, c := range body.List {
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		if _, leak, _ := walkSpanPath(p, stmts, obj, ended); leak.IsValid() {
			return leak
		}
	}
	return token.NoPos
}

// nilGuard classifies cond as `obj == nil` (token.EQL), `obj != nil`
// (token.NEQ), or neither (token.ILLEGAL).
func nilGuard(p *Package, cond ast.Expr, obj types.Object) token.Token {
	be, ok := unparen(cond).(*ast.BinaryExpr)
	if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
		return token.ILLEGAL
	}
	x, y := unparen(be.X), unparen(be.Y)
	var other ast.Expr
	switch {
	case isNilIdent(x):
		other = y
	case isNilIdent(y):
		other = x
	default:
		return token.ILLEGAL
	}
	id, ok := other.(*ast.Ident)
	if !ok || p.Info.Uses[id] != obj {
		return token.ILLEGAL
	}
	return be.Op
}

// isSpanEndCall reports whether e is `sp.End()` for the given span object.
func isSpanEndCall(p *Package, e ast.Expr, obj types.Object) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := unparen(sel.X).(*ast.Ident)
	return ok && p.Info.Uses[id] == obj
}

// deferClosureEnds reports whether a defer statement defers a function
// literal whose body calls sp.End() for the given object.
func deferClosureEnds(p *Package, d *ast.DeferStmt, obj types.Object) bool {
	lit, ok := unparen(d.Call.Fun).(*ast.FuncLit)
	if !ok {
		return false
	}
	found := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok && isSpanEndCall(p, e, obj) {
			found = true
		}
		return !found
	})
	return found
}

// isPanicCall reports whether e is a call to the panic builtin.
func isPanicCall(e ast.Expr) bool {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
