package lintcheck

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"go/types"
	"sort"
)

// runMetricschema cross-checks the metrics surface of every package that
// declares a promSchema table (the convention from internal/service: a
// package-level `var promSchema = []struct{...}{...}` whose rows map expvar
// counter names onto Prometheus families):
//
//   - orphan metrics: a string constant in a const group referenced by the
//     schema that appears in no schema row — the counter is published at
//     /debug/vars but never exported to Prometheus;
//   - phantom metrics: a schema row whose source name is a raw literal
//     backed by no counter constant — the row exports a counter that
//     nothing increments;
//   - duplicate Prometheus family names, across the schema rows and every
//     direct obs.PromCounter/PromGauge/PromHistogram/PromLabeledCounter
//     call in the package (the exposition format forbids repeating a
//     family);
//
// and, in every package, that NewHistogram bucket tables are strictly
// ascending (misordered buckets silently corrupt the cumulative counts; the
// fix reorders the arguments) and that gated NewCounter family names are
// unique unit-wide (a duplicate panics at registration time).
func runMetricschema(u *Unit) []Finding {
	var out []Finding
	counters := make(map[string]token.Pos) // NewCounter name -> first site
	for _, p := range u.Pkgs {
		if p.Types == nil {
			continue
		}
		out = append(out, checkPromSchema(u, p)...)
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(p, call)
				if fn == nil {
					return true
				}
				switch fn.Name() {
				case "NewHistogram":
					out = append(out, checkBuckets(u, p, call)...)
				case "NewCounter":
					if len(call.Args) == 0 {
						return true
					}
					name, ok := stringConst(p, call.Args[0])
					if !ok {
						return true
					}
					if first, dup := counters[name]; dup {
						out = append(out, u.finding("metricschema", call.Pos(),
							fmt.Sprintf("gated counter %q is already registered (line %d); duplicate registration panics",
								name, u.Fset.Position(first).Line), ""))
					} else {
						counters[name] = call.Pos()
					}
				}
				return true
			})
		}
	}
	return out
}

// checkPromSchema validates one package's promSchema table, if present.
func checkPromSchema(u *Unit, p *Package) []Finding {
	schema := findPromSchema(p)
	if schema == nil {
		return nil
	}
	var out []Finding
	srcs := make(map[string]bool) // counter names covered by the schema
	families := make(map[string]token.Pos)
	srcConsts := make(map[*ast.Ident]bool) // idents used in src position

	for _, elt := range schema.Elts {
		row, ok := unparen(elt).(*ast.CompositeLit)
		if !ok || len(row.Elts) < 2 {
			continue
		}
		srcExpr, nameExpr := unparen(row.Elts[0]), unparen(row.Elts[1])
		if src, ok := stringConst(p, srcExpr); ok {
			srcs[src] = true
		}
		if id, ok := srcExpr.(*ast.Ident); ok {
			srcConsts[id] = true
		} else {
			src, _ := stringConst(p, srcExpr)
			out = append(out, u.finding("metricschema", row.Pos(),
				fmt.Sprintf("phantom metric: promSchema row %q is a raw literal backed by no counter constant", src),
				"declare the counter name as a const alongside the others and seed it"))
		}
		if name, ok := stringConst(p, nameExpr); ok {
			if first, dup := families[name]; dup {
				out = append(out, u.finding("metricschema", row.Pos(),
					fmt.Sprintf("Prometheus family %q emitted more than once (first at line %d)",
						name, u.Fset.Position(first).Line), ""))
			} else {
				families[name] = row.Pos()
			}
		}
	}

	// Orphans: every string const in a const group the schema draws from
	// must appear as a schema src.
	for _, group := range schemaConstGroups(p, srcConsts) {
		for _, spec := range group.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				val, ok := stringConstOf(p, name)
				if !ok {
					continue
				}
				if !srcs[val] {
					out = append(out, u.finding("metricschema", name.Pos(),
						fmt.Sprintf("orphan metric: counter const %s (%q) is missing from promSchema", name.Name, val),
						"add a promSchema row exporting it, or delete the counter"))
				}
			}
		}
	}

	// Direct Prom* emission calls share the family namespace with the
	// schema rows.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p, call)
			if fn == nil || len(call.Args) < 2 {
				return true
			}
			switch fn.Name() {
			case "PromCounter", "PromGauge", "PromHistogram", "PromLabeledCounter":
			default:
				return true
			}
			name, ok := stringConst(p, call.Args[1])
			if !ok {
				return true
			}
			if first, dup := families[name]; dup {
				out = append(out, u.finding("metricschema", call.Args[1].Pos(),
					fmt.Sprintf("Prometheus family %q emitted more than once (first at line %d)",
						name, u.Fset.Position(first).Line), ""))
			} else {
				families[name] = call.Args[1].Pos()
			}
			return true
		})
	}
	return out
}

// findPromSchema locates a package-level `var promSchema = ...composite...`.
func findPromSchema(p *Package) *ast.CompositeLit {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "promSchema" || i >= len(vs.Values) {
						continue
					}
					if cl, ok := unparen(vs.Values[i]).(*ast.CompositeLit); ok {
						return cl
					}
				}
			}
		}
	}
	return nil
}

// schemaConstGroups returns the const GenDecls containing at least one
// constant referenced from the schema's src column.
func schemaConstGroups(p *Package, srcConsts map[*ast.Ident]bool) []*ast.GenDecl {
	wanted := make(map[types.Object]bool)
	for id := range srcConsts {
		if obj := p.Info.Uses[id]; obj != nil {
			wanted[obj] = true
		}
	}
	var groups []*ast.GenDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			hit := false
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					if wanted[p.Info.Defs[name]] {
						hit = true
					}
				}
			}
			if hit {
				groups = append(groups, gd)
			}
		}
	}
	return groups
}

// checkBuckets verifies a NewHistogram call's bucket arguments are strictly
// ascending, with a reordering fix when they are merely shuffled.
func checkBuckets(u *Unit, p *Package, call *ast.CallExpr) []Finding {
	if len(call.Args) < 2 || call.Ellipsis.IsValid() {
		return nil
	}
	type bucket struct {
		expr ast.Expr
		val  float64
	}
	buckets := make([]bucket, 0, len(call.Args))
	for _, arg := range call.Args {
		tv, ok := p.Info.Types[arg]
		if !ok || tv.Value == nil {
			return nil // non-constant buckets: nothing to check statically
		}
		f, ok := constant.Float64Val(constant.ToFloat(tv.Value))
		if !ok {
			return nil
		}
		buckets = append(buckets, bucket{arg, f})
	}
	sortedOK := true
	dup := false
	for i := 1; i < len(buckets); i++ {
		if buckets[i].val < buckets[i-1].val {
			sortedOK = false
		}
		if buckets[i].val == buckets[i-1].val {
			dup = true
		}
	}
	// A second pass over the sorted order catches duplicates hidden by the
	// shuffle.
	vals := make([]float64, len(buckets))
	for i, b := range buckets {
		vals[i] = b.val
	}
	sort.Float64s(vals)
	for i := 1; i < len(vals); i++ {
		if vals[i] == vals[i-1] {
			dup = true
		}
	}
	if sortedOK && !dup {
		return nil
	}
	if dup {
		return []Finding{u.finding("metricschema", call.Args[0].Pos(),
			"histogram bucket table contains duplicate bounds; buckets must be strictly ascending", "")}
	}
	fnd := u.finding("metricschema", call.Args[0].Pos(),
		"histogram bucket table is not sorted ascending; cumulative bucket counts will be wrong",
		"reorder the bucket bounds ascending")
	sorted := make([]bucket, len(buckets))
	copy(sorted, buckets)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].val < sorted[j].val })
	var buf bytes.Buffer
	for i, b := range sorted {
		if i > 0 {
			buf.WriteString(", ")
		}
		//lint:ignore errcheck-lite printing a parsed expr to a buffer cannot fail
		printer.Fprint(&buf, u.Fset, b.expr)
	}
	fnd.Edits = []TextEdit{replaceRange(u, call.Args[0].Pos(), call.Args[len(call.Args)-1].End(), buf.String())}
	return []Finding{fnd}
}

// stringConst resolves an expression to its constant string value.
func stringConst(p *Package, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// stringConstOf resolves a declared identifier (a const name) to its string
// value.
func stringConstOf(p *Package, id *ast.Ident) (string, bool) {
	obj := p.Info.Defs[id]
	if obj == nil {
		return "", false
	}
	c, ok := obj.(interface{ Val() constant.Value })
	if !ok {
		return "", false
	}
	v := c.Val()
	if v == nil || v.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(v), true
}
