package lintcheck

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package of the unit.
// Test files (*_test.go) are excluded: the analyzers target production code,
// and several (errcheck-lite in particular) are defined to skip tests.
type Package struct {
	// Path is the package import path, e.g. "torusnet/internal/torus".
	Path string
	// Dir is the absolute directory the package was loaded from.
	Dir string
	// Files are the parsed non-test source files, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info carries the go/types fact tables for the files.
	Info *types.Info
	// TypeErrors collects type-checking problems that did not prevent
	// loading. Analyzers still run; the driver surfaces these separately.
	TypeErrors []error
}

// Unit is a whole loaded module (or fixture tree): every package reachable
// under Root, plus the shared FileSet and the suppression table.
type Unit struct {
	// Root is the absolute directory the unit was loaded from.
	Root string
	// ModulePath is the module path from go.mod, or "fixture" when the root
	// carries no go.mod (the layout used by the analyzer test corpus).
	ModulePath string
	Fset       *token.FileSet
	// Pkgs lists the loaded packages sorted by import path.
	Pkgs []*Package

	byPath   map[string]*Package
	dirFor   map[string]string // import path -> dir, from discovery
	loading  map[string]bool   // cycle guard
	fallback types.Importer    // source importer for non-module imports
	// suppress maps file name -> line -> analyzer names silenced there
	// (the //lint:ignore mechanism; see Suppressed).
	suppress map[string]map[int]map[string]bool

	// DirectiveFindings collects malformed //lint:ignore directives seen
	// during loading (missing analyzer list or missing reason). Such a
	// directive suppresses nothing; Run always reports these and they are
	// not themselves suppressible.
	DirectiveFindings []Finding
}

// Load discovers, parses, and type-checks every package under root. A go.mod
// in root names the module; without one the unit is treated as a fixture
// tree with module path "fixture" and one package per directory. Directories
// named testdata or vendor, hidden directories, and _-prefixed directories
// are skipped, as are *_test.go files.
func Load(root string) (*Unit, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	if fi, err := os.Stat(abs); err != nil || !fi.IsDir() {
		return nil, fmt.Errorf("lintcheck: %s is not a directory", root)
	}
	fset := token.NewFileSet()
	u := &Unit{
		Root:       abs,
		ModulePath: readModulePath(filepath.Join(abs, "go.mod")),
		Fset:       fset,
		byPath:     make(map[string]*Package),
		dirFor:     make(map[string]string),
		loading:    make(map[string]bool),
		fallback:   importer.ForCompiler(fset, "source", nil),
		suppress:   make(map[string]map[int]map[string]bool),
	}
	if err := u.discover(); err != nil {
		return nil, err
	}
	paths := make([]string, 0, len(u.dirFor))
	for p := range u.dirFor {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := u.ensure(p); err != nil {
			return nil, fmt.Errorf("lintcheck: loading %s: %w", p, err)
		}
	}
	sort.Slice(u.Pkgs, func(i, j int) bool { return u.Pkgs[i].Path < u.Pkgs[j].Path })
	return u, nil
}

// Package returns the loaded package with the given import path, or nil.
func (u *Unit) Package(path string) *Package { return u.byPath[path] }

// readModulePath extracts the module path from a go.mod file; it returns
// "fixture" when the file is absent or carries no module directive.
func readModulePath(gomod string) string {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "fixture"
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest)
		}
	}
	return "fixture"
}

// discover maps import paths to directories for every package under Root.
func (u *Unit) discover() error {
	return filepath.WalkDir(u.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != u.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		entries, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			rel, err := filepath.Rel(u.Root, path)
			if err != nil {
				return err
			}
			ip := u.ModulePath
			if rel != "." {
				ip = u.ModulePath + "/" + filepath.ToSlash(rel)
			}
			u.dirFor[ip] = path
			break
		}
		return nil
	})
}

// ensure parses and type-checks the package at the given import path,
// memoized; module-internal imports recurse through the same table.
func (u *Unit) ensure(path string) (*Package, error) {
	if pkg, ok := u.byPath[path]; ok {
		return pkg, nil
	}
	dir, ok := u.dirFor[path]
	if !ok {
		return nil, fmt.Errorf("no package found for import path %q under %s", path, u.Root)
	}
	if u.loading[path] {
		return nil, fmt.Errorf("import cycle through %q", path)
	}
	u.loading[path] = true
	defer delete(u.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(u.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		u.recordSuppressions(f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	pkg := &Package{Path: path, Dir: dir}
	conf := types.Config{
		Importer: (*unitImporter)(u),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	//lint:ignore errcheck-lite type errors are collected via conf.Error above
	tpkg, _ := conf.Check(path, u.Fset, files, info)
	pkg.Files = files
	pkg.Types = tpkg
	pkg.Info = info
	u.byPath[path] = pkg
	u.Pkgs = append(u.Pkgs, pkg)
	return pkg, nil
}

// unitImporter resolves module-internal imports through the unit's own
// loader and delegates everything else (the standard library) to the
// compiler source importer.
type unitImporter Unit

func (im *unitImporter) Import(path string) (*types.Package, error) {
	u := (*Unit)(im)
	if path == u.ModulePath || strings.HasPrefix(path, u.ModulePath+"/") {
		pkg, err := u.ensure(path)
		if err != nil {
			return nil, err
		}
		if pkg.Types == nil {
			return nil, fmt.Errorf("package %q failed to type-check", path)
		}
		return pkg.Types, nil
	}
	return u.fallback.Import(path)
}

// parseIgnoreDirective interprets one comment's text (without the leading
// //). It returns ok=false when the comment is not a lint:ignore directive
// at all. For a directive, names holds the comma-separated analyzer list
// (possibly the wildcard "all") and reason the remaining free text; a
// directive with an empty analyzer list, an empty list element (e.g.
// "modmath,,errcheck-lite" or a trailing comma), or a missing reason is
// malformed: err is non-nil, names is what could be salvaged, and the
// directive must not suppress anything.
func parseIgnoreDirective(text string) (names []string, reason string, err error, ok bool) {
	rest, found := strings.CutPrefix(strings.TrimSpace(text), "lint:ignore")
	if !found {
		return nil, "", nil, false
	}
	// Require a word boundary so e.g. "lint:ignoreX" is not a directive.
	if rest != "" && !(rest[0] == ' ' || rest[0] == '\t') {
		return nil, "", nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, "", fmt.Errorf("lint:ignore directive names no analyzer"), true
	}
	for _, name := range strings.Split(fields[0], ",") {
		if name == "" {
			err = fmt.Errorf("lint:ignore directive has an empty analyzer name in %q", fields[0])
			continue
		}
		names = append(names, name)
	}
	reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
	if err == nil && reason == "" {
		err = fmt.Errorf("lint:ignore %s is missing a reason", fields[0])
	}
	return names, reason, err, true
}

// recordSuppressions scans a file's comments for //lint:ignore directives.
// A directive names one or more comma-separated analyzers (or "all"),
// requires a reason, and silences findings on its own line and the line
// directly below, so it can sit inline or above the code:
//
//	x := a % k //lint:ignore modmath reason
//	//lint:ignore errcheck-lite,syncmisuse best-effort output
//	fmt.Fprintln(w, msg)
//
// A malformed directive (no analyzers, or no reason) suppresses nothing and
// is recorded as a lint-ignore finding instead.
func (u *Unit) recordSuppressions(f *ast.File) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			names, _, err, ok := parseIgnoreDirective(text)
			if !ok {
				continue
			}
			if err != nil {
				fnd := u.finding("lint-ignore", c.Pos(), err.Error(),
					"write //lint:ignore <analyzer>[,<analyzer>] <reason>; the reason is mandatory")
				u.DirectiveFindings = append(u.DirectiveFindings, fnd)
				continue
			}
			pos := u.Fset.Position(c.Pos())
			m := u.suppress[pos.Filename]
			if m == nil {
				m = make(map[int]map[string]bool)
				u.suppress[pos.Filename] = m
			}
			for _, line := range []int{pos.Line, pos.Line + 1} {
				if m[line] == nil {
					m[line] = make(map[string]bool)
				}
				for _, name := range names {
					m[line][name] = true
				}
			}
		}
	}
}

// Suppressed reports whether a finding by the named analyzer at the given
// position was silenced with a //lint:ignore directive.
func (u *Unit) Suppressed(analyzer string, pos token.Position) bool {
	m := u.suppress[pos.Filename]
	if m == nil {
		return false
	}
	names := m[pos.Line]
	return names != nil && (names[analyzer] || names["all"])
}
