package lintcheck

import (
	"go/ast"
	"go/token"
	"go/types"
)

// runRetrymisuse flags retry loops that cannot be cancelled. The serving
// path retries against torusd with context-aware backoff (see
// service.ResilienceConfig); a loop that sleeps with bare time.Sleep or
// blocks on <-time.After without a cancellation escape keeps goroutines
// (and their connections) alive long after the caller has given up.
//
// Two hazard classes:
//
//  1. time.Sleep anywhere inside a for/range body: the sleep ignores every
//     context. Retry delays must come from a select over a timer and a
//     cancellation channel (the pattern in service.realClock.Sleep).
//  2. <-time.After inside a for/range body with no cancellation case: a
//     bare receive, or a select whose cases include the After receive but
//     no ctx.Done() (or other struct{}-channel) escape. Besides being
//     uncancellable, each iteration leaks the timer until it fires.
//
// A select that also receives from a Done()-style call or any
// struct{}-typed channel counts as cancellable and is not flagged.
// Function literals are skipped — they run on their own goroutine's
// timeline and are visited in their own right.
func runRetrymisuse(u *Unit, p *Package) []Finding {
	const name = "retrymisuse"
	var out []Finding
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ForStmt:
				out = append(out, checkRetryLoop(u, p, n.Body, name)...)
			case *ast.RangeStmt:
				out = append(out, checkRetryLoop(u, p, n.Body, name)...)
			}
			return true
		})
	}
	return out
}

// checkRetryLoop scans one loop body. Nested loops and func literals are
// not descended into: the outer Inspect in runRetrymisuse visits nested
// loops on its own, and a literal's body executes outside this loop.
func checkRetryLoop(u *Unit, p *Package, body *ast.BlockStmt, name string) []Finding {
	var out []Finding
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.FuncLit:
			return false
		case *ast.SelectStmt:
			cancellable, afterPos := selectRetrySignals(p, n)
			if !cancellable && afterPos.IsValid() {
				out = append(out, u.finding(name, afterPos,
					"select retries on <-time.After with no cancellation case",
					"add a ctx.Done() case so the retry loop can be cancelled"))
			}
			// The comm clauses are judged as a unit above; still scan the
			// case bodies for sleeps and further receives.
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok {
					for _, st := range cc.Body {
						ast.Inspect(st, walk)
					}
				}
			}
			return false
		case *ast.CallExpr:
			if isTimePkgCall(p, n, "Sleep") {
				out = append(out, u.finding(name, n.Pos(),
					"retry loop sleeps with bare time.Sleep and cannot be cancelled",
					"select on a timer and ctx.Done() instead"))
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if call, ok := unparen(n.X).(*ast.CallExpr); ok && isTimePkgCall(p, call, "After") {
					out = append(out, u.finding(name, n.Pos(),
						"retry loop blocks on <-time.After with no cancellation escape",
						"wrap the receive in a select with a ctx.Done() case"))
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)
	return out
}

// selectRetrySignals classifies one select's comm clauses: cancellable
// reports a receive from a Done()-style call or a struct{}-typed channel,
// afterPos is the position of a <-time.After receive (NoPos if none).
func selectRetrySignals(p *Package, sel *ast.SelectStmt) (cancellable bool, afterPos token.Pos) {
	for _, cl := range sel.Body.List {
		cc, ok := cl.(*ast.CommClause)
		if ok && cc.Comm != nil {
			for _, recv := range commReceives(cc.Comm) {
				if call, isCall := unparen(recv.X).(*ast.CallExpr); isCall && isTimePkgCall(p, call, "After") {
					afterPos = recv.Pos()
					continue
				}
				if isCancellationChan(p, recv.X) {
					cancellable = true
				}
			}
		}
	}
	return cancellable, afterPos
}

// commReceives extracts the receive expressions of one select comm
// statement (`<-ch`, `v := <-ch`, `v, ok = <-ch`).
func commReceives(comm ast.Stmt) []*ast.UnaryExpr {
	var out []*ast.UnaryExpr
	collect := func(e ast.Expr) {
		if ue, ok := unparen(e).(*ast.UnaryExpr); ok && ue.Op == token.ARROW {
			out = append(out, ue)
		}
	}
	switch s := comm.(type) {
	case *ast.ExprStmt:
		collect(s.X)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			collect(rhs)
		}
	}
	return out
}

// isCancellationChan reports whether the receive operand looks like a
// cancellation signal: a call to a Done()-style method (context.Context,
// or anything shaped like it) or a channel of struct{} (the conventional
// stop/quit channel element type; timer and data channels never are).
func isCancellationChan(p *Package, e ast.Expr) bool {
	e = unparen(e)
	if call, ok := e.(*ast.CallExpr); ok {
		if sel, ok := unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
			return true
		}
	}
	t := p.Info.TypeOf(e)
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// isTimePkgCall reports whether call invokes the named function from the
// standard time package (resolved through the type checker, so import
// renames are handled).
func isTimePkgCall(p *Package, call *ast.CallExpr, fn string) bool {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	f, ok := p.Info.Uses[sel.Sel].(*types.Func)
	return ok && f.Pkg() != nil && f.Pkg().Path() == "time"
}
