package lintcheck

import (
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// runFacade cross-checks the public facade: every exported symbol of every
// internal/* package must either be referenced from the module's root
// package (torusnet.go re-exports types, functions, and variables by
// selector) or appear in the facade allowlist. The allowlist codifies
// deliberate non-exports — engine plumbing, experiment internals — so the
// facade can only drift with an explicit, reviewed edit.
//
// Allowlist format (facade_allowlist.txt next to this file, or at the unit
// root for fixture trees): one entry per line, # comments. An entry is
// either a full package path ("torusnet/internal/graph", excusing the whole
// package) or path.Symbol ("torusnet/internal/lee.BallSize").
func runFacade(u *Unit) []Finding {
	root := u.Package(u.ModulePath)
	if root == nil {
		return nil // no facade package in this unit (plain fixture tree)
	}
	allow, allowFile := loadAllowlist(u)
	if rel, err := filepath.Rel(u.Root, allowFile); err == nil {
		allowFile = filepath.ToSlash(rel)
	}

	// Collect every internal symbol the facade references: selector
	// expressions whose base resolves to an imported internal package.
	referenced := make(map[string]bool)
	for _, f := range root.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := root.Info.Uses[id].(*types.PkgName); ok {
				referenced[pn.Imported().Path()+"."+sel.Sel.Name] = true
			}
			return true
		})
	}

	prefix := u.ModulePath + "/internal/"
	var out []Finding
	for _, p := range u.Pkgs {
		if !strings.HasPrefix(p.Path, prefix) || p.Types == nil {
			continue
		}
		if allow[p.Path] {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			key := p.Path + "." + name
			if referenced[key] || allow[key] {
				continue
			}
			out = append(out, u.finding("facade-complete", obj.Pos(),
				key+" is exported but neither re-exported by the facade nor allowlisted",
				"re-export it in torusnet.go or add it to "+allowFile))
		}
	}
	return out
}

// loadAllowlist reads the facade allowlist, preferring the in-tree
// internal/lintcheck location and falling back to the unit root.
func loadAllowlist(u *Unit) (map[string]bool, string) {
	allow := make(map[string]bool)
	candidates := []string{
		filepath.Join(u.Root, "internal", "lintcheck", "facade_allowlist.txt"),
		filepath.Join(u.Root, "facade_allowlist.txt"),
	}
	for _, path := range candidates {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			allow[line] = true
		}
		return allow, path
	}
	return allow, candidates[0]
}
