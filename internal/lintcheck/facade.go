package lintcheck

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"
)

// runFacade cross-checks the public facade: every exported symbol of every
// internal/* package must either be referenced from the module's root
// package (torusnet.go re-exports types, functions, and variables by
// selector) or appear in the facade allowlist. The allowlist codifies
// deliberate non-exports — engine plumbing, experiment internals — so the
// facade can only drift with an explicit, reviewed edit.
//
// The allowlist itself is kept honest: an entry that no longer matches any
// loaded package or exported symbol is a stale finding (with a fix that
// deletes the line), and entries must stay in sorted order so diffs are
// reviewable and duplicates are impossible to miss.
//
// Allowlist format (facade_allowlist.txt next to this file, or at the unit
// root for fixture trees): one entry per line, # starts a comment (full
// line or trailing). An entry is either a full package path
// ("torusnet/internal/graph", excusing the whole package) or path.Symbol
// ("torusnet/internal/lee.BallSize"). Entries sort lexicographically.
func runFacade(u *Unit) []Finding {
	root := u.Package(u.ModulePath)
	if root == nil {
		return nil // no facade package in this unit (plain fixture tree)
	}
	entries, allowFile := loadAllowlist(u)
	allow := make(map[string]bool, len(entries))
	for _, e := range entries {
		allow[e.text] = true
	}
	relAllowFile := allowFile
	if rel, err := filepath.Rel(u.Root, allowFile); err == nil {
		relAllowFile = filepath.ToSlash(rel)
	}

	// Collect every internal symbol the facade references: selector
	// expressions whose base resolves to an imported internal package.
	referenced := make(map[string]bool)
	for _, f := range root.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := unparen(sel.X).(*ast.Ident)
			if !ok {
				return true
			}
			if pn, ok := root.Info.Uses[id].(*types.PkgName); ok {
				referenced[pn.Imported().Path()+"."+sel.Sel.Name] = true
			}
			return true
		})
	}

	prefix := u.ModulePath + "/internal/"
	var out []Finding
	for _, p := range u.Pkgs {
		if !strings.HasPrefix(p.Path, prefix) || p.Types == nil {
			continue
		}
		if allow[p.Path] {
			continue
		}
		scope := p.Types.Scope()
		for _, name := range scope.Names() {
			obj := scope.Lookup(name)
			if !obj.Exported() {
				continue
			}
			key := p.Path + "." + name
			if referenced[key] || allow[key] {
				continue
			}
			out = append(out, u.finding("facade-complete", obj.Pos(),
				key+" is exported but neither re-exported by the facade nor allowlisted",
				"re-export it in torusnet.go or add it to "+relAllowFile))
		}
	}

	// Staleness and ordering of the allowlist itself.
	prev := ""
	for _, e := range entries {
		if prev != "" && e.text < prev {
			out = append(out, Finding{
				Analyzer:   "facade-complete",
				File:       allowFile,
				Line:       e.line,
				Col:        1,
				Message:    fmt.Sprintf("allowlist entry %q is not in sorted order (follows %q)", e.text, prev),
				Suggestion: "keep " + relAllowFile + " sorted so diffs stay reviewable",
			})
		}
		prev = e.text
		if stale, why := allowEntryStale(u, e.text); stale {
			out = append(out, Finding{
				Analyzer:   "facade-complete",
				File:       allowFile,
				Line:       e.line,
				Col:        1,
				Message:    fmt.Sprintf("stale allowlist entry %q: %s", e.text, why),
				Suggestion: "delete the line (or fix the symbol name)",
				Edits:      []TextEdit{{File: allowFile, Start: e.start, End: e.end, Text: ""}},
			})
		}
	}
	return out
}

// allowEntryStale reports whether an allowlist entry still matches a loaded
// package or exported symbol, with a reason when it does not.
func allowEntryStale(u *Unit, entry string) (bool, string) {
	if u.Package(entry) != nil {
		return false, ""
	}
	dot := strings.LastIndexByte(entry, '.')
	if dot < 0 || dot == len(entry)-1 {
		return true, "no such package in the module"
	}
	pkgPath, sym := entry[:dot], entry[dot+1:]
	p := u.Package(pkgPath)
	if p == nil || p.Types == nil {
		return true, "no such package in the module"
	}
	obj := p.Types.Scope().Lookup(sym)
	if obj == nil || !obj.Exported() {
		return true, "package " + pkgPath + " exports no symbol " + sym
	}
	return false, ""
}

// allowEntry is one non-comment line of the facade allowlist, with its line
// number and the byte range of the whole line (newline included) for
// delete-line fixes.
type allowEntry struct {
	text       string
	line       int
	start, end int
}

// loadAllowlist reads the facade allowlist, preferring the in-tree
// internal/lintcheck location and falling back to the unit root. Entries
// are returned in file order.
func loadAllowlist(u *Unit) ([]allowEntry, string) {
	candidates := []string{
		filepath.Join(u.Root, "internal", "lintcheck", "facade_allowlist.txt"),
		filepath.Join(u.Root, "facade_allowlist.txt"),
	}
	for _, path := range candidates {
		data, err := os.ReadFile(path)
		if err != nil {
			continue
		}
		var entries []allowEntry
		offset := 0
		for i, raw := range strings.Split(string(data), "\n") {
			lineLen := len(raw) + 1 // the final line has no \n; end is clamped below
			line := raw
			if j := strings.IndexByte(line, '#'); j >= 0 {
				line = line[:j]
			}
			line = strings.TrimSpace(line)
			if line != "" {
				end := offset + lineLen
				if end > len(data) {
					end = len(data)
				}
				entries = append(entries, allowEntry{text: line, line: i + 1, start: offset, end: end})
			}
			offset += lineLen
		}
		return entries, path
	}
	return nil, candidates[0]
}
