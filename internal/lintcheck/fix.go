package lintcheck

import (
	"fmt"
	"os"
	"sort"
)

// FixResult summarizes one ApplyFixes pass.
type FixResult struct {
	// FilesChanged lists the files rewritten, sorted.
	FilesChanged []string
	// Applied counts the findings whose edits were written out.
	Applied int
	// Skipped counts findings whose edits were dropped because they
	// overlapped an earlier-applied edit in the same file; rerunning the
	// suite (and -fix) picks them up once offsets have settled.
	Skipped int
}

// ApplyFixes writes the mechanical edits attached to the findings back to
// disk. Edits are grouped per file and applied from the highest offset down
// so earlier offsets stay valid; a finding whose edits overlap an already
// accepted edit is skipped atomically (all of its edits or none). Findings
// without edits are ignored. The caller reruns the analyzers afterwards to
// see what remains.
func ApplyFixes(findings []Finding) (FixResult, error) {
	type span struct {
		start, end int
		text       string
	}
	// Collect per-file edit groups, one group per finding, so a finding's
	// edits are accepted or rejected together.
	type group struct {
		file  string
		spans []span
	}
	byFile := make(map[string][]group)
	var res FixResult
	for _, f := range findings {
		if len(f.Edits) == 0 {
			continue
		}
		perFile := make(map[string][]span)
		for _, e := range f.Edits {
			if e.Start < 0 || e.End < e.Start {
				return res, fmt.Errorf("lintcheck: invalid edit range [%d,%d) in %s", e.Start, e.End, e.File)
			}
			perFile[e.File] = append(perFile[e.File], span{e.Start, e.End, e.Text})
		}
		for file, spans := range perFile {
			byFile[file] = append(byFile[file], group{file, spans})
		}
		res.Applied++
	}
	if len(byFile) == 0 {
		return res, nil
	}

	files := make([]string, 0, len(byFile))
	for f := range byFile {
		files = append(files, f)
	}
	sort.Strings(files)

	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return res, err
		}
		// Accept groups greedily in offset order, rejecting any group that
		// overlaps an accepted span. Insertions at the same offset from two
		// different findings also conflict (ordering would be arbitrary).
		var accepted []span
		overlaps := func(s span) bool {
			for _, a := range accepted {
				if s.start < a.end && a.start < s.end {
					return true
				}
				if s.start == s.end && a.start == a.end && s.start == a.start {
					return true
				}
			}
			return false
		}
		for _, g := range byFile[file] {
			ok := true
			for _, s := range g.spans {
				if s.end > len(data) || overlaps(s) {
					ok = false
					break
				}
			}
			if !ok {
				res.Skipped++
				res.Applied--
				continue
			}
			accepted = append(accepted, g.spans...)
		}
		if len(accepted) == 0 {
			continue
		}
		sort.Slice(accepted, func(i, j int) bool { return accepted[i].start > accepted[j].start })
		for _, s := range accepted {
			data = append(data[:s.start], append([]byte(s.text), data[s.end:]...)...)
		}
		if err := os.WriteFile(file, data, 0o644); err != nil {
			return res, err
		}
		res.FilesChanged = append(res.FilesChanged, file)
	}
	sort.Strings(res.FilesChanged)
	return res, nil
}
