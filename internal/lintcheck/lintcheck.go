// Package lintcheck is a repository-specific static-analysis suite built
// only on the standard library's go/parser, go/ast, and go/types. It loads
// every package of the module and runs analyzers that enforce invariants the
// paper reproduction depends on: normalized modular arithmetic on wrap
// paths, overflow-guarded volume computations, no silently discarded errors,
// sound sync primitive usage, package doc comments everywhere (with
// documented facade re-exports), and a facade that re-exports (or explicitly
// allowlists) every exported internal symbol. On top of the syntactic
// checks, the dataflow suite polices the serving stack's lifecycle
// disciplines: contexts must flow (ctxflow), spans must end on every path
// (spanend), metrics must match the promSchema table (metricschema),
// failpoint sites must resolve (failpointsite), and goroutines must have an
// owner (goroutinelifecycle).
//
// Findings can be silenced per line with a //lint:ignore <analyzer> <reason>
// directive — the reason is mandatory, and a directive without one is
// itself a finding and suppresses nothing. The facade analyzer additionally
// honors the allowlist file facade_allowlist.txt, and ctxflow honors
// ctxflow_allowlist.txt (see those files for format).
//
// # Writing a new analyzer
//
// An analyzer is one run<Name> function returning []Finding plus an entry
// in All(). Set the entry's Package field for per-package checks (it runs
// once per loaded package, with the shared Unit for position/suppression
// helpers) or Unitwide for cross-package checks (facade-complete,
// metricschema, and failpointsite are the models — they see every package,
// and failpointsite shows how to fold in raw non-Go files like scripts and
// docs). Build findings with u.finding(name, pos, message, suggestion);
// when the repair is purely mechanical, attach TextEdit byte-range edits so
// `toruslint -fix` can apply it — edits must be idempotent: applying them
// has to make the finding (and so the edit) disappear on the next run.
// Every analyzer needs a seeded-bad and a known-good fixture package under
// testdata/src/<name>/{bad,good}, where each bad line carries a
// `// want "message fragment"` comment, and a golden file regenerated with
// `go test ./internal/lintcheck -run TestGolden -update`. The harness
// fails on unexpected, missing, or mismatched findings, and
// TestNewAnalyzersHonorSuppression pins that the analyzer respects
// //lint:ignore.
package lintcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Finding is one analyzer hit.
type Finding struct {
	Analyzer   string `json:"analyzer"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
	// Edits, when non-empty, is a mechanical fix for the finding that
	// `toruslint -fix` can apply. Applying the edits must make the finding
	// disappear on the next run (fixes are idempotent).
	Edits []TextEdit `json:"edits,omitempty"`
}

// TextEdit replaces the byte range [Start, End) of File with Text. Offsets
// are 0-based byte offsets into the file as loaded (token.Position.Offset).
// An insertion has Start == End.
type TextEdit struct {
	File  string `json:"file"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	Text  string `json:"text"`
}

// String renders the finding in the conventional file:line:col form.
func (f Finding) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
	if f.Suggestion != "" {
		s += " (" + f.Suggestion + ")"
	}
	return s
}

// Analyzer is one registered check. Exactly one of Package or Unitwide is
// set: Package runs once per loaded package, Unitwide once per unit (used by
// cross-package checks like facade-complete).
type Analyzer struct {
	Name     string
	Doc      string
	Package  func(u *Unit, p *Package) []Finding
	Unitwide func(u *Unit) []Finding
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		{
			Name:    "modmath",
			Doc:     "flags raw % on possibly-negative values and manual mod normalization; wrap coordinates with torus.Mod",
			Package: runModmath,
		},
		{
			Name:    "overflowvol",
			Doc:     "flags unguarded k^d-style volume computations (loop products, 1<<n, int(math.Pow)); use torus.Volume or a MaxNodes guard",
			Package: runOverflowvol,
		},
		{
			Name:    "errcheck-lite",
			Doc:     "flags discarded error returns (bare calls and _ assignments) outside test files",
			Package: runErrcheck,
		},
		{
			Name:    "syncmisuse",
			Doc:     "flags sync.Mutex/WaitGroup values copied by value and goroutines without a visible join in the same function",
			Package: runSyncmisuse,
		},
		{
			Name:    "retrymisuse",
			Doc:     "flags uncancellable retry loops: bare time.Sleep in a for body, and <-time.After receives with no ctx.Done() escape",
			Package: runRetrymisuse,
		},
		{
			Name:    "doccomment",
			Doc:     "flags packages without a package doc comment and undocumented exported declarations in the module-root facade package",
			Package: runDoccomment,
		},
		{
			Name:     "facade-complete",
			Doc:      "cross-checks that every exported internal symbol is re-exported by the facade package or allowlisted; stale or unsorted allowlist entries are findings",
			Unitwide: runFacade,
		},
		{
			Name:    "ctxflow",
			Doc:     "flags re-rooted contexts (context.Background/TODO outside main, tests, and the allowlist) and calls that drop an in-scope ctx when the package exports a Ctx-variant of the callee",
			Package: runCtxflow,
		},
		{
			Name:    "spanend",
			Doc:     "flags spans (obs.Start / Tracer.Root results) that are discarded or not ended on every return path; fix with defer sp.End()",
			Package: runSpanend,
		},
		{
			Name:     "metricschema",
			Doc:      "cross-checks expvar counter names against the promSchema table (no orphan or phantom metrics), Prometheus family-name uniqueness, and ascending histogram bucket tables",
			Unitwide: runMetricschema,
		},
		{
			Name:     "failpointsite",
			Doc:      "checks failpoint.New sites for uniqueness and pkg.stage naming, and resolves every site referenced by chaos tests, smoke scripts, and docs against the registry",
			Unitwide: runFailpointsite,
		},
		{
			Name:    "goroutinelifecycle",
			Doc:     "flags naked go statements in library packages: goroutines must be tied to a sync.WaitGroup (Add before launch or Done inside) or carry a //lint:ignore with rationale",
			Package: runGoroutineLifecycle,
		},
	}
}

// Select resolves comma-separated -enable/-disable lists against the full
// suite. Empty enable means "all".
func Select(enable, disable string) ([]*Analyzer, error) {
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	picked := make(map[string]bool)
	if enable == "" {
		for name := range byName {
			picked[name] = true
		}
	} else {
		for _, name := range strings.Split(enable, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				return nil, fmt.Errorf("lintcheck: unknown analyzer %q", name)
			}
			picked[name] = true
		}
	}
	if disable != "" {
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if byName[name] == nil {
				return nil, fmt.Errorf("lintcheck: unknown analyzer %q", name)
			}
			delete(picked, name)
		}
	}
	var out []*Analyzer
	for _, a := range All() {
		if picked[a.Name] {
			out = append(out, a)
		}
	}
	return out, nil
}

// Run executes the analyzers over the unit. A non-nil match restricts
// per-package analyzers to matching packages. Suppressed findings are
// dropped; the rest are sorted by position. Malformed //lint:ignore
// directives recorded at load time are always reported (as analyzer
// "lint-ignore") and cannot themselves be suppressed.
func Run(u *Unit, analyzers []*Analyzer, match func(*Package) bool) []Finding {
	var all []Finding
	for _, a := range analyzers {
		switch {
		case a.Unitwide != nil:
			all = append(all, a.Unitwide(u)...)
		case a.Package != nil:
			for _, p := range u.Pkgs {
				if match != nil && !match(p) {
					continue
				}
				all = append(all, a.Package(u, p)...)
			}
		}
	}
	kept := all[:0]
	for _, f := range all {
		if !u.Suppressed(f.Analyzer, token.Position{Filename: f.File, Line: f.Line}) {
			kept = append(kept, f)
		}
	}
	kept = append(kept, u.DirectiveFindings...)
	sort.Slice(kept, func(i, j int) bool {
		a, b := kept[i], kept[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return kept
}

// finding builds a Finding at the given position.
func (u *Unit) finding(analyzer string, pos token.Pos, message, suggestion string) Finding {
	p := u.Fset.Position(pos)
	return Finding{
		Analyzer:   analyzer,
		File:       p.Filename,
		Line:       p.Line,
		Col:        p.Column,
		Message:    message,
		Suggestion: suggestion,
	}
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// mentionsIdent reports whether the subtree contains an identifier with the
// given name.
func mentionsIdent(n ast.Node, name string) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if id, ok := x.(*ast.Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}
