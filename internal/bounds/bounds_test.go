package bounds

import (
	"math"
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

func build(t *testing.T, spec placement.Spec, tr *torus.Torus) *placement.Placement {
	t.Helper()
	p, err := spec.Build(tr)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name(), err)
	}
	return p
}

func TestBlaumValues(t *testing.T) {
	// Paper: for d = 2, E_max ≥ |P|/4; for d = 3, E_max ≥ |P|/6 (up to the
	// −1 in the numerator).
	if got := Blaum(17, 2); got != 4 {
		t.Errorf("Blaum(17,2) = %v, want 4", got)
	}
	if got := Blaum(13, 3); got != 2 {
		t.Errorf("Blaum(13,3) = %v, want 2", got)
	}
	if got := Blaum(1, 4); got != 0 {
		t.Errorf("Blaum(1,4) = %v, want 0", got)
	}
}

func TestSeparatorReducesToBlaum(t *testing.T) {
	// Lemma 1 with |S| = 1 and |∂S| = 4d reduces to Eq. 1's (|P|−1)/2d.
	for _, d := range []int{1, 2, 3, 4, 5} {
		for _, sizeP := range []int{2, 9, 64} {
			lemma := Separator(1, sizeP, 4*d)
			blaum := Blaum(sizeP, d)
			if math.Abs(lemma-blaum) > 1e-12 {
				t.Errorf("d=%d |P|=%d: Lemma1=%v, Blaum=%v", d, sizeP, lemma, blaum)
			}
		}
	}
}

func TestSingletonBoundEqualsBlaum(t *testing.T) {
	for _, c := range []struct{ k, d int }{{4, 2}, {5, 3}, {3, 4}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		got := SingletonBound(p)
		want := Blaum(p.Size(), c.d)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("T^%d_%d: SingletonBound=%v, Blaum=%v", c.d, c.k, got, want)
		}
	}
}

func TestBoundaryEdgesSingleton(t *testing.T) {
	// A single node has 2d out-edges and 2d in-edges: |∂S| = 4d.
	for _, c := range []struct{ k, d int }{{3, 1}, {4, 2}, {5, 3}} {
		tr := torus.New(c.k, c.d)
		inS := make([]bool, tr.Nodes())
		inS[0] = true
		if got := BoundaryEdges(tr, inS); got != 4*c.d {
			t.Errorf("T^%d_%d: boundary of singleton = %d, want %d", c.d, c.k, got, 4*c.d)
		}
	}
}

func TestBoundaryEdgesSlab(t *testing.T) {
	// One subtorus layer: crossing edges to both neighbor layers,
	// 4·k^{d−1} directed edges (2·k^{d−1} per side).
	tr := torus.New(5, 3)
	inS := make([]bool, tr.Nodes())
	tr.ForEachSubtorusNode(torus.Subtorus{Dim: 0, Value: 2}, func(u torus.Node) { inS[u] = true })
	if got, want := BoundaryEdges(tr, inS), 4*25; got != want {
		t.Errorf("slab boundary = %d, want %d", got, want)
	}
}

func TestBisectionFormula(t *testing.T) {
	if got := Bisection(16, 64); got != 2*64.0/64 {
		t.Errorf("Bisection(16,64) = %v, want 2", got)
	}
	if !math.IsInf(Bisection(4, 0), 1) {
		t.Error("zero bisection width should give +Inf")
	}
}

func TestSeparatorInfinite(t *testing.T) {
	if !math.IsInf(Separator(2, 4, 0), 1) {
		t.Error("zero boundary should give +Inf")
	}
}

func TestImprovedBoundBeatsBlaumForLargeD(t *testing.T) {
	// §4: for a linear placement (c = 1) the improved bound k^{d−1}/8 must
	// dominate Blaum's k^{d−1}/2d once 2d > 8, i.e. d ≥ 5.
	k := 4
	for d := 5; d <= 8; d++ {
		sizeP := int(math.Pow(float64(k), float64(d-1)))
		if Improved(1, k, d) <= Blaum(sizeP, d) {
			t.Errorf("d=%d: improved %v not above Blaum %v", d, Improved(1, k, d), Blaum(sizeP, d))
		}
	}
	// And for small d Blaum can win, which is why §4 matters for large d.
	if Improved(1, 4, 2) >= Blaum(4, 2) {
		t.Skip("small-d relation depends on k; informational only")
	}
}

func TestCorollaryCeiling(t *testing.T) {
	if got := CorollaryBisectionCeiling(4, 3); got != 6*3*16 {
		t.Errorf("ceiling = %v, want 288", got)
	}
	if got := Theorem1Width(4, 3); got != 64 {
		t.Errorf("Theorem1Width = %v, want 64", got)
	}
}

func TestMaxPlacementSize(t *testing.T) {
	// Eq. 9 with c1 = 1: |P| ≤ 12·d·k^{d−1}.
	if got := MaxPlacementSize(1, 4, 2); got != 96 {
		t.Errorf("MaxPlacementSize = %v, want 96", got)
	}
	// A linear placement respects the ceiling by a wide margin.
	tr := torus.New(8, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	if float64(p.Size()) > MaxPlacementSize(1, 8, 3) {
		t.Error("linear placement exceeds the Eq. 9 ceiling")
	}
}

func TestSubsetBound(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	half := p.Nodes()[:p.Size()/2]
	b := SubsetBound(p, half)
	if b <= 0 {
		t.Errorf("subset bound %v should be positive", b)
	}
}

func TestSubsetBoundPanicsOnNonProcessor(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	var bad torus.Node = -1
	tr.ForEachNode(func(u torus.Node) {
		if bad < 0 && !p.Contains(u) {
			bad = u
		}
	})
	defer func() {
		if recover() == nil {
			t.Error("SubsetBound should panic for non-processor nodes")
		}
	}()
	SubsetBound(p, []torus.Node{bad})
}

func TestBestPrefixBoundAtLeastBlaum(t *testing.T) {
	for _, c := range []struct{ k, d int }{{4, 2}, {5, 2}, {4, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		if got, blaum := BestPrefixBound(p), Blaum(p.Size(), c.d); got < blaum {
			t.Errorf("T^%d_%d: BestPrefixBound %v below Blaum %v", c.d, c.k, got, blaum)
		}
	}
}

func TestImprovedBoundScalesWithC(t *testing.T) {
	// E_max ≥ c²k^{d−1}/8: quadratic in the density constant c.
	base := Improved(1, 6, 3)
	if got := Improved(2, 6, 3); math.Abs(got-4*base) > 1e-12 {
		t.Errorf("Improved(2)=%v, want 4×Improved(1)=%v", got, 4*base)
	}
	if got := Improved(3, 6, 3); math.Abs(got-9*base) > 1e-12 {
		t.Errorf("Improved(3)=%v, want 9×Improved(1)=%v", got, 9*base)
	}
}
