// Package bounds implements the paper's lower bounds on the maximum
// communication load and the derived limit on optimal placement size:
// the Blaum et al. bound (Eq. 1/6), the general separator bound of Lemma 1,
// its bisection specialization (Eq. 8), the Corollary 1 ceiling on bisection
// width with respect to a placement, the Eq. 9 placement-size bound, and the
// dimension-independent improved bound of §4.
package bounds

import (
	"math"

	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

// Blaum returns the lower bound of Eq. 1/6: E_max ≥ (|P|−1) / (2d).
func Blaum(sizeP, d int) float64 {
	return float64(sizeP-1) / float64(2*d)
}

// Separator returns the Lemma 1 lower bound for a processor subset S with
// boundary ∂S: E_max ≥ 2·|S|·(|P|−|S|) / |∂S|. The boundary size counts
// directed edges with exactly one endpoint in S (messages cross it in both
// directions, matching the 2·|S|·(|P|−|S|) message count).
func Separator(sizeS, sizeP, boundary int) float64 {
	if boundary == 0 {
		return math.Inf(1)
	}
	return 2 * float64(sizeS) * float64(sizeP-sizeS) / float64(boundary)
}

// Bisection returns the Eq. 8 specialization of Lemma 1 with |S| = |P|/2:
// E_max ≥ 2·(|P|/2)² / |∂_b P|.
func Bisection(sizeP, bisectionWidth int) float64 {
	half := float64(sizeP) / 2
	if bisectionWidth == 0 {
		return math.Inf(1)
	}
	return 2 * half * half / float64(bisectionWidth)
}

// CorollaryBisectionCeiling returns the Corollary 1 upper bound on the
// bisection width of T^d_k with respect to any placement: 6·d·k^{d−1}
// directed edges.
func CorollaryBisectionCeiling(k, d int) float64 {
	return 6 * float64(d) * math.Pow(float64(k), float64(d-1))
}

// Theorem1Width returns the bisection width 4·k^{d−1} (directed edges) that
// Theorem 1 guarantees for uniform placements via two antipodal dimension
// cuts.
func Theorem1Width(k, d int) float64 {
	return 4 * math.Pow(float64(k), float64(d-1))
}

// MaxPlacementSize returns the Eq. 9 ceiling on the size of a placement
// that keeps the load linear with constant c1 (E_max = c1·|P|):
// |P| ≤ 12·d·c1·k^{d−1}.
func MaxPlacementSize(c1 float64, k, d int) float64 {
	return 12 * float64(d) * c1 * math.Pow(float64(k), float64(d-1))
}

// Improved returns the §4 dimension-independent lower bound for a uniform
// placement of size c·k^{d−1}: E_max ≥ c²·k^{d−1} / 8.
func Improved(c float64, k, d int) float64 {
	return c * c * math.Pow(float64(k), float64(d-1)) / 8
}

// BoundaryEdges counts the directed torus edges with exactly one endpoint
// in the node set S (given as a membership mask over all torus nodes).
func BoundaryEdges(t *torus.Torus, inS []bool) int {
	count := 0
	t.ForEachEdge(func(e torus.Edge) {
		if inS[t.EdgeSource(e)] != inS[t.EdgeTarget(e)] {
			count++
		}
	})
	return count
}

// SingletonBound evaluates Lemma 1 with S = {one processor}: |∂S| = 4d, so
// the bound reduces to Blaum's (|P|−1)/(2d). Provided for the E1 experiment
// that verifies the reduction numerically.
func SingletonBound(p *placement.Placement) float64 {
	t := p.Torus()
	if p.Size() == 0 {
		return 0
	}
	inS := make([]bool, t.Nodes())
	inS[p.Nodes()[0]] = true
	return Separator(1, p.Size(), BoundaryEdges(t, inS))
}

// SubsetBound evaluates Lemma 1 for an arbitrary processor subset S,
// computing |∂S| on the torus. Nodes of S must carry processors of p.
func SubsetBound(p *placement.Placement, s []torus.Node) float64 {
	t := p.Torus()
	inS := make([]bool, t.Nodes())
	for _, u := range s {
		if !p.Contains(u) {
			panic("bounds: subset node is not a processor of the placement")
		}
		inS[u] = true
	}
	return Separator(len(s), p.Size(), BoundaryEdges(t, inS))
}

// BestPrefixBound scans Lemma 1 over the prefix subsets of the placement's
// processors along one dimension (the natural "slab" subsets) and returns
// the largest lower bound found. It is a cheap heuristic for a good S.
func BestPrefixBound(p *placement.Placement) float64 {
	t := p.Torus()
	best := Blaum(p.Size(), t.D())
	for dim := 0; dim < t.D(); dim++ {
		inS := make([]bool, t.Nodes())
		sizeS := 0
		for v := 0; v < t.K()-1; v++ {
			t.ForEachSubtorusNode(torus.Subtorus{Dim: dim, Value: v}, func(u torus.Node) {
				inS[u] = true
				if p.Contains(u) {
					sizeS++
				}
			})
			if sizeS == 0 || sizeS == p.Size() {
				continue
			}
			if b := Separator(sizeS, p.Size(), BoundaryEdges(t, inS)); b > best {
				best = b
			}
		}
	}
	return best
}
