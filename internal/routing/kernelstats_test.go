package routing

import (
	"testing"

	"torusnet/internal/obs"
	"torusnet/internal/torus"
)

// TestKernelCountersRecordPairs checks each Into kernel ticks its own
// counter exactly once per pair when the gate is on and not at all when
// off.
func TestKernelCountersRecordPairs(t *testing.T) {
	tr := torus.New(4, 2)
	loads := make([]float64, tr.Edges())
	sc := NewPairScratch(tr)
	kernels := []struct {
		alg InplaceAccumulator
		c   *obs.Counter
	}{
		{ODR{}, statPairsODR},
		{ODRMulti{}, statPairsODRMulti},
		{UDR{}, statPairsUDR},
		{UDRMulti{}, statPairsUDRMulti},
	}
	for _, k := range kernels {
		before := k.c.Value()
		k.alg.AccumulatePairInto(tr, 0, 5, loads, sc)
		if k.c.Value() != before {
			t.Errorf("%T: counter moved with the gate off", k.alg)
		}
	}
	obs.SetCountersEnabled(true)
	defer obs.SetCountersEnabled(false)
	for _, k := range kernels {
		before := k.c.Value()
		k.alg.AccumulatePairInto(tr, 0, 5, loads, sc)
		k.alg.AccumulatePairInto(tr, 1, 6, loads, sc)
		if got := k.c.Value() - before; got != 2 {
			t.Errorf("%T: counter advanced by %d for 2 pairs", k.alg, got)
		}
	}
}

// TestKernelCounterZeroAllocs pins the acceptance criterion's allocation
// half: the instrumented ODR kernel stays at 0 allocs/op with the gate off
// and on.
func TestKernelCounterZeroAllocs(t *testing.T) {
	tr := torus.New(8, 2)
	loads := make([]float64, tr.Edges())
	sc := NewPairScratch(tr)
	run := func() {
		ODR{}.AccumulatePairInto(tr, 0, 27, loads, sc)
	}
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("gate off: ODR kernel allocates %v/op, want 0", n)
	}
	obs.SetCountersEnabled(true)
	defer obs.SetCountersEnabled(false)
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("gate on: ODR kernel allocates %v/op, want 0", n)
	}
}

// BenchmarkODRKernelCounterOverhead quantifies the other half: run with
// -bench to compare the instrumented kernel against the raw gate cost. The
// disabled gate is one atomic load + branch (BenchmarkCounterGateOnly), a
// few ns against the kernel's own cost per pair.
func BenchmarkODRKernelCounterOverhead(b *testing.B) {
	tr := torus.New(8, 2)
	loads := make([]float64, tr.Edges())
	sc := NewPairScratch(tr)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ODR{}.AccumulatePairInto(tr, 0, 27, loads, sc)
	}
}

// BenchmarkCounterGateOnly isolates exactly what the instrumentation added
// to the kernel: one disabled Counter.Inc.
func BenchmarkCounterGateOnly(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		statPairsODR.Inc()
	}
}
