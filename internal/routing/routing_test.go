package routing

import (
	"math"
	"math/rand"
	"testing"

	"torusnet/internal/torus"
)

var allAlgorithms = []Algorithm{ODR{}, ODRMulti{}, UDR{}, UDRMulti{}, FAR{}}

// enumerate returns all paths of the algorithm for a pair.
func enumerate(a Algorithm, t *torus.Torus, p, q torus.Node) []Path {
	var out []Path
	a.ForEachPath(t, p, q, func(pp Path) bool {
		out = append(out, pp)
		return true
	})
	return out
}

// expectationByEnumeration computes per-edge crossing probabilities the slow
// way: every enumerated path carries weight 1/N.
func expectationByEnumeration(a Algorithm, t *torus.Torus, p, q torus.Node) map[torus.Edge]float64 {
	paths := enumerate(a, t, p, q)
	out := make(map[torus.Edge]float64)
	w := 1.0 / float64(len(paths))
	for _, pp := range paths {
		for _, e := range pp.Edges {
			out[e] += w
		}
	}
	return out
}

func expectationByAccumulate(a Algorithm, t *torus.Torus, p, q torus.Node) map[torus.Edge]float64 {
	out := make(map[torus.Edge]float64)
	a.AccumulatePair(t, p, q, func(e torus.Edge, w float64) { out[e] += w })
	return out
}

func mapsClose(t *testing.T, got, want map[torus.Edge]float64, label string) {
	t.Helper()
	for e, w := range want {
		if math.Abs(got[e]-w) > 1e-9 {
			t.Fatalf("%s: edge %d: got %v, want %v", label, e, got[e], w)
		}
	}
	for e, w := range got {
		if _, ok := want[e]; !ok && math.Abs(w) > 1e-9 {
			t.Fatalf("%s: edge %d has weight %v but is unused by enumeration", label, e, w)
		}
	}
}

func samplePairs(tr *torus.Torus, n int, seed int64) [][2]torus.Node {
	rng := rand.New(rand.NewSource(seed))
	out := make([][2]torus.Node, 0, n)
	for len(out) < n {
		p := torus.Node(rng.Intn(tr.Nodes()))
		q := torus.Node(rng.Intn(tr.Nodes()))
		if p != q {
			out = append(out, [2]torus.Node{p, q})
		}
	}
	return out
}

func TestAllPathsAreValidAndMinimal(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}, {5, 3}, {6, 2}} {
		tr := torus.New(c.k, c.d)
		for _, alg := range allAlgorithms {
			for _, pair := range samplePairs(tr, 25, int64(c.k*10+c.d)) {
				p, q := pair[0], pair[1]
				paths := enumerate(alg, tr, p, q)
				if len(paths) == 0 {
					t.Fatalf("%s on %s: no paths for %v->%v", alg.Name(), tr, tr.Coords(p), tr.Coords(q))
				}
				for _, pp := range paths {
					if err := pp.Validate(tr, q); err != nil {
						t.Fatalf("%s on %s: %v", alg.Name(), tr, err)
					}
				}
			}
		}
	}
}

func TestPathCountMatchesEnumeration(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {4, 3}, {5, 3}, {6, 2}} {
		tr := torus.New(c.k, c.d)
		for _, alg := range allAlgorithms {
			for _, pair := range samplePairs(tr, 20, 99) {
				p, q := pair[0], pair[1]
				want := float64(len(enumerate(alg, tr, p, q)))
				if got := alg.PathCount(tr, p, q); got != want {
					t.Fatalf("%s on %s %v->%v: PathCount=%v, enumeration=%v",
						alg.Name(), tr, tr.Coords(p), tr.Coords(q), got, want)
				}
			}
		}
	}
}

func TestPathsAreDistinct(t *testing.T) {
	tr := torus.New(5, 3)
	for _, alg := range allAlgorithms {
		for _, pair := range samplePairs(tr, 10, 7) {
			paths := enumerate(alg, tr, pair[0], pair[1])
			seen := make(map[string]bool)
			for _, pp := range paths {
				key := ""
				for _, e := range pp.Edges {
					key += string(rune(e)) // edges < 2·3·125 fit in runes
				}
				if seen[key] {
					t.Fatalf("%s: duplicate path for %v->%v", alg.Name(), tr.Coords(pair[0]), tr.Coords(pair[1]))
				}
				seen[key] = true
			}
		}
	}
}

func TestODRSinglePath(t *testing.T) {
	tr := torus.New(6, 3)
	for _, pair := range samplePairs(tr, 50, 3) {
		if got := (ODR{}).PathCount(tr, pair[0], pair[1]); got != 1 {
			t.Fatalf("ODR path count %v, want 1", got)
		}
	}
}

func TestODRBreaksTiesPlus(t *testing.T) {
	tr := torus.New(4, 1)
	// 0 -> 2 is a tie; the canonical path must go 0 -> 1 -> 2.
	paths := enumerate(ODR{}, tr, 0, 2)
	if len(paths) != 1 {
		t.Fatalf("got %d paths", len(paths))
	}
	nodes := paths[0].Nodes(tr)
	if len(nodes) != 3 || nodes[1] != 1 {
		t.Fatalf("tie not broken toward +: nodes %v", nodes)
	}
}

func TestODRCorrectsDimensionsInOrder(t *testing.T) {
	tr := torus.New(5, 3)
	p := tr.NodeAt([]int{0, 0, 0})
	q := tr.NodeAt([]int{2, 1, 2})
	paths := enumerate(ODR{}, tr, p, q)
	nodes := paths[0].Nodes(tr)
	// Dimension 0 first: second node must be (1,0,0) (cyclic +).
	if nodes[1] != tr.NodeAt([]int{1, 0, 0}) {
		t.Fatalf("ODR did not correct dimension 0 first: %v", tr.Coords(nodes[1]))
	}
	// Last intermediate must have dims 0,1 corrected.
	mid := nodes[3]
	if tr.Coord(mid, 0) != 2 || tr.Coord(mid, 1) != 1 {
		t.Fatalf("ODR order violated at %v", tr.Coords(mid))
	}
}

func TestODRMultiCountsTies(t *testing.T) {
	tr := torus.New(4, 2)
	p := tr.NodeAt([]int{0, 0})
	cases := []struct {
		q    []int
		want float64
	}{
		{[]int{1, 0}, 1},
		{[]int{2, 0}, 2},
		{[]int{2, 2}, 4},
		{[]int{2, 1}, 2},
		{[]int{1, 1}, 1},
	}
	for _, c := range cases {
		if got := (ODRMulti{}).PathCount(tr, p, tr.NodeAt(c.q)); got != c.want {
			t.Errorf("ODRMulti count to %v = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestUDRPathCountIsFactorial(t *testing.T) {
	tr := torus.New(5, 4)
	p := tr.NodeAt([]int{0, 0, 0, 0})
	cases := []struct {
		q    []int
		want float64
	}{
		{[]int{1, 0, 0, 0}, 1},
		{[]int{1, 1, 0, 0}, 2},
		{[]int{1, 2, 1, 0}, 6},
		{[]int{1, 2, 1, 2}, 24},
	}
	for _, c := range cases {
		if got := (UDR{}).PathCount(tr, p, tr.NodeAt(c.q)); got != c.want {
			t.Errorf("UDR count to %v = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestAccumulateMatchesEnumeration(t *testing.T) {
	for _, c := range []struct{ k, d int }{{3, 2}, {4, 2}, {5, 2}, {4, 3}, {5, 3}} {
		tr := torus.New(c.k, c.d)
		for _, alg := range allAlgorithms {
			for _, pair := range samplePairs(tr, 15, int64(c.k+c.d)) {
				p, q := pair[0], pair[1]
				want := expectationByEnumeration(alg, tr, p, q)
				got := expectationByAccumulate(alg, tr, p, q)
				mapsClose(t, got, want, alg.Name())
			}
		}
	}
}

func TestAccumulateSumsToLeeDistance(t *testing.T) {
	// Any unit-mass routing over shortest paths must place total expected
	// edge usage equal to the path length, i.e. the Lee distance.
	for _, c := range []struct{ k, d int }{{4, 2}, {5, 3}, {6, 2}, {8, 2}, {4, 4}} {
		tr := torus.New(c.k, c.d)
		for _, alg := range allAlgorithms {
			for _, pair := range samplePairs(tr, 30, 5) {
				p, q := pair[0], pair[1]
				sum := 0.0
				alg.AccumulatePair(tr, p, q, func(_ torus.Edge, w float64) { sum += w })
				if want := float64(tr.LeeDistance(p, q)); math.Abs(sum-want) > 1e-9 {
					t.Fatalf("%s on %s %v->%v: total mass %v, want %v",
						alg.Name(), tr, tr.Coords(p), tr.Coords(q), sum, want)
				}
			}
		}
	}
}

func TestSamplePathIsValidAndFromSet(t *testing.T) {
	tr := torus.New(6, 3)
	rng := rand.New(rand.NewSource(11))
	for _, alg := range allAlgorithms {
		for _, pair := range samplePairs(tr, 20, 13) {
			p, q := pair[0], pair[1]
			pp := alg.SamplePath(tr, p, q, rng)
			if err := pp.Validate(tr, q); err != nil {
				t.Fatalf("%s: sampled path invalid: %v", alg.Name(), err)
			}
		}
	}
}

func TestSampleDistributionUniform(t *testing.T) {
	// For a pair with a small path set, the empirical distribution of
	// SamplePath must converge to uniform.
	tr := torus.New(5, 2)
	p := tr.NodeAt([]int{0, 0})
	q := tr.NodeAt([]int{2, 1}) // UDR: 2 paths; FAR: 3 paths
	rng := rand.New(rand.NewSource(17))
	for _, alg := range []Algorithm{UDR{}, FAR{}} {
		paths := enumerate(alg, tr, p, q)
		counts := make(map[string]int)
		const trials = 30000
		for i := 0; i < trials; i++ {
			pp := alg.SamplePath(tr, p, q, rng)
			key := ""
			for _, e := range pp.Edges {
				key += string(rune(e))
			}
			counts[key]++
		}
		if len(counts) != len(paths) {
			t.Fatalf("%s: sampled %d distinct paths, enumerated %d", alg.Name(), len(counts), len(paths))
		}
		want := float64(trials) / float64(len(paths))
		for key, n := range counts {
			if math.Abs(float64(n)-want) > 5*math.Sqrt(want) {
				t.Errorf("%s: path %q sampled %d times, want ~%v", alg.Name(), key, n, want)
			}
		}
	}
}

func TestFARCountsAllShortestPaths(t *testing.T) {
	// Cross-check FAR enumeration against BFS-based shortest path counting.
	tr := torus.New(4, 2)
	for _, pair := range samplePairs(tr, 20, 23) {
		p, q := pair[0], pair[1]
		want := countShortestPathsBFS(tr, p, q)
		got := len(enumerate(FAR{}, tr, p, q))
		if got != want {
			t.Fatalf("FAR %v->%v: enumerated %d paths, BFS counts %d",
				tr.Coords(p), tr.Coords(q), got, want)
		}
	}
}

// countShortestPathsBFS counts shortest paths using plain BFS layering,
// treating parallel edges on k=2 rings correctly (multiplicity via edges).
func countShortestPathsBFS(tr *torus.Torus, src, dst torus.Node) int {
	dist := make([]int, tr.Nodes())
	ways := make([]int, tr.Nodes())
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	ways[src] = 1
	queue := []torus.Node{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for j := 0; j < tr.D(); j++ {
			for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
				v := tr.Step(u, j, dir)
				if dist[v] < 0 {
					dist[v] = dist[u] + 1
					queue = append(queue, v)
				}
				if dist[v] == dist[u]+1 {
					ways[v] += ways[u]
				}
			}
		}
	}
	return ways[dst]
}

func TestUDRAccumulateWeightsAreMultiplesOfFactorial(t *testing.T) {
	tr := torus.New(5, 3)
	p := tr.NodeAt([]int{0, 0, 0})
	q := tr.NodeAt([]int{1, 2, 2})
	// s = 3: every weight must be a multiple of 1/3! = 1/6.
	UDR{}.AccumulatePair(tr, p, q, func(e torus.Edge, w float64) {
		scaled := w * 6
		if math.Abs(scaled-math.Round(scaled)) > 1e-9 {
			t.Fatalf("weight %v is not a multiple of 1/6", w)
		}
	})
}

func TestEmptyPairContributesNothing(t *testing.T) {
	tr := torus.New(5, 2)
	for _, alg := range allAlgorithms {
		alg.AccumulatePair(tr, 3, 3, func(e torus.Edge, w float64) {
			t.Fatalf("%s: self-pair touched edge %d", alg.Name(), e)
		})
	}
}

func TestPathEndAndNodes(t *testing.T) {
	tr := torus.New(5, 2)
	p := tr.NodeAt([]int{0, 0})
	q := tr.NodeAt([]int{2, 3})
	pp := odrPath(tr, p, q)
	if pp.End(tr) != q {
		t.Fatalf("End = %v, want %v", tr.Coords(pp.End(tr)), tr.Coords(q))
	}
	nodes := pp.Nodes(tr)
	if nodes[0] != p || nodes[len(nodes)-1] != q {
		t.Fatal("Nodes endpoints wrong")
	}
	if pp.Len() != tr.LeeDistance(p, q) {
		t.Fatalf("Len = %d, want %d", pp.Len(), tr.LeeDistance(p, q))
	}
	empty := Path{Start: p}
	if empty.End(tr) != p {
		t.Fatal("empty path End should be Start")
	}
}

func TestValidateCatchesBrokenPaths(t *testing.T) {
	tr := torus.New(5, 2)
	p := tr.NodeAt([]int{0, 0})
	q := tr.NodeAt([]int{2, 0})
	good := odrPath(tr, p, q)
	if err := good.Validate(tr, q); err != nil {
		t.Fatalf("good path rejected: %v", err)
	}
	// Wrong endpoint.
	if err := good.Validate(tr, p); err == nil {
		t.Error("wrong endpoint accepted")
	}
	// Disconnected walk.
	bad := Path{Start: p, Edges: []torus.Edge{good.Edges[1], good.Edges[0]}}
	if err := bad.Validate(tr, q); err == nil {
		t.Error("disconnected walk accepted")
	}
	// Non-minimal path: go around the long way.
	long := Path{Start: p}
	cur := p
	for i := 0; i < 3; i++ {
		e := tr.EdgeFrom(cur, 0, torus.Minus)
		long.Edges = append(long.Edges, e)
		cur = tr.EdgeTarget(e)
	}
	if err := long.Validate(tr, q); err == nil {
		t.Error("non-minimal path accepted")
	}
}

func TestAlgorithmNames(t *testing.T) {
	want := map[string]Algorithm{"ODR": ODR{}, "ODR-multi": ODRMulti{}, "UDR": UDR{}, "FAR": FAR{}}
	for name, alg := range want {
		if alg.Name() != name {
			t.Errorf("Name() = %q, want %q", alg.Name(), name)
		}
	}
}

func TestMultinomial(t *testing.T) {
	cases := []struct {
		parts []int
		want  float64
	}{
		{[]int{0}, 1},
		{[]int{3}, 1},
		{[]int{1, 1}, 2},
		{[]int{2, 1}, 3},
		{[]int{2, 2}, 6},
		{[]int{3, 2, 1}, 60},
	}
	for _, c := range cases {
		if got := multinomial(c.parts); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("multinomial(%v) = %v, want %v", c.parts, got, c.want)
		}
	}
}

func TestFactorial(t *testing.T) {
	want := []float64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := factorial(n); got != w {
			t.Errorf("factorial(%d) = %v, want %v", n, got, w)
		}
	}
}
