package routing

import (
	"math/rand"

	"torusnet/internal/torus"
)

// UDR is Unordered Dimensional Routing (§7): each dimension in which source
// and destination differ is corrected completely, in the direction of the
// shortest cyclic distance (ties broken toward (+), as in restricted ODR),
// but the s differing dimensions may be corrected in any of the s! orders.
// Every order yields a distinct shortest path, giving |C^UDR_{p→q}| = s!
// and with it the fault tolerance the paper motivates.
type UDR struct{}

// Name implements Algorithm.
func (UDR) Name() string { return "UDR" }

// differing collects the dimensions where p and q differ along with their
// canonical correction deltas.
func differing(t *torus.Torus, p, q torus.Node) (dims []int, deltas []torus.Delta) {
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(p, j), t.Coord(q, j), t.K())
		if del.Dist > 0 {
			dims = append(dims, j)
			deltas = append(deltas, del)
		}
	}
	return dims, deltas
}

// PathCount implements Algorithm: s! where s is the number of differing
// dimensions.
func (UDR) PathCount(t *torus.Torus, p, q torus.Node) float64 {
	dims, _ := differing(t, p, q)
	return factorial(len(dims))
}

// ForEachPath implements Algorithm, enumerating correction orders in
// lexicographic order of the dimension sequence.
func (UDR) ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool) {
	dims, deltas := differing(t, p, q)
	s := len(dims)
	order := make([]int, 0, s)
	used := make([]bool, s)
	total := t.LeeDistance(p, q)
	var rec func() bool
	rec = func() bool {
		if len(order) == s {
			edges := make([]torus.Edge, 0, total)
			cur := p
			for _, idx := range order {
				cur = walkDim(t, cur, dims[idx], deltas[idx].Dir, deltas[idx].Dist, &edges)
			}
			return visit(Path{Start: p, Edges: edges})
		}
		for i := 0; i < s; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			order = append(order, i)
			cont := rec()
			order = order[:len(order)-1]
			used[i] = false
			if !cont {
				return false
			}
		}
		return true
	}
	rec()
}

// AccumulatePair implements Algorithm without enumerating the s! orders.
// A UDR path corrects dimension j after exactly the dimensions in some set
// S ⊆ D\{j}; the number of orders with that property is |S|!·(s−1−|S|)!,
// so each edge of the dimension-j segment "S already corrected" carries the
// message with probability |S|!·(s−1−|S|)!/s!. Segments for distinct (j, S)
// are edge-disjoint, which makes the accumulation a direct sum over the
// 2^{s−1}·s segments.
func (UDR) AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64)) {
	dims, deltas := differing(t, p, q)
	s := len(dims)
	if s == 0 {
		return
	}
	sFact := factorial(s)
	coords := make([]int, t.D())
	for jIdx := 0; jIdx < s; jIdx++ {
		others := make([]int, 0, s-1)
		for i := 0; i < s; i++ {
			if i != jIdx {
				others = append(others, i)
			}
		}
		for mask := 0; mask < 1<<len(others); mask++ {
			// Start node: p with the dimensions in S corrected to q.
			t.CoordsInto(p, coords)
			size := 0
			for bit, idx := range others {
				if mask&(1<<bit) != 0 {
					coords[dims[idx]] = t.Coord(q, dims[idx])
					size++
				}
			}
			w := factorial(size) * factorial(s-1-size) / sFact
			start := t.NodeAt(coords)
			visitDim(t, start, dims[jIdx], deltas[jIdx].Dir, deltas[jIdx].Dist,
				func(e torus.Edge) { add(e, w) })
		}
	}
}

// SamplePath implements Algorithm: a uniformly random correction order.
func (UDR) SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path {
	dims, deltas := differing(t, p, q)
	edges := make([]torus.Edge, 0, t.LeeDistance(p, q))
	cur := p
	for _, idx := range rng.Perm(len(dims)) {
		cur = walkDim(t, cur, dims[idx], deltas[idx].Dir, deltas[idx].Dist, &edges)
	}
	return Path{Start: p, Edges: edges}
}
