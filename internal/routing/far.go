package routing

import (
	"math/rand"

	"torusnet/internal/torus"
)

// FAR is fully adaptive minimal routing: C^FAR_{p→q} is the set of *all*
// shortest paths between p and q, i.e. every interleaving of unit steps
// (not just full-dimension corrections) and, for tied dimensions (k even,
// coordinates k/2 apart), both directions. The paper's load model
// (Definition 4) rewards large path sets; FAR is the extreme point and
// serves as the generalization baseline the conclusion alludes to.
//
// |C^FAR_{p→q}| = 2^T · (Σ dist_j)! / Π (dist_j!) where T is the number of
// tied dimensions.
type FAR struct{}

// Name implements Algorithm.
func (FAR) Name() string { return "FAR" }

// PathCount implements Algorithm.
func (FAR) PathCount(t *torus.Torus, p, q torus.Node) float64 {
	return t.MinimalPathCount(p, q)
}

// farProblem captures the per-pair correction geometry.
type farProblem struct {
	dims   []int         // differing dimensions
	dists  []int         // cyclic distances per differing dimension
	deltas []torus.Delta // canonical deltas
	tied   []int         // indices (into dims) of tied dimensions
	total  int           // Lee distance
}

func newFARProblem(t *torus.Torus, p, q torus.Node) farProblem {
	var pr farProblem
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(p, j), t.Coord(q, j), t.K())
		if del.Dist == 0 {
			continue
		}
		if del.Tie {
			pr.tied = append(pr.tied, len(pr.dims))
		}
		pr.dims = append(pr.dims, j)
		pr.dists = append(pr.dists, del.Dist)
		pr.deltas = append(pr.deltas, del)
		pr.total += del.Dist
	}
	return pr
}

// variantDirs returns the direction of each differing dimension for the
// given tie-assignment mask (bit set = Minus).
func (pr farProblem) variantDirs(mask int) []torus.Direction {
	dirs := make([]torus.Direction, len(pr.dims))
	for i, del := range pr.deltas {
		dirs[i] = del.Dir
	}
	for bit, idx := range pr.tied {
		if mask&(1<<bit) != 0 {
			dirs[idx] = torus.Minus
		}
	}
	return dirs
}

// multinomial returns (Σ parts)! / Π parts! as float64.
func multinomial(parts []int) float64 {
	total := 0
	out := 1.0
	for _, p := range parts {
		for i := 1; i <= p; i++ {
			total++
			out = out * float64(total) / float64(i)
		}
	}
	return out
}

// ForEachPath implements Algorithm. Paths are enumerated variant by variant
// (tie masks in increasing order), and within a variant by always extending
// with the lowest eligible dimension first.
func (FAR) ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool) {
	pr := newFARProblem(t, p, q)
	s := len(pr.dims)
	progress := make([]int, s)
	for mask := 0; mask < 1<<len(pr.tied); mask++ {
		dirs := pr.variantDirs(mask)
		edges := make([]torus.Edge, 0, pr.total)
		var rec func(cur torus.Node, done int) bool
		rec = func(cur torus.Node, done int) bool {
			if done == pr.total {
				return visit(Path{Start: p, Edges: append([]torus.Edge(nil), edges...)})
			}
			for i := 0; i < s; i++ {
				if progress[i] == pr.dists[i] {
					continue
				}
				e := t.EdgeFrom(cur, pr.dims[i], dirs[i])
				edges = append(edges, e)
				progress[i]++
				cont := rec(t.EdgeTarget(e), done+1)
				progress[i]--
				edges = edges[:len(edges)-1]
				if !cont {
					return false
				}
			}
			return true
		}
		if !rec(p, 0) {
			return
		}
	}
}

// AccumulatePair implements Algorithm using dynamic programming over the
// progress lattice. For a fixed tie variant, the probability that a uniform
// random shortest path crosses the edge that advances dimension i at
// progress state x is
//
//	ways_to(x) · ways_from(x + e_i) / totalPaths ,
//
// where ways_to and ways_from are multinomial coefficients. Tie variants
// are equiprobable (they contain equally many paths) and their edges along
// opposite ring arcs are disjoint, so their contributions add.
func (FAR) AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64)) {
	pr := newFARProblem(t, p, q)
	s := len(pr.dims)
	if s == 0 {
		return
	}
	totalPaths := multinomial(pr.dists)
	variantProb := 1.0 / float64(int(1)<<len(pr.tied))

	// Enumerate lattice states once; reuse across variants. The product is
	// at most ∏(dist+1) ≤ k^d = t.Nodes() ≤ torus.MaxNodes, so overflow is
	// impossible for a validated torus; assert the invariant anyway.
	states := 1
	for _, dist := range pr.dists {
		states *= dist + 1
		if states > torus.MaxNodes {
			panic("routing: FAR state lattice exceeds torus.MaxNodes")
		}
	}
	progress := make([]int, s)
	coords := make([]int, t.D())
	pCoords := t.Coords(p)

	for mask := 0; mask < 1<<len(pr.tied); mask++ {
		dirs := pr.variantDirs(mask)
		for st := 0; st < states; st++ {
			// Decode mixed-radix state.
			rem := st
			done := 0
			for i := 0; i < s; i++ {
				progress[i] = rem % (pr.dists[i] + 1)
				rem /= pr.dists[i] + 1
				done += progress[i]
			}
			waysTo := multinomial(progress)
			// Node at this state.
			copy(coords, pCoords)
			for i := 0; i < s; i++ {
				j := pr.dims[i]
				if dirs[i] == torus.Plus {
					coords[j] = torus.Mod(pCoords[j]+progress[i], t.K())
				} else {
					coords[j] = torus.Mod(pCoords[j]-progress[i], t.K())
				}
			}
			cur := t.NodeAt(coords)
			for i := 0; i < s; i++ {
				if progress[i] == pr.dists[i] {
					continue
				}
				// ways_from(x + e_i): remaining distances after the step.
				progress[i]++
				remDist := make([]int, s)
				for l := 0; l < s; l++ {
					remDist[l] = pr.dists[l] - progress[l]
				}
				waysFrom := multinomial(remDist)
				progress[i]--
				prob := variantProb * waysTo * waysFrom / totalPaths
				add(t.EdgeFrom(cur, pr.dims[i], dirs[i]), prob)
			}
		}
	}
}

// SamplePath implements Algorithm: pick a tie variant uniformly, then grow
// the path by choosing the next dimension with probability proportional to
// its remaining distance (which makes every interleaving equally likely).
func (FAR) SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path {
	pr := newFARProblem(t, p, q)
	s := len(pr.dims)
	//lint:ignore overflowvol len(pr.tied) ≤ d ≤ 28 for a validated torus, far below the int bit width.
	dirs := pr.variantDirs(rng.Intn(1 << len(pr.tied)))
	remaining := append([]int(nil), pr.dists...)
	left := pr.total
	edges := make([]torus.Edge, 0, pr.total)
	cur := p
	for left > 0 {
		r := rng.Intn(left)
		i := 0
		for ; i < s; i++ {
			if r < remaining[i] {
				break
			}
			r -= remaining[i]
		}
		e := t.EdgeFrom(cur, pr.dims[i], dirs[i])
		edges = append(edges, e)
		cur = t.EdgeTarget(e)
		remaining[i]--
		left--
	}
	return Path{Start: p, Edges: edges}
}
