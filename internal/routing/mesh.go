package routing

import (
	"math/rand"

	"torusnet/internal/torus"
)

// MeshODR is dimension-ordered routing on the underlying k-ary array A^d_k
// (the appendix's object): corrections never use wrap links, moving
// monotonically from p_j toward q_j in the sign direction of q_j − p_j.
// Paths are minimal in the *array* metric Σ|q_j − p_j| but can be up to
// twice the torus Lee distance; the load they induce shows exactly what
// the wrap links buy (experiment E27).
type MeshODR struct{}

// Name implements Algorithm.
func (MeshODR) Name() string { return "ODR-mesh" }

// ArrayDistance returns the array (non-wrap) distance between two nodes:
// Σ_j |q_j − p_j| with coordinates in 0..k−1.
func ArrayDistance(t *torus.Torus, p, q torus.Node) int {
	sum := 0
	for j := 0; j < t.D(); j++ {
		diff := t.Coord(q, j) - t.Coord(p, j)
		if diff < 0 {
			diff = -diff
		}
		sum += diff
	}
	return sum
}

func meshDelta(t *torus.Torus, p, q torus.Node, j int) (dist int, dir torus.Direction) {
	diff := t.Coord(q, j) - t.Coord(p, j)
	if diff >= 0 {
		return diff, torus.Plus
	}
	return -diff, torus.Minus
}

// PathCount implements Algorithm: one path per pair.
func (MeshODR) PathCount(t *torus.Torus, p, q torus.Node) float64 { return 1 }

func meshPath(t *torus.Torus, p, q torus.Node) Path {
	edges := make([]torus.Edge, 0, ArrayDistance(t, p, q))
	cur := p
	for j := 0; j < t.D(); j++ {
		dist, dir := meshDelta(t, cur, q, j)
		cur = walkDim(t, cur, j, dir, dist, &edges)
	}
	return Path{Start: p, Edges: edges}
}

// ForEachPath implements Algorithm.
func (MeshODR) ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool) {
	visit(meshPath(t, p, q))
}

// AccumulatePair implements Algorithm.
func (MeshODR) AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64)) {
	cur := p
	for j := 0; j < t.D(); j++ {
		dist, dir := meshDelta(t, cur, q, j)
		cur = visitDim(t, cur, j, dir, dist, func(e torus.Edge) { add(e, 1) })
	}
}

// SamplePath implements Algorithm.
func (MeshODR) SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path {
	return meshPath(t, p, q)
}

// UsesWrapLink reports whether any edge of the path crosses a wrap
// boundary (coordinate k−1 → 0 or 0 → k−1).
func UsesWrapLink(t *torus.Torus, path Path) bool {
	for _, e := range path.Edges {
		src := t.Coord(t.EdgeSource(e), t.EdgeDim(e))
		if t.EdgeDir(e) == torus.Plus && src == t.K()-1 {
			return true
		}
		if t.EdgeDir(e) == torus.Minus && src == 0 {
			return true
		}
	}
	return false
}
