package routing

import (
	"math"
	"math/rand"
	"testing"

	"torusnet/internal/torus"
)

func TestUDRMultiPathCount(t *testing.T) {
	tr := torus.New(4, 3)
	p := tr.NodeAt([]int{0, 0, 0})
	cases := []struct {
		q    []int
		want float64 // s! · 2^T
	}{
		{[]int{1, 0, 0}, 1},
		{[]int{2, 0, 0}, 2},  // 1 dim, tied
		{[]int{1, 1, 0}, 2},  // 2 dims, no ties
		{[]int{2, 1, 0}, 4},  // 2 dims, 1 tie
		{[]int{2, 2, 0}, 8},  // 2 dims, 2 ties
		{[]int{2, 2, 2}, 48}, // 3 dims, 3 ties: 6·8
		{[]int{1, 1, 1}, 6},
	}
	for _, c := range cases {
		if got := (UDRMulti{}).PathCount(tr, p, tr.NodeAt(c.q)); got != c.want {
			t.Errorf("count to %v = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestUDRMultiEnumerationMatchesCountAndValidates(t *testing.T) {
	for _, c := range []struct{ k, d int }{{4, 2}, {4, 3}, {6, 2}, {5, 3}} {
		tr := torus.New(c.k, c.d)
		for _, pair := range samplePairs(tr, 12, int64(c.k*c.d)) {
			p, q := pair[0], pair[1]
			paths := enumerate(UDRMulti{}, tr, p, q)
			if want := (UDRMulti{}).PathCount(tr, p, q); float64(len(paths)) != want {
				t.Fatalf("T^%d_%d %v->%v: %d paths enumerated, count says %v",
					c.d, c.k, tr.Coords(p), tr.Coords(q), len(paths), want)
			}
			for _, pp := range paths {
				if err := pp.Validate(tr, q); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func TestUDRMultiAccumulateMatchesEnumeration(t *testing.T) {
	for _, c := range []struct{ k, d int }{{4, 2}, {4, 3}, {6, 2}} {
		tr := torus.New(c.k, c.d)
		for _, pair := range samplePairs(tr, 12, 77) {
			p, q := pair[0], pair[1]
			want := expectationByEnumeration(UDRMulti{}, tr, p, q)
			got := expectationByAccumulate(UDRMulti{}, tr, p, q)
			mapsClose(t, got, want, "UDR-multi")
		}
	}
}

func TestUDRMultiSupersetOfUDR(t *testing.T) {
	// Every UDR path is a UDR-multi path.
	tr := torus.New(4, 2)
	p := tr.NodeAt([]int{0, 0})
	q := tr.NodeAt([]int{2, 1})
	multiSet := make(map[string]bool)
	UDRMulti{}.ForEachPath(tr, p, q, func(pp Path) bool {
		multiSet[pathKey(pp)] = true
		return true
	})
	UDR{}.ForEachPath(tr, p, q, func(pp Path) bool {
		if !multiSet[pathKey(pp)] {
			t.Errorf("UDR path missing from UDR-multi set")
		}
		return true
	})
}

func pathKey(p Path) string {
	key := make([]byte, 0, len(p.Edges)*4)
	for _, e := range p.Edges {
		key = append(key, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(key)
}

func TestUDRMultiSampleIsValid(t *testing.T) {
	tr := torus.New(4, 3)
	rng := rand.New(rand.NewSource(5))
	for _, pair := range samplePairs(tr, 20, 9) {
		pp := (UDRMulti{}).SamplePath(tr, pair[0], pair[1], rng)
		if err := pp.Validate(tr, pair[1]); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUDRMultiMassConservation(t *testing.T) {
	tr := torus.New(4, 3)
	for _, pair := range samplePairs(tr, 20, 31) {
		sum := 0.0
		UDRMulti{}.AccumulatePair(tr, pair[0], pair[1], func(_ torus.Edge, w float64) { sum += w })
		if want := float64(tr.LeeDistance(pair[0], pair[1])); math.Abs(sum-want) > 1e-9 {
			t.Fatalf("mass %v, want %v", sum, want)
		}
	}
}

func TestEdgeDisjointRoutesUDR(t *testing.T) {
	tr := torus.New(5, 3)
	p := tr.NodeAt([]int{0, 0, 0})
	// s = 3 pair: at least 2 disjoint routes must exist (forward orders
	// starting with different dimensions diverge immediately and meet only
	// at q's in-edges, which also differ).
	q := tr.NodeAt([]int{1, 1, 1})
	routes := EdgeDisjointRoutes(UDR{}, tr, p, q, 0)
	if len(routes) < 2 {
		t.Fatalf("only %d disjoint routes for an s=3 pair", len(routes))
	}
	used := make(map[torus.Edge]bool)
	for _, r := range routes {
		for _, e := range r.Edges {
			if used[e] {
				t.Fatal("selected routes are not edge-disjoint")
			}
			used[e] = true
		}
	}
}

func TestEdgeDisjointRoutesODRSingle(t *testing.T) {
	tr := torus.New(5, 2)
	routes := EdgeDisjointRoutes(ODR{}, tr, 0, 7, 0)
	if len(routes) != 1 {
		t.Errorf("ODR should yield exactly 1 route, got %d", len(routes))
	}
	if DisjointRouteCount(ODR{}, tr, 0, 7, 0) != 1 {
		t.Error("count wrapper mismatch")
	}
}

func TestEdgeDisjointRoutesCap(t *testing.T) {
	tr := torus.New(5, 4)
	p := tr.NodeAt([]int{0, 0, 0, 0})
	q := tr.NodeAt([]int{1, 1, 1, 1}) // 24 UDR paths
	capped := EdgeDisjointRoutes(UDR{}, tr, p, q, 2)
	if len(capped) < 1 || len(capped) > 2 {
		t.Errorf("capped selection returned %d routes", len(capped))
	}
}

func TestUDRMultiName(t *testing.T) {
	if (UDRMulti{}).Name() != "UDR-multi" {
		t.Error("name mismatch")
	}
}
