package routing

import (
	"math/rand"
	"testing"

	"torusnet/internal/torus"
)

func TestODROrderIdentityEqualsODR(t *testing.T) {
	tr := torus.New(5, 3)
	for _, pair := range samplePairs(tr, 25, 41) {
		a := odrPath(tr, pair[0], pair[1])
		b := (ODROrder{}).path(tr, pair[0], pair[1])
		if len(a.Edges) != len(b.Edges) {
			t.Fatal("length mismatch")
		}
		for i := range a.Edges {
			if a.Edges[i] != b.Edges[i] {
				t.Fatal("identity ODROrder disagrees with ODR")
			}
		}
	}
}

func TestODROrderCorrectsInGivenOrder(t *testing.T) {
	tr := torus.New(5, 3)
	p := tr.NodeAt([]int{0, 0, 0})
	q := tr.NodeAt([]int{1, 1, 1})
	path := (ODROrder{Order: []int{2, 0, 1}}).path(tr, p, q)
	if err := path.Validate(tr, q); err != nil {
		t.Fatal(err)
	}
	// First hop must be along dimension 2.
	if tr.EdgeDim(path.Edges[0]) != 2 {
		t.Errorf("first hop along dim %d, want 2", tr.EdgeDim(path.Edges[0]))
	}
	// Last hop along dimension 1.
	if tr.EdgeDim(path.Edges[len(path.Edges)-1]) != 1 {
		t.Errorf("last hop along dim %d, want 1", tr.EdgeDim(path.Edges[len(path.Edges)-1]))
	}
}

func TestODROrderMinimalAndConserving(t *testing.T) {
	tr := torus.New(6, 3)
	alg := ODROrder{Order: []int{1, 2, 0}}
	for _, pair := range samplePairs(tr, 30, 43) {
		path := alg.path(tr, pair[0], pair[1])
		if err := path.Validate(tr, pair[1]); err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		alg.AccumulatePair(tr, pair[0], pair[1], func(_ torus.Edge, w float64) { sum += w })
		if sum != float64(tr.LeeDistance(pair[0], pair[1])) {
			t.Fatalf("mass %v, want %d", sum, tr.LeeDistance(pair[0], pair[1]))
		}
	}
}

func TestODROrderPanicsOnBadPermutation(t *testing.T) {
	tr := torus.New(4, 2)
	for _, bad := range [][]int{{0, 0}, {0, 2}, {1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("order %v should panic", bad)
				}
			}()
			(ODROrder{Order: bad}).path(tr, 0, 5)
		}()
	}
}

func TestODROrderSampleAndEnumerate(t *testing.T) {
	tr := torus.New(5, 2)
	alg := ODROrder{Order: []int{1, 0}}
	rng := rand.New(rand.NewSource(1))
	paths := enumerate(alg, tr, 0, 7)
	if len(paths) != 1 || alg.PathCount(tr, 0, 7) != 1 {
		t.Fatal("ODROrder must be single-path")
	}
	s := alg.SamplePath(tr, 0, 7, rng)
	if len(s.Edges) != len(paths[0].Edges) {
		t.Fatal("sample differs from enumeration")
	}
	if alg.Name() != "ODR[1 0]" {
		t.Errorf("name %q", alg.Name())
	}
}
