package routing

import "torusnet/internal/obs"

// Per-kernel pair counters for the allocation-free Into kernels. They sit
// on the hottest path in the repository — one Inc per (source, dest) pair,
// |V|·(|V|−1) calls per exact load computation — so they use obs's gated
// Counter: with the gate off (the default, and the state in every benchmark
// and test) an Inc is a single atomic load and branch, and the acceptance
// benchmark BenchmarkODRKernelCounterOverhead pins that cost at 0 allocs/op
// and a few ns/op on the whole-kernel scale. torusd enables the gate at
// boot so /metrics can report how many pairs each kernel accumulated.
var (
	statPairsODR = obs.NewCounter("torusnet_routing_odr_pairs_total",
		"pairs accumulated by the ODR in-place kernel")
	statPairsODRMulti = obs.NewCounter("torusnet_routing_odr_multi_pairs_total",
		"pairs accumulated by the ODR-multi in-place kernel")
	statPairsUDR = obs.NewCounter("torusnet_routing_udr_pairs_total",
		"pairs accumulated by the UDR in-place kernel")
	statPairsUDRMulti = obs.NewCounter("torusnet_routing_udr_multi_pairs_total",
		"pairs accumulated by the UDR-multi in-place kernel")
)
