package routing

import (
	"math/rand"

	"torusnet/internal/torus"
)

// UDRMulti is UDR with tie expansion: correction orders are arbitrary as in
// UDR, and additionally a dimension whose coordinates are exactly k/2 apart
// (k even) may be corrected in either direction. It completes the algorithm
// matrix (ODR : ODRMulti :: UDR : UDRMulti) and maximizes the path count
// among dimension-ordered schemes: |C| = s! · 2^T for s differing
// dimensions of which T are tied.
type UDRMulti struct{}

// Name implements Algorithm.
func (UDRMulti) Name() string { return "UDR-multi" }

// PathCount implements Algorithm.
func (UDRMulti) PathCount(t *torus.Torus, p, q torus.Node) float64 {
	dims, deltas := differing(t, p, q)
	count := factorial(len(dims))
	for _, del := range deltas {
		if del.Tie {
			count *= 2
		}
	}
	return count
}

// ForEachPath implements Algorithm: tie masks vary fastest, orders slowest,
// both in deterministic order.
func (UDRMulti) ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool) {
	dims, deltas := differing(t, p, q)
	s := len(dims)
	var tied []int
	for i, del := range deltas {
		if del.Tie {
			tied = append(tied, i)
		}
	}
	total := t.LeeDistance(p, q)
	order := make([]int, 0, s)
	used := make([]bool, s)
	dirs := make([]torus.Direction, s)
	var rec func() bool
	rec = func() bool {
		if len(order) == s {
			for mask := 0; mask < 1<<len(tied); mask++ {
				for i, del := range deltas {
					dirs[i] = del.Dir
				}
				for bit, idx := range tied {
					if mask&(1<<bit) != 0 {
						dirs[idx] = torus.Minus
					}
				}
				edges := make([]torus.Edge, 0, total)
				cur := p
				for _, idx := range order {
					cur = walkDim(t, cur, dims[idx], dirs[idx], deltas[idx].Dist, &edges)
				}
				if !visit(Path{Start: p, Edges: edges}) {
					return false
				}
			}
			return true
		}
		for i := 0; i < s; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			order = append(order, i)
			cont := rec()
			order = order[:len(order)-1]
			used[i] = false
			if !cont {
				return false
			}
		}
		return true
	}
	rec()
}

// AccumulatePair implements Algorithm. The order-position weights are
// exactly UDR's (|S|!·(s−1−|S|)!/s! per "S corrected before j" segment);
// tie expansion halves each tied dimension's segment mass between its two
// arcs, independently of everything else, because a completed correction
// ends at the same node either way.
func (UDRMulti) AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64)) {
	dims, deltas := differing(t, p, q)
	s := len(dims)
	if s == 0 {
		return
	}
	sFact := factorial(s)
	coords := make([]int, t.D())
	for jIdx := 0; jIdx < s; jIdx++ {
		others := make([]int, 0, s-1)
		for i := 0; i < s; i++ {
			if i != jIdx {
				others = append(others, i)
			}
		}
		for mask := 0; mask < 1<<len(others); mask++ {
			t.CoordsInto(p, coords)
			size := 0
			for bit, idx := range others {
				if mask&(1<<bit) != 0 {
					coords[dims[idx]] = t.Coord(q, dims[idx])
					size++
				}
			}
			w := factorial(size) * factorial(s-1-size) / sFact
			start := t.NodeAt(coords)
			del := deltas[jIdx]
			if del.Tie {
				half := w / 2
				for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
					visitDim(t, start, dims[jIdx], dir, del.Dist,
						func(e torus.Edge) { add(e, half) })
				}
			} else {
				visitDim(t, start, dims[jIdx], del.Dir, del.Dist,
					func(e torus.Edge) { add(e, w) })
			}
		}
	}
}

// SamplePath implements Algorithm: uniform order, uniform tie directions.
func (UDRMulti) SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path {
	dims, deltas := differing(t, p, q)
	edges := make([]torus.Edge, 0, t.LeeDistance(p, q))
	cur := p
	for _, idx := range rng.Perm(len(dims)) {
		dir := deltas[idx].Dir
		if deltas[idx].Tie && rng.Intn(2) == 1 {
			dir = torus.Minus
		}
		cur = walkDim(t, cur, dims[idx], dir, deltas[idx].Dist, &edges)
	}
	return Path{Start: p, Edges: edges}
}
