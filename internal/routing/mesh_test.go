package routing

import (
	"math/rand"
	"testing"

	"torusnet/internal/torus"
)

func TestMeshPathsNeverUseWraps(t *testing.T) {
	tr := torus.New(5, 3)
	for _, pair := range samplePairs(tr, 40, 61) {
		path := meshPath(tr, pair[0], pair[1])
		if UsesWrapLink(tr, path) {
			t.Fatalf("mesh path %v->%v uses a wrap link",
				tr.Coords(pair[0]), tr.Coords(pair[1]))
		}
		// Connected walk ending at the destination.
		cur := pair[0]
		for _, e := range path.Edges {
			if tr.EdgeSource(e) != cur {
				t.Fatal("disconnected mesh path")
			}
			cur = tr.EdgeTarget(e)
		}
		if cur != pair[1] {
			t.Fatal("mesh path misses destination")
		}
	}
}

func TestMeshPathLengthIsArrayDistance(t *testing.T) {
	tr := torus.New(6, 2)
	for _, pair := range samplePairs(tr, 40, 67) {
		path := meshPath(tr, pair[0], pair[1])
		want := ArrayDistance(tr, pair[0], pair[1])
		if len(path.Edges) != want {
			t.Fatalf("mesh path length %d, array distance %d", len(path.Edges), want)
		}
		// Array distance dominates Lee distance, by up to a factor d·…
		if want < tr.LeeDistance(pair[0], pair[1]) {
			t.Fatal("array distance below Lee distance (impossible)")
		}
	}
}

func TestMeshConservationIsArrayTotal(t *testing.T) {
	tr := torus.New(5, 2)
	for _, pair := range samplePairs(tr, 25, 71) {
		sum := 0.0
		MeshODR{}.AccumulatePair(tr, pair[0], pair[1], func(_ torus.Edge, w float64) { sum += w })
		if sum != float64(ArrayDistance(tr, pair[0], pair[1])) {
			t.Fatalf("mass %v, want array distance %d", sum, ArrayDistance(tr, pair[0], pair[1]))
		}
	}
}

func TestMeshAccumulateMatchesPath(t *testing.T) {
	tr := torus.New(5, 2)
	for _, pair := range samplePairs(tr, 20, 73) {
		onPath := make(map[torus.Edge]bool)
		for _, e := range meshPath(tr, pair[0], pair[1]).Edges {
			onPath[e] = true
		}
		MeshODR{}.AccumulatePair(tr, pair[0], pair[1], func(e torus.Edge, w float64) {
			if w != 1 || !onPath[e] {
				t.Fatalf("accumulate hit edge %d weight %v not matching the path", e, w)
			}
			delete(onPath, e)
		})
		if len(onPath) != 0 {
			t.Fatal("accumulate missed path edges")
		}
	}
}

func TestMeshSampleSingleAndCount(t *testing.T) {
	tr := torus.New(4, 2)
	rng := rand.New(rand.NewSource(2))
	if (MeshODR{}).PathCount(tr, 0, 9) != 1 {
		t.Error("mesh is single-path")
	}
	s := (MeshODR{}).SamplePath(tr, 0, 9, rng)
	paths := enumerate(MeshODR{}, tr, 0, 9)
	if len(paths) != 1 || len(s.Edges) != len(paths[0].Edges) {
		t.Error("sample/enumerate mismatch")
	}
	if (MeshODR{}).Name() != "ODR-mesh" {
		t.Error("name")
	}
}

func TestArrayDistanceKnownValues(t *testing.T) {
	tr := torus.New(5, 2)
	cases := []struct {
		a, b []int
		want int
	}{
		{[]int{0, 0}, []int{4, 0}, 4}, // torus Lee would be 1
		{[]int{0, 0}, []int{2, 3}, 5},
		{[]int{1, 1}, []int{1, 1}, 0},
	}
	for _, c := range cases {
		if got := ArrayDistance(tr, tr.NodeAt(c.a), tr.NodeAt(c.b)); got != c.want {
			t.Errorf("ArrayDistance(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestUsesWrapLinkDetection(t *testing.T) {
	tr := torus.New(4, 1)
	// Torus ODR from 3 to 0 wraps; mesh path from 3 to 0 walks back.
	torusPath := odrPath(tr, 3, 0)
	if !UsesWrapLink(tr, torusPath) {
		t.Error("torus path 3->0 should wrap")
	}
	mesh := meshPath(tr, 3, 0)
	if UsesWrapLink(tr, mesh) {
		t.Error("mesh path must not wrap")
	}
	if len(mesh.Edges) != 3 {
		t.Errorf("mesh path length %d, want 3", len(mesh.Edges))
	}
}
