package routing

import (
	"math"
	"testing"

	"torusnet/internal/torus"
)

// TestAccumulatePairIntoMatchesClosure checks, for every InplaceAccumulator
// and a mix of even/odd k (ties and no ties), that the Into kernel deposits
// exactly the same per-edge mass as the closure-based AccumulatePair.
func TestAccumulatePairIntoMatchesClosure(t *testing.T) {
	algs := []InplaceAccumulator{ODR{}, ODRMulti{}, UDR{}, UDRMulti{}}
	for _, tc := range []struct{ k, d int }{{4, 2}, {5, 2}, {4, 3}, {3, 3}, {6, 2}} {
		tr := torus.New(tc.k, tc.d)
		sc := NewPairScratch(tr)
		for _, alg := range algs {
			want := make([]float64, tr.Edges())
			got := make([]float64, tr.Edges())
			for p := 0; p < tr.Nodes(); p++ {
				for q := 0; q < tr.Nodes(); q++ {
					for i := range want {
						want[i], got[i] = 0, 0
					}
					alg.AccumulatePair(tr, torus.Node(p), torus.Node(q),
						func(e torus.Edge, w float64) { want[e] += w })
					alg.AccumulatePairInto(tr, torus.Node(p), torus.Node(q), got, sc)
					for e := range want {
						if math.Abs(want[e]-got[e]) > 1e-12 {
							t.Fatalf("%s on T^%d_%d pair (%d,%d) edge %d: closure %g, into %g",
								alg.Name(), tc.d, tc.k, p, q, e, want[e], got[e])
						}
					}
				}
			}
		}
	}
}

// TestAccumulatePairIntoAllocFree checks the kernels are allocation-free in
// steady state — the property the load engine's hot loop relies on.
func TestAccumulatePairIntoAllocFree(t *testing.T) {
	tr := torus.New(6, 3)
	sc := NewPairScratch(tr)
	loads := make([]float64, tr.Edges())
	p, q := torus.Node(0), torus.Node(tr.Nodes()-1)
	for _, alg := range []InplaceAccumulator{ODR{}, ODRMulti{}, UDR{}, UDRMulti{}} {
		allocs := testing.AllocsPerRun(20, func() {
			alg.AccumulatePairInto(tr, p, q, loads, sc)
		})
		if allocs != 0 {
			t.Errorf("%s.AccumulatePairInto allocates %v times per pair, want 0", alg.Name(), allocs)
		}
	}
}

// TestTranslationEquivariance verifies the marker claims empirically: for
// every algorithm declaring equivariance, translating both endpoints
// translates the per-edge load pattern via the EdgeTranslation table.
// MeshODR must not declare equivariance (its array metric is absolute).
func TestTranslationEquivariance(t *testing.T) {
	if IsTranslationEquivariant(MeshODR{}) {
		t.Fatal("MeshODR must not be translation-equivariant")
	}
	algs := []Algorithm{ODR{}, ODRMulti{}, UDR{}, UDRMulti{}, FAR{}, ODROrder{Order: []int{1, 0}}}
	tr := torus.New(4, 2)
	offsets := [][]int{{1, 0}, {2, 3}, {3, 1}}
	for _, alg := range algs {
		if !IsTranslationEquivariant(alg) {
			t.Fatalf("%s should declare translation equivariance", alg.Name())
		}
		for _, off := range offsets {
			et := tr.NewEdgeTranslation(off)
			for p := 0; p < tr.Nodes(); p++ {
				for q := 0; q < tr.Nodes(); q++ {
					base := make([]float64, tr.Edges())
					alg.AccumulatePair(tr, torus.Node(p), torus.Node(q),
						func(e torus.Edge, w float64) { base[e] += w })
					shifted := make([]float64, tr.Edges())
					alg.AccumulatePair(tr, et.Node(torus.Node(p)), et.Node(torus.Node(q)),
						func(e torus.Edge, w float64) { shifted[e] += w })
					for e := range base {
						if math.Abs(base[e]-shifted[et.Edge(torus.Edge(e))]) > 1e-12 {
							t.Fatalf("%s offset %v pair (%d,%d): edge %d load %g, translated %g",
								alg.Name(), off, p, q, e, base[e], shifted[et.Edge(torus.Edge(e))])
						}
					}
				}
			}
		}
	}
}
