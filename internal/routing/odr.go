package routing

import (
	"math/rand"

	"torusnet/internal/torus"
)

// ODR is the paper's restricted Ordered Dimensional Routing (§6): dimensions
// are corrected completely in increasing order, each in the direction of
// shortest cyclic distance, and a tie (k even, coordinates k/2 apart) is
// broken toward the (+) direction. There is exactly one canonical path per
// pair regardless of the parity of k.
type ODR struct{}

// Name implements Algorithm.
func (ODR) Name() string { return "ODR" }

// PathCount implements Algorithm; ODR always specifies exactly one path.
func (ODR) PathCount(t *torus.Torus, p, q torus.Node) float64 { return 1 }

// path builds the canonical ODR path.
func odrPath(t *torus.Torus, p, q torus.Node) Path {
	edges := make([]torus.Edge, 0, t.LeeDistance(p, q))
	cur := p
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(cur, j), t.Coord(q, j), t.K())
		cur = walkDim(t, cur, j, del.Dir, del.Dist, &edges)
	}
	return Path{Start: p, Edges: edges}
}

// ForEachPath implements Algorithm.
func (ODR) ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool) {
	visit(odrPath(t, p, q))
}

// AccumulatePair implements Algorithm: each edge of the unique path carries
// the message with probability 1.
func (ODR) AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64)) {
	cur := p
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(cur, j), t.Coord(q, j), t.K())
		cur = visitDim(t, cur, j, del.Dir, del.Dist, func(e torus.Edge) { add(e, 1) })
	}
}

// SamplePath implements Algorithm; the canonical path is the only one.
func (ODR) SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path {
	return odrPath(t, p, q)
}

// ODRMulti is the unrestricted ODR of §6: dimensions are still corrected in
// increasing order, but when k is even and a coordinate pair is exactly k/2
// apart both directions are shortest and both are allowed. The path set has
// size 2^(#tied dimensions).
type ODRMulti struct{}

// Name implements Algorithm.
func (ODRMulti) Name() string { return "ODR-multi" }

// PathCount implements Algorithm.
func (ODRMulti) PathCount(t *torus.Torus, p, q torus.Node) float64 {
	count := 1.0
	for j := 0; j < t.D(); j++ {
		if torus.CoordDelta(t.Coord(p, j), t.Coord(q, j), t.K()).Tie {
			count *= 2
		}
	}
	return count
}

// ForEachPath implements Algorithm: enumerates all direction assignments for
// tied dimensions, Plus before Minus, earlier dimensions varying slowest.
func (ODRMulti) ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool) {
	deltas := make([]torus.Delta, t.D())
	t.Deltas(p, q, deltas)
	var tied []int
	for j, del := range deltas {
		if del.Tie {
			tied = append(tied, j)
		}
	}
	for mask := 0; mask < 1<<len(tied); mask++ {
		dirs := make([]torus.Direction, t.D())
		for j, del := range deltas {
			dirs[j] = del.Dir
		}
		for bit, j := range tied {
			if mask&(1<<bit) != 0 {
				dirs[j] = torus.Minus
			}
		}
		edges := make([]torus.Edge, 0, t.LeeDistance(p, q))
		cur := p
		for j, del := range deltas {
			cur = walkDim(t, cur, j, dirs[j], del.Dist, &edges)
		}
		if !visit(Path{Start: p, Edges: edges}) {
			return
		}
	}
}

// AccumulatePair implements Algorithm. Each tied dimension splits the
// remaining probability mass in half between its two direction segments;
// untied segments carry the full mass. Because dimensions are corrected in
// a fixed order, the prefix of a path up to dimension j depends only on the
// direction choices of earlier tied dimensions, so the expected usage of an
// edge in dimension j is the product of 1/2 over tied dimensions up to and
// including j — but since each earlier choice leads to a *different* edge
// (disjoint segments), the per-edge expectation factorizes per dimension.
func (ODRMulti) AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64)) {
	// Enumerate prefixes: maintain the set of (node, probability) states at
	// the start of each dimension correction. The number of states doubles
	// at each tied dimension but is bounded by 2^d.
	type state struct {
		node torus.Node
		prob float64
	}
	states := []state{{node: p, prob: 1}}
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(p, j), t.Coord(q, j), t.K())
		if del.Dist == 0 {
			continue
		}
		next := states[:0:0]
		for _, st := range states {
			if del.Tie {
				// Both directions walk k/2 steps and converge on the same
				// node, so the state does not fork — only the edge mass
				// splits in half between the two disjoint segments.
				half := st.prob / 2
				var end torus.Node
				for _, dir := range []torus.Direction{torus.Plus, torus.Minus} {
					end = visitDim(t, st.node, j, dir, del.Dist, func(e torus.Edge) { add(e, half) })
				}
				next = append(next, state{node: end, prob: st.prob})
			} else {
				prob := st.prob
				end := visitDim(t, st.node, j, del.Dir, del.Dist, func(e torus.Edge) { add(e, prob) })
				next = append(next, state{node: end, prob: prob})
			}
		}
		states = next
	}
}

// SamplePath implements Algorithm.
func (ODRMulti) SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path {
	edges := make([]torus.Edge, 0, t.LeeDistance(p, q))
	cur := p
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(cur, j), t.Coord(q, j), t.K())
		dir := del.Dir
		if del.Tie && rng.Intn(2) == 1 {
			dir = torus.Minus
		}
		cur = walkDim(t, cur, j, dir, del.Dist, &edges)
	}
	return Path{Start: p, Edges: edges}
}
