// Package routing implements the paper's minimal-path routing algorithms on
// the torus: Ordered Dimensional Routing (ODR, §6), Unordered Dimensional
// Routing (UDR, §7), and — as the natural generalization suggested by the
// load model — fully adaptive minimal routing (FAR) over all shortest paths.
//
// A routing algorithm A assigns to every ordered processor pair (p, q) a
// non-empty set C^A_{p→q} of shortest paths (Definition 3). A message from
// p to q picks one path uniformly at random, so the expected number of
// messages a directed edge l carries during one complete exchange is
//
//	E(l) = Σ_{p≠q} |C^A_{p→l→q}| / |C^A_{p→q}|   (Definition 4).
//
// Every Algorithm can enumerate its path set, count it, sample from it, and
// accumulate the exact per-edge expectation for a pair without enumerating
// (the fast path used by the load engine).
package routing

import (
	"fmt"
	"math/rand"

	"torusnet/internal/torus"
)

// Path is a directed walk given by its start node and edge sequence. A path
// produced by any Algorithm in this package is a shortest path: its length
// equals the Lee distance between its endpoints.
type Path struct {
	Start torus.Node
	Edges []torus.Edge
}

// Len returns the number of edges.
func (p Path) Len() int { return len(p.Edges) }

// End returns the final node of the path.
func (p Path) End(t *torus.Torus) torus.Node {
	if len(p.Edges) == 0 {
		return p.Start
	}
	return t.EdgeTarget(p.Edges[len(p.Edges)-1])
}

// Nodes expands the path into its node sequence, including both endpoints.
func (p Path) Nodes(t *torus.Torus) []torus.Node {
	out := make([]torus.Node, 0, len(p.Edges)+1)
	out = append(out, p.Start)
	for _, e := range p.Edges {
		out = append(out, t.EdgeTarget(e))
	}
	return out
}

// Validate checks that the path is a connected walk from Start to end and
// that its length equals the Lee distance from Start to end (minimality).
func (p Path) Validate(t *torus.Torus, end torus.Node) error {
	cur := p.Start
	for i, e := range p.Edges {
		if t.EdgeSource(e) != cur {
			return fmt.Errorf("routing: edge %d leaves %v, path is at %v",
				i, t.Coords(t.EdgeSource(e)), t.Coords(cur))
		}
		cur = t.EdgeTarget(e)
	}
	if cur != end {
		return fmt.Errorf("routing: path ends at %v, want %v", t.Coords(cur), t.Coords(end))
	}
	if want := t.LeeDistance(p.Start, end); len(p.Edges) != want {
		return fmt.Errorf("routing: path length %d, Lee distance %d (not minimal)", len(p.Edges), want)
	}
	return nil
}

// Algorithm is a routing algorithm in the sense of Definition 3.
type Algorithm interface {
	// Name is a stable identifier such as "ODR".
	Name() string
	// PathCount returns |C^A_{p→q}|. It is exact; float64 is used because
	// s! and multinomial counts outgrow int64 on large tori.
	PathCount(t *torus.Torus, p, q torus.Node) float64
	// ForEachPath enumerates C^A_{p→q} in a deterministic order, stopping
	// early if visit returns false. Intended for analysis and tests; counts
	// can be factorial in d.
	ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool)
	// AccumulatePair adds, for every directed edge e, the probability that
	// a single p→q message crosses e (= |C^A_{p→e→q}| / |C^A_{p→q}|) via
	// add. This is the exact per-pair load contribution of Definition 4.
	AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64))
	// SamplePath draws one path uniformly at random from C^A_{p→q}.
	SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path
}

// walkDim appends to dst the edges of a full correction of dimension j from
// node 'from' moving 'steps' hops in direction dir, and returns the node
// reached.
func walkDim(t *torus.Torus, from torus.Node, j int, dir torus.Direction, steps int, dst *[]torus.Edge) torus.Node {
	cur := from
	for s := 0; s < steps; s++ {
		e := t.EdgeFrom(cur, j, dir)
		*dst = append(*dst, e)
		cur = t.EdgeTarget(e)
	}
	return cur
}

// visitDim calls visit for every edge of a full correction of dimension j
// starting at 'from', returning the node reached.
func visitDim(t *torus.Torus, from torus.Node, j int, dir torus.Direction, steps int, visit func(torus.Edge)) torus.Node {
	cur := from
	for s := 0; s < steps; s++ {
		e := t.EdgeFrom(cur, j, dir)
		visit(e)
		cur = t.EdgeTarget(e)
	}
	return cur
}

// factorial returns n! as float64; exact for n <= 18.
func factorial(n int) float64 {
	out := 1.0
	for i := 2; i <= n; i++ {
		out *= float64(i)
	}
	return out
}
