package routing

import (
	"fmt"
	"math/rand"

	"torusnet/internal/torus"
)

// ODROrder is restricted ODR with a caller-chosen global correction order:
// dimensions are corrected completely in the order given by Order (a
// permutation of 0..d−1), ties toward (+). ODR is ODROrder with the
// identity permutation. The variant exposes that ODR's funneling hotspots
// are a property of *which* dimensions come first and last, not of the
// dimensions themselves: permuting the order permutes the per-dimension
// load profile accordingly (tested via torus automorphisms).
type ODROrder struct {
	Order []int
}

// Name implements Algorithm.
func (o ODROrder) Name() string { return fmt.Sprintf("ODR%v", o.Order) }

func (o ODROrder) order(d int) []int {
	if o.Order == nil {
		out := make([]int, d)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if len(o.Order) != d {
		panic("routing: ODROrder permutation arity mismatch")
	}
	seen := make([]bool, d)
	for _, j := range o.Order {
		if j < 0 || j >= d || seen[j] {
			panic("routing: ODROrder is not a permutation")
		}
		seen[j] = true
	}
	return o.Order
}

// PathCount implements Algorithm.
func (o ODROrder) PathCount(t *torus.Torus, p, q torus.Node) float64 { return 1 }

func (o ODROrder) path(t *torus.Torus, p, q torus.Node) Path {
	edges := make([]torus.Edge, 0, t.LeeDistance(p, q))
	cur := p
	for _, j := range o.order(t.D()) {
		del := torus.CoordDelta(t.Coord(cur, j), t.Coord(q, j), t.K())
		cur = walkDim(t, cur, j, del.Dir, del.Dist, &edges)
	}
	return Path{Start: p, Edges: edges}
}

// ForEachPath implements Algorithm.
func (o ODROrder) ForEachPath(t *torus.Torus, p, q torus.Node, visit func(Path) bool) {
	visit(o.path(t, p, q))
}

// AccumulatePair implements Algorithm.
func (o ODROrder) AccumulatePair(t *torus.Torus, p, q torus.Node, add func(torus.Edge, float64)) {
	cur := p
	for _, j := range o.order(t.D()) {
		del := torus.CoordDelta(t.Coord(cur, j), t.Coord(q, j), t.K())
		cur = visitDim(t, cur, j, del.Dir, del.Dist, func(e torus.Edge) { add(e, 1) })
	}
}

// SamplePath implements Algorithm.
func (o ODROrder) SamplePath(t *torus.Torus, p, q torus.Node, rng *rand.Rand) Path {
	return o.path(t, p, q)
}
