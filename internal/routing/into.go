package routing

import "torusnet/internal/torus"

// This file is the allocation-free fast path of the load engine. The closure
// form of Algorithm.AccumulatePair stays as the canonical (and exact-engine)
// API; the Into kernels below add the same per-edge mass directly into a
// dense loads slice through a reusable per-worker scratch, so the steady
// state of load.Compute performs zero heap allocations per pair.

// TranslationEquivariant marks algorithms whose path sets commute with torus
// translations: C_{p⊕t → q⊕t} = {π ⊕ t : π ∈ C_{p→q}} for every offset t.
// All dimension-ordered schemes in this package qualify because their paths
// depend only on the coordinate deltas of (p, q), never on absolute
// coordinates. MeshODR does NOT qualify (the array metric distinguishes the
// wrap links) and deliberately does not implement the marker.
//
// The load engine's symmetry fast path requires this property: it computes
// one canonical source's edge loads and translates them to every other
// source, which is only sound when paths translate with their endpoints.
type TranslationEquivariant interface {
	Algorithm
	// TranslationEquivariant reports whether the implementation is
	// translation-equivariant. A dynamic guard (not just a marker method) so
	// wrapper algorithms can delegate the answer at runtime.
	TranslationEquivariant() bool
}

// IsTranslationEquivariant reports whether alg declares translation
// equivariance. Unknown algorithms are conservatively non-equivariant.
func IsTranslationEquivariant(alg Algorithm) bool {
	te, ok := alg.(TranslationEquivariant)
	return ok && te.TranslationEquivariant()
}

// InplaceAccumulator is implemented by algorithms that can accumulate a
// pair's per-edge expectation directly into a dense loads slice without
// going through a func(Edge, float64) closure. load.Compute prefers it.
type InplaceAccumulator interface {
	Algorithm
	// AccumulatePairInto behaves exactly like AccumulatePair(t, p, q, add)
	// with add = func(e, w) { loads[e] += w }, but reuses sc for every
	// intermediate slice. loads must have length t.Edges(); sc must have
	// been built by NewPairScratch for a torus of the same dimension.
	AccumulatePairInto(t *torus.Torus, p, q torus.Node, loads []float64, sc *PairScratch)
}

// PairScratch holds the per-worker buffers the Into kernels reuse across
// pairs. A scratch is sized for one torus dimension d and must not be shared
// between goroutines; each load-engine worker owns one.
type PairScratch struct {
	dims   []int
	deltas []torus.Delta
	coords []int
}

// NewPairScratch returns a scratch sized for t. It is valid for any torus
// with the same dimension.
func NewPairScratch(t *torus.Torus) *PairScratch {
	d := t.D()
	return &PairScratch{
		dims:   make([]int, 0, d),
		deltas: make([]torus.Delta, 0, d),
		coords: make([]int, d),
	}
}

// differingInto is the scratch-backed form of differing: it fills sc.dims
// and sc.deltas with the dimensions where p and q differ.
func (sc *PairScratch) differingInto(t *torus.Torus, p, q torus.Node) ([]int, []torus.Delta) {
	dims, deltas := sc.dims[:0], sc.deltas[:0]
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(p, j), t.Coord(q, j), t.K())
		if del.Dist > 0 {
			dims = append(dims, j)
			deltas = append(deltas, del)
		}
	}
	sc.dims, sc.deltas = dims, deltas
	return dims, deltas
}

// accumulateDim adds weight w to every edge of a full dimension-j correction
// of 'steps' hops starting at 'from', directly into loads, and returns the
// node reached. It is visitDim with the closure flattened out.
func accumulateDim(t *torus.Torus, from torus.Node, j int, dir torus.Direction, steps int, w float64, loads []float64) torus.Node {
	cur := from
	for s := 0; s < steps; s++ {
		e := t.EdgeFrom(cur, j, dir)
		loads[e] += w
		cur = t.Step(cur, j, dir)
	}
	return cur
}

// TranslationEquivariant implements the marker: ODR paths depend only on
// coordinate deltas.
func (ODR) TranslationEquivariant() bool { return true }

// AccumulatePairInto implements InplaceAccumulator: the unique canonical
// path carries the full unit mass.
func (ODR) AccumulatePairInto(t *torus.Torus, p, q torus.Node, loads []float64, sc *PairScratch) {
	statPairsODR.Inc()
	cur := p
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(cur, j), t.Coord(q, j), t.K())
		cur = accumulateDim(t, cur, j, del.Dir, del.Dist, 1, loads)
	}
}

// TranslationEquivariant implements the marker.
func (ODRMulti) TranslationEquivariant() bool { return true }

// AccumulatePairInto implements InplaceAccumulator. The state machine of
// AccumulatePair never forks — a tied dimension's two arcs converge on the
// same node — so the kernel is a single forward walk where tied dimensions
// halve the edge mass across both arcs.
func (ODRMulti) AccumulatePairInto(t *torus.Torus, p, q torus.Node, loads []float64, sc *PairScratch) {
	statPairsODRMulti.Inc()
	cur := p
	for j := 0; j < t.D(); j++ {
		del := torus.CoordDelta(t.Coord(p, j), t.Coord(q, j), t.K())
		if del.Dist == 0 {
			continue
		}
		if del.Tie {
			accumulateDim(t, cur, j, torus.Plus, del.Dist, 0.5, loads)
			cur = accumulateDim(t, cur, j, torus.Minus, del.Dist, 0.5, loads)
		} else {
			cur = accumulateDim(t, cur, j, del.Dir, del.Dist, 1, loads)
		}
	}
}

// TranslationEquivariant implements the marker.
func (UDR) TranslationEquivariant() bool { return true }

// AccumulatePairInto implements InplaceAccumulator with the same segment
// decomposition as AccumulatePair (|S|!·(s−1−|S|)!/s! per "S corrected
// before j" segment), but with dims/deltas/coords drawn from the scratch and
// the 'others' indirection replaced by skipping jIdx in the mask loop.
func (UDR) AccumulatePairInto(t *torus.Torus, p, q torus.Node, loads []float64, sc *PairScratch) {
	statPairsUDR.Inc()
	dims, deltas := sc.differingInto(t, p, q)
	s := len(dims)
	if s == 0 {
		return
	}
	sFact := factorial(s)
	coords := sc.coords
	for jIdx := 0; jIdx < s; jIdx++ {
		for mask := 0; mask < 1<<(s-1); mask++ {
			t.CoordsInto(p, coords)
			size := 0
			bit := 0
			for i := 0; i < s; i++ {
				if i == jIdx {
					continue
				}
				if mask&(1<<bit) != 0 {
					coords[dims[i]] = t.Coord(q, dims[i])
					size++
				}
				bit++
			}
			w := factorial(size) * factorial(s-1-size) / sFact
			start := t.NodeAt(coords)
			accumulateDim(t, start, dims[jIdx], deltas[jIdx].Dir, deltas[jIdx].Dist, w, loads)
		}
	}
}

// TranslationEquivariant implements the marker.
func (UDRMulti) TranslationEquivariant() bool { return true }

// AccumulatePairInto implements InplaceAccumulator: UDR's order-position
// weights with tie expansion halving each tied segment across its two arcs.
func (UDRMulti) AccumulatePairInto(t *torus.Torus, p, q torus.Node, loads []float64, sc *PairScratch) {
	statPairsUDRMulti.Inc()
	dims, deltas := sc.differingInto(t, p, q)
	s := len(dims)
	if s == 0 {
		return
	}
	sFact := factorial(s)
	coords := sc.coords
	for jIdx := 0; jIdx < s; jIdx++ {
		for mask := 0; mask < 1<<(s-1); mask++ {
			t.CoordsInto(p, coords)
			size := 0
			bit := 0
			for i := 0; i < s; i++ {
				if i == jIdx {
					continue
				}
				if mask&(1<<bit) != 0 {
					coords[dims[i]] = t.Coord(q, dims[i])
					size++
				}
				bit++
			}
			w := factorial(size) * factorial(s-1-size) / sFact
			start := t.NodeAt(coords)
			del := deltas[jIdx]
			if del.Tie {
				accumulateDim(t, start, dims[jIdx], torus.Plus, del.Dist, w/2, loads)
				accumulateDim(t, start, dims[jIdx], torus.Minus, del.Dist, w/2, loads)
			} else {
				accumulateDim(t, start, dims[jIdx], del.Dir, del.Dist, w, loads)
			}
		}
	}
}

// TranslationEquivariant implements the marker: ODROrder permutes the
// correction order but still routes by coordinate deltas only.
func (o ODROrder) TranslationEquivariant() bool { return true }

// TranslationEquivariant implements the marker: FAR's path set is every
// minimal path, which is determined by the coordinate deltas alone.
func (FAR) TranslationEquivariant() bool { return true }
