package routing

import "torusnet/internal/torus"

// EdgeDisjointRoutes greedily selects a set of pairwise edge-disjoint paths
// from C^A_{p→q}, enumerating in the algorithm's deterministic order. The
// size of the returned set is the number of simultaneous link failures the
// pair provably tolerates minus... precisely: with r disjoint routes, any
// r−1 link failures leave at least one route intact. The torus ceiling is
// the edge connectivity 2d (see the maxflow package).
//
// maxPaths caps enumeration work for pairs with factorially many routes;
// pass 0 for no cap.
func EdgeDisjointRoutes(a Algorithm, t *torus.Torus, p, q torus.Node, maxPaths int) []Path {
	var selected []Path
	used := make(map[torus.Edge]bool)
	seen := 0
	a.ForEachPath(t, p, q, func(path Path) bool {
		seen++
		conflict := false
		for _, e := range path.Edges {
			if used[e] {
				conflict = true
				break
			}
		}
		if !conflict {
			selected = append(selected, path)
			for _, e := range path.Edges {
				used[e] = true
			}
		}
		return maxPaths <= 0 || seen < maxPaths
	})
	return selected
}

// DisjointRouteCount is a convenience wrapper returning just the count.
func DisjointRouteCount(a Algorithm, t *torus.Torus, p, q torus.Node, maxPaths int) int {
	return len(EdgeDisjointRoutes(a, t, p, q, maxPaths))
}
