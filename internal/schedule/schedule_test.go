package schedule

import (
	"testing"

	"torusnet/internal/load"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/simnet"
	"torusnet/internal/torus"
)

func build(t *testing.T, spec placement.Spec, tr *torus.Torus) *placement.Placement {
	t.Helper()
	p, err := spec.Build(tr)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name(), err)
	}
	return p
}

func TestScheduleIsConflictFree(t *testing.T) {
	for _, c := range []struct{ k, d int }{{4, 2}, {6, 2}, {4, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		for _, order := range []Order{ByIndex, LongestFirst} {
			res := CompleteExchange(p, routing.ODR{}, 1, order)
			if err := res.Verify(); err != nil {
				t.Errorf("T^%d_%d order %d: %v", c.d, c.k, order, err)
			}
		}
	}
}

func TestScheduleRespectsLowerBound(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := CompleteExchange(p, routing.ODR{}, 1, LongestFirst)
	if res.Length < res.LowerBound() {
		t.Errorf("length %d below lower bound %d", res.Length, res.LowerBound())
	}
	if res.Congestion <= 0 || res.Dilation <= 0 {
		t.Errorf("degenerate congestion/dilation: %d/%d", res.Congestion, res.Dilation)
	}
}

func TestCongestionEqualsEMaxForODR(t *testing.T) {
	// ODR is deterministic, so the schedule's congestion is exactly the
	// load engine's E_max.
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := CompleteExchange(p, routing.ODR{}, 1, ByIndex)
	exact := load.Compute(p, routing.ODR{}, load.Options{})
	if float64(res.Congestion) != exact.Max {
		t.Errorf("congestion %d, E_max %v", res.Congestion, exact.Max)
	}
}

func TestDilationEqualsDiameterBound(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Full{}, tr)
	res := CompleteExchange(p, routing.ODR{}, 1, ByIndex)
	if want := 2 * (6 / 2); res.Dilation != want {
		t.Errorf("dilation %d, want torus diameter %d", res.Dilation, want)
	}
}

func TestGreedyNearOptimal(t *testing.T) {
	// The greedy schedule should land within a small constant of the
	// max(C, D) floor on these workloads (C + D is the classic target).
	for _, c := range []struct{ k, d int }{{4, 2}, {6, 2}, {8, 2}, {4, 3}} {
		tr := torus.New(c.k, c.d)
		p := build(t, placement.Linear{C: 0}, tr)
		res := CompleteExchange(p, routing.ODR{}, 1, LongestFirst)
		if res.Length > res.Congestion+res.Dilation {
			t.Errorf("T^%d_%d: length %d exceeds C+D = %d+%d", c.d, c.k,
				res.Length, res.Congestion, res.Dilation)
		}
	}
}

func TestScheduleNoWorseThanFIFOSimulation(t *testing.T) {
	// Offline scheduling with full knowledge should not lose to the online
	// FIFO simulator on the same routes.
	tr := torus.New(6, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	res := CompleteExchange(p, routing.ODR{}, 1, LongestFirst)
	sim := simnet.Run(simnet.Config{Placement: p, Algorithm: routing.ODR{}, Seed: 1})
	if res.Length > sim.Cycles {
		t.Errorf("schedule %d cycles, FIFO simulation %d", res.Length, sim.Cycles)
	}
}

func TestLongestFirstNoWorseOnFullTorus(t *testing.T) {
	tr := torus.New(6, 2)
	p := build(t, placement.Full{}, tr)
	byIdx := CompleteExchange(p, routing.ODR{}, 1, ByIndex)
	longest := CompleteExchange(p, routing.ODR{}, 1, LongestFirst)
	if err := byIdx.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := longest.Verify(); err != nil {
		t.Fatal(err)
	}
	// Not a theorem, but on this workload the heuristic should not be
	// dramatically worse; guard against pathological regressions.
	if longest.Length > byIdx.Length*2 {
		t.Errorf("longest-first %d vs by-index %d", longest.Length, byIdx.Length)
	}
}

func TestEmptySchedule(t *testing.T) {
	tr := torus.New(4, 2)
	res := Greedy(tr, nil, ByIndex)
	if res.Length != 0 || res.Congestion != 0 || res.Dilation != 0 {
		t.Errorf("empty schedule: %+v", res)
	}
	if err := res.Verify(); err != nil {
		t.Error(err)
	}
}

func TestTwoMessagesSharingALink(t *testing.T) {
	tr := torus.New(5, 1)
	// Two identical 2-hop paths 0 -> 1 -> 2 must be offset by one cycle.
	mk := func() routing.Path {
		return routing.Path{Start: 0, Edges: []torus.Edge{
			tr.EdgeFrom(0, 0, torus.Plus),
			tr.EdgeFrom(1, 0, torus.Plus),
		}}
	}
	res := Greedy(tr, []routing.Path{mk(), mk()}, ByIndex)
	if err := res.Verify(); err != nil {
		t.Fatal(err)
	}
	if res.Length != 3 {
		t.Errorf("length %d, want 3 (starts 0 and 1)", res.Length)
	}
	if res.Congestion != 2 || res.Dilation != 2 {
		t.Errorf("C/D = %d/%d, want 2/2", res.Congestion, res.Dilation)
	}
}
