// Package schedule builds conflict-free time schedules for a set of routed
// messages: message i starts at time start_i and crosses the j-th edge of
// its path at time start_i + j; no directed link may carry two messages in
// the same cycle. This is the offline counterpart of the simnet FIFO
// simulator and the operational meaning of the paper's load bounds: any
// schedule needs at least C cycles on the most congested link (C = E_max
// for deterministic routing) and at least D cycles for the longest path
// (dilation), so length ≥ max(C, D); a good schedule gets close to C + D.
package schedule

import (
	"fmt"
	"math/rand"
	"sort"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// Order selects the greedy insertion order.
type Order int

const (
	// ByIndex schedules messages in their given order.
	ByIndex Order = iota
	// LongestFirst schedules longer paths first (classic list-scheduling
	// heuristic; long paths are hardest to place late).
	LongestFirst
)

// Result is a complete conflict-free schedule.
type Result struct {
	Paths  []routing.Path
	Starts []int
	// Length is the makespan: max(start + path length).
	Length int
	// Congestion is the maximum number of messages sharing one link.
	Congestion int
	// Dilation is the longest path length.
	Dilation int
}

// LowerBound returns max(Congestion, Dilation), the universal floor for
// any conflict-free schedule of these paths.
func (r *Result) LowerBound() int {
	if r.Congestion > r.Dilation {
		return r.Congestion
	}
	return r.Dilation
}

// Greedy computes a conflict-free schedule: each message takes the smallest
// start time that avoids all previously placed messages.
func Greedy(t *torus.Torus, paths []routing.Path, order Order) *Result {
	res := &Result{Paths: paths, Starts: make([]int, len(paths))}

	idx := make([]int, len(paths))
	for i := range idx {
		idx[i] = i
	}
	if order == LongestFirst {
		sort.SliceStable(idx, func(a, b int) bool {
			return len(paths[idx[a]].Edges) > len(paths[idx[b]].Edges)
		})
	}

	// busy[e] marks the occupied cycles of link e as a growable bitmap.
	busy := make([][]bool, t.Edges())
	occupy := func(e torus.Edge, time int) {
		b := busy[e]
		for len(b) <= time {
			b = append(b, false)
		}
		b[time] = true
		busy[e] = b
	}
	isBusy := func(e torus.Edge, time int) bool {
		b := busy[e]
		return time < len(b) && b[time]
	}

	congestion := make(map[torus.Edge]int)
	for _, i := range idx {
		path := paths[i]
		if len(path.Edges) > res.Dilation {
			res.Dilation = len(path.Edges)
		}
		start := 0
	retry:
		for j, e := range path.Edges {
			if isBusy(e, start+j) {
				start++
				goto retry
			}
		}
		res.Starts[i] = start
		for j, e := range path.Edges {
			occupy(e, start+j)
		}
		if end := start + len(path.Edges); end > res.Length {
			res.Length = end
		}
		for _, e := range path.Edges {
			congestion[e]++
			if congestion[e] > res.Congestion {
				res.Congestion = congestion[e]
			}
		}
	}
	return res
}

// Verify recomputes link occupancy and reports the first conflict found.
func (r *Result) Verify() error {
	type slot struct {
		e torus.Edge
		t int
	}
	seen := make(map[slot]int)
	for i, path := range r.Paths {
		for j, e := range path.Edges {
			s := slot{e, r.Starts[i] + j}
			if prev, dup := seen[s]; dup {
				return fmt.Errorf("schedule: messages %d and %d share link %d at time %d", prev, i, e, s.t)
			}
			seen[s] = i
		}
	}
	return nil
}

// CompleteExchange builds the message set of one complete exchange on the
// placement (paths sampled from the algorithm) and schedules it greedily.
func CompleteExchange(p *placement.Placement, alg routing.Algorithm, seed int64, order Order) *Result {
	t := p.Torus()
	rng := rand.New(rand.NewSource(seed))
	paths := make([]routing.Path, 0, p.Pairs())
	for _, src := range p.Nodes() {
		for _, dst := range p.Nodes() {
			if dst == src {
				continue
			}
			paths = append(paths, alg.SamplePath(t, src, dst, rng))
		}
	}
	return Greedy(t, paths, order)
}
