package core

import (
	"strings"
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func build(t *testing.T, spec placement.Spec, tr *torus.Torus) *placement.Placement {
	t.Helper()
	p, err := spec.Build(tr)
	if err != nil {
		t.Fatalf("build %s: %v", spec.Name(), err)
	}
	return p
}

func TestAnalyzeLinearODR(t *testing.T) {
	tr := torus.New(6, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	rep := Analyze(p, routing.ODR{}, 0)

	if !rep.Uniform {
		t.Error("linear placement should be uniform")
	}
	if rep.DensityC != 1 {
		t.Errorf("density c = %v, want 1", rep.DensityC)
	}
	if rep.Load.Max <= 0 {
		t.Error("E_max should be positive")
	}
	// E_max must respect every lower bound.
	if rep.Load.Max < rep.BlaumBound {
		t.Errorf("E_max %v below Blaum bound %v", rep.Load.Max, rep.BlaumBound)
	}
	if rep.Load.Max < rep.BisectionBound {
		t.Errorf("E_max %v below bisection bound %v", rep.Load.Max, rep.BisectionBound)
	}
	if rep.Load.Max < rep.ImprovedBound {
		t.Errorf("E_max %v below improved bound %v", rep.Load.Max, rep.ImprovedBound)
	}
	if rep.OptimalityRatio < 1 {
		t.Errorf("optimality ratio %v < 1 (bound exceeded measurement?)", rep.OptimalityRatio)
	}
	if rep.LoadPerProcessor <= 0 || rep.LoadPerProcessor > 0.51 {
		t.Errorf("load per processor %v outside (0, 1/2]", rep.LoadPerProcessor)
	}
	if rep.String() == "" {
		t.Error("empty report string")
	}
}

func TestAnalyzeBoundedOptimalityAcrossK(t *testing.T) {
	// Optimality certification: the ratio E_max / bestLowerBound stays
	// bounded as k grows, for both routing algorithms.
	for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}} {
		var ratios []float64
		for _, k := range []int{4, 6, 8} {
			tr := torus.New(k, 2)
			p := build(t, placement.Linear{C: 0}, tr)
			rep := Analyze(p, alg, 0)
			ratios = append(ratios, rep.OptimalityRatio)
		}
		for i, r := range ratios {
			if r <= 0 || r > 16 {
				t.Errorf("%s: ratio[%d] = %v unbounded", alg.Name(), i, r)
			}
		}
	}
}

func TestAnalyzeNonUniformSkipsImprovedBound(t *testing.T) {
	tr := torus.New(4, 2)
	p := build(t, placement.Random{Count: 5, Seed: 3}, tr)
	rep := Analyze(p, routing.ODR{}, 0)
	if rep.Uniform {
		t.Skip("random placement happened to be uniform")
	}
	if rep.ImprovedBound != 0 {
		t.Errorf("improved bound %v should be unset for non-uniform placements", rep.ImprovedBound)
	}
	if rep.BestLowerBound() <= 0 {
		t.Error("best lower bound should still be positive")
	}
}

func TestBestLowerBoundIsMax(t *testing.T) {
	tr := torus.New(6, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	rep := Analyze(p, routing.ODR{}, 0)
	best := rep.BestLowerBound()
	if best < rep.BlaumBound || best < rep.BisectionBound || best < rep.ImprovedBound {
		t.Error("BestLowerBound is not the maximum")
	}
}

func TestFigure1Placement(t *testing.T) {
	p, err := Figure1Placement()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 3 {
		t.Fatalf("Fig. 1 placement has %d processors, want 3", p.Size())
	}
	tr := p.Torus()
	if tr.K() != 3 || tr.D() != 2 {
		t.Fatalf("Fig. 1 torus is %s, want T^2_3", tr)
	}
	// All three on the anti-diagonal p1+p2 ≡ 0.
	for _, u := range p.Nodes() {
		if (tr.Coord(u, 0)+tr.Coord(u, 1))%3 != 0 {
			t.Errorf("processor %v not on the linear placement", tr.Coords(u))
		}
	}
}

func TestUsedLinksSubsetOfTotal(t *testing.T) {
	p, _ := Figure1Placement()
	for _, alg := range []routing.Algorithm{routing.ODR{}, routing.UDR{}, routing.FAR{}} {
		used, total := UsedLinks(p, alg)
		if len(used) == 0 || len(used) > total {
			t.Errorf("%s: used %d of %d", alg.Name(), len(used), total)
		}
	}
}

func TestUDRHighlightsAtLeastAsManyLinksAsODR(t *testing.T) {
	// Fig. 1's point: more specified paths → more (redundant) links.
	p, _ := Figure1Placement()
	usedODR, _ := UsedLinks(p, routing.ODR{})
	usedUDR, _ := UsedLinks(p, routing.UDR{})
	if len(usedUDR) < len(usedODR) {
		t.Errorf("UDR highlights %d links, ODR %d", len(usedUDR), len(usedODR))
	}
	for e := range usedODR {
		if !usedUDR[e] {
			t.Errorf("ODR link %d missing from UDR set", e)
		}
	}
}

func TestRenderFigure1(t *testing.T) {
	p, _ := Figure1Placement()
	art, err := RenderFigure1(p, routing.UDR{})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Count(art, "#") != 3 {
		t.Errorf("expected 3 processor marks, got %d in:\n%s", strings.Count(art, "#"), art)
	}
	if strings.Count(art, "o") != 6 {
		t.Errorf("expected 6 router marks, got %d", strings.Count(art, "o"))
	}
	if !strings.Contains(art, "=") {
		t.Error("no highlighted horizontal links rendered")
	}
}

func TestRenderFigure1RejectsHigherDimensions(t *testing.T) {
	tr := torus.New(3, 3)
	p := build(t, placement.Linear{C: 0}, tr)
	if _, err := RenderFigure1(p, routing.ODR{}); err == nil {
		t.Error("3-dimensional torus should not render")
	}
}

func TestFigure1Summary(t *testing.T) {
	s, err := Figure1Summary(routing.UDR{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "T^2_3 with 3 processors") {
		t.Errorf("summary header missing:\n%s", s)
	}
	// 6 ordered pairs listed.
	if got := strings.Count(s, "->"); got != 6 {
		t.Errorf("summary lists %d pairs, want 6", got)
	}
}

func TestAnalyzeFull(t *testing.T) {
	tr := torus.New(5, 2)
	p := build(t, placement.Linear{C: 0}, tr)
	rep := AnalyzeFull(p, routing.UDR{}, 0)
	if rep.Report == nil || rep.Faults == nil || rep.Schedule == nil {
		t.Fatal("incomplete full report")
	}
	if rep.Faults.Pairs != p.Pairs() {
		t.Errorf("fault pairs %d", rep.Faults.Pairs)
	}
	if rep.Coverage.CoveringRadius != 2 { // ⌊5/2⌋
		t.Errorf("covering radius %d, want 2", rep.Coverage.CoveringRadius)
	}
	if rep.Schedule.Length < rep.Schedule.LowerBound() {
		t.Error("schedule below floor")
	}
	s := rep.String()
	for _, want := range []string{"fault tolerance", "coverage", "schedule"} {
		if !strings.Contains(s, want) {
			t.Errorf("full report missing %q section", want)
		}
	}
}
