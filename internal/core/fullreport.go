package core

import (
	"fmt"
	"strings"

	"torusnet/internal/cover"
	"torusnet/internal/faults"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/schedule"
)

// FullReport extends Report with the fault-tolerance, coverage, and
// scheduling views — everything a system designer would want before
// committing to a placement.
type FullReport struct {
	*Report
	Faults   *faults.Report
	Coverage cover.Report
	Schedule *schedule.Result
}

// AnalyzeFull runs the complete pipeline: loads and bounds (Analyze),
// route-multiplicity and critical-link analysis, covering/packing metrics,
// and a greedy conflict-free schedule of one complete exchange.
func AnalyzeFull(p *placement.Placement, alg routing.Algorithm, workers int) *FullReport {
	return &FullReport{
		Report:   Analyze(p, alg, workers),
		Faults:   faults.Analyze(p, alg, workers),
		Coverage: cover.Analyze(p),
		Schedule: schedule.CompleteExchange(p, alg, 1, schedule.LongestFirst),
	}
}

// String renders the full report.
func (r *FullReport) String() string {
	var sb strings.Builder
	sb.WriteString(r.Report.String())
	fmt.Fprintf(&sb, "  fault tolerance: routes %g..%g (mean %.2f), %d/%d pairs with a critical link, E[broken|1 failure]=%.3f\n",
		r.Faults.MinRoutes, r.Faults.MaxRoutes, r.Faults.MeanRoutes,
		r.Faults.PairsWithCritical, r.Faults.Pairs, r.Faults.ExpectedBrokenPairs)
	fmt.Fprintf(&sb, "  coverage: radius %d, packing distance %d, mean distance %.2f\n",
		r.Coverage.CoveringRadius, r.Coverage.PackingDistance, r.Coverage.MeanDistance)
	fmt.Fprintf(&sb, "  schedule: length %d vs floor max(C=%d, D=%d)\n",
		r.Schedule.Length, r.Schedule.Congestion, r.Schedule.Dilation)
	return sb.String()
}
