package core

import (
	"sync"
	"testing"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// TestAnalyzeConcurrentDeterministic guards the worker-pool path torusd
// relies on: many goroutines running Analyze concurrently — sharing one
// placement, as the service's cache/coalescing layer does — must produce
// results bit-identical to a sequential run. Run under -race in CI, this
// also proves the pipeline touches no shared mutable state.
func TestAnalyzeConcurrentDeterministic(t *testing.T) {
	tor := torus.New(8, 2)
	shared, err := placement.Linear{C: 0}.Build(tor)
	if err != nil {
		t.Fatal(err)
	}
	// A fixed worker count pins the load engine's floating-point merge
	// order, making float64 results exactly reproducible.
	const loadWorkers = 3
	algs := []routing.Algorithm{routing.ODR{}, routing.UDR{}, routing.FAR{}}

	want := make([]*Report, len(algs))
	for i, alg := range algs {
		want[i] = Analyze(shared, alg, loadWorkers)
	}

	const goroutines = 8
	got := make([][]*Report, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reports := make([]*Report, len(algs))
			for i, alg := range algs {
				reports[i] = Analyze(shared, alg, loadWorkers)
			}
			got[g] = reports
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		for i := range algs {
			seq, par := want[i], got[g][i]
			if par.Load.Max != seq.Load.Max || par.Load.Total != seq.Load.Total {
				t.Errorf("goroutine %d, %s: E_max/total %v/%v, want %v/%v",
					g, algs[i].Name(), par.Load.Max, par.Load.Total, seq.Load.Max, seq.Load.Total)
			}
			if len(par.Load.Loads) != len(seq.Load.Loads) {
				t.Fatalf("goroutine %d, %s: %d loads, want %d",
					g, algs[i].Name(), len(par.Load.Loads), len(seq.Load.Loads))
			}
			for e := range seq.Load.Loads {
				if par.Load.Loads[e] != seq.Load.Loads[e] {
					t.Fatalf("goroutine %d, %s: edge %d load %v, want %v (not bit-identical)",
						g, algs[i].Name(), e, par.Load.Loads[e], seq.Load.Loads[e])
				}
			}
			if par.BlaumBound != seq.BlaumBound ||
				par.BisectionBound != seq.BisectionBound ||
				par.ImprovedBound != seq.ImprovedBound ||
				par.OptimalityRatio != seq.OptimalityRatio {
				t.Errorf("goroutine %d, %s: bounds diverged from sequential run", g, algs[i].Name())
			}
			if par.SweepCut.Width() != seq.SweepCut.Width() ||
				par.DimensionCut.Width() != seq.DimensionCut.Width() {
				t.Errorf("goroutine %d, %s: cut widths diverged", g, algs[i].Name())
			}
		}
	}
}
