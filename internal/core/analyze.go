// Package core ties the substrates together into the paper's top-level
// question: is a given (placement, routing algorithm) pair optimal — does
// it achieve maximum load linear in |P| with |P| = Θ(k^{d−1}) processors?
//
// Analyze runs the exact load engine, evaluates every lower bound the paper
// provides (Eq. 1, Lemma 1 via the bisection constructions, the §4 improved
// bound), constructs Theorem 1 and sweep bisections, and reports the
// optimality ratio E_max / bestLowerBound.
package core

import (
	"context"
	"fmt"
	"strings"

	"torusnet/internal/bisect"
	"torusnet/internal/bounds"
	"torusnet/internal/load"
	"torusnet/internal/obs"
	"torusnet/internal/placement"
	"torusnet/internal/routing"
)

// Report is the complete analysis of one placement + routing algorithm.
type Report struct {
	Placement *placement.Placement
	Algorithm string

	// Load results (Definition 4).
	Load *load.Result

	// Lower bounds on E_max.
	BlaumBound     float64 // Eq. 1: (|P|−1)/2d
	BisectionBound float64 // Eq. 8 using the sweep cut width
	ImprovedBound  float64 // §4: c²k^{d−1}/8 (uniform placements only, else 0)

	// Bisection data.
	SweepCut     *bisect.Cut
	DimensionCut *bisect.Cut

	// Density constant c with |P| = c·k^{d−1}.
	DensityC float64
	// Uniform reports placement uniformity (premise of Theorem 1 and §4).
	Uniform bool

	// OptimalityRatio is E_max divided by the best available lower bound;
	// a bounded ratio as k grows certifies the placement optimal in the
	// paper's sense.
	OptimalityRatio float64
	// LoadPerProcessor is E_max / |P|, the linearity constant c1.
	LoadPerProcessor float64
}

// Analyze runs the full pipeline. Workers configures the load engine; the
// translation fast path stays on auto-detect.
func Analyze(p *placement.Placement, alg routing.Algorithm, workers int) *Report {
	return AnalyzeWithLoadOptions(p, alg, load.Options{Workers: workers})
}

// AnalyzeWithLoadOptions runs the full pipeline with explicit load-engine
// options (worker count, fast-path mode, cross-check), for callers like the
// analysis service that expose engine toggles.
func AnalyzeWithLoadOptions(p *placement.Placement, alg routing.Algorithm, opts load.Options) *Report {
	return AnalyzeCtx(context.Background(), p, alg, opts)
}

// AnalyzeCtx is AnalyzeWithLoadOptions with observability threaded through
// ctx: the load engine records its engine-stage spans under any active
// trace, and the bound/bisection evaluation gets its own span. With no
// active trace the instrumentation is inert.
func AnalyzeCtx(ctx context.Context, p *placement.Placement, alg routing.Algorithm, opts load.Options) *Report {
	ctx, sp := obs.Start(ctx, "core.analyze")
	defer sp.End()
	sp.SetAttr("algorithm", alg.Name())
	t := p.Torus()
	rep := &Report{
		Placement: p,
		Algorithm: alg.Name(),
		Load:      load.ComputeCtx(ctx, p, alg, opts),
	}
	_, bsp := obs.Start(ctx, "core.bounds")
	defer bsp.End()
	rep.BlaumBound = bounds.Blaum(p.Size(), t.D())
	rep.Uniform = p.IsUniform()

	kd1 := 1.0
	for i := 0; i < t.D()-1; i++ {
		kd1 *= float64(t.K())
	}
	rep.DensityC = float64(p.Size()) / kd1

	rep.SweepCut = bisect.Sweep(p)
	rep.DimensionCut = bisect.BestDimensionCut(p)
	rep.BisectionBound = bounds.Bisection(p.Size(), rep.SweepCut.Width())
	if rep.DimensionCut.Balanced() {
		if b := bounds.Bisection(p.Size(), rep.DimensionCut.Width()); b > rep.BisectionBound {
			rep.BisectionBound = b
		}
	}
	if rep.Uniform {
		rep.ImprovedBound = bounds.Improved(rep.DensityC, t.K(), t.D())
	}

	best := rep.BlaumBound
	if rep.BisectionBound > best {
		best = rep.BisectionBound
	}
	if rep.ImprovedBound > best {
		best = rep.ImprovedBound
	}
	if best > 0 {
		rep.OptimalityRatio = rep.Load.Max / best
	}
	if p.Size() > 0 {
		rep.LoadPerProcessor = rep.Load.Max / float64(p.Size())
	}
	return rep
}

// BestLowerBound returns the strongest of the evaluated lower bounds.
func (r *Report) BestLowerBound() float64 {
	best := r.BlaumBound
	if r.BisectionBound > best {
		best = r.BisectionBound
	}
	if r.ImprovedBound > best {
		best = r.ImprovedBound
	}
	return best
}

// String renders a human-readable report.
func (r *Report) String() string {
	var sb strings.Builder
	t := r.Placement.Torus()
	fmt.Fprintf(&sb, "placement %s under %s\n", r.Placement, r.Algorithm)
	fmt.Fprintf(&sb, "  |P| = %d = %.3f·k^%d, uniform=%v\n", r.Placement.Size(), r.DensityC, t.D()-1, r.Uniform)
	fmt.Fprintf(&sb, "  E_max = %.4f (%.4f per processor) at %s\n",
		r.Load.Max, r.LoadPerProcessor, t.EdgeString(r.Load.MaxEdge))
	fmt.Fprintf(&sb, "  bounds: Blaum=%.4f bisection=%.4f improved=%.4f\n",
		r.BlaumBound, r.BisectionBound, r.ImprovedBound)
	fmt.Fprintf(&sb, "  cuts: sweep width=%d (%d|%d), dimension width=%d (%d|%d)\n",
		r.SweepCut.Width(), r.SweepCut.ProcsA, r.SweepCut.ProcsB,
		r.DimensionCut.Width(), r.DimensionCut.ProcsA, r.DimensionCut.ProcsB)
	fmt.Fprintf(&sb, "  optimality ratio = %.4f\n", r.OptimalityRatio)
	return sb.String()
}
