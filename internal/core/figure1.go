package core

import (
	"fmt"
	"sort"
	"strings"

	"torusnet/internal/placement"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

// Figure1Placement reproduces the placement of the paper's Fig. 1: three
// processors on T²₃. The figure places them on the main diagonal — the
// linear placement p₁+p₂ ≡ 0 (mod 3) — which also makes it the d = 2
// instance of the paper's running construction.
func Figure1Placement() (*placement.Placement, error) {
	t := torus.New(3, 2)
	return placement.Linear{C: 0}.Build(t)
}

// UsedLinks returns the set of directed links that appear on at least one
// routing path between some processor pair (the "highlighted" links of
// Fig. 1), together with the total link count.
func UsedLinks(p *placement.Placement, alg routing.Algorithm) (used map[torus.Edge]bool, total int) {
	t := p.Torus()
	used = make(map[torus.Edge]bool)
	for _, src := range p.Nodes() {
		for _, dst := range p.Nodes() {
			if src == dst {
				continue
			}
			alg.ForEachPath(t, src, dst, func(path routing.Path) bool {
				for _, e := range path.Edges {
					used[e] = true
				}
				return true
			})
		}
	}
	return used, t.Edges()
}

// RenderFigure1 draws a 2-dimensional torus as ASCII art, marking processor
// nodes with '#', router-only nodes with 'o', and links on specified
// routing paths with '=' / '"' (highlighted) versus '-' / ':' (unused).
// Wrap links are listed below the grid. Only d = 2 tori can be rendered.
func RenderFigure1(p *placement.Placement, alg routing.Algorithm) (string, error) {
	t := p.Torus()
	if t.D() != 2 {
		return "", fmt.Errorf("core: can only render 2-dimensional tori, got d=%d", t.D())
	}
	used, _ := UsedLinks(p, alg)
	k := t.K()

	highlightH := func(x, y int) bool {
		// Either direction of the horizontal link between (x,y) and (x+1,y).
		u := t.NodeAt([]int{x, y})
		v := t.NodeAt([]int{(x + 1) % k, y})
		return used[t.EdgeFrom(u, 0, torus.Plus)] || used[t.EdgeFrom(v, 0, torus.Minus)]
	}
	highlightV := func(x, y int) bool {
		u := t.NodeAt([]int{x, y})
		v := t.NodeAt([]int{x, (y + 1) % k})
		return used[t.EdgeFrom(u, 1, torus.Plus)] || used[t.EdgeFrom(v, 1, torus.Minus)]
	}

	var sb strings.Builder
	// Draw rows top (y = k−1) to bottom (y = 0) like the paper's figure.
	for y := k - 1; y >= 0; y-- {
		// Node row with horizontal links.
		for x := 0; x < k; x++ {
			u := t.NodeAt([]int{x, y})
			if p.Contains(u) {
				sb.WriteByte('#')
			} else {
				sb.WriteByte('o')
			}
			if x < k-1 {
				if highlightH(x, y) {
					sb.WriteString("===")
				} else {
					sb.WriteString("---")
				}
			}
		}
		if highlightH(k-1, y) {
			sb.WriteString("  ==wrap")
		}
		sb.WriteByte('\n')
		// Vertical link row.
		if y > 0 {
			for x := 0; x < k; x++ {
				if highlightV(x, y-1) {
					sb.WriteByte('"')
				} else {
					sb.WriteByte(':')
				}
				if x < k-1 {
					sb.WriteString("   ")
				}
			}
			sb.WriteByte('\n')
		}
	}
	// Bottom wrap links (vertical, between y = k−1 and y = 0).
	wrapCols := []string{}
	for x := 0; x < k; x++ {
		if highlightV(x, k-1) {
			wrapCols = append(wrapCols, fmt.Sprintf("x=%d", x))
		}
	}
	if len(wrapCols) > 0 {
		fmt.Fprintf(&sb, "vertical wrap links highlighted: %s\n", strings.Join(wrapCols, ", "))
	}
	return sb.String(), nil
}

// Figure1Summary reports, for the Fig. 1 scenario, the processor
// coordinates, the number of highlighted links, and per-pair path counts —
// the data a reader checks the figure against.
func Figure1Summary(alg routing.Algorithm) (string, error) {
	p, err := Figure1Placement()
	if err != nil {
		return "", err
	}
	t := p.Torus()
	used, total := UsedLinks(p, alg)
	var sb strings.Builder
	fmt.Fprintf(&sb, "T^2_3 with %d processors at:", p.Size())
	for _, u := range p.Nodes() {
		fmt.Fprintf(&sb, " %v", t.Coords(u))
	}
	fmt.Fprintf(&sb, "\nrouting %s: %d of %d directed links highlighted\n", alg.Name(), len(used), total)
	type pairInfo struct {
		src, dst torus.Node
		count    float64
	}
	var pairs []pairInfo
	for _, src := range p.Nodes() {
		for _, dst := range p.Nodes() {
			if src != dst {
				pairs = append(pairs, pairInfo{src, dst, alg.PathCount(t, src, dst)})
			}
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].src != pairs[j].src {
			return pairs[i].src < pairs[j].src
		}
		return pairs[i].dst < pairs[j].dst
	})
	for _, pr := range pairs {
		fmt.Fprintf(&sb, "  %v -> %v: %g path(s)\n", t.Coords(pr.src), t.Coords(pr.dst), pr.count)
	}
	return sb.String(), nil
}
