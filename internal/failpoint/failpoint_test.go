package failpoint

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// Test sites are registered once at package level (New panics on
// duplicates), and every test disarms what it arms.
var (
	fpBasic = New("test.basic")
	fpHard  = New("test.hard")
	fpHTTP  = New("test.http")
	fpEnv   = New("test.env")
	fpRace  = New("test.race")
)

func TestDisabledIsNil(t *testing.T) {
	if err := fpBasic.Inject(); err != nil {
		t.Fatalf("disabled Inject() = %v, want nil", err)
	}
	fpHard.InjectHard() // must not panic
}

func TestErrorSpec(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.basic", "error(boom)"); err != nil {
		t.Fatal(err)
	}
	err := fpBasic.Inject()
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("Inject() = %v, want ErrInjected", err)
	}
	var fe *Error
	if !errors.As(err, &fe) || fe.Site != "test.basic" || fe.Msg != "boom" {
		t.Fatalf("error detail: %+v", fe)
	}
	if IsPartial(err) {
		t.Error("error fault misreported as partial")
	}
	if fpBasic.Hits() == 0 {
		t.Error("hit counter not incremented")
	}
}

func TestPartialSpec(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.basic", "partial"); err != nil {
		t.Fatal(err)
	}
	err := fpBasic.Inject()
	if !IsPartial(err) {
		t.Fatalf("Inject() = %v, want partial fault", err)
	}
}

func TestPanicSpec(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.basic", "panic(kaboom)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		r := recover()
		fe, ok := r.(*Error)
		if !ok || fe.Msg != "kaboom" {
			t.Fatalf("recovered %v, want injected *Error", r)
		}
	}()
	_ = fpBasic.Inject()
	t.Fatal("no panic")
}

func TestSleepSpec(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.basic", "sleep(30ms)"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := fpBasic.Inject(); err != nil {
		t.Fatalf("sleep fault returned error %v", err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Errorf("slept %v, want ≥30ms", d)
	}
}

func TestInjectHardPanicsOnError(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.hard", "error(hard)"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("InjectHard with error kind did not panic")
		}
	}()
	fpHard.InjectHard()
}

func TestCountedSpecAutoDisarms(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.basic", "2*error"); err != nil {
		t.Fatal(err)
	}
	if fpBasic.Inject() == nil || fpBasic.Inject() == nil {
		t.Fatal("first two injections should fire")
	}
	if err := fpBasic.Inject(); err != nil {
		t.Fatalf("third injection fired after count exhausted: %v", err)
	}
	for _, st := range Status() {
		if st.Name == "test.basic" && st.Enabled {
			t.Error("counted spec did not auto-disarm")
		}
	}
}

func TestSpecParsing(t *testing.T) {
	bad := []string{"", "explode", "sleep", "sleep(xyz)", "sleep(-1s)", "0*error", "x*error", "error(unclosed"}
	for _, spec := range bad {
		if err := Enable("test.basic", spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
			DisableAll()
		}
	}
	//lint:ignore failpointsite deliberately unknown site: this test asserts rejection
	if err := Enable("nope.such.site", "error"); err == nil {
		t.Error("unknown site accepted")
	}
	if err := Disable("nope.such.site"); err == nil {
		t.Error("unknown site disable accepted")
	}
}

func TestOffSpecAndDisable(t *testing.T) {
	t.Cleanup(DisableAll)
	if err := Enable("test.basic", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Enable("test.basic", "off"); err != nil {
		t.Fatal(err)
	}
	if err := fpBasic.Inject(); err != nil {
		t.Fatalf("after off: %v", err)
	}
	if err := Enable("test.basic", "error"); err != nil {
		t.Fatal(err)
	}
	if err := Disable("test.basic"); err != nil {
		t.Fatal(err)
	}
	if err := fpBasic.Inject(); err != nil {
		t.Fatalf("after Disable: %v", err)
	}
}

func TestEnableAllList(t *testing.T) {
	t.Cleanup(DisableAll)
	n, err := EnableAll("test.basic=error(a); test.env=partial ;")
	if err != nil || n != 2 {
		t.Fatalf("EnableAll = %d, %v", n, err)
	}
	if fpBasic.Inject() == nil || !IsPartial(fpEnv.Inject()) {
		t.Error("list entries not armed")
	}
	if _, err := EnableAll("garbage-without-equals"); err == nil {
		t.Error("malformed entry accepted")
	}
	if _, err := EnableAll("test.basic=explode"); err == nil {
		t.Error("bad spec in list accepted")
	}
}

func TestEnableFromEnv(t *testing.T) {
	t.Cleanup(DisableAll)
	t.Setenv(EnvVar, "test.env=error(from-env)")
	n, err := EnableFromEnv()
	if err != nil || n != 1 {
		t.Fatalf("EnableFromEnv = %d, %v", n, err)
	}
	if err := fpEnv.Inject(); err == nil || !strings.Contains(err.Error(), "from-env") {
		t.Errorf("env arming: %v", err)
	}
	t.Setenv(EnvVar, "")
	if n, err := EnableFromEnv(); n != 0 || err != nil {
		t.Errorf("empty env: %d, %v", n, err)
	}
}

func TestSitesAndStatusSorted(t *testing.T) {
	sites := Sites()
	if len(sites) < 5 {
		t.Fatalf("Sites() = %v", sites)
	}
	for i := 1; i < len(sites); i++ {
		if sites[i-1] >= sites[i] {
			t.Fatalf("Sites() not sorted: %v", sites)
		}
	}
	if Hits("nope.such.site") != 0 {
		t.Error("unknown-site Hits should be 0")
	}
}

func TestConcurrentArmDisarm(t *testing.T) {
	t.Cleanup(DisableAll)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = fpRace.Inject()
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		if err := Enable("test.race", "error"); err != nil {
			t.Error(err)
		}
		if err := Disable("test.race"); err != nil {
			t.Error(err)
		}
	}
	close(stop)
	wg.Wait()
}

func TestHTTPHandler(t *testing.T) {
	t.Cleanup(DisableAll)
	const prefix = "/debug/failpoints"
	mux := http.NewServeMux()
	h := Handler(prefix)
	mux.Handle(prefix, h)
	mux.Handle(prefix+"/", h)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	do := func(method, path, body string) (int, string) {
		t.Helper()
		req, err := http.NewRequest(method, srv.URL+path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := srv.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(data)
	}

	// List.
	if code, body := do(http.MethodGet, prefix, ""); code != http.StatusOK || !strings.Contains(body, "test.http") {
		t.Fatalf("GET list: %d %s", code, body)
	}
	// Arm via PUT.
	if code, _ := do(http.MethodPut, prefix+"/test.http", "error(via-http)"); code != http.StatusOK {
		t.Fatalf("PUT: %d", code)
	}
	if err := fpHTTP.Inject(); err == nil || !strings.Contains(err.Error(), "via-http") {
		t.Fatalf("PUT did not arm: %v", err)
	}
	// Single-site status.
	if code, body := do(http.MethodGet, prefix+"/test.http", ""); code != http.StatusOK ||
		!strings.Contains(body, `"enabled": true`) {
		t.Fatalf("GET site: %d %s", code, body)
	}
	// Disarm via DELETE.
	if code, _ := do(http.MethodDelete, prefix+"/test.http", ""); code != http.StatusOK {
		t.Fatalf("DELETE: %d", code)
	}
	if err := fpHTTP.Inject(); err != nil {
		t.Fatalf("DELETE did not disarm: %v", err)
	}
	// Errors.
	if code, _ := do(http.MethodPut, prefix+"/nope.such.site", "error"); code != http.StatusNotFound {
		t.Errorf("PUT unknown site: %d, want 404", code)
	}
	if code, _ := do(http.MethodGet, prefix+"/nope.such.site", ""); code != http.StatusNotFound {
		t.Errorf("GET unknown site: %d, want 404", code)
	}
	if code, _ := do(http.MethodDelete, prefix+"/nope.such.site", ""); code != http.StatusNotFound {
		t.Errorf("DELETE unknown site: %d, want 404", code)
	}
	if code, _ := do(http.MethodPut, prefix+"/test.http", "explode"); code != http.StatusBadRequest {
		t.Errorf("PUT bad spec: %d, want 400", code)
	}
	if code, _ := do(http.MethodDelete, prefix, ""); code != http.StatusMethodNotAllowed {
		t.Errorf("DELETE list: %d, want 405", code)
	}
	if code, _ := do(http.MethodPatch, prefix+"/test.http", ""); code != http.StatusMethodNotAllowed {
		t.Errorf("PATCH site: %d, want 405", code)
	}
}
