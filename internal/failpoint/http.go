package failpoint

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// Handler serves the /debug/failpoints control surface, meant to be
// mounted on a debug sidecar mux (never the public API mux):
//
//	GET    /debug/failpoints            list all sites (JSON array of SiteStatus)
//	GET    /debug/failpoints/{site}     one site's status
//	PUT    /debug/failpoints/{site}     arm the site; body is the raw spec
//	POST   /debug/failpoints/{site}     same as PUT
//	DELETE /debug/failpoints/{site}     disarm the site
//
// The prefix is stripped from the URL to find the site name, so the same
// handler serves both "/debug/failpoints" and "/debug/failpoints/".
func Handler(prefix string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		site := strings.Trim(strings.TrimPrefix(r.URL.Path, prefix), "/")
		switch {
		case site == "" && r.Method == http.MethodGet:
			writeJSON(w, http.StatusOK, Status())
		case site == "":
			w.Header().Set("Allow", "GET")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		case r.Method == http.MethodGet:
			for _, st := range Status() {
				if st.Name == site {
					writeJSON(w, http.StatusOK, st)
					return
				}
			}
			http.Error(w, fmt.Sprintf("unknown failpoint %q", site), http.StatusNotFound)
		case r.Method == http.MethodPut || r.Method == http.MethodPost:
			spec, err := io.ReadAll(io.LimitReader(r.Body, 4<<10))
			if err != nil {
				http.Error(w, "bad body", http.StatusBadRequest)
				return
			}
			if err := Enable(site, strings.TrimSpace(string(spec))); err != nil {
				status := http.StatusBadRequest
				if strings.Contains(err.Error(), "unknown site") {
					status = http.StatusNotFound
				}
				http.Error(w, err.Error(), status)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"site": site, "spec": strings.TrimSpace(string(spec))})
		case r.Method == http.MethodDelete:
			if err := Disable(site); err != nil {
				http.Error(w, err.Error(), http.StatusNotFound)
				return
			}
			writeJSON(w, http.StatusOK, map[string]string{"site": site, "spec": "off"})
		default:
			w.Header().Set("Allow", "GET, PUT, POST, DELETE")
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//lint:ignore errcheck-lite debug endpoint: nothing useful to do on a client write error
	_ = enc.Encode(v)
}
