// Package failpoint is the repository's fault-injection registry: named
// sites threaded through the serving stack (cache, singleflight, worker
// pool, load engine, experiment runner) that normally cost one atomic
// pointer load and do nothing, but can be armed at runtime to return
// errors, panic, inject latency, or request partial results.
//
// A site is declared once, at package level, next to the code it guards:
//
//	var fpCacheGet = failpoint.New("service.cache.get")
//
// and evaluated inline:
//
//	if err := fpCacheGet.Inject(); err != nil { ... }
//
// Sites are armed with a small spec grammar:
//
//	error            fail with a generic injected error
//	error(msg)       fail with the given message
//	panic(msg)       panic with an injected *Error
//	sleep(50ms)      sleep before proceeding (latency fault)
//	partial          succeed, but ask the site for a degraded/partial result
//	3*error(msg)     any kind, auto-disarming after 3 firings
//
// Activation paths: Enable/Disable (tests, the torusnet facade),
// EnableFromEnv (the TORUSNET_FAILPOINTS variable, "site=spec;site=spec"),
// and the HTTP handler in http.go (torusd's /debug/failpoints sidecar
// endpoint). With no failpoint armed the injection sites are free of
// locks, allocations, and branches beyond one nil check, so production
// binaries keep them compiled in.
package failpoint

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the fault class a spec arms.
type Kind int

const (
	// KindError makes Inject return an *Error.
	KindError Kind = iota
	// KindPanic makes Inject panic with an *Error.
	KindPanic
	// KindSleep makes Inject sleep for the spec's duration, then succeed.
	KindSleep
	// KindPartial makes Inject return an *Error with Partial set: the site
	// should degrade gracefully (skip a cache, truncate a table) instead of
	// failing.
	KindPartial
)

// String names the kind as it appears in specs.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindPanic:
		return "panic"
	case KindSleep:
		return "sleep"
	case KindPartial:
		return "partial"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ErrInjected is the sentinel every injected fault wraps; errors.Is(err,
// failpoint.ErrInjected) distinguishes chaos faults from organic failures.
var ErrInjected = errors.New("failpoint: injected fault")

// Error is one injected fault, carrying the site it fired at.
type Error struct {
	Site    string
	Msg     string
	Partial bool
}

func (e *Error) Error() string {
	return fmt.Sprintf("failpoint %s: %s", e.Site, e.Msg)
}

// Is makes errors.Is(err, ErrInjected) true for every injected fault.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// IsPartial reports whether err is an injected partial-result fault.
func IsPartial(err error) bool {
	var fe *Error
	return errors.As(err, &fe) && fe.Partial
}

// armed is the immutable active state of a site; swapping the pointer
// arms/disarms without locking the injection fast path.
type armed struct {
	kind  Kind
	msg   string
	delay time.Duration
	spec  string
	// remaining counts down firings when the spec had an N* prefix;
	// nil means unlimited.
	remaining *atomic.Int64
}

// F is one registered failpoint site. The zero value is not usable;
// construct with New.
type F struct {
	name  string
	state atomic.Pointer[armed]
	hits  atomic.Int64
}

// registry holds every site declared via New. Sites register at package
// init and are never removed, so the map is effectively read-only after
// program start; the mutex guards the (rare) concurrent Enable/List walks.
var registry = struct {
	mu    sync.Mutex
	sites map[string]*F
}{sites: make(map[string]*F)}

// New declares and registers a failpoint site. It panics on a duplicate
// name: sites are package-level singletons, like expvar names.
func New(name string) *F {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if _, dup := registry.sites[name]; dup {
		panic("failpoint: duplicate site " + name)
	}
	f := &F{name: name}
	registry.sites[name] = f
	return f
}

// Name returns the site name.
func (f *F) Name() string { return f.name }

// Inject evaluates the site. Disabled (the overwhelmingly common case):
// one atomic load, nil return. Armed: sleep for KindSleep (returning nil),
// return an *Error for KindError/KindPartial, panic for KindPanic.
func (f *F) Inject() error {
	a := f.state.Load()
	if a == nil {
		return nil
	}
	return f.fire(a)
}

// InjectHard is Inject for sites with no error return path (engine
// dispatch, worker merge): error-kind faults panic like panic-kind ones,
// so they still surface — through the pool's panic isolation — instead of
// being silently impossible.
func (f *F) InjectHard() {
	a := f.state.Load()
	if a == nil {
		return
	}
	if err := f.fire(a); err != nil {
		panic(err)
	}
}

// fire applies the armed fault, honoring the countdown.
func (f *F) fire(a *armed) error {
	if a.remaining != nil {
		if n := a.remaining.Add(-1); n < 0 {
			// Exhausted; disarm if nobody else has already.
			f.state.CompareAndSwap(a, nil)
			return nil
		} else if n == 0 {
			f.state.CompareAndSwap(a, nil)
		}
	}
	f.hits.Add(1)
	switch a.kind {
	case KindSleep:
		time.Sleep(a.delay)
		return nil
	case KindPanic:
		panic(&Error{Site: f.name, Msg: a.msg})
	case KindPartial:
		return &Error{Site: f.name, Msg: a.msg, Partial: true}
	default:
		return &Error{Site: f.name, Msg: a.msg}
	}
}

// Hits returns how many times the site has fired since process start
// (disarmed evaluations do not count).
func (f *F) Hits() int64 { return f.hits.Load() }

// enable arms the site from a parsed spec.
func (f *F) enable(spec string) error {
	a, err := parseSpec(spec)
	if err != nil {
		return fmt.Errorf("failpoint %s: %w", f.name, err)
	}
	f.state.Store(a)
	return nil
}

// disable disarms the site.
func (f *F) disable() { f.state.Store(nil) }

// lookup finds a registered site by name.
func lookup(name string) (*F, error) {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	f, ok := registry.sites[name]
	if !ok {
		return nil, fmt.Errorf("failpoint: unknown site %q", name)
	}
	return f, nil
}

// Enable arms the named site with a spec (see the package comment for the
// grammar). The spec "off" disables the site.
func Enable(name, spec string) error {
	f, err := lookup(name)
	if err != nil {
		return err
	}
	if strings.TrimSpace(spec) == "off" {
		f.disable()
		return nil
	}
	return f.enable(spec)
}

// Disable disarms the named site.
func Disable(name string) error {
	f, err := lookup(name)
	if err != nil {
		return err
	}
	f.disable()
	return nil
}

// DisableAll disarms every registered site (chaos-test cleanup).
func DisableAll() {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	for _, f := range registry.sites {
		f.disable()
	}
}

// Sites returns every registered site name, sorted.
func Sites() []string {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]string, 0, len(registry.sites))
	for name := range registry.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// SiteStatus is one row of Status: the site's current arming and lifetime
// hit count.
type SiteStatus struct {
	Name    string `json:"name"`
	Enabled bool   `json:"enabled"`
	Spec    string `json:"spec,omitempty"`
	Hits    int64  `json:"hits"`
}

// Status reports every registered site, sorted by name.
func Status() []SiteStatus {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	out := make([]SiteStatus, 0, len(registry.sites))
	for name, f := range registry.sites {
		st := SiteStatus{Name: name, Hits: f.hits.Load()}
		if a := f.state.Load(); a != nil {
			st.Enabled = true
			st.Spec = a.spec
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Hits returns the fire count of a named site (0 for unknown sites, so
// chaos assertions can range over Sites() without error plumbing).
func Hits(name string) int64 {
	registry.mu.Lock()
	defer registry.mu.Unlock()
	if f, ok := registry.sites[name]; ok {
		return f.hits.Load()
	}
	return 0
}

// EnvVar is the environment variable EnableFromEnv reads.
const EnvVar = "TORUSNET_FAILPOINTS"

// EnableFromEnv arms sites from the TORUSNET_FAILPOINTS environment
// variable: semicolon-separated "site=spec" entries. It returns the number
// of sites armed; an empty or unset variable is not an error.
func EnableFromEnv() (int, error) {
	return EnableAll(os.Getenv(EnvVar))
}

// EnableAll arms sites from a "site=spec;site=spec" list (the -failpoints
// flag and TORUSNET_FAILPOINTS formats). Empty entries are skipped.
func EnableAll(list string) (int, error) {
	n := 0
	for _, entry := range strings.Split(list, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		name, spec, ok := strings.Cut(entry, "=")
		if !ok {
			return n, fmt.Errorf("failpoint: malformed entry %q (want site=spec)", entry)
		}
		if err := Enable(strings.TrimSpace(name), strings.TrimSpace(spec)); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// parseSpec parses "[N*]kind[(arg)]".
func parseSpec(spec string) (*armed, error) {
	s := strings.TrimSpace(spec)
	a := &armed{spec: s}
	if head, rest, ok := strings.Cut(s, "*"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(head))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count in spec %q", spec)
		}
		a.remaining = new(atomic.Int64)
		a.remaining.Store(int64(n))
		s = strings.TrimSpace(rest)
	}
	kind := s
	arg := ""
	if open := strings.IndexByte(s, '('); open >= 0 {
		if !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("unclosed argument in spec %q", spec)
		}
		kind, arg = s[:open], s[open+1:len(s)-1]
	}
	switch kind {
	case "error":
		a.kind = KindError
		a.msg = defaultMsg(arg, "injected error")
	case "panic":
		a.kind = KindPanic
		a.msg = defaultMsg(arg, "injected panic")
	case "partial":
		a.kind = KindPartial
		a.msg = defaultMsg(arg, "injected partial result")
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return nil, fmt.Errorf("bad sleep duration in spec %q", spec)
		}
		a.kind = KindSleep
		a.delay = d
	default:
		return nil, fmt.Errorf("unknown failpoint kind %q (want error|panic|sleep|partial)", kind)
	}
	return a, nil
}

func defaultMsg(arg, fallback string) string {
	if arg == "" {
		return fallback
	}
	return arg
}
