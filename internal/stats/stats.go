// Package stats provides the small statistical toolkit the experiment
// harness relies on: summaries, percentiles, histograms, and log-log
// regression for growth-exponent estimation (the tool that turns measured
// E_max sweeps into "grows like k^{d−1}" vs "grows like k^{d+1}" claims).
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual descriptive statistics of a sample.
type Summary struct {
	N           int
	Min, Max    float64
	Mean        float64
	Std         float64
	Median, P95 float64
}

// Summarize computes a Summary. It copies the input before sorting.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	if len(xs) > 1 {
		s.Std = math.Sqrt(varSum / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Median = Percentile(sorted, 50)
	s.P95 = Percentile(sorted, 95)
	return s
}

// Percentile returns the p-th percentile (0-100) of an already sorted
// sample, with linear interpolation.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// LinearFit fits y = a + b·x by least squares and returns (a, b).
func LinearFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return math.NaN(), math.NaN()
	}
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return math.NaN(), math.NaN()
	}
	b = (n*sxy - sx*sy) / denom
	a = (sy - b*sx) / n
	return a, b
}

// GrowthExponent fits y = C·x^e on a positive-valued series by regressing
// log y on log x, returning the exponent e. It is the estimator used to
// verify that maximum loads scale as k^{d−1} for optimal placements and as
// k^{d+1} for the fully populated torus.
func GrowthExponent(xs, ys []float64) float64 {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	_, e := LinearFit(lx, ly)
	return e
}

// Histogram bins a sample into `bins` equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram builds a histogram; values at Max land in the last bin.
func NewHistogram(xs []float64, bins int) *Histogram {
	if bins < 1 {
		bins = 1
	}
	h := &Histogram{Counts: make([]int, bins)}
	if len(xs) == 0 {
		return h
	}
	h.Min, h.Max = xs[0], xs[0]
	for _, x := range xs {
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	width := (h.Max - h.Min) / float64(bins)
	for _, x := range xs {
		idx := bins - 1
		if width > 0 {
			idx = int((x - h.Min) / width)
			if idx >= bins {
				idx = bins - 1
			}
		}
		h.Counts[idx]++
	}
	return h
}

// Render draws the histogram as ASCII art, one row per bin.
func (h *Histogram) Render(width int) string {
	maxCount := 0
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	binWidth := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		lo := h.Min + float64(i)*binWidth
		fmt.Fprintf(&sb, "%10.2f | %s (%d)\n", lo, strings.Repeat("#", bar), c)
	}
	return sb.String()
}
