package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownSample(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Errorf("unexpected summary: %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std = %v", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Error("empty summary should have N=0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Mean != 7 || s.Median != 7 || s.Std != 0 {
		t.Errorf("singleton summary wrong: %+v", s)
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if got := Percentile(sorted, 0); got != 10 {
		t.Errorf("P0 = %v", got)
	}
	if got := Percentile(sorted, 100); got != 40 {
		t.Errorf("P100 = %v", got)
	}
	if got := Percentile(sorted, 50); got != 25 {
		t.Errorf("P50 = %v", got)
	}
	if !math.IsNaN(Percentile(nil, 50)) {
		t.Error("empty percentile should be NaN")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 1 + 2x
	a, b := LinearFit(xs, ys)
	if math.Abs(a-1) > 1e-12 || math.Abs(b-2) > 1e-12 {
		t.Errorf("fit (%v, %v), want (1, 2)", a, b)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if a, b := LinearFit([]float64{1}, []float64{2}); !math.IsNaN(a) || !math.IsNaN(b) {
		t.Error("underdetermined fit should be NaN")
	}
	if a, b := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); !math.IsNaN(a) || !math.IsNaN(b) {
		t.Error("vertical fit should be NaN")
	}
}

func TestGrowthExponentRecoversPowerLaw(t *testing.T) {
	fn := func(expRaw uint8) bool {
		e := float64(expRaw%60)/10 - 3 // exponents in [-3, 3)
		xs := []float64{2, 4, 8, 16, 32}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = 5 * math.Pow(x, e)
		}
		got := GrowthExponent(xs, ys)
		return math.Abs(got-e) < 1e-9
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestGrowthExponentIgnoresNonPositive(t *testing.T) {
	xs := []float64{1, 2, 4, -1, 0}
	ys := []float64{3, 6, 12, 100, 100}
	if got := GrowthExponent(xs, ys); math.Abs(got-1) > 1e-9 {
		t.Errorf("exponent = %v, want 1", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 10 {
		t.Errorf("histogram total %d, want 10", total)
	}
	if h.Counts[4] != 2 { // 8 and 9 in the last bin
		t.Errorf("last bin %d, want 2", h.Counts[4])
	}
	if h.Render(20) == "" {
		t.Error("Render empty")
	}
}

func TestHistogramDegenerate(t *testing.T) {
	h := NewHistogram([]float64{5, 5, 5}, 3)
	total := 0
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("total %d, want 3", total)
	}
	if NewHistogram(nil, 0).Counts == nil {
		t.Error("empty histogram should still allocate bins")
	}
}
