package service

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
)

// benchServer boots an in-process torusd over real HTTP with logging off,
// sized so the uncached benchmark never evicts its own working set.
func benchServer(b *testing.B) (*Server, *Client) {
	b.Helper()
	s := New(Config{CacheSize: 1 << 16})
	ts := httptest.NewServer(s.Handler())
	b.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, NewClient(ts.URL)
}

// BenchmarkAnalyzeCached measures the steady-state hot path of torusd: one
// fixed T²₈ request answered from the LRU cache on every iteration.
func BenchmarkAnalyzeCached(b *testing.B) {
	_, client := benchServer(b)
	ctx := context.Background()
	req := AnalyzeRequest{K: 8, D: 2, Placement: "linear:0", Routing: "odr"}
	if _, err := client.Analyze(ctx, req); err != nil { // prime the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Analyze(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if !resp.Cached {
			b.Fatal("expected a cache hit after priming")
		}
	}
}

// BenchmarkAnalyzeUncached measures the cold path: every iteration is a
// distinct cache key (random placement seeds on T²₈) and runs the full
// analysis pipeline.
func BenchmarkAnalyzeUncached(b *testing.B) {
	_, client := benchServer(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := AnalyzeRequest{
			K: 8, D: 2,
			Placement: fmt.Sprintf("random:8:%d", i+1),
			Routing:   "odr",
		}
		resp, err := client.Analyze(ctx, req)
		if err != nil {
			b.Fatal(err)
		}
		if resp.Cached {
			b.Fatal("uncached benchmark hit the cache; keys are not distinct")
		}
	}
}
