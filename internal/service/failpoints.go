package service

import "torusnet/internal/failpoint"

// Chaos-injection sites for the serving pipeline. Site names follow the
// repo convention <package>.<component>.<operation> (DESIGN.md §10). Each
// disarmed site costs one atomic pointer load on its path.
var (
	// fpCacheGet guards result-cache reads. error → the request fails
	// (HTTP 500); partial → the read is skipped (forced miss), modeling a
	// cache that is down but survivable.
	fpCacheGet = failpoint.New("service.cache.get")
	// fpCachePut guards result-cache fills. Any armed fault skips the
	// fill: the response still succeeds, the cache just stays cold.
	fpCachePut = failpoint.New("service.cache.put")
	// fpFlightLeader fires in the singleflight leader before compute.
	// error → the leader and every coalesced follower share the failure.
	fpFlightLeader = failpoint.New("service.flight.leader")
	// fpPoolDispatch fires inside a pool worker after it picks up a job,
	// outside the per-job panic shield: a panic spec crashes the worker
	// itself (exercising crash-respawn), a sleep spec wedges it
	// (exercising the watchdog). Uses InjectHard, so error behaves like
	// panic.
	fpPoolDispatch = failpoint.New("service.pool.dispatch")
	// fpEncode fires during response encoding; any armed fault degrades
	// the response to the plain encode-failure 500.
	fpEncode = failpoint.New("service.response.encode")
	// fpAdmission forces the admission controller's degraded mode for
	// /v1/analyze regardless of pool utilization (any armed spec except
	// sleep, which just delays the check). Deterministic lever for chaos
	// tests and the smoke script.
	fpAdmission = failpoint.New("service.admission")
	// fpJobSubmit fires in job admission, before the capacity check.
	// error → the submission fails (HTTP 500); partial → the submission is
	// shed as if the manager were at capacity (HTTP 429).
	fpJobSubmit = failpoint.New("service.jobs.submit")
	// fpJobRun fires in the job runner before the search starts. error →
	// the job reaches the failed state (the submission already answered
	// 202; the fault is only visible to pollers).
	fpJobRun = failpoint.New("service.jobs.run")
	// fpJobGC fires in the job janitor's sweep. Any armed fault skips the
	// round: finished records linger past their TTL but stay pollable —
	// expiry loss is survivable by design.
	fpJobGC = failpoint.New("service.jobs.gc")
)
