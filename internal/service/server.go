package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync/atomic"
	"time"

	"torusnet/internal/cluster"
	"torusnet/internal/failpoint"
	"torusnet/internal/load"
	"torusnet/internal/obs"
	"torusnet/internal/sweep"
)

// Config parameterizes a Server. The zero value is serviceable: every
// field has a production default.
type Config struct {
	// Workers is the number of pool goroutines executing analyses
	// concurrently; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds jobs waiting for a worker; a full queue sheds load
	// with 429. 0 means 2×Workers.
	QueueDepth int
	// AnalysisWorkers is the load-engine worker count per analysis. The
	// engine is deterministic for a fixed worker count, and this value is
	// not part of the cache key, so the server pins it: 0 means 1 (each
	// pool worker runs one single-threaded analysis; scale concurrency
	// with Workers, not with per-analysis fan-out).
	AnalysisWorkers int
	// CacheSize is the LRU capacity in entries; 0 means 512.
	CacheSize int
	// CacheTTL expires cache entries; 0 means 10 minutes, negative
	// disables expiry.
	CacheTTL time.Duration
	// RequestTimeout is the per-request compute deadline; 0 means 60s.
	RequestTimeout time.Duration
	// MaxNodes caps k^d per request; 0 means DefaultMaxNodes.
	MaxNodes int
	// MaxBodyBytes caps request bodies; 0 means 1 MiB.
	MaxBodyBytes int64
	// DisableFastPath forces the generic pair-loop load engine, disabling
	// the translation-symmetry fast path. Engine choice never changes
	// results beyond float summation order, so it is not part of cache
	// keys; the toggle exists for debugging and A/B measurement.
	DisableFastPath bool
	// EnableAnalytic turns on the closed-form admission fast lane for
	// /v1/analyze: requests whose spec proves a single linear placement
	// under ODR (or ODR-multi on odd k) are answered from the Theorem 2
	// equality in O(1), ahead of canonicalization, admission control,
	// caching, and the worker pool — so they are never degraded or 429'd,
	// and they bypass MaxNodes (only the package torus limit applies,
	// since the lane does no per-node work). Opt-in rather than default
	// because lane answers have a different shape: no per-edge fields
	// (MaxEdge, TotalLoad, and the cuts are zero). cmd/torusd enables the
	// lane by default; -no-analytic disables it.
	EnableAnalytic bool
	// DegradeWatermark is the pool-utilization fraction
	// ((running+queued)/(workers+queue)) past which /v1/analyze sheds load
	// by answering with a Monte Carlo estimate ("degraded": true) instead
	// of queueing an exact analysis. 0 means 0.9; negative disables
	// watermark-driven degradation (the service.admission failpoint can
	// still force it). Cached exact answers are served either way.
	DegradeWatermark float64
	// DegradedRounds is the Monte Carlo round count behind degraded
	// answers; 0 means 16. More rounds tighten the reported error bound at
	// proportional inline cost.
	DegradedRounds int
	// WedgeTimeout is how long one pooled job may execute before the
	// watchdog declares its worker wedged and spawns a replacement to
	// restore pool capacity. 0 means 2×RequestTimeout; negative disables
	// the watchdog.
	WedgeTimeout time.Duration
	// AccessLog receives one structured JSON line per request; nil
	// disables access logging.
	AccessLog io.Writer
	// Tracer collects per-request span trees for /debug/traces. Nil falls
	// back to obs.Default() (also typically nil outside torusd), which
	// leaves the span instrumentation inert.
	Tracer *obs.Tracer
	// SlowThreshold promotes requests slower than this to warn-level access
	// log lines and counts them in torusd_slow_requests_total. 0 disables
	// slow-request detection.
	SlowThreshold time.Duration
	// MaxJobs bounds concurrently running async search jobs (/v1/optimize);
	// submissions past it are shed with 429. 0 means 4.
	MaxJobs int
	// JobTTL is how long finished job records stay pollable before the
	// janitor expires them. 0 means 15 minutes; negative disables expiry.
	JobTTL time.Duration
	// JobTimeout is the per-job search deadline; a job past it fails with a
	// timeout error. 0 means 5 minutes.
	JobTimeout time.Duration
	// Cluster, when non-nil, enables the sharded peer-fill stage: on a
	// local cache miss for a key homed on another peer, the flight leader
	// fetches the answer from that peer before falling back to local
	// compute. Nil (the default) is single-node mode, which adds zero
	// allocations to the request path. See internal/cluster.
	Cluster *cluster.Cluster
	// OnCompute, when set, is invoked inside the pooled computation with
	// the cache key before any work runs. It exists for tests and the
	// multi-node harness (proving exactly-one-compute cluster-wide);
	// production leaves it nil.
	OnCompute func(key string)
}

// loadOptions returns the load-engine options the server pins per analysis.
func (c Config) loadOptions() load.Options {
	opts := load.Options{Workers: c.AnalysisWorkers}
	if c.DisableFastPath {
		opts.FastPath = load.FastPathOff
	}
	return opts
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.AnalysisWorkers <= 0 {
		c.AnalysisWorkers = 1
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 512
	}
	if c.CacheTTL == 0 {
		c.CacheTTL = 10 * time.Minute
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 60 * time.Second
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = DefaultMaxNodes
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DegradeWatermark == 0 {
		c.DegradeWatermark = 0.9
	}
	if c.DegradedRounds <= 0 {
		c.DegradedRounds = 16
	}
	if c.WedgeTimeout == 0 {
		c.WedgeTimeout = 2 * c.RequestTimeout
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4
	}
	if c.JobTTL == 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 5 * time.Minute
	}
	return c
}

// Server is the torusd HTTP service: validation and canonicalization in
// front, then cache → coalescing → bounded pool around the analysis
// engines. See the package comment for the pipeline.
type Server struct {
	cfg     Config
	mux     *http.ServeMux
	cache   *lruCache
	flight  *flightGroup
	pool    *workerPool
	jobs    *jobManager
	metrics *metrics
	logger  *slog.Logger
	httpSrv *http.Server
	started time.Time

	// inlineRunning counts degraded Monte Carlo answers currently computing
	// inline on handler goroutines — work the pool gauges cannot see, kept
	// separate so operators can tell shed load from pooled load.
	inlineRunning atomic.Int64

	// onCompute, when set, is invoked inside the pooled computation before
	// any work runs. It exists for tests (coalescing and panic-isolation
	// need a deterministic hook); production leaves it nil.
	onCompute func(key string)
}

// New builds a Server from cfg (see Config for defaults). Call Shutdown
// (or Close) when done to stop the worker pool.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ttl := cfg.CacheTTL
	if ttl < 0 {
		ttl = 0 // negative disables expiry
	}
	m := newMetrics()
	s := &Server{
		cfg:     cfg,
		mux:     http.NewServeMux(),
		cache:   newLRUCache(cfg.CacheSize, ttl),
		flight:  newFlightGroup(),
		pool:    newWorkerPool(cfg.Workers, cfg.QueueDepth, cfg.WedgeTimeout, m.queueWait.ObserveDuration),
		jobs:    newJobManager(cfg, m),
		metrics: m,
		started: time.Now(),
	}
	s.metrics.vars.Set("pool_worker_restarts", expvar.Func(func() any { return s.pool.restarts.Load() }))
	s.metrics.vars.Set("pool_worker_replacements", expvar.Func(func() any { return s.pool.replacements.Load() }))
	s.metrics.vars.Set("pool_utilization", expvar.Func(func() any { return s.pool.utilization() }))
	s.metrics.vars.Set("pool_running", expvar.Func(func() any { return s.pool.running.Load() }))
	s.metrics.vars.Set("pool_queued", expvar.Func(func() any { return s.pool.queued.Load() }))
	s.metrics.vars.Set("degraded_inline_running", expvar.Func(func() any { return s.inlineRunning.Load() }))
	s.metrics.vars.Set("jobs_running", expvar.Func(func() any { return s.jobs.runningCount() }))
	s.metrics.vars.Set("jobs_tracked", expvar.Func(func() any { return s.jobs.tracked() }))
	if cfg.Cluster != nil {
		s.metrics.vars.Set("cluster", cfg.Cluster.Vars())
	}
	s.onCompute = cfg.OnCompute
	if cfg.AccessLog != nil {
		s.logger = slog.New(slog.NewJSONHandler(cfg.AccessLog, nil))
	}
	if cfg.Cluster != nil {
		s.mux.HandleFunc("POST "+cluster.ReplicaPath, s.handleReplica)
	}
	s.mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	s.mux.HandleFunc("POST /v1/bounds", s.handleBounds)
	s.mux.HandleFunc("POST /v1/bisect", s.handleBisect)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	s.mux.HandleFunc("GET /v1/experiments", s.handleExperimentList)
	s.mux.HandleFunc("POST /v1/experiments/{id}", s.handleExperimentRun)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /debug/vars", s.handleDebugVars)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.httpSrv = &http.Server{Handler: s.Handler()}
	return s
}

// tracer returns the configured tracer, falling back to the process
// default. Nil (the common test state) leaves span instrumentation inert.
func (s *Server) tracer() *obs.Tracer {
	if s.cfg.Tracer != nil {
		return s.cfg.Tracer
	}
	return obs.Default()
}

// degradedHeader marks load-shed responses so the outermost middleware —
// which cannot see response bodies — can log and trace degradation without
// re-parsing JSON. Clients may also read it.
const degradedHeader = "X-Torusd-Degraded"

// PeerHopHeader marks a request as a cluster fill hop: it was sent by a
// peer filling its own cache, not by an end client. A server receiving it
// answers from local cache or compute and never fills from a peer in turn,
// bounding every request to at most one intra-cluster hop even when ring
// views disagree during membership skew. NewPeerFillClient sets it on
// every request.
const PeerHopHeader = "X-Torusd-Peer-Hop"

// ReplicaHeader marks a write-through replica put from a peer's flight
// leader: the body is a cluster.ReplicaPut whose exact result the receiver
// stores without re-filling or recomputing. NewPeerFillClient sets it on
// requests to cluster.ReplicaPath; the replica handler rejects puts
// without it so the endpoint cannot be driven by ordinary clients by
// accident.
const ReplicaHeader = "X-Torusd-Replica"

// Handler returns the full middleware-wrapped handler, suitable for
// httptest servers and embedding. The middleware owns request identity and
// timing: it seeds (or mints) the W3C traceparent, opens the root span,
// labels the request context for CPU profiles, echoes the traceparent on
// the response, and emits metrics plus one structured access-log line.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.metrics.add(mRequests, 1)
		s.metrics.add(mInFlight, 1)
		defer s.metrics.add(mInFlight, -1)
		s.metrics.endpoint(r.Method + " " + r.URL.Path)

		ctx := r.Context()
		traceID, _ := obs.ParseTraceparent(r.Header.Get(obs.TraceparentHeader))
		tr := s.tracer()
		if tr != nil || obs.CountersEnabled() {
			// Label the request context so CPU samples anywhere downstream
			// (pool workers included, via pprof.Do) attribute to the
			// endpoint. Skipped when observability is off: WithLabels
			// allocates.
			ctx = pprof.WithLabels(ctx, pprof.Labels("endpoint", r.URL.Path))
		}
		ctx, sp := tr.Root(ctx, "http.request", traceID)
		sp.SetAttr("method", r.Method)
		sp.SetAttr("path", r.URL.Path)
		if id := obs.TraceIDFromContext(ctx); id != "" {
			traceID = id
		}
		if traceID == "" {
			// Tracing is off; still mint a request ID so responses and logs
			// correlate.
			traceID = obs.NewTraceID()
		}
		respSpan := sp.SpanID()
		if respSpan == 0 {
			respSpan = obs.NewSpanID()
		}
		w.Header().Set(obs.TraceparentHeader, obs.FormatTraceparent(traceID, respSpan))

		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r.WithContext(ctx))

		elapsed := time.Since(start)
		s.metrics.add(mLatencyMSTotal, elapsed.Milliseconds())
		s.metrics.reqSeconds.ObserveDuration(elapsed)
		if rec.status >= 400 {
			s.metrics.add(mErrors, 1)
		}
		degraded := rec.Header().Get(degradedHeader) != ""
		slow := s.cfg.SlowThreshold > 0 && elapsed >= s.cfg.SlowThreshold
		if slow {
			s.metrics.add(mSlow, 1)
		}
		sp.SetAttrInt("status", int64(rec.status))
		sp.SetAttrBool("degraded", degraded)
		sp.End()
		if s.logger != nil {
			level := slog.LevelInfo
			if slow {
				level = slog.LevelWarn
			}
			s.logger.LogAttrs(r.Context(), level, "request",
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", rec.status),
				slog.Int64("dur_us", elapsed.Microseconds()),
				slog.Int("bytes", rec.bytes),
				slog.String("remote", r.RemoteAddr),
				slog.String("trace", traceID),
				slog.Bool("degraded", degraded),
				slog.Bool("slow", slow),
			)
		}
	})
}

// Serve accepts connections on ln until Shutdown. It returns
// http.ErrServerClosed after a graceful shutdown, like net/http.
func (s *Server) Serve(ln net.Listener) error {
	return s.httpSrv.Serve(ln)
}

// Shutdown gracefully drains in-flight requests (bounded by ctx), then
// stops the worker pool and cancels every async search job.
func (s *Server) Shutdown(ctx context.Context) error {
	err := s.httpSrv.Shutdown(ctx)
	s.pool.close()
	s.jobs.close()
	return err
}

// Close releases the worker pool and the job manager without HTTP
// draining — for tests and embedders that never called Serve.
func (s *Server) Close() {
	s.pool.close()
	s.jobs.close()
}

// statusRecorder captures the status code and body size for metrics and
// access logs.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusRecorder) Write(b []byte) (int, error) {
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// cacheGet reads the result cache through its failpoint: an injected
// partial fault degrades to a forced miss (the cache is "down" but the
// request survives), an injected error fails the read.
func (s *Server) cacheGet(key string) (any, bool, error) {
	if err := fpCacheGet.Inject(); err != nil {
		if failpoint.IsPartial(err) {
			return nil, false, nil
		}
		return nil, false, err
	}
	v, age, ok := s.cache.get(key)
	if ok {
		s.metrics.cacheAge.ObserveDuration(age)
	}
	return v, ok, nil
}

// cachePut fills the result cache through its failpoint: any injected
// fault skips the fill — the response still succeeds, the cache stays
// cold.
func (s *Server) cachePut(key string, v any) {
	if err := fpCachePut.Inject(); err != nil {
		return
	}
	s.cache.put(key, v)
}

// peerFill is the cluster fill stage's per-request plan, built by fillFor
// only when clustering is enabled (single-node requests carry nil and pay
// nothing). hop means the request is itself a fill from a peer, so the
// loop guard forbids filling again.
type peerFill struct {
	path    string
	payload []byte
	decode  func([]byte) (any, error)
	hop     bool
}

// fillFor plans the peer-fill stage for one request: nil outside cluster
// mode, a hop-marked plan for requests arriving from peers (each counted
// in peer_hops; the loop guard forbids filling again, but the path and
// payload still ride along so the flight leader can write-through-
// replicate its result), and otherwise the path + canonical payload +
// decoder the flight leader needs to fetch the key from its owners.
// req must be a pointer to the canonicalized request (a pointer converts
// to any without allocating; the canonical form keeps peer cache keys
// byte-identical to local ones).
func (s *Server) fillFor(r *http.Request, path string, req any, decode func([]byte) (any, error)) *peerFill {
	if s.cfg.Cluster == nil {
		return nil
	}
	hop := r.Header.Get(PeerHopHeader) != ""
	if hop {
		s.metrics.add(mPeerHops, 1)
	}
	payload, err := json.Marshal(req)
	if err != nil {
		// A canonical request that fails to marshal cannot be forwarded or
		// replicated; serve it locally.
		return &peerFill{hop: true}
	}
	return &peerFill{path: path, payload: payload, decode: decode, hop: hop}
}

// runPeerFill executes the fill plan inside the flight leader under the
// cluster.peer_fill span. ok reports a successful fill (the value is
// cached and served); false means compute locally — the availability-first
// contract of the cluster layer.
func (s *Server) runPeerFill(ctx context.Context, key string, f *peerFill) (any, bool) {
	start := time.Now()
	pctx, sp := obs.Start(ctx, "cluster.peer_fill")
	defer sp.End()
	v, served, err := s.cfg.Cluster.Fill(pctx, key, f.path, f.payload, f.decode)
	sp.SetAttrBool("served", served)
	if err != nil {
		sp.SetAttr("error", err.Error())
		s.metrics.add(mPeerFillErrors, 1)
	}
	if !served {
		return nil, false
	}
	s.metrics.peerFill.ObserveDuration(time.Since(start))
	s.metrics.add(mPeerFills, 1)
	s.cachePut(key, v)
	return v, true
}

// replicate write-through-replicates a flight leader's exact result to
// key's other owners (best effort, under the cluster.replicate span) and,
// when the request crossed the hot threshold, pins the value in the local
// hot store so this node serves the key without cache or pool involvement.
// No-op outside cluster mode or when the plan carries no canonical payload.
func (s *Server) replicate(ctx context.Context, key string, fill *peerFill, v any, hot bool) {
	cl := s.cfg.Cluster
	if cl == nil || fill == nil || fill.path == "" {
		return
	}
	if hot {
		cl.HotPut(key, v)
	}
	result, err := json.Marshal(v)
	if err != nil {
		return
	}
	rctx, sp := obs.Start(ctx, "cluster.replicate")
	defer sp.End()
	sent := cl.Replicate(rctx, key, fill.path, fill.payload, result, hot)
	sp.SetAttrInt("sent", int64(sent))
	sp.SetAttrBool("hot", hot)
}

// execute is the shared hot store → cache → coalesce → [peer fill] → pool
// path of every POST endpoint, with one span per pipeline stage
// (cache.get, flight.do, cluster.peer_fill, pool.submit, pool.run,
// cluster.replicate) recorded under any active trace. fill is the
// peer-fill plan from fillFor (nil in single-node mode); placing the fill
// inside the flight leader threads the singleflight through the cluster,
// so N nodes asking for one key still yield one computation cluster-wide,
// and the leader write-through-replicates its exact result to the key's
// other owners. compute receives the trace-carrying context and must
// return an immutable value; cached reports whether this caller was served
// from the hot store or result cache.
func (s *Server) execute(ctx context.Context, key string, fill *peerFill, compute func(context.Context) (any, error)) (val any, cached bool, err error) {
	hotCrossed := false
	if cl := s.cfg.Cluster; cl != nil {
		if v, ok := cl.HotGet(key); ok {
			s.metrics.add(mHotHits, 1)
			cl.TouchHot(key)
			return v, true, nil
		}
		hotCrossed = cl.TouchHot(key)
	}
	_, csp := obs.Start(ctx, "cache.get")
	v, ok, err := s.cacheGet(key)
	csp.SetAttrBool("hit", ok)
	csp.End()
	if err != nil {
		return nil, false, err
	}
	if ok {
		s.metrics.add(mCacheHits, 1)
		if hotCrossed {
			s.replicate(ctx, key, fill, v, true)
		}
		return v, true, nil
	}
	s.metrics.add(mCacheMisses, 1)
	fctx, fsp := obs.Start(ctx, "flight.do")
	defer fsp.End()
	v, err, shared := s.flight.do(key, func() (any, error) {
		if err := fpFlightLeader.Inject(); err != nil && !failpoint.IsPartial(err) {
			return nil, err
		}
		// Double-check under the flight: a caller that lost the
		// cache-check/flight race to a just-finished leader finds the
		// fresh entry here instead of recomputing.
		if v, ok, err := s.cacheGet(key); err != nil {
			return nil, err
		} else if ok {
			s.metrics.add(mCacheHits, 1)
			return v, nil
		}
		if fill != nil && !fill.hop {
			if v, ok := s.runPeerFill(fctx, key, fill); ok {
				if hotCrossed {
					s.replicate(fctx, key, fill, v, true)
				}
				return v, nil
			}
		}
		pctx, psp := obs.Start(fctx, "pool.submit")
		defer psp.End()
		v, err := s.pool.submit(fctx, func() (any, error) {
			rctx, rsp := obs.Start(pctx, "pool.run")
			defer rsp.End()
			if s.onCompute != nil {
				s.onCompute(key)
			}
			return compute(rctx)
		})
		if err == nil {
			s.cachePut(key, v)
			s.replicate(fctx, key, fill, v, hotCrossed)
		}
		return v, err
	})
	fsp.SetAttrBool("shared", shared)
	if shared {
		s.metrics.add(mCoalesced, 1)
	}
	return v, false, err
}

// shouldDegrade is the admission controller: /v1/analyze sheds to a Monte
// Carlo answer when the pool is past the configured watermark, or when the
// service.admission failpoint forces it.
func (s *Server) shouldDegrade() bool {
	if err := fpAdmission.Inject(); err != nil {
		return true
	}
	return s.cfg.DegradeWatermark > 0 && s.pool.utilization() >= s.cfg.DegradeWatermark
}

// readRequest enforces the body cap and strict JSON decoding; on failure
// it writes the 400 and reports false.
func (s *Server) readRequest(w http.ResponseWriter, r *http.Request, v any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := decodeStrict(body, v); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return false
	}
	return true
}

// failCompute maps a compute-path error to its HTTP status and writes it.
func (s *Server) failCompute(w http.ResponseWriter, err error) {
	var pe *panicError
	switch {
	case errors.Is(err, errQueueFull):
		s.metrics.add(mQueueFull, 1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.metrics.add(mTimeouts, 1)
		s.writeError(w, http.StatusGatewayTimeout,
			fmt.Errorf("service: analysis exceeded the %s request deadline", s.cfg.RequestTimeout))
	case errors.As(err, &pe):
		s.metrics.add(mPanics, 1)
		s.writeError(w, http.StatusInternalServerError, pe)
	case errors.Is(err, errPoolClosed):
		s.writeError(w, http.StatusServiceUnavailable, err)
	default:
		s.writeError(w, http.StatusInternalServerError, err)
	}
}

// writeJSON writes v with the given status; marshal failures degrade to a
// plain 500.
func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	err := enc.Encode(v)
	if err == nil {
		err = fpEncode.Inject()
	}
	if err != nil {
		http.Error(w, `{"error":"service: response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.metrics.add(mWriteErrors, 1)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	s.writeJSON(w, status, ErrorResponse{Error: err.Error()})
}

// requestContext attaches the per-request compute deadline.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	if resp, ok := s.tryAnalytic(r.Context(), req); ok {
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	if err := req.Canonicalize(s.cfg.MaxNodes); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	key := req.CacheKey()
	if s.shouldDegrade() {
		// Cached exact answers are free — serve them even under pressure.
		_, csp := obs.Start(ctx, "cache.get")
		v, ok, cerr := s.cacheGet(key)
		csp.SetAttrBool("hit", cerr == nil && ok)
		csp.End()
		if cerr == nil && ok {
			s.metrics.add(mCacheHits, 1)
			resp := v.(AnalyzeResponse)
			resp.Cached = true
			s.writeJSON(w, http.StatusOK, resp)
			return
		}
		// Shed: answer inline with a Monte Carlo estimate, bypassing the
		// saturated pool. Degraded answers are never cached — the next
		// uncontended request computes and caches the exact result. The
		// cache miss counts like any other so hit-rate math stays honest
		// under pressure, and the inline gauge (not the pool gauges —
		// no pool job exists) accounts for the work.
		s.metrics.add(mCacheMisses, 1)
		s.metrics.add(mDegraded, 1)
		s.inlineRunning.Add(1)
		resp, derr := computeDegradedAnalyze(ctx, req, s.cfg.loadOptions(), s.cfg.DegradedRounds)
		s.inlineRunning.Add(-1)
		if derr != nil {
			s.failCompute(w, derr)
			return
		}
		s.metrics.degradedErr.Observe(resp.ErrorBound)
		w.Header().Set(degradedHeader, "true")
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	v, cached, err := s.execute(ctx, key, s.fillFor(r, "/v1/analyze", &req, decodeAnalyzeFill), func(cctx context.Context) (any, error) {
		resp, err := computeAnalyze(cctx, req, s.cfg.loadOptions())
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
	if err != nil {
		s.failCompute(w, err)
		return
	}
	resp := v.(AnalyzeResponse) // value copy; safe to stamp per-caller fields
	resp.Cached = cached
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBounds(w http.ResponseWriter, r *http.Request) {
	var req BoundsRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	if err := req.Canonicalize(s.cfg.MaxNodes); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	v, cached, err := s.execute(ctx, req.CacheKey(), s.fillFor(r, "/v1/bounds", &req, decodeBoundsFill), func(cctx context.Context) (any, error) {
		resp, err := computeBounds(cctx, req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
	if err != nil {
		s.failCompute(w, err)
		return
	}
	resp := v.(BoundsResponse)
	resp.Cached = cached
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleBisect(w http.ResponseWriter, r *http.Request) {
	var req BisectRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	if err := req.Canonicalize(s.cfg.MaxNodes); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	v, cached, err := s.execute(ctx, req.CacheKey(), s.fillFor(r, "/v1/bisect", &req, decodeBisectFill), func(cctx context.Context) (any, error) {
		resp, err := computeBisect(cctx, req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
	if err != nil {
		s.failCompute(w, err)
		return
	}
	resp := v.(BisectResponse)
	resp.Cached = cached
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleExperimentList(w http.ResponseWriter, r *http.Request) {
	all := sweep.All()
	infos := make([]ExperimentInfo, 0, len(all))
	for _, e := range all {
		infos = append(infos, ExperimentInfo{ID: e.ID, Title: e.Title, PaperRef: e.PaperRef})
	}
	s.writeJSON(w, http.StatusOK, infos)
}

func (s *Server) handleExperimentRun(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	e, ok := sweep.ByID(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown experiment %q", id))
		return
	}
	var req ExperimentRequest
	// An empty body selects the quick scale; anything present must decode.
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(bytes.TrimSpace(data)) > 0 {
		if err := decodeStrict(bytes.NewReader(data), &req); err != nil {
			s.writeError(w, http.StatusBadRequest, err)
			return
		}
	}
	if err := req.Canonicalize(); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	key := fmt.Sprintf("experiment|%s|%s", e.ID, req.Scale)
	v, cached, err := s.execute(ctx, key, s.fillFor(r, "/v1/experiments/"+id, &req, decodeExperimentFill), func(cctx context.Context) (any, error) {
		resp, err := computeExperiment(cctx, e, req.Scale)
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
	if err != nil {
		s.failCompute(w, err)
		return
	}
	resp := v.(ExperimentRunResponse)
	resp.Cached = cached
	s.writeJSON(w, http.StatusOK, resp)
}

// handleReplica accepts a write-through replica put from a peer's flight
// leader: it derives the cache key from the put's own canonical payload —
// never trusting a client-supplied key, so a put can only fill the entry
// its payload hashes to — validates the exact result body with the same
// decoder the fill path uses (degraded bodies are rejected), and stores
// it. Hot puts are additionally pinned in the hot store, spreading a hot
// key across all its owners.
func (s *Server) handleReplica(w http.ResponseWriter, r *http.Request) {
	if r.Header.Get(ReplicaHeader) == "" {
		s.writeError(w, http.StatusBadRequest,
			errors.New("service: replica puts require the "+ReplicaHeader+" header"))
		return
	}
	var put cluster.ReplicaPut
	if !s.readRequest(w, r, &put) {
		return
	}
	key, v, err := s.decodeReplica(put)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	s.cachePut(key, v)
	if put.Hot {
		s.cfg.Cluster.HotPut(key, v)
	}
	s.metrics.add(mReplicaStores, 1)
	s.writeJSON(w, http.StatusOK, struct {
		Stored bool   `json:"stored"`
		Key    string `json:"key"`
	}{true, key})
}

// decodeReplica maps a replica put to its server-derived cache key and
// typed value, mirroring each endpoint's canonicalization so replica keys
// are byte-identical to locally computed ones.
func (s *Server) decodeReplica(put cluster.ReplicaPut) (string, any, error) {
	switch {
	case put.Path == "/v1/analyze":
		var req AnalyzeRequest
		if err := decodeStrict(bytes.NewReader(put.Payload), &req); err != nil {
			return "", nil, err
		}
		if err := req.Canonicalize(s.cfg.MaxNodes); err != nil {
			return "", nil, err
		}
		v, err := decodeAnalyzeFill(put.Result)
		if err != nil {
			return "", nil, err
		}
		return req.CacheKey(), v, nil
	case put.Path == "/v1/bounds":
		var req BoundsRequest
		if err := decodeStrict(bytes.NewReader(put.Payload), &req); err != nil {
			return "", nil, err
		}
		if err := req.Canonicalize(s.cfg.MaxNodes); err != nil {
			return "", nil, err
		}
		v, err := decodeBoundsFill(put.Result)
		if err != nil {
			return "", nil, err
		}
		return req.CacheKey(), v, nil
	case put.Path == "/v1/bisect":
		var req BisectRequest
		if err := decodeStrict(bytes.NewReader(put.Payload), &req); err != nil {
			return "", nil, err
		}
		if err := req.Canonicalize(s.cfg.MaxNodes); err != nil {
			return "", nil, err
		}
		v, err := decodeBisectFill(put.Result)
		if err != nil {
			return "", nil, err
		}
		return req.CacheKey(), v, nil
	case strings.HasPrefix(put.Path, "/v1/experiments/"):
		id := strings.TrimPrefix(put.Path, "/v1/experiments/")
		e, ok := sweep.ByID(id)
		if !ok {
			return "", nil, fmt.Errorf("service: replica put for unknown experiment %q", id)
		}
		var req ExperimentRequest
		if len(bytes.TrimSpace(put.Payload)) > 0 {
			if err := decodeStrict(bytes.NewReader(put.Payload), &req); err != nil {
				return "", nil, err
			}
		}
		if err := req.Canonicalize(); err != nil {
			return "", nil, err
		}
		v, err := decodeExperimentFill(put.Result)
		if err != nil {
			return "", nil, err
		}
		return fmt.Sprintf("experiment|%s|%s", e.ID, req.Scale), v, nil
	}
	return "", nil, fmt.Errorf("service: replica put for unknown path %q", put.Path)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, HealthResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.started).Seconds(),
		Experiments:   len(sweep.All()),
	})
}

// handleReadyz is the readiness half of the liveness/readiness split:
// /healthz answers "the process is alive" and never fails; /readyz
// answers "route traffic here". In single-node mode a serving process is
// always ready. In cluster mode readiness reflects ring join state, and a
// not-ready node answers 503 so load balancers and the peer readiness
// probe (cluster.PeerTransport.Ready) keep it out of rotation.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	resp := ReadyResponse{Ready: true, Mode: "single"}
	if cl := s.cfg.Cluster; cl != nil {
		resp.Mode = "cluster"
		resp.Ready = cl.Ready()
		resp.Self = cl.Self()
		resp.Epoch = cl.Epoch()
		resp.Replication = cl.Replication()
		resp.Peers = len(cl.Status().Peers)
		resp.PeersDown = cl.DownPeers()
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	s.writeJSON(w, status, resp)
}

// handleDebugVars serves the server's own expvar map under the "torusd"
// key. Unlike expvar.Handler it does not touch the process-global
// namespace, so every Server instance reports only its own counters.
func (s *Server) handleDebugVars(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	buf.WriteString("{\"torusd\": ")
	buf.WriteString(s.metrics.vars.String())
	buf.WriteString("}\n")
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.metrics.add(mWriteErrors, 1)
	}
}

// ExpvarMap exposes the server's metrics map, letting cmd/torusd publish
// it into the process-global expvar namespace.
func (s *Server) ExpvarMap() *expvar.Map { return s.metrics.vars }
