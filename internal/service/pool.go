package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
)

// errQueueFull is returned by submit when the pending-job queue is at
// capacity; the HTTP layer maps it to 429 + Retry-After.
var errQueueFull = errors.New("service: worker queue full")

// errPoolClosed is returned by submit after close; it can only surface on
// a request that raced graceful shutdown.
var errPoolClosed = errors.New("service: worker pool closed")

// panicError wraps a panic recovered inside a pooled computation so one
// poisoned request cannot take the process down; the HTTP layer maps it
// to 500.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("service: analysis panicked: %v", e.value)
}

// workerPool runs computations on a fixed set of goroutines with a bounded
// pending queue — the service's backpressure point. Each job's result
// travels over a per-job buffered channel so a worker never blocks on a
// caller that has already timed out.
type workerPool struct {
	mu     sync.Mutex
	closed bool
	jobs   chan poolJob
	wg     sync.WaitGroup
}

type poolJob struct {
	ctx context.Context
	fn  func() (any, error)
	res chan poolResult // buffered, capacity 1
}

type poolResult struct {
	val any
	err error
}

func newWorkerPool(workers, queue int) *workerPool {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &workerPool{jobs: make(chan poolJob, queue)}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		//lint:ignore syncmisuse workers are joined in (*workerPool).close via wg.Wait
		go p.worker()
	}
	return p
}

func (p *workerPool) worker() {
	defer p.wg.Done()
	for j := range p.jobs {
		if err := j.ctx.Err(); err != nil {
			// The caller gave up while the job sat in the queue; skip the
			// work instead of computing for nobody.
			j.res <- poolResult{err: err}
			continue
		}
		j.res <- runShielded(j.fn)
	}
}

// runShielded executes fn, converting a panic into a *panicError.
func runShielded(fn func() (any, error)) (res poolResult) {
	defer func() {
		if r := recover(); r != nil {
			res = poolResult{err: &panicError{value: r, stack: debug.Stack()}}
		}
	}()
	v, err := fn()
	return poolResult{val: v, err: err}
}

// submit enqueues fn and waits for its result or the context. It never
// blocks on a full queue: callers get errQueueFull immediately so the HTTP
// layer can shed load.
func (p *workerPool) submit(ctx context.Context, fn func() (any, error)) (any, error) {
	j := poolJob{ctx: ctx, fn: fn, res: make(chan poolResult, 1)}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPoolClosed
	}
	select {
	case p.jobs <- j:
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return nil, errQueueFull
	}
	select {
	case r := <-j.res:
		return r.val, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// close stops intake and waits for the workers to drain the queue.
func (p *workerPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
