package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"torusnet/internal/obs"
)

// errQueueFull is returned by submit when the pending-job queue is at
// capacity; the HTTP layer maps it to 429 + Retry-After.
var errQueueFull = errors.New("service: worker queue full")

// errPoolClosed is returned by submit after close; it can only surface on
// a request that raced graceful shutdown.
var errPoolClosed = errors.New("service: worker pool closed")

// panicError wraps a panic recovered inside a pooled computation so one
// poisoned request cannot take the process down; the HTTP layer maps it
// to 500.
type panicError struct {
	value any
	stack []byte
}

func (e *panicError) Error() string {
	return fmt.Sprintf("service: analysis panicked: %v", e.value)
}

// workerPool runs computations on a fixed set of goroutines with a bounded
// pending queue — the service's backpressure point. Each job's result
// travels over a per-job buffered channel so a worker never blocks on a
// caller that has already timed out.
//
// The pool self-heals two worker failure modes:
//
//   - Crash: a panic escaping the per-job shield (only possible through the
//     service.pool.dispatch failpoint today, but the recovery is generic)
//     delivers a panicError to the job and spawns a replacement worker that
//     inherits the crashed worker's WaitGroup slot.
//   - Wedge: the watchdog goroutine scans running jobs; one running longer
//     than wedgeTimeout is marked abandoned and a replacement worker is
//     spawned (with its own WaitGroup slot) so pool capacity recovers while
//     the wedged worker is stuck. When the wedged worker finally finishes
//     it delivers its (now unwanted) result and retires instead of taking
//     jobs a replacement already covers.
type workerPool struct {
	mu     sync.Mutex
	closed bool
	jobs   chan *poolJob
	wg     sync.WaitGroup

	workers int // configured worker count (capacity denominator)

	queued  atomic.Int64 // jobs accepted but not yet picked up
	running atomic.Int64 // jobs currently executing

	restarts     atomic.Int64 // workers respawned after a crash
	replacements atomic.Int64 // workers replaced by the watchdog

	inflightMu sync.Mutex
	inflight   map[*poolJob]time.Time // running job → start time

	wedgeTimeout time.Duration
	watchStop    chan struct{}
	watchDone    chan struct{}

	// onQueueWait, when set, receives each job's queue-wait duration (time
	// between submit and a worker picking it up) — the server feeds it into
	// the queue-wait histogram.
	onQueueWait func(time.Duration)
}

type poolJob struct {
	ctx      context.Context
	fn       func() (any, error)
	res      chan poolResult // buffered, capacity 1
	enqueued time.Time       // when submit accepted the job
	// abandoned is set by the watchdog when it replaces the worker running
	// this job; the wedged worker checks it on completion to retire.
	abandoned atomic.Bool
}

type poolResult struct {
	val any
	err error
}

// jobOutcome tells the worker loop what to do after running one job.
type jobOutcome int

const (
	// jobOK: keep taking jobs.
	jobOK jobOutcome = iota
	// jobRetire: a replacement owns this worker's role (watchdog
	// replacement while wedged); release the WaitGroup slot and exit.
	jobRetire
	// jobCrashed: the worker panicked outside the job shield and already
	// spawned a replacement inheriting its WaitGroup slot; exit without
	// releasing it.
	jobCrashed
)

// newWorkerPool builds the pool. wedgeTimeout <= 0 disables the watchdog;
// onQueueWait (optional, nil to disable) observes per-job queue waits.
func newWorkerPool(workers, queue int, wedgeTimeout time.Duration, onQueueWait func(time.Duration)) *workerPool {
	if workers <= 0 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	p := &workerPool{
		jobs:         make(chan *poolJob, queue),
		workers:      workers,
		inflight:     make(map[*poolJob]time.Time),
		wedgeTimeout: wedgeTimeout,
		watchStop:    make(chan struct{}),
		watchDone:    make(chan struct{}),
		onQueueWait:  onQueueWait,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		//lint:ignore syncmisuse workers are joined in (*workerPool).close via wg.Wait
		go p.worker()
	}
	if wedgeTimeout > 0 {
		//lint:ignore syncmisuse watchdog is joined in (*workerPool).close via watchDone
		go p.watchdog()
	} else {
		close(p.watchDone)
	}
	return p
}

func (p *workerPool) worker() {
	for j := range p.jobs {
		p.queued.Add(-1)
		if p.onQueueWait != nil && !j.enqueued.IsZero() {
			p.onQueueWait(time.Since(j.enqueued))
		}
		if err := j.ctx.Err(); err != nil {
			// The caller gave up while the job sat in the queue; skip the
			// work instead of computing for nobody.
			j.res <- poolResult{err: err}
			continue
		}
		switch p.runJob(j) {
		case jobOK:
		case jobRetire:
			p.wg.Done()
			return
		case jobCrashed:
			return
		}
	}
	p.wg.Done()
}

// runJob executes one job with crash recovery. The outcome is named so the
// deferred recovery can rewrite it after a panic.
func (p *workerPool) runJob(j *poolJob) (outcome jobOutcome) {
	p.running.Add(1)
	p.inflightMu.Lock()
	p.inflight[j] = time.Now()
	p.inflightMu.Unlock()
	outcome = jobCrashed
	defer func() {
		p.inflightMu.Lock()
		delete(p.inflight, j)
		p.inflightMu.Unlock()
		p.running.Add(-1)
		if outcome != jobCrashed {
			return
		}
		// The worker itself panicked (dispatch failpoint or a bug outside
		// runShielded). Fail the job, then restore pool capacity.
		r := recover()
		j.res <- poolResult{err: &panicError{value: r, stack: debug.Stack()}}
		p.restarts.Add(1)
		if j.abandoned.Load() {
			// The watchdog already spawned our replacement; just retire.
			outcome = jobRetire
			p.wg.Done()
			return
		}
		//lint:ignore syncmisuse,goroutinelifecycle replacement inherits this worker's WaitGroup slot, joined in close
		go p.worker()
	}()
	fpPoolDispatch.InjectHard()
	var res poolResult
	if obs.FromContext(j.ctx) != nil || obs.CountersEnabled() {
		// Re-apply the request's pprof labels (endpoint, and transitively
		// engine/experiment set deeper in the call) on the worker goroutine
		// for the job's duration, so CPU profiles attribute pooled work to
		// its request. Skipped when observability is off: pprof.Do
		// allocates its label set.
		pprof.Do(j.ctx, pprof.Labels(), func(context.Context) {
			res = runShielded(j.fn)
		})
	} else {
		res = runShielded(j.fn)
	}
	j.res <- res
	if j.abandoned.Load() {
		return jobRetire
	}
	return jobOK
}

// runShielded executes fn, converting a panic into a *panicError.
func runShielded(fn func() (any, error)) (res poolResult) {
	defer func() {
		if r := recover(); r != nil {
			res = poolResult{err: &panicError{value: r, stack: debug.Stack()}}
		}
	}()
	v, err := fn()
	return poolResult{val: v, err: err}
}

// watchdog periodically scans running jobs for wedged workers and restores
// capacity by spawning replacements.
func (p *workerPool) watchdog() {
	defer close(p.watchDone)
	interval := p.wedgeTimeout / 8
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	if interval > time.Second {
		interval = time.Second
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-p.watchStop:
			return
		case <-ticker.C:
			p.recoverWedged()
		}
	}
}

// recoverWedged replaces the worker of every job running past wedgeTimeout.
// The CompareAndSwap guarantees exactly one replacement per wedged job even
// across overlapping scans.
func (p *workerPool) recoverWedged() {
	now := time.Now()
	p.inflightMu.Lock()
	defer p.inflightMu.Unlock()
	for j, started := range p.inflight {
		if now.Sub(started) <= p.wedgeTimeout {
			continue
		}
		if !j.abandoned.CompareAndSwap(false, true) {
			continue
		}
		p.replacements.Add(1)
		p.wg.Add(1)
		//lint:ignore syncmisuse replacement workers are joined in (*workerPool).close via wg.Wait
		go p.worker()
	}
}

// submit enqueues fn and waits for its result or the context. It never
// blocks on a full queue: callers get errQueueFull immediately so the HTTP
// layer can shed load.
func (p *workerPool) submit(ctx context.Context, fn func() (any, error)) (any, error) {
	j := &poolJob{ctx: ctx, fn: fn, res: make(chan poolResult, 1), enqueued: time.Now()}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errPoolClosed
	}
	select {
	case p.jobs <- j:
		p.queued.Add(1)
		p.mu.Unlock()
	default:
		p.mu.Unlock()
		return nil, errQueueFull
	}
	select {
	case r := <-j.res:
		return r.val, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// utilization reports pool fullness as (running+queued)/(workers+queue
// capacity) — the admission controller's load signal. A wedged-and-replaced
// worker's job still counts as running, so sustained wedging pushes the
// pool toward degraded mode, which is exactly the intended signal.
func (p *workerPool) utilization() float64 {
	capacity := p.workers + cap(p.jobs)
	if capacity <= 0 {
		return 1
	}
	return float64(p.running.Load()+p.queued.Load()) / float64(capacity)
}

// close stops intake, waits for the workers to drain the queue, then
// reaps the watchdog.
func (p *workerPool) close() {
	p.mu.Lock()
	if !p.closed {
		p.closed = true
		close(p.jobs)
		close(p.watchStop)
	}
	p.mu.Unlock()
	p.wg.Wait()
	<-p.watchDone
}
