package service

// Lifecycle tests for the async search job API: submit → 202 → poll →
// result, cancellation mid-run, TTL expiry, capacity backpressure, and the
// acceptance pin that /v1/optimize reproduces the exhaustive optimum on
// T²₈. Every test runs under -race and checks for goroutine leaks.

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"torusnet/internal/optimize"
	"torusnet/internal/routing"
	"torusnet/internal/torus"
)

func TestJobLifecycleCompletes(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()
	s, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	ctx := context.Background()

	acc, err := c.Optimize(ctx, OptimizeRequest{K: 6, D: 2, Routing: "odr", Strategy: "leesphere"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if acc.ID == "" || acc.State != JobStateRunning || acc.Poll != "/v1/jobs/"+acc.ID {
		t.Fatalf("bad 202 body: %+v", acc)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	snap, err := c.WaitJob(wctx, acc.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if snap.State != JobStateDone || snap.Result == nil {
		t.Fatalf("terminal snapshot: %+v", snap)
	}
	res := snap.Result
	if res.Strategy != optimize.StrategyLeeSphere || res.Size != 6 || len(res.Nodes) != 6 {
		t.Errorf("result provenance: %+v", res)
	}
	if res.EMax <= 0 || res.LowerBound <= 0 || res.Gap != res.EMax-res.LowerBound {
		t.Errorf("result bounds: e_max=%v lb=%v gap=%v", res.EMax, res.LowerBound, res.Gap)
	}
	// Poll-after-complete: the record stays pollable and stable.
	again, err := c.Job(ctx, acc.ID)
	if err != nil {
		t.Fatalf("poll after complete: %v", err)
	}
	if again.State != JobStateDone || again.Result == nil || again.Result.EMax != res.EMax {
		t.Errorf("post-completion poll drifted: %+v", again)
	}
	// The listing shows it too.
	jobs, err := c.Jobs(ctx)
	if err != nil || len(jobs) != 1 || jobs[0].ID != acc.ID {
		t.Errorf("job listing: %v err=%v", jobs, err)
	}
	if got := s.metrics.get(mJobsDone); got != 1 {
		t.Errorf("jobs_done = %d, want 1", got)
	}
}

func TestJobCancelMidRun(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()
	_, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	ctx := context.Background()

	// A long annealing schedule on T²₈: hundreds of thousands of energy
	// evaluations, far longer than the cancel round-trip.
	acc, err := c.Optimize(ctx, OptimizeRequest{K: 8, D: 2, Routing: "odr", Strategy: "anneal", Steps: 300000, Seed: 1})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	// Let it actually start searching before cancelling.
	time.Sleep(20 * time.Millisecond)
	if _, err := c.CancelJob(ctx, acc.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	snap, err := c.WaitJob(wctx, acc.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if snap.State != JobStateCancelled {
		t.Fatalf("state = %q, want cancelled", snap.State)
	}
	// Cancelled searches surface their best-so-far placement.
	if snap.Result == nil || len(snap.Result.Nodes) == 0 || snap.Result.Proven {
		t.Errorf("cancelled result: %+v", snap.Result)
	}
	if snap.Result.Steps >= 300000 {
		t.Errorf("executed %d steps, want an early stop", snap.Result.Steps)
	}
}

func TestJobTTLExpiry(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()
	s, c, stop := newTestServer(t, Config{Workers: 2, JobTTL: 30 * time.Millisecond})
	defer stop()
	ctx := context.Background()

	acc, err := c.Optimize(ctx, OptimizeRequest{K: 4, D: 2, Routing: "odr", Strategy: "leesphere"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := c.WaitJob(wctx, acc.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("wait: %v", err)
	}
	// The janitor must expire the finished record.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, err := c.Job(ctx, acc.ID)
		if isAPIStatus(err, http.StatusNotFound) {
			break
		}
		if err != nil {
			t.Fatalf("poll during expiry wait: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("finished job never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := s.metrics.get(mJobsExpired); got != 1 {
		t.Errorf("jobs_expired = %d, want 1", got)
	}
}

func TestJobCapacityBackpressure(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()
	s, c, stop := newTestServer(t, Config{Workers: 2, MaxJobs: 1})
	defer stop()
	ctx := context.Background()

	// Fill the single slot with a long search.
	acc, err := c.Optimize(ctx, OptimizeRequest{K: 8, D: 2, Routing: "odr", Strategy: "anneal", Steps: 300000, Seed: 2})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	_, err = c.Optimize(ctx, OptimizeRequest{K: 6, D: 2, Routing: "odr", Strategy: "leesphere"})
	if !isAPIStatus(err, http.StatusTooManyRequests) {
		t.Fatalf("submit past capacity: err = %v, want 429", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.RetryAfter < time.Second {
		t.Errorf("429 Retry-After: %v, want >= 1s", err)
	}
	if got := s.metrics.get(mJobsRejected); got != 1 {
		t.Errorf("jobs_rejected = %d, want 1", got)
	}
	// Free the slot; capacity comes back.
	if _, err := c.CancelJob(ctx, acc.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := c.WaitJob(wctx, acc.ID, 5*time.Millisecond); err != nil {
		t.Fatalf("wait for cancel: %v", err)
	}
	acc2, err := c.Optimize(ctx, OptimizeRequest{K: 6, D: 2, Routing: "odr", Strategy: "leesphere"})
	if err != nil {
		t.Fatalf("submit after slot freed: %v", err)
	}
	if snap, err := c.WaitJob(wctx, acc2.ID, 5*time.Millisecond); err != nil || snap.State != JobStateDone {
		t.Errorf("job after capacity recovery: snap=%+v err=%v", snap, err)
	}
}

func TestOptimizeRequestValidation(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()
	_, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	ctx := context.Background()
	for _, req := range []OptimizeRequest{
		{K: 0, D: 2, Routing: "odr"},
		{K: 6, D: 2, Routing: "nope"},
		{K: 6, D: 2, Routing: "odr", Strategy: "quantum"},
		{K: 6, D: 2, Routing: "odr", Size: 1},
		{K: 6, D: 2, Routing: "odr", Size: 37},
		{K: 6, D: 2, Routing: "odr", Steps: -1},
	} {
		if _, err := c.Optimize(ctx, req); !isAPIStatus(err, http.StatusBadRequest) {
			t.Errorf("request %+v: err = %v, want 400", req, err)
		}
	}
	if _, err := c.Job(ctx, "no-such-job"); !isAPIStatus(err, http.StatusNotFound) {
		t.Errorf("unknown job poll: err = %v, want 404", err)
	}
	if _, err := c.CancelJob(ctx, "no-such-job"); !isAPIStatus(err, http.StatusNotFound) {
		t.Errorf("unknown job cancel: err = %v, want 404", err)
	}
}

// TestOptimizeProvesT28Optimum is the acceptance pin: /v1/optimize on T²₈
// with |P| = 8 under ODR must return the placement the exhaustive search
// proves optimal — E_max = 3, strictly better than the linear
// construction's k/2 = 4 — and match a local BranchAndBound run.
func TestOptimizeProvesT28Optimum(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()
	_, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	ctx := context.Background()

	acc, err := c.Optimize(ctx, OptimizeRequest{K: 8, D: 2, Size: 8, Routing: "ODR", Strategy: "bnb"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	snap, err := c.WaitJob(wctx, acc.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("wait: %v", err)
	}
	if snap.State != JobStateDone || snap.Result == nil {
		t.Fatalf("terminal snapshot: %+v", snap)
	}
	res := snap.Result
	if !res.Proven || res.EMax != 3 {
		t.Errorf("served optimum e_max=%v proven=%v, want a proven 3", res.EMax, res.Proven)
	}
	local, err := optimize.BranchAndBound(ctx, torus.New(8, 2), routing.ODR{}, optimize.Config{Size: 8})
	if err != nil {
		t.Fatalf("local branch-and-bound: %v", err)
	}
	if !local.Proven || local.BestEMax != res.EMax {
		t.Errorf("service says %v, local exhaustive search says %v (proven=%v)", res.EMax, local.BestEMax, local.Proven)
	}
	// Auto strategy on a 64-node torus resolves to branch-and-bound too.
	acc2, err := c.Optimize(ctx, OptimizeRequest{K: 8, D: 2, Size: 8, Routing: "ODR"})
	if err != nil {
		t.Fatalf("auto submit: %v", err)
	}
	snap2, err := c.WaitJob(wctx, acc2.ID, 20*time.Millisecond)
	if err != nil {
		t.Fatalf("auto wait: %v", err)
	}
	if snap2.Result == nil || snap2.Result.Strategy != optimize.StrategyBranchBound || snap2.Result.EMax != 3 {
		t.Errorf("auto strategy result: %+v", snap2.Result)
	}
}
