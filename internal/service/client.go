package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"torusnet/internal/cluster"
	"torusnet/internal/obs"
)

// APIError is a non-200 response surfaced by Client, carrying the HTTP
// status and the server's error message.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the parsed Retry-After header (0 when absent): how
	// long the server asked us to back off on a 429/503. The resilient
	// client honors it as a backoff floor.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// clientMaxBody caps how much of a response body the client will read.
const clientMaxBody = 32 << 20

// Client is a typed HTTP client for a torusd server. The zero HTTP client
// has no overall timeout; per-call deadlines come from the caller's
// context.
//
// NewClient builds a single-attempt client: every error — transport or
// HTTP — surfaces immediately, which is what tests asserting raw 429/504
// behavior and callers with their own retry policies want. NewResilientClient
// layers retries, hedging, and a circuit breaker on the same call surface;
// see ResilienceConfig.
type Client struct {
	base    string
	hc      *http.Client
	maxBody int64
	// res enables the resilience policy; nil means single-attempt.
	res *resilience
	// peerHop marks every request with PeerHopHeader — the cluster fill
	// loop guard. Only NewPeerFillClient sets it.
	peerHop bool
}

// NewClient builds a client for the given base URL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 5 * time.Minute},
		maxBody: clientMaxBody,
	}
}

// NewResilientClient builds a client with the retry/hedge/breaker policy
// of cfg (zero value → defaults; see ResilienceConfig).
func NewResilientClient(baseURL string, cfg ResilienceConfig) *Client {
	c := NewClient(baseURL)
	c.res = newResilience(cfg, realClock{})
	return c
}

// NewPeerFillClient builds the client a cluster node uses to fetch answers
// from a key's home peer: a resilient client (each peer gets its own
// Client, so breaker state is per peer) whose every request carries the
// PeerHopHeader loop guard — the home peer answers from its own cache or
// compute and never fills onward. It satisfies cluster.PeerTransport via
// FillPeer and Ready.
func NewPeerFillClient(baseURL string, cfg ResilienceConfig) *Client {
	c := NewResilientClient(baseURL, cfg)
	c.peerHop = true
	return c
}

// roundTrip performs one HTTP exchange and fully consumes the response:
// the body is read up to maxBody, any remainder is drained, and the body
// is closed on every path — leaving the underlying connection reusable.
// It reports the status, the (possibly truncated) body, and the parsed
// Retry-After header; err is non-nil only for transport-level failures.
func (c *Client) roundTrip(ctx context.Context, method, path string, payload []byte) (status int, data []byte, retryAfter time.Duration, err error) {
	var body io.Reader
	if payload != nil {
		body = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return 0, nil, 0, err
	}
	if payload != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.peerHop {
		req.Header.Set(PeerHopHeader, "1")
		if path == cluster.ReplicaPath {
			// A peer-to-peer POST to the replica endpoint is a write-through
			// put; the header tells the receiver to store without re-filling.
			req.Header.Set(ReplicaHeader, "1")
		}
	}
	if traceID := obs.TraceIDFromContext(ctx); traceID != "" {
		// Propagate the caller's trace downstream: the trace ID rides the
		// context, so retries and hedges of one logical call share it, while
		// each attempt gets a fresh span ID.
		req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(traceID, obs.NewSpanID()))
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, 0, err
	}
	data, readErr := io.ReadAll(io.LimitReader(resp.Body, c.maxBody))
	// Drain whatever the limit left behind: a connection with unread body
	// bytes cannot go back into the keep-alive pool.
	if _, derr := io.Copy(io.Discard, resp.Body); derr != nil && readErr == nil {
		readErr = derr
	}
	if cerr := resp.Body.Close(); cerr != nil && readErr == nil {
		readErr = cerr
	}
	if readErr != nil {
		return resp.StatusCode, nil, 0, readErr
	}
	return resp.StatusCode, data, parseRetryAfter(resp.Header.Get("Retry-After")), nil
}

// parseRetryAfter handles both forms of the header: delay seconds and an
// HTTP date. Unparseable or past values yield 0.
func parseRetryAfter(v string) time.Duration {
	v = strings.TrimSpace(v)
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// interpret converts one completed exchange into the caller's result:
// decode on any 2xx (200 responses and the 202 job-accepted bodies),
// *APIError otherwise.
func interpret(status int, data []byte, retryAfter time.Duration, out any) error {
	if status < 200 || status > 299 {
		var apiErr ErrorResponse
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: status, Message: msg, RetryAfter: retryAfter}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service: decoding response: %w", err)
	}
	return nil
}

// do runs one JSON call. in == nil sends no body; out == nil discards the
// response body. With a resilience policy attached, the call is retried,
// hedged, and breaker-guarded per that policy.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var payload []byte
	if in != nil {
		data, merr := json.Marshal(in)
		if merr != nil {
			return fmt.Errorf("service: encoding request: %w", merr)
		}
		payload = data
	}
	if c.res == nil {
		status, data, retryAfter, err := c.roundTrip(ctx, method, path, payload)
		if err != nil {
			return err
		}
		return interpret(status, data, retryAfter, out)
	}
	return c.res.do(ctx, c, method, path, payload, out)
}

// Analyze runs POST /v1/analyze.
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Bounds runs POST /v1/bounds.
func (c *Client) Bounds(ctx context.Context, req BoundsRequest) (*BoundsResponse, error) {
	var out BoundsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/bounds", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Bisect runs POST /v1/bisect.
func (c *Client) Bisect(ctx context.Context, req BisectRequest) (*BisectResponse, error) {
	var out BisectResponse
	if err := c.do(ctx, http.MethodPost, "/v1/bisect", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Optimize submits an async placement search via POST /v1/optimize. The
// 202 body carries the job id to poll; see Job and WaitJob.
func (c *Client) Optimize(ctx context.Context, req OptimizeRequest) (*JobAccepted, error) {
	var out JobAccepted
	if err := c.do(ctx, http.MethodPost, "/v1/optimize", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job fetches one job snapshot via GET /v1/jobs/{id}; unknown ids surface
// as *APIError with status 404.
func (c *Client) Job(ctx context.Context, id string) (*JobSnapshot, error) {
	var out JobSnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Jobs lists every tracked job via GET /v1/jobs.
func (c *Client) Jobs(ctx context.Context) ([]JobSnapshot, error) {
	var out []JobSnapshot
	if err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// CancelJob cancels a running job (or drops a finished record) via
// DELETE /v1/jobs/{id}. Cancellation is asynchronous: the returned
// snapshot may still read running until the search unwinds; poll for the
// cancelled state.
func (c *Client) CancelJob(ctx context.Context, id string) (*JobSnapshot, error) {
	var out JobSnapshot
	if err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls GET /v1/jobs/{id} every poll interval (≤0 means 50ms)
// until the job leaves the running state, returning its terminal
// snapshot. ctx bounds the wait.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*JobSnapshot, error) {
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		snap, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if snap.State != JobStateRunning {
			return snap, nil
		}
		timer := time.NewTimer(poll)
		select {
		case <-ctx.Done():
			timer.Stop()
			return snap, ctx.Err()
		case <-timer.C:
		}
	}
}

// Experiments runs GET /v1/experiments.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	if err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunExperiment runs POST /v1/experiments/{id}.
func (c *Client) RunExperiment(ctx context.Context, id string, req ExperimentRequest) (*ExperimentRunResponse, error) {
	var out ExperimentRunResponse
	if err := c.do(ctx, http.MethodPost, "/v1/experiments/"+id, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Ready probes GET /readyz, returning nil only when the server reports
// itself ready to serve (a not-ready node answers 503, which surfaces as
// *APIError). The cluster layer uses it to re-admit cooled-down peers, and
// resilient clients honor a not-ready backend the same way as any 503:
// retry with backoff, eventually tripping the breaker.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, nil)
}

// Readyz fetches the full GET /readyz body regardless of status (the body
// decodes only on 200; a 503 surfaces as *APIError like any call).
func (c *Client) Readyz(ctx context.Context) (*ReadyResponse, error) {
	var out ReadyResponse
	if err := c.do(ctx, http.MethodGet, "/readyz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// FillPeer POSTs a raw canonical request body to path on the peer and
// returns the raw 200 response body, satisfying cluster.PeerTransport.
// The bytes ride the ordinary do path — resilience policy, trace
// propagation, body drain/close — as json.RawMessage in both directions,
// so nothing is re-encoded.
func (c *Client) FillPeer(ctx context.Context, path string, payload []byte) ([]byte, error) {
	var out json.RawMessage
	if err := c.do(ctx, http.MethodPost, path, json.RawMessage(payload), &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health runs GET /healthz.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Vars fetches the server's metric counters from GET /debug/vars.
func (c *Client) Vars(ctx context.Context) (map[string]any, error) {
	var out struct {
		Torusd map[string]any `json:"torusd"`
	}
	if err := c.do(ctx, http.MethodGet, "/debug/vars", nil, &out); err != nil {
		return nil, err
	}
	return out.Torusd, nil
}
