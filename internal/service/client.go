package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// APIError is a non-200 response surfaced by Client, carrying the HTTP
// status and the server's error message.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("service: HTTP %d: %s", e.Status, e.Message)
}

// Client is a typed HTTP client for a torusd server. The zero HTTP client
// has no overall timeout; per-call deadlines come from the caller's
// context.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for the given base URL (e.g.
// "http://127.0.0.1:8080").
func NewClient(baseURL string) *Client {
	return &Client{
		base: strings.TrimRight(baseURL, "/"),
		hc:   &http.Client{Timeout: 5 * time.Minute},
	}
}

// do runs one JSON round trip. in == nil sends no body; out == nil
// discards the response body.
func (c *Client) do(ctx context.Context, method, path string, in, out any) (err error) {
	var body io.Reader
	if in != nil {
		data, merr := json.Marshal(in)
		if merr != nil {
			return fmt.Errorf("service: encoding request: %w", merr)
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := resp.Body.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 32<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var apiErr ErrorResponse
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("service: decoding response: %w", err)
	}
	return nil
}

// Analyze runs POST /v1/analyze.
func (c *Client) Analyze(ctx context.Context, req AnalyzeRequest) (*AnalyzeResponse, error) {
	var out AnalyzeResponse
	if err := c.do(ctx, http.MethodPost, "/v1/analyze", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Bounds runs POST /v1/bounds.
func (c *Client) Bounds(ctx context.Context, req BoundsRequest) (*BoundsResponse, error) {
	var out BoundsResponse
	if err := c.do(ctx, http.MethodPost, "/v1/bounds", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Bisect runs POST /v1/bisect.
func (c *Client) Bisect(ctx context.Context, req BisectRequest) (*BisectResponse, error) {
	var out BisectResponse
	if err := c.do(ctx, http.MethodPost, "/v1/bisect", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Experiments runs GET /v1/experiments.
func (c *Client) Experiments(ctx context.Context) ([]ExperimentInfo, error) {
	var out []ExperimentInfo
	if err := c.do(ctx, http.MethodGet, "/v1/experiments", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunExperiment runs POST /v1/experiments/{id}.
func (c *Client) RunExperiment(ctx context.Context, id string, req ExperimentRequest) (*ExperimentRunResponse, error) {
	var out ExperimentRunResponse
	if err := c.do(ctx, http.MethodPost, "/v1/experiments/"+id, req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Health runs GET /healthz.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.do(ctx, http.MethodGet, "/healthz", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Vars fetches the server's metric counters from GET /debug/vars.
func (c *Client) Vars(ctx context.Context) (map[string]any, error) {
	var out struct {
		Torusd map[string]any `json:"torusd"`
	}
	if err := c.do(ctx, http.MethodGet, "/debug/vars", nil, &out); err != nil {
		return nil, err
	}
	return out.Torusd, nil
}
