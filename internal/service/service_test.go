package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestServer boots a Server behind httptest with small, deterministic
// sizing. The returned cleanup stops both.
func newTestServer(t *testing.T, cfg Config) (*Server, *Client, func()) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	c := NewClient(ts.URL)
	return s, c, func() {
		ts.Close()
		s.Close()
	}
}

// TestEndpointsEndToEnd drives every endpoint through the typed client
// over real HTTP, including the cache-hit path observable at /debug/vars.
func TestEndpointsEndToEnd(t *testing.T) {
	var accessLog bytes.Buffer
	_, c, stop := newTestServer(t, Config{Workers: 4, AccessLog: &accessLog})
	defer stop()
	ctx := context.Background()

	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if h.Status != "ok" || h.Experiments == 0 {
		t.Fatalf("healthz = %+v", h)
	}

	req := AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "ODR"}
	first, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if first.Cached {
		t.Error("first analyze reported cached")
	}
	if first.Placement != "linear:0" || first.Routing != "odr" {
		t.Errorf("canonical echo = %q %q", first.Placement, first.Routing)
	}
	if first.Processors != 6 || !first.Uniform || first.EMax <= 0 {
		t.Errorf("analyze body: %+v", first)
	}
	if first.OptimalityRatio < 1 {
		t.Errorf("optimality ratio %v < 1", first.OptimalityRatio)
	}

	// The identical request — under a different spelling — must hit the
	// cache with bit-identical numbers.
	second, err := c.Analyze(ctx, AnalyzeRequest{K: 6, D: 2, Placement: "linear:-6", Routing: "odr"})
	if err != nil {
		t.Fatalf("analyze (repeat): %v", err)
	}
	if !second.Cached {
		t.Error("repeat analyze not served from cache")
	}
	if second.EMax != first.EMax || second.TotalLoad != first.TotalLoad {
		t.Errorf("cached result differs: %v vs %v", second.EMax, first.EMax)
	}

	vars, err := c.Vars(ctx)
	if err != nil {
		t.Fatalf("vars: %v", err)
	}
	if hits, ok := vars["cache_hits"].(float64); !ok || hits < 1 {
		t.Errorf("cache_hits = %v, want >= 1", vars["cache_hits"])
	}

	bounds, err := c.Bounds(ctx, BoundsRequest{K: 6, D: 2, Placement: "linear"})
	if err != nil {
		t.Fatalf("bounds: %v", err)
	}
	if bounds.BlaumBound <= 0 || bounds.BestLowerBound < bounds.BlaumBound {
		t.Errorf("bounds body: %+v", bounds)
	}
	if bounds.BestLowerBound > first.EMax {
		t.Errorf("lower bound %v above measured E_max %v", bounds.BestLowerBound, first.EMax)
	}

	for _, method := range []string{"sweep", "best-sweep", "dimension"} {
		bi, err := c.Bisect(ctx, BisectRequest{K: 6, D: 2, Placement: "multi:2", Method: method})
		if err != nil {
			t.Fatalf("bisect %s: %v", method, err)
		}
		if bi.Cut.Width <= 0 || bi.SeparatorBound <= 0 {
			t.Errorf("bisect %s body: %+v", method, bi)
		}
		if method != "dimension" && !bi.Cut.Balanced {
			t.Errorf("bisect %s: cut unbalanced: %+v", method, bi.Cut)
		}
	}

	infos, err := c.Experiments(ctx)
	if err != nil {
		t.Fatalf("experiments: %v", err)
	}
	if len(infos) < 10 {
		t.Fatalf("experiment registry lists %d entries", len(infos))
	}
	run1, err := c.RunExperiment(ctx, infos[0].ID, ExperimentRequest{})
	if err != nil {
		t.Fatalf("run experiment: %v", err)
	}
	if run1.Scale != "quick" || run1.Cached {
		t.Errorf("experiment run: %+v", run1)
	}
	var table struct {
		ID   string     `json:"id"`
		Rows [][]string `json:"rows"`
	}
	if err := json.Unmarshal(run1.Table, &table); err != nil {
		t.Fatalf("experiment table JSON: %v", err)
	}
	if table.ID != infos[0].ID || len(table.Rows) == 0 {
		t.Errorf("experiment table: %+v", table)
	}
	run2, err := c.RunExperiment(ctx, infos[0].ID, ExperimentRequest{Scale: "quick"})
	if err != nil {
		t.Fatalf("run experiment (repeat): %v", err)
	}
	if !run2.Cached {
		t.Error("repeat experiment run not served from cache")
	}

	if !strings.Contains(accessLog.String(), `"path":"/v1/analyze"`) {
		t.Error("access log missing /v1/analyze entry")
	}
}

// TestErrorStatuses verifies the HTTP status mapping of the failure paths.
func TestErrorStatuses(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	ctx := context.Background()

	wantStatus := func(t *testing.T, err error, status int) {
		t.Helper()
		var apiErr *APIError
		if err == nil {
			t.Fatalf("expected HTTP %d, got success", status)
		}
		if !asAPIError(err, &apiErr) {
			t.Fatalf("expected *APIError, got %T: %v", err, err)
		}
		if apiErr.Status != status {
			t.Fatalf("status = %d (%s), want %d", apiErr.Status, apiErr.Message, status)
		}
	}

	_, err := c.Analyze(ctx, AnalyzeRequest{K: 1, D: 2, Placement: "linear", Routing: "odr"})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.Analyze(ctx, AnalyzeRequest{K: 6, D: 2, Placement: "nope", Routing: "odr"})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.Analyze(ctx, AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "nope"})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.Analyze(ctx, AnalyzeRequest{K: 100, D: 3, Placement: "linear", Routing: "odr"})
	wantStatus(t, err, http.StatusBadRequest) // k^d over the serving ceiling
	_, err = c.Bisect(ctx, BisectRequest{K: 6, D: 2, Placement: "linear", Method: "banana"})
	wantStatus(t, err, http.StatusBadRequest)
	_, err = c.RunExperiment(ctx, "E9999", ExperimentRequest{})
	wantStatus(t, err, http.StatusNotFound)
	_, err = c.RunExperiment(ctx, "E1", ExperimentRequest{Scale: "huge"})
	wantStatus(t, err, http.StatusBadRequest)

	// Raw HTTP edges the typed client cannot produce: wrong method,
	// malformed JSON, unknown fields, trailing garbage.
	base := c.base
	for _, tc := range []struct {
		name   string
		method string
		path   string
		body   string
		status int
	}{
		{"method not allowed", http.MethodGet, "/v1/analyze", "", http.StatusMethodNotAllowed},
		{"malformed JSON", http.MethodPost, "/v1/analyze", "{", http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/analyze", `{"k":6,"d":2,"placement":"linear","routing":"odr","zzz":1}`, http.StatusBadRequest},
		{"trailing data", http.MethodPost, "/v1/analyze", `{"k":6,"d":2,"placement":"linear","routing":"odr"} {}`, http.StatusBadRequest},
		{"not found", http.MethodGet, "/v1/nothing", "", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, base+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if cerr := resp.Body.Close(); cerr != nil {
			t.Fatal(cerr)
		}
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
}

func asAPIError(err error, target **APIError) bool {
	for err != nil {
		if e, ok := err.(*APIError); ok {
			*target = e
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// TestCoalescing asserts the acceptance criterion: N concurrent identical
// requests run the underlying analysis exactly once. The compute hook
// blocks the leader until every request is in flight, so the followers
// must coalesce (or, if one loses the race past a finished leader, be
// absorbed by the in-flight double-check against the fresh cache entry).
func TestCoalescing(t *testing.T) {
	const n = 8
	var computes atomic.Int32
	release := make(chan struct{})
	s := New(Config{Workers: 4})
	s.onCompute = func(string) {
		computes.Add(1)
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	req := AnalyzeRequest{K: 8, D: 2, Placement: "linear:3", Routing: "udr"}
	results := make([]*AnalyzeResponse, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Analyze(ctx, req)
		}(i)
	}

	// Release the leader only once all n requests are inside the handler.
	deadline := time.Now().Add(10 * time.Second)
	for s.metrics.get(mInFlight) < n {
		if time.Now().After(deadline) {
			close(release)
			t.Fatalf("only %d requests in flight", s.metrics.get(mInFlight))
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := computes.Load(); got != 1 {
		t.Fatalf("analysis executed %d times for %d concurrent identical requests, want exactly 1", got, n)
	}
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("request %d: %v", i, errs[i])
		}
		if results[i].EMax != results[0].EMax {
			t.Errorf("request %d: E_max %v != %v", i, results[i].EMax, results[0].EMax)
		}
	}
	if co := s.metrics.get(mCoalesced); co == 0 {
		t.Error("no request was counted as coalesced")
	}
}

// TestBackpressure fills the single worker and the one queue slot, then
// asserts the next request is shed with 429 + Retry-After. Degradation is
// disabled so the raw queue-full path stays reachable (with the default
// watermark, a saturated pool answers degraded 200s instead — covered by
// the chaos suite).
func TestBackpressure(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 4)
	s := New(Config{Workers: 1, QueueDepth: 1, DegradeWatermark: -1})
	s.onCompute = func(key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	reqAt := func(residue string) AnalyzeRequest {
		return AnalyzeRequest{K: 6, D: 2, Placement: "linear:" + residue, Routing: "odr"}
	}
	done := make(chan error, 2)
	go func() { _, err := c.Analyze(ctx, reqAt("0")); done <- err }()
	<-started // worker busy
	go func() { _, err := c.Analyze(ctx, reqAt("1")); done <- err }()
	// Wait until the second job occupies the queue slot.
	deadline := time.Now().Add(10 * time.Second)
	for len(s.pool.jobs) < 1 {
		if time.Now().After(deadline) {
			close(release)
			t.Fatal("second request never reached the queue")
		}
		time.Sleep(time.Millisecond)
	}

	// Third distinct request: queue full → 429.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"k":6,"d":2,"placement":"linear:2","routing":"odr"}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if got := s.metrics.get(mQueueFull); got != 1 {
		t.Errorf("queue_full = %d, want 1", got)
	}

	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("blocked request %d failed after release: %v", i, err)
		}
	}
	<-started // drain the second job's start signal
}

// TestPanicIsolation poisons one computation and verifies the request gets
// a 500 while the server keeps serving.
func TestPanicIsolation(t *testing.T) {
	var first atomic.Bool
	first.Store(true)
	s := New(Config{Workers: 2})
	s.onCompute = func(string) {
		if first.CompareAndSwap(true, false) {
			panic("poisoned request")
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	_, err := c.Analyze(ctx, AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "odr"})
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("poisoned request: err = %v, want HTTP 500", err)
	}
	if !strings.Contains(apiErr.Message, "panicked") {
		t.Errorf("500 message %q does not mention the panic", apiErr.Message)
	}
	if got := s.metrics.get(mPanics); got != 1 {
		t.Errorf("panics = %d, want 1", got)
	}

	// The pool worker survived; an identical retry succeeds (the failed
	// run was not cached).
	resp, err := c.Analyze(ctx, AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "odr"})
	if err != nil {
		t.Fatalf("post-panic request: %v", err)
	}
	if resp.Cached {
		t.Error("panicked computation leaked into the cache")
	}
}

// TestRequestDeadline pins a tiny request timeout and asserts the 504
// mapping when the analysis cannot finish in time.
func TestRequestDeadline(t *testing.T) {
	block := make(chan struct{})
	s := New(Config{Workers: 1, RequestTimeout: 20 * time.Millisecond})
	s.onCompute = func(string) { <-block }
	ts := httptest.NewServer(s.Handler())
	// Unblock the worker before s.Close waits for the pool to drain.
	defer func() {
		close(block)
		ts.Close()
		s.Close()
	}()
	c := NewClient(ts.URL)

	_, err := c.Analyze(context.Background(), AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "odr"})
	var apiErr *APIError
	if !asAPIError(err, &apiErr) || apiErr.Status != http.StatusGatewayTimeout {
		t.Fatalf("err = %v, want HTTP 504", err)
	}
	if got := s.metrics.get(mTimeouts); got != 1 {
		t.Errorf("timeouts = %d, want 1", got)
	}
}

// TestGracefulShutdown verifies Shutdown drains an in-flight analysis:
// the slow request completes with 200 and Serve returns ErrServerClosed.
func TestGracefulShutdown(t *testing.T) {
	release := make(chan struct{})
	started := make(chan string, 1)
	s := New(Config{Workers: 1})
	s.onCompute = func(key string) {
		started <- key
		<-release
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	c := NewClient("http://" + ln.Addr().String())

	reqDone := make(chan error, 1)
	go func() {
		_, err := c.Analyze(context.Background(), AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "odr"})
		reqDone <- err
	}()
	<-started

	shutDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutDone <- s.Shutdown(ctx)
	}()
	// Shutdown must wait for the in-flight request; release it and expect
	// everything to finish cleanly.
	time.Sleep(20 * time.Millisecond)
	close(release)

	if err := <-reqDone; err != nil {
		t.Errorf("in-flight request failed during graceful shutdown: %v", err)
	}
	if err := <-shutDone; err != nil {
		t.Errorf("shutdown: %v", err)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestLRUCacheTTLAndEviction unit-tests the cache mechanics with an
// injected clock.
func TestLRUCacheTTLAndEviction(t *testing.T) {
	now := time.Unix(0, 0)
	c := newLRUCache(2, time.Minute)
	c.now = func() time.Time { return now }

	c.put("a", 1)
	c.put("b", 2)
	if v, _, ok := c.get("a"); !ok || v.(int) != 1 {
		t.Fatal("a missing")
	}
	c.put("c", 3) // evicts b (least recently used after the a touch)
	if _, _, ok := c.get("b"); ok {
		t.Error("b survived past capacity")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Error("a evicted despite recent use")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	now = now.Add(30 * time.Second)
	if _, age, ok := c.get("a"); !ok || age != 30*time.Second {
		t.Errorf("a: age=%v ok=%v, want 30s hit", age, ok)
	}

	now = now.Add(2 * time.Minute)
	if _, _, ok := c.get("a"); ok {
		t.Error("a survived past its TTL")
	}
	if _, _, ok := c.get("c"); ok {
		t.Error("c survived past its TTL")
	}

	// ttl <= 0 disables expiry.
	forever := newLRUCache(1, 0)
	forever.now = func() time.Time { return now.Add(1000 * time.Hour) }
	forever.put("x", 9)
	if _, _, ok := forever.get("x"); !ok {
		t.Error("entry expired with TTL disabled")
	}
}

// TestDecodeAnalyzeRequest covers validation and canonicalization,
// including idempotence of the canonical form.
func TestDecodeAnalyzeRequest(t *testing.T) {
	bad := []string{
		``,
		`null`, // decodes to zero request: k=0 invalid
		`{"k":1,"d":2,"placement":"linear","routing":"odr"}`,
		`{"k":6,"d":0,"placement":"linear","routing":"odr"}`,
		`{"k":6,"d":2,"placement":"martian","routing":"odr"}`,
		`{"k":6,"d":2,"placement":"linear","routing":"martian"}`,
		`{"k":6,"d":2,"placement":"multi:7","routing":"odr"}`,   // t > k wraps onto itself
		`{"k":6,"d":2,"placement":"random:99","routing":"odr"}`, // count > k^d
		`{"k":1000,"d":4,"placement":"linear","routing":"odr"}`, // over MaxNodes
		`{"k":6,"d":2,"placement":"linear","routing":"odr","extra":true}`,
		`{"k":6,"d":2,"placement":"linear","routing":"odr"}[]`,
	}
	for _, body := range bad {
		if _, err := DecodeAnalyzeRequest([]byte(body)); err == nil {
			t.Errorf("accepted %q", body)
		}
	}

	canon := map[string]AnalyzeRequest{
		`{"k":8,"d":2,"placement":"linear:-1","routing":"ODRMULTI"}`: {K: 8, D: 2, Placement: "linear:7", Routing: "odr-multi"},
		`{"k":8,"d":2,"placement":"linear","routing":"FAR"}`:         {K: 8, D: 2, Placement: "linear:0", Routing: "far"},
		`{"k":8,"d":2,"placement":"multi:2","routing":"udrmulti"}`:   {K: 8, D: 2, Placement: "multi:2:0", Routing: "udr-multi"},
		`{"k":8,"d":2,"placement":"diagonal:9","routing":"udr"}`:     {K: 8, D: 2, Placement: "diagonal:1", Routing: "udr"},
		`{"k":8,"d":2,"placement":"random:4","routing":"odr"}`:       {K: 8, D: 2, Placement: "random:4:1", Routing: "odr"},
		`{"k":4,"d":3,"placement":"full","routing":"odr"}`:           {K: 4, D: 3, Placement: "full", Routing: "odr"},
		`{"k":8,"d":2,"placement":" linear:15 ","routing":" odr "}`:  {K: 8, D: 2, Placement: "linear:7", Routing: "odr"},
	}
	for body, want := range canon {
		got, err := DecodeAnalyzeRequest([]byte(body))
		if err != nil {
			t.Errorf("%q: %v", body, err)
			continue
		}
		if *got != want {
			t.Errorf("%q canonicalized to %+v, want %+v", body, *got, want)
		}
		// Idempotence: canonicalizing the canonical form is a no-op.
		again := *got
		if err := again.Canonicalize(DefaultMaxNodes); err != nil {
			t.Errorf("re-canonicalize %+v: %v", *got, err)
		}
		if again != *got {
			t.Errorf("canonicalization not idempotent: %+v -> %+v", *got, again)
		}
		if again.CacheKey() != got.CacheKey() {
			t.Errorf("cache key drifted: %q vs %q", again.CacheKey(), got.CacheKey())
		}
	}
}
