package service

import (
	"context"
	"math"
	"strconv"
	"strings"

	"torusnet/internal/bounds"
	"torusnet/internal/cliutil"
	"torusnet/internal/load"
	"torusnet/internal/obs"
	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

// tryAnalytic is the admission fast lane for /v1/analyze: when the request
// spec itself proves the placement is a single linear placement (linear:C,
// diagonal:S, or multi:1:S — t = 1 by construction, no node walk needed)
// and the routing has a Theorem 2 equality (ODR always, ODR-multi on odd k
// where unique shortest ring paths make it coincide with ODR), the answer
// is the closed form — O(1) arithmetic, evaluated before canonicalization,
// admission control, caching, and the worker pool, so analytic answers are
// never degraded to Monte Carlo, never 429'd, and independent of torus
// size. The lane therefore checks (k, d) against the package representation
// limit only, not Config.MaxNodes: that cap exists to keep O(k^d) work off
// the pool, and the lane does no such work — T³₂₅₆-class requests answer in
// microseconds.
//
// Lane answers carry Engine "analytic" and Exact == true, echo canonical
// placement/routing spellings, and report the O(1) bound suite (Blaum +
// Improved; linear placements are uniform with density c = 1). Fields that
// require edge or cut enumeration — MaxEdge, TotalLoad, BisectionBound,
// SweepCut, DimensionCut — are zero: closed forms answer E_max, not the
// load vector. Anything the lane cannot prove falls through (ok == false)
// to the ordinary computed pipeline, including when the load.analytic.dispatch
// failpoint is armed.
func (s *Server) tryAnalytic(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, bool) {
	if !s.cfg.EnableAnalytic {
		return AnalyzeResponse{}, false
	}
	k, d := req.K, req.D
	if d < 2 || torus.Check(k, d) != nil {
		return AnalyzeResponse{}, false
	}
	spec, err := cliutil.ParsePlacement(strings.TrimSpace(req.Placement))
	if err != nil {
		return AnalyzeResponse{}, false
	}
	var canonSpec placement.Spec
	var canonPlacement string
	switch v := spec.(type) {
	case placement.Linear:
		if v.Coeffs != nil {
			// Non-unit coefficient vectors are outside the recognizer's
			// family; let the computed engines handle them.
			return AnalyzeResponse{}, false
		}
		c := torus.Mod(v.C, k)
		canonSpec, canonPlacement = placement.Linear{C: c}, "linear:"+strconv.Itoa(c)
	case placement.ShiftedDiagonal:
		sh := torus.Mod(v.Shift, k)
		canonSpec, canonPlacement = placement.ShiftedDiagonal{Shift: sh}, "diagonal:"+strconv.Itoa(sh)
	case placement.MultipleLinear:
		if v.T != 1 || v.Coeffs != nil {
			return AnalyzeResponse{}, false
		}
		st := torus.Mod(v.Start, k)
		canonSpec, canonPlacement = placement.MultipleLinear{T: 1, Start: st}, "multi:1:"+strconv.Itoa(st)
	default:
		return AnalyzeResponse{}, false
	}
	var algName, canonRouting string
	switch strings.ToLower(strings.TrimSpace(req.Routing)) {
	case "odr":
		algName, canonRouting = "ODR", "odr"
	case "odr-multi", "odrmulti":
		algName, canonRouting = "ODR-multi", "odr-multi"
	default:
		return AnalyzeResponse{}, false
	}
	ev, ok := load.AnalyticAnswer(k, d, 1, algName, true)
	if !ok {
		return AnalyzeResponse{}, false
	}
	_, sp := obs.Start(ctx, "load.analytic")
	defer sp.End()
	sp.SetAttr("engine", load.EngineAnalytic)
	sp.SetAttr("theorem", ev.Theorem)

	// |P| = k^{d-1} ≤ k^d, which torus.Check already admitted.
	procs, err := torus.Volume(k, d-1)
	if err != nil {
		return AnalyzeResponse{}, false
	}
	blaum := bounds.Blaum(procs, d)
	improved := bounds.Improved(1, k, d)
	best := math.Max(blaum, improved)
	ratio := 0.0
	if best > 0 {
		ratio = ev.EMax / best
	}
	s.metrics.add(mAnalyticHits, 1)
	return AnalyzeResponse{
		K:                k,
		D:                d,
		Placement:        canonPlacement,
		Routing:          canonRouting,
		PlacementName:    canonSpec.Name(),
		Processors:       procs,
		Uniform:          true,
		DensityC:         1,
		EMax:             ev.EMax,
		LoadPerProcessor: ev.EMax / float64(procs),
		BlaumBound:       jsonSafe(blaum),
		ImprovedBound:    jsonSafe(improved),
		BestLowerBound:   jsonSafe(best),
		OptimalityRatio:  jsonSafe(ratio),
		Engine:           load.EngineAnalytic,
		Exact:            true,
		Theorem:          ev.Theorem,
	}, true
}
