package service

import "sync"

// flightGroup coalesces concurrent calls with the same key: the first
// caller (leader) runs fn, later callers block until the leader finishes
// and share its result. It is the stdlib-only equivalent of
// golang.org/x/sync/singleflight, reduced to what the service needs.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do executes fn once per key among concurrent callers. shared reports
// whether this caller received another caller's result. Followers inherit
// the leader's error; the leader's per-request deadline therefore bounds
// every waiter.
func (g *flightGroup) do(key string, fn func() (any, error)) (val any, err error, shared bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
