package service

import (
	"container/list"
	"sync"
	"time"
)

// lruCache is a mutex-guarded LRU with per-entry TTL. Values must be
// treated as immutable once stored: readers receive the stored value
// itself, so handlers copy before mutating response-only fields (Cached).
type lruCache struct {
	mu       sync.Mutex
	capacity int
	ttl      time.Duration // <= 0 means entries never expire
	ll       *list.List    // front = most recently used
	items    map[string]*list.Element
	now      func() time.Time // injected in TTL tests
}

type cacheEntry struct {
	key     string
	val     any
	expires time.Time // zero means never
	stored  time.Time // when the value was (last) written, for age metrics
}

func newLRUCache(capacity int, ttl time.Duration) *lruCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache{
		capacity: capacity,
		ttl:      ttl,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		now:      time.Now,
	}
}

// get returns the live value for key plus its age (time since the value
// was stored), refreshing its recency. Expired entries are evicted on
// access.
func (c *lruCache) get(key string) (any, time.Duration, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, 0, false
	}
	ent := el.Value.(*cacheEntry)
	now := c.now()
	if !ent.expires.IsZero() && now.After(ent.expires) {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, 0, false
	}
	c.ll.MoveToFront(el)
	return ent.val, now.Sub(ent.stored), true
}

// put inserts or refreshes key, evicting the least recently used entry
// when the cache is at capacity.
func (c *lruCache) put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.now()
	var expires time.Time
	if c.ttl > 0 {
		expires = now.Add(c.ttl)
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		ent.val, ent.expires, ent.stored = val, expires, now
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.capacity {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheEntry).key)
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, val: val, expires: expires, stored: now})
}

// len reports the number of resident entries (expired-but-unaccessed
// entries included).
func (c *lruCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
