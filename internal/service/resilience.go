package service

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// ErrCircuitOpen is returned (wrapped, with the endpoint path) when the
// per-endpoint circuit breaker is open and the call was rejected without
// touching the network.
var ErrCircuitOpen = errors.New("service: circuit breaker open")

// ResilienceConfig parameterizes the retrying client built by
// NewResilientClient. The zero value selects every default.
type ResilienceConfig struct {
	// MaxAttempts caps attempts per call (first try included); 0 means 4.
	MaxAttempts int
	// BaseBackoff is the first retry's backoff ceiling; the ceiling
	// doubles per attempt up to MaxBackoff, and the actual sleep is drawn
	// uniformly from [0, ceiling) — "full jitter". 0 means 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the backoff ceiling; 0 means 5s.
	MaxBackoff time.Duration
	// RetryBudget is a client-wide token bucket shared by all calls: each
	// retry (never the first attempt) spends one token, and tokens refill
	// at one per BudgetRefill up to RetryBudget. A drained budget stops
	// retries — the guard against retry storms amplifying an outage.
	// 0 means 10; negative means unlimited.
	RetryBudget int
	// BudgetRefill is the interval per refilled token; 0 means 1s.
	BudgetRefill time.Duration
	// HedgeAfter, when positive, launches a second identical request if
	// the first has not completed within this delay; the first completed
	// success wins and the loser is cancelled. Every torusd endpoint is
	// idempotent (analyses are pure functions of the request), so hedging
	// is always safe here. 0 disables hedging.
	HedgeAfter time.Duration
	// BreakerThreshold is the consecutive-failure count that opens an
	// endpoint's circuit; while open, calls fail fast with ErrCircuitOpen.
	// After BreakerCooldown the breaker goes half-open and admits a single
	// probe: success closes the circuit, failure re-opens it. 0 means 5;
	// negative disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay; 0 means 5s.
	BreakerCooldown time.Duration
	// JitterSeed seeds the backoff jitter stream; 0 seeds from the clock.
	JitterSeed int64
}

func (cfg ResilienceConfig) withDefaults() ResilienceConfig {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 10
	}
	if cfg.BudgetRefill <= 0 {
		cfg.BudgetRefill = time.Second
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 5 * time.Second
	}
	return cfg
}

// clock abstracts time for the resilience layer so its behavior — backoff,
// budgets, breaker cooldowns, hedge delays — is testable with a fake.
type clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
	After(d time.Duration) <-chan time.Time
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }

func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Resilience expvar counter names.
const (
	rvRetries         = "retries"
	rvRetryAfterWaits = "retry_after_waits"
	rvBudgetExhausted = "budget_exhausted"
	rvHedges          = "hedges"
	rvHedgeWins       = "hedge_wins"
	rvBreakerOpens    = "breaker_opens"
	rvBreakerRejects  = "breaker_rejects"
	rvBreakerProbes   = "breaker_probes"
)

// resilience is the per-client retry/hedge/breaker engine.
type resilience struct {
	cfg ResilienceConfig
	clk clock

	mu         sync.Mutex
	rng        *rand.Rand
	tokens     float64
	lastRefill time.Time
	breakers   map[string]*breaker

	vars *expvar.Map
}

func newResilience(cfg ResilienceConfig, clk clock) *resilience {
	cfg = cfg.withDefaults()
	seed := cfg.JitterSeed
	if seed == 0 {
		seed = clk.Now().UnixNano()
	}
	r := &resilience{
		cfg:        cfg,
		clk:        clk,
		rng:        rand.New(rand.NewSource(seed)),
		tokens:     float64(cfg.RetryBudget),
		lastRefill: clk.Now(),
		breakers:   make(map[string]*breaker),
		vars:       new(expvar.Map).Init(),
	}
	for _, name := range []string{
		rvRetries, rvRetryAfterWaits, rvBudgetExhausted, rvHedges,
		rvHedgeWins, rvBreakerOpens, rvBreakerRejects, rvBreakerProbes,
	} {
		r.vars.Set(name, new(expvar.Int))
	}
	return r
}

// ResilienceVars exposes the client's resilience counters (retries,
// hedges, breaker transitions) as a per-client expvar map, or nil for a
// plain single-attempt client. The map is not published globally so many
// clients can coexist in one process.
func (c *Client) ResilienceVars() *expvar.Map {
	if c.res == nil {
		return nil
	}
	return c.res.vars
}

func (r *resilience) count(name string) { r.vars.Add(name, 1) }

// getVar reads one counter (test helper).
func (r *resilience) getVar(name string) int64 {
	if v, ok := r.vars.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// retryable reports whether a completed attempt's outcome may heal on
// retry: transport errors and the load-shed / transient-server statuses.
func retryable(status int, err error) bool {
	if err != nil {
		// Transport-level failure; the caller's context errors are checked
		// separately in the loop.
		return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
	}
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// do runs the resilient call loop: breaker gate → (possibly hedged)
// attempt → outcome bookkeeping → jittered, budgeted, Retry-After-aware
// backoff.
func (r *resilience) do(ctx context.Context, c *Client, method, path string, payload []byte, out any) error {
	br := r.breakerFor(path)
	for attempt := 0; ; attempt++ {
		ok, probe := br.allow(r.clk.Now(), r.cfg)
		if !ok {
			r.count(rvBreakerRejects)
			return fmt.Errorf("%w: %s %s", ErrCircuitOpen, method, path)
		}
		if probe {
			r.count(rvBreakerProbes)
		}
		status, data, retryAfter, err := r.attempt(ctx, c, method, path, payload)
		success := err == nil && !retryable(status, nil)
		if opened := br.record(success, r.clk.Now(), r.cfg); opened {
			r.count(rvBreakerOpens)
		}
		if err == nil && status >= 200 && status <= 299 {
			return interpret(status, data, retryAfter, out)
		}
		var callErr error
		if err != nil {
			callErr = err
		} else {
			callErr = interpret(status, data, retryAfter, nil)
		}
		if ctx.Err() != nil {
			return callErr
		}
		if !retryable(status, err) || attempt+1 >= r.cfg.MaxAttempts {
			return callErr
		}
		if !r.takeToken() {
			r.count(rvBudgetExhausted)
			return callErr
		}
		delay := r.backoff(attempt)
		if retryAfter > delay {
			delay = retryAfter
			r.count(rvRetryAfterWaits)
		}
		r.count(rvRetries)
		if serr := r.clk.Sleep(ctx, delay); serr != nil {
			return callErr
		}
	}
}

// attempt runs one (possibly hedged) attempt. With hedging enabled, a
// second identical request launches if the first is still in flight after
// HedgeAfter; the first success wins and the loser's context is cancelled
// (roundTrip drains and closes bodies on every path, so the loser cannot
// poison the connection pool).
func (r *resilience) attempt(ctx context.Context, c *Client, method, path string, payload []byte) (int, []byte, time.Duration, error) {
	if r.cfg.HedgeAfter <= 0 {
		return c.roundTrip(ctx, method, path, payload)
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type rtResult struct {
		hedge      bool
		status     int
		data       []byte
		retryAfter time.Duration
		err        error
	}
	results := make(chan rtResult, 2) // buffered: losers never block
	launch := func(hedge bool) {
		//lint:ignore syncmisuse,goroutinelifecycle joined by the results receive below; the buffered channel lets a cancelled loser exit freely
		go func() {
			status, data, retryAfter, err := c.roundTrip(hctx, method, path, payload)
			results <- rtResult{hedge, status, data, retryAfter, err}
		}()
	}
	launch(false)
	pending := 1
	hedgeTimer := r.clk.After(r.cfg.HedgeAfter)
	var firstLoss *rtResult
	for {
		select {
		case res := <-results:
			pending--
			if res.err == nil && res.status >= 200 && res.status <= 299 {
				if res.hedge {
					r.count(rvHedgeWins)
				}
				return res.status, res.data, res.retryAfter, nil
			}
			if pending > 0 {
				// The other attempt is still running and might succeed.
				firstLoss = &res
				continue
			}
			if firstLoss != nil {
				// Both failed; report the primary's outcome.
				if firstLoss.hedge {
					firstLoss = &res
				}
				return firstLoss.status, firstLoss.data, firstLoss.retryAfter, firstLoss.err
			}
			return res.status, res.data, res.retryAfter, res.err
		case <-hedgeTimer:
			hedgeTimer = nil
			if pending == 1 && firstLoss == nil {
				r.count(rvHedges)
				launch(true)
				pending++
			}
		}
	}
}

// backoff draws a full-jitter delay: uniform in [0, ceiling), the ceiling
// doubling per attempt from BaseBackoff up to MaxBackoff.
func (r *resilience) backoff(attempt int) time.Duration {
	ceiling := r.cfg.BaseBackoff
	for i := 0; i < attempt && ceiling < r.cfg.MaxBackoff; i++ {
		//lint:ignore overflowvol doubling is capped by MaxBackoff in the loop condition, far below overflow
		ceiling *= 2
	}
	if ceiling > r.cfg.MaxBackoff {
		ceiling = r.cfg.MaxBackoff
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return time.Duration(r.rng.Int63n(int64(ceiling)))
}

// takeToken spends one retry-budget token, refilling lazily from elapsed
// time. Reports false when the bucket is empty.
func (r *resilience) takeToken() bool {
	if r.cfg.RetryBudget < 0 {
		return true
	}
	now := r.clk.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	if elapsed := now.Sub(r.lastRefill); elapsed > 0 {
		r.tokens += float64(elapsed) / float64(r.cfg.BudgetRefill)
		if r.tokens > float64(r.cfg.RetryBudget) {
			r.tokens = float64(r.cfg.RetryBudget)
		}
	}
	r.lastRefill = now
	if r.tokens < 1 {
		return false
	}
	r.tokens--
	return true
}

func (r *resilience) breakerFor(path string) *breaker {
	r.mu.Lock()
	defer r.mu.Unlock()
	br, ok := r.breakers[path]
	if !ok {
		br = &breaker{}
		r.breakers[path] = br
	}
	return br
}

// breakerState is the classic three-state circuit machine.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return fmt.Sprintf("breakerState(%d)", int(s))
	}
}

// breaker guards one endpoint. closed → open after BreakerThreshold
// consecutive failures; open → half-open after BreakerCooldown; half-open
// admits exactly one probe, whose outcome closes or re-opens the circuit.
type breaker struct {
	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	probing  bool
}

// allow reports whether a call may proceed and whether it is the
// half-open probe.
func (b *breaker) allow(now time.Time, cfg ResilienceConfig) (ok, probe bool) {
	if cfg.BreakerThreshold < 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if now.Sub(b.openedAt) < cfg.BreakerCooldown {
			return false, false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true, true
	default: // half-open
		if b.probing {
			return false, false
		}
		b.probing = true
		return true, true
	}
}

// record feeds one attempt outcome into the machine; it reports whether
// this outcome opened (or re-opened) the circuit.
func (b *breaker) record(success bool, now time.Time, cfg ResilienceConfig) (opened bool) {
	if cfg.BreakerThreshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probing = false
		if success {
			b.state = breakerClosed
			b.failures = 0
			return false
		}
		b.state = breakerOpen
		b.openedAt = now
		return true
	default:
		if success {
			b.failures = 0
			return false
		}
		b.failures++
		if b.failures >= cfg.BreakerThreshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
		return false
	}
}

// current returns the state for tests and diagnostics.
func (b *breaker) current() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
