// Package service implements torusd, the long-running HTTP analysis
// service over the reproduction's capabilities: exact E_max loads
// (core.Analyze), the paper's lower bounds, the Theorem 1 / appendix
// bisection constructions, the E1–E33 experiment registry, and the async
// placement-search job API (jobs.go).
//
// The serving pipeline is, per request:
//
//	decode (strict JSON) → validate + canonicalize → cache key
//	  → LRU/TTL result cache
//	  → singleflight coalescing (identical concurrent requests share one run)
//	  → bounded worker pool (queue backpressure → 429, per-request
//	    deadline → 504, panic isolation → 500)
//	  → compute → cache fill → JSON response
//
// Requests are canonicalized before hashing so that syntactic variants of
// the same analysis — "linear" vs "linear:0" vs "linear:-8" on k=8, "ODR"
// vs "odr" — map to one cache entry. Observability is pure stdlib expvar:
// every counter lives in a per-server expvar.Map served at /debug/vars,
// and access logs are structured JSON lines (log/slog).
//
// Everything is standard library only, matching the repo's no-dependency
// constraint.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strings"

	"torusnet/internal/cliutil"
	"torusnet/internal/placement"
	"torusnet/internal/torus"
)

// DefaultMaxNodes caps k^d for a served analysis. The paper's tori are
// small (T²₈, T³₈ = 512 nodes); the complete-exchange engine is O(|P|²)
// pair work, so the service refuses tori past this ceiling rather than
// letting one request monopolize the pool. Configurable via Config.
const DefaultMaxNodes = 4096

// AnalyzeRequest asks for the full optimality analysis of one
// (torus, placement, routing) triple — the core.Analyze pipeline.
// Placement uses the cliutil spec grammar (linear[:C], multi:T[:S],
// diagonal[:S], full, random:N[:SEED]); Routing is one of odr, odr-multi,
// udr, udr-multi, far (case-insensitive).
type AnalyzeRequest struct {
	K         int    `json:"k"`
	D         int    `json:"d"`
	Placement string `json:"placement"`
	Routing   string `json:"routing"`
}

// Canonicalize validates the request and rewrites Placement and Routing to
// their canonical spellings, so equal analyses produce equal cache keys.
// It is idempotent: canonicalizing an already-canonical request is a no-op.
func (r *AnalyzeRequest) Canonicalize(maxNodes int) error {
	if err := checkTorus(r.K, r.D, maxNodes); err != nil {
		return err
	}
	p, err := canonicalPlacement(r.Placement, r.K, r.D)
	if err != nil {
		return err
	}
	a, err := canonicalRouting(r.Routing)
	if err != nil {
		return err
	}
	r.Placement, r.Routing = p, a
	return nil
}

// CacheKey returns the stable cache identity of the canonicalized request.
func (r *AnalyzeRequest) CacheKey() string {
	return fmt.Sprintf("analyze|k=%d|d=%d|p=%s|a=%s", r.K, r.D, r.Placement, r.Routing)
}

// BoundsRequest asks for every lower bound of the paper on one placement
// (no load computation, so it is much cheaper than a full analysis).
type BoundsRequest struct {
	K         int    `json:"k"`
	D         int    `json:"d"`
	Placement string `json:"placement"`
}

// Canonicalize validates and canonicalizes in place (idempotent).
func (r *BoundsRequest) Canonicalize(maxNodes int) error {
	if err := checkTorus(r.K, r.D, maxNodes); err != nil {
		return err
	}
	p, err := canonicalPlacement(r.Placement, r.K, r.D)
	if err != nil {
		return err
	}
	r.Placement = p
	return nil
}

// CacheKey returns the stable cache identity of the canonicalized request.
func (r *BoundsRequest) CacheKey() string {
	return fmt.Sprintf("bounds|k=%d|d=%d|p=%s", r.K, r.D, r.Placement)
}

// BisectRequest asks for one bisection construction with respect to a
// placement. Method is sweep (default), best-sweep, or dimension.
type BisectRequest struct {
	K         int    `json:"k"`
	D         int    `json:"d"`
	Placement string `json:"placement"`
	Method    string `json:"method,omitempty"`
}

// Canonicalize validates and canonicalizes in place (idempotent).
func (r *BisectRequest) Canonicalize(maxNodes int) error {
	if err := checkTorus(r.K, r.D, maxNodes); err != nil {
		return err
	}
	p, err := canonicalPlacement(r.Placement, r.K, r.D)
	if err != nil {
		return err
	}
	switch m := strings.ToLower(strings.TrimSpace(r.Method)); m {
	case "":
		r.Method = "sweep"
	case "sweep", "best-sweep", "dimension":
		r.Method = m
	default:
		return fmt.Errorf("service: unknown bisection method %q (want sweep|best-sweep|dimension)", r.Method)
	}
	r.Placement = p
	return nil
}

// CacheKey returns the stable cache identity of the canonicalized request.
func (r *BisectRequest) CacheKey() string {
	return fmt.Sprintf("bisect|k=%d|d=%d|p=%s|m=%s", r.K, r.D, r.Placement, r.Method)
}

// ExperimentRequest selects the scale of one registered experiment run.
// An empty body (or empty scale) means quick.
type ExperimentRequest struct {
	Scale string `json:"scale,omitempty"`
}

// Canonicalize validates the scale (idempotent).
func (r *ExperimentRequest) Canonicalize() error {
	switch s := strings.ToLower(strings.TrimSpace(r.Scale)); s {
	case "":
		r.Scale = "quick"
	case "quick", "full":
		r.Scale = s
	default:
		return fmt.Errorf("service: unknown experiment scale %q (want quick|full)", r.Scale)
	}
	return nil
}

// DecodeAnalyzeRequest decodes and canonicalizes one /v1/analyze body under
// the default node ceiling. It is the entry point fuzzed by
// FuzzDecodeAnalyzeRequest; the HTTP handler uses the same strict decoding.
func DecodeAnalyzeRequest(data []byte) (*AnalyzeRequest, error) {
	var req AnalyzeRequest
	if err := decodeStrict(bytes.NewReader(data), &req); err != nil {
		return nil, err
	}
	if err := req.Canonicalize(DefaultMaxNodes); err != nil {
		return nil, err
	}
	return &req, nil
}

// decodeStrict decodes exactly one JSON value, rejecting unknown fields and
// trailing data — the wire discipline of every POST endpoint.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("service: bad request body: %w", err)
	}
	if dec.More() {
		return errors.New("service: trailing data after JSON body")
	}
	return nil
}

// checkTorus validates torus parameters against both the package-level
// representation limits and the service's own serving ceiling.
func checkTorus(k, d, maxNodes int) error {
	if err := torus.Check(k, d); err != nil {
		return err
	}
	n, err := torus.Volume(k, d)
	if err != nil {
		return err
	}
	if maxNodes <= 0 {
		maxNodes = DefaultMaxNodes
	}
	if n > maxNodes {
		return fmt.Errorf("service: torus T^%d_%d has %d nodes, exceeding the service limit of %d", d, k, n, maxNodes)
	}
	return nil
}

// canonicalPlacement parses a placement spec, verifies it builds on T^d_k,
// and returns its canonical spelling: residues reduced with torus.Mod,
// defaulted fields made explicit (multi:T → multi:T:0, random:N →
// random:N:1). Canonical spellings re-parse to themselves.
func canonicalPlacement(spec string, k, d int) (string, error) {
	s, err := cliutil.ParsePlacement(strings.TrimSpace(spec))
	if err != nil {
		return "", err
	}
	var canon string
	switch v := s.(type) {
	case placement.Linear:
		canon = fmt.Sprintf("linear:%d", torus.Mod(v.C, k))
	case placement.MultipleLinear:
		canon = fmt.Sprintf("multi:%d:%d", v.T, torus.Mod(v.Start, k))
	case placement.ShiftedDiagonal:
		canon = fmt.Sprintf("diagonal:%d", torus.Mod(v.Shift, k))
	case placement.Full:
		canon = "full"
	case placement.Random:
		canon = fmt.Sprintf("random:%d:%d", v.Count, v.Seed)
	default:
		return "", fmt.Errorf("service: placement spec %q has no canonical form", spec)
	}
	// Building validates spec-vs-torus constraints (multi:T with T > k,
	// random counts past k^d, …). checkTorus has already capped k^d, so
	// this is cheap.
	if _, err := s.Build(torus.New(k, d)); err != nil {
		return "", err
	}
	return canon, nil
}

// canonicalRouting maps any accepted routing spelling to its canonical
// lower-case token.
func canonicalRouting(name string) (string, error) {
	if _, err := cliutil.ParseRouting(strings.TrimSpace(name)); err != nil {
		return "", err
	}
	switch strings.ToLower(strings.TrimSpace(name)) {
	case "odrmulti":
		return "odr-multi", nil
	case "udrmulti":
		return "udr-multi", nil
	default:
		return strings.ToLower(strings.TrimSpace(name)), nil
	}
}
