package service

// Tests for the observability layer at the service boundary: the /metrics
// Prometheus page, per-request trace trees on /debug/traces, W3C
// traceparent echo and client propagation, slow-request logging, and the
// unified accounting between access logs and counters on degraded answers.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"torusnet/internal/failpoint"
	"torusnet/internal/obs"
)

// promSampleRe matches one Prometheus text-format sample line.
var promSampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (NaN|[+-]?Inf|[-+0-9.eE]+)$`)

// TestMetricsPrometheusFormat drives a request through the server, fetches
// /metrics, and validates the exposition format line by line plus the
// presence and consistency of the key families.
func TestMetricsPrometheusFormat(t *testing.T) {
	s, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	ctx := context.Background()

	if _, err := c.Analyze(ctx, AnalyzeRequest{K: 5, D: 2, Placement: "linear", Routing: "ODR"}); err != nil {
		t.Fatalf("analyze: %v", err)
	}

	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatalf("close body: %v", cerr)
	}
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.PromContentType {
		t.Errorf("Content-Type = %q, want %q", ct, obs.PromContentType)
	}

	text := string(body)
	samples := map[string]string{}
	for i, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promSampleRe.MatchString(line) {
			t.Fatalf("line %d is not valid Prometheus text format: %q", i+1, line)
		}
		samples[line[:strings.LastIndexByte(line, ' ')]] = line[strings.LastIndexByte(line, ' ')+1:]
	}

	for _, want := range []string{
		"torusd_requests_total", "torusd_cache_misses_total", "torusd_in_flight",
		"torusd_pool_running", "torusd_pool_queued", "torusd_degraded_inline_running",
		"torusd_request_duration_seconds_count", "torusd_pool_queue_wait_seconds_count",
		"torusd_cache_age_seconds_count", "torusd_degraded_error_bound_count",
		"torusd_uptime_seconds",
	} {
		if _, ok := samples[want]; !ok {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
	if v := samples["torusd_requests_total"]; v == "0" {
		t.Errorf("torusd_requests_total = %s after a request", v)
	}
	// Histogram consistency: the +Inf bucket must equal the count.
	if inf, cnt := samples[`torusd_request_duration_seconds_bucket{le="+Inf"}`],
		samples["torusd_request_duration_seconds_count"]; inf != cnt {
		t.Errorf("request duration +Inf bucket %s != count %s", inf, cnt)
	}
	// The gated routing-kernel counters are registered process-globally and
	// must render even with the gate off.
	if !strings.Contains(text, "torusnet_routing_odr_pairs_total") {
		t.Error("gated obs counters missing from /metrics")
	}
}

// TestTraceHasPipelineStages asserts one uncached /v1/analyze request
// exports a well-formed trace whose span tree names every pipeline stage —
// the acceptance criterion asks for at least five.
func TestTraceHasPipelineStages(t *testing.T) {
	tracer := obs.NewTracer(8)
	s, c, stop := newTestServer(t, Config{Workers: 2, Tracer: tracer})
	defer stop()

	if _, err := c.Analyze(context.Background(), AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "ODR"}); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	_ = s

	traces := tracer.Snapshot(0)
	if len(traces) == 0 {
		t.Fatal("no traces exported")
	}
	var tr *obs.Trace
	for i := range traces {
		for _, sp := range traces[i].Spans {
			if sp.Name == "core.analyze" {
				tr = &traces[i]
			}
		}
	}
	if tr == nil {
		t.Fatalf("no trace contains core.analyze; got %d traces", len(traces))
	}
	if err := tr.Wellformed(); err != nil {
		t.Fatalf("trace not well-formed: %v", err)
	}
	names := map[string]bool{}
	for _, sp := range tr.Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{
		"http.request", "cache.get", "flight.do", "pool.submit", "pool.run",
		"core.analyze", "load.compute", "load.merge", "core.bounds",
	} {
		if !names[want] {
			t.Errorf("span %q missing from trace; have %v", want, names)
		}
	}
	if len(names) < 5 {
		t.Errorf("trace has %d named stages, want >= 5", len(names))
	}
}

// TestTraceparentEchoAndSeeding checks that an incoming traceparent is
// honored — the response echoes the same trace ID and the exported trace
// carries it — and that without one the server mints a fresh valid ID.
func TestTraceparentEchoAndSeeding(t *testing.T) {
	tracer := obs.NewTracer(8)
	s, _, stop := newTestServer(t, Config{Workers: 2, Tracer: tracer})
	defer stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const inID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceparentHeader, "00-"+inID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	gotID, ok := obs.ParseTraceparent(resp.Header.Get(obs.TraceparentHeader))
	if !ok || gotID != inID {
		t.Errorf("response traceparent = %q (ok=%v), want trace ID %s",
			resp.Header.Get(obs.TraceparentHeader), ok, inID)
	}
	found := false
	for _, tr := range tracer.Snapshot(0) {
		if tr.TraceID == inID {
			found = true
			if err := tr.Wellformed(); err != nil {
				t.Errorf("seeded trace: %v", err)
			}
		}
	}
	if !found {
		t.Error("no exported trace carries the incoming trace ID")
	}

	// No incoming header: the response still carries a valid fresh ID.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if cerr := resp2.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if id, ok := obs.ParseTraceparent(resp2.Header.Get(obs.TraceparentHeader)); !ok || id == inID {
		t.Errorf("unseeded response traceparent = %q, want fresh valid ID",
			resp2.Header.Get(obs.TraceparentHeader))
	}
}

// TestClientPropagatesTraceparent asserts the typed client forwards the
// context's trace ID, and that the resilient client keeps the trace ID
// stable across retries while rotating span IDs per attempt.
func TestClientPropagatesTraceparent(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		seen = append(seen, r.Header.Get(obs.TraceparentHeader))
		n := attempts
		attempts++
		mu.Unlock()
		if n == 0 {
			http.Error(w, `{"error":"transient"}`, http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(HealthResponse{Status: "ok"}); err != nil {
			t.Errorf("encode: %v", err)
		}
	}))
	defer ts.Close()

	tracer := obs.NewTracer(4)
	ctx, root := tracer.Root(context.Background(), "test.call", "")
	defer root.End()
	traceID := obs.TraceIDFromContext(ctx)

	c := NewResilientClient(ts.URL, ResilienceConfig{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, JitterSeed: 1,
	})
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 2 {
		t.Fatalf("server saw %d attempts, want 2", len(seen))
	}
	spans := map[string]bool{}
	for i, h := range seen {
		id, ok := obs.ParseTraceparent(h)
		if !ok || id != traceID {
			t.Errorf("attempt %d traceparent = %q, want trace ID %s", i, h, traceID)
			continue
		}
		spans[strings.Split(h, "-")[2]] = true
	}
	if len(spans) != 2 {
		t.Errorf("attempts shared a span ID: %v", seen)
	}
}

// TestSlowRequestLogging asserts requests over SlowThreshold are logged at
// warn level with slow=true and counted in the slow-request counter.
func TestSlowRequestLogging(t *testing.T) {
	var logBuf syncBuffer
	s, c, stop := newTestServer(t, Config{
		Workers: 2, AccessLog: &logBuf, SlowThreshold: time.Nanosecond,
	})
	defer stop()

	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("health: %v", err)
	}
	line := logBuf.String()
	for _, want := range []string{`"level":"WARN"`, `"slow":true`, `"trace":"`} {
		if !strings.Contains(line, want) {
			t.Errorf("access log line lacks %s: %s", want, line)
		}
	}
	if got := s.metrics.get(mSlow); got < 1 {
		t.Errorf("slow counter = %d, want >= 1", got)
	}
}

// TestDegradedAccountingUnified is the regression test for the accounting
// bug: degraded answers are computed inline on the handler goroutine, so
// they must count as cache misses like any other compute, be visible to
// logs and headers as degraded, and never move the pool gauges (no pool
// job exists).
func TestDegradedAccountingUnified(t *testing.T) {
	var logBuf syncBuffer
	tracer := obs.NewTracer(8)
	s, _, stop := newTestServer(t, Config{
		Workers: 2, DegradeWatermark: -1, AccessLog: &logBuf, Tracer: tracer,
	})
	defer stop()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := failpoint.Enable("service.admission", "error"); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := failpoint.Disable("service.admission"); err != nil {
			t.Fatal(err)
		}
	}()

	misses, hits := s.metrics.get(mCacheMisses), s.metrics.get(mCacheHits)
	body := `{"k":6,"d":2,"placement":"linear","routing":"ODR"}`
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var ar AnalyzeResponse
	if derr := json.NewDecoder(resp.Body).Decode(&ar); derr != nil {
		t.Fatalf("decode: %v", derr)
	}
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if !ar.Degraded {
		t.Fatalf("response not degraded: %+v", ar)
	}
	if got := resp.Header.Get(degradedHeader); got != "true" {
		t.Errorf("%s header = %q, want true", degradedHeader, got)
	}
	if got := s.metrics.get(mCacheMisses); got != misses+1 {
		t.Errorf("cache_misses moved %d→%d, want +1 on a degraded miss", misses, got)
	}
	if got := s.metrics.get(mCacheHits); got != hits {
		t.Errorf("cache_hits moved %d→%d on a degraded miss", hits, got)
	}
	if got := s.metrics.get(mDegraded); got != 1 {
		t.Errorf("degraded counter = %d, want 1", got)
	}
	if r, q := s.pool.running.Load(), s.pool.queued.Load(); r != 0 || q != 0 {
		t.Errorf("pool gauges running=%d queued=%d after inline degraded answer, want 0/0", r, q)
	}
	if got := s.inlineRunning.Load(); got != 0 {
		t.Errorf("inline gauge = %d after response, want 0", got)
	}
	if snap := s.metrics.degradedErr.Snapshot(); snap.Count != 1 {
		t.Errorf("degraded error-bound histogram count = %d, want 1", snap.Count)
	}
	if line := logBuf.String(); !strings.Contains(line, `"degraded":true`) {
		t.Errorf("access log lacks degraded:true: %s", line)
	}
	found := false
	for _, tr := range tracer.Snapshot(0) {
		for _, sp := range tr.Spans {
			if sp.Name == "compute.degraded" {
				found = true
			}
		}
		if err := tr.Wellformed(); err != nil {
			t.Errorf("degraded trace: %v", err)
		}
	}
	if !found {
		t.Error("no exported trace records compute.degraded")
	}
}

// TestHistogramBucketCumulative renders one histogram through the full
// /metrics path and checks cumulative bucket monotonicity.
func TestHistogramBucketCumulative(t *testing.T) {
	s, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	for i := 0; i < 3; i++ {
		if _, err := c.Health(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		t.Fatal(cerr)
	}
	if err != nil {
		t.Fatal(err)
	}
	last := int64(-1)
	n := 0
	for _, line := range strings.Split(string(body), "\n") {
		if !strings.HasPrefix(line, "torusd_request_duration_seconds_bucket") {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = v
		n++
	}
	if n == 0 {
		t.Fatal("no request-duration bucket lines")
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer for access logs written from
// handler goroutines while the test reads them.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
