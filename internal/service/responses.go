package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"

	"torusnet/internal/bisect"
	"torusnet/internal/bounds"
	"torusnet/internal/cliutil"
	"torusnet/internal/core"
	"torusnet/internal/load"
	"torusnet/internal/obs"
	"torusnet/internal/placement"
	"torusnet/internal/sweep"
	"torusnet/internal/torus"
)

// CutSummary is the wire form of one bisection cut.
type CutSummary struct {
	Method   string `json:"method"`
	Width    int    `json:"width"`
	ProcsA   int    `json:"procs_a"`
	ProcsB   int    `json:"procs_b"`
	Balanced bool   `json:"balanced"`
}

func cutSummary(c *bisect.Cut) CutSummary {
	return CutSummary{
		Method:   c.Method,
		Width:    c.Width(),
		ProcsA:   c.ProcsA,
		ProcsB:   c.ProcsB,
		Balanced: c.Balanced(),
	}
}

// AnalyzeResponse is the wire form of a core.Report. The echoed request
// fields are canonical, so a client can replay the exact cache key.
type AnalyzeResponse struct {
	K                int        `json:"k"`
	D                int        `json:"d"`
	Placement        string     `json:"placement"`
	Routing          string     `json:"routing"`
	PlacementName    string     `json:"placement_name"`
	Processors       int        `json:"processors"`
	Uniform          bool       `json:"uniform"`
	DensityC         float64    `json:"density_c"`
	EMax             float64    `json:"e_max"`
	MaxEdge          string     `json:"max_edge"`
	LoadPerProcessor float64    `json:"load_per_processor"`
	TotalLoad        float64    `json:"total_load"`
	BlaumBound       float64    `json:"blaum_bound"`
	BisectionBound   float64    `json:"bisection_bound"`
	ImprovedBound    float64    `json:"improved_bound"`
	BestLowerBound   float64    `json:"best_lower_bound"`
	OptimalityRatio  float64    `json:"optimality_ratio"`
	SweepCut         CutSummary `json:"sweep_cut"`
	DimensionCut     CutSummary `json:"dimension_cut"`
	// Engine reports which load engine produced E_max ("symmetry" for the
	// translation fast path, "generic" for the pair loop, "montecarlo" for
	// degraded answers, "analytic" for closed-form fast-lane answers).
	// Engine choice never changes exact results beyond float summation
	// order, so it is not part of the cache key.
	Engine string `json:"engine"`
	// Exact reports whether EMax is the exact expectation rather than an
	// upper bound (analytic Theorem 3–5 cells) or an estimate (degraded
	// answers). Every computed-engine answer is exact.
	Exact bool `json:"exact"`
	// Theorem names the paper closed form behind an analytic answer
	// ("theorem2" … "theorem5"); empty for computed engines. Analytic
	// answers carry no per-edge fields: MaxEdge, TotalLoad, and the cut
	// summaries are zero.
	Theorem string `json:"theorem,omitempty"`
	Cached  bool   `json:"cached"`
	// Degraded marks a load-shed answer: EMax is a Monte Carlo estimate
	// over DegradedRounds exchanges rather than the exact expectation, and
	// ErrorBound is 3× the standard error of that estimate at the maximal
	// edge (0 when the routing is single-path, e.g. ODR, whose samples
	// have no spread — the estimate is then exact). Degraded answers are
	// never cached.
	Degraded   bool    `json:"degraded,omitempty"`
	ErrorBound float64 `json:"error_bound,omitempty"`
}

// BoundsResponse reports every lower bound of the paper for a placement.
type BoundsResponse struct {
	K                int     `json:"k"`
	D                int     `json:"d"`
	Placement        string  `json:"placement"`
	PlacementName    string  `json:"placement_name"`
	Processors       int     `json:"processors"`
	Uniform          bool    `json:"uniform"`
	DensityC         float64 `json:"density_c"`
	BlaumBound       float64 `json:"blaum_bound"`
	BisectionBound   float64 `json:"bisection_bound"`
	ImprovedBound    float64 `json:"improved_bound"`
	BestLowerBound   float64 `json:"best_lower_bound"`
	Theorem1Width    float64 `json:"theorem1_width"`
	CorollaryCeiling float64 `json:"corollary_ceiling"`
	Cached           bool    `json:"cached"`
}

// BisectResponse reports one bisection construction and its Eq. 8 bound.
type BisectResponse struct {
	K              int        `json:"k"`
	D              int        `json:"d"`
	Placement      string     `json:"placement"`
	PlacementName  string     `json:"placement_name"`
	Processors     int        `json:"processors"`
	Method         string     `json:"method"`
	Cut            CutSummary `json:"cut"`
	SeparatorBound float64    `json:"separator_bound"`
	Cached         bool       `json:"cached"`
}

// ExperimentInfo is one registry entry of the GET /v1/experiments listing.
type ExperimentInfo struct {
	ID       string `json:"id"`
	Title    string `json:"title"`
	PaperRef string `json:"paper_ref,omitempty"`
}

// ExperimentRunResponse carries one experiment's rendered table.
type ExperimentRunResponse struct {
	ID     string          `json:"id"`
	Scale  string          `json:"scale"`
	Table  json.RawMessage `json:"table"`
	Cached bool            `json:"cached"`
}

// HealthResponse is the GET /healthz body.
type HealthResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_s"`
	Experiments   int     `json:"experiments"`
}

// ReadyResponse is the GET /readyz body. Mode is "single" (always ready)
// or "cluster" (ready reflects ring join state); the peer fields are
// cluster-mode only.
type ReadyResponse struct {
	Ready       bool   `json:"ready"`
	Mode        string `json:"mode"`
	Self        string `json:"self,omitempty"`
	Epoch       uint64 `json:"epoch,omitempty"`
	Replication int    `json:"replication,omitempty"`
	Peers       int    `json:"peers,omitempty"`
	PeersDown   int    `json:"peers_down"`
}

// ErrorResponse is the uniform error body of every non-200 response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Peer-fill decoders: each turns a home peer's 200 body into the same
// immutable value type local computation stores in the result cache, so a
// filled entry is indistinguishable from a locally computed one. The
// handler stamps per-caller fields (Cached) after the cache read, exactly
// as for local values.

// decodeAnalyzeFill decodes a peer /v1/analyze fill. A degraded body is
// rejected: degraded answers are never cached locally on the home peer and
// must not become cached-exact anywhere else — the filler falls back to
// computing the exact answer itself.
func decodeAnalyzeFill(data []byte) (any, error) {
	var r AnalyzeResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	if r.Degraded {
		return nil, errors.New("service: peer fill answered degraded; computing exactly instead")
	}
	return r, nil
}

// decodeBoundsFill decodes a peer /v1/bounds fill.
func decodeBoundsFill(data []byte) (any, error) {
	var r BoundsResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeBisectFill decodes a peer /v1/bisect fill.
func decodeBisectFill(data []byte) (any, error) {
	var r BisectResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return r, nil
}

// decodeExperimentFill decodes a peer /v1/experiments/{id} fill.
func decodeExperimentFill(data []byte) (any, error) {
	var r ExperimentRunResponse
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, err
	}
	return r, nil
}

// jsonSafe clamps non-finite bound values (e.g. a separator bound over an
// empty boundary) to representable JSON numbers.
func jsonSafe(v float64) float64 {
	switch {
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	case math.IsNaN(v):
		return 0
	}
	return v
}

// buildPlacement instantiates the canonical placement spec on T^d_k. The
// request was canonicalized, so failures here are internal errors, not
// user errors.
func buildPlacement(spec string, k, d int) (*placement.Placement, error) {
	s, err := cliutil.ParsePlacement(spec)
	if err != nil {
		return nil, fmt.Errorf("service: canonical placement failed to re-parse: %w", err)
	}
	return s.Build(torus.New(k, d))
}

// computeAnalyze runs the full core pipeline for a canonical request,
// recording the core/load span tree under any trace carried by ctx.
func computeAnalyze(ctx context.Context, req AnalyzeRequest, opts load.Options) (AnalyzeResponse, error) {
	p, err := buildPlacement(req.Placement, req.K, req.D)
	if err != nil {
		return AnalyzeResponse{}, err
	}
	alg, err := cliutil.ParseRouting(req.Routing)
	if err != nil {
		return AnalyzeResponse{}, err
	}
	rep := core.AnalyzeCtx(ctx, p, alg, opts)
	return AnalyzeResponse{
		K:                req.K,
		D:                req.D,
		Placement:        req.Placement,
		Routing:          req.Routing,
		PlacementName:    p.Name(),
		Processors:       p.Size(),
		Uniform:          rep.Uniform,
		DensityC:         rep.DensityC,
		EMax:             rep.Load.Max,
		MaxEdge:          p.Torus().EdgeString(rep.Load.MaxEdge),
		LoadPerProcessor: rep.LoadPerProcessor,
		TotalLoad:        rep.Load.Total,
		BlaumBound:       jsonSafe(rep.BlaumBound),
		BisectionBound:   jsonSafe(rep.BisectionBound),
		ImprovedBound:    jsonSafe(rep.ImprovedBound),
		BestLowerBound:   jsonSafe(rep.BestLowerBound()),
		OptimalityRatio:  jsonSafe(rep.OptimalityRatio),
		SweepCut:         cutSummary(rep.SweepCut),
		DimensionCut:     cutSummary(rep.DimensionCut),
		Engine:           rep.Load.Engine,
		Exact:            rep.Load.Exact,
		Theorem:          rep.Load.Theorem,
	}, nil
}

// computeDegradedAnalyze is the load-shed answer for /v1/analyze: the
// bound suite is still exact (it is cheap), but E_max comes from a
// fixed-round Monte Carlo sample instead of the exact engine, with a
// 3-standard-error bound on the estimate. The sampling seed derives from
// the cache key, so degraded answers for one canonical request are
// deterministic and replayable.
func computeDegradedAnalyze(ctx context.Context, req AnalyzeRequest, opts load.Options, rounds int) (AnalyzeResponse, error) {
	_, sp := obs.Start(ctx, "compute.degraded")
	defer sp.End()
	sp.SetAttrInt("rounds", int64(rounds))
	p, err := buildPlacement(req.Placement, req.K, req.D)
	if err != nil {
		return AnalyzeResponse{}, err
	}
	alg, err := cliutil.ParseRouting(req.Routing)
	if err != nil {
		return AnalyzeResponse{}, err
	}
	h := fnv.New64a()
	//lint:ignore errcheck-lite fnv.Write is documented to never return an error
	h.Write([]byte(req.CacheKey()))
	seed := int64(h.Sum64())
	mc := load.MonteCarlo(p, alg, rounds, seed, opts)

	// The cheap exact half: density, bounds, cuts (same math as
	// computeBounds, assembled into the analyze shape).
	t := p.Torus()
	uniform := p.IsUniform()
	kd1 := 1.0
	for i := 0; i < t.D()-1; i++ {
		kd1 *= float64(t.K())
	}
	densityC := 0.0
	if kd1 > 0 {
		densityC = float64(p.Size()) / kd1
	}
	blaum := bounds.Blaum(p.Size(), t.D())
	sweepCut := bisect.Sweep(p)
	dimCut := bisect.BestDimensionCut(p)
	bisection := bounds.Bisection(p.Size(), sweepCut.Width())
	if dimCut.Balanced() {
		if b := bounds.Bisection(p.Size(), dimCut.Width()); b > bisection {
			bisection = b
		}
	}
	improved := 0.0
	if uniform {
		improved = bounds.Improved(densityC, t.K(), t.D())
	}
	best := math.Max(blaum, math.Max(bisection, improved))

	total := 0.0
	for _, v := range mc.MeanLoads {
		total += v
	}
	ratio := 0.0
	if best > 0 {
		ratio = mc.MaxMean / best
	}
	perProc := 0.0
	if p.Size() > 0 {
		perProc = mc.MaxMean / float64(p.Size())
	}
	return AnalyzeResponse{
		K:                req.K,
		D:                req.D,
		Placement:        req.Placement,
		Routing:          req.Routing,
		PlacementName:    p.Name(),
		Processors:       p.Size(),
		Uniform:          uniform,
		DensityC:         densityC,
		EMax:             mc.MaxMean,
		MaxEdge:          t.EdgeString(mc.MaxMeanEdge),
		LoadPerProcessor: perProc,
		TotalLoad:        total,
		BlaumBound:       jsonSafe(blaum),
		BisectionBound:   jsonSafe(bisection),
		ImprovedBound:    jsonSafe(improved),
		BestLowerBound:   jsonSafe(best),
		OptimalityRatio:  jsonSafe(ratio),
		SweepCut:         cutSummary(sweepCut),
		DimensionCut:     cutSummary(dimCut),
		Engine:           load.EngineMonteCarlo,
		Degraded:         true,
		ErrorBound:       jsonSafe(3 * mc.MaxMeanStdErr),
	}, nil
}

// computeBounds evaluates the bound suite without the O(|P|²) load run —
// the cheap half of core.Analyze.
func computeBounds(ctx context.Context, req BoundsRequest) (BoundsResponse, error) {
	_, sp := obs.Start(ctx, "compute.bounds")
	defer sp.End()
	p, err := buildPlacement(req.Placement, req.K, req.D)
	if err != nil {
		return BoundsResponse{}, err
	}
	t := p.Torus()
	uniform := p.IsUniform()
	kd1 := 1.0
	for i := 0; i < t.D()-1; i++ {
		kd1 *= float64(t.K())
	}
	densityC := 0.0
	if kd1 > 0 {
		densityC = float64(p.Size()) / kd1
	}
	blaum := bounds.Blaum(p.Size(), t.D())
	sweepCut := bisect.Sweep(p)
	dimCut := bisect.BestDimensionCut(p)
	bisection := bounds.Bisection(p.Size(), sweepCut.Width())
	if dimCut.Balanced() {
		if b := bounds.Bisection(p.Size(), dimCut.Width()); b > bisection {
			bisection = b
		}
	}
	improved := 0.0
	if uniform {
		improved = bounds.Improved(densityC, t.K(), t.D())
	}
	best := math.Max(blaum, math.Max(bisection, improved))
	return BoundsResponse{
		K:                req.K,
		D:                req.D,
		Placement:        req.Placement,
		PlacementName:    p.Name(),
		Processors:       p.Size(),
		Uniform:          uniform,
		DensityC:         densityC,
		BlaumBound:       jsonSafe(blaum),
		BisectionBound:   jsonSafe(bisection),
		ImprovedBound:    jsonSafe(improved),
		BestLowerBound:   jsonSafe(best),
		Theorem1Width:    bounds.Theorem1Width(t.K(), t.D()),
		CorollaryCeiling: bounds.CorollaryBisectionCeiling(t.K(), t.D()),
	}, nil
}

// computeBisect runs the requested bisection construction.
func computeBisect(ctx context.Context, req BisectRequest) (BisectResponse, error) {
	_, sp := obs.Start(ctx, "compute.bisect")
	defer sp.End()
	sp.SetAttr("method", req.Method)
	p, err := buildPlacement(req.Placement, req.K, req.D)
	if err != nil {
		return BisectResponse{}, err
	}
	var cut *bisect.Cut
	switch req.Method {
	case "sweep":
		cut = bisect.Sweep(p)
	case "best-sweep":
		cut = bisect.BestSweep(p)
	case "dimension":
		cut = bisect.BestDimensionCut(p)
	default:
		return BisectResponse{}, fmt.Errorf("service: unknown bisection method %q", req.Method)
	}
	return BisectResponse{
		K:              req.K,
		D:              req.D,
		Placement:      req.Placement,
		PlacementName:  p.Name(),
		Processors:     p.Size(),
		Method:         req.Method,
		Cut:            cutSummary(cut),
		SeparatorBound: jsonSafe(bounds.Bisection(p.Size(), cut.Width())),
	}, nil
}

// computeExperiment runs one registered experiment at the given scale,
// tracing and profile-labeling the run via sweep.RunTraced.
func computeExperiment(ctx context.Context, e sweep.Experiment, scale string) (ExperimentRunResponse, error) {
	s := sweep.Quick
	if scale == "full" {
		s = sweep.Full
	}
	tb := e.RunTraced(ctx, s)
	raw, err := tb.JSON()
	if err != nil {
		return ExperimentRunResponse{}, fmt.Errorf("service: rendering experiment %s: %w", e.ID, err)
	}
	return ExperimentRunResponse{ID: e.ID, Scale: scale, Table: raw}, nil
}
