package service

import "expvar"

// metrics is the server's expvar surface. The map is per-Server (not
// globally published) so tests can boot many servers in one process;
// /debug/vars serves it under the "torusd" key. cmd/torusd additionally
// publishes it into the process-global expvar namespace.
type metrics struct {
	vars       *expvar.Map
	byEndpoint *expvar.Map
}

// Counter names. Pre-seeded to zero so /debug/vars always shows the full
// schema.
const (
	mRequests       = "requests"
	mErrors         = "errors"
	mPanics         = "panics"
	mQueueFull      = "queue_full"
	mTimeouts       = "timeouts"
	mCacheHits      = "cache_hits"
	mCacheMisses    = "cache_misses"
	mCoalesced      = "coalesced"
	mInFlight       = "in_flight"
	mWriteErrors    = "write_errors"
	mLatencyMSTotal = "latency_ms_total"
	mDegraded       = "degraded"
)

func newMetrics() *metrics {
	m := &metrics{vars: new(expvar.Map).Init(), byEndpoint: new(expvar.Map).Init()}
	for _, name := range []string{
		mRequests, mErrors, mPanics, mQueueFull, mTimeouts,
		mCacheHits, mCacheMisses, mCoalesced, mInFlight,
		mWriteErrors, mLatencyMSTotal, mDegraded,
	} {
		m.vars.Set(name, new(expvar.Int))
	}
	m.vars.Set("requests_by_endpoint", m.byEndpoint)
	return m
}

// add increments a top-level counter.
func (m *metrics) add(name string, delta int64) { m.vars.Add(name, delta) }

// endpoint counts one request against its route pattern.
func (m *metrics) endpoint(pattern string) { m.byEndpoint.Add(pattern, 1) }

// get reads a top-level integer counter (test helper; 0 when absent).
func (m *metrics) get(name string) int64 {
	if v, ok := m.vars.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}
