package service

import (
	"bytes"
	"expvar"
	"net/http"
	"sort"
	"time"

	"torusnet/internal/obs"
)

// metrics is the server's observability surface: the expvar map served at
// /debug/vars (per-Server, not globally published, so tests can boot many
// servers in one process) plus fixed-bucket histograms. Both are rendered
// together in Prometheus text form at GET /metrics; cmd/torusd additionally
// publishes the expvar map into the process-global namespace.
type metrics struct {
	vars       *expvar.Map
	byEndpoint *expvar.Map

	// reqSeconds observes end-to-end request latency in the outermost
	// middleware. Buckets span 500µs (cache hits) through 10s; anything
	// past that is already in timeout territory and lands in +Inf.
	reqSeconds *obs.Histogram
	// queueWait observes how long pooled jobs sat queued before a worker
	// picked them up — the backpressure signal behind the degrade
	// watermark. Sub-millisecond when healthy, so buckets start at 10µs.
	queueWait *obs.Histogram
	// cacheAge observes the age of served result-cache hits; the top
	// finite bucket sits above the 10-minute default TTL so hits close
	// to expiry are still resolvable.
	cacheAge *obs.Histogram
	// degradedErr observes the 3σ error bound reported on degraded Monte
	// Carlo answers. Mass drifting into the large buckets means load
	// shedding is costing answer quality.
	degradedErr *obs.Histogram
	// peerFill observes the latency of successful cluster peer fills — one
	// intra-cluster HTTP round trip, so buckets span the same range as
	// reqSeconds minus the timeout tail.
	peerFill *obs.Histogram
	// jobSeconds observes end-to-end async search job durations, submit to
	// terminal state. Lee-sphere seeds finish in milliseconds; exhaustive
	// branch-and-bound runs for seconds, so the buckets stretch to minutes.
	jobSeconds *obs.Histogram
}

// Counter names. Pre-seeded to zero so /debug/vars always shows the full
// schema.
const (
	mRequests       = "requests"
	mErrors         = "errors"
	mPanics         = "panics"
	mQueueFull      = "queue_full"
	mTimeouts       = "timeouts"
	mCacheHits      = "cache_hits"
	mCacheMisses    = "cache_misses"
	mCoalesced      = "coalesced"
	mInFlight       = "in_flight"
	mWriteErrors    = "write_errors"
	mLatencyMSTotal = "latency_ms_total"
	mDegraded       = "degraded"
	mSlow           = "slow_requests"
	mPeerFills      = "peer_fills"
	mPeerFillErrors = "peer_fill_errors"
	mPeerHops       = "peer_hops"
	mAnalyticHits   = "analytic_hits"
	mHotHits        = "hot_hits"
	mReplicaStores  = "replica_stores"
	mJobsSubmitted  = "jobs_submitted"
	mJobsDone       = "jobs_done"
	mJobsFailed     = "jobs_failed"
	mJobsCancelled  = "jobs_cancelled"
	mJobsRejected   = "jobs_rejected"
	mJobsExpired    = "jobs_expired"
)

func newMetrics() *metrics {
	m := &metrics{
		vars:        new(expvar.Map).Init(),
		byEndpoint:  new(expvar.Map).Init(),
		reqSeconds:  obs.NewHistogram(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10),
		queueWait:   obs.NewHistogram(0.00001, 0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5),
		cacheAge:    obs.NewHistogram(1, 5, 15, 60, 120, 300, 600, 900),
		degradedErr: obs.NewHistogram(0.001, 0.01, 0.05, 0.1, 0.5, 1, 5, 25),
		peerFill:    obs.NewHistogram(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5),
		jobSeconds:  obs.NewHistogram(0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 15, 60, 300),
	}
	for _, name := range []string{
		mRequests, mErrors, mPanics, mQueueFull, mTimeouts,
		mCacheHits, mCacheMisses, mCoalesced, mInFlight,
		mWriteErrors, mLatencyMSTotal, mDegraded, mSlow,
		mPeerFills, mPeerFillErrors, mPeerHops, mAnalyticHits,
		mHotHits, mReplicaStores,
		mJobsSubmitted, mJobsDone, mJobsFailed,
		mJobsCancelled, mJobsRejected, mJobsExpired,
	} {
		m.vars.Set(name, new(expvar.Int))
	}
	m.vars.Set("requests_by_endpoint", m.byEndpoint)
	return m
}

// add increments a top-level counter.
func (m *metrics) add(name string, delta int64) { m.vars.Add(name, delta) }

// endpoint counts one request against its route pattern.
func (m *metrics) endpoint(pattern string) { m.byEndpoint.Add(pattern, 1) }

// get reads a top-level integer counter (test helper; 0 when absent).
func (m *metrics) get(name string) int64 {
	if v, ok := m.vars.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// endpointCounts snapshots the per-endpoint request counts with a sorted
// key list for stable /metrics output.
func (m *metrics) endpointCounts() ([]string, map[string]int64) {
	counts := make(map[string]int64)
	m.byEndpoint.Do(func(kv expvar.KeyValue) {
		if v, ok := kv.Value.(*expvar.Int); ok {
			counts[kv.Key] = v.Value()
		}
	})
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, counts
}

// promSchema maps the expvar counters onto Prometheus families in a fixed
// order, so /metrics output is stable and diffable. OBSERVABILITY.md
// documents each family.
var promSchema = []struct {
	src, name, help string
	gauge           bool
}{
	{mRequests, "torusd_requests_total", "HTTP requests received", false},
	{mErrors, "torusd_errors_total", "HTTP responses with status >= 400", false},
	{mPanics, "torusd_panics_total", "analysis panics recovered by the pool shield", false},
	{mQueueFull, "torusd_queue_full_total", "requests shed with 429 because the pool queue was full", false},
	{mTimeouts, "torusd_timeouts_total", "requests that exceeded the compute deadline", false},
	{mCacheHits, "torusd_cache_hits_total", "result-cache hits", false},
	{mCacheMisses, "torusd_cache_misses_total", "result-cache misses", false},
	{mCoalesced, "torusd_coalesced_total", "requests served by another caller's in-flight computation", false},
	{mWriteErrors, "torusd_write_errors_total", "response writes that failed mid-stream", false},
	{mLatencyMSTotal, "torusd_latency_ms_total", "summed request latency in milliseconds", false},
	{mDegraded, "torusd_degraded_total", "load-shed Monte Carlo answers served by /v1/analyze", false},
	{mSlow, "torusd_slow_requests_total", "requests slower than the configured slow threshold", false},
	{mPeerFills, "torusd_peer_fills_total", "cache misses served by the key's home cluster peer", false},
	{mPeerFillErrors, "torusd_peer_fill_errors_total", "peer fills lost to ring, dial, or decode failures", false},
	{mPeerHops, "torusd_peer_hops_total", "fill requests served on behalf of cluster peers", false},
	{mAnalyticHits, "torusd_analytic_hits_total", "analyze requests answered by the closed-form fast lane", false},
	{mHotHits, "torusd_hot_hits_total", "requests served from the pinned hot-key store", false},
	{mReplicaStores, "torusd_replica_stores_total", "write-through replica puts accepted from peers", false},
	{mJobsSubmitted, "torusd_jobs_submitted_total", "async search jobs accepted by /v1/optimize", false},
	{mJobsDone, "torusd_jobs_done_total", "async search jobs that completed successfully", false},
	{mJobsFailed, "torusd_jobs_failed_total", "async search jobs that failed or timed out", false},
	{mJobsCancelled, "torusd_jobs_cancelled_total", "async search jobs cancelled by DELETE /v1/jobs/{id}", false},
	{mJobsRejected, "torusd_jobs_rejected_total", "job submissions shed with 429 at the MaxJobs capacity", false},
	{mJobsExpired, "torusd_jobs_expired_total", "finished job records expired by the TTL janitor", false},
	{mInFlight, "torusd_in_flight", "requests currently being served", true},
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: the expvar counters as torusd_* families, the pool and degraded
// gauges, the four histograms, every process-global gated obs.Counter
// (e.g. the routing-kernel pair counters), and the tracer's ring stats.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	for _, f := range promSchema {
		v := float64(s.metrics.get(f.src))
		if f.gauge {
			obs.PromGauge(&buf, f.name, f.help, v)
		} else {
			obs.PromCounter(&buf, f.name, f.help, v)
		}
	}
	keys, counts := s.metrics.endpointCounts()
	obs.PromLabeledCounter(&buf, "torusd_requests_by_endpoint_total",
		"HTTP requests by route pattern", "endpoint", keys, counts)
	obs.PromGauge(&buf, "torusd_pool_running", "pooled jobs currently executing", float64(s.pool.running.Load()))
	obs.PromGauge(&buf, "torusd_pool_queued", "pooled jobs waiting for a worker", float64(s.pool.queued.Load()))
	obs.PromGauge(&buf, "torusd_pool_utilization",
		"(running+queued)/(workers+queue capacity), the admission controller's signal", s.pool.utilization())
	obs.PromCounter(&buf, "torusd_pool_worker_restarts_total",
		"workers respawned after a crash", float64(s.pool.restarts.Load()))
	obs.PromCounter(&buf, "torusd_pool_worker_replacements_total",
		"workers replaced by the wedge watchdog", float64(s.pool.replacements.Load()))
	obs.PromGauge(&buf, "torusd_degraded_inline_running",
		"degraded Monte Carlo answers computing inline right now", float64(s.inlineRunning.Load()))
	obs.PromGauge(&buf, "torusd_jobs_running", "async search jobs currently executing", float64(s.jobs.runningCount()))
	obs.PromGauge(&buf, "torusd_jobs_tracked", "job records currently tracked (running + finished, pre-TTL)", float64(s.jobs.tracked()))
	obs.PromHistogram(&buf, "torusd_request_duration_seconds",
		"end-to-end HTTP request latency", s.metrics.reqSeconds)
	obs.PromHistogram(&buf, "torusd_pool_queue_wait_seconds",
		"time pooled jobs spent queued before a worker picked them up", s.metrics.queueWait)
	obs.PromHistogram(&buf, "torusd_cache_age_seconds",
		"age of served result-cache hits", s.metrics.cacheAge)
	obs.PromHistogram(&buf, "torusd_degraded_error_bound",
		"3-sigma error bound reported on degraded Monte Carlo answers", s.metrics.degradedErr)
	obs.PromHistogram(&buf, "torusd_job_duration_seconds",
		"async search job duration, submit to terminal state", s.metrics.jobSeconds)
	if cl := s.cfg.Cluster; cl != nil {
		obs.PromGauge(&buf, "torusd_cluster_peers", "cluster membership size including self",
			float64(len(cl.Status().Peers)))
		obs.PromGauge(&buf, "torusd_cluster_peers_down", "remote peers currently marked down",
			float64(cl.DownPeers()))
		obs.PromGauge(&buf, "torusd_cluster_epoch", "current membership epoch (advances on every ring swap)",
			float64(cl.Epoch()))
		obs.PromGauge(&buf, "torusd_hotkeys", "keys currently pinned in the hot store",
			float64(cl.HotKeys()))
		obs.PromHistogram(&buf, "torusd_peer_fill_seconds",
			"latency of successful cluster peer fills", s.metrics.peerFill)
	}
	obs.PromCounters(&buf)
	if tr := s.tracer(); tr != nil {
		st := tr.Stats()
		obs.PromCounter(&buf, "torusd_traces_exported_total",
			"finished traces exported to the ring buffer", float64(st.Exported))
		obs.PromCounter(&buf, "torusd_traces_evicted_total",
			"exported traces overwritten by newer ones", float64(st.Evicted))
		obs.PromCounter(&buf, "torusd_spans_late_total",
			"spans that ended after their root exported", float64(st.Late))
		obs.PromGauge(&buf, "torusd_traces_buffered", "traces currently buffered", float64(st.Buffered))
	}
	obs.PromGauge(&buf, "torusd_uptime_seconds", "seconds since server start", time.Since(s.started).Seconds())
	w.Header().Set("Content-Type", obs.PromContentType)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.metrics.add(mWriteErrors, 1)
	}
}
