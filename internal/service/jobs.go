package service

// Async placement-search jobs: POST /v1/optimize answers 202 with a job id
// immediately, the search runs on its own goroutine (bypassing the pooled
// request pipeline — searches run for seconds to minutes, far past any
// HTTP deadline), and clients poll GET /v1/jobs/{id} for progress
// snapshots until the job reaches a terminal state. DELETE cancels a
// running job (the search returns its best-so-far placement) or drops a
// finished record. Finished records linger for Config.JobTTL so slow
// pollers still find their result, then the janitor expires them.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"torusnet/internal/cliutil"
	"torusnet/internal/failpoint"
	"torusnet/internal/obs"
	"torusnet/internal/optimize"
	"torusnet/internal/torus"
)

// Job states, as reported in JobSnapshot.State. running is the only
// non-terminal state.
const (
	JobStateRunning   = "running"
	JobStateDone      = "done"
	JobStateFailed    = "failed"
	JobStateCancelled = "cancelled"
)

// strategyAuto is the canonical "let the server pick" strategy: exhaustive
// branch-and-bound when the torus is small enough to prove optimality
// quickly, Lee-sphere-seeded annealing otherwise.
const strategyAuto = "auto"

// autoBranchBoundNodes is the torus size ceiling for the auto strategy to
// pick branch-and-bound: past it a proof within the job timeout is not
// plausible (T³₈'s 512 nodes already blow the default expansion budget),
// so auto falls back to seeded annealing.
const autoBranchBoundNodes = 256

// errJobCapacity sheds job submissions past Config.MaxJobs with 429.
var errJobCapacity = errors.New("service: job capacity reached; retry later")

// OptimizeRequest asks for a placement search on T^d_k: find Size
// processors minimizing E_max under Routing. Strategy is auto (default),
// anneal, bnb, or leesphere; Steps, Seed, and MaxVisited tune the anneal
// and branch-and-bound searchers (zero means their package defaults).
type OptimizeRequest struct {
	K          int    `json:"k"`
	D          int    `json:"d"`
	Size       int    `json:"size,omitempty"`
	Routing    string `json:"routing"`
	Strategy   string `json:"strategy,omitempty"`
	Steps      int    `json:"steps,omitempty"`
	Seed       int64  `json:"seed,omitempty"`
	MaxVisited int64  `json:"max_visited,omitempty"`
}

// Canonicalize validates the request and rewrites Routing and Strategy to
// canonical spellings; Size 0 defaults to k^{d-1}, the paper's |P|.
// Idempotent, like every request Canonicalize.
func (r *OptimizeRequest) Canonicalize(maxNodes int) error {
	if err := checkTorus(r.K, r.D, maxNodes); err != nil {
		return err
	}
	a, err := canonicalRouting(r.Routing)
	if err != nil {
		return err
	}
	nodes, err := torus.Volume(r.K, r.D)
	if err != nil {
		return err
	}
	if r.Size == 0 {
		size := 1
		for i := 0; i < r.D-1; i++ {
			size *= r.K
		}
		r.Size = size
	}
	if r.Size < 2 || r.Size > nodes {
		return fmt.Errorf("service: placement size %d out of range [2, %d]", r.Size, nodes)
	}
	switch s := strings.ToLower(strings.TrimSpace(r.Strategy)); s {
	case "":
		r.Strategy = strategyAuto
	case strategyAuto, optimize.StrategyAnneal, optimize.StrategyBranchBound, optimize.StrategyLeeSphere:
		r.Strategy = s
	default:
		return fmt.Errorf("service: unknown search strategy %q (want auto|%s|%s|%s)",
			r.Strategy, optimize.StrategyAnneal, optimize.StrategyBranchBound, optimize.StrategyLeeSphere)
	}
	if r.Steps < 0 || r.MaxVisited < 0 {
		return fmt.Errorf("service: steps and max_visited must be non-negative")
	}
	r.Routing = a
	return nil
}

// OptimizeResponse is the wire form of an optimize.Result. Strategy is the
// resolved searcher (never "auto"); Nodes is the best placement found.
type OptimizeResponse struct {
	K          int     `json:"k"`
	D          int     `json:"d"`
	Size       int     `json:"size"`
	Routing    string  `json:"routing"`
	Strategy   string  `json:"strategy"`
	Nodes      []int   `json:"nodes"`
	EMax       float64 `json:"e_max"`
	StartEMax  float64 `json:"start_e_max"`
	LowerBound float64 `json:"lower_bound"`
	Gap        float64 `json:"gap"`
	Proven     bool    `json:"proven"`
	Accepted   int     `json:"accepted,omitempty"`
	Steps      int     `json:"steps,omitempty"`
	Visited    int64   `json:"visited,omitempty"`
	Pruned     int64   `json:"pruned,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// JobAccepted is the 202 body of POST /v1/optimize.
type JobAccepted struct {
	ID    string `json:"id"`
	State string `json:"state"`
	Poll  string `json:"poll"`
}

// JobSnapshot is one observation of a job, served by GET /v1/jobs[/{id}].
// Step/Steps track annealing progress, Visited branch-and-bound expansions;
// BestEMax is the best energy seen so far. Result is set in terminal states
// (including a best-so-far partial result for cancelled jobs); Error is set
// for failed jobs.
type JobSnapshot struct {
	ID        string            `json:"id"`
	State     string            `json:"state"`
	Strategy  string            `json:"strategy"`
	Step      int               `json:"step,omitempty"`
	Steps     int               `json:"steps,omitempty"`
	Visited   int64             `json:"visited,omitempty"`
	BestEMax  float64           `json:"best_e_max,omitempty"`
	ElapsedMS float64           `json:"elapsed_ms"`
	Result    *OptimizeResponse `json:"result,omitempty"`
	Error     string            `json:"error,omitempty"`
}

// job is the manager's record of one search. All mutable fields are
// guarded by the manager's mutex; the runner goroutine updates progress
// through it.
type job struct {
	id       string
	state    string
	strategy string
	created  time.Time
	finished time.Time
	cancel   context.CancelFunc

	step, steps int
	visited     int64
	bestEMax    float64
	result      *OptimizeResponse
	errMsg      string
}

// jobManager owns the async search jobs: bounded admission, one runner
// goroutine per job, TTL expiry of finished records, and joinable shutdown
// (close cancels every runner and waits for the janitor and runners to
// exit, so tests can assert zero goroutine leaks).
type jobManager struct {
	mu      sync.Mutex
	jobs    map[string]*job
	seq     int64
	running int

	maxJobs int
	ttl     time.Duration
	timeout time.Duration
	workers int

	baseCtx    context.Context
	baseCancel context.CancelFunc
	wg         sync.WaitGroup
	metrics    *metrics
}

// newJobManager starts the manager and, when ttl > 0, its janitor. Jobs
// outlive the requests that submit them, so their lifecycle roots at
// context.Background() here rather than in any request context; close
// cancels it.
func newJobManager(cfg Config, m *metrics) *jobManager {
	ctx, cancel := context.WithCancel(context.Background())
	jm := &jobManager{
		jobs:       make(map[string]*job),
		maxJobs:    cfg.MaxJobs,
		ttl:        cfg.JobTTL,
		timeout:    cfg.JobTimeout,
		workers:    cfg.AnalysisWorkers,
		baseCtx:    ctx,
		baseCancel: cancel,
		metrics:    m,
	}
	if jm.ttl > 0 {
		interval := jm.ttl / 4
		if interval < 10*time.Millisecond {
			interval = 10 * time.Millisecond
		}
		if interval > 30*time.Second {
			interval = 30 * time.Second
		}
		jm.wg.Add(1)
		//lint:ignore syncmisuse janitor is joined in (*jobManager).close via wg.Wait
		go jm.janitor(interval)
	}
	return jm
}

// close cancels every running job and the janitor, then joins them.
func (jm *jobManager) close() {
	jm.baseCancel()
	jm.wg.Wait()
}

// runningCount and tracked back the jobs_running / jobs_tracked gauges.
func (jm *jobManager) runningCount() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return jm.running
}

func (jm *jobManager) tracked() int {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	return len(jm.jobs)
}

// submit admits one search job: capacity check, record creation, runner
// launch. The fpJobSubmit site models admission faults — partial sheds as
// capacity (429), error fails the submission (500).
func (jm *jobManager) submit(req OptimizeRequest) (string, error) {
	if err := fpJobSubmit.Inject(); err != nil {
		if failpoint.IsPartial(err) {
			return "", errJobCapacity
		}
		return "", err
	}
	jm.mu.Lock()
	if jm.baseCtx.Err() != nil {
		jm.mu.Unlock()
		return "", errPoolClosed
	}
	if jm.running >= jm.maxJobs {
		jm.mu.Unlock()
		jm.metrics.add(mJobsRejected, 1)
		return "", errJobCapacity
	}
	jm.seq++
	j := &job{
		id:       fmt.Sprintf("j%d", jm.seq),
		state:    JobStateRunning,
		strategy: req.Strategy,
		created:  time.Now(),
		bestEMax: -1,
	}
	ctx, cancel := context.WithTimeout(jm.baseCtx, jm.timeout)
	j.cancel = cancel
	jm.jobs[j.id] = j
	jm.running++
	jm.wg.Add(1)
	jm.mu.Unlock()
	jm.metrics.add(mJobsSubmitted, 1)
	//lint:ignore syncmisuse job runners are joined in (*jobManager).close via wg.Wait
	go jm.run(ctx, j, req)
	return j.id, nil
}

// run executes one search job and records its terminal state. Panics in
// the searcher fail the job instead of the process, mirroring the worker
// pool's shield.
func (jm *jobManager) run(ctx context.Context, j *job, req OptimizeRequest) {
	defer jm.wg.Done()
	defer j.cancel()
	rctx, sp := obs.Start(ctx, "jobs.run")
	defer sp.End()
	sp.SetAttr("job", j.id)
	sp.SetAttr("strategy", req.Strategy)

	resp, err := func() (resp *OptimizeResponse, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: search panicked: %v", r)
			}
		}()
		if ferr := fpJobRun.Inject(); ferr != nil && !failpoint.IsPartial(ferr) {
			return nil, ferr
		}
		return jm.search(rctx, j, req)
	}()

	elapsed := time.Since(j.created)
	jm.metrics.jobSeconds.ObserveDuration(elapsed)
	jm.mu.Lock()
	defer jm.mu.Unlock()
	jm.running--
	j.finished = time.Now()
	if resp != nil {
		resp.ElapsedMS = float64(elapsed.Microseconds()) / 1000
		j.result = resp
		j.bestEMax = resp.EMax
		j.strategy = resp.Strategy
	}
	switch {
	case err == nil:
		j.state = JobStateDone
		jm.metrics.add(mJobsDone, 1)
	case errors.Is(err, context.Canceled):
		// Cancelled searches still carry their best-so-far placement.
		j.state = JobStateCancelled
		jm.metrics.add(mJobsCancelled, 1)
	default:
		j.state = JobStateFailed
		j.errMsg = err.Error()
		jm.metrics.add(mJobsFailed, 1)
	}
	sp.SetAttr("outcome", j.state)
}

// search resolves the strategy and runs the searcher, streaming progress
// into the job record.
func (jm *jobManager) search(ctx context.Context, j *job, req OptimizeRequest) (*OptimizeResponse, error) {
	t := torus.New(req.K, req.D)
	alg, err := cliutil.ParseRouting(req.Routing)
	if err != nil {
		return nil, err
	}
	strategy := req.Strategy
	if strategy == strategyAuto {
		if t.Nodes() <= autoBranchBoundNodes {
			strategy = optimize.StrategyBranchBound
		} else {
			strategy = optimize.StrategyAnneal
		}
	}
	jm.mu.Lock()
	j.strategy = strategy
	jm.mu.Unlock()
	cfg := optimize.Config{
		Size:       req.Size,
		Steps:      req.Steps,
		Seed:       req.Seed,
		Workers:    jm.workers,
		MaxVisited: req.MaxVisited,
		Progress: func(p optimize.Progress) {
			jm.mu.Lock()
			j.step, j.steps = p.Step, p.Steps
			j.visited = p.Visited
			j.bestEMax = p.BestEMax
			jm.mu.Unlock()
		},
	}
	var res *optimize.Result
	switch strategy {
	case optimize.StrategyLeeSphere:
		res, err = optimize.LeeSeed(t, req.Size, alg, jm.workers)
	case optimize.StrategyBranchBound:
		res, err = optimize.BranchAndBound(ctx, t, alg, cfg)
	default:
		// Annealing warm-starts from the Lee-sphere seed: deterministic,
		// and never worse than the seed itself.
		seed, serr := optimize.LeeSeed(t, req.Size, alg, jm.workers)
		if serr != nil {
			return nil, serr
		}
		cfg.Start = seed.Best.Nodes()
		res, err = optimize.AnnealCtx(ctx, t, alg, cfg)
	}
	if res == nil {
		return nil, err
	}
	nodes := make([]int, 0, res.Best.Size())
	for _, u := range res.Best.Nodes() {
		nodes = append(nodes, int(u))
	}
	return &OptimizeResponse{
		K:          req.K,
		D:          req.D,
		Size:       req.Size,
		Routing:    req.Routing,
		Strategy:   res.Strategy,
		Nodes:      nodes,
		EMax:       res.BestEMax,
		StartEMax:  res.StartEMax,
		LowerBound: jsonSafe(res.LowerBound),
		Gap:        jsonSafe(res.Gap),
		Proven:     res.Proven,
		Accepted:   res.Accepted,
		Steps:      res.Steps,
		Visited:    res.Visited,
		Pruned:     res.Pruned,
	}, err
}

// snapshotLocked renders j under the manager lock.
func (jm *jobManager) snapshotLocked(j *job) JobSnapshot {
	elapsed := time.Since(j.created)
	if !j.finished.IsZero() {
		elapsed = j.finished.Sub(j.created)
	}
	s := JobSnapshot{
		ID:        j.id,
		State:     j.state,
		Strategy:  j.strategy,
		Step:      j.step,
		Steps:     j.steps,
		Visited:   j.visited,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
		Result:    j.result,
		Error:     j.errMsg,
	}
	if j.bestEMax >= 0 {
		s.BestEMax = j.bestEMax
	}
	return s
}

// snapshot returns one job's snapshot.
func (jm *jobManager) snapshot(id string) (JobSnapshot, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	if !ok {
		return JobSnapshot{}, false
	}
	return jm.snapshotLocked(j), true
}

// snapshots lists every tracked job, oldest first.
func (jm *jobManager) snapshots() []JobSnapshot {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	out := make([]JobSnapshot, 0, len(jm.jobs))
	for _, j := range jm.jobs {
		out = append(out, jm.snapshotLocked(j))
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
	return out
}

// cancelOrDelete cancels a running job (the runner records the terminal
// state when the search unwinds) or drops a finished record.
func (jm *jobManager) cancelOrDelete(id string) (JobSnapshot, bool) {
	jm.mu.Lock()
	defer jm.mu.Unlock()
	j, ok := jm.jobs[id]
	if !ok {
		return JobSnapshot{}, false
	}
	if j.state == JobStateRunning {
		j.cancel()
	} else {
		delete(jm.jobs, id)
	}
	return jm.snapshotLocked(j), true
}

// janitor expires finished job records past their TTL. The fpJobGC site
// models a broken sweep: any armed fault skips this round — records
// linger, nothing breaks — making expiry loss a survivable fault.
func (jm *jobManager) janitor(interval time.Duration) {
	defer jm.wg.Done()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-jm.baseCtx.Done():
			return
		case <-ticker.C:
			if err := fpJobGC.Inject(); err != nil {
				continue
			}
			now := time.Now()
			jm.mu.Lock()
			for id, j := range jm.jobs {
				if j.state != JobStateRunning && now.Sub(j.finished) > jm.ttl {
					delete(jm.jobs, id)
					jm.metrics.add(mJobsExpired, 1)
				}
			}
			jm.mu.Unlock()
		}
	}
}

// handleOptimize is POST /v1/optimize: validate, admit, answer 202 with
// the poll URL. Capacity rejections answer 429 with Retry-After, the same
// backpressure contract as the pooled pipeline.
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	var req OptimizeRequest
	if !s.readRequest(w, r, &req) {
		return
	}
	if err := req.Canonicalize(s.cfg.MaxNodes); err != nil {
		s.writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.jobs.submit(req)
	if err != nil {
		switch {
		case errors.Is(err, errJobCapacity):
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, err)
		case errors.Is(err, errPoolClosed):
			s.writeError(w, http.StatusServiceUnavailable, err)
		default:
			s.writeError(w, http.StatusInternalServerError, err)
		}
		return
	}
	s.writeJSON(w, http.StatusAccepted, JobAccepted{ID: id, State: JobStateRunning, Poll: "/v1/jobs/" + id})
}

// handleJobList is GET /v1/jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.jobs.snapshots())
}

// handleJobGet is GET /v1/jobs/{id}.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.jobs.snapshot(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", id))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}

// handleJobCancel is DELETE /v1/jobs/{id}: cancel a running job or drop a
// finished record.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, ok := s.jobs.cancelOrDelete(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, fmt.Errorf("service: unknown job %q", id))
		return
	}
	s.writeJSON(w, http.StatusOK, snap)
}
