package service

import (
	"context"
	"testing"

	"torusnet/internal/load"
)

// TestAnalyticLaneOffByDefault checks the zero-value Config keeps the
// closed-form lane dark: a perfect Theorem 2 request runs the computed
// pipeline and no lane counter moves.
func TestAnalyticLaneOffByDefault(t *testing.T) {
	s, c, stop := newTestServer(t, Config{Workers: 2})
	defer stop()
	resp, err := c.Analyze(context.Background(), AnalyzeRequest{K: 5, D: 2, Placement: "linear", Routing: "odr"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Engine == load.EngineAnalytic {
		t.Errorf("lane-off server answered analytically")
	}
	if resp.TotalLoad == 0 {
		t.Error("computed answer should carry a load vector summary")
	}
	if got := s.metrics.get(mAnalyticHits); got != 0 {
		t.Errorf("analytic_hits = %d, want 0", got)
	}
}

// TestAnalyticLaneAnswers drives the lane end to end: engine, exactness,
// theorem, canonical echoes, the O(1) bound suite, and the hit counter.
func TestAnalyticLaneAnswers(t *testing.T) {
	s, c, stop := newTestServer(t, Config{Workers: 2, EnableAnalytic: true})
	defer stop()
	ctx := context.Background()

	resp, err := c.Analyze(ctx, AnalyzeRequest{K: 5, D: 2, Placement: "linear:-2", Routing: "ODR"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Engine != load.EngineAnalytic || !resp.Exact || resp.Theorem != "theorem2" {
		t.Fatalf("engine=%q exact=%v theorem=%q", resp.Engine, resp.Exact, resp.Theorem)
	}
	if resp.Placement != "linear:3" || resp.Routing != "odr" || resp.PlacementName != "linear(c=3)" {
		t.Errorf("canonical echo: placement=%q routing=%q name=%q", resp.Placement, resp.Routing, resp.PlacementName)
	}
	if resp.Processors != 5 || !resp.Uniform || resp.DensityC != 1 {
		t.Errorf("procs=%d uniform=%v c=%g", resp.Processors, resp.Uniform, resp.DensityC)
	}
	if want := load.ODRLinearMax(5, 2); resp.EMax != want {
		t.Errorf("EMax = %g, want %g", resp.EMax, want)
	}
	if resp.BestLowerBound <= 0 || resp.OptimalityRatio <= 0 {
		t.Errorf("bound suite missing: best=%g ratio=%g", resp.BestLowerBound, resp.OptimalityRatio)
	}
	if resp.TotalLoad != 0 || resp.Cached || resp.Degraded {
		t.Errorf("lane answers carry no vector and never cache/degrade: %+v", resp)
	}
	if got := s.metrics.get(mAnalyticHits); got != 1 {
		t.Errorf("analytic_hits = %d, want 1", got)
	}

	// diagonal and multi:1 spell the same single linear placement.
	for _, spec := range []string{"diagonal:2", "multi:1:2"} {
		resp, err := c.Analyze(ctx, AnalyzeRequest{K: 5, D: 3, Placement: spec, Routing: "odr-multi"})
		if err != nil {
			t.Fatalf("%s: %v", spec, err)
		}
		if resp.Engine != load.EngineAnalytic || resp.EMax != load.ODRLinearMax(5, 3) {
			t.Errorf("%s: engine=%q EMax=%g", spec, resp.Engine, resp.EMax)
		}
	}
}

// TestAnalyticLaneMatchesComputed checks a laned answer equals the full
// pipeline's E_max for the same request.
func TestAnalyticLaneMatchesComputed(t *testing.T) {
	_, lane, stopLane := newTestServer(t, Config{Workers: 2, EnableAnalytic: true})
	defer stopLane()
	_, comp, stopComp := newTestServer(t, Config{Workers: 2})
	defer stopComp()
	ctx := context.Background()
	req := AnalyzeRequest{K: 6, D: 2, Placement: "linear:1", Routing: "odr"}

	a, err := lane.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := comp.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine != load.EngineAnalytic || b.Engine == load.EngineAnalytic {
		t.Fatalf("engines: lane=%q computed=%q", a.Engine, b.Engine)
	}
	if a.EMax != b.EMax || a.BestLowerBound != b.BestLowerBound {
		t.Errorf("lane EMax=%g best=%g, computed EMax=%g best=%g",
			a.EMax, a.BestLowerBound, b.EMax, b.BestLowerBound)
	}
}

// TestAnalyticLaneBypassesSizeCap is the headline perf property: a torus
// far past Config.MaxNodes (T³₂₅₆ has 16.7M nodes against the default
// 4096 cap) answers analytically because the lane does no O(k^d) work,
// while the computed pipeline must still reject it.
func TestAnalyticLaneBypassesSizeCap(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 2, EnableAnalytic: true})
	defer stop()
	ctx := context.Background()

	resp, err := c.Analyze(ctx, AnalyzeRequest{K: 256, D: 3, Placement: "linear", Routing: "odr"})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Engine != load.EngineAnalytic || !resp.Exact {
		t.Fatalf("T^3_256: engine=%q exact=%v", resp.Engine, resp.Exact)
	}
	if want := load.ODRLinearMax(256, 3); resp.EMax != want || resp.Processors != 256*256 {
		t.Errorf("T^3_256: EMax=%g procs=%d, want %g, 65536", resp.EMax, resp.Processors, want)
	}
	// The same torus on a non-lane shape still hits the size cap.
	if _, err := c.Analyze(ctx, AnalyzeRequest{K: 256, D: 3, Placement: "random:8", Routing: "odr"}); err == nil {
		t.Error("oversized computed request should be rejected")
	}
}

// TestAnalyticLaneFallsThrough enumerates requests the lane must hand to
// the computed pipeline: non-exact routings, multi-class and random
// placements, and sub-2d tori.
func TestAnalyticLaneFallsThrough(t *testing.T) {
	s, c, stop := newTestServer(t, Config{Workers: 2, EnableAnalytic: true})
	defer stop()
	ctx := context.Background()
	reqs := []AnalyzeRequest{
		{K: 5, D: 2, Placement: "linear", Routing: "udr"},       // Theorem 4 is a bound, not an answer
		{K: 6, D: 2, Placement: "linear", Routing: "odr-multi"}, // even k: paths split
		{K: 5, D: 2, Placement: "multi:2", Routing: "odr"},      // t > 1 is Theorem 3 territory
		{K: 5, D: 2, Placement: "random:5", Routing: "odr"},     // unstructured
		{K: 5, D: 1, Placement: "linear", Routing: "odr"},       // no second dimension
	}
	for _, req := range reqs {
		resp, err := c.Analyze(ctx, req)
		if err != nil {
			t.Fatalf("%+v: %v", req, err)
		}
		if resp.Engine == load.EngineAnalytic {
			t.Errorf("%+v: answered analytically", req)
		}
	}
	if got := s.metrics.get(mAnalyticHits); got != 0 {
		t.Errorf("analytic_hits = %d after fall-through-only traffic", got)
	}
}
