package service

// Chaos suite: fires every registered failpoint against a live server under
// -race, asserts the documented failure semantics, and checks that the
// server converges back to exact answers with no goroutine leaks once the
// faults are disarmed. Run via `make chaos`.

import (
	"context"
	"errors"
	"expvar"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"torusnet/internal/cluster"
	"torusnet/internal/failpoint"
	"torusnet/internal/obs"
)

// checkGoroutineLeaks snapshots the goroutine count and returns a function
// that fails the test if, after a settling period, the count has not come
// back down to the snapshot.
func checkGoroutineLeaks(t *testing.T) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		var now int
		for {
			runtime.Gosched()
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, now, buf[:n])
	}
}

// analyzeStatus posts an analyze request and reports the HTTP status it
// came back with (0 for transport errors).
func analyzeStatus(t *testing.T, c *Client, req AnalyzeRequest) (int, *AnalyzeResponse, error) {
	t.Helper()
	resp, err := c.Analyze(context.Background(), req)
	if err == nil {
		return http.StatusOK, resp, nil
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.Status, nil, err
	}
	return 0, nil, err
}

// isAPIStatus reports whether err is an *APIError with the given status.
func isAPIStatus(err error, status int) bool {
	var apiErr *APIError
	return errors.As(err, &apiErr) && apiErr.Status == status
}

// chaosScenario drives one failpoint site and asserts its documented
// failure semantics.
type chaosScenario struct {
	spec  string
	drive func(t *testing.T, s *Server, c *Client)
}

// newChaosClusterPair boots two cluster-mode servers on loopback listeners
// so the cluster.* failpoints have a real peer-fill path to break. The
// returned stop shuts both servers down and joins the serve goroutines, so
// the leak checker sees a quiet runtime again. (The full multi-node suite
// lives in internal/cluster/harness; it cannot be used here because harness
// imports this package.)
func newChaosClusterPair(t *testing.T) (clients [2]*Client, views [2]*cluster.Cluster, stop func()) {
	t.Helper()
	var lns [2]net.Listener
	var urls []string
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("pair listener %d: %v", i, err)
		}
		lns[i] = ln
		urls = append(urls, "http://"+ln.Addr().String())
	}
	rcfg := ResilienceConfig{MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond}
	var servers [2]*Server
	var wg sync.WaitGroup
	for i := range lns {
		cl, err := cluster.New(cluster.Config{
			Self:  urls[i],
			Peers: urls,
			Dial:  func(u string) cluster.PeerTransport { return NewPeerFillClient(u, rcfg) },
		})
		if err != nil {
			t.Fatalf("pair cluster view %d: %v", i, err)
		}
		views[i] = cl
		servers[i] = New(Config{Workers: 2, DegradeWatermark: -1, Cluster: cl})
		clients[i] = NewClient(urls[i])
		wg.Add(1)
		go func(s *Server, ln net.Listener) {
			defer wg.Done()
			if err := s.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				t.Errorf("pair serve: %v", err)
			}
		}(servers[i], lns[i])
	}
	return clients, views, func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, s := range servers {
			if err := s.Shutdown(ctx); err != nil {
				t.Errorf("pair shutdown: %v", err)
			}
		}
		wg.Wait()
	}
}

// remoteHomedRequest finds an analyze request whose canonical cache key is
// homed on owner according to view — the precondition for the peer dial and
// fill decode faults to be reachable from the other node.
func remoteHomedRequest(t *testing.T, view *cluster.Cluster, owner string) AnalyzeRequest {
	t.Helper()
	for k := 4; k <= 40; k++ {
		req := AnalyzeRequest{K: k, D: 2, Placement: "linear", Routing: "ODR"}
		canon := req
		if err := canon.Canonicalize(DefaultMaxNodes); err != nil {
			continue
		}
		o, err := view.Owner(canon.CacheKey())
		if err != nil {
			t.Fatalf("owner lookup: %v", err)
		}
		if o == owner {
			return req
		}
	}
	t.Fatalf("no analyze key homed on %s among K=4..40", owner)
	return AnalyzeRequest{}
}

// clusterVar reads one int counter out of a cluster's expvar map.
func clusterVar(m *expvar.Map, name string) int64 {
	if v, ok := m.Get(name).(*expvar.Int); ok {
		return v.Value()
	}
	return 0
}

// TestChaosAllSites arms every registered failpoint in turn, asserts the
// site's failure contract, then verifies the server converges back to the
// exact baseline answer after disarming. The scenario map is checked
// against failpoint.Sites() so a newly registered site without a chaos
// scenario fails this test.
func TestChaosAllSites(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()

	// DisableFastPath forces the generic engine so load.compute.merge is
	// on the request path; the watchdog is off so wedge recovery (covered
	// separately) cannot mask a scenario's assertions.
	s, c, stop := newTestServer(t, Config{
		Workers: 2, QueueDepth: 4, DisableFastPath: true,
		DegradeWatermark: -1, WedgeTimeout: -1 * time.Second,
	})
	defer stop()
	defer failpoint.DisableAll()
	ctx := context.Background()

	baselineReq := AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "ODR"}
	baseline, err := c.Analyze(ctx, baselineReq)
	if err != nil {
		t.Fatalf("baseline analyze: %v", err)
	}

	// Each scenario uses its own K so the result cache never hides the
	// compute path from an armed failpoint.
	scenarios := map[string]chaosScenario{
		"service.cache.get": {spec: "error", drive: func(t *testing.T, s *Server, c *Client) {
			if st, _, _ := analyzeStatus(t, c, AnalyzeRequest{K: 4, D: 2, Placement: "linear", Routing: "ODR"}); st != http.StatusInternalServerError {
				t.Errorf("cache.get error: status = %d, want 500", st)
			}
		}},
		"service.cache.put": {spec: "error", drive: func(t *testing.T, s *Server, c *Client) {
			req := AnalyzeRequest{K: 5, D: 2, Placement: "linear", Routing: "ODR"}
			for i := 0; i < 2; i++ {
				resp, err := c.Analyze(context.Background(), req)
				if err != nil {
					t.Fatalf("cache.put fault must not fail the request: %v", err)
				}
				if resp.Cached {
					t.Errorf("request %d cached despite cache.put fault", i)
				}
			}
		}},
		"service.flight.leader": {spec: "error", drive: func(t *testing.T, s *Server, c *Client) {
			if st, _, _ := analyzeStatus(t, c, AnalyzeRequest{K: 7, D: 2, Placement: "linear", Routing: "ODR"}); st != http.StatusInternalServerError {
				t.Errorf("flight.leader error: status = %d, want 500", st)
			}
		}},
		"service.pool.dispatch": {spec: "1*panic", drive: func(t *testing.T, s *Server, c *Client) {
			before := s.pool.restarts.Load()
			st, _, err := analyzeStatus(t, c, AnalyzeRequest{K: 8, D: 2, Placement: "linear", Routing: "ODR"})
			if st != http.StatusInternalServerError || !strings.Contains(err.Error(), "panicked") {
				t.Errorf("pool.dispatch panic: status %d err %v, want 500 panicked", st, err)
			}
			if got := s.pool.restarts.Load(); got != before+1 {
				t.Errorf("pool restarts = %d, want %d", got, before+1)
			}
			// The crashed worker's replacement must serve the retry.
			if _, err := c.Analyze(context.Background(), AnalyzeRequest{K: 8, D: 2, Placement: "linear", Routing: "ODR"}); err != nil {
				t.Errorf("analyze after worker crash: %v", err)
			}
		}},
		"service.response.encode": {spec: "error", drive: func(t *testing.T, s *Server, c *Client) {
			st, _, err := analyzeStatus(t, c, AnalyzeRequest{K: 9, D: 2, Placement: "linear", Routing: "ODR"})
			if st != http.StatusInternalServerError || !strings.Contains(err.Error(), "encoding failed") {
				t.Errorf("response.encode error: status %d err %v, want 500 encoding failed", st, err)
			}
		}},
		"service.admission": {spec: "error", drive: func(t *testing.T, s *Server, c *Client) {
			resp, err := c.Analyze(context.Background(), AnalyzeRequest{K: 10, D: 2, Placement: "linear", Routing: "ODR"})
			if err != nil {
				t.Fatalf("degraded analyze: %v", err)
			}
			if !resp.Degraded || resp.Engine != "montecarlo" {
				t.Errorf("forced admission: degraded=%v engine=%q, want degraded montecarlo", resp.Degraded, resp.Engine)
			}
			if resp.ErrorBound != 0 {
				// ODR is single-path: zero variance, zero bound.
				t.Errorf("ODR degraded error bound = %v, want 0", resp.ErrorBound)
			}
		}},
		"load.compute.dispatch": {spec: "error", drive: func(t *testing.T, s *Server, c *Client) {
			st, _, err := analyzeStatus(t, c, AnalyzeRequest{K: 11, D: 2, Placement: "linear", Routing: "ODR"})
			if st != http.StatusInternalServerError || !strings.Contains(err.Error(), "panicked") {
				t.Errorf("compute.dispatch error: status %d err %v, want 500 panicked", st, err)
			}
		}},
		"load.compute.merge": {spec: "error", drive: func(t *testing.T, s *Server, c *Client) {
			st, _, err := analyzeStatus(t, c, AnalyzeRequest{K: 12, D: 2, Placement: "linear", Routing: "ODR"})
			if st != http.StatusInternalServerError || !strings.Contains(err.Error(), "panicked") {
				t.Errorf("compute.merge error: status %d err %v, want 500 panicked", st, err)
			}
		}},
		"load.analytic.dispatch": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// The analytic fast lane is soft: an armed fault makes the lane
			// decline, and the request falls through to the computed
			// pipeline — still 200, still exact, just not closed-form. The
			// main chaos server runs with the lane off, so this scenario
			// boots its own lane-enabled server.
			_, ac, astop := newTestServer(t, Config{
				Workers: 2, DegradeWatermark: -1, EnableAnalytic: true,
			})
			defer astop()
			resp, err := ac.Analyze(context.Background(), AnalyzeRequest{K: 13, D: 2, Placement: "linear", Routing: "ODR"})
			if err != nil {
				t.Fatalf("analyze with analytic fault: %v", err)
			}
			if resp.Engine == "analytic" {
				t.Error("engine = analytic despite an armed lane fault, want computed fallback")
			}
			if !resp.Exact || resp.TotalLoad == 0 {
				t.Errorf("fallback answer exact=%v total=%v, want an exact computed result", resp.Exact, resp.TotalLoad)
			}
		}},
		"cluster.ring.lookup": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// With the ring unreadable, a cluster node cannot place any key —
			// every request must still answer exactly, computed locally.
			clients, views, stop := newChaosClusterPair(t)
			defer stop()
			resp, err := clients[0].Analyze(context.Background(), baselineReq)
			if err != nil {
				t.Fatalf("analyze with ring fault: %v", err)
			}
			if resp.Degraded || resp.EMax != baseline.EMax {
				t.Errorf("ring-fault answer: EMax=%v degraded=%v, want exact %v", resp.EMax, resp.Degraded, baseline.EMax)
			}
			if n := clusterVar(views[0].Vars(), "ring_lookup_errors"); n == 0 {
				t.Error("ring_lookup_errors = 0, want the fault counted")
			}
		}},
		"cluster.peer.dial": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// An unreachable home peer costs the fill, not the request: the
			// serving node computes locally and records the failure against
			// the peer's health.
			clients, views, stop := newChaosClusterPair(t)
			defer stop()
			req := remoteHomedRequest(t, views[0], views[1].Self())
			resp, err := clients[0].Analyze(context.Background(), req)
			if err != nil {
				t.Fatalf("analyze with dial fault: %v", err)
			}
			if resp.Degraded || resp.Cached {
				t.Errorf("dial-fault answer degraded=%v cached=%v, want a fresh exact local compute", resp.Degraded, resp.Cached)
			}
			// The dial fault counts against the peer's health, but the
			// leader's successful write-through replica put to the same peer
			// immediately proves it reachable and resets the consecutive-
			// failure count — so assert the persistent per-peer error
			// counter, not the transient health state.
			var fillErrors int64
			for _, ps := range views[0].Status().Peers {
				if ps.URL == views[1].Self() {
					fillErrors = ps.FillErrors
				}
			}
			if fillErrors == 0 {
				t.Error("home peer shows 0 fill errors after a dial fault, want >= 1 (dial faults count toward health)")
			}
		}},
		"cluster.fill.decode": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// A corrupt fill body is discarded and the node computes locally —
			// but the wire exchange succeeded, so the peer's health must stay
			// clean (only dial/transport failures count toward down-marking).
			clients, views, stop := newChaosClusterPair(t)
			defer stop()
			req := remoteHomedRequest(t, views[0], views[1].Self())
			resp, err := clients[0].Analyze(context.Background(), req)
			if err != nil {
				t.Fatalf("analyze with decode fault: %v", err)
			}
			if resp.Degraded || resp.Cached {
				t.Errorf("decode-fault answer degraded=%v cached=%v, want a fresh exact local compute", resp.Degraded, resp.Cached)
			}
			if n := clusterVar(views[0].Vars(), "fill_errors"); n == 0 {
				t.Error("fill_errors = 0, want the discarded fill counted")
			}
			for _, ps := range views[0].Status().Peers {
				if ps.URL == views[1].Self() && ps.Failures != 0 {
					t.Errorf("home peer failures = %d after decode fault, want 0 (health is transport-only)", ps.Failures)
				}
			}
		}},
		"cluster.replica.put": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// Replication is best effort: with every put dropped, the flight
			// leader's own answer and cache entry are untouched — only the
			// secondary's copy (and the error counter) show the fault.
			clients, views, stop := newChaosClusterPair(t)
			defer stop()
			req := remoteHomedRequest(t, views[0], views[0].Self())
			resp, err := clients[0].Analyze(context.Background(), req)
			if err != nil {
				t.Fatalf("analyze with replica-put fault: %v", err)
			}
			if resp.Degraded || resp.Cached {
				t.Errorf("replica-put-fault answer degraded=%v cached=%v, want a fresh exact compute", resp.Degraded, resp.Cached)
			}
			if n := clusterVar(views[0].Vars(), "replica_put_errors"); n == 0 {
				t.Error("replica_put_errors = 0, want the dropped put counted")
			}
			if n := clusterVar(views[0].Vars(), "replica_puts"); n != 0 {
				t.Errorf("replica_puts = %d with every put dropped, want 0", n)
			}
		}},
		"cluster.membership.swap": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// A failed swap must reject the change wholesale: the epoch does
			// not advance and the previous ring generation keeps serving.
			view, err := cluster.New(cluster.Config{
				Self: "http://chaos-node",
				Dial: func(string) cluster.PeerTransport { return nil },
			})
			if err != nil {
				t.Fatalf("standalone cluster view: %v", err)
			}
			if _, jerr := view.Membership().Join("http://other"); jerr == nil {
				t.Error("Join succeeded despite an armed swap fault, want rejection")
			}
			if view.Epoch() != 1 {
				t.Errorf("epoch = %d after rejected swap, want 1", view.Epoch())
			}
			if got := len(view.Peers()); got != 1 {
				t.Errorf("membership size = %d after rejected swap, want 1", got)
			}
			if n := clusterVar(view.Vars(), "membership_errors"); n == 0 {
				t.Error("membership_errors = 0, want the rejected swap counted")
			}
		}},
		"cluster.owner.failover": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// Break the primary with a one-shot dial fault so the walk must
			// fail over — into the armed failover fault. Even with both the
			// primary and the failover path broken, the request answers
			// exactly from a local compute.
			clients, views, stop := newChaosClusterPair(t)
			defer stop()
			if err := failpoint.Enable("cluster.peer.dial", "1*error"); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := failpoint.Disable("cluster.peer.dial"); err != nil {
					t.Fatal(err)
				}
			}()
			req := remoteHomedRequest(t, views[0], views[1].Self())
			resp, err := clients[0].Analyze(context.Background(), req)
			if err != nil {
				t.Fatalf("analyze with failover fault: %v", err)
			}
			if resp.Degraded || resp.Cached {
				t.Errorf("failover-fault answer degraded=%v cached=%v, want a fresh exact local compute", resp.Degraded, resp.Cached)
			}
			if n := clusterVar(views[0].Vars(), "failover_errors"); n == 0 {
				t.Error("failover_errors = 0, want the broken failover counted")
			}
		}},
		"service.jobs.submit": {spec: "1*error", drive: func(t *testing.T, s *Server, c *Client) {
			// error fails the submission outright; partial sheds it as 429
			// capacity backpressure. Both leave the manager untouched.
			before := s.metrics.get(mJobsSubmitted)
			req := OptimizeRequest{K: 4, D: 2, Routing: "ODR", Strategy: "leesphere"}
			if _, err := c.Optimize(context.Background(), req); !isAPIStatus(err, http.StatusInternalServerError) {
				t.Errorf("jobs.submit error: err = %v, want 500", err)
			}
			if err := failpoint.Enable("service.jobs.submit", "1*partial"); err != nil {
				t.Fatal(err)
			}
			_, err := c.Optimize(context.Background(), req)
			if !isAPIStatus(err, http.StatusTooManyRequests) {
				t.Errorf("jobs.submit partial: err = %v, want 429", err)
			}
			var apiErr *APIError
			if errors.As(err, &apiErr) && apiErr.RetryAfter <= 0 {
				t.Error("429 shed without a Retry-After hint")
			}
			if n := s.metrics.get(mJobsSubmitted); n != before {
				t.Errorf("jobs_submitted rose %d -> %d across two rejected submissions, want no change", before, n)
			}
		}},
		"service.jobs.run": {spec: "1*error", drive: func(t *testing.T, s *Server, c *Client) {
			// The submission already answered 202; the fault only shows to
			// pollers, as the terminal failed state.
			acc, err := c.Optimize(context.Background(), OptimizeRequest{K: 4, D: 2, Routing: "ODR", Strategy: "leesphere"})
			if err != nil {
				t.Fatalf("submit with run fault armed: %v", err)
			}
			wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			snap, err := c.WaitJob(wctx, acc.ID, 5*time.Millisecond)
			if err != nil {
				t.Fatalf("waiting for faulted job: %v", err)
			}
			if snap.State != JobStateFailed || !strings.Contains(snap.Error, "injected") {
				t.Errorf("faulted job state=%q error=%q, want failed with the injected fault", snap.State, snap.Error)
			}
			// The fault was 1-shot: a fresh job must succeed.
			acc2, err := c.Optimize(context.Background(), OptimizeRequest{K: 4, D: 2, Routing: "ODR", Strategy: "leesphere"})
			if err != nil {
				t.Fatalf("resubmit: %v", err)
			}
			if snap, err := c.WaitJob(wctx, acc2.ID, 5*time.Millisecond); err != nil || snap.State != JobStateDone {
				t.Errorf("job after disarm: snap=%+v err=%v, want done", snap, err)
			}
		}},
		"service.jobs.gc": {spec: "error", drive: func(t *testing.T, _ *Server, _ *Client) {
			// A broken sweep skips expiry but breaks nothing else: the
			// finished record outlives its TTL and stays pollable. The main
			// chaos server's janitor ticks too slowly to reach the site, so
			// this scenario boots its own tiny-TTL server.
			_, jc, jstop := newTestServer(t, Config{Workers: 2, DegradeWatermark: -1, JobTTL: 20 * time.Millisecond})
			defer jstop()
			acc, err := jc.Optimize(context.Background(), OptimizeRequest{K: 4, D: 2, Routing: "ODR", Strategy: "leesphere"})
			if err != nil {
				t.Fatalf("submit: %v", err)
			}
			wctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if _, err := jc.WaitJob(wctx, acc.ID, 5*time.Millisecond); err != nil {
				t.Fatalf("wait: %v", err)
			}
			// Several TTLs and janitor rounds pass; with every sweep faulted
			// the record must survive.
			time.Sleep(120 * time.Millisecond)
			if _, err := jc.Job(context.Background(), acc.ID); err != nil {
				t.Errorf("finished job expired despite a faulted janitor: %v", err)
			}
		}},
		"sweep.experiment": {spec: "1*error", drive: func(t *testing.T, s *Server, c *Client) {
			// The error kind panics inside the pool and surfaces as 500 —
			// and, crucially, caches nothing.
			if _, err := c.RunExperiment(context.Background(), "E1", ExperimentRequest{}); err == nil || !strings.Contains(err.Error(), "panicked") {
				t.Errorf("error experiment: err = %v, want panicked 500", err)
			}
			if err := failpoint.Enable("sweep.experiment", "1*partial"); err != nil {
				t.Fatal(err)
			}
			resp, err := c.RunExperiment(context.Background(), "E1", ExperimentRequest{})
			if err != nil {
				t.Fatalf("partial experiment: %v", err)
			}
			if !strings.Contains(string(resp.Table), "partial result") {
				t.Errorf("partial experiment table lacks truncation note: %s", resp.Table)
			}
		}},
	}

	sites := failpoint.Sites()
	if len(sites) != len(scenarios) {
		t.Fatalf("registered sites %v do not match the %d chaos scenarios — add a scenario for every new failpoint", sites, len(scenarios))
	}
	for _, site := range sites {
		sc, ok := scenarios[site]
		if !ok {
			t.Fatalf("no chaos scenario for registered failpoint %q", site)
		}
		t.Run(site, func(t *testing.T) {
			if err := failpoint.Enable(site, sc.spec); err != nil {
				t.Fatalf("arming %s=%s: %v", site, sc.spec, err)
			}
			defer func() {
				if err := failpoint.Disable(site); err != nil {
					t.Fatalf("disarming %s: %v", site, err)
				}
				// Convergence: with the fault gone, the baseline request
				// must produce the exact baseline numbers again.
				resp, err := c.Analyze(context.Background(), baselineReq)
				if err != nil {
					t.Fatalf("convergence analyze after %s: %v", site, err)
				}
				if resp.EMax != baseline.EMax || resp.Degraded {
					t.Errorf("after %s: EMax=%v degraded=%v, want %v exact", site, resp.EMax, resp.Degraded, baseline.EMax)
				}
			}()
			sc.drive(t, s, c)
			if failpoint.Hits(site) == 0 {
				t.Errorf("failpoint %s never fired", site)
			}
		})
	}
}

// TestChaosPoolPanicStorm crashes several pool workers mid-request while
// other callers are concurrently cancelling, and asserts the pool replaces
// every crashed worker, the surviving requests complete, and nothing leaks.
func TestChaosPoolPanicStorm(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()

	s, c, stop := newTestServer(t, Config{
		Workers: 4, QueueDepth: 16,
		DegradeWatermark: -1, WedgeTimeout: -1 * time.Second,
	})
	defer stop()
	defer failpoint.DisableAll()

	const crashes = 6
	if err := failpoint.Enable("service.pool.dispatch", "6*panic"); err != nil {
		t.Fatal(err)
	}

	const callers = 24
	var wg sync.WaitGroup
	var panics, oks, cancelled int64
	var mu sync.Mutex
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := context.Background()
			if i%3 == 0 {
				// A third of the callers give up almost immediately,
				// racing cancellation against the worker crashes.
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Duration(i%5+1)*time.Millisecond)
				defer cancel()
			}
			// Distinct K per caller defeats the cache and the coalescer.
			req := AnalyzeRequest{K: 4 + i, D: 2, Placement: "linear", Routing: "ODR"}
			_, err := c.Analyze(ctx, req)
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				oks++
			case strings.Contains(err.Error(), "panicked"):
				panics++
			default:
				cancelled++
			}
		}(i)
	}
	wg.Wait()

	if got := s.pool.restarts.Load(); got != crashes {
		t.Errorf("pool restarts = %d, want %d (one replacement per crashed worker)", got, crashes)
	}
	if oks == 0 {
		t.Errorf("no caller succeeded during the storm (oks=%d panics=%d cancelled=%d)", oks, panics, cancelled)
	}
	t.Logf("storm: %d ok, %d panic 500s, %d cancelled/timeout", oks, panics, cancelled)

	// The spec was counted, so it is already spent; the pool must be back
	// at full strength for fresh work.
	for i := 0; i < 4; i++ {
		if _, err := c.Analyze(context.Background(), AnalyzeRequest{K: 40 + i, D: 2, Placement: "linear", Routing: "ODR"}); err != nil {
			t.Fatalf("post-storm analyze %d: %v", i, err)
		}
	}
}

// TestChaosWatchdogRecoversWedgedWorker wedges a worker with a sleep fault
// and asserts the watchdog restores pool capacity while the wedged job is
// still stuck, and that the wedged worker retires cleanly afterwards.
func TestChaosWatchdogRecoversWedgedWorker(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()

	s, c, stop := newTestServer(t, Config{
		Workers: 1, QueueDepth: 4,
		DegradeWatermark: -1, WedgeTimeout: 40 * time.Millisecond,
	})
	defer stop()
	defer failpoint.DisableAll()

	if err := failpoint.Enable("service.pool.dispatch", "1*sleep(400ms)"); err != nil {
		t.Fatal(err)
	}

	// The wedged caller occupies the pool's only original worker.
	wedgedDone := make(chan error, 1)
	go func() {
		_, err := c.Analyze(context.Background(), AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "ODR"})
		wedgedDone <- err
	}()

	// While the worker sleeps, the watchdog must spawn a replacement that
	// serves this second request well before the 400ms wedge clears.
	deadline := time.Now().Add(300 * time.Millisecond)
	var recovered bool
	for time.Now().Before(deadline) {
		ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
		_, err := c.Analyze(ctx, AnalyzeRequest{K: 5, D: 2, Placement: "linear", Routing: "ODR"})
		cancel()
		if err == nil {
			recovered = true
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !recovered {
		t.Error("no request served by a replacement worker while the original was wedged")
	}
	if got := s.pool.replacements.Load(); got < 1 {
		t.Errorf("watchdog replacements = %d, want >= 1", got)
	}

	if err := <-wedgedDone; err != nil {
		t.Errorf("wedged request finally failed: %v", err)
	}
}

// TestDegradedConsistency replays degraded Monte Carlo answers against the
// exact engine: ODR (single-path, zero variance) must match exactly with a
// zero error bound; FAR (randomized multi-path) must land within the
// reported bound of the exact expectation. Seeds derive from the canonical
// cache key, so both sides are deterministic.
func TestDegradedConsistency(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()

	_, exactC, stopExact := newTestServer(t, Config{Workers: 2})
	defer stopExact()
	_, degC, stopDeg := newTestServer(t, Config{Workers: 2, DegradedRounds: 400})
	defer stopDeg()
	defer failpoint.DisableAll()
	ctx := context.Background()

	odrReq := AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "ODR"}
	farReq := AnalyzeRequest{K: 5, D: 2, Placement: "linear", Routing: "FAR"}

	exactODR, err := exactC.Analyze(ctx, odrReq)
	if err != nil {
		t.Fatalf("exact ODR: %v", err)
	}
	exactFAR, err := exactC.Analyze(ctx, farReq)
	if err != nil {
		t.Fatalf("exact FAR: %v", err)
	}

	if err := failpoint.Enable("service.admission", "error"); err != nil {
		t.Fatal(err)
	}

	degODR, err := degC.Analyze(ctx, odrReq)
	if err != nil {
		t.Fatalf("degraded ODR: %v", err)
	}
	if !degODR.Degraded || degODR.Engine != "montecarlo" {
		t.Fatalf("ODR response not degraded: %+v", degODR)
	}
	if degODR.EMax != exactODR.EMax {
		t.Errorf("ODR degraded EMax = %v, want exact %v (single-path routing must match bit-for-bit)", degODR.EMax, exactODR.EMax)
	}
	if degODR.ErrorBound != 0 {
		t.Errorf("ODR degraded error bound = %v, want 0", degODR.ErrorBound)
	}

	degFAR, err := degC.Analyze(ctx, farReq)
	if err != nil {
		t.Fatalf("degraded FAR: %v", err)
	}
	if !degFAR.Degraded {
		t.Fatal("FAR response not degraded")
	}
	if degFAR.ErrorBound <= 0 {
		t.Errorf("FAR degraded error bound = %v, want > 0", degFAR.ErrorBound)
	}
	if diff := degFAR.EMax - exactFAR.EMax; diff < -degFAR.ErrorBound || diff > degFAR.ErrorBound {
		t.Errorf("FAR degraded EMax = %v, exact %v: |diff| %v exceeds reported bound %v",
			degFAR.EMax, exactFAR.EMax, diff, degFAR.ErrorBound)
	}

	// Degraded answers are never cached: once admission recovers, the same
	// request computes (not serves) the exact result.
	if err := failpoint.Disable("service.admission"); err != nil {
		t.Fatal(err)
	}
	fresh, err := degC.Analyze(ctx, odrReq)
	if err != nil {
		t.Fatalf("post-degrade ODR: %v", err)
	}
	if fresh.Cached || fresh.Degraded {
		t.Errorf("post-degrade response cached=%v degraded=%v, want a fresh exact compute", fresh.Cached, fresh.Degraded)
	}
	if fresh.EMax != exactODR.EMax {
		t.Errorf("post-degrade EMax = %v, want %v", fresh.EMax, exactODR.EMax)
	}
}

// TestDegradedUnderRealPressure drives the watermark path (no failpoint):
// with a tiny pool wedged by slow computes, /v1/analyze must shed to
// degraded answers instead of queueing or erroring.
func TestDegradedUnderRealPressure(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()

	block := make(chan struct{})
	s := New(Config{Workers: 1, QueueDepth: 1, DegradeWatermark: 0.5, WedgeTimeout: -1 * time.Second})
	s.onCompute = func(string) { <-block }
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()
	c := NewClient(ts.URL)
	ctx := context.Background()

	// Saturate: the worker parks in onCompute, the queue fills behind it.
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(k int) {
			defer func() { done <- struct{}{} }()
			cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			_, _ = c.Analyze(cctx, AnalyzeRequest{K: k, D: 2, Placement: "linear", Routing: "ODR"})
		}(6 + i)
	}
	// Wait until the pool reports saturation.
	for i := 0; s.pool.utilization() < 0.5 && i < 200; i++ {
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := c.Analyze(ctx, AnalyzeRequest{K: 9, D: 2, Placement: "linear", Routing: "ODR"})
	if err != nil {
		t.Fatalf("analyze under pressure: %v", err)
	}
	if !resp.Degraded {
		t.Errorf("response under pressure not degraded: %+v", resp)
	}

	close(block)
	<-done
	<-done
}

// TestChaosTracesWellFormed fires faults at every pipeline depth — cache
// read, flight leadership, pool dispatch, engine dispatch and merge,
// response encoding, forced degradation — and asserts every trace the
// tracer exported stays structurally well-formed: aborted requests must
// never leave half-recorded span trees behind.
func TestChaosTracesWellFormed(t *testing.T) {
	leaks := checkGoroutineLeaks(t)
	defer leaks()

	tracer := obs.NewTracer(64)
	s, c, stop := newTestServer(t, Config{
		Workers: 2, QueueDepth: 4, DisableFastPath: true,
		DegradeWatermark: -1, WedgeTimeout: -1 * time.Second,
		Tracer: tracer,
	})
	defer stop()
	defer failpoint.DisableAll()

	k := 4
	for _, fp := range []struct{ site, spec string }{
		{"service.cache.get", "error"},
		{"service.flight.leader", "error"},
		{"service.pool.dispatch", "1*panic"},
		{"load.compute.dispatch", "error"},
		{"load.compute.merge", "error"},
		{"service.response.encode", "error"},
		{"service.admission", "error"},
	} {
		if err := failpoint.Enable(fp.site, fp.spec); err != nil {
			t.Fatalf("arming %s: %v", fp.site, err)
		}
		// Distinct K per fault keeps the cache from short-circuiting the
		// faulted path; outcomes (usually 500s) are the sites' own business —
		// here only the exported trace shape matters.
		_, _, _ = analyzeStatus(t, c, AnalyzeRequest{K: k, D: 2, Placement: "linear", Routing: "ODR"})
		k++
		if err := failpoint.Disable(fp.site); err != nil {
			t.Fatalf("disarming %s: %v", fp.site, err)
		}
	}
	_ = s

	traces := tracer.Snapshot(0)
	if len(traces) < 7 {
		t.Fatalf("exported %d traces, want >= 7 (one per faulted request)", len(traces))
	}
	for _, tr := range traces {
		if err := tr.Wellformed(); err != nil {
			t.Errorf("chaos trace malformed: %v", err)
		}
	}
}
