package service

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/http/httptrace"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic clock: Sleep advances virtual time and
// returns immediately, recording every requested duration.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	f.mu.Lock()
	f.sleeps = append(f.sleeps, d)
	f.now = f.now.Add(d)
	f.mu.Unlock()
	return ctx.Err()
}

func (f *fakeClock) After(d time.Duration) <-chan time.Time {
	// Hedge timer that never fires; hedging tests use the real clock.
	return make(chan time.Time)
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

func (f *fakeClock) recorded() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]time.Duration(nil), f.sleeps...)
}

// newFakeClockClient builds a resilient client whose clock is fully
// virtual, so retry/breaker tests run in microseconds of wall time.
func newFakeClockClient(baseURL string, cfg ResilienceConfig) (*Client, *fakeClock) {
	if cfg.JitterSeed == 0 {
		cfg.JitterSeed = 42
	}
	fc := newFakeClock()
	c := NewClient(baseURL)
	c.res = newResilience(cfg, fc)
	return c, fc
}

// flakyServer fails the first n requests with the given status, then
// succeeds. It counts every request it sees.
func flakyServer(t *testing.T, failFirst int64, status int, header http.Header) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= failFirst {
			for k, vs := range header {
				for _, v := range vs {
					w.Header().Add(k, v)
				}
			}
			w.WriteHeader(status)
			fmt.Fprintf(w, `{"error":"injected %d"}`, status)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"status":"ok","uptime_s":1,"experiments":31}`)
	}))
	t.Cleanup(ts.Close)
	return ts, &hits
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	ts, hits := flakyServer(t, 2, http.StatusServiceUnavailable, nil)
	c, fc := newFakeClockClient(ts.URL, ResilienceConfig{
		MaxAttempts: 5,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  time.Second,
	})
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("Health after transient 503s: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("health: %+v", h)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d requests, want 3", n)
	}
	if got := c.res.getVar(rvRetries); got != 2 {
		t.Errorf("retries counter = %d, want 2", got)
	}
	// Full jitter: each sleep must be below its attempt's ceiling.
	sleeps := fc.recorded()
	if len(sleeps) != 2 {
		t.Fatalf("recorded sleeps %v, want 2", sleeps)
	}
	for i, d := range sleeps {
		ceiling := 100 * time.Millisecond << i
		if d < 0 || d >= ceiling {
			t.Errorf("sleep %d = %v, want in [0, %v)", i, d, ceiling)
		}
	}
}

func TestRetryBoundedByMaxAttempts(t *testing.T) {
	ts, hits := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c, _ := newFakeClockClient(ts.URL, ResilienceConfig{MaxAttempts: 3})
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 APIError", err)
	}
	if n := hits.Load(); n != 3 {
		t.Errorf("server saw %d requests, want exactly MaxAttempts=3", n)
	}
}

func TestRetryBudgetStopsRetryStorm(t *testing.T) {
	ts, hits := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c, _ := newFakeClockClient(ts.URL, ResilienceConfig{
		MaxAttempts:  10,
		RetryBudget:  3,
		BudgetRefill: time.Hour, // effectively no refill at fake-clock scale
	})
	// First call: 1 try + 3 budgeted retries, then the bucket is dry.
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected failure")
	}
	if n := hits.Load(); n != 4 {
		t.Errorf("first call: server saw %d requests, want 4 (1 + budget 3)", n)
	}
	// Second call: no tokens left → single attempt.
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected failure")
	}
	if n := hits.Load(); n != 5 {
		t.Errorf("second call: server saw %d total, want 5 (no retries left)", n)
	}
	if got := c.res.getVar(rvBudgetExhausted); got < 2 {
		t.Errorf("budget_exhausted = %d, want >= 2", got)
	}
}

func TestRetryBudgetRefills(t *testing.T) {
	ts, hits := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c, fc := newFakeClockClient(ts.URL, ResilienceConfig{
		MaxAttempts:  2,
		RetryBudget:  1,
		BudgetRefill: time.Second,
	})
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected failure")
	} // 2 attempts, bucket empty
	fc.advance(3 * time.Second) // refill (capped at 1)
	if _, err := c.Health(context.Background()); err == nil {
		t.Fatal("expected failure")
	} // 2 more attempts
	if n := hits.Load(); n != 4 {
		t.Errorf("server saw %d requests, want 4 after refill", n)
	}
}

func TestRetryAfterIsHonored(t *testing.T) {
	hdr := http.Header{}
	hdr.Set("Retry-After", "7")
	ts, _ := flakyServer(t, 1, http.StatusTooManyRequests, hdr)
	c, fc := newFakeClockClient(ts.URL, ResilienceConfig{
		MaxAttempts: 3,
		BaseBackoff: 10 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health: %v", err)
	}
	sleeps := fc.recorded()
	if len(sleeps) != 1 || sleeps[0] != 7*time.Second {
		t.Errorf("sleeps = %v, want exactly [7s] from Retry-After", sleeps)
	}
	if got := c.res.getVar(rvRetryAfterWaits); got != 1 {
		t.Errorf("retry_after_waits = %d, want 1", got)
	}
}

func TestNonRetryableStatusFailsFast(t *testing.T) {
	ts, hits := flakyServer(t, 1<<30, http.StatusBadRequest, nil)
	c, _ := newFakeClockClient(ts.URL, ResilienceConfig{MaxAttempts: 5})
	_, err := c.Health(context.Background())
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("server saw %d requests, want 1 (400 is terminal)", n)
	}
}

// TestBreakerTransitions drives the full closed → open → half-open →
// closed cycle with a deterministic fake clock.
func TestBreakerTransitions(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"down"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok","uptime_s":1,"experiments":31}`)
	}))
	defer ts.Close()
	c, fc := newFakeClockClient(ts.URL, ResilienceConfig{
		MaxAttempts:      1, // isolate breaker behavior from retries
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second,
	})
	ctx := context.Background()
	br := c.res.breakerFor("/healthz")

	// Two consecutive failures open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := c.Health(ctx); err == nil {
			t.Fatal("expected failure")
		}
	}
	if got := br.current(); got != breakerOpen {
		t.Fatalf("after threshold failures: state %v, want open", got)
	}
	if got := c.res.getVar(rvBreakerOpens); got != 1 {
		t.Errorf("breaker_opens = %d, want 1", got)
	}

	// While open, calls fail fast without touching the server.
	before := hits.Load()
	_, err := c.Health(ctx)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open circuit: err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Error("open circuit still reached the server")
	}
	if got := c.res.getVar(rvBreakerRejects); got != 1 {
		t.Errorf("breaker_rejects = %d, want 1", got)
	}

	// After the cooldown the breaker admits a probe; a failing probe
	// re-opens the circuit.
	fc.advance(11 * time.Second)
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("probe against down server should fail")
	}
	if got := br.current(); got != breakerOpen {
		t.Fatalf("after failed probe: state %v, want open again", got)
	}

	// Recovery: cooldown, healthy server, successful probe closes it.
	healthy.Store(true)
	fc.advance(11 * time.Second)
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("probe against healthy server: %v", err)
	}
	if got := br.current(); got != breakerClosed {
		t.Fatalf("after successful probe: state %v, want closed", got)
	}
	if got := c.res.getVar(rvBreakerProbes); got != 2 {
		t.Errorf("breaker_probes = %d, want 2", got)
	}

	// Closed again: calls flow normally.
	if _, err := c.Health(ctx); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

// TestBreakersArePerEndpoint: opening /healthz's circuit must not affect
// /v1/experiments.
func TestBreakersArePerEndpoint(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"down"}`)
			return
		}
		fmt.Fprint(w, `[]`)
	}))
	defer ts.Close()
	c, _ := newFakeClockClient(ts.URL, ResilienceConfig{MaxAttempts: 1, BreakerThreshold: 1})
	ctx := context.Background()
	if _, err := c.Health(ctx); err == nil {
		t.Fatal("expected failure")
	}
	if _, err := c.Health(ctx); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("healthz circuit should be open, got %v", err)
	}
	if _, err := c.Experiments(ctx); err != nil {
		t.Fatalf("experiments endpoint caught healthz's breaker: %v", err)
	}
}

// TestHedgedRequestWins uses the real clock: the primary request wedges,
// the hedge fires after HedgeAfter and completes first.
func TestHedgedRequestWins(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			select { // wedge the primary until the test ends
			case <-release:
			case <-r.Context().Done():
			}
			return
		}
		fmt.Fprint(w, `{"status":"ok","uptime_s":1,"experiments":31}`)
	}))
	defer ts.Close()
	defer close(release)
	c := NewResilientClient(ts.URL, ResilienceConfig{
		MaxAttempts: 1,
		HedgeAfter:  20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	h, err := c.Health(ctx)
	if err != nil {
		t.Fatalf("hedged Health: %v", err)
	}
	if h.Status != "ok" {
		t.Errorf("health: %+v", h)
	}
	if got := c.res.getVar(rvHedges); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := c.res.getVar(rvHedgeWins); got != 1 {
		t.Errorf("hedge_wins = %d, want 1", got)
	}
	if got := c.ResilienceVars(); got == nil {
		t.Error("ResilienceVars() nil for resilient client")
	}
}

// TestClientDrainsBodiesForConnectionReuse is the regression test for the
// body-drain bugfix: even when a response body exceeds the client's read
// limit (or belongs to an error status), the remainder must be drained so
// the keep-alive connection returns to the pool. Without the drain, each
// oversized response burns its connection and Reused stays false.
func TestClientDrainsBodiesForConnectionReuse(t *testing.T) {
	big := make([]byte, 8<<10)
	for i := range big {
		big[i] = 'x'
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/big":
			w.Write(big)
		case "/error":
			w.WriteHeader(http.StatusNotFound)
			w.Write(big)
		default:
			fmt.Fprint(w, `{"status":"ok","uptime_s":1,"experiments":31}`)
		}
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.maxBody = 64 // force truncation so the drain path matters

	var mu sync.Mutex
	var reused []bool
	trace := &httptrace.ClientTrace{
		GotConn: func(info httptrace.GotConnInfo) {
			mu.Lock()
			reused = append(reused, info.Reused)
			mu.Unlock()
		},
	}
	ctx := httptrace.WithClientTrace(context.Background(), trace)

	// Oversized 200 body (out == nil discards it), oversized 404 body,
	// then a normal call: all three on one connection.
	if err := c.do(ctx, http.MethodGet, "/big", nil, nil); err != nil {
		t.Fatalf("big: %v", err)
	}
	var apiErr *APIError
	if err := c.do(ctx, http.MethodGet, "/error", nil, nil); !errors.As(err, &apiErr) {
		t.Fatalf("error path: %v", err)
	}
	if err := c.do(ctx, http.MethodGet, "/big", nil, nil); err != nil {
		t.Fatalf("big again: %v", err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reused) != 3 {
		t.Fatalf("saw %d connections, want 3", len(reused))
	}
	if reused[0] {
		t.Error("first request unexpectedly reused a connection")
	}
	for i, r := range reused[1:] {
		if !r {
			t.Errorf("request %d did not reuse the connection (body not drained)", i+2)
		}
	}
}

// TestPlainClientHasNoResilience pins the compatibility contract: NewClient
// stays single-attempt so raw 429/504 statuses surface to callers.
func TestPlainClientHasNoResilience(t *testing.T) {
	ts, hits := flakyServer(t, 1<<30, http.StatusServiceUnavailable, nil)
	c := NewClient(ts.URL)
	if c.ResilienceVars() != nil {
		t.Error("plain client has resilience vars")
	}
	var apiErr *APIError
	if _, err := c.Health(context.Background()); !errors.As(err, &apiErr) {
		t.Fatalf("err = %v", err)
	}
	if n := hits.Load(); n != 1 {
		t.Errorf("plain client made %d attempts, want 1", n)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("3"); d != 3*time.Second {
		t.Errorf("seconds form: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty: %v", d)
	}
	if d := parseRetryAfter("-5"); d != 0 {
		t.Errorf("negative: %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage: %v", d)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d < 20*time.Second || d > 31*time.Second {
		t.Errorf("http-date form: %v", d)
	}
	past := time.Now().Add(-30 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Errorf("past http-date: %v", d)
	}
}
