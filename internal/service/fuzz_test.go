package service

import (
	"encoding/json"
	"strings"
	"testing"

	"torusnet/internal/cliutil"
	"torusnet/internal/torus"
)

// FuzzDecodeAnalyzeRequest hammers the wire decoder/canonicalizer: it must
// never panic, accepted requests must satisfy every validity invariant the
// service relies on (torus within limits, placement/routing parseable),
// and canonicalization must be idempotent so cache keys are stable.
func FuzzDecodeAnalyzeRequest(f *testing.F) {
	seeds := []string{
		`{"k":8,"d":2,"placement":"linear","routing":"odr"}`,
		`{"k":8,"d":3,"placement":"linear:-1","routing":"ODR-MULTI"}`,
		`{"k":6,"d":2,"placement":"multi:2:5","routing":"udr"}`,
		`{"k":6,"d":2,"placement":"diagonal:7","routing":"udr-multi"}`,
		`{"k":4,"d":3,"placement":"full","routing":"far"}`,
		`{"k":8,"d":2,"placement":"random:12:9","routing":"odr"}`,
		`{"k":1,"d":0,"placement":"","routing":""}`,
		`{"k":1000000,"d":9,"placement":"linear","routing":"odr"}`,
		`{"k":8,"d":2,"placement":"linear","routing":"odr","x":1}`,
		`{"k":8,"d":2,"placement":"linear","routing":"odr"}{}`,
		`null`, `[]`, `{`, ``, `{"k":-8,"d":-2,"placement":"linear","routing":"odr"}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeAnalyzeRequest(data)
		if err != nil {
			return // rejected input: only the no-panic guarantee applies
		}

		// Accepted ⇒ the torus is valid and inside the serving ceiling.
		if cerr := torus.Check(req.K, req.D); cerr != nil {
			t.Fatalf("accepted invalid torus k=%d d=%d: %v", req.K, req.D, cerr)
		}
		if n, verr := torus.Volume(req.K, req.D); verr != nil || n > DefaultMaxNodes {
			t.Fatalf("accepted torus with %d nodes (err=%v) past limit %d", n, verr, DefaultMaxNodes)
		}

		// Accepted ⇒ the canonical placement builds and routing parses.
		spec, perr := cliutil.ParsePlacement(req.Placement)
		if perr != nil {
			t.Fatalf("canonical placement %q does not re-parse: %v", req.Placement, perr)
		}
		if _, berr := spec.Build(torus.New(req.K, req.D)); berr != nil {
			t.Fatalf("canonical placement %q does not build: %v", req.Placement, berr)
		}
		if _, rerr := cliutil.ParseRouting(req.Routing); rerr != nil {
			t.Fatalf("canonical routing %q does not re-parse: %v", req.Routing, rerr)
		}
		if req.Routing != strings.ToLower(req.Routing) {
			t.Fatalf("canonical routing %q is not lower-case", req.Routing)
		}

		// Canonicalization is idempotent, through both the in-place API and
		// a full re-encode/decode round trip.
		again := *req
		if err := again.Canonicalize(DefaultMaxNodes); err != nil {
			t.Fatalf("re-canonicalize %+v: %v", *req, err)
		}
		if again != *req {
			t.Fatalf("canonicalization not idempotent: %+v -> %+v", *req, again)
		}
		encoded, merr := json.Marshal(req)
		if merr != nil {
			t.Fatalf("canonical request does not marshal: %v", merr)
		}
		roundTrip, rerr := DecodeAnalyzeRequest(encoded)
		if rerr != nil {
			t.Fatalf("canonical request %s rejected on round trip: %v", encoded, rerr)
		}
		if *roundTrip != *req {
			t.Fatalf("round trip drifted: %+v -> %+v", *req, *roundTrip)
		}
		if roundTrip.CacheKey() != req.CacheKey() {
			t.Fatalf("cache key drifted: %q vs %q", roundTrip.CacheKey(), req.CacheKey())
		}
	})
}
