package service

// Tests for the cluster integration points that live in this package: the
// /healthz vs /readyz split, the peer-hop loop guard, and the zero-cost
// guarantee of the fill path when clustering is off. The multi-node
// behavior (global compute dedup, kill/partition recovery) is covered in
// internal/cluster/harness.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"torusnet/internal/cluster"
)

// TestReadyzSingleNode pins the split: /healthz is liveness, /readyz is
// readiness, and a non-cluster node is ready as soon as it serves.
func TestReadyzSingleNode(t *testing.T) {
	_, c, stop := newTestServer(t, Config{Workers: 1})
	defer stop()
	ctx := context.Background()

	if err := c.Ready(ctx); err != nil {
		t.Fatalf("single-node /readyz: %v", err)
	}
	rz, err := c.Readyz(ctx)
	if err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	if !rz.Ready || rz.Mode != "single" || rz.Self != "" {
		t.Errorf("single-node readyz = %+v, want ready in mode single with no self", rz)
	}
	if _, err := c.Health(ctx); err != nil {
		t.Errorf("healthz alongside readyz: %v", err)
	}
}

// TestReadyzClusterMode checks the cluster-mode body: ready once the ring
// is joined, reporting self and the membership size.
func TestReadyzClusterMode(t *testing.T) {
	clients, views, stop := newChaosClusterPair(t)
	defer stop()
	rz, err := clients[0].Readyz(context.Background())
	if err != nil {
		t.Fatalf("cluster readyz: %v", err)
	}
	if !rz.Ready || rz.Mode != "cluster" || rz.Self != views[0].Self() || rz.Peers != 2 {
		t.Errorf("cluster readyz = %+v, want ready in mode cluster, self %s, 2 peers", rz, views[0].Self())
	}
}

// TestPeerHopLoopGuard proves the one-hop invariant at the HTTP layer: a
// request carrying the PeerHopHeader never fills onward, even when its key
// is homed on another peer — the receiving node computes locally and counts
// the hop.
func TestPeerHopLoopGuard(t *testing.T) {
	clients, views, stop := newChaosClusterPair(t)
	defer stop()
	ctx := context.Background()

	// A peer-fill client marks every request as a hop; aim it at node 0
	// with a key homed on node 1.
	req := remoteHomedRequest(t, views[0], views[1].Self())
	hopC := NewPeerFillClient(clients[0].base, ResilienceConfig{MaxAttempts: 1})
	resp, err := hopC.Analyze(ctx, req)
	if err != nil {
		t.Fatalf("hop-marked analyze: %v", err)
	}
	if resp.Degraded {
		t.Error("hop-marked analyze answered degraded, want exact")
	}
	if fills := clusterVar(views[0].Vars(), "fills"); fills != 0 {
		t.Errorf("node 0 forwarded a hop-marked request (fills = %d), the loop guard must stop it", fills)
	}

	// The same key asked plainly does fill: the guard is per-request, not a
	// switch. Node 0 has the answer cached from the hop request, so use a
	// second remote-homed key.
	var fresh AnalyzeRequest
	for k := 4; k <= 40; k++ {
		cand := AnalyzeRequest{K: k, D: 2, Placement: "linear", Routing: "ODR"}
		canon := cand
		if err := canon.Canonicalize(DefaultMaxNodes); err != nil {
			continue
		}
		if o, _ := views[0].Owner(canon.CacheKey()); o == views[1].Self() && cand != req {
			fresh = cand
			break
		}
	}
	if fresh.K == 0 {
		t.Fatal("no second remote-homed key found")
	}
	if _, err := clients[0].Analyze(ctx, fresh); err != nil {
		t.Fatalf("plain analyze: %v", err)
	}
	if fills := clusterVar(views[0].Vars(), "fills"); fills != 1 {
		t.Errorf("plain remote-homed analyze yielded %d fills, want 1", fills)
	}
}

// TestClusterDisabledPathAllocFree gates the zero-cost contract: with no
// Cluster configured, planning the (absent) fill stage for a request must
// not allocate — single-node deployments pay nothing for the cluster
// layer's existence on the hot path.
func TestClusterDisabledPathAllocFree(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := AnalyzeRequest{K: 6, D: 2, Placement: "linear:0", Routing: "odr"}
	httpReq := httptest.NewRequest(http.MethodPost, "/v1/analyze", nil)
	planned := false
	if n := testing.AllocsPerRun(100, func() {
		if f := s.fillFor(httpReq, "/v1/analyze", &req, decodeAnalyzeFill); f != nil {
			planned = true
		}
	}); n != 0 {
		t.Errorf("disabled-cluster fillFor allocates %.0f times per run, want 0", n)
	}
	if planned {
		t.Error("fillFor planned a fill with no cluster configured")
	}
}

// BenchmarkFillForDisabled is the bench face of the same contract; run with
// -benchmem to see the 0 B/op, 0 allocs/op gate the test enforces.
func BenchmarkFillForDisabled(b *testing.B) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := AnalyzeRequest{K: 6, D: 2, Placement: "linear:0", Routing: "odr"}
	httpReq := httptest.NewRequest(http.MethodPost, "/v1/analyze", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f := s.fillFor(httpReq, "/v1/analyze", &req, decodeAnalyzeFill); f != nil {
			b.Fatal("unexpected fill plan")
		}
	}
}

// newSoloClusterServer boots a server in cluster mode with a single-member
// ring (self only) — enough to exercise the replica endpoint and hot store
// without listeners or peers.
func newSoloClusterServer(t *testing.T, ccfg cluster.Config, scfg Config) (*Server, *Client, *cluster.Cluster, func()) {
	t.Helper()
	if ccfg.Self == "" {
		ccfg.Self = "http://solo"
	}
	cl, err := cluster.New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	scfg.Cluster = cl
	s, c, stop := newTestServer(t, scfg)
	return s, c, cl, stop
}

// TestReplicaEndpointStoresExactResult drives POST /v1/replica directly: a
// valid put lands in the cache under the server-derived key, and the next
// request for that key serves it without any compute.
func TestReplicaEndpointStoresExactResult(t *testing.T) {
	var computes atomic.Int64
	_, c, _, stop := newSoloClusterServer(t, cluster.Config{}, Config{
		Workers: 1, DegradeWatermark: -1,
		OnCompute: func(string) { computes.Add(1) },
	})
	defer stop()
	ctx := context.Background()

	req := AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "ODR"}
	canon := req
	if err := canon.Canonicalize(DefaultMaxNodes); err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(&canon)
	if err != nil {
		t.Fatal(err)
	}
	// A sentinel result no local compute would produce proves the served
	// answer came from the replica put, not a recompute.
	result, err := json.Marshal(AnalyzeResponse{K: 6, D: 2, EMax: 42.5, Exact: true, Engine: "generic"})
	if err != nil {
		t.Fatal(err)
	}
	put, err := json.Marshal(cluster.ReplicaPut{Path: "/v1/analyze", Payload: payload, Result: result})
	if err != nil {
		t.Fatal(err)
	}

	post := func(body []byte, withHeader bool) int {
		t.Helper()
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+cluster.ReplicaPath, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		httpReq.Header.Set("Content-Type", "application/json")
		if withHeader {
			httpReq.Header.Set(ReplicaHeader, "1")
		}
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	if st := post(put, false); st != http.StatusBadRequest {
		t.Errorf("replica put without header: status = %d, want 400", st)
	}
	if st := post(put, true); st != http.StatusOK {
		t.Fatalf("replica put: status = %d, want 200", st)
	}
	resp, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatalf("analyze after replica put: %v", err)
	}
	if !resp.Cached || resp.EMax != 42.5 {
		t.Errorf("analyze after put: cached=%v EMax=%v, want the planted replica (42.5, cached)", resp.Cached, resp.EMax)
	}
	if n := computes.Load(); n != 0 {
		t.Errorf("replica-served key computed %d times, want 0", n)
	}
}

// TestReplicaEndpointRejectsBadPuts covers the validation wall: degraded
// results, unknown paths, and invalid payloads are all 400s that store
// nothing.
func TestReplicaEndpointRejectsBadPuts(t *testing.T) {
	s, c, _, stop := newSoloClusterServer(t, cluster.Config{}, Config{Workers: 1, DegradeWatermark: -1})
	defer stop()
	ctx := context.Background()

	canon := AnalyzeRequest{K: 7, D: 2, Placement: "linear", Routing: "ODR"}
	if err := canon.Canonicalize(DefaultMaxNodes); err != nil {
		t.Fatal(err)
	}
	payload, _ := json.Marshal(&canon)
	degraded, _ := json.Marshal(AnalyzeResponse{EMax: 1, Degraded: true})
	good, _ := json.Marshal(AnalyzeResponse{EMax: 1, Exact: true})

	post := func(put cluster.ReplicaPut) int {
		t.Helper()
		body, err := json.Marshal(put)
		if err != nil {
			t.Fatal(err)
		}
		httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+cluster.ReplicaPath, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		httpReq.Header.Set(ReplicaHeader, "1")
		resp, err := http.DefaultClient.Do(httpReq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		_, _ = io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}

	cases := []struct {
		name string
		put  cluster.ReplicaPut
	}{
		{"degraded result", cluster.ReplicaPut{Path: "/v1/analyze", Payload: payload, Result: degraded}},
		{"unknown path", cluster.ReplicaPut{Path: "/v1/unknown", Payload: payload, Result: good}},
		{"invalid payload", cluster.ReplicaPut{Path: "/v1/analyze", Payload: []byte(`{"k":-1}`), Result: good}},
		{"unknown experiment", cluster.ReplicaPut{Path: "/v1/experiments/nope", Payload: []byte(`{}`), Result: good}},
	}
	for _, tc := range cases {
		if st := post(tc.put); st != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, st)
		}
	}
	if n := s.metrics.get(mReplicaStores); n != 0 {
		t.Errorf("replica_stores = %d after only invalid puts, want 0", n)
	}
}

// TestHotKeyPromotionServesFromHotStore drives one key past the hot
// threshold and asserts later requests are served from the pinned hot
// store (counted in hot_hits), bypassing cache and pool entirely.
func TestHotKeyPromotionServesFromHotStore(t *testing.T) {
	var computes atomic.Int64
	_, c, cl, stop := newSoloClusterServer(t,
		cluster.Config{HotThreshold: 2},
		Config{Workers: 1, DegradeWatermark: -1, OnCompute: func(string) { computes.Add(1) }})
	defer stop()
	ctx := context.Background()

	req := AnalyzeRequest{K: 6, D: 2, Placement: "linear", Routing: "ODR"}
	// 1st request: compute; 2nd: cache hit that crosses the threshold and
	// pins; 3rd+: hot-store hits.
	first, err := c.Analyze(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		resp, err := c.Analyze(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if !resp.Cached || resp.EMax != first.EMax {
			t.Fatalf("request %d: cached=%v EMax=%v, want cached exact %v", i+2, resp.Cached, resp.EMax, first.EMax)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("hot key computed %d times, want 1", n)
	}
	if cl.HotKeys() != 1 {
		t.Errorf("HotKeys = %d after promotion, want 1", cl.HotKeys())
	}
}

// TestPeerFillClientReadyHonorsNotReady pins the resilient-client /readyz
// contract: a not-ready backend surfaces as *APIError 503 from Ready, which
// is what the cluster layer's re-admission probe keys on.
func TestPeerFillClientReadyHonorsNotReady(t *testing.T) {
	notReady := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer notReady.Close()
	c := NewPeerFillClient(notReady.URL, ResilienceConfig{
		MaxAttempts: 2, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond,
	})
	err := c.Ready(context.Background())
	if err == nil {
		t.Fatal("Ready against a 503 backend returned nil")
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Errorf("Ready error = %v, want APIError 503", err)
	}
}
